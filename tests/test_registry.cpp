// Setting-registry tests: every canonical name resolves, typed overrides
// apply, and overrides a setting cannot honour are rejected loudly instead
// of silently ignored.
#include "exp/registry.hpp"

#include <gtest/gtest.h>

#include "exp/settings.hpp"

namespace smartexp3::exp {
namespace {

TEST(Registry, CatalogCoversThePaper) {
  const auto names = setting_names();
  const std::vector<std::string> expected = {
      "setting1",   "setting2",   "scalability", "scalability_xl",
      "join",       "leave",      "mobility",    "greedy_mix",
      "controlled", "controlled_dynamic",        "channel",
      "trace1",     "trace2",     "trace3",      "trace4"};
  EXPECT_EQ(names, expected);
  for (const auto& name : names) EXPECT_TRUE(is_valid_setting_name(name)) << name;
  EXPECT_FALSE(is_valid_setting_name("setting3"));
  for (const auto& info : setting_catalog()) {
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_FALSE(info.default_policy.empty()) << info.name;
  }
}

TEST(Registry, EverySettingBuildsAValidConfig) {
  for (const auto& info : setting_catalog()) {
    const auto cfg = make_setting(info.name);
    EXPECT_TRUE(cfg.validate().empty()) << info.name;
    EXPECT_FALSE(cfg.devices.empty()) << info.name;
  }
}

TEST(Registry, MatchesTheBuilders) {
  // The registry is a doorway, not a reinterpretation: default builds must
  // equal the direct builder calls field for field (spot-checked via the
  // shapes the settings tests pin).
  const auto reg = make_setting("setting1");
  const auto direct = static_setting1("smart_exp3");
  EXPECT_EQ(reg.name, direct.name);
  EXPECT_EQ(reg.devices.size(), direct.devices.size());
  EXPECT_EQ(reg.capacities(), direct.capacities());
  EXPECT_EQ(reg.world.horizon, direct.world.horizon);

  const auto mob = make_setting("mobility");
  const auto mob_direct = mobility_setting("smart_exp3");
  EXPECT_EQ(mob.scenario.moves.size(), mob_direct.scenario.moves.size());
  EXPECT_EQ(mob.recorder.groups, mob_direct.recorder.groups);
}

TEST(Registry, PolicyOverride) {
  const auto cfg = make_setting("setting2", {.policy = "greedy"});
  for (const auto& d : cfg.devices) EXPECT_EQ(d.policy_name, "greedy");
  // Default policies: smart_exp3 everywhere except the scalability sweep.
  EXPECT_EQ(make_setting("setting1").devices.front().policy_name, "smart_exp3");
  EXPECT_EQ(make_setting("scalability").devices.front().policy_name,
            "smart_exp3_noreset");
}

TEST(Registry, DeviceAndHorizonOverrides) {
  const auto cfg = make_setting("setting1", {.devices = 7, .horizon = 99});
  EXPECT_EQ(cfg.devices.size(), 7u);
  EXPECT_EQ(cfg.world.horizon, 99);
  EXPECT_EQ(make_setting("channel", {.devices = 6}).devices.size(), 6u);
}

TEST(Registry, ScalabilityNetworksOverride) {
  const auto cfg = make_setting("scalability", {.devices = 40, .networks = 5});
  EXPECT_EQ(cfg.networks.size(), 5u);
  EXPECT_EQ(cfg.devices.size(), 40u);
  EXPECT_EQ(cfg.world.horizon, 8640);
}

TEST(Registry, GreedyMixOverride) {
  const auto cfg = make_setting("greedy_mix", {.n_smart = 15});
  int smart = 0;
  for (const auto& d : cfg.devices) smart += d.policy_name == "smart_exp3" ? 1 : 0;
  EXPECT_EQ(smart, 15);
  // Default mix is 10/10.
  const auto def = make_setting("greedy_mix");
  smart = 0;
  for (const auto& d : def.devices) smart += d.policy_name == "smart_exp3" ? 1 : 0;
  EXPECT_EQ(smart, 10);
}

TEST(Registry, ControlledPolicyMix) {
  std::vector<std::string> mix(14, "greedy");
  mix[0] = "smart_exp3";
  const auto cfg = make_setting("controlled", {.policy_mix = mix});
  EXPECT_EQ(cfg.devices.front().policy_name, "smart_exp3");
  EXPECT_EQ(cfg.devices.back().policy_name, "greedy");
  EXPECT_EQ(cfg.share, ShareKind::kNoisy);
}

TEST(Registry, TraceSlotsOverride) {
  const auto cfg = make_setting("trace4", {.trace_slots = 400});
  EXPECT_EQ(cfg.world.horizon, 400);
  EXPECT_EQ(cfg.networks.front().trace.size(), 400u);
}

TEST(Registry, RejectsUnknownNames) {
  EXPECT_THROW(make_setting("setting3"), std::invalid_argument);
  try {
    make_setting("nope");
    FAIL();
  } catch (const std::invalid_argument& e) {
    // The message lists the known names so the caller can fix the typo.
    EXPECT_NE(std::string(e.what()).find("known settings"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("mobility"), std::string::npos);
  }
}

TEST(Registry, RejectsUnsupportedOverrides) {
  EXPECT_THROW(make_setting("join", {.devices = 5}), std::invalid_argument);
  EXPECT_THROW(make_setting("mobility", {.devices = 5}), std::invalid_argument);
  EXPECT_THROW(make_setting("setting1", {.networks = 5}), std::invalid_argument);
  EXPECT_THROW(make_setting("setting1", {.n_smart = 5}), std::invalid_argument);
  EXPECT_THROW(make_setting("greedy_mix", {.policy = "exp3"}), std::invalid_argument);
  EXPECT_THROW(make_setting("setting1", {.trace_slots = 50}), std::invalid_argument);
  EXPECT_THROW(make_setting("setting1", {.policy_mix = {"greedy"}}),
               std::invalid_argument);
  try {
    make_setting("leave", {.devices = 5});
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("does not accept"), std::string::npos);
  }
}

TEST(Registry, RejectsBadOverrideValues) {
  EXPECT_THROW(make_setting("setting1", {.policy = "skynet"}), std::invalid_argument);
  EXPECT_THROW(make_setting("setting1", {.devices = 0}), std::invalid_argument);
  EXPECT_THROW(make_setting("setting1", {.horizon = 0}), std::invalid_argument);
  EXPECT_THROW(make_setting("trace1", {.trace_slots = 0}), std::invalid_argument);
  EXPECT_THROW(make_setting("scalability", {.networks = 9}), std::invalid_argument);
  std::vector<std::string> mix(14, "greedy");
  EXPECT_THROW(make_setting("controlled", {.policy = "exp3", .policy_mix = mix}),
               std::invalid_argument);
}

}  // namespace
}  // namespace smartexp3::exp
