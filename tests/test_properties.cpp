// Property-based suites (parameterised gtest): invariants that must hold for
// every policy, seed, and parameter combination — probability simplexes,
// valid choices, determinism, goodput conservation, and the Theorem 2
// switch bound for Smart EXP3.
#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "exp/settings.hpp"
#include "policy_test_util.hpp"

namespace smartexp3 {
namespace {

// ---------------------------------------------------------------------------
// Per-policy invariants, swept over all nine algorithms x several seeds.
// ---------------------------------------------------------------------------

struct PolicyCase {
  std::string name;
  std::uint64_t seed;
};

class PolicyInvariants : public ::testing::TestWithParam<PolicyCase> {
 protected:
  std::unique_ptr<core::Policy> make() const {
    auto factory = core::make_named_policy_factory({4.0, 7.0, 22.0});
    return factory(/*id=*/0, GetParam().name, GetParam().seed);
  }
};

TEST_P(PolicyInvariants, ChoicesAlwaysValidAndProbabilitiesSimplex) {
  auto policy = make();
  policy->set_networks({0, 1, 2});
  stats::Rng gains(GetParam().seed ^ 0xabcdef);
  for (int t = 0; t < 400; ++t) {
    const NetworkId c = policy->choose(t);
    ASSERT_GE(c, 0);
    ASSERT_LE(c, 2);
    const auto p = policy->probabilities();
    ASSERT_EQ(p.size(), 3u);
    double sum = 0.0;
    for (const double v : p) {
      ASSERT_GE(v, -1e-12);
      ASSERT_LE(v, 1.0 + 1e-9);
      ASSERT_TRUE(std::isfinite(v));
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-6);
    core::SlotFeedback fb;
    fb.gain = gains.uniform();
    fb.bit_rate_mbps = fb.gain * 22.0;
    fb.all_gains = {gains.uniform(), gains.uniform(), gains.uniform()};
    fb.all_rates_mbps = fb.all_gains;
    policy->observe(t, fb);
  }
}

TEST_P(PolicyInvariants, DeterministicReplay) {
  auto a = make();
  auto b = make();
  a->set_networks({0, 1, 2});
  b->set_networks({0, 1, 2});
  stats::Rng ga(42);
  stats::Rng gb(42);
  for (int t = 0; t < 300; ++t) {
    const NetworkId ca = a->choose(t);
    const NetworkId cb = b->choose(t);
    ASSERT_EQ(ca, cb) << "diverged at slot " << t;
    core::SlotFeedback fa;
    fa.gain = ga.uniform();
    fa.all_gains = {ga.uniform(), ga.uniform(), ga.uniform()};
    core::SlotFeedback fbk;
    fbk.gain = gb.uniform();
    fbk.all_gains = {gb.uniform(), gb.uniform(), gb.uniform()};
    a->observe(t, fa);
    b->observe(t, fbk);
  }
}

TEST_P(PolicyInvariants, SurvivesNetworkSetChanges) {
  if (GetParam().name == "centralized") {
    GTEST_SKIP() << "centralized assumes full visibility (static settings only)";
  }
  auto policy = make();
  policy->set_networks({0, 1});
  stats::Rng gains(7);
  auto drive = [&](int from, int to) {
    for (int t = from; t < to; ++t) {
      const NetworkId c = policy->choose(t);
      const auto& nets = policy->networks();
      ASSERT_TRUE(std::find(nets.begin(), nets.end(), c) != nets.end());
      core::SlotFeedback fb;
      fb.gain = gains.uniform();
      fb.all_gains.assign(nets.size(), 0.5);
      policy->observe(t, fb);
    }
  };
  drive(0, 100);
  policy->set_networks({0, 1, 2});  // discovery
  drive(100, 200);
  policy->set_networks({1, 2});  // loss of network 0
  drive(200, 300);
  policy->set_networks({1});  // down to a single network
  drive(300, 350);
  const auto p = policy->probabilities();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p[0], 1.0, 1e-9);
}

std::vector<PolicyCase> all_policy_cases() {
  std::vector<PolicyCase> cases;
  for (const auto& name : core::policy_names()) {
    for (const std::uint64_t seed : {1ULL, 17ULL, 923ULL}) {
      cases.push_back({name, seed});
    }
  }
  // The extension baselines must honour the same interface contract.
  for (const auto& name : core::extension_policy_names()) {
    for (const std::uint64_t seed : {1ULL, 17ULL, 923ULL}) {
      cases.push_back({name, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::ValuesIn(all_policy_cases()),
                         [](const ::testing::TestParamInfo<PolicyCase>& info) {
                           return info.param.name + "_s" +
                                  std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Theorem 2: E[S(T)] < 3 k log(T + 1) / log(1 + beta) for Smart EXP3 without
// reset (tau = T, t_d = 1). Swept over beta, k and horizon.
// ---------------------------------------------------------------------------

struct BoundCase {
  double beta;
  int k;
  int horizon;
};

class SwitchBound : public ::testing::TestWithParam<BoundCase> {};

TEST_P(SwitchBound, SmartExp3NoResetRespectsTheorem2) {
  const auto [beta, k, horizon] = GetParam();
  core::SmartExp3Tunables t = core::smart_exp3_no_reset();
  t.beta = beta;
  const double bound = 3.0 * k * std::log(static_cast<double>(horizon) + 1.0) /
                       std::log(1.0 + beta);
  for (const std::uint64_t seed : {3ULL, 31ULL, 314ULL}) {
    core::SmartExp3 policy(seed, t);
    std::vector<NetworkId> nets;
    for (int i = 0; i < k; ++i) nets.push_back(i);
    policy.set_networks(nets);
    stats::Rng gains(seed ^ 0x5ca1ab1e);
    int switches = 0;
    NetworkId prev = kNoNetwork;
    for (int slot = 0; slot < horizon; ++slot) {
      const NetworkId c = policy.choose(slot);
      if (prev != kNoNetwork && c != prev) ++switches;
      prev = c;
      core::SlotFeedback fb;
      // Adversarially noisy gains keep the policy exploring.
      fb.gain = gains.uniform();
      policy.observe(slot, fb);
    }
    EXPECT_LT(switches, bound) << "beta=" << beta << " k=" << k << " T=" << horizon
                               << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwitchBound,
    ::testing::Values(BoundCase{0.1, 2, 500}, BoundCase{0.1, 3, 1200},
                      BoundCase{0.1, 5, 1200}, BoundCase{0.3, 3, 1200},
                      BoundCase{0.5, 3, 2000}, BoundCase{1.0, 4, 2000},
                      BoundCase{0.05, 3, 800}),
    [](const ::testing::TestParamInfo<BoundCase>& info) {
      return "beta" + std::to_string(static_cast<int>(info.param.beta * 100)) + "_k" +
             std::to_string(info.param.k) + "_T" + std::to_string(info.param.horizon);
    });

// ---------------------------------------------------------------------------
// World-level conservation and sanity, swept over policies and device counts.
// ---------------------------------------------------------------------------

struct WorldCase {
  std::string policy;
  int devices;
};

class WorldConservation : public ::testing::TestWithParam<WorldCase> {};

TEST_P(WorldConservation, OfferedCapacityFullyAccounted) {
  auto cfg = exp::static_setting1(GetParam().policy, GetParam().devices,
                                  /*horizon=*/120);
  cfg.delay = exp::DelayKind::kZero;
  const auto run = exp::run_once(cfg, 99);
  const double offered =
      cfg.aggregate_capacity() * cfg.world.horizon * cfg.world.slot_seconds / 8.0;
  EXPECT_NEAR(run.total_download_mb + run.unused_mb, offered, 1e-6);
}

TEST_P(WorldConservation, DelaysOnlyEverReduceGoodput) {
  auto zero = exp::static_setting1(GetParam().policy, GetParam().devices, 120);
  zero.delay = exp::DelayKind::kZero;
  auto delayed = zero;
  delayed.delay = exp::DelayKind::kFixed;
  delayed.fixed_delay_wifi_s = 5.0;
  delayed.fixed_delay_cellular_s = 10.0;
  const auto a = exp::run_once(zero, 123);
  const auto b = exp::run_once(delayed, 123);
  // Same seed => same decision sequence for every policy (delays do not
  // feed back into gains), so the delayed run downloads no more.
  EXPECT_LE(b.total_download_mb, a.total_download_mb + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorldConservation,
    ::testing::Values(WorldCase{"smart_exp3", 5}, WorldCase{"smart_exp3", 20},
                      WorldCase{"exp3", 20}, WorldCase{"greedy", 20},
                      WorldCase{"block_exp3", 10}, WorldCase{"full_information", 10},
                      WorldCase{"centralized", 20}, WorldCase{"fixed_random", 20},
                      WorldCase{"hybrid_block_exp3", 20},
                      WorldCase{"smart_exp3_noreset", 20}),
    [](const ::testing::TestParamInfo<WorldCase>& info) {
      return info.param.policy + "_n" + std::to_string(info.param.devices);
    });

// ---------------------------------------------------------------------------
// Gamma schedule properties.
// ---------------------------------------------------------------------------

TEST(GammaSchedule, MonotoneDecreasingInUnitInterval) {
  double prev = 1.1;
  for (long b = 1; b < 10000; b = b * 3 / 2 + 1) {
    const double g = core::gamma_schedule(b);
    ASSERT_GT(g, 0.0);
    ASSERT_LE(g, 1.0);
    ASSERT_LE(g, prev);
    prev = g;
  }
}

TEST(GammaSchedule, MatchesPaperFormula) {
  EXPECT_DOUBLE_EQ(core::gamma_schedule(1), 1.0);
  EXPECT_NEAR(core::gamma_schedule(8), 0.5, 1e-12);
  EXPECT_NEAR(core::gamma_schedule(27), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(core::gamma_schedule(1000), 0.1, 1e-12);
}

}  // namespace
}  // namespace smartexp3
