// The vexp kernel's exactness contract (vexp.hpp / DESIGN.md §4):
//   - accurate: within a few ulp of std::exp across the whole range;
//   - monotone: non-decreasing outputs for increasing inputs, including
//     across the Cody-Waite binade seams where range-reduction switches k;
//   - elementwise: element i depends only on input i, so batch length and
//     the one-element form can never disagree (this is what makes the
//     batched and scalar policy paths bit-identical);
//   - total: underflow flushes to 0, overflow saturates to +inf, NaN
//     propagates, exp(0) == 1 exactly;
//   - vexp_exact: bit-identical to std::exp (the fallback for call sites
//     where the libm bits are contractual).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/rng.hpp"
#include "stats/vexp.hpp"

namespace smartexp3::stats {
namespace {

double ulp_distance(double a, double b) {
  if (a == b) return 0.0;
  const double next = std::nextafter(a, b);
  const double step = std::abs(next - a);
  return step > 0.0 ? std::abs(b - a) / step : std::numeric_limits<double>::infinity();
}

TEST(Vexp, AccurateToAFewUlpAcrossTheRange) {
  // Dense uniform grid over the engine-relevant range plus random points
  // over the full valid window.
  Rng rng(42);
  std::vector<double> xs;
  for (double x = -40.0; x <= 40.0; x += 0.001953125) xs.push_back(x);  // 2^-9 steps
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform(-700.0, 700.0));
  double worst = 0.0;
  std::vector<double> out(xs.size());
  vexp(xs.data(), out.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double ref = std::exp(xs[i]);
    const double ulps = ulp_distance(ref, out[i]);
    worst = std::max(worst, ulps);
    ASSERT_LE(ulps, 4.0) << "x = " << xs[i];
  }
  // Sanity: the kernel is genuinely close, not just within the loose bound.
  EXPECT_LT(worst, 4.0);
}

TEST(Vexp, MonotoneIncludingRangeReductionSeams) {
  // Global sweep: strictly increasing inputs must produce non-decreasing
  // outputs. Seam stress: tight windows around k * ln(2) / 2 multiples,
  // where the reduction constant k changes between neighbours.
  std::vector<double> xs;
  for (double x = -30.0; x <= 30.0; x += 0.0009765625) xs.push_back(x);
  constexpr double kHalfLn2 = 0.34657359027997264;
  for (int k = -40; k <= 40; ++k) {
    const double seam = k * kHalfLn2;
    for (int j = -50; j <= 50; ++j) xs.push_back(seam + j * 1e-13);
  }
  std::sort(xs.begin(), xs.end());
  std::vector<double> out(xs.size());
  vexp(xs.data(), out.data(), xs.size());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    ASSERT_LE(out[i - 1], out[i]) << "between x = " << xs[i - 1] << " and " << xs[i];
  }
}

TEST(Vexp, ElementwiseIndependentOfBatchShape) {
  Rng rng(7);
  std::vector<double> xs(257);
  for (auto& x : xs) x = rng.uniform(-30.0, 5.0);
  std::vector<double> whole(xs.size());
  vexp(xs.data(), whole.data(), xs.size());
  // One element at a time, the scalar form, and odd split points must all
  // reproduce the same bits.
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double one = 0.0;
    vexp(&xs[i], &one, 1);
    ASSERT_EQ(whole[i], one) << i;
    ASSERT_EQ(whole[i], vexp_one(xs[i])) << i;
  }
  std::vector<double> split(xs.size());
  vexp(xs.data(), split.data(), 13);
  vexp(xs.data() + 13, split.data() + 13, xs.size() - 13);
  for (std::size_t i = 0; i < xs.size(); ++i) ASSERT_EQ(whole[i], split[i]) << i;
}

TEST(Vexp, SupportsInPlaceOperation) {
  Rng rng(9);
  std::vector<double> xs(64);
  for (auto& x : xs) x = rng.uniform(-600.0, 600.0);
  xs[5] = 1000.0;  // force the edge path too
  std::vector<double> expected(xs.size());
  vexp(xs.data(), expected.data(), xs.size());
  vexp(xs.data(), xs.data(), xs.size());  // in place
  for (std::size_t i = 0; i < xs.size(); ++i) ASSERT_EQ(expected[i], xs[i]) << i;
}

TEST(Vexp, EdgeSemantics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double xs[] = {0.0,  -0.0, -1000.0, 1000.0, -inf, inf,
                       nan,  -745.0, 710.0, 0x1p-60};
  double out[10];
  vexp(xs, out, 10);
  EXPECT_EQ(out[0], 1.0);  // exp(0) is exactly 1
  EXPECT_EQ(out[1], 1.0);
  EXPECT_EQ(out[2], 0.0);  // deep underflow flushes to zero
  EXPECT_EQ(out[3], inf);  // overflow saturates
  EXPECT_EQ(out[4], 0.0);
  EXPECT_EQ(out[5], inf);
  EXPECT_TRUE(std::isnan(out[6]));
  EXPECT_EQ(out[7], 0.0);
  EXPECT_EQ(out[8], inf);
  EXPECT_EQ(out[9], 1.0);  // tiny arguments round to exactly 1
}

TEST(Vexp, ExactPathMatchesStdExpBitForBit) {
  Rng rng(11);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.uniform(-745.0, 709.0);
  std::vector<double> out(xs.size());
  vexp_exact(xs.data(), out.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(out[i], std::exp(xs[i])) << "x = " << xs[i];
  }
}

}  // namespace
}  // namespace smartexp3::stats
