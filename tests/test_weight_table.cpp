#include "core/weight_table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smartexp3::core {
namespace {

TEST(WeightTable, UniformAfterReset) {
  WeightTable w;
  w.reset(4);
  const auto p = w.probabilities(0.0);
  for (const double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(WeightTable, ExplorationMixing) {
  WeightTable w;
  w.reset(2);
  w.bump(0, 10.0);  // arm 0 dominates
  const auto p = w.probabilities(0.5);
  // p_1 >= gamma/k = 0.25 regardless of weights.
  EXPECT_GE(p[1], 0.25 - 1e-12);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  // gamma = 1: fully uniform.
  const auto u = w.probabilities(1.0);
  EXPECT_NEAR(u[0], 0.5, 1e-12);
}

TEST(WeightTable, BumpMatchesMultiplicativeUpdate) {
  // exp-weights: p ∝ exp(lw). After bump(i, d), odds multiply by e^d.
  WeightTable w;
  w.reset(2);
  w.bump(0, std::log(3.0));
  const auto p = w.probabilities(0.0);
  EXPECT_NEAR(p[0] / p[1], 3.0, 1e-9);
}

TEST(WeightTable, NormaliseLeavesProbabilitiesInvariant) {
  WeightTable w;
  w.reset(3);
  w.bump(0, 5.0);
  w.bump(2, 2.0);
  const auto before = w.probabilities(0.3);
  w.normalise();
  const auto after = w.probabilities(0.3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(before[i], after[i], 1e-12);
  EXPECT_DOUBLE_EQ(w.max_log_weight(), 0.0);
}

TEST(WeightTable, OffsetTracksAbsoluteScale) {
  WeightTable w;
  w.reset(2);
  EXPECT_DOUBLE_EQ(w.relative_of_unit_weight(), 0.0);
  w.bump(0, 100.0);
  w.normalise();
  // Absolute weight 1 is now 100 log-units below the (normalised) max.
  EXPECT_NEAR(w.relative_of_unit_weight(), -100.0, 1e-12);
  w.bump(1, 40.0);
  w.normalise();  // max unchanged (arm 0 still at 0 > 40-100)
  EXPECT_NEAR(w.relative_of_unit_weight(), -100.0, 1e-12);
}

TEST(WeightTable, OffsetCarriedAcrossRebuild) {
  WeightTable w;
  w.reset(2);
  w.bump(0, 50.0);
  w.normalise();
  WeightTable next;
  next.set_offset(w.offset());
  next.push_back(w.log_weight(0));
  next.push_back(w.log_weight(1));
  next.push_back(next.relative_of_unit_weight());  // a brand-new arm
  const auto p = next.probabilities(0.0);
  EXPECT_GT(p[0], 0.99);
  EXPECT_LT(p[2], 1e-15);  // new arm negligible next to trained favourite
}

TEST(WeightTable, SurvivesExtremeUpdatesWithoutOverflow) {
  WeightTable w;
  w.reset(2);
  for (int i = 0; i < 10000; ++i) {
    w.bump(0, 500.0);  // raw weights would overflow instantly
    w.normalise();
  }
  const auto p = w.probabilities(0.1);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_TRUE(std::isfinite(p[1]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GE(p[1], 0.05 - 1e-12);  // exploration floor intact
}

TEST(GammaScheduleTable, EdgeValues) {
  EXPECT_DOUBLE_EQ(gamma_schedule(1), 1.0);
  EXPECT_GT(gamma_schedule(1000000), 0.0);
  EXPECT_LT(gamma_schedule(1000000), 0.011);
}

}  // namespace
}  // namespace smartexp3::core
