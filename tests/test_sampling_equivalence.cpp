// Distributional equivalence of the fixed-cost inverse-CDF sampling layer
// (DESIGN.md §3).
//
// The PR that introduced one-uniform-per-draw sampling deliberately bumped
// the golden trajectory: sampled values changed, distributions must not.
// These tests pin that claim three ways:
//   1. analytically — the quantile functions round-trip through the exact
//      CDFs (norm_ppf vs norm_cdf, IcdfTable vs StudentT::cdf);
//   2. statistically — KS distance of large samples against the analytic
//      CDFs, plus moment checks against closed forms;
//   3. structurally — every delay draw consumes exactly one 64-bit RNG
//      output, the table is built at model construction only, and sampling
//      never touches the heap.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "alloc_counter.hpp"
#include "netsim/delay_model.hpp"
#include "netsim/network.hpp"
#include "stats/distributions.hpp"
#include "stats/icdf.hpp"
#include "stats/icdf_table.hpp"
#include "stats/rng.hpp"

namespace smartexp3::stats {
namespace {

/// Two-sided Kolmogorov–Smirnov statistic of a sample against an analytic
/// CDF. Sorts a copy; returns sup_x |F_n(x) - F(x)|.
template <typename Cdf>
double ks_statistic(std::vector<double> xs, const Cdf& cdf) {
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = cdf(xs[i]);
    worst = std::max(worst, std::abs(f - static_cast<double>(i) / n));
    worst = std::max(worst, std::abs(f - static_cast<double>(i + 1) / n));
  }
  return worst;
}

// For n = 200k draws the 0.1%-significance KS threshold is ~1.95/sqrt(n)
// ~= 0.0044; 0.01 gives headroom against seed luck while still failing
// instantly for any systematically wrong sampler.
constexpr int kDraws = 200000;
constexpr double kKsTolerance = 0.01;

// ---- the inverse normal CDF ------------------------------------------------

TEST(NormPpf, MatchesKnownQuantiles) {
  EXPECT_NEAR(norm_ppf(0.5), 0.0, 1e-15);
  EXPECT_NEAR(norm_ppf(0.975), 1.959963984540054, 1e-12);
  EXPECT_NEAR(norm_ppf(0.025), -1.959963984540054, 1e-12);
  EXPECT_NEAR(norm_ppf(0.99), 2.3263478740408408, 1e-12);
  EXPECT_NEAR(norm_ppf(1e-10), -6.361340902404056, 1e-9);
}

TEST(NormPpf, RoundTripsThroughNormCdf) {
  // Deterministic accuracy pin, far sharper than any sampling test: AS241
  // is good to ~1e-15 relative across the open interval.
  for (int i = 1; i < 100000; ++i) {
    const double u = static_cast<double>(i) / 100000.0;
    ASSERT_NEAR(norm_cdf(norm_ppf(u)), u, 1e-12) << "u=" << u;
  }
}

TEST(NormPpf, TotalOnDoublesAndMonotone) {
  // The clamp makes 0 and 1 legal inputs with finite values.
  EXPECT_TRUE(std::isfinite(norm_ppf(0.0)));
  EXPECT_TRUE(std::isfinite(norm_ppf(1.0)));
  EXPECT_LT(norm_ppf(0.0), -8.0);
  EXPECT_GT(norm_ppf(1.0), 8.0);
  double prev = norm_ppf(0.0);
  for (int i = 1; i <= 1000; ++i) {
    const double cur = norm_ppf(static_cast<double>(i) / 1000.0);
    ASSERT_GE(cur, prev);
    prev = cur;
  }
}

TEST(FastSinh, MatchesStdSinh) {
  for (double w = -30.0; w <= 30.0; w += 0.037) {
    const double want = std::sinh(w);
    ASSERT_NEAR(fast_sinh(w), want, 4e-15 * std::max(1.0, std::abs(want)))
        << "w=" << w;
  }
  // The Taylor branch around 0.
  for (double w : {0.0, 1e-12, -1e-9, 9.9e-6, -9.9e-6}) {
    ASSERT_DOUBLE_EQ(fast_sinh(w), std::sinh(w)) << "w=" << w;
  }
}

TEST(NormalSampler, KsAgainstAnalyticCdf) {
  Rng rng(20260731);
  std::vector<double> xs(kDraws);
  for (auto& x : xs) x = rng.normal();
  EXPECT_LT(ks_statistic(xs, [](double x) { return norm_cdf(x); }), kKsTolerance);
}

// ---- Johnson-SU: closed-form quantile sampling -----------------------------

TEST(JohnsonSUSampler, QuantileFunctionInvertsCdf) {
  const JohnsonSU d{-2.0, 2.0, 0.5, 1.0};  // the WiFi delay calibration
  for (int i = 1; i < 20000; ++i) {
    const double u = static_cast<double>(i) / 20000.0;
    ASSERT_NEAR(d.cdf(d.icdf(u)), u, 1e-12) << "u=" << u;
  }
}

TEST(JohnsonSUSampler, KsAgainstAnalyticCdf) {
  const JohnsonSU d{-2.0, 2.0, 0.5, 1.0};
  Rng rng(7);
  std::vector<double> xs(kDraws);
  for (auto& x : xs) x = d.sample(rng);
  EXPECT_LT(ks_statistic(xs, [&](double x) { return d.cdf(x); }), kKsTolerance);
}

TEST(JohnsonSUSampler, MomentsMatchClosedForms) {
  const JohnsonSU d{-2.0, 2.0, 0.5, 1.0};
  Rng rng(8);
  const int n = 400000;
  double sum = 0.0;
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = d.sample(rng);
    sum += x;
  }
  const double mean = sum / n;
  double m2 = 0.0;
  double m3 = 0.0;
  for (const double x : xs) {
    const double c = x - mean;
    m2 += c * c;
    m3 += c * c * c;
  }
  m2 /= n;
  m3 /= n;
  EXPECT_NEAR(mean, d.mean(), 0.02);
  EXPECT_NEAR(m2, d.variance(), 0.03 * d.variance());
  // Closed-form skewness reference, computed from the quantile function by
  // midpoint integration over u (the sampler's own transform is exact, so
  // this is an independent high-accuracy reference for the third moment).
  double ref_m3 = 0.0;
  const int grid = 2000000;
  for (int i = 0; i < grid; ++i) {
    const double u = (static_cast<double>(i) + 0.5) / grid;
    const double c = d.icdf(u) - d.mean();
    ref_m3 += c * c * c;
  }
  ref_m3 /= grid;
  const double skew = m3 / std::pow(m2, 1.5);
  const double ref_skew = ref_m3 / std::pow(d.variance(), 1.5);
  EXPECT_NEAR(skew, ref_skew, 0.15 * std::abs(ref_skew));
}

// ---- Student-t: table-driven sampling --------------------------------------

IcdfTable student_table(const StudentT& d, double reach) {
  return IcdfTable::from_pdf([&](double x) { return d.pdf(x); }, d.loc - reach,
                             d.loc + reach, d.loc, d.scale);
}

TEST(StudentTCdf, MatchesKnownValues) {
  // Classic t-table entries: P(T <= t_{0.95, nu}) = 0.95.
  const StudentT t4{4.0, 0.0, 1.0};
  EXPECT_NEAR(t4.cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(t4.cdf(2.131847), 0.95, 1e-5);
  EXPECT_NEAR(t4.cdf(-2.131847), 0.05, 1e-5);
  const StudentT t1{1.0, 0.0, 1.0};  // Cauchy
  EXPECT_NEAR(t1.cdf(1.0), 0.75, 1e-12);
  // Location/scale shift.
  const StudentT shifted{4.0, 5.0, 1.2};
  EXPECT_NEAR(shifted.cdf(5.0), 0.5, 1e-14);
  EXPECT_NEAR(shifted.cdf(5.0 + 1.2 * 2.131847), 0.95, 1e-5);
}

TEST(IcdfTableStudentT, QuantileAccuracyAgainstAnalyticCdf) {
  // Deterministic sup-norm pin: the table's quantile function pushed back
  // through the exact CDF must reproduce u to ~1e-6 over the covered range
  // (numeric integration + monotone-cubic interpolation error combined).
  const StudentT d{4.0, 5.0, 1.2};  // the cellular delay calibration
  const IcdfTable table = student_table(d, 250.0);
  for (int i = 1; i < 100000; ++i) {
    const double u = static_cast<double>(i) / 100000.0;
    ASSERT_NEAR(d.cdf(table(u)), u, 1e-6) << "u=" << u;
  }
}

TEST(IcdfTableStudentT, MonotoneQuantileFunction) {
  const StudentT d{3.0, 0.0, 2.0};
  const IcdfTable table = student_table(d, 400.0);
  double prev = table(1e-9);
  for (int i = 1; i <= 100000; ++i) {
    const double cur = table(static_cast<double>(i) / 100000.0);
    ASSERT_GE(cur, prev) << "u=" << static_cast<double>(i) / 100000.0;
    prev = cur;
  }
}

TEST(IcdfTableStudentT, KsAgainstAnalyticCdf) {
  const StudentT d{4.0, 5.0, 1.2};
  const IcdfTable table = student_table(d, 250.0);
  Rng rng(9);
  std::vector<double> xs(kDraws);
  for (auto& x : xs) x = table.sample(rng);
  EXPECT_LT(ks_statistic(xs, [&](double x) { return d.cdf(x); }), kKsTolerance);
}

TEST(IcdfTableStudentT, MomentsMatchClosedForms) {
  // t(nu, loc, scale): mean = loc (nu > 1), var = scale^2 * nu / (nu - 2)
  // (nu > 2), symmetric about loc. Sample skewness of t4 converges too
  // slowly to test (its sampling variance involves the infinite 6th
  // moment); symmetry is pinned through quantiles instead.
  const StudentT d{4.0, 5.0, 1.2};
  const IcdfTable table = student_table(d, 250.0);
  Rng rng(10);
  const int n = 400000;
  std::vector<double> xs(n);
  double sum = 0.0;
  for (auto& x : xs) {
    x = table.sample(rng);
    sum += x;
  }
  const double mean = sum / n;
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  m2 /= n;
  EXPECT_NEAR(mean, 5.0, 0.02);
  EXPECT_NEAR(m2, 1.2 * 1.2 * 4.0 / 2.0, 0.1 * 1.2 * 1.2 * 2.0);
  // Quantile symmetry: Q(u) + Q(1-u) == 2 * loc for the exact
  // distribution; the table should hold this to its interpolation error.
  for (const double u : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(table(u) + table(1.0 - u), 10.0, 1e-3) << "u=" << u;
  }
}

// ---- the delay model: one uniform per draw, no allocation ------------------

TEST(DelayDrawBudget, ExactlyOneRngOutputPerDelaySample) {
  // Advance a sampling stream through a mix of WiFi and cellular draws,
  // advance a second stream by plain 64-bit outputs, and require the two to
  // coincide afterwards: each delay sample consumed exactly one output —
  // no rejection retries, no cached half-samples. This is the property
  // that makes a device's delay-stream position a pure function of its
  // switch count (and keeps per-device streams thread-invariant).
  netsim::DistributionDelayModel model;
  const auto wifi = netsim::make_wifi(0, 10.0);
  const auto cell = netsim::make_cellular(1, 10.0);
  Rng sampling(424242);
  Rng counting(424242);
  int draws = 0;
  for (int i = 0; i < 5000; ++i) {
    // Irregular technology mix so retries could not hide in a pattern.
    if (i % 3 != 0) {
      (void)model.sample(wifi, sampling);
    } else {
      (void)model.sample(cell, sampling);
    }
    ++draws;
  }
  for (int i = 0; i < draws; ++i) (void)counting();
  // The streams must now be positioned identically.
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(sampling(), counting()) << "stream offset " << i;
  }
}

TEST(DelayModelEquivalence, ClampedDelayDistributionsMatchAnalyticCdfs) {
  // End-to-end: DistributionDelayModel's WiFi and cellular draws follow
  // clamp(F^-1(U), 0, max_delay); KS against the clamped analytic CDFs.
  netsim::DistributionDelayModel model;
  const auto& params = model.params();
  const auto wifi = netsim::make_wifi(0, 10.0);
  const auto cell = netsim::make_cellular(1, 10.0);
  Rng rng(11);
  std::vector<double> wifi_xs(kDraws);
  std::vector<double> cell_xs(kDraws);
  for (int i = 0; i < kDraws; ++i) {
    wifi_xs[static_cast<std::size_t>(i)] = model.sample(wifi, rng);
    cell_xs[static_cast<std::size_t>(i)] = model.sample(cell, rng);
  }
  // CDF of the clamped variable: 0 below 0, F(x) on [0, max), 1 at max.
  const double max_delay = params.max_delay_s;
  const auto clamped = [max_delay](const auto& cdf, double x) {
    if (x < 0.0) return 0.0;
    if (x >= max_delay) return 1.0;
    return cdf(x);
  };
  EXPECT_LT(ks_statistic(wifi_xs,
                         [&](double x) {
                           return clamped([&](double y) { return params.wifi.cdf(y); }, x);
                         }),
            kKsTolerance);
  EXPECT_LT(ks_statistic(cell_xs,
                         [&](double x) {
                           return clamped([&](double y) { return params.cellular.cdf(y); }, x);
                         }),
            kKsTolerance);
}

TEST(DelayModelAllocs, TableBuiltAtConstructionSamplingAllocationFree) {
  netsim::DistributionDelayModel model;  // builds the cellular table
  const auto wifi = netsim::make_wifi(0, 10.0);
  const auto cell = netsim::make_cellular(1, 10.0);
  Rng rng(12);
  volatile double sink = 0.0;
  testing::start_alloc_counting();
  for (int i = 0; i < 20000; ++i) {
    sink = sink + model.sample(wifi, rng) + model.sample(cell, rng);
  }
  EXPECT_EQ(testing::stop_alloc_counting(), 0u);
}

}  // namespace
}  // namespace smartexp3::stats
