// The fault-tolerant run harness end to end: injected crashes at awkward
// slots, retry-with-resume from durable checkpoints, watchdogs, cooperative
// interruption, and the batch failure report. The core assertion throughout:
// a killed-and-resumed run is bit-identical to one that never crashed.
#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "exp/checkpoint.hpp"
#include "exp/spec_io.hpp"
#include "golden_scenario.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::exp {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("harness_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Full-visibility dynamic scenario (12 devices, joins at 60, leaves at
/// 180) so every policy — including centralized — participates.
ExperimentConfig dynamic_config(const std::string& policy) {
  using namespace smartexp3::netsim;
  ExperimentConfig cfg;
  cfg.name = "harness-dynamic";
  cfg.world.horizon = 240;
  cfg.base_seed = 8899;
  cfg.networks.push_back(make_cellular(0, 11.0));
  cfg.networks.push_back(make_wifi(1, 22.0));
  cfg.networks.push_back(make_wifi(2, 7.0));
  for (int i = 0; i < 12; ++i) {
    DeviceSpec d;
    d.id = i;
    d.policy_name = policy;
    if (i >= 8) d.join_slot = 60;
    if (i >= 4 && i < 8) d.leave_slot = 180;
    cfg.devices.push_back(d);
  }
  return cfg;
}

std::vector<std::string> all_policies() {
  auto names = core::policy_names();
  for (const auto& n : core::extension_policy_names()) names.push_back(n);
  return names;
}

void expect_results_identical(const metrics::RunResult& a,
                              const metrics::RunResult& b) {
  // Bit-identical doubles on purpose: resume continues the trajectory, it
  // does not approximate it.
  EXPECT_EQ(a.downloads_mb, b.downloads_mb);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.switching_cost_mb, b.switching_cost_mb);
  EXPECT_EQ(a.resets, b.resets);
  EXPECT_EQ(a.total_download_mb, b.total_download_mb);
  EXPECT_EQ(a.unused_mb, b.unused_mb);
  EXPECT_EQ(a.at_nash_fraction, b.at_nash_fraction);
  EXPECT_EQ(a.eps_fraction, b.eps_fraction);
  ASSERT_EQ(a.group_distance.size(), b.group_distance.size());
  for (std::size_t g = 0; g < a.group_distance.size(); ++g) {
    EXPECT_EQ(a.group_distance[g], b.group_distance[g]) << "group " << g;
  }
}

/// One crash per run, at `kill_slots[run]`, on the first attempt only —
/// simulates a process dying at a randomized point and being restarted.
struct CrashOnce {
  std::vector<Slot> kill_slots;
  std::array<std::atomic<bool>, 16> fired{};

  std::function<void(int, Slot)> hook() {
    return [this](int run, Slot slot) {
      if (run < static_cast<int>(kill_slots.size()) && slot == kill_slots[run] &&
          !fired[static_cast<std::size_t>(run)].exchange(true)) {
        throw std::runtime_error("injected crash in run " + std::to_string(run) +
                                 " at slot " + std::to_string(slot));
      }
    };
  }
};

TEST(RunHarness, KillAndResumeIsBitIdenticalForEveryPolicyAndThreadCount) {
  // Kill slots straddle checkpoint boundaries (every 25 slots), the first
  // checkpoint (a crash before any checkpoint restarts from slot 0), and the
  // join/leave events at 60/180.
  const std::vector<Slot> kill_slots = {17, 60, 123, 180};
  const int runs = static_cast<int>(kill_slots.size());
  for (const auto& policy : all_policies()) {
    SCOPED_TRACE("policy " + policy);
    const auto cfg = dynamic_config(policy);
    const auto reference = run_many(cfg, runs, /*threads=*/1);
    for (const int threads : {1, 2, 4, 7}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const fs::path dir =
          scratch_dir("kill_" + policy + "_t" + std::to_string(threads));
      CrashOnce crash{kill_slots, {}};
      RunOptions options;
      options.checkpoint.every = 25;
      options.checkpoint.dir = dir.string();
      options.control.max_attempts = 2;
      options.control.fault_hook = crash.hook();

      const auto batch = run_many_result(cfg, runs, threads, options);
      EXPECT_TRUE(batch.all_completed());
      ASSERT_EQ(batch.results.size(), reference.size());
      for (int r = 0; r < runs; ++r) {
        SCOPED_TRACE("run " + std::to_string(r));
        EXPECT_TRUE(crash.fired[static_cast<std::size_t>(r)].load())
            << "fault was never injected";
        expect_results_identical(reference[static_cast<std::size_t>(r)],
                                 batch.results[static_cast<std::size_t>(r)]);
      }
    }
  }
}

TEST(RunHarness, ResumeAcrossJoinLeaveBoundariesWithRecorderSeries) {
  // Satellite of the golden scenario: kills land exactly on and around the
  // join (60) and leave (180) boundaries, with the recorder's optional
  // series all enabled, across world-lane counts. The restored recorder
  // must continue every series seamlessly.
  auto cfg = dynamic_config("smart_exp3");
  cfg.recorder.track_stability = true;
  cfg.recorder.track_selections = true;
  for (const int world_threads : {1, 2, 4, 7}) {
    SCOPED_TRACE("world threads " + std::to_string(world_threads));
    cfg.world.threads = world_threads;
    const auto reference = run_many(cfg, /*runs=*/6, /*threads=*/1);
    const fs::path dir = scratch_dir("boundary_w" + std::to_string(world_threads));
    CrashOnce crash{{59, 60, 61, 179, 180, 181}, {}};
    RunOptions options;
    options.checkpoint.every = 20;  // checkpoints land on both event slots
    options.checkpoint.dir = dir.string();
    options.control.max_attempts = 2;
    options.control.fault_hook = crash.hook();
    const auto batch = run_many_result(cfg, 6, /*threads=*/2, options);
    EXPECT_TRUE(batch.all_completed());
    for (std::size_t r = 0; r < 6; ++r) {
      SCOPED_TRACE("run " + std::to_string(r));
      expect_results_identical(reference[r], batch.results[r]);
      EXPECT_EQ(reference[r].selections, batch.results[r].selections);
      ASSERT_EQ(reference[r].rates.size(), batch.results[r].rates.size());
      for (std::size_t d = 0; d < reference[r].rates.size(); ++d) {
        EXPECT_EQ(reference[r].rates[d], batch.results[r].rates[d]) << "device " << d;
      }
      EXPECT_EQ(reference[r].stability.stable, batch.results[r].stability.stable);
      EXPECT_EQ(reference[r].stability.stable_slot,
                batch.results[r].stability.stable_slot);
    }
  }
}

TEST(RunHarness, ShardedWorldKillAndResumeIsBitIdentical) {
  // The sharded engine through the whole crash-recovery stack: a multi-shard
  // world killed at a slot boundary must resume bit-identically to an
  // uninterrupted — and unsharded — reference, because checkpoints
  // serialize devices in global index order: the stream knows nothing of
  // shards. (Restoring a checkpoint into a world with a different shard
  // count is pinned separately in test_sharded_determinism.cpp.)
  auto cfg = dynamic_config("smart_exp3");
  const auto reference = run_many(cfg, /*runs=*/2, /*threads=*/1);  // shards auto = 1
  for (const int shards : {2, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    cfg.world.shards = shards;
    const fs::path dir = scratch_dir("sharded_s" + std::to_string(shards));
    CrashOnce crash{{75, 180}, {}};
    RunOptions options;
    options.checkpoint.every = 25;  // kill at 75 lands exactly on a boundary
    options.checkpoint.dir = dir.string();
    options.control.max_attempts = 2;
    options.control.fault_hook = crash.hook();
    const auto batch = run_many_result(cfg, 2, /*threads=*/2, options);
    EXPECT_TRUE(batch.all_completed());
    for (std::size_t r = 0; r < 2; ++r) {
      SCOPED_TRACE("run " + std::to_string(r));
      EXPECT_TRUE(crash.fired[r].load()) << "fault was never injected";
      expect_results_identical(reference[r], batch.results[r]);
    }
  }
}

TEST(RunHarness, GoldenScenarioKillAndResumeMatchesGoldenRun) {
  // The mixed-policy golden scenario, killed mid-run: resumed results must
  // equal the untouched reference — i.e. crash recovery cannot shift the
  // golden constants.
  const auto cfg = testing::golden_config();
  const auto reference = run_many(cfg, /*runs=*/2, /*threads=*/1);
  const fs::path dir = scratch_dir("golden");
  CrashOnce crash{{97, 41}, {}};
  RunOptions options;
  options.checkpoint.every = 30;
  options.checkpoint.dir = dir.string();
  options.control.max_attempts = 2;
  options.control.fault_hook = crash.hook();
  const auto batch = run_many_result(cfg, 2, /*threads=*/2, options);
  EXPECT_TRUE(batch.all_completed());
  for (std::size_t r = 0; r < 2; ++r) {
    SCOPED_TRACE("run " + std::to_string(r));
    expect_results_identical(reference[r], batch.results[r]);
  }
}

TEST(RunHarness, TornCheckpointFallsBackToOlderOne) {
  // Crash at slot 123 with checkpoints at 25..100; the newest (100) is then
  // replaced by a torn half-written file. The retry must fall back to 75 and
  // still reproduce the reference exactly.
  const auto cfg = dynamic_config("exp3");
  const auto reference = run_once(cfg, cfg.base_seed);
  const fs::path dir = scratch_dir("torn");

  std::atomic<bool> fired{false};
  RunOptions options;
  options.checkpoint.every = 25;
  options.checkpoint.dir = dir.string();
  options.checkpoint.keep = 10;
  options.control.max_attempts = 2;
  options.control.fault_hook = [&](int, Slot slot) {
    if (slot == 123 && !fired.exchange(true)) {
      // Tear the newest checkpoint as the "crash" happens.
      std::ofstream(checkpoint_path(dir.string(), 0, 100),
                    std::ios::binary | std::ios::trunc)
          << "{\"checkpoint_version\": 1, \"ru";
      throw std::runtime_error("crash with torn checkpoint");
    }
  };
  const auto batch = run_many_result(cfg, 1, 1, options);
  EXPECT_TRUE(fired.load());
  ASSERT_TRUE(batch.all_completed());
  expect_results_identical(reference, batch.results[0]);
}

TEST(RunHarness, FailedRunsDoNotDiscardCompletedResults) {
  const auto cfg = dynamic_config("greedy");
  const auto reference = run_many(cfg, /*runs=*/3, /*threads=*/1);

  RunOptions options;
  options.control.max_attempts = 2;
  options.control.fault_hook = [](int run, Slot slot) {
    if (run == 1 && slot == 50) {
      throw std::invalid_argument("persistent failure in run 1");
    }
  };
  const auto batch = run_many_result(cfg, 3, /*threads=*/2, options);

  EXPECT_FALSE(batch.all_completed());
  EXPECT_FALSE(batch.interrupted);
  ASSERT_EQ(batch.completed.size(), 3u);
  EXPECT_TRUE(batch.completed[0]);
  EXPECT_FALSE(batch.completed[1]);
  EXPECT_TRUE(batch.completed[2]);
  expect_results_identical(reference[0], batch.results[0]);
  expect_results_identical(reference[2], batch.results[2]);

  ASSERT_EQ(batch.failures.size(), 1u);
  const RunFailure& f = batch.failures.front();
  EXPECT_EQ(f.run, 1);
  EXPECT_EQ(f.attempts, 2);
  EXPECT_NE(f.error.find("persistent failure"), std::string::npos) << f.error;
  EXPECT_EQ(f.last_checkpoint_slot, -1);  // checkpointing was off
  // The original exception object survives for callers that want to rethrow
  // with its real type.
  EXPECT_THROW(std::rethrow_exception(f.exception), std::invalid_argument);
}

TEST(RunHarness, RetryWithBackoffEventuallySucceeds) {
  const auto cfg = dynamic_config("fixed_random");
  const auto reference = run_once(cfg, cfg.base_seed);
  const fs::path dir = scratch_dir("backoff");

  std::atomic<int> crashes{0};
  RunOptions options;
  options.checkpoint.every = 40;
  options.checkpoint.dir = dir.string();
  options.control.max_attempts = 3;
  options.control.backoff_seconds = 0.001;  // fast but exercises the sleep path
  options.control.fault_hook = [&](int, Slot slot) {
    if (slot == 90 && crashes.load() < 2) {
      ++crashes;
      throw std::runtime_error("transient failure");
    }
  };
  const auto batch = run_many_result(cfg, 1, 1, options);
  EXPECT_TRUE(batch.all_completed());
  EXPECT_EQ(crashes.load(), 2);
  expect_results_identical(reference, batch.results[0]);
}

TEST(RunHarness, WatchdogAbortsARunawayRun) {
  const auto cfg = dynamic_config("smart_exp3");
  RunOptions options;
  options.control.watchdog_seconds = 1e-9;  // expires after the first slot
  EXPECT_THROW(run_once(cfg, cfg.base_seed, options, 0), RunTimeout);

  // And through the batch layer it becomes a reported failure, not an abort.
  const auto batch = run_many_result(cfg, 2, 1, options);
  EXPECT_EQ(batch.failures.size(), 2u);
  EXPECT_NE(batch.failures[0].error.find("watchdog"), std::string::npos)
      << batch.failures[0].error;
}

TEST(RunHarness, StopFlagInterruptsFlushesAndResumes) {
  // The SIGINT path minus the signal: a stop flag raised mid-run makes the
  // batch wind down with a final checkpoint; a second invocation with
  // --resume semantics finishes the job bit-identically.
  const auto cfg = dynamic_config("smart_exp3");
  const auto reference = run_many(cfg, /*runs=*/2, /*threads=*/1);
  const fs::path dir = scratch_dir("stop_resume");

  std::atomic<bool> stop{false};
  RunOptions options;
  options.checkpoint.every = 25;
  options.checkpoint.dir = dir.string();
  options.control.stop = &stop;
  options.control.fault_hook = [&](int run, Slot slot) {
    if (run == 0 && slot == 110) stop.store(true);  // "SIGINT arrives"
  };
  const auto first = run_many_result(cfg, 2, /*threads=*/1, options);
  EXPECT_TRUE(first.interrupted);
  EXPECT_TRUE(first.failures.empty());  // interruption is not a failure
  ASSERT_EQ(first.completed.size(), 2u);
  EXPECT_FALSE(first.completed[0]);
  // The interrupted run flushed a final checkpoint. The hook raised the flag
  // while slot 110 was in flight, so the stop lands at the next boundary.
  const auto flushed = newest_valid_checkpoint(
      dir.string(), 0, fnv1a64(to_spec_text(cfg)), cfg.base_seed);
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->slot, 111);

  RunOptions resume_options;
  resume_options.checkpoint.every = 25;
  resume_options.checkpoint.dir = dir.string();
  resume_options.checkpoint.resume = true;
  const auto second = run_many_result(cfg, 2, /*threads=*/1, resume_options);
  EXPECT_TRUE(second.all_completed());
  for (std::size_t r = 0; r < 2; ++r) {
    SCOPED_TRACE("run " + std::to_string(r));
    expect_results_identical(reference[r], second.results[r]);
  }
}

TEST(RunHarness, ResumeWithoutCheckpointsStartsFromScratch) {
  // --resume against an empty directory is not an error: the run plays from
  // slot 0 (crash-before-first-checkpoint must be recoverable too).
  const auto cfg = dynamic_config("ucb1");
  const auto reference = run_once(cfg, cfg.base_seed);
  const fs::path dir = scratch_dir("empty_resume");
  RunOptions options;
  options.checkpoint.every = 50;
  options.checkpoint.dir = dir.string();
  options.checkpoint.resume = true;
  const auto result = run_once(cfg, cfg.base_seed, options, 0);
  expect_results_identical(reference, result);
}

TEST(RunHarness, SharedCheckpointDirDoesNotCrossResumeJobs) {
  // Two different jobs pointed at the SAME checkpoint directory (a
  // misconfigured service would do this): job B's resume must not pick up
  // job A's checkpoints even though the run indices, base seed and file
  // names (run<r>_slot<s>.ckpt) all collide — the spec fingerprint inside
  // each checkpoint refuses the foreign state and B starts fresh.
  const fs::path dir = scratch_dir("shared_dir");
  const auto cfg_a = dynamic_config("exp3");
  RunOptions options_a;
  options_a.checkpoint.every = 40;
  options_a.checkpoint.dir = dir.string();
  const auto batch_a = run_many_result(cfg_a, 2, 1, options_a);
  ASSERT_TRUE(batch_a.all_completed());
  ASSERT_FALSE(fs::is_empty(dir)) << "job A must have left checkpoints behind";

  const auto cfg_b = dynamic_config("greedy");  // same seed, different spec
  const auto reference = run_many(cfg_b, 2, 1);
  RunOptions options_b;
  options_b.checkpoint.every = 40;
  options_b.checkpoint.dir = dir.string();
  options_b.checkpoint.resume = true;
  const auto batch_b = run_many_result(cfg_b, 2, 1, options_b);
  ASSERT_TRUE(batch_b.all_completed());
  for (std::size_t r = 0; r < reference.size(); ++r) {
    expect_results_identical(reference[r], batch_b.results[r]);
  }
}

TEST(RunHarness, InertOptionsMatchThePlainPath) {
  // Default-constructed RunOptions must be indistinguishable from run_once
  // without options (it routes through the identical plain loop).
  const auto cfg = dynamic_config("block_exp3");
  const auto plain = run_once(cfg, cfg.base_seed);
  const auto guarded = run_once(cfg, cfg.base_seed, RunOptions{}, 0);
  expect_results_identical(plain, guarded);
}

TEST(RunHarness, BackoffSleepWakesOnStopFlag) {
  // A crash-then-retry with a long backoff must not serve out the sleep when
  // the cooperative stop flag rises: the backoff polls the flag and the next
  // attempt turns into an interruption. Before the fix this test slept 30 s.
  const auto cfg = dynamic_config("fixed_random");
  const fs::path dir = scratch_dir("backoff_stop");

  std::atomic<bool> stop{false};
  std::atomic<bool> crashed{false};
  RunOptions options;
  options.checkpoint.every = 25;
  options.checkpoint.dir = dir.string();
  options.control.max_attempts = 3;
  options.control.backoff_seconds = 30.0;  // first retry would wait 30 s
  options.control.stop = &stop;
  options.control.fault_hook = [&](int, Slot slot) {
    if (slot == 90 && !crashed.exchange(true)) {
      stop.store(true);  // "SIGINT arrives while the run is dying"
      throw std::runtime_error("transient failure");
    }
  };

  const auto started = std::chrono::steady_clock::now();
  const auto batch = run_many_result(cfg, 1, 1, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  EXPECT_TRUE(batch.interrupted);
  EXPECT_LT(elapsed, 10.0) << "backoff slept through the stop flag";
}

TEST(RunHarness, InjectedAttemptCrashRetriesToBitIdenticalResult) {
  const auto cfg = dynamic_config("smart_exp3");
  // Reference BEFORE arming: armed failpoints force even plain runs through
  // the guarded loop, and this one would crash it.
  const auto reference = run_once(cfg, cfg.base_seed);
  const fs::path dir = scratch_dir("inject_crash");

  RunOptions options;
  options.checkpoint.every = 25;
  options.checkpoint.dir = dir.string();
  options.control.max_attempts = 2;

  const util::FailpointScope scope("runner.attempt.crash", "once@50");
  const auto batch = run_many_result(cfg, 1, 1, options);
  EXPECT_TRUE(batch.all_completed());
  EXPECT_EQ(batch.retries, 1) << "the injected crash must be counted";
  expect_results_identical(reference, batch.results[0]);
}

TEST(RunHarness, InjectedWatchdogOverrunIsReportedAsTimeout) {
  const auto cfg = dynamic_config("fixed_random");
  const util::FailpointScope scope("runner.watchdog.overrun", "once");
  RunOptions options;
  options.control.max_attempts = 1;
  const auto batch = run_many_result(cfg, 1, 1, options);
  ASSERT_EQ(batch.failures.size(), 1u);
  EXPECT_NE(batch.failures[0].error.find("watchdog overrun"), std::string::npos)
      << batch.failures[0].error;
}

TEST(RunHarness, DiskFullDegradesCheckpointingButFinishesTheRun) {
  const auto cfg = dynamic_config("smart_exp3");
  const auto reference = run_once(cfg, cfg.base_seed);
  const fs::path dir = scratch_dir("degraded");

  std::vector<std::string> degraded_reasons;
  RunOptions options;
  options.checkpoint.every = 25;
  options.checkpoint.dir = dir.string();
  options.checkpoint.degrade_on_disk_full = true;
  options.control.on_degraded = [&](int, Slot, const std::string& reason) {
    degraded_reasons.push_back(reason);
  };

  const util::FailpointScope scope("checkpoint.write.enospc", "1in1");
  const auto batch = run_many_result(cfg, 1, 1, options);
  EXPECT_TRUE(batch.all_completed())
      << "disk pressure must degrade, not kill, the run";
  ASSERT_EQ(degraded_reasons.size(), 1u) << "one degradation per run";
  EXPECT_NE(degraded_reasons[0].find("out of space"), std::string::npos)
      << degraded_reasons[0];
  expect_results_identical(reference, batch.results[0]);
  // Degraded means no checkpoints were published at all.
  EXPECT_TRUE(fs::is_empty(dir));
}

TEST(RunHarness, DiskFullWithoutDegradeModeFailsTheRunLoudly) {
  // Batch tools keep the pre-existing contract: a full disk is an error the
  // operator must see, not something to silently soldier through.
  const auto cfg = dynamic_config("fixed_random");
  const fs::path dir = scratch_dir("no_degrade");
  RunOptions options;
  options.checkpoint.every = 25;
  options.checkpoint.dir = dir.string();
  options.control.max_attempts = 1;

  const util::FailpointScope scope("checkpoint.write.enospc", "1in1");
  const auto batch = run_many_result(cfg, 1, 1, options);
  ASSERT_EQ(batch.failures.size(), 1u);
  EXPECT_NE(batch.failures[0].error.find("out of space"), std::string::npos)
      << batch.failures[0].error;
}

}  // namespace
}  // namespace smartexp3::exp
