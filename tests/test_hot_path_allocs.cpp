// Steady-state allocation guard, promoted from bench/perf_engine into ctest:
// after warm-up, stepping a world must not touch the heap at all — for any
// policy. A regression here silently costs the multiple-x throughput the
// allocation-free hot-path refactor bought, so it fails the suite instead of
// only showing up in BENCH_engine.json.
#include <gtest/gtest.h>

#include <string>

#include "alloc_counter.hpp"
#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "exp/settings.hpp"

namespace smartexp3 {
namespace {

constexpr Slot kWarmupSlots = 300;
constexpr Slot kMeasureSlots = 200;

std::uint64_t steady_state_allocs(const std::string& policy) {
  // The fig06 scalability flavour perf_engine measures, scaled down.
  auto cfg = exp::scalability_setting(policy, /*k=*/3, /*n=*/20,
                                      kWarmupSlots + kMeasureSlots);
  auto world = exp::build_world(cfg, cfg.base_seed);
  for (Slot t = 0; t < kWarmupSlots; ++t) world->step();
  testing::start_alloc_counting();
  for (Slot t = 0; t < kMeasureSlots; ++t) world->step();
  return testing::stop_alloc_counting();
}

TEST(HotPathAllocs, EveryPolicyIsAllocationFreeInSteadyState) {
  auto policies = core::policy_names();
  for (const auto& n : core::extension_policy_names()) policies.push_back(n);
  for (const auto& policy : policies) {
    SCOPED_TRACE("policy " + policy);
    EXPECT_EQ(steady_state_allocs(policy), 0u);
  }
}

}  // namespace
}  // namespace smartexp3
