#include "netsim/network.hpp"

#include <gtest/gtest.h>

namespace smartexp3::netsim {
namespace {

TEST(Network, StaticCapacity) {
  const auto n = make_wifi(0, 11.0);
  EXPECT_DOUBLE_EQ(n.capacity(0), 11.0);
  EXPECT_DOUBLE_EQ(n.capacity(1000), 11.0);
  EXPECT_EQ(n.type, NetworkType::kWifi);
}

TEST(Network, TraceDrivenCapacity) {
  auto n = make_cellular(1, 5.0);
  n.trace = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(n.capacity(0), 1.0);
  EXPECT_DOUBLE_EQ(n.capacity(2), 3.0);
  // Past the end of the trace, the last value persists.
  EXPECT_DOUBLE_EQ(n.capacity(50), 3.0);
  // Negative slots clamp to the first value (defensive).
  EXPECT_DOUBLE_EQ(n.capacity(-1), 1.0);
}

TEST(Network, EmptyAreasCoverEverything) {
  const auto n = make_cellular(0, 10.0);
  EXPECT_TRUE(n.covers(0));
  EXPECT_TRUE(n.covers(17));
}

TEST(Network, RestrictedCoverage) {
  const auto n = make_wifi(0, 10.0, {1, 2});
  EXPECT_FALSE(n.covers(0));
  EXPECT_TRUE(n.covers(1));
  EXPECT_TRUE(n.covers(2));
  EXPECT_FALSE(n.covers(3));
}

TEST(Network, DefaultLabels) {
  EXPECT_EQ(make_wifi(3, 1.0).label, "wifi-3");
  EXPECT_EQ(make_cellular(4, 1.0).label, "cell-4");
  EXPECT_EQ(make_wifi(3, 1.0, {}, "ap-lobby").label, "ap-lobby");
}

TEST(VisibleNetworks, FiltersByArea) {
  const std::vector<Network> nets = {
      make_cellular(0, 16.0),          // everywhere
      make_wifi(1, 14.0, {0}),         // food court
      make_wifi(2, 22.0, {0, 1}),      // food court + study area
      make_wifi(3, 7.0, {1}),          // study area
      make_wifi(4, 4.0, {2}),          // bus stop
  };
  EXPECT_EQ(visible_networks(nets, 0), (std::vector<NetworkId>{0, 1, 2}));
  EXPECT_EQ(visible_networks(nets, 1), (std::vector<NetworkId>{0, 2, 3}));
  EXPECT_EQ(visible_networks(nets, 2), (std::vector<NetworkId>{0, 4}));
}

TEST(NetworkTypeNames, Stringify) {
  EXPECT_EQ(to_string(NetworkType::kWifi), "wifi");
  EXPECT_EQ(to_string(NetworkType::kCellular), "cellular");
}

}  // namespace
}  // namespace smartexp3::netsim
