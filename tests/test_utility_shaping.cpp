#include "core/utility_shaping.hpp"

#include <gtest/gtest.h>

#include "core/exp3.hpp"
#include "core/greedy.hpp"
#include "policy_test_util.hpp"

namespace smartexp3::core {
namespace {

std::unique_ptr<Policy> wrapped_exp3(UtilityWeights weights,
                                     std::unordered_map<NetworkId, NetworkCosts> costs,
                                     std::uint64_t seed = 3) {
  return make_utility_shaped(std::make_unique<Exp3>(seed), weights, std::move(costs),
                             /*gain_scale_mbps=*/22.0);
}

TEST(UtilityShaping, NoCostsIsIdentity) {
  auto plain = std::make_unique<Exp3>(1);
  auto shaped = wrapped_exp3(UtilityWeights{}, {}, 1);
  plain->set_networks({0, 1});
  shaped->set_networks({0, 1});
  for (int t = 0; t < 500; ++t) {
    const NetworkId a = plain->choose(t);
    const NetworkId b = shaped->choose(t);
    ASSERT_EQ(a, b) << t;
    auto fb = testing::feedback(a == 0 ? 0.8 : 0.2);
    plain->observe(t, fb);
    shaped->observe(t, fb);
  }
}

TEST(UtilityShaping, ShapeDiscountsMonetaryCost) {
  std::unordered_map<NetworkId, NetworkCosts> costs;
  costs[1] = {0.02, 0.0};  // 0.02 / MB on network 1
  UtilityWeights w;
  w.cost = 1.0;
  UtilityShapedPolicy p(std::make_unique<Exp3>(2), w, costs, 22.0);
  // gain 1.0 on the metered network: 41.25 MB this slot -> cost 0.825.
  EXPECT_NEAR(p.shape(1, 1.0), 1.0 - 0.825, 1e-9);
  // the free network is untouched.
  EXPECT_DOUBLE_EQ(p.shape(0, 1.0), 1.0);
}

TEST(UtilityShaping, ShapeDiscountsEnergy) {
  std::unordered_map<NetworkId, NetworkCosts> costs;
  costs[0] = {0.0, 0.3};
  UtilityWeights w;
  w.energy = 0.5;
  UtilityShapedPolicy p(std::make_unique<Exp3>(2), w, costs, 22.0);
  EXPECT_NEAR(p.shape(0, 0.5), 0.5 - 0.15, 1e-9);
}

TEST(UtilityShaping, UtilityClampedToUnitInterval) {
  std::unordered_map<NetworkId, NetworkCosts> costs;
  costs[0] = {10.0, 0.0};  // absurdly expensive
  UtilityWeights w;
  w.cost = 1.0;
  UtilityShapedPolicy p(std::make_unique<Exp3>(2), w, costs, 22.0);
  EXPECT_DOUBLE_EQ(p.shape(0, 1.0), 0.0);
  w.rate = 5.0;
  UtilityShapedPolicy q(std::make_unique<Exp3>(2), w, {}, 22.0);
  EXPECT_DOUBLE_EQ(q.shape(0, 0.9), 1.0);  // clamped above
}

TEST(UtilityShaping, CostAwareLearnerAvoidsMeteredNetwork) {
  // Free 6 Mbps WiFi vs metered 22 Mbps cellular: throughput says cellular,
  // utility says WiFi.
  std::unordered_map<NetworkId, NetworkCosts> costs;
  costs[1] = {0.02, 0.1};
  UtilityWeights aware;
  aware.cost = 1.0;
  aware.energy = 1.0;
  auto run = [&](UtilityWeights weights) {
    auto policy = wrapped_exp3(weights, costs, 5);
    policy->set_networks({0, 1});
    int cellular = 0;
    for (int t = 0; t < 3000; ++t) {
      const NetworkId c = policy->choose(t);
      cellular += c == 1 ? 1 : 0;
      auto fb = testing::feedback((c == 0 ? 6.0 : 22.0) / 22.0);
      policy->observe(t, fb);
    }
    return cellular;
  };
  const int unaware_cellular = run(UtilityWeights{});
  const int aware_cellular = run(aware);
  EXPECT_GT(unaware_cellular, 2000);
  EXPECT_LT(aware_cellular, 1000);
}

TEST(UtilityShaping, FullInformationFeedbackShapedPerNetwork) {
  std::unordered_map<NetworkId, NetworkCosts> costs;
  costs[1] = {0.0, 0.5};
  UtilityWeights w;
  w.energy = 1.0;
  auto policy = wrapped_exp3(w, costs, 6);
  policy->set_networks({0, 1});
  // Feed full-information feedback; only network 1's entries are shaped, so
  // the learner should end up preferring network 0 despite equal raw gains.
  for (int t = 0; t < 1000; ++t) {
    const NetworkId c = policy->choose(t);
    auto fb = testing::full_feedback({0.6, 0.6}, static_cast<std::size_t>(c));
    policy->observe(t, fb);
  }
  const auto p = policy->probabilities();
  EXPECT_GT(p[0], p[1]);
}

TEST(UtilityShaping, DelegationPreservesInterface) {
  auto policy = make_utility_shaped(std::make_unique<GreedyPolicy>(7),
                                    UtilityWeights{}, {}, 22.0);
  policy->set_networks({3, 5, 9});
  EXPECT_EQ(policy->networks(), (std::vector<NetworkId>{3, 5, 9}));
  EXPECT_EQ(policy->name(), "utility_shaped(greedy)");
  const NetworkId c = policy->choose(0);
  EXPECT_TRUE(c == 3 || c == 5 || c == 9);
  EXPECT_EQ(policy->probabilities().size(), 3u);
  EXPECT_EQ(policy->stats().resets, 0);
}

TEST(UtilityShaping, RejectsBadConstruction) {
  EXPECT_THROW(UtilityShapedPolicy(nullptr, {}, {}, 22.0), std::invalid_argument);
  EXPECT_THROW(UtilityShapedPolicy(std::make_unique<Exp3>(1), {}, {}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace smartexp3::core
