// Memory-per-device budget for the sharded SoA engine.
//
// The scalability_xl setting exists to run 10^5..10^6 devices in one world,
// which only works if per-device state stays constant and small as the pool
// grows: every hot field lives in a structure-of-arrays pool reserved up
// front, scratch scales with lanes (not devices), and the policy objects
// are the only per-device heap allocations. This test measures the
// *marginal* construction cost — bytes allocated per additional device
// between two pool sizes — so fixed world overhead (network tables,
// fair-share caches, executor lanes) cancels out, and pins it under a
// budget. A per-device field sneaking into per-slot reallocation or a
// policy growing a super-constant footprint fails this long before the CI
// box runs out of RAM.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "alloc_counter.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "netsim/world.hpp"

namespace smartexp3 {
namespace {

/// Bytes requested from the heap while building (and briefly stepping) a
/// scalability_xl world of `devices` devices. The world is destroyed before
/// counting stops, so only the requested-byte total (cumulative churn) is
/// meaningful — construction reserves the pool arrays once, so churn tracks
/// the real footprint to within the usual vector-growth constant.
std::uint64_t build_and_step_bytes(int devices) {
  auto cfg = exp::make_setting(
      "scalability_xl", {.devices = devices, .horizon = 3, .networks = 5});
  smartexp3::testing::start_alloc_counting();
  {
    auto world = exp::build_world(cfg, cfg.base_seed);
    // A couple of slots so one-time lazy structures (policy groups, lane
    // scratch, fair-share caches) are also on the bill.
    world->run();
  }
  return smartexp3::testing::stop_alloc_counting_stats().bytes;
}

TEST(MemoryBudget, MarginalBytesPerDeviceIsSmallAndConstant) {
  const int n1 = 20000;
  const int n2 = 40000;
  const int n3 = 80000;
  const std::uint64_t b1 = build_and_step_bytes(n1);
  const std::uint64_t b2 = build_and_step_bytes(n2);
  const std::uint64_t b3 = build_and_step_bytes(n3);
  ASSERT_GT(b2, b1);
  ASSERT_GT(b3, b2);

  const double low = static_cast<double>(b2 - b1) / (n2 - n1);
  const double high = static_cast<double>(b3 - b2) / (n3 - n2);

  // Small: a smart_exp3_noreset device on 5 networks owns its SoA slots, a
  // policy object with k weight rows and an RNG, and one DeviceSpec (whose
  // policy_name string is the only per-device heap string). The measured
  // marginal cost on the reference box is ~3.4 KiB — the live state plus
  // the construction churn of copying the spec vector into the world — and
  // the 4 KiB budget pins it there: an accidental per-device map, per-slot
  // reallocation, or super-constant policy footprint blows well past it.
  constexpr double kBudgetBytesPerDevice = 4096.0;
  EXPECT_LT(low, kBudgetBytesPerDevice) << "bytes/device at " << n1 << "->" << n2;
  EXPECT_LT(high, kBudgetBytesPerDevice) << "bytes/device at " << n2 << "->" << n3;

  // Constant: doubling the pool again must not change the marginal cost by
  // more than vector-growth noise.
  EXPECT_LT(high, low * 1.5) << "marginal cost grows with device count";
  EXPECT_GT(high, low * 0.5) << "marginal cost shrank implausibly (measurement bug?)";
}

TEST(MemoryBudget, ScalabilityXlRunsEndToEndAt100kDevices) {
  // The acceptance-criteria smoke: a 10^5-device world builds, shards
  // automatically, runs a short horizon to completion, and the occupancy
  // sums stay consistent with the device count throughout.
  auto cfg = exp::make_setting("scalability_xl", {.devices = 100000, .horizon = 5});
  auto world = exp::build_world(cfg, cfg.base_seed);
  EXPECT_EQ(world->shard_count(), 7);  // ceil(100000 / 16384)
  while (!world->done()) {
    world->step();
    long total = 0;
    for (const int c : world->counts()) total += c;
    ASSERT_EQ(total, world->active_device_count());
  }
  const auto& pool = world->devices();
  ASSERT_EQ(pool.size(), 100000u);
  double downloaded = 0.0;
  for (const double mb : pool.download_mb) downloaded += mb;
  EXPECT_GT(downloaded, 0.0);
}

}  // namespace
}  // namespace smartexp3
