// Shared helpers for driving policies by hand in unit tests.
#pragma once

#include <vector>

#include "core/policy.hpp"

namespace smartexp3::testing {

/// Feedback with a given scaled gain (and matching bit rate for a 1 Mbps
/// gain scale).
inline core::SlotFeedback feedback(double gain) {
  core::SlotFeedback fb;
  fb.gain = gain;
  fb.bit_rate_mbps = gain;
  return fb;
}

/// Full-information feedback with per-network scaled gains.
inline core::SlotFeedback full_feedback(std::vector<double> gains, std::size_t chosen) {
  core::SlotFeedback fb;
  fb.all_gains = std::move(gains);
  fb.all_rates_mbps = fb.all_gains;
  fb.gain = fb.all_gains.at(chosen);
  fb.bit_rate_mbps = fb.gain;
  return fb;
}

/// Drive a policy for `slots` slots where network `good` always yields gain
/// `high` and every other network yields `low`. Returns how often each
/// network was chosen.
inline std::vector<int> drive_two_level(core::Policy& policy, int slots, NetworkId good,
                                        double high, double low) {
  std::vector<int> counts(policy.networks().size(), 0);
  for (int t = 0; t < slots; ++t) {
    const NetworkId chosen = policy.choose(t);
    for (std::size_t i = 0; i < policy.networks().size(); ++i) {
      if (policy.networks()[i] == chosen) ++counts[i];
    }
    policy.observe(t, feedback(chosen == good ? high : low));
  }
  return counts;
}

}  // namespace smartexp3::testing
