#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "exp/aggregate.hpp"
#include "exp/settings.hpp"

namespace smartexp3::exp {
namespace {

ExperimentConfig tiny(const std::string& policy) {
  auto cfg = static_setting1(policy, /*n_devices=*/5, /*horizon=*/60);
  cfg.delay = DelayKind::kZero;
  return cfg;
}

TEST(Runner, RunOnceIsDeterministicPerSeed) {
  const auto cfg = tiny("smart_exp3");
  const auto a = run_once(cfg, 7);
  const auto b = run_once(cfg, 7);
  EXPECT_EQ(a.downloads_mb, b.downloads_mb);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.distance(), b.distance());
}

TEST(Runner, DifferentSeedsDiffer) {
  const auto cfg = tiny("smart_exp3");
  const auto a = run_once(cfg, 7);
  const auto b = run_once(cfg, 8);
  EXPECT_NE(a.downloads_mb, b.downloads_mb);
}

TEST(Runner, RunManyMatchesRunOnceSeeding) {
  auto cfg = tiny("exp3");
  cfg.base_seed = 100;
  const auto many = run_many(cfg, 4, /*threads=*/2);
  ASSERT_EQ(many.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    const auto solo = run_once(cfg, 100 + static_cast<std::uint64_t>(r));
    EXPECT_EQ(many[static_cast<std::size_t>(r)].downloads_mb, solo.downloads_mb) << r;
  }
}

TEST(Runner, ThreadCountDoesNotChangeResults) {
  auto cfg = tiny("smart_exp3");
  const auto seq = run_many(cfg, 6, /*threads=*/1);
  const auto par = run_many(cfg, 6, /*threads=*/6);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].downloads_mb, par[i].downloads_mb) << i;
    EXPECT_EQ(seq[i].switches, par[i].switches) << i;
  }
}

TEST(Runner, ZeroRunsIsEmpty) {
  EXPECT_TRUE(run_many(tiny("greedy"), 0).empty());
}

TEST(Runner, InvalidPolicyNameThrows) {
  auto cfg = tiny("no_such_policy");
  EXPECT_THROW(run_once(cfg, 1), std::invalid_argument);
}

TEST(Runner, ReproRunsEnvOverride) {
  ::setenv("REPRO_RUNS", "123", 1);
  EXPECT_EQ(repro_runs(60), 123);
  // Out-of-range values clamp (with a one-time stderr warning) instead of
  // flowing through unchecked; unparsable text keeps the fallback.
  ::setenv("REPRO_RUNS", "0", 1);
  EXPECT_EQ(repro_runs(60), 1);
  ::setenv("REPRO_RUNS", "-7", 1);
  EXPECT_EQ(repro_runs(60), 1);
  ::setenv("REPRO_RUNS", "99999999999", 1);
  EXPECT_EQ(repro_runs(60), 1'000'000);
  ::setenv("REPRO_RUNS", "garbage", 1);
  EXPECT_EQ(repro_runs(60), 60);
  ::setenv("REPRO_RUNS", "12x", 1);
  EXPECT_EQ(repro_runs(60), 60);
  ::setenv("REPRO_RUNS", "", 1);
  EXPECT_EQ(repro_runs(60), 60);
  ::unsetenv("REPRO_RUNS");
  EXPECT_EQ(repro_runs(60), 60);
}

TEST(Runner, WorldThreadsEnvOverride) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int max_lanes = hw > 0 ? static_cast<int>(hw) : 1;
  ::setenv("WORLD_THREADS", "4", 1);
  // Requests beyond the machine's cores clamp to hardware_concurrency
  // (oversubscribed lanes only slow the barrier down; the trajectory is
  // thread-count-invariant either way).
  EXPECT_EQ(world_threads(1), std::min(4, max_lanes));
  ::setenv("WORLD_THREADS", "1", 1);
  EXPECT_EQ(world_threads(2), 1);
  ::setenv("WORLD_THREADS", "0", 1);
  EXPECT_EQ(world_threads(1), 0);  // explicit 0 = all cores
  // A negative lane count has no nearest meaning — clamping it to 0 would
  // silently request every core, so it keeps the fallback (with a warning).
  ::setenv("WORLD_THREADS", "-3", 1);
  EXPECT_EQ(world_threads(1), 1);
  ::setenv("WORLD_THREADS", "garbage", 1);
  EXPECT_EQ(world_threads(1), 1);
  ::setenv("WORLD_THREADS", "1000000000", 1);
  EXPECT_EQ(world_threads(1), max_lanes);
  ::unsetenv("WORLD_THREADS");
  EXPECT_EQ(world_threads(3), 3);
}

TEST(Aggregate, SwitchSummaryPoolsDevices) {
  metrics::RunResult a;
  a.switches = {1, 3};
  a.persistent = {true, true};
  metrics::RunResult b;
  b.switches = {5, 7};
  b.persistent = {true, false};
  const auto all = switch_summary({a, b});
  EXPECT_DOUBLE_EQ(all.mean, 4.0);
  const auto persist = switch_summary({a, b}, /*persistent_only=*/true);
  EXPECT_DOUBLE_EQ(persist.mean, 3.0);
}

TEST(Aggregate, MedianDownloadOfRunMedians) {
  metrics::RunResult a;
  a.downloads_mb = {1.0, 2.0, 3.0};  // median 2
  metrics::RunResult b;
  b.downloads_mb = {10.0, 20.0, 30.0};  // median 20
  EXPECT_DOUBLE_EQ(mean_of_run_median_download_mb({a, b}), 11.0);
}

TEST(Aggregate, StabilitySummary) {
  metrics::RunResult stable_ne;
  stable_ne.stability = {true, 100, true};
  metrics::RunResult stable_other;
  stable_other.stability = {true, 300, false};
  metrics::RunResult unstable;
  unstable.stability = {false, -1, false};
  const auto s = stability_summary({stable_ne, stable_other, unstable});
  EXPECT_NEAR(s.stable_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.stable_at_nash_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.median_stable_slot, 200.0);
}

TEST(Aggregate, StabilitySummaryNoStableRuns) {
  metrics::RunResult unstable;
  unstable.stability = {false, -1, false};
  const auto s = stability_summary({unstable});
  EXPECT_DOUBLE_EQ(s.stable_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.median_stable_slot, -1.0);
}

TEST(Aggregate, MeanDistanceSeriesAcrossRuns) {
  metrics::RunResult a;
  a.group_distance = {{10.0, 20.0}};
  metrics::RunResult b;
  b.group_distance = {{30.0, 40.0}};
  const auto m = mean_distance_series({a, b});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 20.0);
  EXPECT_DOUBLE_EQ(m[1], 30.0);
}

TEST(Aggregate, DownsampleStride) {
  const std::vector<double> xs = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(downsample(xs, 3), (std::vector<double>{0, 3, 6}));
  EXPECT_EQ(downsample(xs, 1), xs);
  EXPECT_EQ(downsample(xs, 0), xs);  // defensive: stride 0 treated as 1
}

TEST(Aggregate, MedianTotalsForTraceRuns) {
  metrics::RunResult a;
  a.total_download_mb = 700.0;
  a.switching_cost_mb = {30.0, 10.0};
  metrics::RunResult b;
  b.total_download_mb = 800.0;
  b.switching_cost_mb = {20.0};
  metrics::RunResult c;
  c.total_download_mb = 900.0;
  c.switching_cost_mb = {50.0};
  EXPECT_DOUBLE_EQ(median_total_download_mb({a, b, c}), 800.0);
  EXPECT_DOUBLE_EQ(median_total_switching_cost_mb({a, b, c}), 40.0);
}

}  // namespace
}  // namespace smartexp3::exp
