// ScenarioSpec round-trip and parser tests.
//
// The round-trip contract is the strong one: for canonical settings (and the
// deliberately messy golden scenario), builder config -> spec text -> parsed
// config must simulate the exact same trajectory under the same seed — every
// per-slot series, download and switch count bit-identical. Plus the parser
// error paths: truncated input, unknown keys, type mismatches, bad enums.
#include "exp/spec_io.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "exp/jsonish.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "golden_scenario.hpp"

namespace smartexp3::exp {
namespace {

void expect_identical_results(const metrics::RunResult& a, const metrics::RunResult& b) {
  EXPECT_EQ(a.group_distance, b.group_distance);
  EXPECT_EQ(a.def4, b.def4);
  EXPECT_EQ(a.group_def4, b.group_def4);
  EXPECT_EQ(a.at_nash_fraction, b.at_nash_fraction);
  EXPECT_EQ(a.eps_fraction, b.eps_fraction);
  EXPECT_EQ(a.stability.stable, b.stability.stable);
  EXPECT_EQ(a.stability.stable_slot, b.stability.stable_slot);
  EXPECT_EQ(a.stability.at_nash, b.stability.at_nash);
  EXPECT_EQ(a.stability.at_eps_nash, b.stability.at_eps_nash);
  EXPECT_EQ(a.downloads_mb, b.downloads_mb);
  EXPECT_EQ(a.switching_cost_mb, b.switching_cost_mb);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.resets, b.resets);
  EXPECT_EQ(a.switch_backs, b.switch_backs);
  EXPECT_EQ(a.persistent, b.persistent);
  EXPECT_EQ(a.total_download_mb, b.total_download_mb);
  EXPECT_EQ(a.unused_mb, b.unused_mb);
  EXPECT_EQ(a.selections, b.selections);
  EXPECT_EQ(a.rates, b.rates);
}

/// The round-trip determinism pin: write, parse, and run both configs under
/// the same seed; the trajectories must be bit-identical.
void expect_round_trip_determinism(const ExperimentConfig& cfg, std::uint64_t seed) {
  const std::string text = to_spec_text(cfg);
  const ExperimentConfig parsed = parse_spec_text(text);
  expect_identical_results(run_once(cfg, seed), run_once(parsed, seed));
  // The writer is deterministic and the parse is lossless, so a second
  // round trip must reproduce the text byte for byte.
  EXPECT_EQ(to_spec_text(parsed), text);
}

TEST(SpecRoundTrip, Setting1) {
  auto cfg = make_setting("setting1", {.horizon = 150});
  cfg.recorder.track_stability = true;
  expect_round_trip_determinism(cfg, 42);
}

TEST(SpecRoundTrip, MobilityWithGroupsAndCoverage) {
  // Mobility carries coverage areas, move events and recorder groups.
  expect_round_trip_determinism(make_setting("mobility"), 7);
}

TEST(SpecRoundTrip, ControlledNoisyShare) {
  // Controlled carries the noisy-share parameters and Definition 4 tracking.
  expect_round_trip_determinism(make_setting("controlled", {.horizon = 120}), 99);
}

TEST(SpecRoundTrip, TraceNetworks) {
  // Traces serialize per-slot capacities; selections/rates timelines on.
  expect_round_trip_determinism(make_setting("trace3"), 3);
}

TEST(SpecRoundTrip, ChannelFixedDelay) {
  expect_round_trip_determinism(make_setting("channel", {.horizon = 150}), 5);
}

TEST(SpecRoundTrip, GoldenScenario) {
  // The deliberately messy engine pin: mixed policies, joins, leaves, moves,
  // a capacity change and restricted visibility — all through the text form.
  expect_round_trip_determinism(testing::golden_config(), testing::kGoldenSeed);
}

TEST(SpecRoundTrip, EveryRegistrySettingParses) {
  for (const auto& info : setting_catalog()) {
    const auto cfg = make_setting(info.name);
    const auto parsed = parse_spec_text(to_spec_text(cfg));
    EXPECT_EQ(parsed.name, cfg.name) << info.name;
    EXPECT_EQ(parsed.devices.size(), cfg.devices.size()) << info.name;
    EXPECT_EQ(parsed.networks.size(), cfg.networks.size()) << info.name;
    EXPECT_TRUE(parsed.validate().empty()) << info.name;
  }
}

TEST(SpecRoundTrip, DeviceGroupingIsLossless) {
  // The golden scenario's device table has mid-run attribute changes and
  // 0-based ids; grouping must reproduce it spec-for-spec.
  const auto cfg = testing::golden_config();
  const auto parsed = parse_spec_text(to_spec_text(cfg));
  ASSERT_EQ(parsed.devices.size(), cfg.devices.size());
  for (std::size_t i = 0; i < cfg.devices.size(); ++i) {
    EXPECT_EQ(parsed.devices[i].id, cfg.devices[i].id);
    EXPECT_EQ(parsed.devices[i].area, cfg.devices[i].area);
    EXPECT_EQ(parsed.devices[i].join_slot, cfg.devices[i].join_slot);
    EXPECT_EQ(parsed.devices[i].leave_slot, cfg.devices[i].leave_slot);
    EXPECT_EQ(parsed.devices[i].policy_name, cfg.devices[i].policy_name);
  }
}

// ---------------------------------------------------------------------------
// Parser error paths
// ---------------------------------------------------------------------------

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    parse_spec_text(text);
    FAIL() << "expected SpecError containing '" << needle << "'";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(SpecParser, TruncatedFile) {
  const std::string full = to_spec_text(make_setting("setting1"));
  expect_parse_error(full.substr(0, full.size() / 2), "truncated");
  expect_parse_error("{\"name\": \"x\"", "truncated");
  expect_parse_error("", "truncated");
}

TEST(SpecParser, UnknownKey) {
  expect_parse_error(R"({"networks": [], "device_groups": [], "horizonn": 10})",
                     "unknown key 'horizonn'");
  expect_parse_error(
      R"({"networks": [], "device_groups": [], "world": {"horizont": 10}})",
      "unknown key 'horizont'");
  expect_parse_error(
      R"({"networks": [{"id": 0, "type": "wifi", "capacity_mbps": 1, "mbps": 2}],
          "device_groups": []})",
      "unknown key 'mbps'");
}

TEST(SpecParser, TypeMismatch) {
  expect_parse_error(
      R"({"networks": [], "device_groups": [], "world": {"horizon": "long"}})",
      "expected number, found string");
  expect_parse_error(
      R"({"networks": [], "device_groups": [], "world": {"horizon": 1.5}})",
      "expected an integer");
  expect_parse_error(R"({"networks": [], "device_groups": [], "name": 3})",
                     "expected string, found number");
  expect_parse_error(R"({"networks": {}, "device_groups": []})",
                     "expected array, found object");
  expect_parse_error(R"({"networks": [], "device_groups": [], "base_seed": -4})",
                     "non-negative");
}

TEST(SpecParser, BadEnumValues) {
  expect_parse_error(
      R"({"networks": [{"id": 0, "type": "wimax", "capacity_mbps": 1}],
          "device_groups": []})",
      "expected \"wifi\" or \"cellular\"");
  expect_parse_error(
      R"({"networks": [], "device_groups": [], "share": {"kind": "lossy"}})",
      "expected \"equal\" or \"noisy\"");
  expect_parse_error(
      R"({"networks": [], "device_groups": [], "delay": {"kind": "random"}})",
      "expected \"distribution\", \"zero\" or \"fixed\"");
}

TEST(SpecParser, MissingRequiredKeys) {
  expect_parse_error(R"({"device_groups": []})", "missing required key 'networks'");
  expect_parse_error(R"({"networks": []})", "missing required key 'device_groups'");
  expect_parse_error(
      R"({"networks": [], "device_groups": [{"count": 1, "policy": "greedy"}]})",
      "missing required key 'first_id'");
}

TEST(SpecParser, StructuralErrors) {
  expect_parse_error("{\"networks\": [], \"device_groups\": []} trailing",
                     "trailing content");
  expect_parse_error(R"({"networks": [], "networks": []})", "duplicate key");
  expect_parse_error(R"({"networks": [] "device_groups": []})", "expected ','");
  expect_parse_error(R"({"networks": [], "device_groups": [], "base_seed": 012})",
                     "leading zeros");
  expect_parse_error(R"({"spec_version": 99, "networks": [], "device_groups": []})",
                     "unsupported version");
}

TEST(SpecParser, DeviceGroupCountMustBePositive) {
  expect_parse_error(
      R"({"networks": [],
          "device_groups": [{"first_id": 1, "count": 0, "policy": "greedy"}]})",
      "outside");
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
  // The unknown key sits on line 3; the message must say so.
  const std::string text =
      "{\n  \"networks\": [],\n  \"device_groups\": [],\n  \"bogus\": 1\n}\n";
  try {
    parse_spec_text(text);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(SpecParser, NonFiniteNumberLiteralsRejected) {
  // IEEE non-finite spellings must not slip in as numbers — a NaN capacity
  // would quietly poison every share computation downstream.
  expect_parse_error(R"({"networks": [], "device_groups": [], "epsilon": nan})",
                     "non-finite");
  expect_parse_error(R"({"networks": [], "device_groups": [], "epsilon": -nan})",
                     "non-finite");
  expect_parse_error(R"({"networks": [], "device_groups": [], "epsilon": inf})",
                     "non-finite");
  expect_parse_error(R"({"networks": [], "device_groups": [], "epsilon": -inf})",
                     "non-finite");
  expect_parse_error(R"({"networks": [], "device_groups": [], "epsilon": Infinity})",
                     "non-finite");
  expect_parse_error(R"({"networks": [], "device_groups": [], "epsilon": NaN})",
                     "non-finite");
  // Overflow is the other route to infinity; the token is named either way.
  expect_parse_error(R"({"networks": [], "device_groups": [], "epsilon": 1e999})",
                     "1e999");
}

TEST(SpecParser, NullIsRejectedWithAHint) {
  expect_parse_error(R"({"networks": null, "device_groups": []})", "null");
}

TEST(SpecParser, DeepNestingFailsCleanly) {
  // A "[[[[..." bomb must hit the depth bound, not the process stack.
  expect_parse_error(std::string(10000, '['), "nesting too deep");
  std::string objects;
  for (int i = 0; i < 10000; ++i) objects += "{\"k\":";
  expect_parse_error(objects, "nesting too deep");
}

TEST(SpecParser, BadStringEscapesRejected) {
  expect_parse_error(R"({"networks": [], "device_groups": [], "name": "a\qb"})",
                     "invalid escape");
  expect_parse_error(R"({"networks": [], "device_groups": [], "name": "a\u12g4"})",
                     "invalid \\u escape");
  expect_parse_error(R"({"networks": [], "device_groups": [], "name": "a\ud800b"})",
                     "surrogate");
  expect_parse_error("{\"networks\": [], \"device_groups\": [], \"name\": \"a\nb\"}",
                     "raw control character");
}

TEST(SpecParser, EscapedStringsRoundTrip) {
  auto cfg = make_setting("setting1");
  cfg.name = "quote \" slash \\ tab \t newline \n done";
  const auto parsed = parse_spec_text(to_spec_text(cfg));
  EXPECT_EQ(parsed.name, cfg.name);
}

TEST(SpecParser, MinimalSpecGetsDefaults) {
  // Hand-written specs may omit every optional section.
  const auto cfg = parse_spec_text(
      R"({"networks": [{"id": 0, "type": "wifi", "capacity_mbps": 10}],
          "device_groups": [{"first_id": 1, "count": 3, "policy": "greedy"}]})");
  EXPECT_EQ(cfg.world.horizon, 1200);
  EXPECT_EQ(cfg.base_seed, 42u);
  EXPECT_EQ(cfg.share, ShareKind::kEqual);
  EXPECT_EQ(cfg.delay, DelayKind::kDistribution);
  ASSERT_EQ(cfg.devices.size(), 3u);
  EXPECT_EQ(cfg.devices[0].id, 1);
  EXPECT_EQ(cfg.devices[2].id, 3);
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(JsonWriterOutput, NonFiniteNumbersCannotBeWritten) {
  // The writer refuses what the parser rejects — the format can never emit a
  // document it could not read back.
  EXPECT_THROW(json_number(std::numeric_limits<double>::infinity()), JsonError);
  EXPECT_THROW(json_number(-std::numeric_limits<double>::infinity()), JsonError);
  EXPECT_THROW(json_number(std::numeric_limits<double>::quiet_NaN()), JsonError);
  EXPECT_EQ(json_number(2.5), "2.5");
}

TEST(SpecFiles, SaveAndLoad) {
  const auto cfg = make_setting("setting2");
  const std::string path = ::testing::TempDir() + "spec_io_roundtrip.json";
  save_spec_file(cfg, path);
  const auto loaded = load_spec_file(path);
  EXPECT_EQ(to_spec_text(loaded), to_spec_text(cfg));
  EXPECT_THROW(load_spec_file(path + ".does-not-exist"), SpecError);
}

}  // namespace
}  // namespace smartexp3::exp
