#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace smartexp3::stats {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NearbySeedsDecorrelated) {
  // SplitMix64 seeding must prevent base_seed / base_seed+1 correlation.
  Rng a(42);
  Rng b(43);
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (int i = 0; i < 10000; ++i) {
    sum_a += a.uniform();
    sum_b += b.uniform();
  }
  EXPECT_NEAR(sum_a / 10000.0, 0.5, 0.02);
  EXPECT_NEAR(sum_b / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformLoHi) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    ASSERT_GE(u, 3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversAllValuesWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
  }
}

TEST(Rng, IntInInclusiveBounds) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.int_in(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ReseedFullyDeterminesSubsequentOutput) {
  // Regression: the Box–Muller normal() kept a cached half-sample that
  // survived reseed(), so a reseeded generator could emit one stale normal
  // before rejoining the fresh stream. reseed() must clear *all* derived
  // state: after reseed(s), every draw — raw or derived — must match a
  // freshly constructed Rng(s), regardless of what was drawn before.
  Rng reseeded(7);
  for (int i = 0; i < 3; ++i) (void)reseeded.normal();  // odd draw history
  (void)reseeded.uniform();
  reseeded.reseed(7);
  Rng fresh(7);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(reseeded.normal(), fresh.normal()) << "draw " << i;
  }
  reseeded.reseed(7);
  fresh.reseed(7);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(reseeded(), fresh()) << "draw " << i;
  }
}

TEST(Rng, NormalConsumesExactlyOneOutput) {
  // The inverse-CDF normal is a pure map of a single 64-bit output: the
  // stream position after n normals equals the position after n raw draws.
  Rng a(11);
  Rng b(11);
  for (int i = 0; i < 1000; ++i) (void)a.normal();
  for (int i = 0; i < 1000; ++i) (void)b();
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  double sum = 0.0;
  double ss = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    ss += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(ss / n, 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CoinIsFair) {
  Rng rng(29);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.01);
}

TEST(Rng, SampleDiscreteRespectsDistribution) {
  Rng rng(31);
  const std::vector<double> probs = {0.1, 0.6, 0.3};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.sample_discrete(probs)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, SampleDiscreteDegenerateDistribution) {
  Rng rng(37);
  const std::vector<double> probs = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.sample_discrete(probs), 1u);
  }
}

TEST(Rng, SampleDiscreteUnderNormalisedMassFallsToLast) {
  Rng rng(41);
  // Total mass 0.2: most draws land past the end and must clamp to last.
  const std::vector<double> probs = {0.1, 0.1};
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.sample_discrete(probs);
    ASSERT_LT(v, 2u);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(47);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's output.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace smartexp3::stats
