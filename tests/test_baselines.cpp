// Fixed Random and Full Information baselines.
#include <gtest/gtest.h>

#include <set>

#include "core/fixed_random.hpp"
#include "core/full_information.hpp"
#include "policy_test_util.hpp"

namespace smartexp3::core {
namespace {

using testing::feedback;
using testing::full_feedback;

TEST(FixedRandom, PicksOnceAndNeverMoves) {
  FixedRandomPolicy policy(1);
  policy.set_networks({0, 1, 2});
  const NetworkId first = policy.choose(0);
  for (int t = 1; t < 500; ++t) {
    ASSERT_EQ(policy.choose(t), first);
    policy.observe(t, feedback(0.1));
  }
}

TEST(FixedRandom, DifferentSeedsPickDifferentNetworks) {
  std::set<NetworkId> picks;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FixedRandomPolicy policy(seed);
    policy.set_networks({0, 1, 2});
    picks.insert(policy.choose(0));
  }
  EXPECT_EQ(picks.size(), 3u);
}

TEST(FixedRandom, RedrawsOnlyWhenItsNetworkDisappears) {
  FixedRandomPolicy policy(2);
  policy.set_networks({0, 1, 2});
  const NetworkId first = policy.choose(0);
  // Keep {first, one other}: removing an unrelated network must not
  // dislodge the pick.
  std::vector<NetworkId> keep = {first};
  for (const NetworkId id : {0, 1, 2}) {
    if (id != first && keep.size() < 2) keep.push_back(id);
  }
  std::sort(keep.begin(), keep.end());
  policy.set_networks(keep);
  EXPECT_EQ(policy.choose(1), first);
  // Now remove its own network: it must re-draw a valid one.
  std::vector<NetworkId> others;
  for (const NetworkId id : keep) {
    if (id != first) others.push_back(id);
  }
  policy.set_networks(others);
  const NetworkId redrawn = policy.choose(2);
  EXPECT_NE(redrawn, first);
  EXPECT_EQ(redrawn, others.front());
}

TEST(FixedRandom, ProbabilitiesOneHotAfterPick) {
  FixedRandomPolicy policy(3);
  policy.set_networks({0, 1});
  const NetworkId pick = policy.choose(0);
  const auto p = policy.probabilities();
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(p[i], policy.networks()[i] == pick ? 1.0 : 0.0);
  }
}

TEST(FullInformation, LearnsFromUnchosenArms) {
  FullInformationPolicy policy(4);
  policy.set_networks({0, 1, 2});
  // Arm 2 is the best, but feed full information regardless of the choice;
  // the policy must concentrate on arm 2 even if it rarely picks it early.
  for (int t = 0; t < 800; ++t) {
    const NetworkId c = policy.choose(t);
    std::size_t chosen_idx = 0;
    for (std::size_t i = 0; i < policy.networks().size(); ++i) {
      if (policy.networks()[i] == c) chosen_idx = i;
    }
    policy.observe(t, full_feedback({0.2, 0.4, 0.9}, chosen_idx));
  }
  const auto p = policy.probabilities();
  EXPECT_GT(p[2], 0.8);
}

TEST(FullInformation, UniformWhenAllArmsEqual) {
  FullInformationPolicy policy(5);
  policy.set_networks({0, 1, 2});
  for (int t = 0; t < 200; ++t) {
    const NetworkId c = policy.choose(t);
    std::size_t idx = static_cast<std::size_t>(c);
    policy.observe(t, full_feedback({0.5, 0.5, 0.5}, idx));
  }
  const auto p = policy.probabilities();
  for (const double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-9);
}

TEST(FullInformation, IgnoresMissingFeedback) {
  FullInformationPolicy policy(6);
  policy.set_networks({0, 1});
  const auto before = policy.probabilities();
  policy.choose(0);
  policy.observe(0, feedback(0.9));  // bandit-style feedback: no all_gains
  const auto after = policy.probabilities();
  EXPECT_EQ(before, after);
}

TEST(FullInformation, SwitchesOftenByDesign) {
  // Weight-proportional sampling never locks in while gains stay equal —
  // in the congestion game, equilibrium shares are near-equal, which is why
  // the paper's Fig 2 shows Full Information switching constantly.
  FullInformationPolicy policy(7);
  policy.set_networks({0, 1});
  int switches = 0;
  NetworkId prev = kNoNetwork;
  for (int t = 0; t < 1000; ++t) {
    const NetworkId c = policy.choose(t);
    if (prev != kNoNetwork && c != prev) ++switches;
    prev = c;
    policy.observe(t, full_feedback({0.5, 0.5}, static_cast<std::size_t>(c)));
  }
  EXPECT_GT(switches, 300);
}

TEST(FullInformation, NetworkSetChangeKeepsSimplex) {
  FullInformationPolicy policy(8);
  policy.set_networks({0, 1});
  for (int t = 0; t < 50; ++t) {
    const NetworkId c = policy.choose(t);
    policy.observe(t, full_feedback({0.3, 0.7}, static_cast<std::size_t>(c)));
  }
  policy.set_networks({0, 1, 2});
  const auto p = policy.probabilities();
  double sum = 0.0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(p.size(), 3u);
}

}  // namespace
}  // namespace smartexp3::core
