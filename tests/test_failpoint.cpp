// Unit tests for the failpoint registry (src/util/failpoint.hpp): mode
// grammar, determinism of the per-site RNG, counters, env-spec parsing and
// the zero-overhead off state. Sites here are synthetic ("test.*") — the
// instrumented production sites are exercised by test_checkpoint_io.cpp,
// test_run_harness.cpp, test_serve.cpp and test_chaos.cpp.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace smartexp3 {
namespace {

using util::FailpointError;
using util::FailpointScope;

TEST(Failpoint, OffByDefaultAndZeroTouch) {
  const FailpointScope scope;  // disarm-all on exit, belt and braces
  util::failpoint_disarm_all();
  EXPECT_FALSE(util::failpoints_armed());
  // Unarmed evaluation must neither fire nor register the site.
  EXPECT_FALSE(util::failpoint("test.never.armed"));
  EXPECT_TRUE(util::failpoint_list().empty());
}

TEST(Failpoint, OnceFiresExactlyOnFirstEval) {
  const FailpointScope scope("test.once", "once");
  EXPECT_TRUE(util::failpoints_armed());
  EXPECT_TRUE(util::failpoint("test.once"));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(util::failpoint("test.once"));
  const auto list = util::failpoint_list();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].site, "test.once");
  EXPECT_EQ(list[0].mode, "once");
  EXPECT_EQ(list[0].evals, 11u);
  EXPECT_EQ(list[0].fires, 1u);
}

TEST(Failpoint, OnceAtNFiresOnNthEvalOnly) {
  const FailpointScope scope("test.once_at", "once@4");
  for (int eval = 1; eval <= 10; ++eval) {
    EXPECT_EQ(util::failpoint("test.once_at"), eval == 4) << "eval " << eval;
  }
}

TEST(Failpoint, OneInNFiresEveryNth) {
  const FailpointScope scope("test.nth", "1in3");
  std::vector<int> fired;
  for (int eval = 1; eval <= 12; ++eval) {
    if (util::failpoint("test.nth")) fired.push_back(eval);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9, 12}));
}

TEST(Failpoint, OneIn1FiresAlways) {
  const FailpointScope scope("test.always", "1in1");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(util::failpoint("test.always"));
}

TEST(Failpoint, ProbabilityZeroNeverOneAlways) {
  {
    const FailpointScope scope("test.p0", "0.0");
    for (int i = 0; i < 200; ++i) EXPECT_FALSE(util::failpoint("test.p0"));
  }
  {
    const FailpointScope scope("test.p1", "1.0");
    for (int i = 0; i < 200; ++i) EXPECT_TRUE(util::failpoint("test.p1"));
  }
}

TEST(Failpoint, ProbabilityIsDeterministicPerSeed) {
  const auto pattern = [](std::uint64_t seed) {
    util::failpoint_arm("test.prob", "0.5", seed);
    std::string bits;
    for (int i = 0; i < 64; ++i) {
      bits += util::failpoint("test.prob") ? '1' : '0';
    }
    util::failpoint_disarm_all();
    return bits;
  };
  const std::string a1 = pattern(42);
  const std::string a2 = pattern(42);
  const std::string b = pattern(43);
  EXPECT_EQ(a1, a2) << "same spec + seed must replay the same firing pattern";
  EXPECT_NE(a1, b) << "different seeds should perturb the stream";
  // Sanity: p=0.5 over 64 draws fires somewhere strictly between the bounds.
  EXPECT_NE(a1.find('1'), std::string::npos);
  EXPECT_NE(a1.find('0'), std::string::npos);
}

TEST(Failpoint, RearmReplacesModeAndResetsCounters) {
  const FailpointScope scope("test.rearm", "once");
  EXPECT_TRUE(util::failpoint("test.rearm"));
  util::failpoint_arm("test.rearm", "once");  // reset: fires again
  EXPECT_TRUE(util::failpoint("test.rearm"));
  const auto list = util::failpoint_list();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].evals, 1u);  // counters restarted at re-arm
}

TEST(Failpoint, DisarmStopsFiringAndReportsPriorState) {
  util::failpoint_arm("test.disarm", "1in1");
  EXPECT_TRUE(util::failpoint("test.disarm"));
  EXPECT_TRUE(util::failpoint_disarm("test.disarm"));
  EXPECT_FALSE(util::failpoint("test.disarm"));
  EXPECT_FALSE(util::failpoint_disarm("test.disarm"));  // already off
  EXPECT_FALSE(util::failpoints_armed());
}

TEST(Failpoint, ArmSpecArmsEveryEntry) {
  const FailpointScope scope;
  EXPECT_EQ(util::failpoint_arm_spec("test.a=once,test.b=1in2,test.c=0.25"), 3);
  const auto list = util::failpoint_list();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].site, "test.a");
  EXPECT_EQ(list[1].site, "test.b");
  EXPECT_EQ(list[2].site, "test.c");
}

TEST(Failpoint, MalformedModesThrow) {
  const FailpointScope scope;
  EXPECT_THROW(util::failpoint_arm("test.bad", ""), FailpointError);
  EXPECT_THROW(util::failpoint_arm("test.bad", "sometimes"), FailpointError);
  EXPECT_THROW(util::failpoint_arm("test.bad", "1in0"), FailpointError);
  EXPECT_THROW(util::failpoint_arm("test.bad", "once@0"), FailpointError);
  EXPECT_THROW(util::failpoint_arm("test.bad", "1.5"), FailpointError);
  EXPECT_THROW(util::failpoint_arm("test.bad", "-0.1"), FailpointError);
  EXPECT_THROW(util::failpoint_arm("", "once"), FailpointError);
  EXPECT_THROW(util::failpoint_arm("Bad Site!", "once"), FailpointError);
  EXPECT_THROW(util::failpoint_arm_spec("test.ok=once,broken"), FailpointError);
  // Documented spec semantics: entries before the malformed one stay armed.
  const auto list = util::failpoint_list();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].site, "test.ok");
}

TEST(Failpoint, ScopeDisarmsOnExit) {
  {
    const FailpointScope scope("test.scoped", "1in1");
    EXPECT_TRUE(util::failpoints_armed());
  }
  EXPECT_FALSE(util::failpoints_armed());
}

}  // namespace
}  // namespace smartexp3
