#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};
}  // namespace

// Replaces the global (non-aligned) new/delete pairs for the whole binary.
// Linked into both the test binary (steady-state allocation guards, memory
// budget) and bench/perf_engine (throughput + allocation report), so the two
// always count allocations identically.
void* operator new(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_count.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(n, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace smartexp3::testing {

void start_alloc_counting() {
  g_count.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
}

std::uint64_t stop_alloc_counting() {
  g_counting.store(false, std::memory_order_relaxed);
  return g_count.load(std::memory_order_relaxed);
}

AllocStats stop_alloc_counting_stats() {
  g_counting.store(false, std::memory_order_relaxed);
  return {g_count.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace smartexp3::testing
