// Feedback capability gating (Policy::feedback_needs).
//
// The world computes the O(visible networks) fair-share counterfactual only
// for policies that declare kFullInformation; bandit policies must receive
// the counterfactual vectors *empty* every slot. The companion guarantee —
// that gating changes no trajectory — is pinned down by
// test_golden_trajectory.cpp, whose golden run mixes full_information and
// Smart EXP3 devices.
#include <gtest/gtest.h>

#include <memory>

#include "core/exp3.hpp"
#include "core/factory.hpp"
#include "core/full_information.hpp"
#include "core/greedy.hpp"
#include "core/ucb1.hpp"
#include "core/utility_shaping.hpp"
#include "netsim/world.hpp"

namespace smartexp3 {
namespace {

/// Records what the world put into every SlotFeedback it delivers.
class ProbePolicy final : public core::Policy {
 public:
  ProbePolicy(core::FeedbackNeeds needs, NetworkId pick) : needs_(needs), pick_(pick) {}

  void set_networks(const std::vector<NetworkId>& available) override {
    nets_ = available;
  }
  NetworkId choose(Slot) override { return pick_; }
  void observe(Slot, const core::SlotFeedback& fb) override {
    ++observations;
    counterfactual_sizes.push_back(fb.all_gains.size());
    if (fb.all_rates_mbps.size() != fb.all_gains.size()) mismatched_sizes = true;
    // For the equal-share model the chosen network's counterfactual rate is
    // by definition the rate the device actually observed.
    for (std::size_t j = 0; j < nets_.size() && j < fb.all_rates_mbps.size(); ++j) {
      if (nets_[j] == pick_ && fb.all_rates_mbps[j] != fb.bit_rate_mbps) {
        chosen_rate_mismatch = true;
      }
    }
  }
  core::FeedbackNeeds feedback_needs() const override { return needs_; }
  void probabilities_into(std::vector<double>& out) const override {
    out.assign(nets_.size(), 1.0 / nets_.size());
  }
  const std::vector<NetworkId>& networks() const override { return nets_; }
  std::string name() const override { return "probe"; }

  int observations = 0;
  std::vector<std::size_t> counterfactual_sizes;
  bool mismatched_sizes = false;
  bool chosen_rate_mismatch = false;

 private:
  core::FeedbackNeeds needs_;
  NetworkId pick_;
  std::vector<NetworkId> nets_;
};

netsim::World probe_world(ProbePolicy*& bandit, ProbePolicy*& full_info, Slot horizon) {
  netsim::WorldConfig cfg;
  cfg.horizon = horizon;
  std::vector<netsim::DeviceSpec> specs(2);
  specs[0].id = 0;
  specs[1].id = 1;
  std::vector<ProbePolicy**> out = {&bandit, &full_info};
  netsim::PolicyFactory factory = [&out](const netsim::DeviceSpec& spec,
                                         std::uint64_t) -> std::unique_ptr<core::Policy> {
    auto needs = spec.id == 0 ? core::FeedbackNeeds::kBandit
                              : core::FeedbackNeeds::kFullInformation;
    auto p = std::make_unique<ProbePolicy>(needs, /*pick=*/spec.id);
    *out[static_cast<std::size_t>(spec.id)] = p.get();
    return p;
  };
  return netsim::World(cfg, {netsim::make_wifi(0, 12.0), netsim::make_wifi(1, 6.0),
                             netsim::make_wifi(2, 3.0)},
                       std::move(specs), {}, std::move(factory), /*seed=*/99);
}

TEST(FeedbackGating, BanditPoliciesReceiveEmptyCounterfactuals) {
  ProbePolicy* bandit = nullptr;
  ProbePolicy* full_info = nullptr;
  auto world = probe_world(bandit, full_info, /*horizon=*/50);
  world.run();

  ASSERT_NE(bandit, nullptr);
  ASSERT_EQ(bandit->observations, 50);
  for (const std::size_t size : bandit->counterfactual_sizes) EXPECT_EQ(size, 0u);
  EXPECT_FALSE(bandit->mismatched_sizes);
}

TEST(FeedbackGating, FullInformationPoliciesReceiveFilledCounterfactuals) {
  ProbePolicy* bandit = nullptr;
  ProbePolicy* full_info = nullptr;
  auto world = probe_world(bandit, full_info, /*horizon=*/50);
  world.run();

  ASSERT_NE(full_info, nullptr);
  ASSERT_EQ(full_info->observations, 50);
  for (const std::size_t size : full_info->counterfactual_sizes) EXPECT_EQ(size, 3u);
  EXPECT_FALSE(full_info->mismatched_sizes);
  EXPECT_FALSE(full_info->chosen_rate_mismatch);
}

TEST(FeedbackGating, PolicyCapabilitiesAreDeclaredCorrectly) {
  using core::FeedbackNeeds;
  // The only consumer of the counterfactual among the shipped policies.
  EXPECT_EQ(core::FullInformationPolicy(1).feedback_needs(),
            FeedbackNeeds::kFullInformation);
  // Everything else learns from bandit feedback (the Policy default).
  EXPECT_EQ(core::Exp3(1).feedback_needs(), FeedbackNeeds::kBandit);
  EXPECT_EQ(core::GreedyPolicy(1).feedback_needs(), FeedbackNeeds::kBandit);
  EXPECT_EQ(core::Ucb1Policy(1).feedback_needs(), FeedbackNeeds::kBandit);
  for (const char* name : {"exp3", "block_exp3", "hybrid_block_exp3", "smart_exp3",
                           "smart_exp3_noreset", "greedy", "fixed_random", "ucb1"}) {
    EXPECT_EQ(core::make_policy(name, 1)->feedback_needs(), FeedbackNeeds::kBandit)
        << name;
  }
}

TEST(FeedbackGating, UtilityShapingDelegatesToInnerPolicy) {
  using core::FeedbackNeeds;
  auto shaped_full = core::make_utility_shaped(
      std::make_unique<core::FullInformationPolicy>(1), {}, {}, /*gain_scale=*/22.0);
  EXPECT_EQ(shaped_full->feedback_needs(), FeedbackNeeds::kFullInformation);
  auto shaped_bandit = core::make_utility_shaped(std::make_unique<core::Exp3>(1), {},
                                                 {}, /*gain_scale=*/22.0);
  EXPECT_EQ(shaped_bandit->feedback_needs(), FeedbackNeeds::kBandit);
}

}  // namespace
}  // namespace smartexp3
