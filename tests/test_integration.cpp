// Integration tests: reduced-scale versions of the paper's headline
// experiments, checking the qualitative claims end to end (orderings and
// crossovers, not absolute numbers — those are the benches' job).
#include <gtest/gtest.h>

#include "exp/aggregate.hpp"
#include "exp/runner.hpp"
#include "exp/settings.hpp"
#include "stats/summary.hpp"
#include "trace/synth.hpp"

namespace smartexp3::exp {
namespace {

std::vector<metrics::RunResult> quick_runs(ExperimentConfig cfg, int runs,
                                           std::uint64_t seed = 1000) {
  cfg.base_seed = seed;
  return run_many(cfg, runs);
}

TEST(Integration, BlockPoliciesSwitchFarLessThanExp3) {
  // Paper Fig 2: block-based algorithms cut switching by ~80 %.
  auto exp3 = quick_runs(static_setting1("exp3", 20, 600), 10);
  auto smart = quick_runs(static_setting1("smart_exp3", 20, 600), 10);
  auto block = quick_runs(static_setting1("block_exp3", 20, 600), 10);
  const double s_exp3 = switch_summary(exp3).mean;
  const double s_smart = switch_summary(smart).mean;
  const double s_block = switch_summary(block).mean;
  EXPECT_GT(s_exp3, 4.0 * s_smart);
  EXPECT_GT(s_exp3, 4.0 * s_block);
}

TEST(Integration, GreedySwitchesLeast) {
  auto greedy = quick_runs(static_setting1("greedy", 20, 600), 10);
  auto smart = quick_runs(static_setting1("smart_exp3", 20, 600), 10);
  EXPECT_LT(switch_summary(greedy).mean, switch_summary(smart).mean);
}

TEST(Integration, SmartExp3ApproachesEquilibriumInSetting1) {
  // Paper Fig 4a: Smart EXP3 spends most of the time at/near NE.
  auto runs = quick_runs(static_setting1("smart_exp3"), 10);
  EXPECT_GT(mean_eps_fraction(runs), 0.4);
  const auto series = mean_distance_series(runs);
  // Distance at the end is far below the early-exploration level.
  const double early = stats::mean({series.begin() + 5, series.begin() + 50});
  const double late = stats::mean({series.end() - 100, series.end()});
  EXPECT_LT(late, early * 0.5);
  EXPECT_LT(late, 25.0);
}

TEST(Integration, Exp3FailsToStabilizeWhereSmartNoResetDoes) {
  // Paper Fig 3 + Table IV: Smart EXP3 w/o Reset stabilizes at NE in nearly
  // every run; EXP3 essentially never does within the horizon.
  auto cfg_smart = static_setting1("smart_exp3_noreset");
  cfg_smart.recorder.track_stability = true;
  auto cfg_exp3 = static_setting1("exp3");
  cfg_exp3.recorder.track_stability = true;
  const auto smart = stability_summary(quick_runs(cfg_smart, 10));
  const auto exp3 = stability_summary(quick_runs(cfg_exp3, 10));
  EXPECT_GE(smart.stable_at_nash_fraction, 0.8);
  EXPECT_LE(exp3.stable_fraction, 0.2);
}

TEST(Integration, HybridStabilizesFasterThanBlock) {
  // Paper Table IV ordering: Block > Hybrid > Smart w/o Reset in time to
  // stabilize. Comparing medians over matched seeds.
  auto cfg_block = static_setting1("block_exp3");
  cfg_block.recorder.track_stability = true;
  auto cfg_hybrid = static_setting1("hybrid_block_exp3");
  cfg_hybrid.recorder.track_stability = true;
  auto cfg_nr = static_setting1("smart_exp3_noreset");
  cfg_nr.recorder.track_stability = true;
  const auto block = stability_summary(quick_runs(cfg_block, 12));
  const auto hybrid = stability_summary(quick_runs(cfg_hybrid, 12));
  const auto nr = stability_summary(quick_runs(cfg_nr, 12));
  // Smart w/o Reset must both stabilize more often and earlier than Block.
  EXPECT_GT(nr.stable_at_nash_fraction, block.stable_at_nash_fraction);
  if (block.median_stable_slot > 0 && nr.median_stable_slot > 0) {
    EXPECT_LT(nr.median_stable_slot, block.median_stable_slot);
  }
  EXPECT_GE(hybrid.stable_fraction, block.stable_fraction);
}

TEST(Integration, GreedyStrandsTheSmallNetworkInSetting1) {
  // Paper "unutilized resources": Greedy tends to abandon the 4 Mbps
  // network; learning policies do not.
  auto greedy = quick_runs(static_setting1("greedy"), 10);
  auto smart = quick_runs(static_setting1("smart_exp3"), 10);
  EXPECT_GT(mean_unused_mb(greedy), 5.0 * std::max(mean_unused_mb(smart), 1.0));
}

TEST(Integration, SmartFairerThanGreedy) {
  // Paper Fig 5: Smart EXP3's download std-dev is far below Greedy's.
  auto greedy = quick_runs(static_setting1("greedy"), 10);
  auto smart = quick_runs(static_setting1("smart_exp3"), 10);
  EXPECT_LT(mean_of_run_download_stddev_mb(smart),
            0.6 * mean_of_run_download_stddev_mb(greedy));
}

TEST(Integration, OnlyResettingSmartRecoversFreedResources) {
  // Paper Fig 8: 16 of 20 devices leave at t=600. Smart EXP3 (with reset)
  // must end much closer to equilibrium than Greedy.
  auto smart = quick_runs(dynamic_leave_setting("smart_exp3"), 8);
  auto greedy = quick_runs(dynamic_leave_setting("greedy"), 8);
  auto tail = [](const std::vector<double>& s) {
    return stats::mean({s.end() - 150, s.end()});
  };
  const double smart_tail = tail(mean_distance_series(smart));
  const double greedy_tail = tail(mean_distance_series(greedy));
  EXPECT_LT(smart_tail, 0.6 * greedy_tail);
}

TEST(Integration, SmartAdaptsWhenDevicesJoin) {
  // Paper Fig 7: the join at t=400 spikes the distance, then Smart EXP3
  // re-converges while the devices are present.
  auto runs = quick_runs(dynamic_join_setting("smart_exp3"), 8);
  const auto series = mean_distance_series(runs);
  const double before = stats::mean({series.begin() + 300, series.begin() + 400});
  const double spike = stats::mean({series.begin() + 400, series.begin() + 430});
  const double settled = stats::mean({series.begin() + 700, series.begin() + 800});
  EXPECT_GT(spike, before);
  EXPECT_LT(settled, spike);
}

TEST(Integration, MobilityScenarioRunsAndMoversAdapt) {
  // Paper Fig 9: all four device groups keep finite distance and the run
  // completes with the movers having switched networks at area changes.
  auto cfg = mobility_setting("smart_exp3");
  const auto runs = quick_runs(cfg, 6);
  ASSERT_EQ(runs.front().group_distance.size(), 4u);
  for (const auto& run : runs) {
    for (const auto& series : run.group_distance) {
      EXPECT_EQ(series.size(), 1200u);
    }
  }
  // Movers (group 0 = ids 1..8) must have switched at least twice (two
  // forced area changes).
  for (const auto& run : runs) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_GE(run.switches[static_cast<std::size_t>(i)], 2) << i;
    }
  }
}

TEST(Integration, SmartRobustAgainstGreedyMajority) {
  // Paper Fig 11 scenario 3: one Smart device among 19 Greedy ones still
  // does fine (its download is not starved relative to the fair share).
  auto cfg = greedy_mix_setting(1);
  const auto runs = quick_runs(cfg, 8);
  const double fair_mb = 33.0 * 1200 * 15.0 / 8.0 / 20.0;  // equal split
  std::vector<double> smart_downloads;
  for (const auto& run : runs) smart_downloads.push_back(run.downloads_mb[0]);
  EXPECT_GT(stats::mean(smart_downloads), 0.6 * fair_mb);
}

TEST(Integration, TraceCrossoverFavoursSmartDominanceFavoursGreedy) {
  // Paper Table VI: Smart wins on crossover traces (1, 3), Greedy ties or
  // slightly wins when cellular dominates (2).
  const auto pair3 = trace::synthetic_pair(3);
  const auto pair2 = trace::synthetic_pair(2);
  const auto smart3 = quick_runs(trace_setting(pair3, "smart_exp3"), 20);
  const auto greedy3 = quick_runs(trace_setting(pair3, "greedy"), 20);
  EXPECT_GT(median_total_download_mb(smart3), median_total_download_mb(greedy3));

  const auto smart2 = quick_runs(trace_setting(pair2, "smart_exp3"), 20);
  const auto greedy2 = quick_runs(trace_setting(pair2, "greedy"), 20);
  // Greedy is at least competitive under dominance (within 10 %).
  EXPECT_GT(median_total_download_mb(greedy2),
            0.9 * median_total_download_mb(smart2));
}

TEST(Integration, TraceSwitchingCostSmartHigherButBounded) {
  // Paper Table VI: Smart pays an order of magnitude more switching cost
  // than Greedy but it stays small relative to the download.
  const auto pair1 = trace::synthetic_pair(1);
  const auto smart = quick_runs(trace_setting(pair1, "smart_exp3"), 20);
  const auto greedy = quick_runs(trace_setting(pair1, "greedy"), 20);
  const double smart_cost = median_total_switching_cost_mb(smart);
  const double greedy_cost = median_total_switching_cost_mb(greedy);
  EXPECT_GT(smart_cost, greedy_cost);
  EXPECT_LT(smart_cost, 0.2 * median_total_download_mb(smart));
}

TEST(Integration, ControlledNoisySettingSmartBeatsGreedyOnDef4) {
  // Paper Fig 13: in the noisy testbed stand-in, Smart EXP3's distance from
  // the average available rate ends below Greedy's.
  auto smart = quick_runs(controlled_setting({"smart_exp3"}), 8);
  auto greedy = quick_runs(controlled_setting({"greedy"}), 8);
  auto tail = [](const std::vector<double>& s) {
    return stats::mean({s.end() - 120, s.end()});
  };
  EXPECT_LT(tail(mean_def4_series(smart)), tail(mean_def4_series(greedy)));
}

TEST(Integration, CentralizedMatchesWaterFillThroughout) {
  auto runs = quick_runs(static_setting1("centralized", 20, 200), 3);
  for (const auto& run : runs) {
    EXPECT_DOUBLE_EQ(run.at_nash_fraction, 1.0);
    for (const int s : run.switches) EXPECT_EQ(s, 0);
  }
}

}  // namespace
}  // namespace smartexp3::exp
