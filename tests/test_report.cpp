#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace smartexp3::exp {
namespace {

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(fmt(0.0), "0.00");
}

TEST(Sparkline, EmptyAndDegenerate) {
  EXPECT_EQ(sparkline({}, 10), "");
  EXPECT_EQ(sparkline({1.0, 2.0}, 0), "");
  // Constant series renders at the lowest level, full width.
  const auto s = sparkline(std::vector<double>(100, 5.0), 20);
  EXPECT_EQ(s.size(), 20u);
}

TEST(Sparkline, WidthRespected) {
  std::vector<double> series;
  for (int i = 0; i < 500; ++i) series.push_back(static_cast<double>(i));
  EXPECT_EQ(sparkline(series, 64).size(), 64u);
  EXPECT_EQ(sparkline(series, 7).size(), 7u);
}

TEST(Sparkline, MonotoneSeriesRisesThroughLevels) {
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(static_cast<double>(i));
  const auto s = sparkline(series, 10);
  // First char must be a low level, last a high one.
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s.back(), '#');
}

TEST(Sparkline, OutlierClippedAtP95) {
  // One huge spike must not flatten the rest of the series.
  std::vector<double> series(100, 0.0);
  for (int i = 50; i < 100; ++i) series[static_cast<std::size_t>(i)] = 10.0;
  series[0] = 1e9;
  const auto s = sparkline(series, 10);
  // The second half must render at a visibly higher level than the first.
  EXPECT_NE(s[8], s[3]);
}

TEST(PrintTable, AlignsAndSeparates) {
  std::ostringstream captured;
  auto* old = std::cout.rdbuf(captured.rdbuf());
  print_table({"name", "value"}, {{"short", "1"}, {"much-longer-name", "22"}});
  std::cout.rdbuf(old);
  const std::string out = captured.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(PrintSeriesCsv, StrideAndOffset) {
  std::ostringstream captured;
  auto* old = std::cout.rdbuf(captured.rdbuf());
  print_series_csv("s", {1.0, 2.0, 3.0, 4.0, 5.0}, /*stride=*/2, /*first_slot=*/10);
  std::cout.rdbuf(old);
  const std::string out = captured.str();
  EXPECT_NE(out.find("s,10,1.000"), std::string::npos);
  EXPECT_NE(out.find("s,12,3.000"), std::string::npos);
  EXPECT_NE(out.find("s,14,5.000"), std::string::npos);
  EXPECT_EQ(out.find("s,11,"), std::string::npos);
}

TEST(PaperVsMeasured, Renders) {
  std::ostringstream captured;
  auto* old = std::cout.rdbuf(captured.rdbuf());
  print_paper_vs_measured("metric", "1.0", "1.1");
  std::cout.rdbuf(old);
  EXPECT_NE(captured.str().find("paper=1.0"), std::string::npos);
  EXPECT_NE(captured.str().find("measured=1.1"), std::string::npos);
}

}  // namespace
}  // namespace smartexp3::exp
