// Checkpoint file durability: round trips, atomicity residue, and the
// promise that arbitrary corruption — truncations, byte flips, torn
// writes — is rejected with a CheckpointError and skipped by the resume
// path, never a crash or a silent bad restore.
#include "exp/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "stats/rng.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::exp {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test directory under the test temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ckpt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Checkpoint sample_checkpoint(int run = 3, Slot slot = 120) {
  Checkpoint c;
  c.run = run;
  c.slot = slot;
  c.seed = 0xfeedface12345678ULL;
  c.spec_fingerprint = 0x0123456789abcdefULL;
  c.world_words = {0, 1, 0xffffffffffffffffULL, 42, 0x8000000000000000ULL};
  c.has_recorder = true;
  c.recorder_words = {7, 8, 9};
  return c;
}

TEST(CheckpointIo, TextRoundTripPreservesEveryField) {
  const Checkpoint c = sample_checkpoint();
  const Checkpoint back = parse_checkpoint_text(to_checkpoint_text(c));
  EXPECT_EQ(back.snapshot_version, c.snapshot_version);
  EXPECT_EQ(back.run, c.run);
  EXPECT_EQ(back.slot, c.slot);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.spec_fingerprint, c.spec_fingerprint);
  EXPECT_EQ(back.world_words, c.world_words);
  EXPECT_TRUE(back.has_recorder);
  EXPECT_EQ(back.recorder_words, c.recorder_words);
}

TEST(CheckpointIo, RecorderPayloadIsOptional) {
  Checkpoint c = sample_checkpoint();
  c.has_recorder = false;
  c.recorder_words.clear();
  const Checkpoint back = parse_checkpoint_text(to_checkpoint_text(c));
  EXPECT_FALSE(back.has_recorder);
  EXPECT_TRUE(back.recorder_words.empty());
}

TEST(CheckpointIo, SaveLoadRoundTripLeavesNoTempResidue) {
  const fs::path dir = scratch_dir("save_load");
  const Checkpoint c = sample_checkpoint();
  const std::string path = checkpoint_path(dir.string(), c.run, c.slot);
  save_checkpoint_file(c, path);

  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "atomic write left its temp file";

  const Checkpoint back = load_checkpoint_file(path);
  EXPECT_EQ(back.world_words, c.world_words);
  EXPECT_EQ(back.seed, c.seed);
}

TEST(CheckpointIo, CheckpointPathFormat) {
  EXPECT_EQ(checkpoint_path("d", 2, 150),
            (fs::path("d") / "run2_slot150.ckpt").string());
}

TEST(CheckpointIo, EveryTruncationIsRejected) {
  const std::string text = to_checkpoint_text(sample_checkpoint());
  // Every proper prefix except the one that only drops the final newline
  // (the checksum still covers the whole body there, so it stays valid).
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    EXPECT_THROW(parse_checkpoint_text(text.substr(0, len)), CheckpointError)
        << "truncation to " << len << " bytes parsed";
  }
}

TEST(CheckpointIo, EverySingleByteFlipIsRejected) {
  const std::string text = to_checkpoint_text(sample_checkpoint());
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string mutated = text;
    // Low-bit flip: always changes the byte, and (unlike flipping 0x20)
    // never maps a checksum hex digit onto its case-insensitive twin.
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    EXPECT_THROW(parse_checkpoint_text(mutated), CheckpointError)
        << "byte flip at " << i << " parsed";
  }
}

TEST(CheckpointIo, RandomCorruptionFuzzNeverCrashes) {
  // Seeded multi-byte corruption: the parser must always either throw
  // CheckpointError or produce a checkpoint — anything else (crash, other
  // exception type) fails the test by escaping the EXPECT_THROW machinery.
  const std::string text = to_checkpoint_text(sample_checkpoint());
  stats::Rng rng(20260807ULL);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = text;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = static_cast<std::size_t>(rng() % mutated.size());
      mutated[pos] = static_cast<char>(rng() & 0xff);
    }
    if (rng() % 2 == 0) {
      mutated.resize(static_cast<std::size_t>(rng() % (mutated.size() + 1)));
    }
    try {
      (void)parse_checkpoint_text(mutated);  // astronomically unlikely, but legal
    } catch (const CheckpointError&) {
      // expected for essentially every trial
    }
  }
}

TEST(CheckpointIo, UnsupportedVersionsAreRejected) {
  const Checkpoint c = sample_checkpoint();
  std::string text = to_checkpoint_text(c);
  // Rewriting the version invalidates the checksum too, so assert on the
  // parse of a re-trailered body instead: strip the trailer, patch, re-sign.
  const auto body_end = text.rfind("checksum fnv1a64 ");
  ASSERT_NE(body_end, std::string::npos);
  std::string body = text.substr(0, body_end);
  const auto pos = body.find("\"checkpoint_version\": 1");
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, std::string("\"checkpoint_version\": 1").size(),
               "\"checkpoint_version\": 9");
  std::string patched = body + "checksum fnv1a64 ";
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(body)));
  patched += buf;
  patched += '\n';
  try {
    parse_checkpoint_text(patched);
    FAIL() << "version 9 accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckpointIo, NewestValidFallsBackPastCorruptFiles) {
  const fs::path dir = scratch_dir("fallback");
  Checkpoint early = sample_checkpoint(/*run=*/0, /*slot=*/40);
  Checkpoint late = sample_checkpoint(/*run=*/0, /*slot=*/80);
  late.world_words.push_back(99);
  save_checkpoint_file(early, checkpoint_path(dir.string(), 0, 40));
  save_checkpoint_file(late, checkpoint_path(dir.string(), 0, 80));

  // Intact: newest wins.
  auto found = newest_valid_checkpoint(dir.string(), 0, early.spec_fingerprint,
                                       early.seed);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->slot, 80);

  // Corrupt the newest (simulated torn write under the real name): the
  // resume path must fall back to slot 40, not fail.
  {
    std::ofstream out(checkpoint_path(dir.string(), 0, 80),
                      std::ios::binary | std::ios::trunc);
    out << "{\"checkpoint_version\": 1, \"run\": 0";  // cut mid-object
  }
  found = newest_valid_checkpoint(dir.string(), 0, early.spec_fingerprint,
                                  early.seed);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->slot, 40);
  EXPECT_EQ(found->world_words, early.world_words);
}

TEST(CheckpointIo, NewestValidSkipsForeignCheckpoints) {
  const fs::path dir = scratch_dir("foreign");
  const Checkpoint c = sample_checkpoint(/*run=*/0, /*slot=*/50);
  save_checkpoint_file(c, checkpoint_path(dir.string(), 0, 50));

  // Wrong fingerprint (different experiment) and wrong seed (different run
  // identity) both disqualify; wrong run index never matches the filename.
  EXPECT_FALSE(newest_valid_checkpoint(dir.string(), 0, c.spec_fingerprint + 1,
                                       c.seed)
                   .has_value());
  EXPECT_FALSE(
      newest_valid_checkpoint(dir.string(), 0, c.spec_fingerprint, c.seed + 1)
          .has_value());
  EXPECT_FALSE(newest_valid_checkpoint(dir.string(), 1, c.spec_fingerprint, c.seed)
                   .has_value());
}

TEST(CheckpointIo, MissingDirectoryIsNotAnError) {
  EXPECT_FALSE(newest_valid_checkpoint("/nonexistent/dir/for/this/test", 0, 1, 2)
                   .has_value());
}

TEST(CheckpointIo, StrayTmpFilesAreIgnored) {
  const fs::path dir = scratch_dir("stray_tmp");
  // A crash between write and rename leaves "<name>.ckpt.tmp" — it must not
  // shadow or confuse the valid checkpoint set.
  std::ofstream(dir / "run0_slot999.ckpt.tmp") << "torn garbage";
  const Checkpoint c = sample_checkpoint(/*run=*/0, /*slot=*/10);
  save_checkpoint_file(c, checkpoint_path(dir.string(), 0, 10));
  const auto found =
      newest_valid_checkpoint(dir.string(), 0, c.spec_fingerprint, c.seed);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->slot, 10);
}

TEST(CheckpointIo, PruneKeepsOnlyNewest) {
  const fs::path dir = scratch_dir("prune");
  for (const Slot slot : {10, 20, 30, 40}) {
    save_checkpoint_file(sample_checkpoint(0, slot),
                         checkpoint_path(dir.string(), 0, slot));
  }
  // Another run's files must be untouched by run 0's retention.
  save_checkpoint_file(sample_checkpoint(1, 5), checkpoint_path(dir.string(), 1, 5));

  prune_checkpoints(dir.string(), 0, /*keep=*/2);
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.string(), 0, 10)));
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.string(), 0, 20)));
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.string(), 0, 30)));
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.string(), 0, 40)));
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.string(), 1, 5)));
}

// --- Injected faults at every write site (src/util/failpoint.hpp) ---------
//
// Each site below is the exact syscall the corresponding real fault would
// hit. The common contract: the save throws, no valid checkpoint is
// published under the target name, and once the site disarms the same save
// succeeds — a fault is an event, not a wedged state.

TEST(CheckpointIo, InjectedPrePublishFaultsThrowAndPublishNothing) {
  for (const char* site : {"checkpoint.write.fail", "checkpoint.write.enospc",
                           "checkpoint.fsync.fail"}) {
    const fs::path dir = scratch_dir(std::string("inject_") +
                                     (std::strrchr(site, '.') + 1));
    const Checkpoint c = sample_checkpoint(0, 60);
    const std::string path = checkpoint_path(dir.string(), 0, 60);
    {
      const util::FailpointScope scope(site, "once");
      EXPECT_THROW(save_checkpoint_file(c, path), CheckpointError) << site;
    }
    EXPECT_FALSE(fs::exists(path)) << site << " published a file";
    EXPECT_FALSE(fs::exists(path + ".tmp")) << site << " leaked its temp file";
    EXPECT_FALSE(
        newest_valid_checkpoint(dir.string(), 0, c.spec_fingerprint, c.seed)
            .has_value())
        << site;
    // Disarmed, the identical save succeeds and round-trips.
    save_checkpoint_file(c, path);
    EXPECT_EQ(load_checkpoint_file(path).world_words, c.world_words) << site;
  }
}

TEST(CheckpointIo, InjectedEnospcIsTypedDiskFull) {
  const fs::path dir = scratch_dir("enospc_type");
  const util::FailpointScope scope("checkpoint.write.enospc", "once");
  try {
    save_checkpoint_file(sample_checkpoint(), checkpoint_path(dir.string(), 3, 120));
    FAIL() << "injected ENOSPC did not throw";
  } catch (const CheckpointDiskFull& e) {
    // The typed subclass is what the runner's degraded mode dispatches on;
    // it must still be catchable as a plain CheckpointError.
    EXPECT_NE(std::string(e.what()).find("out of space"), std::string::npos);
    const CheckpointError& base = e;
    (void)base;
  }
}

TEST(CheckpointIo, InjectedShortWriteLeavesTornTmpThatResumeIgnores) {
  const fs::path dir = scratch_dir("short_write");
  const Checkpoint c = sample_checkpoint(0, 70);
  const std::string path = checkpoint_path(dir.string(), 0, 70);
  {
    const util::FailpointScope scope("checkpoint.write.short", "once");
    EXPECT_THROW(save_checkpoint_file(c, path), CheckpointError);
  }
  // The torn temp file stays on disk, exactly like a crash mid-write...
  EXPECT_FALSE(fs::exists(path));
  ASSERT_TRUE(fs::exists(path + ".tmp"));
  EXPECT_LT(fs::file_size(path + ".tmp"),
            to_checkpoint_text(c).size());
  // ...and the resume scan must not be confused by it.
  EXPECT_FALSE(
      newest_valid_checkpoint(dir.string(), 0, c.spec_fingerprint, c.seed)
          .has_value());
  // The next save overwrites the residue cleanly.
  save_checkpoint_file(c, path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  const auto found =
      newest_valid_checkpoint(dir.string(), 0, c.spec_fingerprint, c.seed);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->slot, 70);
}

TEST(CheckpointIo, InjectedTornRenameFallsBackToOlderCheckpoint) {
  const fs::path dir = scratch_dir("torn_rename");
  const Checkpoint early = sample_checkpoint(0, 40);
  save_checkpoint_file(early, checkpoint_path(dir.string(), 0, 40));

  const std::string late_path = checkpoint_path(dir.string(), 0, 80);
  {
    const util::FailpointScope scope("checkpoint.rename.torn", "once");
    EXPECT_THROW(save_checkpoint_file(sample_checkpoint(0, 80), late_path),
                 CheckpointError);
  }
  // Torn bytes under the REAL name: the single load rejects on checksum and
  // the resume scan falls back to the older intact file. No torn checkpoint
  // is ever loaded — the chaos suite's core invariant, pinned per-site here.
  ASSERT_TRUE(fs::exists(late_path));
  EXPECT_THROW(load_checkpoint_file(late_path), CheckpointError);
  const auto found =
      newest_valid_checkpoint(dir.string(), 0, early.spec_fingerprint, early.seed);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->slot, 40);
  EXPECT_EQ(found->world_words, early.world_words);
}

TEST(CheckpointIo, InjectedDirsyncFailureStillPublishedValidFile) {
  // The directory sync happens AFTER the atomic rename: an injected failure
  // there throws (the caller must know durability of the *name* is not
  // guaranteed), yet the already-published file is complete and loadable.
  const fs::path dir = scratch_dir("dirsync");
  const Checkpoint c = sample_checkpoint(0, 90);
  const std::string path = checkpoint_path(dir.string(), 0, 90);
  {
    const util::FailpointScope scope("checkpoint.dirsync.fail", "once");
    EXPECT_THROW(save_checkpoint_file(c, path), CheckpointError);
  }
  ASSERT_TRUE(fs::exists(path));
  EXPECT_EQ(load_checkpoint_file(path).world_words, c.world_words);
}

TEST(CheckpointIo, Fnv1a64MatchesKnownVectors) {
  // Published FNV-1a 64-bit test vectors — pins the constants.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace smartexp3::exp
