// The netsel_serve service core, driven in-process: protocol parsing, job
// admission and rejection, streaming events, stats, queue back-pressure,
// graceful drain with resume, and fault-injected retries. The central
// assertion mirrors the run-harness tests: a served job's summary is
// byte-identical whether the batch ran clean, crashed and retried, or was
// drained mid-run and resumed by a second service instance.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/spec_io.hpp"
#include "serve/protocol.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::serve {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Thread-safe event capture shared with the service's broadcast sink.
struct EventLog {
  std::mutex mutex;
  std::vector<std::string> lines;

  JobService::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(line);
    };
  }
  std::vector<std::string> snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
  bool contains(const std::string& needle) {
    const std::lock_guard<std::mutex> lock(mutex);
    for (const auto& l : lines) {
      if (l.find(needle) != std::string::npos) return true;
    }
    return false;
  }
  int count(const std::string& needle) {
    const std::lock_guard<std::mutex> lock(mutex);
    int n = 0;
    for (const auto& l : lines) {
      if (l.find(needle) != std::string::npos) ++n;
    }
    return n;
  }
};

/// The reference summary for a submission: the same config build the
/// service performs, run directly through the batch executor.
std::string reference_summary(const std::string& setting, Slot horizon,
                              int runs) {
  exp::SettingParams params;
  params.horizon = horizon;
  auto cfg = exp::make_setting(setting, params);
  cfg.world.shards = exp::world_shards(cfg.world.shards);
  const auto batch = exp::run_many_result(cfg, runs, 2);
  EXPECT_TRUE(batch.all_completed());
  std::vector<metrics::RunResult> results;
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.completed[i]) results.push_back(batch.results[i]);
  }
  return summary_json(cfg, results);
}

TEST(ServeProtocol, ParsesSubmitWithOverrides) {
  const Request r = parse_request(
      R"({"type": "submit", "id": "a", "setting": "scalability", "runs": 3,)"
      R"( "policy": "exp3", "devices": 12, "networks": 4, "horizon": 99,)"
      R"( "seed": 7, "shards": 2})");
  ASSERT_EQ(r.kind, Request::Kind::kSubmit);
  EXPECT_EQ(r.submit.id, "a");
  EXPECT_EQ(r.submit.setting, "scalability");
  EXPECT_EQ(r.submit.runs, 3);
  EXPECT_EQ(r.submit.policy, "exp3");
  EXPECT_EQ(r.submit.devices, 12);
  EXPECT_EQ(r.submit.networks, 4);
  EXPECT_EQ(r.submit.horizon, 99);
  EXPECT_TRUE(r.submit.seed_set);
  EXPECT_EQ(r.submit.seed, 7u);
  EXPECT_EQ(r.submit.shards, 2);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("not json"), ProtocolError);
  EXPECT_THROW(parse_request("[1, 2]"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"type": "launch"})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"type": "submit"})"), ProtocolError);
  // setting and spec are mutually exclusive.
  EXPECT_THROW(
      parse_request(
          R"({"type": "submit", "setting": "setting1", "spec": {"a": 1}})"),
      ProtocolError);
  // unknown keys are hard errors, not silent no-ops.
  EXPECT_THROW(
      parse_request(R"({"type": "submit", "setting": "setting1", "bogus": 1})"),
      ProtocolError);
  // per-request extras on stats/drain are rejected.
  EXPECT_THROW(parse_request(R"({"type": "stats", "x": 1})"), ProtocolError);
  // structural overrides make no sense for a full spec.
  EXPECT_THROW(
      parse_request(R"({"type": "submit", "spec": {"a": 1}, "devices": 5})"),
      ProtocolError);
}

TEST(ServeProtocol, SpecObjectRoundTripsThroughWireText) {
  exp::SettingParams params;
  params.horizon = 60;
  const auto cfg = exp::make_setting("setting2", params);
  const std::string spec = exp::to_spec_text(cfg);
  // Wrap the (multi-line, pretty) spec text's parsed form as an inline
  // object: parse + reserialize must be lossless for the config.
  const exp::JsonValue doc = exp::parse_json(spec);
  const std::string wire = json_value_text(doc);
  EXPECT_EQ(wire.find('\n'), std::string::npos) << "wire form must be one line";
  const auto round = exp::parse_spec_text(wire);
  EXPECT_EQ(exp::to_spec_text(round), spec);
}

TEST(ServeProtocol, EventLinesAreParseableJson) {
  const std::string line = EventLine("completed")
                               .field("job", "j-1")
                               .field("ok", true)
                               .field("rate", 0.5)
                               .raw("nested", EventLine().field("n", 1).str())
                               .str();
  const exp::JsonValue doc = exp::parse_json(line);
  ASSERT_EQ(doc.type, exp::JsonValue::Type::kObject);
  EXPECT_EQ(doc.object.front().first, "event");
  EXPECT_EQ(doc.object.front().second.str, "completed");
}

TEST(ServeService, CompletesJobWithReferenceSummary) {
  EventLog log;
  ServiceConfig cfg;
  cfg.executors = 2;
  cfg.lanes = 2;
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "small", "setting": "setting1",)"
      R"( "horizon": 120, "runs": 2})");
  service.wait_idle();

  EXPECT_TRUE(log.contains("\"event\": \"accepted\""));
  EXPECT_TRUE(log.contains("\"event\": \"started\""));
  EXPECT_TRUE(log.contains("\"event\": \"progress\""));
  EXPECT_TRUE(log.contains("\"event\": \"completed\""));
  const auto job = service.find_job("small");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->summary_json, reference_summary("setting1", 120, 2));
}

TEST(ServeService, RejectsUnsoundJobsAndStaysUp) {
  EventLog log;
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  JobService service(cfg, log.sink());
  service.start();
  // Unknown setting: admission rejects with the registry's message.
  service.handle_line(R"({"type": "submit", "setting": "no_such_setting"})");
  EXPECT_TRUE(log.contains("\"event\": \"rejected\""));
  // Unsound inline spec: the validator's messages ride the rejected event.
  service.handle_line(
      R"({"type": "submit", "id": "bad", "spec": {"spec_version": 1,)"
      R"( "name": "x", "world": {"horizon": 0}}})");
  EXPECT_GE(log.count("\"event\": \"rejected\""), 2);
  // Malformed line: an error event, not a crash.
  service.handle_line("{broken");
  EXPECT_TRUE(log.contains("\"event\": \"error\""));
  // The service still takes and finishes work afterwards.
  service.handle_line(
      R"({"type": "submit", "id": "ok", "setting": "setting2",)"
      R"( "horizon": 60})");
  service.wait_idle();
  const auto job = service.find_job("ok");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, JobState::kCompleted);
}

TEST(ServeService, AssignsIdsAndRejectsDuplicates) {
  EventLog log;
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "setting": "setting1", "horizon": 30})");
  EXPECT_NE(service.find_job("job-1"), nullptr);
  service.handle_line(
      R"({"type": "submit", "id": "job-1", "setting": "setting1",)"
      R"( "horizon": 30})");
  EXPECT_TRUE(log.contains("already exists"));
  service.handle_line(
      R"({"type": "submit", "id": "../escape", "setting": "setting1"})");
  EXPECT_TRUE(log.contains("job id must be"));
  service.wait_idle();
}

TEST(ServeService, StatsReportsQueueAndPerJobLatency) {
  EventLog log;
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.progress_every = 8;
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "s", "setting": "setting1",)"
      R"( "horizon": 120})");
  service.wait_idle();
  service.handle_line(R"({"type": "stats"})");
  const auto lines = log.snapshot();
  std::string stats;
  for (const auto& l : lines) {
    if (l.find("\"event\": \"stats\"") != std::string::npos) stats = l;
  }
  ASSERT_FALSE(stats.empty());
  const exp::JsonValue doc = exp::parse_json(stats);
  bool saw_job = false;
  for (const auto& [k, v] : doc.object) {
    if (k == "completed") EXPECT_EQ(v.number, 1.0);
    if (k == "jobs") {
      ASSERT_EQ(v.array.size(), 1u);
      saw_job = true;
      bool p50 = false, p99 = false;
      for (const auto& [jk, jv] : v.array[0].object) {
        if (jk == "state") EXPECT_EQ(jv.str, "completed");
        if (jk == "slot_p50_us") p50 = true;
        if (jk == "slot_p99_us") p99 = true;
      }
      EXPECT_TRUE(p50);
      EXPECT_TRUE(p99);
    }
  }
  EXPECT_TRUE(saw_job);
}

TEST(ServeService, QueueFullRejectsWithoutBlocking) {
  EventLog log;
  std::atomic<bool> gate{false};
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.queue_capacity = 1;
  // Hold the first job inside its first slot until the gate opens, so the
  // queue genuinely backs up.
  cfg.fault_hook = [&gate](int, Slot) {
    while (!gate.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "a", "setting": "setting1", "horizon": 30})");
  // Wait until the executor picked up "a" (queue empty again).
  for (int i = 0; i < 500 && !log.contains("\"event\": \"started\""); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  service.handle_line(
      R"({"type": "submit", "id": "b", "setting": "setting1", "horizon": 30})");
  service.handle_line(
      R"({"type": "submit", "id": "c", "setting": "setting1", "horizon": 30})");
  EXPECT_TRUE(log.contains("queue full"));
  EXPECT_TRUE(log.contains("\"reason\": \"queue-full\""));
  EXPECT_TRUE(log.contains("\"retry_after_ms\""))
      << "backpressure rejections must carry a drain hint";
  EXPECT_EQ(service.find_job("c"), nullptr) << "rejected job must be forgotten";
  gate.store(true);
  service.wait_idle();
  EXPECT_EQ(service.find_job("a")->state, JobState::kCompleted);
  EXPECT_EQ(service.find_job("b")->state, JobState::kCompleted);
}

TEST(ServeService, FaultInjectedRetryMatchesCleanSummary) {
  const fs::path dir = scratch_dir("retry");
  EventLog log;
  std::atomic<bool> crashed{false};
  ServiceConfig cfg;
  cfg.state_dir = dir.string();
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.checkpoint_every = 20;
  cfg.max_attempts = 2;
  cfg.fault_hook = [&crashed](int run, Slot slot) {
    if (run == 0 && slot == 70 && !crashed.exchange(true)) {
      throw std::runtime_error("injected crash");
    }
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "r", "setting": "setting1",)"
      R"( "horizon": 120, "runs": 2})");
  service.wait_idle();
  ASSERT_TRUE(crashed.load());
  const auto job = service.find_job("r");
  ASSERT_EQ(job->state, JobState::kCompleted);
  // The retried batch resumed from a checkpoint, yet the summary is the
  // clean run's, byte for byte.
  EXPECT_EQ(job->summary_json, reference_summary("setting1", 120, 2));
  EXPECT_TRUE(log.contains("\"event\": \"checkpointed\""));
}

TEST(ServeService, DrainRestartResumesBitIdentical) {
  const fs::path dir = scratch_dir("drain");
  const std::string submit =
      R"({"type": "submit", "id": "d", "setting": "setting1",)"
      R"( "horizon": 240, "runs": 2})";
  std::string resumed_summary;
  {
    EventLog log;
    std::atomic<bool> reached{false};
    ServiceConfig cfg;
    cfg.state_dir = dir.string();
    cfg.executors = 1;
    cfg.lanes = 1;
    cfg.checkpoint_every = 20;
    cfg.fault_hook = [&reached](int run, Slot slot) {
      if (run == 0 && slot == 100) reached.store(true);
    };
    JobService service(cfg, log.sink());
    service.start();
    service.handle_line(submit);
    while (!reached.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.drain();
    ASSERT_TRUE(log.contains("\"event\": \"interrupted\""));
    ASSERT_TRUE(log.contains("\"event\": \"drained\""));
    const auto job = service.find_job("d");
    EXPECT_EQ(job->state, JobState::kInterrupted);
    EXPECT_GE(job->last_checkpoint_slot, 0) << "drain must flush a checkpoint";
  }
  {
    EventLog log;
    ServiceConfig cfg;
    cfg.state_dir = dir.string();
    cfg.executors = 1;
    cfg.lanes = 1;
    cfg.checkpoint_every = 20;
    JobService service(cfg, log.sink());
    service.start();
    EXPECT_TRUE(log.contains("\"event\": \"requeued\""));
    service.wait_idle();
    const auto job = service.find_job("d");
    ASSERT_NE(job, nullptr);
    ASSERT_EQ(job->state, JobState::kCompleted);
    resumed_summary = job->summary_json;
  }
  EXPECT_EQ(resumed_summary, reference_summary("setting1", 240, 2));
  // A third start finds result.json and requeues nothing.
  {
    EventLog log;
    ServiceConfig cfg;
    cfg.state_dir = dir.string();
    JobService service(cfg, log.sink());
    service.start();
    EXPECT_FALSE(log.contains("\"event\": \"requeued\""));
    EXPECT_EQ(service.job_count(), 0u);
  }
}

TEST(ServeService, DrainReportsDispositionForEveryAcceptedJob) {
  EventLog log;
  std::atomic<bool> gate{false};
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.fault_hook = [&gate](int, Slot) {
    while (!gate.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "run1", "setting": "setting1", "horizon": 60})");
  for (int i = 0; i < 500 && !log.contains("\"event\": \"started\""); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  service.handle_line(
      R"({"type": "submit", "id": "wait1", "setting": "setting2", "horizon": 60})");
  std::thread opener([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.store(true);
  });
  service.drain();
  opener.join();
  // Both accepted jobs appear in the drained disposition; the never-started
  // one is still queued (and would be requeued by a state-dir restart).
  const auto lines = log.snapshot();
  std::string drained;
  for (const auto& l : lines) {
    if (l.find("\"event\": \"drained\"") != std::string::npos) drained = l;
  }
  ASSERT_FALSE(drained.empty());
  EXPECT_NE(drained.find("\"job\": \"run1\""), std::string::npos);
  EXPECT_NE(drained.find("\"job\": \"wait1\""), std::string::npos);
  EXPECT_NE(drained.find("\"queued\""), std::string::npos);
  // Submissions after the drain are rejected, not queued.
  service.handle_line(
      R"({"type": "submit", "id": "late", "setting": "setting1"})");
  EXPECT_TRUE(log.contains("draining"));
  EXPECT_EQ(service.find_job("late"), nullptr);
}

TEST(ServeProtocol, ParsesInjectRequests) {
  const Request r = parse_request(
      R"({"type": "inject", "site": "checkpoint.write.enospc",)"
      R"( "mode": "1in3", "seed": 99})");
  ASSERT_EQ(r.kind, Request::Kind::kInject);
  EXPECT_EQ(r.inject.site, "checkpoint.write.enospc");
  EXPECT_EQ(r.inject.mode, "1in3");
  EXPECT_TRUE(r.inject.seed_set);
  EXPECT_EQ(r.inject.seed, 99u);

  EXPECT_THROW(parse_request(R"({"type": "inject", "mode": "once"})"),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"type": "inject", "site": "x.y"})"),
               ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"type": "inject", "site": "x.y", "mode": "once",)"
                    R"( "bogus": 1})"),
      ProtocolError);
}

/// The most recent "stats" event in the log, parsed.
exp::JsonValue last_stats(EventLog& log) {
  std::string stats;
  for (const auto& l : log.snapshot()) {
    if (l.find("\"event\": \"stats\"") != std::string::npos) stats = l;
  }
  EXPECT_FALSE(stats.empty()) << "no stats event seen";
  return exp::parse_json(stats);
}

const exp::JsonValue* stats_key(const exp::JsonValue& doc,
                                const std::string& key) {
  for (const auto& [k, v] : doc.object) {
    if (k == key) return &v;
  }
  return nullptr;
}

TEST(ServeService, StatsReportsRobustnessCountersAndFailpoints) {
  const util::FailpointScope guard;  // leave no site armed behind
  EventLog log;
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(R"({"type": "stats"})");
  {
    const exp::JsonValue doc = last_stats(log);
    for (const char* key :
         {"retries_total", "quarantined_total", "degraded_jobs"}) {
      const exp::JsonValue* v = stats_key(doc, key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->number, 0.0) << key;
    }
    const exp::JsonValue* fps = stats_key(doc, "failpoints");
    ASSERT_NE(fps, nullptr);
    EXPECT_TRUE(fps->array.empty()) << "nothing armed yet";
  }

  // Arm over the wire; the active site shows up with its counters.
  service.handle_line(
      R"({"type": "inject", "site": "test.serve.stats", "mode": "1in2"})");
  EXPECT_TRUE(log.contains("\"event\": \"injected\""));
  service.handle_line(R"({"type": "stats"})");
  {
    const exp::JsonValue doc = last_stats(log);
    const exp::JsonValue* fps = stats_key(doc, "failpoints");
    ASSERT_NE(fps, nullptr);
    ASSERT_EQ(fps->array.size(), 1u);
    bool saw_site = false;
    for (const auto& [k, v] : fps->array[0].object) {
      if (k == "site") {
        EXPECT_EQ(v.str, "test.serve.stats");
        saw_site = true;
      }
    }
    EXPECT_TRUE(saw_site);
  }

  // Disarm with mode "off"; the list empties again.
  service.handle_line(
      R"({"type": "inject", "site": "test.serve.stats", "mode": "off"})");
  service.handle_line(R"({"type": "stats"})");
  {
    const exp::JsonValue doc = last_stats(log);
    const exp::JsonValue* fps = stats_key(doc, "failpoints");
    ASSERT_NE(fps, nullptr);
    EXPECT_TRUE(fps->array.empty());
  }

  // A malformed mode is one "error" event, like any bad request.
  service.handle_line(
      R"({"type": "inject", "site": "test.serve.stats", "mode": "maybe"})");
  EXPECT_TRUE(log.contains("\"event\": \"error\""));
  EXPECT_FALSE(util::failpoints_armed());
}

TEST(ServeService, InjectedExecutorExceptionFailsJobNotServer) {
  const util::FailpointScope guard;
  EventLog log;
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "inject", "site": "serve.executor.exception",)"
      R"( "mode": "once"})");
  service.handle_line(
      R"({"type": "submit", "id": "boom", "setting": "setting1",)"
      R"( "horizon": 30})");
  service.wait_idle();
  EXPECT_TRUE(log.contains("injected serve.executor.exception"));
  const auto boom = service.find_job("boom");
  ASSERT_NE(boom, nullptr);
  EXPECT_EQ(boom->state, JobState::kFailed);
  // The executor survived: the next job completes normally.
  service.handle_line(
      R"({"type": "submit", "id": "after", "setting": "setting1",)"
      R"( "horizon": 30})");
  service.wait_idle();
  const auto after = service.find_job("after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->state, JobState::kCompleted);
}

TEST(ServeService, RetriesAndDegradedJobsSurfaceInStats) {
  const util::FailpointScope guard;
  const fs::path dir = scratch_dir("degraded_stats");
  EventLog log;
  std::atomic<bool> crashed{false};
  ServiceConfig cfg;
  cfg.state_dir = dir.string();
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.checkpoint_every = 20;
  cfg.max_attempts = 2;
  cfg.fault_hook = [&crashed](int, Slot slot) {
    if (slot == 50 && !crashed.exchange(true)) {
      throw std::runtime_error("transient failure");
    }
  };
  JobService service(cfg, log.sink());
  service.start();
  // Disk fills up mid-job: checkpointing degrades, the job still completes.
  service.handle_line(
      R"({"type": "inject", "site": "checkpoint.write.enospc",)"
      R"( "mode": "1in1"})");
  service.handle_line(
      R"({"type": "submit", "id": "rough", "setting": "setting1",)"
      R"( "horizon": 120, "runs": 1})");
  service.wait_idle();
  EXPECT_TRUE(log.contains("\"event\": \"degraded\""));
  EXPECT_TRUE(log.contains("\"reason\": \"disk_pressure\""));
  const auto job = service.find_job("rough");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, JobState::kCompleted)
      << "disk pressure must not fail the job";
  EXPECT_TRUE(job->degraded);
  EXPECT_EQ(job->summary_json, reference_summary("setting1", 120, 1));

  service.handle_line(R"({"type": "stats"})");
  const exp::JsonValue doc = last_stats(log);
  EXPECT_EQ(stats_key(doc, "retries_total")->number, 1.0)
      << "the crashed-and-retried attempt must be counted";
  EXPECT_EQ(stats_key(doc, "degraded_jobs")->number, 1.0);
  bool saw_degraded_flag = false;
  for (const auto& jobv : stats_key(doc, "jobs")->array) {
    for (const auto& [jk, jv] : jobv.object) {
      if (jk == "degraded") saw_degraded_flag = jv.boolean;
    }
  }
  EXPECT_TRUE(saw_degraded_flag);
}

/// Craft the on-disk residue of a job that crashed `attempts` previous
/// server executions: spec.json + job.json, no result.json.
void plant_poisoned_job(const fs::path& state_dir, const std::string& id,
                        int attempts) {
  exp::SettingParams params;
  params.horizon = 60;
  auto cfg = exp::make_setting("setting1", params);
  const fs::path dir = state_dir / "jobs" / id;
  fs::create_directories(dir);
  exp::save_spec_file(cfg, (dir / "spec.json").string());
  std::ofstream(dir / "job.json")
      << R"({"version": 1, "id": )" << exp::json_quote(id)
      << R"(, "runs": 1, "attempts": )" << attempts << "}\n";
}

TEST(ServeService, QuarantinesPoisonedJobAtRecoveryExactlyOnce) {
  const fs::path dir = scratch_dir("quarantine");
  plant_poisoned_job(dir, "poison", 3);
  plant_poisoned_job(dir, "healthy", 1);  // one prior crash: still requeued
  {
    EventLog log;
    ServiceConfig cfg;
    cfg.state_dir = dir.string();
    cfg.executors = 1;
    cfg.lanes = 1;
    cfg.max_job_attempts = 3;
    JobService service(cfg, log.sink());
    service.start();
    service.wait_idle();
    // The poisoned job fails terminally without ever being enqueued...
    const auto poison = service.find_job("poison");
    ASSERT_NE(poison, nullptr);
    EXPECT_EQ(poison->state, JobState::kFailed);
    EXPECT_EQ(poison->failure_reason, "poisoned");
    EXPECT_TRUE(log.contains("\"reason\": \"poisoned\""));
    EXPECT_TRUE(fs::exists(dir / "jobs" / "poison" / "result.json"));
    // ...while the below-threshold one resumes and completes normally.
    const auto healthy = service.find_job("healthy");
    ASSERT_NE(healthy, nullptr);
    EXPECT_EQ(healthy->state, JobState::kCompleted);

    service.handle_line(R"({"type": "stats"})");
    EXPECT_EQ(stats_key(last_stats(log), "quarantined_total")->number, 1.0);
  }
  // Exactly once: the next restart sees result.json and does nothing.
  {
    EventLog log;
    ServiceConfig cfg;
    cfg.state_dir = dir.string();
    cfg.max_job_attempts = 3;
    JobService service(cfg, log.sink());
    service.start();
    EXPECT_EQ(service.job_count(), 0u);
    EXPECT_FALSE(log.contains("\"reason\": \"poisoned\""));
    service.handle_line(R"({"type": "stats"})");
    EXPECT_EQ(stats_key(last_stats(log), "quarantined_total")->number, 0.0);
  }
}

TEST(ServeService, GracefulDrainDoesNotCountAsCrashAttempt) {
  const fs::path dir = scratch_dir("drain_attempts");
  std::atomic<bool> reached{false};
  EventLog log;
  ServiceConfig cfg;
  cfg.state_dir = dir.string();
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.checkpoint_every = 20;
  cfg.max_job_attempts = 1;  // one crash would already quarantine
  cfg.fault_hook = [&reached](int run, Slot slot) {
    if (run == 0 && slot == 60) reached.store(true);
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "d", "setting": "setting1",)"
      R"( "horizon": 240})");
  while (!reached.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.drain();
  // on_start persisted attempts=1; the drain's on_interrupted took it back.
  std::ifstream in(dir / "jobs" / "d" / "job.json");
  const std::string meta((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(meta.find("\"attempts\": 0"), std::string::npos) << meta;
  // So even the strictest threshold resumes it instead of quarantining.
  EventLog log2;
  ServiceConfig cfg2;
  cfg2.state_dir = dir.string();
  cfg2.executors = 1;
  cfg2.lanes = 1;
  cfg2.checkpoint_every = 20;
  cfg2.max_job_attempts = 1;
  JobService service2(cfg2, log2.sink());
  service2.start();
  EXPECT_TRUE(log2.contains("\"event\": \"requeued\""));
  service2.wait_idle();
  const auto job = service2.find_job("d");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, JobState::kCompleted);
  EXPECT_EQ(job->summary_json, reference_summary("setting1", 240, 1));
}

TEST(ServeProtocol, ParsesOverloadControlFields) {
  const Request r = parse_request(
      R"({"type": "submit", "setting": "setting1", "tenant": "acme-1",)"
      R"( "priority": 7, "deadline_s": 12.5})");
  ASSERT_EQ(r.kind, Request::Kind::kSubmit);
  EXPECT_EQ(r.submit.tenant, "acme-1");
  EXPECT_EQ(r.submit.priority, 7);
  EXPECT_EQ(r.submit.deadline_s, 12.5);
  // Defaults: the anonymous tenant at priority 0 with no deadline.
  const Request d =
      parse_request(R"({"type": "submit", "setting": "setting1"})");
  EXPECT_TRUE(d.submit.tenant.empty());
  EXPECT_EQ(d.submit.priority, 0);
  EXPECT_EQ(d.submit.deadline_s, 0.0);

  const auto bad_submit = [](const std::string& extra) {
    return R"({"type": "submit", "setting": "setting1", )" + extra + "}";
  };
  EXPECT_THROW(parse_request(bad_submit(R"("tenant": "")")), ProtocolError);
  EXPECT_THROW(parse_request(bad_submit(R"("tenant": "a b")")), ProtocolError);
  EXPECT_THROW(parse_request(bad_submit(R"("priority": 10)")), ProtocolError);
  EXPECT_THROW(parse_request(bad_submit(R"("priority": -1)")), ProtocolError);
  EXPECT_THROW(parse_request(bad_submit(R"("deadline_s": 0)")), ProtocolError);
  EXPECT_THROW(parse_request(bad_submit(R"("deadline_s": -3)")), ProtocolError);
  EXPECT_THROW(parse_request(bad_submit(R"("deadline_s": "soon")")),
               ProtocolError);
}

/// Job ids of every "started" event, in emission order.
std::vector<std::string> started_order(EventLog& log) {
  std::vector<std::string> ids;
  for (const auto& l : log.snapshot()) {
    if (l.find("\"event\": \"started\"") == std::string::npos) continue;
    const auto key = l.find("\"job\": \"");
    if (key == std::string::npos) continue;
    const auto begin = key + 8;
    ids.push_back(l.substr(begin, l.find('"', begin) - begin));
  }
  return ids;
}

/// Like reference_summary, but with the policy and shard overrides the
/// preemption tests submit.
std::string reference_summary_for(const std::string& setting, Slot horizon,
                                  int runs, const std::string& policy,
                                  int shards) {
  exp::SettingParams params;
  params.horizon = horizon;
  params.policy = policy;
  auto cfg = exp::make_setting(setting, params);
  cfg.world.shards = shards;
  const auto batch = exp::run_many_result(cfg, runs, 2);
  EXPECT_TRUE(batch.all_completed());
  std::vector<metrics::RunResult> results;
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.completed[i]) results.push_back(batch.results[i]);
  }
  return summary_json(cfg, results);
}

/// The preemption contract, end to end: a low-priority job is asked off its
/// executor when a higher-priority job arrives, flushes a checkpoint,
/// requeues, resumes after the high-priority job — and its final summary is
/// bit-identical to an un-preempted run. The preemption is never charged as
/// a crash attempt.
void preempt_resume_case(const std::string& policy, int shards) {
  SCOPED_TRACE("policy=" + policy + " shards=" + std::to_string(shards));
  const fs::path dir =
      scratch_dir("preempt_" + policy + "_" + std::to_string(shards));
  EventLog log;
  std::atomic<bool> reached{false};
  std::atomic<bool> gate{false};
  ServiceConfig cfg;
  cfg.state_dir = dir.string();
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.checkpoint_every = 20;
  // Hold the low-priority job inside slot 100 until the gate opens, so the
  // governor's yield decision lands while it is demonstrably mid-run.
  cfg.fault_hook = [&](int run, Slot slot) {
    if (run == 0 && slot == 100 && !reached.exchange(true)) {
      while (!gate.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "low", "setting": "setting1",)"
      R"( "horizon": 240, "policy": ")" +
      policy + R"(", "shards": )" + std::to_string(shards) + "}");
  while (!reached.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.handle_line(
      R"({"type": "submit", "id": "high", "setting": "setting1",)"
      R"( "horizon": 60, "priority": 5})");
  const auto low = service.find_job("low");
  ASSERT_NE(low, nullptr);
  // The governor must ask "low" off its executor: every executor is busy and
  // a strictly higher-priority job waits.
  for (int i = 0; i < 5000 && !low->yield.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(low->yield.load()) << "governor never requested the yield";
  gate.store(true);
  service.wait_idle();

  EXPECT_TRUE(log.contains("\"event\": \"preempted\""));
  EXPECT_TRUE(log.contains("\"requeued\": true"));
  const auto order = started_order(log);
  ASSERT_GE(order.size(), 3u) << "low must start, yield, and start again";
  EXPECT_EQ(order[0], "low");
  EXPECT_EQ(order[1], "high") << "the preemptor must dispatch first";
  const auto high = service.find_job("high");
  ASSERT_NE(high, nullptr);
  EXPECT_EQ(high->state, JobState::kCompleted);
  EXPECT_EQ(low->state, JobState::kCompleted);
  EXPECT_GE(low->preempts, 1);
  EXPECT_EQ(low->summary_json,
            reference_summary_for("setting1", 240, 1, policy, shards))
      << "preempt-resume must be bit-identical to an uninterrupted run";
  // One clean execution on the books: the preemption's on_interrupted took
  // back the attempt it would otherwise have charged (attempts would read 2
  // if it had been charged).
  std::ifstream in(dir / "jobs" / "low" / "job.json");
  const std::string meta((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(meta.find("\"attempts\": 1"), std::string::npos) << meta;

  service.handle_line(R"({"type": "stats"})");
  const exp::JsonValue doc = last_stats(log);
  EXPECT_EQ(stats_key(doc, "preempted_total")->number, 1.0);
  EXPECT_EQ(stats_key(doc, "shed_total")->number, 0.0);
}

TEST(ServeService, PreemptResumeBitIdenticalAcrossPoliciesAndShards) {
  for (const std::string policy : {"smart_exp3", "exp3"}) {
    for (const int shards : {1, 2}) preempt_resume_case(policy, shards);
  }
}

TEST(ServeService, TenantQuotasRejectWithDistinctReasons) {
  EventLog log;
  std::atomic<bool> first{false};
  std::atomic<bool> gate{false};
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.default_quota.max_queued = 1;
  TenantQuota bulk;
  bulk.max_device_slots = 30;
  cfg.tenant_quotas["bulk"] = bulk;
  // Hold the first job mid-run so everything behind it stays queued.
  cfg.fault_hook = [&](int, Slot) {
    if (!first.exchange(true)) {
      while (!gate.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "a", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "acme"})");
  for (int i = 0; i < 500 && !log.contains("\"event\": \"started\""); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(log.contains("\"tenant\": \"acme\""))
      << "accepted events must carry the tenant";
  // acme may queue one job; the second queued submission trips max_queued.
  service.handle_line(
      R"({"type": "submit", "id": "b", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "acme"})");
  service.handle_line(
      R"({"type": "submit", "id": "c", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "acme"})");
  EXPECT_TRUE(log.contains("\"reason\": \"tenant-queued\""));
  EXPECT_TRUE(log.contains("max_queued quota"));
  EXPECT_TRUE(log.contains("\"retry_after_ms\""));
  EXPECT_EQ(service.find_job("c"), nullptr);
  // bulk is capped at 30 device-slots: one 20-device job fits, two do not.
  service.handle_line(
      R"({"type": "submit", "id": "d1", "setting": "setting1",)"
      R"( "horizon": 30, "devices": 20, "tenant": "bulk"})");
  service.handle_line(
      R"({"type": "submit", "id": "d2", "setting": "setting1",)"
      R"( "horizon": 30, "devices": 20, "tenant": "bulk"})");
  EXPECT_TRUE(log.contains("\"reason\": \"tenant-device-slots\""));
  EXPECT_TRUE(log.contains("max_device_slots quota"));
  EXPECT_EQ(service.find_job("d2"), nullptr);
  gate.store(true);
  service.wait_idle();
  // Rejections shed load without starving admitted work.
  for (const char* id : {"a", "b", "d1"}) {
    const auto job = service.find_job(id);
    ASSERT_NE(job, nullptr) << id;
    EXPECT_EQ(job->state, JobState::kCompleted) << id;
  }
}

TEST(ServeService, QueuedJobPastDeadlineIsShed) {
  EventLog log;
  std::atomic<bool> first{false};
  std::atomic<bool> gate{false};
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.fault_hook = [&](int, Slot) {
    if (!first.exchange(true)) {
      while (!gate.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "hold", "setting": "setting1",)"
      R"( "horizon": 30})");
  for (int i = 0; i < 500 && !log.contains("\"event\": \"started\""); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // 50 ms of patience against a held executor: the governor sheds it from
  // the queue before it ever starts.
  service.handle_line(
      R"({"type": "submit", "id": "doomed", "setting": "setting1",)"
      R"( "horizon": 30, "deadline_s": 0.05})");
  for (int i = 0; i < 2000 && !log.contains("\"reason\": \"deadline\""); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(log.contains("\"event\": \"failed\""));
  EXPECT_TRUE(log.contains("\"reason\": \"deadline\""));
  const auto doomed = service.find_job("doomed");
  ASSERT_NE(doomed, nullptr);
  EXPECT_EQ(doomed->state, JobState::kFailed);
  EXPECT_EQ(doomed->failure_reason, "deadline");
  gate.store(true);
  service.wait_idle();
  EXPECT_EQ(service.find_job("hold")->state, JobState::kCompleted);
  service.handle_line(R"({"type": "stats"})");
  const exp::JsonValue doc = last_stats(log);
  EXPECT_EQ(stats_key(doc, "shed_total")->number, 1.0);
  EXPECT_EQ(stats_key(doc, "preempted_total")->number, 0.0);
}

TEST(ServeService, RunningJobPastDeadlineFailsTerminally) {
  EventLog log;
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  // ~2 ms per slot makes the horizon worth seconds of wall clock — far past
  // the 100 ms budget, so the governor must kill it mid-run.
  cfg.fault_hook = [](int, Slot) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "slow", "setting": "setting1",)"
      R"( "horizon": 2000, "deadline_s": 0.1})");
  service.wait_idle();
  EXPECT_TRUE(log.contains("\"reason\": \"deadline\""));
  EXPECT_TRUE(log.contains("wall-clock budget"));
  const auto slow = service.find_job("slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->state, JobState::kFailed);
  EXPECT_EQ(slow->failure_reason, "deadline");
}

TEST(ServeService, StatsReportsQueueCompositionAndOverloadCounters) {
  EventLog log;
  std::atomic<bool> first{false};
  std::atomic<bool> gate{false};
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.preempt = false;  // keep "hold" on its executor while we snapshot
  cfg.fault_hook = [&](int, Slot) {
    if (!first.exchange(true)) {
      while (!gate.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "hold", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "ops"})");
  for (int i = 0; i < 500 && !log.contains("\"event\": \"started\""); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  service.handle_line(
      R"({"type": "submit", "id": "q1", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "acme", "priority": 2})");
  service.handle_line(
      R"({"type": "submit", "id": "q2", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "acme", "priority": 2})");
  service.handle_line(
      R"({"type": "submit", "id": "q3", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "zeta"})");
  service.handle_line(R"({"type": "stats"})");
  const exp::JsonValue doc = last_stats(log);
  EXPECT_EQ(stats_key(doc, "queue_depth")->number, 3.0);
  EXPECT_GE(stats_key(doc, "oldest_queued_age_s")->number, 0.0);
  const exp::JsonValue* by = stats_key(doc, "queue_by");
  ASSERT_NE(by, nullptr);
  ASSERT_EQ(by->array.size(), 2u) << "two (tenant, priority) buckets queued";
  // Slices come in dispatch order: acme's priority-2 pair ahead of zeta.
  const auto slice_field = [](const exp::JsonValue& slice, const char* key) {
    for (const auto& [k, v] : slice.object) {
      if (k == key) return v;
    }
    return exp::JsonValue{};
  };
  EXPECT_EQ(slice_field(by->array[0], "tenant").str, "acme");
  EXPECT_EQ(slice_field(by->array[0], "priority").number, 2.0);
  EXPECT_EQ(slice_field(by->array[0], "depth").number, 2.0);
  EXPECT_EQ(slice_field(by->array[1], "tenant").str, "zeta");
  EXPECT_EQ(slice_field(by->array[1], "depth").number, 1.0);
  // Per-job rows carry the overload fields.
  bool saw_hold = false;
  for (const auto& jobv : stats_key(doc, "jobs")->array) {
    bool has_priority = false, has_preempts = false;
    std::string id, tenant;
    for (const auto& [jk, jv] : jobv.object) {
      if (jk == "job") id = jv.str;
      if (jk == "tenant") tenant = jv.str;
      if (jk == "priority") has_priority = true;
      if (jk == "preempts") has_preempts = true;
    }
    EXPECT_TRUE(has_priority) << id;
    EXPECT_TRUE(has_preempts) << id;
    if (id == "hold") {
      saw_hold = true;
      EXPECT_EQ(tenant, "ops");
    }
  }
  EXPECT_TRUE(saw_hold);
  gate.store(true);
  service.wait_idle();
}

TEST(ServeService, PriorityOrdersDispatchAndDefaultsStayFifo) {
  EventLog log;
  std::atomic<bool> first{false};
  std::atomic<bool> gate{false};
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.preempt = false;  // dispatch order only; preemption has its own test
  cfg.fault_hook = [&](int, Slot) {
    if (!first.exchange(true)) {
      while (!gate.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "submit", "id": "hold", "setting": "setting1",)"
      R"( "horizon": 30})");
  for (int i = 0; i < 500 && !log.contains("\"event\": \"started\""); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Two default-priority jobs, then a priority-9 one: the queue (with no
  // quota table, i.e. the FIFO fast path) must keep f1 before f2 yet let
  // p9 jump both.
  service.handle_line(
      R"({"type": "submit", "id": "f1", "setting": "setting1", "horizon": 30})");
  service.handle_line(
      R"({"type": "submit", "id": "f2", "setting": "setting1", "horizon": 30})");
  service.handle_line(
      R"({"type": "submit", "id": "p9", "setting": "setting1",)"
      R"( "horizon": 30, "priority": 9})");
  gate.store(true);
  service.wait_idle();
  const std::vector<std::string> expected = {"hold", "p9", "f1", "f2"};
  EXPECT_EQ(started_order(log), expected);
}

TEST(ServeService, InjectedAdmissionFaultRejectsInternalAndRecovers) {
  const util::FailpointScope guard;
  EventLog log;
  ServiceConfig cfg;
  cfg.executors = 1;
  cfg.lanes = 1;
  cfg.default_quota.max_queued = 8;  // non-empty quota table: accounting on
  JobService service(cfg, log.sink());
  service.start();
  service.handle_line(
      R"({"type": "inject", "site": "serve.quota.admit", "mode": "once"})");
  service.handle_line(
      R"({"type": "submit", "id": "unlucky", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "t"})");
  EXPECT_TRUE(log.contains("\"reason\": \"internal\""));
  EXPECT_TRUE(log.contains("injected serve.quota.admit"));
  EXPECT_EQ(service.find_job("unlucky"), nullptr);
  // The fault mutated nothing: the very next submission sails through.
  service.handle_line(
      R"({"type": "submit", "id": "fine", "setting": "setting1",)"
      R"( "horizon": 30, "tenant": "t"})");
  service.wait_idle();
  const auto fine = service.find_job("fine");
  ASSERT_NE(fine, nullptr);
  EXPECT_EQ(fine->state, JobState::kCompleted);
}

}  // namespace
}  // namespace smartexp3::serve
