#include "core/smart_exp3.hpp"

#include <gtest/gtest.h>

#include <set>

#include "policy_test_util.hpp"

namespace smartexp3::core {
namespace {

using testing::drive_two_level;
using testing::feedback;

TEST(SmartExp3, NameReflectsVariant) {
  EXPECT_EQ(SmartExp3(1).name(), "smart_exp3");
  EXPECT_EQ(SmartExp3(1, smart_exp3_no_reset()).name(), "smart_exp3_noreset");
}

TEST(SmartExp3, AllMechanismsEnabledByDefault) {
  SmartExp3 policy(1);
  EXPECT_TRUE(policy.options().explore_first);
  EXPECT_TRUE(policy.options().greedy);
  EXPECT_TRUE(policy.options().switch_back);
  EXPECT_TRUE(policy.options().reset);
}

TEST(SmartExp3, ExploresAllNetworksInFirstKBlocks) {
  SmartExp3 policy(2);
  policy.set_networks({0, 1, 2, 3, 4});
  std::set<NetworkId> seen;
  int t = 0;
  while (policy.blocks_started() < 5) {
    const NetworkId c = policy.choose(t);
    seen.insert(c);
    policy.observe(t++, feedback(0.5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SmartExp3, SwitchBackReturnsToPreviousNetworkAfterBadFirstSlot) {
  SmartExp3Tunables t;
  t.enable_reset = false;
  t.enable_greedy = false;     // deterministic selection path for the test
  t.enable_explore_first = false;
  SmartExp3 policy(3, t);
  policy.set_networks({0, 1});

  // Hand-feed: network 0 is great (gain 0.9), network 1 terrible (0.05).
  // Whenever the policy tries network 1, its first slot is bad and the
  // switch-back mechanism must return it to network 0 on the next slot.
  int slot = 0;
  int bad_visits = 0;
  int switch_back_follows = 0;
  NetworkId prev = kNoNetwork;
  bool prev_was_bad_first_slot = false;
  for (; slot < 4000; ++slot) {
    const NetworkId c = policy.choose(slot);
    if (prev_was_bad_first_slot) {
      // Previous slot was the first slot of a block on the bad network
      // after being on the good one: the paper requires returning.
      if (c == 0) ++switch_back_follows;
      prev_was_bad_first_slot = false;
    }
    if (c == 1 && prev == 0) {
      ++bad_visits;
      prev_was_bad_first_slot = true;
    }
    prev = c;
    policy.observe(slot, feedback(c == 0 ? 0.9 : 0.05));
  }
  ASSERT_GT(bad_visits, 0);
  EXPECT_GT(policy.stats().switch_backs, 0);
  // The vast majority of bad excursions must be cut short: after the bad
  // first slot the device is back on network 0. (A few excursions are
  // exempt — the first one lacks history, and the no-ping-pong rule blocks
  // a switch-back right after a switch-back block.)
  EXPECT_GE(switch_back_follows + 4, bad_visits - bad_visits / 4);
}

TEST(SmartExp3, NoTwoConsecutiveSwitchBacks) {
  SmartExp3 policy(4, smart_exp3_no_reset());
  policy.set_networks({0, 1, 2});
  // Adversarial gains: everything looks bad, tempting endless switch-backs.
  stats::Rng rng(9);
  int t = 0;
  int last_sb = -10;
  int prev_stats = 0;
  for (; t < 3000; ++t) {
    policy.choose(t);
    const int sb = policy.stats().switch_backs;
    if (sb > prev_stats) {
      // A switch-back block just started: it cannot have started in the
      // immediately preceding block boundary too (ping-pong guard). We
      // can't observe block boundaries directly, but consecutive slots
      // starting switch-backs would mean consecutive blocks did.
      EXPECT_GT(t - last_sb, 1);
      last_sb = t;
      prev_stats = sb;
    }
    policy.observe(t, feedback(rng.uniform() * 0.2));
  }
}

TEST(SmartExp3, PeriodicResetFiresInStaticWorld) {
  SmartExp3 policy(5);
  policy.set_networks({0, 1, 2});
  // Strongly favour one arm so p_{i+} >= 0.75 and block lengths grow to 40:
  // the periodic reset must eventually fire.
  drive_two_level(policy, 20000, 0, 0.95, 0.05);
  EXPECT_GE(policy.stats().resets, 1);
}

TEST(SmartExp3, NoResetVariantNeverResets) {
  SmartExp3 policy(6, smart_exp3_no_reset());
  policy.set_networks({0, 1, 2});
  drive_two_level(policy, 20000, 0, 0.95, 0.05);
  EXPECT_EQ(policy.stats().resets, 0);
}

TEST(SmartExp3, GainDropTriggersReset) {
  SmartExp3Tunables t;
  t.enable_switch_back = false;  // isolate the drop detector
  t.enable_greedy = false;
  SmartExp3 policy(7, t);
  policy.set_networks({0, 1});
  // Phase 1: stable high gain on arm 0.
  int slot = 0;
  for (; slot < 400; ++slot) {
    const NetworkId c = policy.choose(slot);
    policy.observe(slot, feedback(c == 0 ? 0.9 : 0.1));
  }
  const int resets_before = policy.stats().resets;
  // Phase 2: arm 0's gain collapses by 50 % — far beyond the 15 % threshold,
  // for many consecutive slots.
  for (; slot < 600; ++slot) {
    const NetworkId c = policy.choose(slot);
    policy.observe(slot, feedback(c == 0 ? 0.45 : 0.1));
  }
  EXPECT_GT(policy.stats().resets, resets_before);
}

TEST(SmartExp3, SmallFluctuationsDoNotTriggerDropReset) {
  SmartExp3Tunables t;
  t.enable_switch_back = false;
  t.enable_greedy = false;
  t.reset_block_len = 1000000;  // disable the periodic reset for isolation
  SmartExp3 policy(8, t);
  policy.set_networks({0, 1});
  stats::Rng noise(3);
  for (int slot = 0; slot < 2000; ++slot) {
    const NetworkId c = policy.choose(slot);
    // +-10 % noise stays inside the 15 % guard band.
    const double base = c == 0 ? 0.8 : 0.2;
    policy.observe(slot, feedback(base * (1.0 + 0.1 * (noise.uniform() * 2.0 - 1.0))));
  }
  EXPECT_EQ(policy.stats().resets, 0);
}

TEST(SmartExp3, ResetRetainsWeights) {
  SmartExp3 policy(9);
  policy.set_networks({0, 1, 2});
  drive_two_level(policy, 2000, 1, 0.9, 0.1);
  policy.force_reset();
  // Weights survive: after re-exploration the favourite should quickly be
  // arm 1 again (its weight was never cleared).
  const auto counts = drive_two_level(policy, 500, 1, 0.9, 0.1);
  EXPECT_GT(counts[1], counts[0]);
  EXPECT_GT(counts[1], counts[2]);
}

TEST(SmartExp3, ResetForcesFullReExploration) {
  SmartExp3 policy(10);
  policy.set_networks({0, 1, 2, 3});
  drive_two_level(policy, 1000, 0, 0.9, 0.1);
  policy.force_reset();
  std::set<NetworkId> seen;
  int t = 1000;
  const long start_blocks = policy.blocks_started();
  while (policy.blocks_started() < start_blocks + 4) {
    seen.insert(policy.choose(t));
    policy.observe(t++, feedback(0.5));
  }
  EXPECT_EQ(seen.size(), 4u);  // every network explored again
}

TEST(SmartExp3, NewNetworkTriggersResetAndExploration) {
  SmartExp3 policy(11);
  policy.set_networks({0, 1});
  drive_two_level(policy, 1500, 0, 0.9, 0.1);
  const int resets_before = policy.stats().resets;
  policy.set_networks({0, 1, 2});
  EXPECT_GT(policy.stats().resets, resets_before);
  // The new network must be visited soon (it has max weight + forced
  // exploration).
  bool visited = false;
  for (int t = 0; t < 50 && !visited; ++t) {
    const NetworkId c = policy.choose(1500 + t);
    visited = (c == 2);
    policy.observe(1500 + t, feedback(0.5));
  }
  EXPECT_TRUE(visited);
}

TEST(SmartExp3, NoResetVariantStillHandlesNewNetworks) {
  SmartExp3 policy(12, smart_exp3_no_reset());
  policy.set_networks({0, 1});
  drive_two_level(policy, 1000, 0, 0.9, 0.1);
  policy.set_networks({0, 1, 2});
  EXPECT_EQ(policy.stats().resets, 0);
  // Newcomer still gets explored thanks to the max-weight rule + queue.
  bool visited = false;
  for (int t = 0; t < 200 && !visited; ++t) {
    const NetworkId c = policy.choose(1000 + t);
    visited = (c == 2);
    policy.observe(1000 + t, feedback(0.5));
  }
  EXPECT_TRUE(visited);
}

TEST(SmartExp3, DisappearingFavouriteTriggersReset) {
  SmartExp3 policy(13);
  policy.set_networks({0, 1, 2});
  drive_two_level(policy, 3000, 2, 0.95, 0.05);
  const int resets_before = policy.stats().resets;
  policy.set_networks({0, 1});  // the favourite vanishes
  EXPECT_GT(policy.stats().resets, resets_before);
}

TEST(SmartExp3, StatsCountersAreConsistent) {
  SmartExp3 policy(14);
  policy.set_networks({0, 1, 2});
  drive_two_level(policy, 5000, 1, 0.8, 0.2);
  const auto s = policy.stats();
  EXPECT_GT(s.blocks_started, 0);
  EXPECT_GE(s.greedy_selections, 0);
  EXPECT_GE(s.switch_backs, 0);
  EXPECT_LE(s.switch_backs, s.blocks_started);
  EXPECT_LE(s.greedy_selections, s.blocks_started);
}

TEST(SmartExp3, ConvergesToBestArmDespiteMechanisms) {
  SmartExp3 policy(15, smart_exp3_no_reset());
  policy.set_networks({0, 1, 2});
  const auto counts = drive_two_level(policy, 4000, 2, 0.9, 0.1);
  EXPECT_GT(counts[2], 2500);
}

}  // namespace
}  // namespace smartexp3::core
