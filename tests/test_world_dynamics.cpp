// Deeper world-dynamics coverage: interactions between joins/leaves, moves,
// trace-driven capacities, scripted capacity changes and the policies'
// environment-change rules — the machinery behind the paper's Figs 7-9.
#include <gtest/gtest.h>

#include "core/smart_exp3.hpp"
#include "exp/runner.hpp"
#include "exp/settings.hpp"
#include "metrics/recorder.hpp"

namespace smartexp3::netsim {
namespace {

exp::ExperimentConfig base_config(const std::string& policy, int n, Slot horizon) {
  auto cfg = exp::static_setting1(policy, n, horizon);
  cfg.delay = exp::DelayKind::kZero;
  return cfg;
}

TEST(WorldDynamics, TransientDevicesChargeOnlyActiveSlots) {
  auto cfg = base_config("fixed_random", 3, 100);
  cfg.devices[1].join_slot = 20;
  cfg.devices[1].leave_slot = 60;
  auto world = exp::build_world(cfg, 5);
  world->run();
  EXPECT_EQ(world->devices().slots_active[0], 100);
  EXPECT_EQ(world->devices().slots_active[1], 40);
  EXPECT_GT(world->devices().download_mb[1], 0.0);
}

TEST(WorldDynamics, LeaverFreesCapacityForTheRest) {
  auto cfg = base_config("fixed_random", 2, 40);
  cfg.world.gain_scale_mbps = 22.0;
  // Both fixed-random devices might pick different networks; force one
  // network so sharing is guaranteed.
  cfg.networks = {make_wifi(0, 10.0)};
  cfg.devices[1].leave_slot = 20;
  auto world = exp::build_world(cfg, 6);
  std::vector<double> rates;
  while (!world->done()) {
    world->step();
    rates.push_back(world->devices().last_rate_mbps[0]);
  }
  EXPECT_DOUBLE_EQ(rates[10], 5.0);   // shared
  EXPECT_DOUBLE_EQ(rates[30], 10.0);  // alone after the departure
}

TEST(WorldDynamics, RejoinIsNotSupportedTwicePerSpecButLeaveIsClean) {
  // A device that left stays out; the world must not resurrect it.
  auto cfg = base_config("greedy", 2, 50);
  cfg.devices[1].join_slot = 5;
  cfg.devices[1].leave_slot = 10;
  auto world = exp::build_world(cfg, 7);
  world->run();
  EXPECT_EQ(world->devices().slots_active[1], 5);
  EXPECT_FALSE(world->devices().active[1]);
  EXPECT_EQ(world->active_device_count(), 1);
}

TEST(WorldDynamics, MoveForcesPolicyOntoNewVisibleSet) {
  auto cfg = base_config("smart_exp3", 1, 60);
  cfg.networks = {
      make_cellular(0, 5.0),       // everywhere
      make_wifi(1, 20.0, {0}),     // area 0
      make_wifi(2, 20.0, {1}),     // area 1
  };
  cfg.devices[0].area = 0;
  cfg.scenario.move(30, cfg.devices[0].id, 1);
  auto world = exp::build_world(cfg, 8);
  std::vector<NetworkId> chosen;
  while (!world->done()) {
    world->step();
    chosen.push_back(world->devices().current[0]);
  }
  for (int t = 0; t < 30; ++t) ASSERT_NE(chosen[static_cast<std::size_t>(t)], 2) << t;
  for (int t = 30; t < 60; ++t) ASSERT_NE(chosen[static_cast<std::size_t>(t)], 1) << t;
  // After the move the device must eventually use the strong local WLAN.
  int on_wlan2 = 0;
  for (int t = 40; t < 60; ++t) on_wlan2 += chosen[static_cast<std::size_t>(t)] == 2;
  EXPECT_GT(on_wlan2, 5);
}

TEST(WorldDynamics, MoveToAreaWithSameVisibilityIsANoop) {
  auto cfg = base_config("greedy", 1, 20);
  // All networks cover everything: moving areas changes nothing.
  cfg.scenario.move(10, cfg.devices[0].id, 3);
  auto world = exp::build_world(cfg, 9);
  world->run();
  EXPECT_EQ(world->devices().slots_active[0], 20);
}

TEST(WorldDynamics, CapacityEventInterruptsTrace) {
  auto cfg = base_config("fixed_random", 1, 10);
  auto net = make_wifi(0, 5.0);
  net.trace = std::vector<double>(10, 3.0);
  cfg.networks = {net};
  cfg.scenario.set_capacity(5, 0, 8.0);
  auto world = exp::build_world(cfg, 10);
  std::vector<double> rates;
  while (!world->done()) {
    world->step();
    rates.push_back(world->devices().last_rate_mbps[0]);
  }
  EXPECT_DOUBLE_EQ(rates[0], 3.0);  // trace-driven
  EXPECT_DOUBLE_EQ(rates[7], 8.0);  // scripted override wins
}

TEST(WorldDynamics, GainScaleCoversTracePeaks) {
  auto cfg = base_config("fixed_random", 1, 5);
  auto net = make_wifi(0, 1.0);
  net.trace = {1.0, 9.0, 2.0};
  cfg.networks = {net};
  auto world = exp::build_world(cfg, 11);
  EXPECT_DOUBLE_EQ(world->gain_scale(), 9.0);
  // Gains must stay in [0, 1] even at the trace peak.
  while (!world->done()) {
    world->step();
    ASSERT_LE(world->devices().last_gain[0], 1.0);
  }
}

TEST(WorldDynamics, JoinMidRunSeesCurrentCongestion) {
  auto cfg = base_config("greedy", 5, 60);
  cfg.networks = {make_wifi(0, 10.0)};
  for (int i = 1; i < 5; ++i) cfg.devices[static_cast<std::size_t>(i)].join_slot = 30;
  auto world = exp::build_world(cfg, 12);
  std::vector<double> rate0;
  while (!world->done()) {
    world->step();
    rate0.push_back(world->devices().last_rate_mbps[0]);
  }
  EXPECT_DOUBLE_EQ(rate0[10], 10.0);
  EXPECT_DOUBLE_EQ(rate0[40], 2.0);  // five-way split after the joins
}

TEST(WorldDynamics, SmartExp3SurvivesSimultaneousMoveAndLeaveChurn) {
  // Stress: repeated moves while others come and go; the run must complete
  // with sane accounting (this guards the policy re-keying logic).
  auto cfg = base_config("smart_exp3", 8, 300);
  cfg.networks = {
      make_cellular(0, 10.0),
      make_wifi(1, 15.0, {0}),
      make_wifi(2, 15.0, {1}),
  };
  for (int i = 0; i < 8; ++i) {
    auto& d = cfg.devices[static_cast<std::size_t>(i)];
    d.area = i % 2;
    if (i >= 6) {
      d.join_slot = 50;
      d.leave_slot = 250;
    }
  }
  for (Slot t = 40; t < 280; t += 40) {
    cfg.scenario.move(t, 1, (t / 40) % 2);
    cfg.scenario.move(t + 7, 2, 1 - (t / 40) % 2);
  }
  const auto run = exp::run_once(cfg, 13);
  double total = 0.0;
  for (const double mb : run.downloads_mb) {
    ASSERT_GE(mb, 0.0);
    total += mb;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_EQ(run.downloads_mb.size(), 8u);
}

TEST(WorldDynamics, ObserverSeesConsistentCountsDuringChurn) {
  class Checker final : public WorldObserver {
   public:
    void on_slot_end(Slot, const World& world) override {
      int total = 0;
      for (const int c : world.counts()) total += c;
      EXPECT_EQ(total, world.active_device_count());
    }
  };
  auto cfg = base_config("exp3", 6, 100);
  cfg.devices[3].join_slot = 20;
  cfg.devices[4].leave_slot = 50;
  cfg.devices[5].join_slot = 60;
  cfg.devices[5].leave_slot = 90;
  auto world = exp::build_world(cfg, 14);
  Checker checker;
  world->set_observer(&checker);
  world->run();
}

}  // namespace
}  // namespace smartexp3::netsim
