#!/bin/sh
# netsel_serve service contract tests, end to end over real processes:
#   1. socket intake with concurrent mixed-size jobs (one scalability_xl at
#      10^5 devices — NETSEL_SERVE_TEST_XL_DEVICES scales it down for
#      sanitizer CI), invalid submissions rejected in-stream, stats replies;
#   2. SIGTERM mid-run: graceful drain flushes checkpoints and reports every
#      job's disposition, a restarted server requeues and finishes the job;
#   3. SIGKILL mid-run: no drain at all, yet the restarted server resumes
#      from durable checkpoints and the final summary is byte-identical to
#      an uninterrupted serve run of the same job.
# Run by ctest as `netsel_serve_test.sh <netsel_serve> <netsel_sim>`.
set -u

SERVE=${1:?usage: netsel_serve_test.sh <netsel_serve> <netsel_sim>}
SIM=${2:?usage: netsel_serve_test.sh <netsel_serve> <netsel_sim>}
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT
failures=0
XL_DEVICES=${NETSEL_SERVE_TEST_XL_DEVICES:-100000}

fail() {
    echo "FAIL: $1" >&2
    failures=$((failures + 1))
}

# wait_for <file> <needle> <seconds>
wait_for() {
    _i=0
    while [ "$_i" -lt $((10 * $3)) ]; do
        grep -q -- "$2" "$1" 2>/dev/null && return 0
        sleep 0.1
        _i=$((_i + 1))
    done
    return 1
}

# extract_summary <file> <job-id>: the raw "summary" object of the job's
# completed event — the byte string the resume tests compare.
extract_summary() {
    grep '"event": "completed"' "$1" | grep "\"job\": \"$2\"" |
        sed 's/.*"summary": //; s/, "timing".*//'
}

# --- 1. socket server: concurrent mixed jobs + bad input ------------------
SOCK="$WORK/serve.sock"
STATE1="$WORK/state1"
"$SERVE" --socket "$SOCK" --state-dir "$STATE1" --jobs 4 --checkpoint-every 100 \
    >"$WORK/server1.out" 2>"$WORK/server1.err" &
SERVER_PID=$!
wait_for "$WORK/server1.out" '"event": "serving"' 10 ||
    fail "server did not start: $(cat "$WORK/server1.err")"

# An inline-spec job exercises the whole wire path: dump a canonical spec,
# flatten it to one line, embed it in the submit request.
"$SIM" --dump-spec setting2 >"$WORK/spec.json" 2>/dev/null ||
    fail "netsel_sim --dump-spec failed"
SPEC_ONELINE=$(tr '\n' ' ' <"$WORK/spec.json")

{
    echo "{\"type\": \"submit\", \"id\": \"xl\", \"setting\": \"scalability_xl\", \"devices\": $XL_DEVICES}"
    echo '{"type": "submit", "id": "small1", "setting": "setting1", "horizon": 200, "runs": 2}'
    echo '{"type": "submit", "id": "small2", "setting": "setting2", "horizon": 200, "runs": 2}'
    echo "{\"type\": \"submit\", \"id\": \"specjob\", \"spec\": $SPEC_ONELINE, \"horizon\": 120}"
    echo '{"type": "submit", "id": "nope", "setting": "no_such_setting"}'
    echo 'this is not json'
    echo '{"type": "stats"}'
} | "$SERVE" --connect "$SOCK" >"$WORK/client1.out" 2>&1 &
CLIENT_PID=$!
# The client holds its connection until all four accepted jobs are terminal.
_i=0
while kill -0 "$CLIENT_PID" 2>/dev/null; do
    [ "$_i" -ge 4800 ] && { fail "client did not finish in time"; break; }
    sleep 0.1
    _i=$((_i + 1))
done
wait "$CLIENT_PID" 2>/dev/null

for job in xl small1 small2 specjob; do
    grep -q "\"event\": \"completed\".*\"job\": \"$job\"" "$WORK/client1.out" ||
        fail "job '$job' did not complete: $(tail -5 "$WORK/client1.out")"
done
grep -q '"event": "rejected".*"job": "nope".*no_such_setting' "$WORK/client1.out" ||
    fail "invalid setting was not rejected in-stream"
grep -q '"event": "error"' "$WORK/client1.out" ||
    fail "malformed line did not produce an error event"
grep -q '"event": "stats".*"queue_depth"' "$WORK/client1.out" ||
    fail "stats reply missing"
grep -q '"event": "progress".*"device_slots_per_sec"' "$WORK/server1.out" ||
    fail "no progress events with throughput on the broadcast stream"
extract_summary "$WORK/client1.out" xl | grep -q '"switches_mean"' ||
    fail "xl summary lacks aggregate fields"

# --- 2. SIGTERM mid-run: drain, disposition, restart, resume --------------
printf '%s\n' '{"type": "submit", "id": "slow", "setting": "scalability", "devices": 1000, "runs": 2}' |
    "$SERVE" --connect "$SOCK" >"$WORK/client2.out" 2>&1 &
CLIENT2_PID=$!
wait_for "$WORK/server1.out" '"event": "started", "job": "slow"' 30 ||
    fail "slow job never started"
wait_for "$WORK/server1.out" '"event": "checkpointed", "job": "slow"' 60 ||
    fail "slow job never checkpointed"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
status=$?
SERVER_PID=""
[ "$status" -eq 0 ] || fail "SIGTERM drain exited $status, expected 0"
wait "$CLIENT2_PID" 2>/dev/null
grep -q '"event": "draining"' "$WORK/server1.out" || fail "no draining event"
grep -q '"event": "interrupted", "job": "slow"' "$WORK/server1.out" ||
    fail "slow job was not reported interrupted"
grep -q '"event": "drained".*"job": "slow".*"state": "interrupted"' "$WORK/server1.out" ||
    fail "drained disposition missing the interrupted job"

# Restart over the same state dir: the unfinished job is requeued, resumed
# from its checkpoints, and completes.
"$SERVE" --stdin --state-dir "$STATE1" --checkpoint-every 100 \
    </dev/null >"$WORK/server1b.out" 2>&1 ||
    fail "restarted server exited nonzero"
grep -q '"event": "requeued", "job": "slow"' "$WORK/server1b.out" ||
    fail "restart did not requeue the interrupted job"
grep -q '"event": "completed", "job": "slow"' "$WORK/server1b.out" ||
    fail "requeued job did not complete after restart"
# Completed jobs stay done: a third start requeues nothing.
"$SERVE" --stdin --state-dir "$STATE1" </dev/null >"$WORK/server1c.out" 2>&1
grep -q '"event": "requeued"' "$WORK/server1c.out" &&
    fail "finished jobs were requeued on a clean restart"

# --- 3. SIGKILL mid-run: resume must be bit-identical ---------------------
# Big enough (2000 devices x 8640 slots x 2 runs) that the SIGKILL lands
# mid-run on any machine, yet finishes in a few seconds when run clean.
GOLDEN='{"type": "submit", "id": "golden", "setting": "scalability", "devices": 2000, "runs": 2}'

# Reference: the same job served start to finish, never interrupted.
STATE_REF="$WORK/state_ref"
printf '%s\n' "$GOLDEN" |
    "$SERVE" --stdin --state-dir "$STATE_REF" --checkpoint-every 100 \
        >"$WORK/ref.out" 2>&1 || fail "reference serve run failed"
REF_SUMMARY=$(extract_summary "$WORK/ref.out" golden)
[ -n "$REF_SUMMARY" ] || fail "reference run produced no summary"

STATE_KILL="$WORK/state_kill"
"$SERVE" --socket "$SOCK" --state-dir "$STATE_KILL" --checkpoint-every 100 \
    >"$WORK/server3.out" 2>&1 &
SERVER_PID=$!
wait_for "$WORK/server3.out" '"event": "serving"' 10 || fail "server3 did not start"
printf '%s\n' "$GOLDEN" | "$SERVE" --connect "$SOCK" >/dev/null 2>&1 &
CLIENT3_PID=$!
wait_for "$WORK/server3.out" '"event": "checkpointed", "job": "golden"' 60 ||
    fail "golden job never checkpointed"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
wait "$CLIENT3_PID" 2>/dev/null
grep -q '"event": "completed".*"job": "golden"' "$WORK/server3.out" &&
    fail "golden job finished before the SIGKILL — tighten the kill timing"

"$SERVE" --stdin --state-dir "$STATE_KILL" --checkpoint-every 100 \
    </dev/null >"$WORK/server3b.out" 2>&1 ||
    fail "post-SIGKILL restart exited nonzero"
grep -q '"event": "requeued", "job": "golden"' "$WORK/server3b.out" ||
    fail "post-SIGKILL restart did not requeue the golden job"
KILL_SUMMARY=$(extract_summary "$WORK/server3b.out" golden)
if [ -z "$KILL_SUMMARY" ]; then
    fail "resumed golden job produced no summary"
elif [ "$KILL_SUMMARY" != "$REF_SUMMARY" ]; then
    fail "resumed summary differs from uninterrupted serve run:
  reference: $REF_SUMMARY
  resumed:   $KILL_SUMMARY"
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures serve test(s) failed" >&2
    exit 1
fi
echo "all serve tests passed"
