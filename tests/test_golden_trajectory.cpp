// Golden-trajectory determinism test.
//
// The constants below were captured from the seed implementation (before the
// allocation-free hot-path refactor) by tools/golden_capture.cpp. The
// refactor — scratch-buffer probabilities, persistent SlotFeedback, the
// feedback-capability gate, the per-area visibility cache and the shared
// per-network rate cache — is required to be a pure optimisation: the same
// seed must produce bit-identical per-device downloads, switch counts and
// active-slot counts. EXPECT_EQ on doubles is deliberate; "close" is a bug.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "golden_scenario.hpp"

namespace smartexp3 {
namespace {

// golden values for seed 20260731 (regenerate with tools/golden_capture)
const double kExpectedDownloadsMb[] = {
    1258.0481779552008,  // device 0 (exp3)
    1256.7224329593078,  // device 1 (block_exp3)
    1494.818844595314,   // device 2 (hybrid_block_exp3)
    1902.743630771404,   // device 3 (smart_exp3_noreset)
    1810.1885888437248,  // device 4 (smart_exp3)
    1648.2941533440573,  // device 5 (greedy)
    1061.7593916594737,  // device 6 (full_information)
    523.78754870231637,  // device 7 (ucb1)
    863.84375,           // device 8 (fixed_random)
    604.26339551130093,  // device 9 (smart_exp3)
};
const int kExpectedSwitches[] = {113, 30, 23, 13, 26, 8, 134, 116, 0, 17};
const int kExpectedSlotsActive[] = {200, 200, 200, 200, 200, 200, 200, 120, 120, 100};

TEST(GoldenTrajectory, BitIdenticalToSeedImplementation) {
  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  world->run();

  const auto& devices = world->devices();
  ASSERT_EQ(devices.size(), 10u);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    SCOPED_TRACE("device " + std::to_string(i) + " (" +
                 devices[i].spec.policy_name + ")");
    EXPECT_EQ(devices[i].download_mb, kExpectedDownloadsMb[i]);
    EXPECT_EQ(devices[i].switches, kExpectedSwitches[i]);
    EXPECT_EQ(devices[i].slots_active, kExpectedSlotsActive[i]);
  }
}

TEST(GoldenTrajectory, RepeatedRunsAreIdentical) {
  const auto cfg = testing::golden_config();
  auto a = exp::build_world(cfg, cfg.base_seed + 7);
  auto b = exp::build_world(cfg, cfg.base_seed + 7);
  a->run();
  b->run();
  for (std::size_t i = 0; i < a->devices().size(); ++i) {
    EXPECT_EQ(a->devices()[i].download_mb, b->devices()[i].download_mb);
    EXPECT_EQ(a->devices()[i].switches, b->devices()[i].switches);
    EXPECT_EQ(a->devices()[i].current, b->devices()[i].current);
  }
}

TEST(GoldenTrajectory, ActiveDeviceCountTracksJoinsAndLeaves) {
  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  // The incremental counter must agree with a fresh scan at every slot,
  // across the scenario's joins (slot 40) and leaves (slots 100 and 160).
  while (!world->done()) {
    world->step();
    int scanned = 0;
    for (const auto& d : world->devices()) scanned += d.active ? 1 : 0;
    ASSERT_EQ(world->active_device_count(), scanned) << "slot " << world->now();
  }
  EXPECT_EQ(world->active_device_count(), 7);  // devices 7, 8 and 9 left for good
}

}  // namespace
}  // namespace smartexp3
