// Golden-trajectory determinism test.
//
// The constants below were captured by tools/golden_capture.cpp after the
// random-variate layer moved to fixed-cost inverse-CDF sampling (a
// deliberate, documented trajectory bump — the second, after the PR 2 move
// to per-device delay streams): normals now come from Wichura's AS241
// probit of a single uniform, Johnson-SU delays from the closed-form
// quantile function and Student-t delays from a prebuilt monotone-cubic
// inverse-CDF table, so every delay draw consumes exactly one 64-bit RNG
// output. Switch counts and active-slot counts are identical to the PR 2
// pins — delay draws never feed back into the policies' gains, and the
// policies draw no normals — only the download totals moved. Any engine
// change from here on is again required to be a pure optimisation: the same
// seed must produce bit-identical per-device downloads, switch counts and
// active-slot counts, with the recorder attached or not and at every thread
// count. EXPECT_EQ on doubles is deliberate; "close" is a bug.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "golden_scenario.hpp"
#include "metrics/recorder.hpp"

namespace smartexp3 {
namespace {

// golden values for seed 20260731 (regenerate with tools/golden_capture)
const double kExpectedDownloadsMb[] = {
    1277.3479156089365,  // device 0 (exp3)
    1252.8768675072538,  // device 1 (block_exp3)
    1496.8199647856557,  // device 2 (hybrid_block_exp3)
    1897.2063360532732,  // device 3 (smart_exp3_noreset)
    1809.3317101630428,  // device 4 (smart_exp3)
    1648.547775689862,   // device 5 (greedy)
    1067.7834028817138,  // device 6 (full_information)
    517.58860008288605,  // device 7 (ucb1)
    863.84375,           // device 8 (fixed_random)
    604.52321955728485,  // device 9 (smart_exp3)
};
const int kExpectedSwitches[] = {113, 30, 23, 13, 26, 8, 134, 116, 0, 17};
const int kExpectedSlotsActive[] = {200, 200, 200, 200, 200, 200, 200, 120, 120, 100};

void expect_pinned_trajectory(const netsim::World& world) {
  const auto& devices = world.devices();
  ASSERT_EQ(devices.size(), 10u);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    SCOPED_TRACE("device " + std::to_string(i) + " (" +
                 devices.spec[i].policy_name + ")");
    EXPECT_EQ(devices.download_mb[i], kExpectedDownloadsMb[i]);
    EXPECT_EQ(devices.switches[i], kExpectedSwitches[i]);
    EXPECT_EQ(devices.slots_active[i], kExpectedSlotsActive[i]);
  }
}

TEST(GoldenTrajectory, BitIdenticalToPinnedTrajectory) {
  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  world->run();
  expect_pinned_trajectory(*world);
}

// The recorder is a pure observer: attaching it (with every tracking option
// on) must not perturb the simulated model in any way.
TEST(GoldenTrajectory, RecorderAttachedDoesNotPerturbTrajectory) {
  auto cfg = testing::golden_config();
  cfg.recorder.track_distance = true;
  cfg.recorder.track_stability = true;
  cfg.recorder.track_def4 = true;
  cfg.recorder.track_selections = true;
  auto world = exp::build_world(cfg, cfg.base_seed);
  metrics::RunRecorder recorder(cfg.recorder);
  world->set_observer(&recorder);
  world->run();
  expect_pinned_trajectory(*world);
}

// The StepExecutor is purely an execution knob: device-parallel stepping
// must reproduce the pinned trajectory bit for bit at any thread count,
// including more threads than cores.
TEST(GoldenTrajectory, DeviceParallelSteppingDoesNotPerturbTrajectory) {
  for (const int threads : {2, 4, 7}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    auto cfg = testing::golden_config();
    cfg.world.threads = threads;
    auto world = exp::build_world(cfg, cfg.base_seed);
    world->run();
    expect_pinned_trajectory(*world);
  }
}

// Both knobs at once: the recorder observing a device-parallel world.
TEST(GoldenTrajectory, RecorderOnParallelWorldDoesNotPerturbTrajectory) {
  auto cfg = testing::golden_config();
  cfg.world.threads = 4;
  cfg.recorder.track_distance = true;
  cfg.recorder.track_stability = true;
  auto world = exp::build_world(cfg, cfg.base_seed);
  metrics::RunRecorder recorder(cfg.recorder);
  world->set_observer(&recorder);
  world->run();
  expect_pinned_trajectory(*world);
}

TEST(GoldenTrajectory, RepeatedRunsAreIdentical) {
  const auto cfg = testing::golden_config();
  auto a = exp::build_world(cfg, cfg.base_seed + 7);
  auto b = exp::build_world(cfg, cfg.base_seed + 7);
  a->run();
  b->run();
  for (std::size_t i = 0; i < a->devices().size(); ++i) {
    EXPECT_EQ(a->devices().download_mb[i], b->devices().download_mb[i]);
    EXPECT_EQ(a->devices().switches[i], b->devices().switches[i]);
    EXPECT_EQ(a->devices().current[i], b->devices().current[i]);
  }
}

TEST(GoldenTrajectory, ActiveDeviceCountTracksJoinsAndLeaves) {
  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  // The incremental counter must agree with a fresh scan at every slot,
  // across the scenario's joins (slot 40) and leaves (slots 100 and 160).
  while (!world->done()) {
    world->step();
    int scanned = 0;
    for (const auto a : world->devices().active) scanned += a ? 1 : 0;
    ASSERT_EQ(world->active_device_count(), scanned) << "slot " << world->now();
  }
  EXPECT_EQ(world->active_device_count(), 7);  // devices 7, 8 and 9 left for good
}

}  // namespace
}  // namespace smartexp3
