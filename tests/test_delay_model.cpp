#include "netsim/delay_model.hpp"

#include <gtest/gtest.h>

namespace smartexp3::netsim {
namespace {

TEST(ZeroDelay, AlwaysZero) {
  ZeroDelayModel model;
  stats::Rng rng(1);
  const auto wifi = make_wifi(0, 10.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(model.sample(wifi, rng), 0.0);
  }
}

TEST(FixedDelay, PerTechnology) {
  FixedDelayModel model(2.0, 5.0);
  stats::Rng rng(1);
  EXPECT_DOUBLE_EQ(model.sample(make_wifi(0, 10.0), rng), 2.0);
  EXPECT_DOUBLE_EQ(model.sample(make_cellular(1, 10.0), rng), 5.0);
}

TEST(DistributionDelay, BoundedBelowSlot) {
  DistributionDelayModel model;
  stats::Rng rng(2);
  const auto wifi = make_wifi(0, 10.0);
  const auto cell = make_cellular(1, 10.0);
  for (int i = 0; i < 20000; ++i) {
    const double dw = model.sample(wifi, rng);
    const double dc = model.sample(cell, rng);
    ASSERT_GE(dw, 0.0);
    ASSERT_GE(dc, 0.0);
    // The paper chose 15 s slots to exceed the worst observed delay.
    ASSERT_LT(dw, kDefaultSlotSeconds);
    ASSERT_LT(dc, kDefaultSlotSeconds);
  }
}

TEST(DistributionDelay, CellularSlowerThanWifiOnAverage) {
  DistributionDelayModel model;
  stats::Rng rng(3);
  const auto wifi = make_wifi(0, 10.0);
  const auto cell = make_cellular(1, 10.0);
  double wifi_sum = 0.0;
  double cell_sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    wifi_sum += model.sample(wifi, rng);
    cell_sum += model.sample(cell, rng);
  }
  EXPECT_GT(cell_sum / n, 1.5 * (wifi_sum / n));
}

TEST(DistributionDelay, CustomParamsHonoured) {
  DistributionDelayModel::Params p;
  p.max_delay_s = 1.0;
  DistributionDelayModel model(p);
  stats::Rng rng(4);
  const auto cell = make_cellular(0, 10.0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LE(model.sample(cell, rng), 1.0);
  }
}

TEST(DefaultDelayModel, IsDistributionBased) {
  const auto model = make_default_delay_model();
  ASSERT_NE(model, nullptr);
  EXPECT_NE(dynamic_cast<DistributionDelayModel*>(model.get()), nullptr);
}

}  // namespace
}  // namespace smartexp3::netsim
