#include "core/factory.hpp"

#include <gtest/gtest.h>

namespace smartexp3::core {
namespace {

TEST(Factory, AllNamesConstruct) {
  auto factory = make_named_policy_factory({4.0, 7.0, 22.0});
  for (const auto& name : policy_names()) {
    auto policy = factory(/*id=*/1, name, /*seed=*/42);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
    policy->set_networks({0, 1, 2});
    const NetworkId c = policy->choose(0);
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 2);
  }
}

TEST(Factory, SharedStatePredicateMatchesPolicyCapability) {
  // run_many balances its fan-out using the by-name predicate; the world
  // gates its executor on the virtual. They must never drift.
  auto factory = make_named_policy_factory({4.0, 7.0, 22.0});
  auto names = policy_names();
  for (const auto& n : extension_policy_names()) names.push_back(n);
  for (const auto& name : names) {
    auto policy = factory(/*id=*/1, name, /*seed=*/42);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy_shares_state_across_devices(name),
              policy->shares_state_across_devices())
        << name;
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_policy("thompson", 1), std::invalid_argument);
  EXPECT_THROW(make_policy("", 1), std::invalid_argument);
}

TEST(Factory, ExtensionPoliciesConstruct) {
  for (const auto& name : extension_policy_names()) {
    EXPECT_TRUE(is_valid_policy_name(name));
    auto policy = make_policy(name, 3);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
  // Extensions are not part of the paper's nine.
  EXPECT_EQ(policy_names().size(), 9u);
}

TEST(Factory, CentralizedRequiresCoordinator) {
  EXPECT_THROW(make_policy("centralized", 1), std::invalid_argument);
}

TEST(Factory, ValidatesNames) {
  EXPECT_TRUE(is_valid_policy_name("smart_exp3"));
  EXPECT_TRUE(is_valid_policy_name("centralized"));
  EXPECT_FALSE(is_valid_policy_name("smartexp3"));
  EXPECT_FALSE(is_valid_policy_name("thompson"));
}

TEST(Factory, CentralizedDevicesShareOneCoordinator) {
  auto factory = make_named_policy_factory({10.0, 10.0});
  auto a = factory(0, "centralized", 1);
  auto b = factory(1, "centralized", 2);
  a->set_networks({0, 1});
  b->set_networks({0, 1});
  // Shared coordinator balances them onto different networks.
  EXPECT_NE(a->choose(0), b->choose(0));
}

TEST(Factory, SmartTunablesPropagate) {
  SmartExp3Tunables t;
  t.beta = 0.5;
  auto policy = make_policy("smart_exp3", 1, t);
  auto* smart = dynamic_cast<SmartExp3*>(policy.get());
  ASSERT_NE(smart, nullptr);
  EXPECT_DOUBLE_EQ(smart->options().beta, 0.5);
  EXPECT_TRUE(smart->options().reset);
}

TEST(Factory, NoResetNameForcesResetOff) {
  SmartExp3Tunables t;  // reset defaults to on
  auto policy = make_policy("smart_exp3_noreset", 1, t);
  auto* smart = dynamic_cast<SmartExp3*>(policy.get());
  ASSERT_NE(smart, nullptr);
  EXPECT_FALSE(smart->options().reset);
}

TEST(Factory, NineAlgorithms) {
  EXPECT_EQ(policy_names().size(), 9u);
}

}  // namespace
}  // namespace smartexp3::core
