// ExperimentConfig::validate tests: each class of config mistake produces an
// actionable message, build_world refuses unsound configs, and every
// canonical setting passes clean.
#include <gtest/gtest.h>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "golden_scenario.hpp"

namespace smartexp3::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.name = "validate-fixture";
  cfg.world.horizon = 10;
  cfg.networks = {netsim::make_wifi(0, 5.0), netsim::make_cellular(1, 10.0)};
  for (int i = 1; i <= 3; ++i) {
    netsim::DeviceSpec d;
    d.id = i;
    d.policy_name = "greedy";
    cfg.devices.push_back(d);
  }
  return cfg;
}

/// The config must fail validation with a message containing `needle`.
void expect_rejected(const ExperimentConfig& cfg, const std::string& needle) {
  const auto errors = cfg.validate();
  ASSERT_FALSE(errors.empty()) << "expected a validation error for: " << needle;
  bool found = false;
  for (const auto& e : errors) found |= e.find(needle) != std::string::npos;
  EXPECT_TRUE(found) << "no error mentions '" << needle << "'; got: " << errors.front();
  EXPECT_THROW(cfg.validate_or_throw(), std::invalid_argument);
}

TEST(Validate, CleanConfigPasses) {
  EXPECT_TRUE(small_config().validate().empty());
  EXPECT_NO_THROW(small_config().validate_or_throw());
  EXPECT_TRUE(testing::golden_config().validate().empty());
}

TEST(Validate, DuplicateDeviceIds) {
  auto cfg = small_config();
  cfg.devices[2].id = cfg.devices[0].id;
  expect_rejected(cfg, "duplicate device id 1");
}

TEST(Validate, LeaveBeforeJoin) {
  auto cfg = small_config();
  cfg.devices[1].join_slot = 5;
  cfg.devices[1].leave_slot = 3;
  expect_rejected(cfg, "leaves at slot 3 before joining at slot 5");
  // -1 means "stays forever" and must stay legal.
  cfg.devices[1].leave_slot = -1;
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(Validate, NegativeJoinSlot) {
  auto cfg = small_config();
  cfg.devices[0].join_slot = -2;
  expect_rejected(cfg, "negative join_slot");
}

TEST(Validate, EmptyNetworks) {
  auto cfg = small_config();
  cfg.networks.clear();
  expect_rejected(cfg, "no networks");
}

TEST(Validate, NegativeCapacity) {
  auto cfg = small_config();
  cfg.networks[1].base_capacity_mbps = -3.0;
  expect_rejected(cfg, "negative capacity");
  cfg = small_config();
  cfg.networks[0].trace = {1.0, -2.0};
  expect_rejected(cfg, "trace[1] is negative");
}

TEST(Validate, NonContiguousNetworkIds) {
  auto cfg = small_config();
  cfg.networks[1].id = 5;
  expect_rejected(cfg, "ids must be 0..k-1");
}

TEST(Validate, UnknownPolicyName) {
  auto cfg = small_config();
  cfg.devices[1].policy_name = "skynet";
  expect_rejected(cfg, "unknown policy 'skynet'");
}

TEST(Validate, MoveToUncoveredArea) {
  auto cfg = small_config();
  // Restrict coverage so area 7 is genuinely nonexistent.
  cfg.networks[0].areas = {0};
  cfg.networks[1].areas = {0, 1};
  cfg.scenario.move(3, /*device=*/2, /*new_area=*/7);
  expect_rejected(cfg, "area 7, which no network covers");
}

TEST(Validate, MoveOfUnknownDevice) {
  auto cfg = small_config();
  cfg.scenario.move(3, /*device=*/99, /*new_area=*/0);
  expect_rejected(cfg, "unknown device id 99");
}

TEST(Validate, InitialAreaWithoutCoverage) {
  auto cfg = small_config();
  cfg.networks[0].areas = {0};
  cfg.networks[1].areas = {0};
  cfg.devices[2].area = 4;
  expect_rejected(cfg, "starts in area 4");
}

TEST(Validate, CapacityChangeTargets) {
  auto cfg = small_config();
  cfg.scenario.set_capacity(2, /*network=*/9, 5.0);
  expect_rejected(cfg, "unknown network id 9");
  cfg = small_config();
  cfg.scenario.set_capacity(2, /*network=*/0, -5.0);
  expect_rejected(cfg, "negative capacity");
}

TEST(Validate, UnrelatedErrorsDoNotSuppressEventChecks) {
  // A bad horizon must not hide the bogus capacity-change target: the user
  // should see every problem in one pass.
  auto cfg = small_config();
  cfg.world.horizon = 0;
  cfg.scenario.set_capacity(2, /*network=*/99, 5.0);
  const auto errors = cfg.validate();
  bool horizon = false;
  bool network = false;
  for (const auto& e : errors) {
    horizon |= e.find("horizon") != std::string::npos;
    network |= e.find("unknown network id 99") != std::string::npos;
  }
  EXPECT_TRUE(horizon);
  EXPECT_TRUE(network);
}

TEST(Validate, WorldParameters) {
  auto cfg = small_config();
  cfg.world.horizon = 0;
  expect_rejected(cfg, "horizon must be positive");
  cfg = small_config();
  cfg.world.slot_seconds = -1.0;
  expect_rejected(cfg, "slot_seconds must be positive");
  cfg = small_config();
  cfg.world.threads = -2;
  expect_rejected(cfg, "threads must be >= 0");
}

TEST(Validate, ModelParameters) {
  auto cfg = small_config();
  cfg.noisy.dip_probability = 1.5;
  expect_rejected(cfg, "[0, 1]");
  cfg = small_config();
  cfg.delay = DelayKind::kFixed;
  cfg.fixed_delay_wifi_s = -0.5;
  expect_rejected(cfg, "fixed switching delays");
}

TEST(Validate, RecorderGroups) {
  auto cfg = small_config();
  cfg.recorder.groups = {{1, 2}, {42}};
  expect_rejected(cfg, "recorder.groups[1]");
  cfg = small_config();
  cfg.recorder.epsilon = -1.0;
  expect_rejected(cfg, "epsilon");
}

TEST(Validate, BuildWorldRefusesUnsoundConfigs) {
  auto cfg = small_config();
  cfg.devices[1].id = cfg.devices[0].id;
  EXPECT_THROW(build_world(cfg, 1), std::invalid_argument);
  EXPECT_THROW(run_once(cfg, 1), std::invalid_argument);
  EXPECT_THROW(run_many(cfg, 2), std::invalid_argument);
  // The thrown message aggregates every problem, prefixed by the config name.
  cfg.networks[0].base_capacity_mbps = -1.0;
  try {
    build_world(cfg, 1);
    FAIL();
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("validate-fixture"), std::string::npos);
    EXPECT_NE(what.find("duplicate device id"), std::string::npos);
    EXPECT_NE(what.find("negative capacity"), std::string::npos);
  }
}

TEST(Validate, EveryRegistrySettingIsSound) {
  for (const auto& info : setting_catalog()) {
    EXPECT_TRUE(make_setting(info.name).validate().empty()) << info.name;
  }
}

}  // namespace
}  // namespace smartexp3::exp
