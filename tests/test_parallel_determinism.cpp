// Device-parallel stepping determinism.
//
// The StepExecutor must be invisible to the simulated model: for every
// policy and every thread count, the parallel trajectory — per-slot network
// choices, downloads, switch counts, delay losses — must be bit-identical
// to the serial one. This holds by construction (per-device RNG streams,
// fixed-order reductions, device-local phase bodies) and is pinned here on
// the golden scenario (restricted visibility, moves, a capacity change) and
// on a dynamic join/leave scenario.
//
// Thread counts deliberately include more lanes than the machine has cores
// and a count (7) that does not divide the device count evenly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "golden_scenario.hpp"

namespace smartexp3 {
namespace {

/// Records the full per-slot choice trajectory and per-device end state.
struct TrajectoryProbe final : netsim::WorldObserver {
  std::vector<std::vector<NetworkId>> choices;  // [slot][device], kNoNetwork = inactive
  void on_slot_end(Slot, const netsim::World& world) override {
    choices.emplace_back();
    const auto& pool = world.devices();
    choices.back().reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      choices.back().push_back(pool.active[i] ? pool.current[i] : kNoNetwork);
    }
  }
};

struct Trajectory {
  std::vector<std::vector<NetworkId>> choices;
  std::vector<double> downloads_mb;
  std::vector<double> delay_loss_mb;
  std::vector<int> switches;
};

Trajectory run_trajectory(exp::ExperimentConfig cfg, int threads) {
  cfg.world.threads = threads;
  auto world = exp::build_world(cfg, cfg.base_seed);
  TrajectoryProbe probe;
  world->set_observer(&probe);
  world->run();
  Trajectory out;
  out.choices = std::move(probe.choices);
  const auto& pool = world->devices();
  out.downloads_mb = pool.download_mb;
  out.delay_loss_mb = pool.delay_loss_mb;
  out.switches = pool.switches;
  return out;
}

void expect_identical(const Trajectory& serial, const Trajectory& parallel) {
  ASSERT_EQ(serial.choices.size(), parallel.choices.size());
  for (std::size_t t = 0; t < serial.choices.size(); ++t) {
    ASSERT_EQ(serial.choices[t], parallel.choices[t]) << "slot " << t;
  }
  ASSERT_EQ(serial.downloads_mb.size(), parallel.downloads_mb.size());
  for (std::size_t i = 0; i < serial.downloads_mb.size(); ++i) {
    SCOPED_TRACE("device " + std::to_string(i));
    // Bit-identical, not just close: EXPECT_EQ on doubles is deliberate.
    EXPECT_EQ(serial.downloads_mb[i], parallel.downloads_mb[i]);
    EXPECT_EQ(serial.delay_loss_mb[i], parallel.delay_loss_mb[i]);
    EXPECT_EQ(serial.switches[i], parallel.switches[i]);
  }
}

/// A compact dynamic scenario: 12 devices on 3 fully visible networks;
/// devices 8..11 join at slot 60, devices 4..7 leave at slot 180.
exp::ExperimentConfig dynamic_join_leave_config(const std::string& policy) {
  using namespace smartexp3::netsim;
  exp::ExperimentConfig cfg;
  cfg.name = "parallel-determinism-dynamic";
  cfg.world.horizon = 240;
  cfg.base_seed = 8899;
  cfg.networks.push_back(make_cellular(0, 11.0));
  cfg.networks.push_back(make_wifi(1, 22.0));
  cfg.networks.push_back(make_wifi(2, 7.0));
  for (int i = 0; i < 12; ++i) {
    DeviceSpec d;
    d.id = i;
    d.policy_name = policy;
    if (i >= 8) d.join_slot = 60;
    if (i >= 4 && i < 8) d.leave_slot = 180;
    cfg.devices.push_back(d);
  }
  return cfg;
}

std::vector<std::string> all_policies() {
  auto names = core::policy_names();
  for (const auto& n : core::extension_policy_names()) names.push_back(n);
  return names;
}

TEST(ParallelDeterminism, GoldenScenarioBitIdenticalAtAllThreadCounts) {
  // The golden scenario's mixed-policy device set already covers every
  // factory policy except centralized (whose coordinator ignores the
  // scenario's service areas).
  const auto cfg = testing::golden_config();
  const auto serial = run_trajectory(cfg, /*threads=*/1);
  for (const int threads : {2, 4, 7}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    expect_identical(serial, run_trajectory(cfg, threads));
  }
}

TEST(ParallelDeterminism, PerPolicyGoldenScenarioBitIdentical) {
  // Homogeneous worlds: all ten golden-scenario devices running the same
  // policy, per policy, on the full golden event script.
  for (const auto& policy : all_policies()) {
    if (policy == "centralized") continue;  // restricted visibility unsupported
    SCOPED_TRACE("policy " + policy);
    auto cfg = testing::golden_config();
    cfg.with_policy(policy);
    const auto serial = run_trajectory(cfg, 1);
    for (const int threads : {2, 4, 7}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(serial, run_trajectory(cfg, threads));
    }
  }
}

TEST(ParallelDeterminism, PerPolicyDynamicJoinLeaveBitIdentical) {
  // Full visibility, so the centralized baseline participates too: its
  // shared coordinator makes the world decline to fan out (thread_count()
  // stays 1), and the knob must still change nothing.
  for (const auto& policy : all_policies()) {
    SCOPED_TRACE("policy " + policy);
    const auto cfg = dynamic_join_leave_config(policy);
    const auto serial = run_trajectory(cfg, 1);
    for (const int threads : {2, 4, 7}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(serial, run_trajectory(cfg, threads));
    }
  }
}

TEST(ParallelDeterminism, NoisyShareWorldBitIdenticalAtAllThreadCounts) {
  // Non-device-invariant bandwidth model: NoisyShareModel's lazy per-device
  // multipliers and per-network noise are materialised at prepare_slot()
  // while execution is still serial, so the feedback phase may fan out for
  // it too (the last parallel-feedback carve-out). Join/leave dynamics make
  // the materialisation order matter: a late-joining device must draw the
  // same multiplier the serial path's first-touch order would give it.
  // full_information matters here: its counterfactual fair_share branch
  // under a non-invariant model runs on worker threads for the first time.
  for (const std::string policy : {"smart_exp3", "exp3", "full_information"}) {
    SCOPED_TRACE("policy " + policy);
    auto cfg = dynamic_join_leave_config(policy);
    cfg.share = exp::ShareKind::kNoisy;
    const auto serial = run_trajectory(cfg, /*threads=*/1);
    for (const int threads : {2, 4, 7}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(serial, run_trajectory(cfg, threads));
    }
  }
}

TEST(ParallelDeterminism, NoisyShareFeedbackActuallyFansOut) {
  // The feedback phase must engage the executor lanes for a noisy-share
  // world (it used to decline parallel feedback for all non-device-
  // invariant models).
  auto cfg = dynamic_join_leave_config("exp3");
  cfg.share = exp::ShareKind::kNoisy;
  cfg.world.threads = 4;
  auto world = exp::build_world(cfg, cfg.base_seed);
  EXPECT_EQ(world->thread_count(), 4);
  EXPECT_TRUE(world->feedback_parallel());
}

/// Minimal policy that throws from observe() at a given slot — stands in for
/// any failure inside a parallel phase body (bad_alloc, invariant check).
class ThrowingPolicy final : public core::Policy {
 public:
  explicit ThrowingPolicy(Slot throw_at) : throw_at_(throw_at) {}
  void set_networks(const std::vector<NetworkId>& available) override {
    nets_ = available;
  }
  NetworkId choose(Slot) override { return nets_.front(); }
  void observe(Slot t, const core::SlotFeedback&) override {
    if (t >= throw_at_) throw std::runtime_error("policy failure");
  }
  void probabilities_into(std::vector<double>& out) const override {
    out.assign(nets_.size(), 1.0 / static_cast<double>(nets_.size()));
  }
  const std::vector<NetworkId>& networks() const override { return nets_; }
  std::string name() const override { return "throwing"; }

 private:
  Slot throw_at_;
  std::vector<NetworkId> nets_;
};

TEST(ParallelDeterminism, WorkerExceptionPropagatesToCaller) {
  // A phase body throwing on a worker lane must surface as an ordinary
  // exception on the stepping thread, never std::terminate.
  using namespace smartexp3::netsim;
  WorldConfig wc;
  wc.horizon = 20;
  wc.threads = 4;
  std::vector<DeviceSpec> specs(8);
  for (int i = 0; i < 8; ++i) specs[i].id = i;
  PolicyFactory factory = [](const DeviceSpec&,
                             std::uint64_t) -> std::unique_ptr<core::Policy> {
    return std::make_unique<ThrowingPolicy>(/*throw_at=*/10);
  };
  World world(wc, {make_wifi(0, 10.0), make_wifi(1, 5.0)}, std::move(specs), {},
              std::move(factory), 1);
  ASSERT_EQ(world.thread_count(), 4);
  EXPECT_THROW(world.run(), std::runtime_error);
}

TEST(ParallelDeterminism, SharedStatePoliciesForceSerialExecution) {
  const auto cfg = dynamic_join_leave_config("centralized");
  auto cfg_parallel = cfg;
  cfg_parallel.world.threads = 4;
  auto world = exp::build_world(cfg_parallel, cfg.base_seed);
  EXPECT_EQ(world->thread_count(), 1);

  auto cfg_exp3 = dynamic_join_leave_config("exp3");
  cfg_exp3.world.threads = 4;
  auto parallel_world = exp::build_world(cfg_exp3, cfg_exp3.base_seed);
  EXPECT_EQ(parallel_world->thread_count(), 4);
}

}  // namespace
}  // namespace smartexp3
