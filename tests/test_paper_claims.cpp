// Regression tests that pin the paper's headline *quantitative* claims, so
// a future change that silently degrades the reproduction fails CI. Each
// test uses enough runs for the statistic to be stable, with generous
// margins around the paper's value.
#include <gtest/gtest.h>

#include "exp/aggregate.hpp"
#include "exp/runner.hpp"
#include "exp/settings.hpp"
#include "stats/summary.hpp"

namespace smartexp3::exp {
namespace {

constexpr int kRuns = 15;

TEST(PaperClaims, Exp3SwitchesRoughly640TimesInSetting1) {
  const auto runs = run_many(static_setting1("exp3"), kRuns);
  const double mean = switch_summary(runs).mean;
  EXPECT_GT(mean, 560.0);
  EXPECT_LT(mean, 720.0);  // paper: 641
}

TEST(PaperClaims, BlockingCutsSwitchingByAtLeast85Percent) {
  const double exp3 = switch_summary(run_many(static_setting1("exp3"), kRuns)).mean;
  const double block =
      switch_summary(run_many(static_setting1("block_exp3"), kRuns)).mean;
  EXPECT_LT(block, 0.15 * exp3);  // paper: 47 / 641 = 7 %
}

TEST(PaperClaims, SmartExp3SwitchesRoughly65TimesInSetting1) {
  const auto runs = run_many(static_setting1("smart_exp3"), kRuns);
  const double mean = switch_summary(runs).mean;
  EXPECT_GT(mean, 45.0);
  EXPECT_LT(mean, 90.0);  // paper: 65
}

TEST(PaperClaims, SmartExp3SpendsMajorityOfTimeNearEquilibrium) {
  // Paper: 62.77 % (s1) / 74.30 % (s2) of slots at NE.
  const auto s1 = run_many(static_setting1("smart_exp3"), kRuns);
  const auto s2 = run_many(static_setting2("smart_exp3"), kRuns);
  EXPECT_GT(mean_at_nash_fraction(s1), 0.45);
  EXPECT_GT(mean_at_nash_fraction(s2), 0.55);
  EXPECT_GT(mean_at_nash_fraction(s2), mean_at_nash_fraction(s1) - 0.05);
}

TEST(PaperClaims, GreedyStrandsRoughly8GBInSetting1) {
  const auto runs = run_many(static_setting1("greedy"), kRuns);
  const double gb = mean_unused_mb(runs) / 1024.0;
  EXPECT_GT(gb, 5.0);
  EXPECT_LT(gb, 10.0);  // paper: ~8 GB of 74.25 GB
}

TEST(PaperClaims, GreedyStrandsNothingInSetting2) {
  // Uniform rates: no "unusable" network, so greedy utilizes everything.
  const auto runs = run_many(static_setting2("greedy"), kRuns);
  EXPECT_LT(mean_unused_mb(runs) / 1024.0, 1.0);
}

TEST(PaperClaims, BlockPoliciesMatchCentralizedDownloadWithin5Percent) {
  const double central =
      mean_of_run_median_download_mb(run_many(static_setting1("centralized"), kRuns));
  const double smart =
      mean_of_run_median_download_mb(run_many(static_setting1("smart_exp3"), kRuns));
  EXPECT_GT(smart, 0.95 * central);  // paper: 3.53 vs 3.54 GB
}

TEST(PaperClaims, SmartExp3ResetsAFewTimesPerRun) {
  // Paper: median of 2 resets in 5 simulated hours (static settings).
  const auto runs = run_many(static_setting1("smart_exp3"), kRuns);
  const double resets = mean_resets_per_device(runs);
  EXPECT_GT(resets, 1.0);
  EXPECT_LT(resets, 6.0);
}

TEST(PaperClaims, Setting2IsEasierThanSetting1ToStabilize) {
  // Three equivalent equilibria beat one: Table IV shows setting 2 faster
  // for every blocking variant.
  for (const auto* algo : {"block_exp3", "hybrid_block_exp3", "smart_exp3_noreset"}) {
    auto cfg1 = static_setting1(algo);
    cfg1.recorder.track_stability = true;
    auto cfg2 = static_setting2(algo);
    cfg2.recorder.track_stability = true;
    const auto s1 = stability_summary(run_many(cfg1, kRuns));
    const auto s2 = stability_summary(run_many(cfg2, kRuns));
    if (s1.median_stable_slot > 0 && s2.median_stable_slot > 0) {
      EXPECT_LT(s2.median_stable_slot, s1.median_stable_slot) << algo;
    }
  }
}

TEST(PaperClaims, FullInformationIsFairestDespitePoorDownload) {
  // Fig 5 + Table V: Full Information has the lowest download spread but
  // mediocre cumulative download (constant switching).
  const auto full = run_many(static_setting1("full_information"), kRuns);
  const auto greedy = run_many(static_setting1("greedy"), kRuns);
  EXPECT_LT(mean_of_run_download_stddev_mb(full),
            0.5 * mean_of_run_download_stddev_mb(greedy));
  const auto smart = run_many(static_setting1("smart_exp3"), kRuns);
  EXPECT_LT(mean_of_run_median_download_mb(full),
            mean_of_run_median_download_mb(smart));
}

TEST(PaperClaims, MoversSwitchMoreThanStationaryDevices) {
  // Fig 10: the 8 moving devices switch networks more than the stationary
  // ones (paper: 102 vs 68), because every area change forces re-exploration
  // of a new network set. (In our simulator that shows up as extra switches
  // from the forced exploration rather than as a higher *reset* count —
  // stationary devices also reset when the movers churn their area.)
  const auto runs = run_many(mobility_setting("smart_exp3"), kRuns);
  std::vector<double> mover_switches;
  std::vector<double> stationary_switches;
  for (const auto& run : runs) {
    for (std::size_t i = 0; i < run.switches.size(); ++i) {
      (i < 8 ? mover_switches : stationary_switches)
          .push_back(static_cast<double>(run.switches[i]));
    }
  }
  EXPECT_GT(stats::mean(mover_switches), 1.15 * stats::mean(stationary_switches));
}

TEST(PaperClaims, EpsilonEquilibriumSharedAcrossBlockFamily) {
  // Fig 4a's shaded band: all Smart-family variants end inside the eps
  // band in setting 1; EXP3 does not.
  for (const auto* algo : {"hybrid_block_exp3", "smart_exp3_noreset", "smart_exp3"}) {
    const auto runs = run_many(static_setting1(algo), kRuns);
    const auto series = mean_distance_series(runs);
    double tail = 0.0;
    for (std::size_t i = series.size() - 50; i < series.size(); ++i) tail += series[i];
    EXPECT_LT(tail / 50.0, 30.0) << algo;
  }
  const auto exp3 = run_many(static_setting1("exp3"), kRuns);
  const auto series = mean_distance_series(exp3);
  double tail = 0.0;
  for (std::size_t i = series.size() - 50; i < series.size(); ++i) tail += series[i];
  EXPECT_GT(tail / 50.0, 40.0);
}

}  // namespace
}  // namespace smartexp3::exp
