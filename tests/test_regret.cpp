#include "metrics/regret.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smartexp3::metrics {
namespace {

TEST(Theorem2Bound, MatchesClosedForm) {
  // 3k log(T+1) / log(1+beta) with k=3, beta=0.1, T=1200.
  const double expected = 3.0 * 3.0 * std::log(1201.0) / std::log(1.1);
  EXPECT_NEAR(theorem2_switch_bound(3, 0.1, 1200), expected, 1e-9);
}

TEST(Theorem2Bound, GeneralFormReducesToSimple) {
  EXPECT_NEAR(theorem2_switch_bound(3, 0.1, 1200),
              theorem2_switch_bound(3, 0.1, 1200, 1200.0, 1.0), 1e-9);
}

TEST(Theorem2Bound, MonotonicityTrends) {
  // More networks => larger bound; larger beta => smaller bound; longer T
  // => larger bound (logarithmically).
  EXPECT_LT(theorem2_switch_bound(3, 0.1, 1200), theorem2_switch_bound(5, 0.1, 1200));
  EXPECT_GT(theorem2_switch_bound(3, 0.1, 1200), theorem2_switch_bound(3, 0.5, 1200));
  EXPECT_LT(theorem2_switch_bound(3, 0.1, 600), theorem2_switch_bound(3, 0.1, 2400));
  // Logarithmic growth: quadrupling T far less than quadruples the bound.
  EXPECT_LT(theorem2_switch_bound(3, 0.1, 2400),
            2.0 * theorem2_switch_bound(3, 0.1, 600));
}

TEST(Theorem2Bound, ShorterResetPeriodsRaiseTheBound) {
  // T/tau periods of 3k log(tau/td + 1): more periods, more switches.
  EXPECT_GT(theorem2_switch_bound(3, 0.1, 1200, 300.0, 1.0),
            theorem2_switch_bound(3, 0.1, 1200, 1200.0, 1.0));
}

TEST(Theorem2Bound, RejectsInvalidParameters) {
  EXPECT_THROW(theorem2_switch_bound(0, 0.1, 100), std::invalid_argument);
  EXPECT_THROW(theorem2_switch_bound(3, 0.0, 100), std::invalid_argument);
  EXPECT_THROW(theorem2_switch_bound(3, 0.1, 0), std::invalid_argument);
}

TEST(Theorem3Bound, ComponentsBehave) {
  const double base = theorem3_regret_bound(100.0, 3, 0.5, 0.1, 4, 0.3, 0.5, 1200);
  // Larger best-arm gain => larger bound (first term scales with Gmax).
  EXPECT_LT(base, theorem3_regret_bound(200.0, 3, 0.5, 0.1, 4, 0.3, 0.5, 1200));
  // Longer blocks => larger bound.
  EXPECT_LT(base, theorem3_regret_bound(100.0, 3, 0.5, 0.1, 40, 0.3, 0.5, 1200));
  // Higher mean delay => larger bound (switching term).
  EXPECT_LT(base, theorem3_regret_bound(100.0, 3, 0.5, 0.1, 4, 0.9, 0.5, 1200));
}

TEST(Theorem3Bound, GammaTradeoff) {
  // Tiny gamma blows up the k ln k / gamma term.
  EXPECT_GT(theorem3_regret_bound(100.0, 3, 0.01, 0.1, 4, 0.3, 0.5, 1200),
            theorem3_regret_bound(100.0, 3, 0.5, 0.1, 4, 0.3, 0.5, 1200));
  EXPECT_THROW(theorem3_regret_bound(100.0, 3, 0.0, 0.1, 4, 0.3, 0.5, 1200),
               std::invalid_argument);
  EXPECT_THROW(theorem3_regret_bound(100.0, 3, 1.5, 0.1, 4, 0.3, 0.5, 1200),
               std::invalid_argument);
}

TEST(LongestConstantRun, Basics) {
  EXPECT_EQ(longest_constant_run({}), 0);
  EXPECT_EQ(longest_constant_run({5}), 1);
  EXPECT_EQ(longest_constant_run({1, 1, 1}), 3);
  EXPECT_EQ(longest_constant_run({1, 2, 2, 3, 3, 3, 1}), 3);
  EXPECT_EQ(longest_constant_run({1, 2, 1, 2}), 1);
}

TEST(MeasureWeakRegret, BestArmIdentified) {
  const std::vector<std::vector<double>> gains = {{0.2, 0.2, 0.2}, {0.9, 0.9, 0.9}};
  const auto wr = measure_weak_regret(gains, {0, 0, 0}, 0.0);
  EXPECT_EQ(wr.best_arm, 1);
  EXPECT_NEAR(wr.g_max, 2.7, 1e-12);
  EXPECT_NEAR(wr.g_alg, 0.6, 1e-12);
  EXPECT_NEAR(wr.regret, 2.1, 1e-12);
}

TEST(MeasureWeakRegret, ZeroWhenPlayingTheBestArm) {
  const std::vector<std::vector<double>> gains = {{0.2, 0.2}, {0.9, 0.9}};
  const auto wr = measure_weak_regret(gains, {1, 1}, 0.0);
  EXPECT_NEAR(wr.regret, 0.0, 1e-12);
  EXPECT_EQ(wr.switches, 0);
}

TEST(MeasureWeakRegret, CanBeNegativeAgainstNonstationaryArms) {
  // Tracking the momentary best beats any fixed arm.
  const std::vector<std::vector<double>> gains = {{0.9, 0.1}, {0.1, 0.9}};
  const auto wr = measure_weak_regret(gains, {0, 1}, 0.0);
  EXPECT_LT(wr.regret, 0.0);
  EXPECT_EQ(wr.switches, 1);
}

TEST(MeasureWeakRegret, DelayLossAddsToRegret) {
  const std::vector<std::vector<double>> gains = {{0.5, 0.5}};
  const auto without = measure_weak_regret(gains, {0, 0}, 0.0);
  const auto with = measure_weak_regret(gains, {0, 0}, 0.25);
  EXPECT_NEAR(with.regret - without.regret, 0.25, 1e-12);
}

TEST(MeasureWeakRegret, SkipsDisconnectedSlots) {
  const std::vector<std::vector<double>> gains = {{0.5, 0.5, 0.5}};
  const auto wr = measure_weak_regret(gains, {-1, 0, 0}, 0.0);
  EXPECT_NEAR(wr.g_alg, 1.0, 1e-12);
  EXPECT_EQ(wr.switches, 0);
}

TEST(MeasureWeakRegret, LongestBlockReported) {
  const std::vector<std::vector<double>> gains = {{0.5, 0.5, 0.5, 0.5}, {0.5, 0.5, 0.5, 0.5}};
  const auto wr = measure_weak_regret(gains, {0, 1, 1, 1}, 0.0);
  EXPECT_EQ(wr.longest_block, 3);
}

}  // namespace
}  // namespace smartexp3::metrics
