#include "metrics/stability.hpp"

#include <gtest/gtest.h>

namespace smartexp3::metrics {
namespace {

TEST(LockedNetwork, ThresholdRespected) {
  EXPECT_EQ(locked_network({0.8, 0.1, 0.1}, {5, 6, 7}), 5);
  EXPECT_EQ(locked_network({0.5, 0.4, 0.1}, {5, 6, 7}), -1);
  EXPECT_EQ(locked_network({0.0, 0.76, 0.24}, {5, 6, 7}), 6);
}

TEST(LockedNetwork, EmptyIsUnlocked) {
  EXPECT_EQ(locked_network({}, {}), -1);
}

TEST(LockedNetwork, CustomThreshold) {
  EXPECT_EQ(locked_network({0.6, 0.4}, {1, 2}, 0.5), 1);
}

TEST(DetectStableState, SimpleStableRun) {
  // Two devices, both locked on their networks from slot 2.
  const std::vector<std::vector<int>> locked = {
      {-1, -1, 0, 0, 0},
      {1, 1, 1, 1, 1},
  };
  const auto r = detect_stable_state(locked, {10.0, 10.0});
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.stable_slot, 2);
  EXPECT_TRUE(r.at_nash);  // (1,1) over equal networks is NE
}

TEST(DetectStableState, UnstableWhenAnyDeviceUnlockedAtEnd) {
  const std::vector<std::vector<int>> locked = {
      {0, 0, 0, 0, 0},
      {1, 1, 1, 1, -1},
  };
  const auto r = detect_stable_state(locked, {10.0, 10.0});
  EXPECT_FALSE(r.stable);
  EXPECT_EQ(r.stable_slot, -1);
}

TEST(DetectStableState, LateFlipMovesStableSlot) {
  const std::vector<std::vector<int>> locked = {
      {0, 0, 1, 1, 1},  // flips at slot 2
      {1, 1, 1, 0, 0},  // flips at slot 3
  };
  const auto r = detect_stable_state(locked, {10.0, 10.0});
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.stable_slot, 3);
}

TEST(DetectStableState, StableAtNonNashState) {
  // Both devices locked on network 0 while network 1 (equal capacity) is
  // empty: stable but not an equilibrium.
  const std::vector<std::vector<int>> locked = {
      {0, 0, 0},
      {0, 0, 0},
  };
  const auto r = detect_stable_state(locked, {10.0, 10.0});
  EXPECT_TRUE(r.stable);
  EXPECT_FALSE(r.at_nash);
}

TEST(DetectStableState, Setting1Equilibrium) {
  // 20 devices locked in the (2,4,14) split of setting 1.
  std::vector<std::vector<int>> locked;
  for (int i = 0; i < 2; ++i) locked.push_back(std::vector<int>(10, 0));
  for (int i = 0; i < 4; ++i) locked.push_back(std::vector<int>(10, 1));
  for (int i = 0; i < 14; ++i) locked.push_back(std::vector<int>(10, 2));
  const auto r = detect_stable_state(locked, {4.0, 7.0, 22.0});
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.stable_slot, 0);
  EXPECT_TRUE(r.at_nash);
}

TEST(DetectStableState, EmptyInputsNotStable) {
  EXPECT_FALSE(detect_stable_state({}, {1.0}).stable);
  EXPECT_FALSE(detect_stable_state({{}}, {1.0}).stable);
}

TEST(DetectStableState, WholeRunLockedButChangedNetworkCountsFromFlip) {
  // Device locked throughout but on different networks early vs late: the
  // stable point is the *last* change.
  const std::vector<std::vector<int>> locked = {
      {0, 0, 0, 1, 1, 1, 1, 1, 1, 1},
  };
  const auto r = detect_stable_state(locked, {5.0, 5.0});
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.stable_slot, 3);
}

}  // namespace
}  // namespace smartexp3::metrics
