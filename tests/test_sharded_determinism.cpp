// Shard-count independence.
//
// Sharding partitions the device pool into contiguous ranges that step
// independently and synchronize only per-network occupancy sums at the
// counts barrier. Because every device's RNG streams are keyed by
// (seed, device id) and the occupancy exchange adds shard-local integer
// counts in fixed shard order, the shard count is a pure execution knob:
// for every (shard count x thread count) the trajectory must be
// bit-identical to the unsharded serial engine. This file pins that on the
// golden scenario (restricted visibility, moves, a capacity change), on a
// dynamic join/leave scenario, and on the snapshot byte stream (devices are
// serialized in global index order, so the words must not depend on the
// shard layout either — a checkpoint taken at one shard count restores at
// any other).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "exp/runner.hpp"
#include "golden_scenario.hpp"
#include "netsim/world.hpp"

namespace smartexp3 {
namespace {

struct Trajectory {
  std::vector<std::vector<NetworkId>> choices;  // [slot][device]
  std::vector<double> downloads_mb;
  std::vector<double> delay_loss_mb;
  std::vector<int> switches;
};

struct TrajectoryProbe final : netsim::WorldObserver {
  std::vector<std::vector<NetworkId>> choices;
  void on_slot_end(Slot, const netsim::World& world) override {
    choices.emplace_back();
    const auto& pool = world.devices();
    choices.back().reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      choices.back().push_back(pool.active[i] ? pool.current[i] : kNoNetwork);
    }
  }
};

Trajectory run_trajectory(exp::ExperimentConfig cfg, int shards, int threads) {
  cfg.world.shards = shards;
  cfg.world.threads = threads;
  auto world = exp::build_world(cfg, cfg.base_seed);
  TrajectoryProbe probe;
  world->set_observer(&probe);
  world->run();
  Trajectory out;
  out.choices = std::move(probe.choices);
  const auto& pool = world->devices();
  out.downloads_mb = pool.download_mb;
  out.delay_loss_mb = pool.delay_loss_mb;
  out.switches = pool.switches;
  return out;
}

void expect_identical(const Trajectory& reference, const Trajectory& other) {
  ASSERT_EQ(reference.choices.size(), other.choices.size());
  for (std::size_t t = 0; t < reference.choices.size(); ++t) {
    ASSERT_EQ(reference.choices[t], other.choices[t]) << "slot " << t;
  }
  ASSERT_EQ(reference.downloads_mb.size(), other.downloads_mb.size());
  for (std::size_t i = 0; i < reference.downloads_mb.size(); ++i) {
    SCOPED_TRACE("device " + std::to_string(i));
    // Bit-identical, not just close: EXPECT_EQ on doubles is deliberate.
    EXPECT_EQ(reference.downloads_mb[i], other.downloads_mb[i]);
    EXPECT_EQ(reference.delay_loss_mb[i], other.delay_loss_mb[i]);
    EXPECT_EQ(reference.switches[i], other.switches[i]);
  }
}

/// 12 devices on 3 fully visible networks; devices 8..11 join at slot 60,
/// devices 4..7 leave at slot 180 — joins and leaves land inside different
/// shards once the pool is split.
exp::ExperimentConfig dynamic_join_leave_config(const std::string& policy) {
  using namespace smartexp3::netsim;
  exp::ExperimentConfig cfg;
  cfg.name = "sharded-determinism-dynamic";
  cfg.world.horizon = 240;
  cfg.base_seed = 8899;
  cfg.networks.push_back(make_cellular(0, 11.0));
  cfg.networks.push_back(make_wifi(1, 22.0));
  cfg.networks.push_back(make_wifi(2, 7.0));
  for (int i = 0; i < 12; ++i) {
    DeviceSpec d;
    d.id = i;
    d.policy_name = policy;
    if (i >= 8) d.join_slot = 60;
    if (i >= 4 && i < 8) d.leave_slot = 180;
    cfg.devices.push_back(d);
  }
  return cfg;
}

TEST(ShardedDeterminism, GoldenScenarioBitIdenticalAtEveryShardByThreadCount) {
  const auto cfg = testing::golden_config();
  const auto reference = run_trajectory(cfg, /*shards=*/1, /*threads=*/1);
  for (const int shards : {1, 2, 4}) {
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE("shards " + std::to_string(shards) + " threads " +
                   std::to_string(threads));
      expect_identical(reference, run_trajectory(cfg, shards, threads));
    }
  }
}

TEST(ShardedDeterminism, DynamicJoinLeaveBitIdenticalAtEveryShardByThreadCount) {
  for (const std::string policy : {"smart_exp3", "exp3", "greedy"}) {
    SCOPED_TRACE("policy " + policy);
    const auto cfg = dynamic_join_leave_config(policy);
    const auto reference = run_trajectory(cfg, 1, 1);
    for (const int shards : {2, 4}) {
      for (const int threads : {1, 2, 4}) {
        SCOPED_TRACE("shards " + std::to_string(shards) + " threads " +
                     std::to_string(threads));
        expect_identical(reference, run_trajectory(cfg, shards, threads));
      }
    }
  }
}

TEST(ShardedDeterminism, NoisyShareBitIdenticalAcrossShards) {
  // Non-device-invariant bandwidth model: the per-device noise multipliers
  // are materialised in serial first-touch order regardless of sharding.
  auto cfg = dynamic_join_leave_config("smart_exp3");
  cfg.share = exp::ShareKind::kNoisy;
  const auto reference = run_trajectory(cfg, 1, 1);
  for (const int shards : {2, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    expect_identical(reference, run_trajectory(cfg, shards, /*threads=*/2));
  }
}

TEST(ShardedDeterminism, ShardResolutionClampsAndAutosizes) {
  // Explicit counts clamp to [1, devices]; 0 = auto sizes one shard per
  // ~16k devices so paper-scale worlds keep the single-shard fast path.
  EXPECT_EQ(netsim::World::resolve_shards(0, 10), 1);
  EXPECT_EQ(netsim::World::resolve_shards(0, 16384), 1);
  EXPECT_EQ(netsim::World::resolve_shards(0, 16385), 2);
  EXPECT_EQ(netsim::World::resolve_shards(0, 100000), 7);
  EXPECT_EQ(netsim::World::resolve_shards(4, 100000), 4);
  EXPECT_EQ(netsim::World::resolve_shards(64, 10), 10);  // never exceed devices
  EXPECT_EQ(netsim::World::resolve_shards(-3, 10), 1);   // negatives act as auto
  const auto cfg = testing::golden_config();
  auto cfg4 = cfg;
  cfg4.world.shards = 4;
  auto world = exp::build_world(cfg4, cfg.base_seed);
  EXPECT_EQ(world->shard_count(), 4);
}

// --- snapshots across shard counts ---------------------------------------

std::vector<std::uint64_t> words_at_cut(const exp::ExperimentConfig& base,
                                        int shards, Slot cut) {
  auto cfg = base;
  cfg.world.shards = shards;
  auto world = exp::build_world(cfg, cfg.base_seed);
  while (world->now() < cut) world->step();
  std::vector<std::uint64_t> words;
  core::StateWriter w(words);
  world->snapshot_into(w);
  return words;
}

TEST(ShardedDeterminism, SnapshotStreamIsShardCountIndependent) {
  // Devices are serialized in global index order, never shard order: the
  // snapshot taken at any shard count is the same byte stream.
  const auto cfg = testing::golden_config();
  const auto reference = words_at_cut(cfg, 1, 77);
  for (const int shards : {2, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    EXPECT_EQ(reference, words_at_cut(cfg, shards, 77));
  }
}

TEST(ShardedDeterminism, SnapshotRestoresAcrossDifferentShardCounts) {
  // Snapshot at 2 shards, restore into a 4-shard world (and vice versa),
  // finish, and demand the uninterrupted single-shard end state.
  const auto base = testing::golden_config();
  auto uninterrupted = exp::build_world(base, base.base_seed);
  uninterrupted->run();

  for (const auto [from, to] : {std::pair{2, 4}, std::pair{4, 2}, std::pair{2, 1}}) {
    SCOPED_TRACE("shards " + std::to_string(from) + " -> " + std::to_string(to));
    const auto words = words_at_cut(base, from, 99);

    auto cfg = base;
    cfg.world.shards = to;
    auto resumed = exp::build_world(cfg, cfg.base_seed);
    core::StateReader r(words);
    resumed->restore_from(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(resumed->now(), 99);
    while (!resumed->done()) resumed->step();

    const auto& da = uninterrupted->devices();
    const auto& db = resumed->devices();
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      SCOPED_TRACE("device " + std::to_string(i));
      EXPECT_EQ(da.active[i], db.active[i]);
      EXPECT_EQ(da.current[i], db.current[i]);
      EXPECT_EQ(da.download_mb[i], db.download_mb[i]);
      EXPECT_EQ(da.delay_loss_mb[i], db.delay_loss_mb[i]);
      EXPECT_EQ(da.switches[i], db.switches[i]);
    }
  }
}

}  // namespace
}  // namespace smartexp3
