#include "core/block_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/block_exp3.hpp"
#include "core/hybrid_block_exp3.hpp"
#include "policy_test_util.hpp"

namespace smartexp3::core {
namespace {

using testing::drive_two_level;
using testing::feedback;

BlockPolicyOptions plain_block() {
  BlockPolicyOptions o;
  return o;
}

TEST(BlockPolicy, BlockLengthsFollowCeilRule) {
  BlockPolicy policy(1, plain_block(), "t");
  policy.set_networks({0, 1});
  // ceil(1.1^x) for x = 0..9: 1 2 2 2 2 2 2 2 3 3.
  const int expected[] = {1, 2, 2, 2, 2, 2, 2, 2, 3, 3};
  for (int x = 0; x < 10; ++x) {
    BlockPolicy probe(1, plain_block(), "t");
    probe.set_networks({0, 1});
    // After x selections of arm 0, its next block length is expected[x].
    // Drive by forcing only arm 0 to be attractive enough is stochastic, so
    // check the published helper directly instead.
    (void)probe;
    EXPECT_EQ(static_cast<int>(std::ceil(std::pow(1.1, x) - 1e-12)), expected[x]) << x;
  }
  EXPECT_EQ(policy.block_length_of(0), 1);  // x = 0
}

TEST(BlockPolicy, HoldsNetworkForWholeBlock) {
  BlockPolicy policy(2, plain_block(), "t");
  policy.set_networks({0, 1, 2});
  // Long enough that several multi-slot blocks occur; within a block the
  // choice must not change.
  int t = 0;
  for (int block = 0; block < 200; ++block) {
    const NetworkId first = policy.choose(t);
    policy.observe(t++, feedback(0.5));
    // While the policy keeps returning the same network without a new block
    // (blocks_started unchanged), it must be the same network.
    const long blocks = policy.blocks_started();
    while (policy.blocks_started() == blocks) {
      const NetworkId next = policy.choose(t);
      if (policy.blocks_started() != blocks) break;  // new block just started
      ASSERT_EQ(next, first);
      policy.observe(t++, feedback(0.5));
      if (t > 5000) return;  // safety
    }
  }
}

TEST(BlockPolicy, SwitchesFarLessThanSlots) {
  BlockPolicy policy(3, plain_block(), "t");
  policy.set_networks({0, 1, 2});
  int switches = 0;
  NetworkId prev = kNoNetwork;
  for (int t = 0; t < 2000; ++t) {
    const NetworkId c = policy.choose(t);
    if (prev != kNoNetwork && c != prev) ++switches;
    prev = c;
    policy.observe(t, feedback(c == 1 ? 0.8 : 0.2));
  }
  // Blocks grow, so switches must be a small fraction of slots.
  EXPECT_LT(switches, 300);
  EXPECT_GT(switches, 0);
}

TEST(BlockPolicy, GammaUsesBlockIndexNotSlot) {
  BlockPolicy policy(4, plain_block(), "t");
  policy.set_networks({0, 1});
  // Run 1000 slots; far fewer blocks happen, so the selection distribution
  // keeps a larger exploration floor than slot-indexed EXP3 would have.
  long blocks_before = policy.blocks_started();
  drive_two_level(policy, 1000, 0, 0.9, 0.1);
  const long blocks = policy.blocks_started() - blocks_before;
  EXPECT_LT(blocks, 700);
  EXPECT_GT(blocks, 10);
}

TEST(BlockPolicy, LearnsBestNetworkBySlotShare) {
  BlockPolicy policy(5, plain_block(), "t");
  policy.set_networks({0, 1, 2});
  const auto counts = drive_two_level(policy, 4000, 2, 0.9, 0.1);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_GT(counts[2], 2000);
}

TEST(BlockExp3, NoExplorationPhaseNoGreedyNoSwitchBack) {
  BlockExp3 policy(6);
  EXPECT_FALSE(policy.options().explore_first);
  EXPECT_FALSE(policy.options().greedy);
  EXPECT_FALSE(policy.options().switch_back);
  EXPECT_FALSE(policy.options().reset);
  EXPECT_EQ(policy.name(), "block_exp3");
}

TEST(HybridBlockExp3, ExploresEveryNetworkFirst) {
  HybridBlockExp3 policy(7);
  policy.set_networks({0, 1, 2, 3});
  std::set<NetworkId> seen;
  int t = 0;
  // First 4 blocks are the exploration pass; block lengths there are 1.
  while (policy.blocks_started() < 4) {
    const NetworkId c = policy.choose(t);
    seen.insert(c);
    policy.observe(t++, feedback(0.5));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(HybridBlockExp3, ExplorationOrderVariesAcrossSeeds) {
  std::set<NetworkId> firsts;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    HybridBlockExp3 policy(seed);
    policy.set_networks({0, 1, 2, 3});
    firsts.insert(policy.choose(0));
  }
  EXPECT_GT(firsts.size(), 1u);
}

TEST(HybridBlockExp3, GreedyGateOpenInitially) {
  HybridBlockExp3 policy(8);
  policy.set_networks({0, 1, 2});
  policy.choose(0);
  EXPECT_TRUE(policy.greedy_gate_open());
}

TEST(HybridBlockExp3, GreedyGateClosesOnceDistributionSkews) {
  HybridBlockExp3 policy(9);
  policy.set_networks({0, 1, 2});
  drive_two_level(policy, 4000, 0, 1.0, 0.0);
  // After strong learning the condition max(p)-min(p) <= 1/(k-1) fails and
  // (without resets) there is no y-condition rescue.
  policy.choose(4000);
  EXPECT_FALSE(policy.greedy_gate_open());
}

TEST(HybridBlockExp3, GreedyPullsTowardEmpiricalBestEarly) {
  // With a clearly best arm, hybrid should concentrate earlier than plain
  // block EXP3 (this is the paper's stabilization-speed claim in miniature).
  int hybrid_on_best = 0;
  int block_on_best = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    HybridBlockExp3 hybrid(seed);
    BlockExp3 block(seed);
    hybrid.set_networks({0, 1, 2});
    block.set_networks({0, 1, 2});
    hybrid_on_best += testing::drive_two_level(hybrid, 600, 1, 0.9, 0.1)[1];
    block_on_best += testing::drive_two_level(block, 600, 1, 0.9, 0.1)[1];
  }
  EXPECT_GT(hybrid_on_best, block_on_best);
}

TEST(BlockPolicy, AverageGainTracking) {
  BlockPolicy policy(10, plain_block(), "t");
  policy.set_networks({0, 1});
  for (int t = 0; t < 100; ++t) {
    const NetworkId c = policy.choose(t);
    policy.observe(t, feedback(c == 0 ? 0.8 : 0.2));
  }
  EXPECT_NEAR(policy.average_gain(0), 0.8, 1e-9);
  EXPECT_NEAR(policy.average_gain(1), 0.2, 1e-9);
}

TEST(BlockPolicy, ProbabilitiesAreSimplexThroughout) {
  BlockPolicy policy(11, plain_block(), "t");
  policy.set_networks({0, 1, 2});
  for (int t = 0; t < 1000; ++t) {
    const NetworkId c = policy.choose(t);
    const auto p = policy.probabilities();
    double sum = 0.0;
    for (const double v : p) {
      ASSERT_GE(v, -1e-12);
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
    policy.observe(t, feedback(c == 0 ? 0.9 : 0.3));
  }
}

TEST(BlockPolicy, InvalidBetaRejected) {
  BlockPolicyOptions o;
  o.beta = 0.0;
  EXPECT_THROW(BlockPolicy(1, o, "t"), std::invalid_argument);
  o.beta = 1.5;
  EXPECT_THROW(BlockPolicy(1, o, "t"), std::invalid_argument);
}

TEST(BlockPolicy, LargerBetaMeansFewerBlocks) {
  BlockPolicyOptions slow;
  slow.beta = 0.05;
  BlockPolicyOptions fast;
  fast.beta = 0.5;
  BlockPolicy a(12, slow, "slow");
  BlockPolicy b(12, fast, "fast");
  a.set_networks({0, 1});
  b.set_networks({0, 1});
  drive_two_level(a, 3000, 0, 0.8, 0.2);
  drive_two_level(b, 3000, 0, 0.8, 0.2);
  EXPECT_GT(a.blocks_started(), b.blocks_started());
}

TEST(BlockPolicy, NetworkChangeGivesNewcomerMaxWeight) {
  BlockPolicy policy(13, plain_block(), "t");
  policy.set_networks({0, 1});
  drive_two_level(policy, 3000, 1, 0.9, 0.1);
  policy.set_networks({0, 1, 2});
  policy.choose(3000);  // starts a block, refreshing probabilities
  const auto p = policy.probabilities();
  ASSERT_EQ(p.size(), 3u);
  // Newcomer weight equals the max existing weight, so its probability ties
  // the favourite's.
  EXPECT_NEAR(p[2], p[1], 1e-9);
  EXPECT_GT(p[2], p[0]);
}

}  // namespace
}  // namespace smartexp3::core
