#include "metrics/nash.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smartexp3::metrics {
namespace {

TEST(WaterFill, Setting1UniqueEquilibrium) {
  // Paper setting 1: 4/7/22 Mbps, 20 devices -> (2, 4, 14).
  EXPECT_EQ(water_fill_allocation({4, 7, 22}, 20), (std::vector<int>{2, 4, 14}));
}

TEST(WaterFill, Setting2UniformSplit) {
  const auto counts = water_fill_allocation({11, 11, 11}, 20);
  int total = 0;
  for (const int c : counts) {
    total += c;
    EXPECT_GE(c, 6);
    EXPECT_LE(c, 7);
  }
  EXPECT_EQ(total, 20);
}

TEST(WaterFill, ZeroDevices) {
  EXPECT_EQ(water_fill_allocation({5, 5}, 0), (std::vector<int>{0, 0}));
}

TEST(WaterFill, SingleNetworkTakesAll) {
  EXPECT_EQ(water_fill_allocation({3}, 7), (std::vector<int>{7}));
}

TEST(WaterFill, ThrowsOnNoNetworks) {
  EXPECT_THROW(water_fill_allocation({}, 3), std::invalid_argument);
}

TEST(IsNash, AcceptsEquilibria) {
  EXPECT_TRUE(is_nash({4, 7, 22}, {2, 4, 14}));
  EXPECT_TRUE(is_nash({11, 11, 11}, {7, 7, 6}));
  EXPECT_TRUE(is_nash({11, 11, 11}, {6, 7, 7}));  // any permutation works
}

TEST(IsNash, RejectsNonEquilibria) {
  EXPECT_FALSE(is_nash({4, 7, 22}, {10, 5, 5}));
  EXPECT_FALSE(is_nash({11, 11, 11}, {20, 0, 0}));
  EXPECT_FALSE(is_nash({4, 7, 22}, {0, 0, 20}));
}

TEST(IsNash, EmptyNetworksAreNeverProfitlessDeviationTargets) {
  // 1 device on the 22 network, others empty: moving to 4 or 7 gives less.
  EXPECT_TRUE(is_nash({4, 7, 22}, {0, 0, 1}));
  // 1 device on the 4 network: moving to 22 gives 22 > 4 -> not NE.
  EXPECT_FALSE(is_nash({4, 7, 22}, {1, 0, 0}));
}

TEST(AllocationGains, ExpandsPerDevice) {
  const auto gains = allocation_gains({4, 22}, {1, 2});
  ASSERT_EQ(gains.size(), 3u);
  EXPECT_DOUBLE_EQ(gains[0], 4.0);
  EXPECT_DOUBLE_EQ(gains[1], 11.0);
  EXPECT_DOUBLE_EQ(gains[2], 11.0);
}

TEST(DistanceToNash, PaperWorkedExample) {
  // Paper §VI-A: three devices observe 1, 1, 4 Mbps; at NE each would see
  // 2 Mbps; distance = 100 %. Networks here: 2 Mbps and 4 Mbps; devices A,B
  // on network 0 (1 each), device C on network 1 (4).
  const std::vector<double> caps = {2.0, 4.0};
  const std::vector<int> counts = {2, 1};
  const std::vector<int> nets = {0, 0, 1};
  const std::vector<double> gains = {1.0, 1.0, 4.0};
  EXPECT_NEAR(distance_to_nash(caps, counts, nets, gains), 100.0, 1e-9);
}

TEST(DistanceToNash, ZeroAtEquilibrium) {
  const std::vector<double> caps = {4, 7, 22};
  const std::vector<int> counts = {2, 4, 14};
  std::vector<int> nets;
  std::vector<double> gains;
  for (int i = 0; i < 2; ++i) { nets.push_back(0); gains.push_back(2.0); }
  for (int i = 0; i < 4; ++i) { nets.push_back(1); gains.push_back(1.75); }
  for (int i = 0; i < 14; ++i) { nets.push_back(2); gains.push_back(22.0 / 14.0); }
  EXPECT_NEAR(distance_to_nash(caps, counts, nets, gains), 0.0, 1e-9);
}

TEST(DistanceToNash, RespectsVisibilityRestrictions) {
  // The juicy deviation is to network 1, but device 0 cannot see it.
  const std::vector<double> caps = {2.0, 50.0};
  const std::vector<int> counts = {1, 0};
  const std::vector<int> nets = {0};
  const std::vector<double> gains = {2.0};
  EXPECT_GT(distance_to_nash(caps, counts, nets, gains), 1000.0);
  const std::vector<std::vector<int>> visible = {{0}};
  EXPECT_NEAR(distance_to_nash(caps, counts, nets, gains, visible), 0.0, 1e-9);
}

TEST(DistanceToNash, InactiveDevicesSkipped) {
  const std::vector<double> caps = {5.0, 5.0};
  const std::vector<int> counts = {1, 0};
  const std::vector<int> nets = {0, -1};  // second device disconnected
  const std::vector<double> gains = {5.0, 0.0};
  EXPECT_NEAR(distance_to_nash(caps, counts, nets, gains), 0.0, 1e-9);
}

TEST(DistanceToNash, GuardsAgainstZeroGain) {
  const std::vector<double> caps = {1.0, 1.0};
  const std::vector<int> counts = {1, 0};
  const std::vector<int> nets = {0};
  const std::vector<double> gains = {0.0};  // dead trace slot
  const double d = distance_to_nash(caps, counts, nets, gains);
  EXPECT_TRUE(std::isfinite(d));
}

TEST(Def4Distance, ZeroWhenEveryoneAtOrAboveAverage) {
  // Aggregate 12, 3 devices -> g_avg = 4.
  EXPECT_DOUBLE_EQ(distance_from_average_rate(12.0, {4.0, 5.0, 6.0}), 0.0);
}

TEST(Def4Distance, AveragesShortfalls) {
  // g_avg = 4; shortfalls: 50 %, 0 %, 0 % -> mean 16.67 %.
  EXPECT_NEAR(distance_from_average_rate(12.0, {2.0, 4.0, 6.0}), 50.0 / 3.0, 1e-9);
}

TEST(Def4Distance, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(distance_from_average_rate(12.0, {}), 0.0);
}

TEST(Def4Optimal, NonZeroForUnequalNetworks) {
  // Paper Figs 13-15 show a non-zero "Optimal" floor: at NE on 4/7/22 with
  // 14 devices, some devices sit below the global average.
  const double opt = optimal_distance_from_average_rate({4, 7, 22}, 14);
  EXPECT_GT(opt, 0.0);
  EXPECT_LT(opt, 30.0);
}

TEST(Def4Optimal, ZeroForPerfectlySymmetricCase) {
  EXPECT_NEAR(optimal_distance_from_average_rate({10, 10}, 2), 0.0, 1e-9);
}

}  // namespace
}  // namespace smartexp3::metrics
