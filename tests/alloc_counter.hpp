// Binary-wide heap-allocation counter for the steady-state allocation
// tests (hot path and recorder) and for bench/perf_engine. The replacement
// operator new in alloc_counter.cpp counts every allocation made while
// counting is enabled; with counting off the overhead is one relaxed atomic
// load per allocation.
//
// Only meaningful on a single thread: enable counting around a serial
// measurement window (gtest itself allocates, so keep the window tight and
// assertion-free).
#pragma once

#include <cstdint>

namespace smartexp3::testing {

/// Enable/disable counting (also resets the counter on enable).
void start_alloc_counting();
std::uint64_t stop_alloc_counting();  ///< returns allocations in the window

}  // namespace smartexp3::testing
