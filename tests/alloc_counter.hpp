// Binary-wide heap-allocation counter for the steady-state allocation
// tests (hot path and recorder), the memory-per-device budget test and
// bench/perf_engine. The replacement operator new in alloc_counter.cpp
// counts every allocation (and its requested bytes) made while counting is
// enabled; with counting off the overhead is one relaxed atomic load per
// allocation.
//
// Only meaningful on a single thread: enable counting around a serial
// measurement window (gtest itself allocates, so keep the window tight and
// assertion-free).
#pragma once

#include <cstdint>

namespace smartexp3::testing {

/// Allocations made while counting was enabled. `bytes` is the sum of the
/// *requested* sizes (what the code asked for, not what malloc rounded to) —
/// freed blocks are not subtracted, so this is cumulative churn, not live
/// heap; for a window that only builds data structures the two coincide.
struct AllocStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Enable/disable counting (also resets the counters on enable).
void start_alloc_counting();
std::uint64_t stop_alloc_counting();  ///< returns allocations in the window
AllocStats stop_alloc_counting_stats();  ///< same, with the byte total

}  // namespace smartexp3::testing
