// The golden-trajectory scenario: a deliberately messy mixed-policy,
// dynamic-join/leave, multi-area run used to pin the simulation engine down
// bit-for-bit across refactors.
//
// The per-device download/switch values this scenario produces under
// kGoldenSeed were captured by tools/golden_capture.cpp (last bumped
// deliberately when the random-variate layer moved to one-uniform
// inverse-CDF sampling; before that, when switching-delay draws moved onto
// per-device RNG streams); the golden test asserts the engine still
// reproduces them exactly. Regenerate with:
//   cmake --build build --target golden_capture && ./build/tools/golden_capture
#pragma once

#include "exp/config.hpp"

namespace smartexp3::testing {

inline constexpr std::uint64_t kGoldenSeed = 20260731ULL;

/// Exercises every engine path the refactor touches: all nine factory
/// policies except centralized (whose coordinator ignores service areas),
/// restricted visibility, joins, leaves, moves and a capacity change.
inline exp::ExperimentConfig golden_config() {
  using namespace smartexp3::netsim;
  exp::ExperimentConfig cfg;
  cfg.name = "golden";
  cfg.world.horizon = 200;
  cfg.base_seed = kGoldenSeed;

  // Area 0 sees networks {0, 1, 2}; area 1 sees {0, 2, 3}.
  cfg.networks.push_back(make_cellular(0, 10.0));
  cfg.networks.push_back(make_wifi(1, 22.0, {0}));
  cfg.networks.push_back(make_wifi(2, 7.0, {0, 1}));
  cfg.networks.push_back(make_wifi(3, 4.0, {1}));

  const char* policies[10] = {
      "exp3",        "block_exp3",   "hybrid_block_exp3", "smart_exp3_noreset",
      "smart_exp3",  "greedy",       "full_information",  "ucb1",
      "fixed_random", "smart_exp3"};
  for (int i = 0; i < 10; ++i) {
    DeviceSpec d;
    d.id = i;
    d.area = i < 5 ? 0 : 1;
    d.policy_name = policies[i];
    if (i == 7 || i == 8) d.join_slot = 40;
    if (i == 7 || i == 8) d.leave_slot = 160;
    if (i == 9) d.leave_slot = 100;
    cfg.devices.push_back(d);
  }

  cfg.scenario.move(60, /*device=*/0, /*new_area=*/1)
      .move(120, /*device=*/5, /*new_area=*/0)
      .move(150, /*device=*/0, /*new_area=*/0);
  cfg.scenario.set_capacity(100, /*network=*/1, /*mbps=*/11.0);
  return cfg;
}

}  // namespace smartexp3::testing
