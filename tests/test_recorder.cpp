#include "metrics/recorder.hpp"

#include <gtest/gtest.h>

#include "alloc_counter.hpp"
#include "exp/runner.hpp"
#include "exp/settings.hpp"

namespace smartexp3::metrics {
namespace {

exp::ExperimentConfig small_config(const std::string& policy) {
  auto cfg = exp::static_setting1(policy, /*n_devices=*/6, /*horizon=*/100);
  cfg.delay = exp::DelayKind::kZero;
  return cfg;
}

TEST(Recorder, DistanceSeriesHasHorizonLength) {
  auto cfg = small_config("greedy");
  const auto run = exp::run_once(cfg, 1);
  ASSERT_EQ(run.group_distance.size(), 1u);
  EXPECT_EQ(run.distance().size(), 100u);
  for (const double d : run.distance()) {
    EXPECT_GE(d, 0.0);
    EXPECT_TRUE(std::isfinite(d));
  }
}

TEST(Recorder, CentralizedIsAlwaysAtNash) {
  auto cfg = small_config("centralized");
  const auto run = exp::run_once(cfg, 2);
  EXPECT_DOUBLE_EQ(run.at_nash_fraction, 1.0);
  EXPECT_DOUBLE_EQ(run.eps_fraction, 1.0);
  for (const double d : run.distance()) EXPECT_NEAR(d, 0.0, 1e-9);
  for (const int s : run.switches) EXPECT_EQ(s, 0);
}

TEST(Recorder, DownloadsMatchDeviceCount) {
  auto cfg = small_config("smart_exp3");
  const auto run = exp::run_once(cfg, 3);
  EXPECT_EQ(run.downloads_mb.size(), 6u);
  EXPECT_EQ(run.switches.size(), 6u);
  EXPECT_EQ(run.resets.size(), 6u);
  double total = 0.0;
  for (const double d : run.downloads_mb) total += d;
  EXPECT_NEAR(total, run.total_download_mb, 1e-6);
}

TEST(Recorder, ConservationDownloadPlusLossPlusUnusedEqualsOffered) {
  // With zero delays and equal share, download + unused must equal the
  // total capacity offered over the run.
  auto cfg = small_config("fixed_random");
  const auto run = exp::run_once(cfg, 4);
  const double offered =
      cfg.aggregate_capacity() * cfg.world.horizon * cfg.world.slot_seconds / 8.0;
  double downloaded = run.total_download_mb;
  EXPECT_NEAR(downloaded + run.unused_mb, offered, 1e-6);
}

TEST(Recorder, StabilityTrackedWhenEnabled) {
  auto cfg = small_config("greedy");
  cfg.recorder.track_stability = true;
  const auto run = exp::run_once(cfg, 5);
  // Greedy locks in by construction (one-hot probabilities after explore).
  EXPECT_TRUE(run.stability.stable);
  EXPECT_GE(run.stability.stable_slot, 0);
}

TEST(Recorder, Def4SeriesWhenEnabled) {
  auto cfg = small_config("greedy");
  cfg.recorder.track_def4 = true;
  const auto run = exp::run_once(cfg, 6);
  EXPECT_EQ(run.def4.size(), 100u);
  for (const double d : run.def4) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 100.0);
  }
}

TEST(Recorder, SelectionsTimelineWhenEnabled) {
  auto cfg = small_config("exp3");
  cfg.recorder.track_selections = true;
  const auto run = exp::run_once(cfg, 7);
  ASSERT_EQ(run.selections.size(), 6u);
  for (const auto& timeline : run.selections) {
    ASSERT_EQ(timeline.size(), 100u);
    for (const int net : timeline) {
      EXPECT_GE(net, 0);
      EXPECT_LE(net, 2);
    }
  }
}

TEST(Recorder, GroupsSplitDistance) {
  auto cfg = small_config("greedy");
  cfg.recorder.groups = {{1, 2, 3}, {4, 5, 6}};
  const auto run = exp::run_once(cfg, 8);
  ASSERT_EQ(run.group_distance.size(), 2u);
  EXPECT_EQ(run.group_distance[0].size(), 100u);
  EXPECT_EQ(run.group_distance[1].size(), 100u);
}

TEST(Recorder, PersistentFlagsReflectSchedules) {
  auto cfg = small_config("greedy");
  cfg.devices[2].join_slot = 10;
  cfg.devices[4].leave_slot = 50;
  const auto run = exp::run_once(cfg, 9);
  EXPECT_TRUE(run.persistent[0]);
  EXPECT_FALSE(run.persistent[2]);
  EXPECT_FALSE(run.persistent[4]);
}

TEST(Recorder, SwitchingCostPositiveWhenDelaysOn) {
  auto cfg = small_config("exp3");
  cfg.delay = exp::DelayKind::kDistribution;
  const auto run = exp::run_once(cfg, 10);
  double cost = 0.0;
  for (const double c : run.switching_cost_mb) cost += c;
  EXPECT_GT(cost, 0.0);  // EXP3 switches constantly
}

TEST(Recorder, SteadyStateIsAllocationFreePerSlot) {
  // With every tracking option on (including per-group series), observed
  // slots must not touch the heap after the first one: the series are
  // reserved to the horizon and the per-slot gather runs in scratch
  // buffers. A regression makes recorder-on runs allocation-bound again.
  auto cfg = exp::static_setting1("smart_exp3", /*n_devices=*/8, /*horizon=*/300);
  cfg.recorder.track_distance = true;
  cfg.recorder.track_stability = true;
  cfg.recorder.track_def4 = true;
  cfg.recorder.track_selections = true;
  cfg.recorder.groups = {{1, 2, 3, 4}, {5, 6, 7, 8}};
  auto world = exp::build_world(cfg, 11);
  RunRecorder recorder(cfg.recorder);
  world->set_observer(&recorder);
  for (Slot t = 0; t < 100; ++t) world->step();  // warm-up (recorder initialises)
  smartexp3::testing::start_alloc_counting();
  for (Slot t = 0; t < 150; ++t) world->step();
  EXPECT_EQ(smartexp3::testing::stop_alloc_counting(), 0u);
}

}  // namespace
}  // namespace smartexp3::metrics
