#include "core/ucb1.hpp"

#include <gtest/gtest.h>

#include <set>

#include "policy_test_util.hpp"

namespace smartexp3::core {
namespace {

using testing::drive_two_level;
using testing::feedback;

TEST(Ucb1, PullsEveryArmOnceFirst) {
  Ucb1Policy policy(1);
  policy.set_networks({0, 1, 2, 3});
  std::set<NetworkId> seen;
  for (int t = 0; t < 4; ++t) {
    const NetworkId c = policy.choose(t);
    EXPECT_TRUE(seen.insert(c).second);
    policy.observe(t, feedback(0.5));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Ucb1, ConvergesOnStationaryArms) {
  // In its home turf — i.i.d.-style rewards — UCB1 must concentrate.
  Ucb1Policy policy(2);
  policy.set_networks({0, 1, 2});
  const auto counts = drive_two_level(policy, 3000, 1, 0.9, 0.1);
  EXPECT_GT(counts[1], 2500);
}

TEST(Ucb1, UcbValuesShrinkWithPulls) {
  Ucb1Policy policy(3);
  policy.set_networks({0, 1});
  drive_two_level(policy, 10, 0, 0.5, 0.5);
  const double early = policy.ucb(0);
  drive_two_level(policy, 1000, 0, 0.5, 0.5);
  EXPECT_LT(policy.ucb(0), early);
}

TEST(Ucb1, UnpulledArmIsInfinitelyOptimistic) {
  Ucb1Policy policy(4);
  policy.set_networks({0, 1});
  policy.choose(0);
  policy.observe(0, feedback(1.0));
  // One arm pulled, the other not: the unpulled one must be chosen next.
  bool has_infinite = std::isinf(policy.ucb(0)) || std::isinf(policy.ucb(1));
  EXPECT_TRUE(has_infinite);
}

TEST(Ucb1, NewNetworkExploredImmediately) {
  Ucb1Policy policy(5);
  policy.set_networks({0, 1});
  drive_two_level(policy, 200, 0, 0.9, 0.1);
  policy.set_networks({0, 1, 2});
  EXPECT_EQ(policy.choose(200), 2);  // infinite optimism for the newcomer
}

TEST(Ucb1, ProbabilitiesOneHot) {
  Ucb1Policy policy(6);
  policy.set_networks({0, 1});
  drive_two_level(policy, 100, 1, 0.9, 0.1);
  const auto p = policy.probabilities();
  EXPECT_DOUBLE_EQ(p[0] + p[1], 1.0);
  EXPECT_TRUE(p[0] == 1.0 || p[1] == 1.0);
}

TEST(Ucb1, RejectsBadParameters) {
  EXPECT_THROW(Ucb1Policy(1, Ucb1Policy::Options{0.0}), std::invalid_argument);
  Ucb1Policy ok(1);
  EXPECT_THROW(ok.set_networks({}), std::invalid_argument);
}

TEST(Ucb1, SlowToReactToDistributionShift) {
  // The motivating failure mode: after a long good history, UCB1's mean for
  // the stale arm decays only at rate 1/n — far slower than Smart EXP3's
  // drop detector.
  Ucb1Policy policy(7);
  policy.set_networks({0, 1});
  int t = 0;
  for (; t < 1000; ++t) {
    const NetworkId c = policy.choose(t);
    policy.observe(t, feedback(c == 0 ? 0.9 : 0.4));
  }
  // Arm 0 collapses to 0.1; arm 1 stays 0.4.
  int stuck = 0;
  for (; t < 1200; ++t) {
    const NetworkId c = policy.choose(t);
    if (c == 0) ++stuck;
    policy.observe(t, feedback(c == 0 ? 0.1 : 0.4));
  }
  EXPECT_GT(stuck, 150);  // still mostly on the stale favourite
}

}  // namespace
}  // namespace smartexp3::core
