#include "core/centralized.hpp"

#include <gtest/gtest.h>

#include "metrics/nash.hpp"

namespace smartexp3::core {
namespace {

TEST(Coordinator, AllocationIsNash) {
  CentralizedCoordinator coord({4.0, 7.0, 22.0});
  for (DeviceId id = 0; id < 20; ++id) coord.register_device(id);
  std::vector<int> counts(3, 0);
  for (DeviceId id = 0; id < 20; ++id) ++counts[static_cast<std::size_t>(coord.assignment(id))];
  EXPECT_TRUE(metrics::is_nash({4.0, 7.0, 22.0}, counts));
  // Setting 1's unique equilibrium is (2, 4, 14).
  EXPECT_EQ(counts, (std::vector<int>{2, 4, 14}));
}

TEST(Coordinator, StableUnderRepeatedQueries) {
  CentralizedCoordinator coord({4.0, 7.0, 22.0});
  for (DeviceId id = 0; id < 10; ++id) coord.register_device(id);
  std::vector<NetworkId> first;
  for (DeviceId id = 0; id < 10; ++id) first.push_back(coord.assignment(id));
  for (int round = 0; round < 5; ++round) {
    for (DeviceId id = 0; id < 10; ++id) {
      ASSERT_EQ(coord.assignment(id), first[static_cast<std::size_t>(id)]);
    }
  }
}

TEST(Coordinator, MinimalMovesOnDeparture) {
  CentralizedCoordinator coord({10.0, 10.0});
  for (DeviceId id = 0; id < 4; ++id) coord.register_device(id);
  std::vector<NetworkId> before;
  for (DeviceId id = 0; id < 4; ++id) before.push_back(coord.assignment(id));
  // One device leaves; the equilibrium (2,1) or (1,2) leaves everyone else
  // in place — at most the leaver's slot is vacated.
  coord.deregister_device(3);
  int moved = 0;
  for (DeviceId id = 0; id < 3; ++id) {
    if (coord.assignment(id) != before[static_cast<std::size_t>(id)]) ++moved;
  }
  EXPECT_EQ(moved, 0);
}

TEST(Coordinator, RebalancesOnArrivals) {
  CentralizedCoordinator coord({4.0, 7.0, 22.0});
  for (DeviceId id = 0; id < 4; ++id) coord.register_device(id);
  // 4 devices: equilibrium is (0, 1, 3).
  std::vector<int> counts(3, 0);
  for (DeviceId id = 0; id < 4; ++id) ++counts[static_cast<std::size_t>(coord.assignment(id))];
  EXPECT_EQ(counts, (std::vector<int>{0, 1, 3}));
  for (DeviceId id = 4; id < 20; ++id) coord.register_device(id);
  counts.assign(3, 0);
  for (DeviceId id = 0; id < 20; ++id) ++counts[static_cast<std::size_t>(coord.assignment(id))];
  EXPECT_EQ(counts, (std::vector<int>{2, 4, 14}));
}

TEST(Coordinator, ThrowsForUnknownDevice) {
  CentralizedCoordinator coord({5.0});
  coord.register_device(1);
  EXPECT_THROW(coord.assignment(2), std::logic_error);
}

TEST(CentralizedPolicy, RegistersOnSetNetworksAndReleasesOnLeave) {
  auto coord = std::make_shared<CentralizedCoordinator>(std::vector<double>{6.0, 6.0});
  CentralizedPolicy a(0, coord);
  CentralizedPolicy b(1, coord);
  a.set_networks({0, 1});
  b.set_networks({0, 1});
  EXPECT_EQ(coord->device_count(), 2);
  // Two devices over two equal networks: one each.
  EXPECT_NE(a.choose(0), b.choose(0));
  a.on_leave(1);
  EXPECT_EQ(coord->device_count(), 1);
}

TEST(CentralizedPolicy, DestructorDeregisters) {
  auto coord = std::make_shared<CentralizedCoordinator>(std::vector<double>{6.0});
  {
    CentralizedPolicy p(7, coord);
    p.set_networks({0});
    EXPECT_EQ(coord->device_count(), 1);
  }
  EXPECT_EQ(coord->device_count(), 0);
}

TEST(CentralizedPolicy, ProbabilitiesOneHot) {
  auto coord = std::make_shared<CentralizedCoordinator>(std::vector<double>{4.0, 9.0});
  CentralizedPolicy p(0, coord);
  p.set_networks({0, 1});
  const NetworkId assigned = p.choose(0);
  const auto probs = p.probabilities();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_DOUBLE_EQ(probs[i], p.networks()[i] == assigned ? 1.0 : 0.0);
  }
}

TEST(CentralizedPolicy, ZeroSwitchesInStaticWorld) {
  auto coord = std::make_shared<CentralizedCoordinator>(std::vector<double>{4.0, 7.0, 22.0});
  std::vector<std::unique_ptr<CentralizedPolicy>> policies;
  for (DeviceId id = 0; id < 12; ++id) {
    policies.push_back(std::make_unique<CentralizedPolicy>(id, coord));
    policies.back()->set_networks({0, 1, 2});
  }
  std::vector<NetworkId> first;
  for (auto& p : policies) first.push_back(p->choose(0));
  for (int t = 1; t < 100; ++t) {
    for (std::size_t i = 0; i < policies.size(); ++i) {
      ASSERT_EQ(policies[i]->choose(t), first[i]);
    }
  }
}

}  // namespace
}  // namespace smartexp3::core
