#!/bin/sh
# netsel_sim CLI contract tests: exit codes and error messages for bad
# invocations, plus the kill-and-resume crash-recovery walkthrough from the
# README. Run by ctest as `netsel_cli_test.sh <netsel_sim> [netsel_serve]`;
# a plain shell script because ctest's PASS_REGULAR_EXPRESSION would
# override the exit-code checks these cases exist to pin. When the serve
# binary is given, its --help flag inventory is audited the same way.
set -u

SIM=${1:?usage: netsel_cli_test.sh <netsel_sim> [netsel_serve]}
SERVE=${2:-}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
failures=0

fail() {
    echo "FAIL: $1" >&2
    failures=$((failures + 1))
}

# expect_usage_error <needle> -- <args...>
# The command must exit 2 and print a one-line error mentioning <needle>.
expect_usage_error() {
    needle=$1
    shift 2
    out=$("$SIM" "$@" 2>&1)
    status=$?
    if [ "$status" -ne 2 ]; then
        fail "'$*' exited $status, expected 2"
    fi
    case "$out" in
        *"$needle"*) ;;
        *) fail "'$*' output does not mention '$needle': $out" ;;
    esac
}

expect_usage_error "unknown option '--frobnicate'" -- --frobnicate
expect_usage_error "--runs needs a value" -- --runs
expect_usage_error "--runs needs an integer, got 'many'" -- --runs many
expect_usage_error "--runs must be positive" -- --runs 0
expect_usage_error "--seed needs a non-negative integer" -- --seed -1
expect_usage_error "--horizon must be >= 1" -- --horizon 0
expect_usage_error "unknown policy 'psychic'" -- --policy psychic
expect_usage_error "mutually exclusive" -- --spec a.json --dump-spec setting1
expect_usage_error "--checkpoint-every needs --checkpoint-dir" -- --checkpoint-every 10
expect_usage_error "--checkpoint-every must be >= 1" -- \
    --checkpoint-every -5 --checkpoint-dir "$WORK/ck"
expect_usage_error "--resume needs --checkpoint-dir" -- --resume

# Unknown setting and unreadable spec are runtime errors: still exit 2, still
# one actionable line.
expect_usage_error "unknown setting" -- --setting no_such_setting
expect_usage_error "cannot" -- --spec "$WORK/does-not-exist.json"

# --- help audit -----------------------------------------------------------
# --help must exit 0, and its text must document exactly the flags the
# parser accepts — a flag added to one side without the other fails here.
if ! "$SIM" --help >"$WORK/help.out" 2>&1; then
    fail "--help exited nonzero"
fi
if ! "$SIM" -h >/dev/null 2>&1; then
    fail "-h exited nonzero"
fi
# The canonical accepted-flag list (keep in sync with the netsel_sim parser).
cat >"$WORK/flags.expected" <<'EOF'
--checkpoint-dir
--checkpoint-every
--csv
--devices
--dump-spec
--help
--horizon
--list
--networks
--policy
--resume
--runs
--seed
--setting
--shards
--smart
--spec
--stability
--threads
--quiet
EOF
sort "$WORK/flags.expected" >"$WORK/flags.sorted"
grep -oE -- '--[a-z][a-z-]*' "$WORK/help.out" | sort -u >"$WORK/flags.documented"
if ! diff -u "$WORK/flags.sorted" "$WORK/flags.documented" >"$WORK/flags.diff"; then
    fail "help text flags differ from the accepted flag list:
$(cat "$WORK/flags.diff")"
fi

# Same audit for netsel_serve, when the binary was passed in. The list must
# track the parser in tools/netsel_serve.cpp exactly.
if [ -n "$SERVE" ]; then
    if ! "$SERVE" --help >"$WORK/serve_help.out" 2>&1; then
        fail "netsel_serve --help exited nonzero"
    fi
    cat >"$WORK/serve_flags.expected" <<'EOF'
--checkpoint-every
--connect
--help
--jobs
--lanes
--max-attempts
--max-job-attempts
--no-preempt
--progress-every
--queue
--quota-device-slots
--quota-queued
--quota-running
--socket
--state-dir
--stdin
--tenant
EOF
    sort "$WORK/serve_flags.expected" >"$WORK/serve_flags.sorted"
    grep -oE -- '--[a-z][a-z-]*' "$WORK/serve_help.out" | sort -u \
        >"$WORK/serve_flags.documented"
    if ! diff -u "$WORK/serve_flags.sorted" "$WORK/serve_flags.documented" \
            >"$WORK/serve_flags.diff"; then
        fail "netsel_serve help flags differ from the accepted flag list:
$(cat "$WORK/serve_flags.diff")"
    fi
    "$SERVE" --tenant acme >/dev/null 2>&1
    [ $? -eq 2 ] || fail "malformed --tenant spec did not exit 2"
    "$SERVE" --quota-queued -1 >/dev/null 2>&1
    [ $? -eq 2 ] || fail "negative --quota-queued did not exit 2"
fi

# A good run exits 0 (small, fast configuration).
if ! "$SIM" --setting setting1 --devices 4 --horizon 40 --runs 2 --quiet \
        >"$WORK/ok.out" 2>&1; then
    fail "healthy run exited nonzero: $(cat "$WORK/ok.out")"
fi

# --- crash recovery walkthrough -------------------------------------------
# Reference run, then the same run checkpointed, killed with SIGTERM, and
# resumed. The resumed summary must equal the uninterrupted one.
REF=$("$SIM" --setting setting1 --devices 6 --horizon 400 --runs 2 \
      --threads 1 --quiet) || fail "reference run failed"

CKDIR="$WORK/ckpt"
"$SIM" --setting setting1 --devices 6 --horizon 400 --runs 2 --threads 1 \
    --quiet --checkpoint-every 50 --checkpoint-dir "$CKDIR" \
    >"$WORK/killed.out" 2>&1 &
PID=$!
# Give it a moment to make progress, then deliver the signal the handler
# turns into a final-checkpoint-and-exit-130.
sleep 0.2
kill -TERM "$PID" 2>/dev/null
wait "$PID"
status=$?
if [ "$status" -eq 130 ]; then
    # Interrupted as intended: checkpoints must exist to resume from.
    if ! ls "$CKDIR"/run*_slot*.ckpt >/dev/null 2>&1; then
        fail "interrupted run left no checkpoint files in $CKDIR"
    fi
elif [ "$status" -ne 0 ]; then
    fail "killed run exited $status, expected 130 (interrupted) or 0 (won the race)"
fi

RESUMED=$("$SIM" --setting setting1 --devices 6 --horizon 400 --runs 2 \
          --threads 1 --quiet --checkpoint-every 50 --checkpoint-dir "$CKDIR" \
          --resume) || fail "resumed run failed"
if [ "$RESUMED" != "$REF" ]; then
    fail "resumed summary differs from uninterrupted run:
  reference: $REF
  resumed:   $RESUMED"
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures CLI test(s) failed" >&2
    exit 1
fi
echo "all CLI tests passed"
