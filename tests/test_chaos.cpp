// Chaos testing: real served jobs under randomized failpoint schedules.
//
// Each schedule arms a random subset of the instrumented fault sites in
// one-shot / probability modes, runs a full job through the in-process
// service, and asserts the robustness invariants the stack promises:
//
//   1. Everything terminates — no fault wedges an executor or a drain.
//   2. Every accepted job reaches a terminal disposition (or stays
//      resumable after a drain).
//   3. A completed job's summary is byte-identical to the clean reference —
//      which also proves no torn checkpoint was ever loaded, since a torn
//      restore would fork the trajectory.
//   4. A job fails ONLY when a fault that is allowed to fail it was armed.
//
// The schedule RNG seed is printed (and settable via NETSEL_CHAOS_SEED) so
// any failure replays exactly; NETSEL_CHAOS_SCHEDULES scales the sweep.
// `serve.executor.abort` is deliberately absent here — std::abort() cannot
// be survived in-process; tests/netsel_chaos_test.sh covers it by crashing
// and restarting real server processes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "serve/server.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::serve {
namespace {

namespace fs = std::filesystem;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("NETSEL_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260808ULL;  // pinned default: the ctest/ASan run is deterministic
}

int chaos_schedules() {
  if (const char* env = std::getenv("NETSEL_CHAOS_SCHEDULES")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<int>(n);
  }
  return 25;
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("chaos_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

constexpr Slot kHorizon = 120;
constexpr int kRuns = 2;

/// Clean-run summary for the schedule's job, computed with nothing armed.
const std::string& clean_reference() {
  static const std::string reference = [] {
    EXPECT_FALSE(util::failpoints_armed())
        << "reference must be computed before any schedule arms a site";
    exp::SettingParams params;
    params.horizon = kHorizon;
    auto cfg = exp::make_setting("setting1", params);
    cfg.world.shards = exp::world_shards(cfg.world.shards);
    const auto batch = exp::run_many_result(cfg, kRuns, 2);
    EXPECT_TRUE(batch.all_completed());
    std::vector<metrics::RunResult> results;
    for (std::size_t i = 0; i < batch.results.size(); ++i) {
      if (batch.completed[i]) results.push_back(batch.results[i]);
    }
    return summary_json(cfg, results);
  }();
  return reference;
}

/// Sites whose firing crashes one run attempt; armed as one-shots so the
/// retry budget (max_attempts 4, at most 3 such sites per schedule) can
/// always absorb them — a completed job is then REQUIRED.
const std::vector<std::string>& crash_sites() {
  static const std::vector<std::string> sites = {
      "checkpoint.write.fail",   "checkpoint.write.short",
      "checkpoint.fsync.fail",   "checkpoint.rename.torn",
      "checkpoint.dirsync.fail", "runner.attempt.crash",
      "runner.watchdog.overrun",
  };
  return sites;
}

struct Schedule {
  std::vector<std::pair<std::string, std::string>> armed;  // site -> mode
  bool exception_armed = false;  // serve.executor.exception may fail the job

  std::string describe() const {
    std::string out;
    for (const auto& [site, mode] : armed) {
      if (!out.empty()) out += ",";
      out += site + "=" + mode;
    }
    return out.empty() ? "(nothing armed)" : out;
  }
};

/// Draw and arm one randomized schedule. Checkpoint writes happen every 20
/// slots x 2 runs x up to 4 attempts, so one-shot trigger counts up to ~40
/// evaluations land both on "fires during this job" and "never fires".
Schedule arm_random_schedule(std::mt19937_64& rng) {
  Schedule s;
  const auto& crash = crash_sites();
  std::uniform_int_distribution<int> n_crash(0, 3);
  std::uniform_int_distribution<std::size_t> pick(0, crash.size() - 1);
  std::uniform_int_distribution<int> nth(1, 40);
  std::vector<std::size_t> chosen;
  for (int i = n_crash(rng); i > 0; --i) {
    const std::size_t site = pick(rng);
    bool dup = false;
    for (const std::size_t c : chosen) dup = dup || c == site;
    if (dup) continue;
    chosen.push_back(site);
    s.armed.emplace_back(crash[site], "once@" + std::to_string(nth(rng)));
  }
  // Disk pressure degrades (the service opts into degrade_on_disk_full), so
  // a probability mode is safe: it can never fail the job.
  std::uniform_int_distribution<int> pct(0, 99);
  if (pct(rng) < 40) {
    const bool always = pct(rng) < 25;
    s.armed.emplace_back("checkpoint.write.enospc", always ? "1in1" : "0.4");
  }
  if (pct(rng) < 20) {
    s.armed.emplace_back("serve.executor.exception", "once");
    s.exception_armed = true;
  }
  for (const auto& [site, mode] : s.armed) {
    util::failpoint_arm(site, mode, rng());
  }
  return s;
}

TEST(Chaos, RandomizedScheduleSweepPreservesEveryInvariant) {
  const std::uint64_t seed = chaos_seed();
  const int schedules = chaos_schedules();
  std::printf("[chaos] NETSEL_CHAOS_SEED=%llu NETSEL_CHAOS_SCHEDULES=%d\n",
              static_cast<unsigned long long>(seed), schedules);
  ::testing::Test::RecordProperty("chaos_seed", std::to_string(seed));
  const std::string reference = clean_reference();

  for (int i = 0; i < schedules; ++i) {
    std::mt19937_64 rng(seed + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
    const util::FailpointScope guard;  // schedule boundary: disarm everything
    const Schedule schedule = arm_random_schedule(rng);
    SCOPED_TRACE("schedule " + std::to_string(i) + ": " + schedule.describe());

    const fs::path dir = scratch_dir("sweep_" + std::to_string(i));
    ServiceConfig cfg;
    cfg.state_dir = dir.string();
    cfg.executors = 1;
    cfg.lanes = 2;
    cfg.checkpoint_every = 20;
    cfg.max_attempts = 4;  // absorbs every one-shot crash site armed above
    std::vector<std::string> events;
    std::mutex events_mutex;
    JobService service(cfg, [&](const std::string& line) {
      const std::lock_guard<std::mutex> lock(events_mutex);
      events.push_back(line);
    });
    service.start();
    service.handle_line(
        R"({"type": "submit", "id": "chaos", "setting": "setting1",)"
        R"( "horizon": )" +
        std::to_string(kHorizon) + R"(, "runs": )" + std::to_string(kRuns) +
        "}");
    service.wait_idle();  // invariant 1: terminates

    const auto job = service.find_job("chaos");
    ASSERT_NE(job, nullptr);
    // Invariant 2: terminal disposition, always.
    ASSERT_TRUE(job->state == JobState::kCompleted ||
                job->state == JobState::kFailed)
        << job_state_name(job->state);
    if (job->state == JobState::kCompleted) {
      // Invariant 3: byte-identical summary — no torn checkpoint restored,
      // no fault perturbed the trajectory.
      EXPECT_EQ(job->summary_json, reference);
    } else {
      // Invariant 4: only the executor-exception site may fail this job;
      // the crash one-shots are within the retry budget by construction.
      EXPECT_TRUE(schedule.exception_armed)
          << "job failed with no fault licensed to fail it: " << job->error;
      EXPECT_NE(job->error.find("injected serve.executor.exception"),
                std::string::npos)
          << job->error;
    }
    EXPECT_TRUE(fs::exists(dir / "jobs" / "chaos" / "result.json"))
        << "terminal disposition must be durable";
  }
}

TEST(Chaos, DrainUnderFaultsAlwaysTerminatesAndResumesIdentically) {
  const std::uint64_t seed = chaos_seed() ^ 0xd1a7a1deadbeef11ULL;
  std::printf("[chaos] drain seed=%llu\n",
              static_cast<unsigned long long>(seed));
  const std::string reference = clean_reference();
  std::mt19937_64 rng(seed);

  for (int i = 0; i < 5; ++i) {
    const util::FailpointScope guard;
    const fs::path dir = scratch_dir("drain_" + std::to_string(i));
    std::string disposition;
    {
      std::mt19937_64 schedule_rng(rng());
      const Schedule schedule = arm_random_schedule(schedule_rng);
      SCOPED_TRACE("drain schedule " + std::to_string(i) + ": " +
                   schedule.describe());
      std::atomic<bool> reached{false};
      ServiceConfig cfg;
      cfg.state_dir = dir.string();
      cfg.executors = 1;
      cfg.lanes = 2;
      cfg.checkpoint_every = 20;
      cfg.max_attempts = 4;
      cfg.fault_hook = [&reached](int run, Slot slot) {
        if (run == 0 && slot == 60) reached.store(true);
      };
      JobService service(cfg, [](const std::string&) {});
      service.start();
      service.handle_line(
          R"({"type": "submit", "id": "dr", "setting": "setting1",)"
          R"( "horizon": )" +
          std::to_string(kHorizon) + R"(, "runs": )" + std::to_string(kRuns) +
          "}");
      // The job may finish before the gate under some schedules (a crashed
      // first attempt can skip slot 60 timing); don't spin forever.
      for (int spins = 0; spins < 5000 && !reached.load(); ++spins) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      service.drain();  // invariant: drain terminates under any schedule
      const auto job = service.find_job("dr");
      ASSERT_NE(job, nullptr);
      disposition = job_state_name(job->state);
    }
    util::failpoint_disarm_all();  // the restart below runs fault-free
    if (disposition == "interrupted" || disposition == "queued") {
      ServiceConfig cfg;
      cfg.state_dir = dir.string();
      cfg.executors = 1;
      cfg.lanes = 2;
      cfg.checkpoint_every = 20;
      JobService service(cfg, [](const std::string&) {});
      service.start();
      service.wait_idle();
      const auto job = service.find_job("dr");
      ASSERT_NE(job, nullptr) << "unfinished job must be requeued";
      ASSERT_EQ(job->state, JobState::kCompleted);
      EXPECT_EQ(job->summary_json, reference)
          << "resume across drain + faults must not fork the trajectory";
    }
  }
}

/// Clean summary for an arbitrary (horizon, runs) job, nothing armed.
std::string clean_summary(Slot horizon, int runs) {
  EXPECT_FALSE(util::failpoints_armed());
  exp::SettingParams params;
  params.horizon = horizon;
  auto cfg = exp::make_setting("setting1", params);
  cfg.world.shards = exp::world_shards(cfg.world.shards);
  const auto batch = exp::run_many_result(cfg, runs, 2);
  EXPECT_TRUE(batch.all_completed());
  std::vector<metrics::RunResult> results;
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.completed[i]) results.push_back(batch.results[i]);
  }
  return summary_json(cfg, results);
}

/// Preemption and load shedding under randomized fault schedules. Every
/// schedule arms `runner.preempt.flush` (the preemption checkpoint flush
/// crashes) on top of a random crash-site draw, then forces the full
/// overload dance: a held low-priority job, a high-priority preemptor, and
/// a queued job whose deadline expires against the busy executor. The
/// chaos invariants extend naturally: shedding is terminal and durable,
/// preempt-resume completions stay byte-identical, and a crashed
/// preemption flush is just one more absorbed attempt.
TEST(Chaos, PreemptionAndSheddingUnderFaultsPreserveEveryInvariant) {
  const std::uint64_t seed = chaos_seed() ^ 0x9fe3a11dc0ffee42ULL;
  std::printf("[chaos] preempt seed=%llu\n",
              static_cast<unsigned long long>(seed));
  const std::string low_reference = clean_reference();
  const std::string high_reference = clean_summary(60, 1);
  std::mt19937_64 rng(seed);

  for (int i = 0; i < 6; ++i) {
    const util::FailpointScope guard;
    std::mt19937_64 schedule_rng(rng());
    Schedule schedule = arm_random_schedule(schedule_rng);
    util::failpoint_arm("runner.preempt.flush", "once", schedule_rng());
    schedule.armed.emplace_back("runner.preempt.flush", "once");
    SCOPED_TRACE("preempt schedule " + std::to_string(i) + ": " +
                 schedule.describe());

    const fs::path dir = scratch_dir("preempt_" + std::to_string(i));
    std::atomic<bool> first{false};
    std::atomic<bool> gate{false};
    ServiceConfig cfg;
    cfg.state_dir = dir.string();
    cfg.executors = 1;
    cfg.lanes = 2;
    cfg.checkpoint_every = 20;
    // Absorbs the 3-crash worst case of arm_random_schedule PLUS the
    // preemption-flush crash landing on the same run.
    cfg.max_attempts = 5;
    // Pin whichever job reaches an executor first, so the queue is
    // demonstrably backed up when the preemptor and the doomed job arrive.
    cfg.fault_hook = [&](int, Slot) {
      if (!first.exchange(true)) {
        while (!gate.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    };
    JobService service(cfg, [](const std::string&) {});
    service.start();
    service.handle_line(
        R"({"type": "submit", "id": "low", "setting": "setting1",)"
        R"( "horizon": )" +
        std::to_string(kHorizon) + R"(, "runs": )" + std::to_string(kRuns) +
        "}");
    for (int spins = 0; spins < 5000 && !first.load(); ++spins) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.handle_line(
        R"({"type": "submit", "id": "high", "setting": "setting1",)"
        R"( "horizon": 60, "priority": 5})");
    service.handle_line(
        R"({"type": "submit", "id": "doomed", "setting": "setting1",)"
        R"( "horizon": 60, "deadline_s": 0.02})");
    // The governor must shed "doomed" while the executor is still pinned —
    // it can never reach a lane before its 20 ms budget expires.
    const auto doomed = service.find_job("doomed");
    ASSERT_NE(doomed, nullptr);
    for (int spins = 0; spins < 5000 && doomed->state != JobState::kFailed;
         ++spins) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(doomed->state, JobState::kFailed);
    EXPECT_EQ(doomed->failure_reason, "deadline");
    gate.store(true);
    service.wait_idle();  // invariant 1: terminates

    for (const char* id : {"low", "high"}) {
      const auto job = service.find_job(id);
      ASSERT_NE(job, nullptr) << id;
      // Invariant 2: terminal disposition, always.
      ASSERT_TRUE(job->state == JobState::kCompleted ||
                  job->state == JobState::kFailed)
          << id << ": " << job_state_name(job->state);
      if (job->state == JobState::kCompleted) {
        // Invariant 3: preemption, resume, and crashed preemption flushes
        // leave no trace in the result bytes.
        EXPECT_EQ(job->summary_json,
                  std::string(id) == "low" ? low_reference : high_reference)
            << id;
      } else {
        // Invariant 4: only the executor-exception site may fail these jobs.
        EXPECT_TRUE(schedule.exception_armed)
            << id << " failed with no fault licensed to fail it: "
            << job->error;
        EXPECT_NE(job->error.find("injected serve.executor.exception"),
                  std::string::npos)
            << job->error;
      }
      EXPECT_TRUE(fs::exists(dir / "jobs" / id / "result.json"))
          << id << ": terminal disposition must be durable";
    }
    EXPECT_TRUE(fs::exists(dir / "jobs" / "doomed" / "result.json"))
        << "a shed job's disposition must be durable";
  }
}

}  // namespace
}  // namespace smartexp3::serve
