#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace smartexp3::stats {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stddev, KnownValues) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({4.0}), 0.0);
  // Sample std-dev of {2,4,4,4,5,5,7,9} = sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, UnsortedInputLeftIntact) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  auto copy = xs;
  EXPECT_DOUBLE_EQ(median(copy), 5.0);
}

TEST(Percentile, Interpolation) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_NEAR(percentile(xs, 25), 17.5, 1e-12);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 105), 2.0);
}

TEST(MinMax, Basics) {
  EXPECT_DOUBLE_EQ(min_of({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(max_of({3.0, -1.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
  EXPECT_DOUBLE_EQ(max_of({}), 0.0);
}

TEST(Jain, PerfectFairnessIsOne) {
  EXPECT_DOUBLE_EQ(jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(Jain, WorstCaseIsOneOverN) {
  EXPECT_NEAR(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(Jain, EmptyAndZeroConventions) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(RunningStat, MatchesBatchStatistics) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStat rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(SeriesAccumulator, ElementwiseMean) {
  SeriesAccumulator acc;
  acc.add({1.0, 2.0, 3.0});
  acc.add({3.0, 2.0, 1.0});
  const auto m = acc.mean();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 2.0);
  EXPECT_DOUBLE_EQ(m[2], 2.0);
  EXPECT_EQ(acc.runs(), 2u);
}

TEST(SeriesAccumulator, RejectsMismatchedLength) {
  SeriesAccumulator acc;
  acc.add({1.0, 2.0});
  EXPECT_THROW(acc.add({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(SeriesAccumulator, EmptyMeanIsEmpty) {
  SeriesAccumulator acc;
  EXPECT_TRUE(acc.mean().empty());
  EXPECT_TRUE(acc.empty());
}

}  // namespace
}  // namespace smartexp3::stats
