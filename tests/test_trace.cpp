#include "trace/synth.hpp"
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace smartexp3::trace {
namespace {

TEST(Synth, FourPairsWithExpectedLength) {
  const auto pairs = all_synthetic_pairs();
  ASSERT_EQ(pairs.size(), 4u);
  for (const auto& p : pairs) {
    EXPECT_TRUE(p.consistent());
    EXPECT_EQ(p.slots(), 100u);
  }
}

TEST(Synth, DeterministicFromSeed) {
  const auto a = synthetic_pair(1);
  const auto b = synthetic_pair(1);
  EXPECT_EQ(a.wifi_mbps, b.wifi_mbps);
  EXPECT_EQ(a.cellular_mbps, b.cellular_mbps);
  SynthOptions other;
  other.seed = 99;
  const auto c = synthetic_pair(1, other);
  EXPECT_NE(a.wifi_mbps, c.wifi_mbps);
}

TEST(Synth, RatesWithinPhysicalBounds) {
  for (const auto& p : all_synthetic_pairs()) {
    for (const double r : p.wifi_mbps) {
      EXPECT_GT(r, 0.0);
      EXPECT_LE(r, 6.5);
    }
    for (const double r : p.cellular_mbps) {
      EXPECT_GT(r, 0.0);
      EXPECT_LE(r, 6.5);
    }
  }
}

TEST(Synth, Pair2CellularStrictlyDominant) {
  // The paper's trace 2 regime: cellular always better than WiFi.
  const auto p = synthetic_pair(2);
  const auto s = summarise(p);
  EXPECT_DOUBLE_EQ(s.cellular_dominance, 1.0);
  EXPECT_EQ(s.crossovers, 0);
}

TEST(Synth, Pairs134HaveCrossovers) {
  for (const int idx : {1, 3, 4}) {
    const auto s = summarise(synthetic_pair(idx));
    EXPECT_GT(s.crossovers, 0) << "pair " << idx;
    EXPECT_LT(s.cellular_dominance, 1.0) << "pair " << idx;
    EXPECT_GT(s.cellular_dominance, 0.0) << "pair " << idx;
  }
}

TEST(Synth, Pair3MostVolatile) {
  const auto s3 = summarise(synthetic_pair(3));
  const auto s2 = summarise(synthetic_pair(2));
  EXPECT_GT(s3.crossovers, s2.crossovers);
}

TEST(Synth, InvalidIndexThrows) {
  EXPECT_THROW(synthetic_pair(0), std::invalid_argument);
  EXPECT_THROW(synthetic_pair(5), std::invalid_argument);
}

TEST(TraceCsv, RoundTrip) {
  const auto original = synthetic_pair(4);
  const auto path = std::filesystem::temp_directory_path() / "smartexp3_trace_test.csv";
  save_csv(original, path.string());
  const auto loaded = load_csv(path.string());
  ASSERT_EQ(loaded.slots(), original.slots());
  for (std::size_t i = 0; i < original.slots(); ++i) {
    EXPECT_NEAR(loaded.wifi_mbps[i], original.wifi_mbps[i], 1e-4);
    EXPECT_NEAR(loaded.cellular_mbps[i], original.cellular_mbps[i], 1e-4);
  }
  std::filesystem::remove(path);
}

TEST(TraceCsv, LoadRejectsMissingFile) {
  EXPECT_THROW(load_csv("/nonexistent/path/trace.csv"), std::runtime_error);
}

TEST(TraceCsv, LoadRejectsMalformedRows) {
  const auto path = std::filesystem::temp_directory_path() / "smartexp3_bad_trace.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("slot,wifi_mbps,cellular_mbps\n0,1.5\n", f);  // missing column
    std::fclose(f);
  }
  EXPECT_THROW(load_csv(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceCsv, LoadRejectsNonNumeric) {
  const auto path = std::filesystem::temp_directory_path() / "smartexp3_nan_trace.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("slot,wifi_mbps,cellular_mbps\n0,abc,2.0\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_csv(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Summarise, HandlesEmptyAndInconsistent) {
  TracePair empty;
  const auto s = summarise(empty);
  EXPECT_DOUBLE_EQ(s.wifi_mean, 0.0);
  TracePair bad;
  bad.wifi_mbps = {1.0};
  const auto s2 = summarise(bad);
  EXPECT_DOUBLE_EQ(s2.cellular_mean, 0.0);
}

TEST(Summarise, CountsCrossoversExactly) {
  TracePair p;
  p.wifi_mbps = {1, 1, 1, 1};
  p.cellular_mbps = {2, 0.5, 2, 2};  // leads: C, W, C, C -> 2 crossovers
  const auto s = summarise(p);
  EXPECT_EQ(s.crossovers, 2);
  EXPECT_DOUBLE_EQ(s.cellular_dominance, 0.75);
}

}  // namespace
}  // namespace smartexp3::trace
