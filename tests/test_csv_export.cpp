#include "exp/csv_export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/runner.hpp"
#include "exp/settings.hpp"

namespace smartexp3::exp {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::filesystem::path tmp(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(CsvExport, SeriesColumns) {
  const auto path = tmp("smartexp3_series.csv");
  write_series_csv(path.string(), {"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}});
  const auto content = slurp(path);
  EXPECT_NE(content.find("slot,a,b"), std::string::npos);
  EXPECT_NE(content.find("0,1,3"), std::string::npos);
  EXPECT_NE(content.find("1,2,4"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CsvExport, SeriesRejectsRaggedInput) {
  const auto path = tmp("smartexp3_ragged.csv");
  EXPECT_THROW(write_series_csv(path.string(), {"a", "b"}, {{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(write_series_csv(path.string(), {"a"}, {{1.0}, {2.0}}),
               std::invalid_argument);
}

TEST(CsvExport, SeriesRejectsUnwritablePath) {
  EXPECT_THROW(write_series_csv("/nonexistent/dir/x.csv", {"a"}, {{1.0}}),
               std::runtime_error);
}

TEST(CsvExport, RunsRoundTripShape) {
  auto cfg = static_setting1("greedy", /*n_devices=*/4, /*horizon=*/30);
  cfg.delay = DelayKind::kZero;
  const auto runs = run_many(cfg, 3);
  const auto path = tmp("smartexp3_runs.csv");
  write_runs_csv(path.string(), runs);
  const auto content = slurp(path);
  // Header + 3 runs x 4 devices = 13 lines.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 13);
  EXPECT_NE(content.find("run,device,download_mb"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CsvExport, SelectionsRequireTimeline) {
  auto cfg = static_setting1("greedy", 2, 10);
  cfg.delay = DelayKind::kZero;
  const auto run = run_once(cfg, 1);
  EXPECT_THROW(write_selections_csv(tmp("x.csv").string(), run),
               std::invalid_argument);

  cfg.recorder.track_selections = true;
  const auto tracked = run_once(cfg, 1);
  const auto path = tmp("smartexp3_sel.csv");
  write_selections_csv(path.string(), tracked);
  const auto content = slurp(path);
  // Header + 2 devices x 10 slots.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 21);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace smartexp3::exp
