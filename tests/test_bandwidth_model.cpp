#include "netsim/bandwidth_model.hpp"

#include <gtest/gtest.h>

namespace smartexp3::netsim {
namespace {

TEST(EqualShare, DividesCapacity) {
  EqualShareModel model;
  stats::Rng rng(1);
  const auto net = make_wifi(0, 22.0);
  EXPECT_DOUBLE_EQ(model.rate(net, 1, 0, 0, rng), 22.0);
  EXPECT_DOUBLE_EQ(model.rate(net, 11, 0, 0, rng), 2.0);
}

TEST(EqualShare, FairShareMatchesRate) {
  EqualShareModel model;
  const auto net = make_wifi(0, 10.0);
  EXPECT_DOUBLE_EQ(model.fair_share(net, 4, 0), 2.5);
  EXPECT_DOUBLE_EQ(model.fair_share(net, 0, 0), 10.0);
}

TEST(EqualShare, TraceDrivenCapacityFlowsThrough) {
  EqualShareModel model;
  stats::Rng rng(1);
  auto net = make_wifi(0, 5.0);
  net.trace = {4.0, 8.0};
  EXPECT_DOUBLE_EQ(model.rate(net, 2, 0, 0, rng), 2.0);
  EXPECT_DOUBLE_EQ(model.rate(net, 2, 0, 1, rng), 4.0);
}

TEST(NoisyShare, DeviceMultipliersPersistAndAverageToOne) {
  NoisyShareModel::Params p;
  p.device_sigma = 0.2;
  p.seed = 9;
  NoisyShareModel model(p);
  // Multiplier for a device is fixed across queries.
  const double m0 = model.device_multiplier(0);
  EXPECT_DOUBLE_EQ(model.device_multiplier(0), m0);
  // Across many devices, multipliers are mean ~1 (normalised lognormal).
  double sum = 0.0;
  const int n = 20000;
  for (int d = 0; d < n; ++d) sum += model.device_multiplier(d);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(NoisyShare, RatesFluctuateAroundFairShare) {
  // device_sigma = 0 keeps the long-run mean out of the hands of the single
  // per-device multiplier draw (one LogNormal variate that scales every
  // rate); what remains is the mean-1 AR(1) slot noise plus dip episodes.
  NoisyShareModel::Params params;
  params.device_sigma = 0.0;
  NoisyShareModel model(params);
  stats::Rng rng(5);
  const auto net = make_wifi(0, 20.0);
  double sum = 0.0;
  const int n = 20000;
  for (int t = 0; t < n; ++t) {
    model.begin_slot(t, rng);
    const double r = model.rate(net, 4, 1, t, rng);
    ASSERT_GE(r, 0.0);
    sum += r;
  }
  // Mean close to the 5 Mbps fair share (dip episodes pull it down a bit).
  EXPECT_NEAR(sum / n, 4.8, 0.6);
}

TEST(NoisyShare, NoiseIsTimeCorrelated) {
  NoisyShareModel::Params p;
  p.noise_rho = 0.95;
  p.noise_sigma = 0.2;
  p.dip_probability = 0.0;
  p.device_sigma = 0.0;
  NoisyShareModel model(p);
  stats::Rng rng(6);
  const auto net = make_wifi(0, 10.0);
  // Lag-1 autocorrelation of the observed rate should be clearly positive.
  std::vector<double> rates;
  for (int t = 0; t < 5000; ++t) {
    model.begin_slot(t, rng);
    rates.push_back(model.rate(net, 1, 0, t, rng));
  }
  double mean = 0.0;
  for (const double r : rates) mean += r;
  mean /= static_cast<double>(rates.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i + 1 < rates.size(); ++i) {
    num += (rates[i] - mean) * (rates[i + 1] - mean);
    den += (rates[i] - mean) * (rates[i] - mean);
  }
  EXPECT_GT(num / den, 0.6);
}

TEST(NoisyShare, DipsReduceRate) {
  NoisyShareModel::Params p;
  p.dip_probability = 1.0;   // a dip starts immediately...
  p.dip_persistence = 1.0;   // ...and never ends
  p.dip_depth = 0.3;
  p.noise_sigma = 0.0;
  p.device_sigma = 0.0;
  NoisyShareModel model(p);
  stats::Rng rng(7);
  const auto net = make_wifi(0, 10.0);
  model.begin_slot(0, rng);  // arms the dip for slot 1's state
  model.rate(net, 1, 0, 0, rng);  // materialise the network state
  model.begin_slot(1, rng);
  EXPECT_NEAR(model.rate(net, 1, 0, 1, rng), 3.0, 1e-9);
}

TEST(NoisyShare, FairShareIsNoiseFree) {
  NoisyShareModel model;
  const auto net = make_wifi(0, 12.0);
  EXPECT_DOUBLE_EQ(model.fair_share(net, 3, 0), 4.0);
}

}  // namespace
}  // namespace smartexp3::netsim
