#include "exp/settings.hpp"

#include <gtest/gtest.h>

#include "exp/aggregate.hpp"
#include "exp/runner.hpp"
#include "trace/synth.hpp"

namespace smartexp3::exp {
namespace {

TEST(Settings, Setting1Shape) {
  const auto cfg = static_setting1("smart_exp3");
  EXPECT_EQ(cfg.networks.size(), 3u);
  EXPECT_EQ(cfg.devices.size(), 20u);
  EXPECT_EQ(cfg.world.horizon, 1200);
  EXPECT_DOUBLE_EQ(cfg.aggregate_capacity(), 33.0);
  EXPECT_EQ(cfg.capacities(), (std::vector<double>{4.0, 7.0, 22.0}));
  for (const auto& d : cfg.devices) EXPECT_EQ(d.policy_name, "smart_exp3");
}

TEST(Settings, Setting2UniformRates) {
  const auto cfg = static_setting2("exp3");
  EXPECT_EQ(cfg.capacities(), (std::vector<double>{11.0, 11.0, 11.0}));
  EXPECT_DOUBLE_EQ(cfg.aggregate_capacity(), 33.0);
}

TEST(Settings, DynamicJoinSchedule) {
  const auto cfg = dynamic_join_setting("smart_exp3");
  int transient = 0;
  for (const auto& d : cfg.devices) {
    if (d.join_slot == 400) {
      ++transient;
      EXPECT_EQ(d.leave_slot, 800);
    } else {
      EXPECT_EQ(d.join_slot, 0);
      EXPECT_EQ(d.leave_slot, -1);
    }
  }
  EXPECT_EQ(transient, 9);
}

TEST(Settings, DynamicLeaveSchedule) {
  const auto cfg = dynamic_leave_setting("greedy");
  int leavers = 0;
  for (const auto& d : cfg.devices) leavers += d.leave_slot == 600 ? 1 : 0;
  EXPECT_EQ(leavers, 16);
}

TEST(Settings, MobilityAreasAndMoves) {
  const auto cfg = mobility_setting("smart_exp3");
  EXPECT_EQ(cfg.networks.size(), 5u);
  EXPECT_EQ(cfg.devices.size(), 20u);
  EXPECT_EQ(cfg.scenario.moves.size(), 16u);  // 8 movers x 2 moves
  // Network 0 is the cellular macro cell covering everything.
  EXPECT_TRUE(cfg.networks[0].areas.empty());
  EXPECT_EQ(cfg.networks[0].type, netsim::NetworkType::kCellular);
  // Groups: movers + 3 stationary clusters.
  EXPECT_EQ(cfg.recorder.groups.size(), 4u);
  EXPECT_EQ(cfg.recorder.groups[0].size(), 8u);
}

TEST(Settings, MobilityEveryAreaHasAtLeastTwoNetworks) {
  const auto cfg = mobility_setting("smart_exp3");
  for (int area = 0; area < 3; ++area) {
    EXPECT_GE(netsim::visible_networks(cfg.networks, area).size(), 2u) << area;
  }
}

TEST(Settings, GreedyMixCounts) {
  const auto cfg = greedy_mix_setting(10);
  int smart = 0;
  int greedy = 0;
  for (const auto& d : cfg.devices) {
    smart += d.policy_name == "smart_exp3" ? 1 : 0;
    greedy += d.policy_name == "greedy" ? 1 : 0;
  }
  EXPECT_EQ(smart, 10);
  EXPECT_EQ(greedy, 10);
  EXPECT_THROW(greedy_mix_setting(25), std::invalid_argument);
}

TEST(Settings, ScalabilityShapes) {
  for (const int k : {3, 5, 7}) {
    const auto cfg = scalability_setting("smart_exp3_noreset", k, 20);
    EXPECT_EQ(cfg.networks.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(cfg.world.horizon, 8640);
  }
  for (const int n : {20, 40, 80}) {
    const auto cfg = scalability_setting("smart_exp3_noreset", 3, n);
    EXPECT_EQ(cfg.devices.size(), static_cast<std::size_t>(n));
  }
  EXPECT_THROW(scalability_setting("smart_exp3", 8, 20), std::invalid_argument);
}

TEST(Settings, TraceSettingWiresTraces) {
  const auto pair = trace::synthetic_pair(1);
  const auto cfg = trace_setting(pair, "smart_exp3");
  EXPECT_EQ(cfg.devices.size(), 1u);
  EXPECT_EQ(cfg.networks.size(), 2u);
  EXPECT_EQ(cfg.world.horizon, 100);
  EXPECT_EQ(cfg.networks[0].trace, pair.wifi_mbps);
  EXPECT_EQ(cfg.networks[1].trace, pair.cellular_mbps);
  EXPECT_TRUE(cfg.recorder.track_selections);
}

TEST(Settings, TraceSettingRejectsBadPairs) {
  trace::TracePair bad;
  bad.wifi_mbps = {1.0, 2.0};
  bad.cellular_mbps = {1.0};
  EXPECT_THROW(trace_setting(bad, "greedy"), std::invalid_argument);
}

TEST(Settings, ControlledSettingNoisyShare) {
  const auto cfg = controlled_setting({"smart_exp3"});
  EXPECT_EQ(cfg.devices.size(), 14u);
  EXPECT_EQ(cfg.world.horizon, 480);
  EXPECT_EQ(cfg.share, ShareKind::kNoisy);
  EXPECT_TRUE(cfg.recorder.track_def4);
}

TEST(Settings, ControlledSettingPerDevicePolicies) {
  std::vector<std::string> mix(14, "greedy");
  for (int i = 0; i < 7; ++i) mix[static_cast<std::size_t>(i)] = "smart_exp3";
  const auto cfg = controlled_setting(mix);
  int smart = 0;
  for (const auto& d : cfg.devices) smart += d.policy_name == "smart_exp3" ? 1 : 0;
  EXPECT_EQ(smart, 7);
  EXPECT_THROW(controlled_setting({"a", "b"}), std::invalid_argument);
}

TEST(Settings, ControlledDynamicLeavers) {
  const auto cfg = controlled_dynamic_setting("greedy");
  int leavers = 0;
  for (const auto& d : cfg.devices) leavers += d.leave_slot == 240 ? 1 : 0;
  EXPECT_EQ(leavers, 9);
}

TEST(Settings, ChannelSelectionShape) {
  const auto cfg = channel_selection_setting("smart_exp3");
  EXPECT_EQ(cfg.networks.size(), 3u);
  for (const auto& net : cfg.networks) {
    EXPECT_DOUBLE_EQ(net.base_capacity_mbps, 54.0);
    EXPECT_EQ(net.type, netsim::NetworkType::kWifi);
  }
  EXPECT_EQ(cfg.devices.size(), 12u);
  EXPECT_EQ(cfg.delay, DelayKind::kFixed);
  EXPECT_DOUBLE_EQ(cfg.fixed_delay_wifi_s, 0.25);
  EXPECT_THROW(channel_selection_setting("smart_exp3", 0), std::invalid_argument);
}

TEST(Settings, ChannelSelectionEquilibriumIsEvenSplit) {
  // 12 APs over 3 equal channels: smart devices should spread 4/4/4 most of
  // the time.
  auto cfg = channel_selection_setting("smart_exp3");
  const auto runs = run_many(cfg, 6);
  EXPECT_GT(mean_eps_fraction(runs), 0.3);
}

TEST(Settings, WithPolicyOverridesAll) {
  auto cfg = static_setting1("exp3");
  cfg.with_policy("greedy");
  for (const auto& d : cfg.devices) EXPECT_EQ(d.policy_name, "greedy");
}

}  // namespace
}  // namespace smartexp3::exp
