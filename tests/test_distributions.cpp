#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/summary.hpp"

namespace smartexp3::stats {
namespace {

TEST(JohnsonSU, EmpiricalMeanMatchesClosedForm) {
  JohnsonSU d{-2.0, 2.0, 0.5, 1.0};
  Rng rng(1);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.02);
}

TEST(JohnsonSU, StandardParamsGiveSinhNormal) {
  // gamma=0, delta=1, xi=0, lambda=1: X = sinh(Z), symmetric around 0.
  JohnsonSU d{0.0, 1.0, 0.0, 1.0};
  Rng rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(d.mean(), 0.0, 1e-12);
}

TEST(JohnsonSU, NegativeGammaSkewsRight) {
  JohnsonSU d{-2.0, 2.0, 0.0, 1.0};
  EXPECT_GT(d.mean(), 0.0);
}

TEST(StudentT, LocationRecovered) {
  StudentT d{5.0, 7.0, 1.0};
  Rng rng(3);
  std::vector<double> xs;
  const int n = 200000;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(d.sample(rng));
  // Mean of t with nu > 1 equals loc; use median too (robust to tails).
  EXPECT_NEAR(mean(xs), 7.0, 0.05);
  EXPECT_NEAR(median(xs), 7.0, 0.05);
}

TEST(StudentT, HeavierTailsThanNormal) {
  StudentT t{3.0, 0.0, 1.0};
  Rng rng(4);
  int t_extreme = 0;
  int z_extreme = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(t.sample(rng)) > 4.0) ++t_extreme;
    if (std::abs(rng.normal()) > 4.0) ++z_extreme;
  }
  EXPECT_GT(t_extreme, 10 * (z_extreme + 1));
}

TEST(StudentT, ScaleStretches) {
  StudentT narrow{8.0, 0.0, 0.5};
  StudentT wide{8.0, 0.0, 2.0};
  Rng rng(5);
  double ss_narrow = 0.0;
  double ss_wide = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double a = narrow.sample(rng);
    const double b = wide.sample(rng);
    ss_narrow += a * a;
    ss_wide += b * b;
  }
  EXPECT_GT(ss_wide, 8.0 * ss_narrow);
}

TEST(LogNormal, MeanMatchesClosedForm) {
  LogNormal d{0.3, 0.4};
  Rng rng(6);
  double sum = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.01 * d.mean());
}

TEST(LogNormal, AlwaysPositive) {
  LogNormal d{-1.0, 1.0};
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(d.sample(rng), 0.0);
  }
}

TEST(Gamma, MeanIsShapeTimesScale) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += sample_gamma(rng, 2.5, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Gamma, ShapeBelowOneSupported) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_gamma(rng, 0.5, 3.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Gamma, ShapeWellBelowOneMeanAndVariance) {
  // The U^(1/shape) boost (applied iteratively, not recursively) must keep
  // both first moments right even deep below shape 1, where the density
  // has an integrable singularity at 0: mean = k*theta, var = k*theta^2.
  Rng rng(13);
  const double shape = 0.1;
  const double scale = 2.0;
  const int n = 400000;
  std::vector<double> xs(n);
  double sum = 0.0;
  for (auto& x : xs) {
    x = sample_gamma(rng, shape, scale);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  const double mean_hat = sum / n;
  double var_hat = 0.0;
  for (const double x : xs) var_hat += (x - mean_hat) * (x - mean_hat);
  var_hat /= n;
  EXPECT_NEAR(mean_hat, shape * scale, 0.01);
  EXPECT_NEAR(var_hat, shape * scale * scale, 0.05);
}

TEST(Gamma, BoostConsumesOneUniformBeforeMainLoop) {
  // Draw order of the shape < 1 path is pinned: one uniform for the boost,
  // then the Marsaglia–Tsang loop for shape + 1. Composing the two halves
  // by hand on a fresh stream must reproduce the combined sampler exactly.
  Rng combined(17);
  Rng manual(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = sample_gamma(combined, 0.3, 1.5);
    const double u = std::max(manual.uniform(), 1e-300);
    const double y = sample_gamma(manual, 1.3, 1.5) * std::pow(u, 1.0 / 0.3);
    ASSERT_DOUBLE_EQ(x, y) << "draw " << i;
  }
}

TEST(ClampDelay, Clamps) {
  EXPECT_DOUBLE_EQ(clamp_delay(-1.0, 14.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp_delay(3.0, 14.0), 3.0);
  EXPECT_DOUBLE_EQ(clamp_delay(99.0, 14.0), 14.0);
}

// The calibration promise in DESIGN.md: WiFi delays mean ~1.9 s, cellular
// ~5 s, all below the 15 s slot.
TEST(DelayCalibration, WifiJohnsonSUInRange) {
  JohnsonSU wifi{-2.0, 2.0, 0.5, 1.0};
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double d = clamp_delay(wifi.sample(rng), 14.0);
    ASSERT_GE(d, 0.0);
    ASSERT_LE(d, 14.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 1.9, 0.3);
}

TEST(DelayCalibration, CellularStudentTInRange) {
  StudentT cell{4.0, 5.0, 1.2};
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double d = clamp_delay(cell.sample(rng), 14.0);
    ASSERT_GE(d, 0.0);
    ASSERT_LE(d, 14.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.4);
}

}  // namespace
}  // namespace smartexp3::stats
