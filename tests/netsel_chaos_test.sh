#!/bin/sh
# Process-level chaos tests: real netsel_serve processes under injected
# faults (NETSEL_FAILPOINTS / the "inject" request), complementing the
# in-process randomized sweep in test_chaos.cpp:
#   1. a crash-riddled schedule (attempt crashes, checkpoint write failures,
#      probabilistic ENOSPC) still yields a summary byte-identical to the
#      clean reference run;
#   2. guaranteed disk pressure degrades checkpointing with a "degraded"
#      event and the job still completes identically;
#   3. SIGKILL mid-run with a torn-rename fault armed: the restarted server
#      must fall back past the torn checkpoint and finish bit-identically —
#      no torn checkpoint is ever loaded;
#   4. poison-job quarantine: a job that aborts the server on every attempt
#      is quarantined after --max-job-attempts crashes, exactly once;
#   5. socket transport: runtime "inject" arming, 1-byte short reads on the
#      wire, and a drain that always terminates under active faults.
# Run by ctest as `netsel_chaos_test.sh <netsel_serve> [seed]`. The seed
# feeds NETSEL_FAILPOINT_SEED; CI's randomized step passes one and logs it.
set -u

SERVE=${1:?usage: netsel_chaos_test.sh <netsel_serve> [seed]}
SEED=${2:-20260808}
echo "netsel_chaos_test: NETSEL_FAILPOINT_SEED=$SEED"
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT
failures=0

fail() {
    echo "FAIL: $1" >&2
    failures=$((failures + 1))
}

# wait_for <file> <needle> <seconds>
wait_for() {
    _i=0
    while [ "$_i" -lt $((10 * $3)) ]; do
        grep -q -- "$2" "$1" 2>/dev/null && return 0
        sleep 0.1
        _i=$((_i + 1))
    done
    return 1
}

extract_summary() {
    grep '"event": "completed"' "$1" | grep "\"job\": \"$2\"" |
        sed 's/.*"summary": //; s/, "timing".*//'
}

JOB='{"type": "submit", "id": "chaos", "setting": "setting1", "horizon": 240, "runs": 2}'

# --- reference: the same job served with nothing armed --------------------
printf '%s\n' "$JOB" |
    "$SERVE" --stdin --state-dir "$WORK/state_ref" --checkpoint-every 25 \
        >"$WORK/ref.out" 2>&1 || fail "reference serve run failed"
REF_SUMMARY=$(extract_summary "$WORK/ref.out" chaos)
[ -n "$REF_SUMMARY" ] || fail "reference run produced no summary"

# --- 1. crash-riddled schedule, byte-identical result ---------------------
# Three one-shot crash sites (each costs one run attempt; --max-attempts 4
# absorbs them all even if one run takes every hit) plus probabilistic disk
# pressure, which only ever degrades.
printf '%s\n' "$JOB" |
    NETSEL_FAILPOINTS="runner.attempt.crash=once@40,checkpoint.write.fail=once,checkpoint.write.short=once@3,checkpoint.write.enospc=0.3" \
    NETSEL_FAILPOINT_SEED="$SEED" \
    "$SERVE" --stdin --state-dir "$WORK/state_chaos" --checkpoint-every 25 \
        --max-attempts 4 >"$WORK/chaos.out" 2>&1 ||
    fail "chaos serve run exited nonzero"
CHAOS_SUMMARY=$(extract_summary "$WORK/chaos.out" chaos)
if [ -z "$CHAOS_SUMMARY" ]; then
    fail "chaos run did not complete: $(tail -3 "$WORK/chaos.out")"
elif [ "$CHAOS_SUMMARY" != "$REF_SUMMARY" ]; then
    fail "chaos summary differs from clean reference:
  reference: $REF_SUMMARY
  chaos:     $CHAOS_SUMMARY"
fi

# --- 2. guaranteed disk pressure: degrade, don't die ----------------------
printf '%s\n' "$JOB" |
    NETSEL_FAILPOINTS="checkpoint.write.enospc=1in1" \
    "$SERVE" --stdin --state-dir "$WORK/state_degraded" --checkpoint-every 25 \
        >"$WORK/degraded.out" 2>&1 ||
    fail "degraded serve run exited nonzero"
grep -q '"event": "degraded".*"reason": "disk_pressure"' "$WORK/degraded.out" ||
    fail "no degraded event under guaranteed ENOSPC"
DEGRADED_SUMMARY=$(extract_summary "$WORK/degraded.out" chaos)
[ "$DEGRADED_SUMMARY" = "$REF_SUMMARY" ] ||
    fail "degraded-mode summary differs from clean reference"

# --- 3. SIGKILL with a torn rename armed: resume never loads torn bytes ---
# The torn-rename one-shot publishes garbage under a real checkpoint name on
# the 2nd checkpoint write. Big job so the SIGKILL lands mid-run.
BIGJOB='{"type": "submit", "id": "big", "setting": "scalability", "devices": 2000, "runs": 2}'
printf '%s\n' "$BIGJOB" |
    "$SERVE" --stdin --state-dir "$WORK/state_bigref" --checkpoint-every 100 \
        >"$WORK/bigref.out" 2>&1 || fail "big reference run failed"
BIG_REF=$(extract_summary "$WORK/bigref.out" big)
[ -n "$BIG_REF" ] || fail "big reference run produced no summary"

SOCK="$WORK/chaos.sock"
NETSEL_FAILPOINTS="checkpoint.rename.torn=once@2" \
    "$SERVE" --socket "$SOCK" --state-dir "$WORK/state_kill" \
        --checkpoint-every 100 --max-attempts 4 \
        >"$WORK/kill.out" 2>&1 &
SERVER_PID=$!
wait_for "$WORK/kill.out" '"event": "serving"' 10 || fail "kill-server did not start"
printf '%s\n' "$BIGJOB" | "$SERVE" --connect "$SOCK" >/dev/null 2>&1 &
CLIENT_PID=$!
wait_for "$WORK/kill.out" '"event": "checkpointed", "job": "big"' 60 ||
    fail "big job never checkpointed under faults"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
wait "$CLIENT_PID" 2>/dev/null
# Restart clean: recovery must skip any torn residue and finish identically.
"$SERVE" --stdin --state-dir "$WORK/state_kill" --checkpoint-every 100 \
    </dev/null >"$WORK/kill_resume.out" 2>&1 ||
    fail "post-SIGKILL restart exited nonzero"
KILL_SUMMARY=$(extract_summary "$WORK/kill_resume.out" big)
if [ -z "$KILL_SUMMARY" ]; then
    fail "resumed job after SIGKILL+torn-checkpoint produced no summary"
elif [ "$KILL_SUMMARY" != "$BIG_REF" ]; then
    fail "torn checkpoint corrupted the resumed trajectory:
  reference: $BIG_REF
  resumed:   $KILL_SUMMARY"
fi

# --- 4. poison-job quarantine across real server crashes ------------------
QSTATE="$WORK/state_poison"
QENV="serve.executor.abort=once"
# Crash 1: the job aborts the server the moment an executor picks it up.
printf '%s\n' "$JOB" |
    NETSEL_FAILPOINTS="$QENV" "$SERVE" --stdin --state-dir "$QSTATE" \
        --max-job-attempts 2 >"$WORK/poison1.out" 2>&1
[ $? -ne 0 ] || fail "server survived serve.executor.abort"
grep -q '"attempts": 1' "$QSTATE/jobs/chaos/job.json" ||
    fail "crashed attempt not persisted: $(cat "$QSTATE/jobs/chaos/job.json")"
# Crash 2: recovery requeues (1 < 2), the fresh process re-arms the abort.
NETSEL_FAILPOINTS="$QENV" "$SERVE" --stdin --state-dir "$QSTATE" \
    --max-job-attempts 2 </dev/null >"$WORK/poison2.out" 2>&1
[ $? -ne 0 ] || fail "server survived the second abort"
grep -q '"event": "requeued", "job": "chaos"' "$WORK/poison2.out" ||
    fail "second start did not requeue the once-crashed job"
# Start 3, faults off: attempts=2 reached the threshold -> quarantined.
"$SERVE" --stdin --state-dir "$QSTATE" --max-job-attempts 2 \
    </dev/null >"$WORK/poison3.out" 2>&1 ||
    fail "quarantining server exited nonzero"
grep -q '"event": "failed", "job": "chaos", "reason": "poisoned"' "$WORK/poison3.out" ||
    fail "poisoned job was not quarantined: $(cat "$WORK/poison3.out")"
grep -q '"event": "requeued"' "$WORK/poison3.out" &&
    fail "poisoned job was requeued despite the threshold"
grep -q '"reason": "poisoned"' "$QSTATE/jobs/chaos/result.json" ||
    fail "quarantine verdict not durable in result.json"
# Start 4: exactly once — result.json stops any further verdicts.
"$SERVE" --stdin --state-dir "$QSTATE" --max-job-attempts 2 \
    </dev/null >"$WORK/poison4.out" 2>&1
grep -q 'poisoned' "$WORK/poison4.out" &&
    fail "quarantine verdict repeated on a later restart"

# --- 5. runtime inject + short reads + drain under faults -----------------
NETSEL_FAILPOINTS="serve.sock.short_read=0.5" NETSEL_FAILPOINT_SEED="$SEED" \
    "$SERVE" --socket "$SOCK" --state-dir "$WORK/state_sock" \
        --checkpoint-every 25 >"$WORK/sock.out" 2>&1 &
SERVER_PID=$!
wait_for "$WORK/sock.out" '"event": "serving"' 10 || fail "socket server did not start"
# Requests arrive over a connection whose reads are capped to 1 byte half
# the time — the line framing must reassemble them. Arm disk pressure at
# runtime, run a job to completion under it, and check the stats counters.
{
    echo '{"type": "inject", "site": "checkpoint.write.enospc", "mode": "1in1"}'
    echo "$JOB"
} | "$SERVE" --connect "$SOCK" >"$WORK/client_inject.out" 2>&1
grep -q '"event": "injected", "site": "checkpoint.write.enospc".*"active": true' \
    "$WORK/client_inject.out" || fail "inject request was not acknowledged"
grep -q '"event": "degraded"' "$WORK/sock.out" ||
    fail "runtime-armed ENOSPC produced no degraded event"
INJECT_SUMMARY=$(extract_summary "$WORK/client_inject.out" chaos)
[ "$INJECT_SUMMARY" = "$REF_SUMMARY" ] ||
    fail "summary under runtime-injected faults differs from reference"
# Stats on a fresh connection, after the client above saw the job complete.
printf '%s\n' '{"type": "stats"}' |
    "$SERVE" --connect "$SOCK" >"$WORK/client_stats.out" 2>&1
grep -q '"degraded_jobs": 1' "$WORK/client_stats.out" ||
    fail "stats did not count the degraded job"
grep -q '"failpoints": \[.*"site": "checkpoint.write.enospc"' "$WORK/client_stats.out" ||
    fail "stats did not list the armed failpoint"
# Drain while faults are armed: must terminate and exit 0.
printf '%s\n' '{"type": "submit", "id": "late", "setting": "scalability", "devices": 1000, "runs": 2}' |
    "$SERVE" --connect "$SOCK" >/dev/null 2>&1 &
CLIENT_PID=$!
wait_for "$WORK/sock.out" '"event": "started", "job": "late"' 30 ||
    fail "late job never started"
printf '%s\n' '{"type": "drain"}' | "$SERVE" --connect "$SOCK" >/dev/null 2>&1
_i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    [ "$_i" -ge 600 ] && { fail "drain did not terminate under faults"; break; }
    sleep 0.1
    _i=$((_i + 1))
done
if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID"
    [ $? -eq 0 ] || fail "drain under faults exited nonzero"
    SERVER_PID=""
fi
wait "$CLIENT_PID" 2>/dev/null
grep -q '"event": "drained"' "$WORK/sock.out" || fail "no drained event"

# --- 6. preempt, SIGKILL mid-hand-off, restart: all byte-identical --------
# A single-executor server runs the big low-priority job; a priority-9 job
# preempts it (checkpoint flush + requeue); the server is SIGKILL'd right
# after the hand-off. The restarted server must finish BOTH jobs with
# summaries byte-identical to their clean references — the preemption
# checkpoint is just another resume point, crash or no crash.
PSTATE="$WORK/state_preempt"
PLOW='{"type": "submit", "id": "plow", "setting": "scalability", "devices": 2000, "runs": 2}'
PHIGH='{"type": "submit", "id": "phigh", "setting": "setting1", "horizon": 240, "runs": 2, "priority": 9}'
"$SERVE" --socket "$SOCK" --state-dir "$PSTATE" --jobs 1 \
    --checkpoint-every 100 >"$WORK/preempt.out" 2>&1 &
SERVER_PID=$!
wait_for "$WORK/preempt.out" '"event": "serving"' 10 ||
    fail "preempt-server did not start"
printf '%s\n' "$PLOW" | "$SERVE" --connect "$SOCK" >/dev/null 2>&1 &
LOW_PID=$!
wait_for "$WORK/preempt.out" '"event": "checkpointed", "job": "plow"' 60 ||
    fail "low-priority job never checkpointed"
printf '%s\n' "$PHIGH" | "$SERVE" --connect "$SOCK" >/dev/null 2>&1 &
HIGH_PID=$!
wait_for "$WORK/preempt.out" '"event": "preempted", "job": "plow"' 30 ||
    fail "high-priority arrival did not preempt the running job"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
wait "$LOW_PID" 2>/dev/null
wait "$HIGH_PID" 2>/dev/null
# Restart clean: recovery requeues both unfinished jobs and runs them dry.
"$SERVE" --stdin --state-dir "$PSTATE" --checkpoint-every 100 \
    </dev/null >"$WORK/preempt_resume.out" 2>&1 ||
    fail "post-preempt restart exited nonzero"
# Either job may have completed before the SIGKILL: search both logs.
cat "$WORK/preempt.out" "$WORK/preempt_resume.out" >"$WORK/preempt_all.out"
P_LOW=$(extract_summary "$WORK/preempt_all.out" plow)
P_HIGH=$(extract_summary "$WORK/preempt_all.out" phigh)
if [ -z "$P_LOW" ]; then
    fail "preempted job never completed after restart"
elif [ "$P_LOW" != "$BIG_REF" ]; then
    fail "preempt + SIGKILL forked the low-priority trajectory:
  reference: $BIG_REF
  resumed:   $P_LOW"
fi
if [ -z "$P_HIGH" ]; then
    fail "preemptor job never completed"
elif [ "$P_HIGH" != "$REF_SUMMARY" ]; then
    fail "preemptor summary differs from clean reference:
  reference: $REF_SUMMARY
  got:       $P_HIGH"
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures chaos test(s) failed" >&2
    exit 1
fi
echo "all chaos tests passed (seed $SEED)"
