// Policy-batched execution vs the scalar reference path.
//
// WorldConfig::policy_batching selects between the policy-group batch
// engine (group-dispatched chunk loops, SoA-packed vexp updates, cost-model
// partition) and the per-device virtual-dispatch path it replaced. The two
// are the *same simulated model* executed differently, so every trajectory
// — per-slot choices, downloads, delay losses, switch counts — must be
// bit-identical between them, for every policy, on both a static scenario
// (the golden one: restricted visibility, moves, a capacity change) and a
// dynamic join/leave world (which exercises policy-group rebuilds), at
// every thread count. EXPECT_EQ on doubles is deliberate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "golden_scenario.hpp"

namespace smartexp3 {
namespace {

struct Trajectory {
  std::vector<std::vector<NetworkId>> choices;  // [slot][device]
  std::vector<double> downloads_mb;
  std::vector<double> delay_loss_mb;
  std::vector<int> switches;
};

struct TrajectoryProbe final : netsim::WorldObserver {
  std::vector<std::vector<NetworkId>>* out;
  void on_slot_end(Slot, const netsim::World& world) override {
    out->emplace_back();
    const auto& pool = world.devices();
    out->back().reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      out->back().push_back(pool.active[i] ? pool.current[i] : kNoNetwork);
    }
  }
};

Trajectory run_trajectory(exp::ExperimentConfig cfg, bool batching, int threads) {
  cfg.world.policy_batching = batching;
  cfg.world.threads = threads;
  auto world = exp::build_world(cfg, cfg.base_seed);
  Trajectory out;
  TrajectoryProbe probe;
  probe.out = &out.choices;
  world->set_observer(&probe);
  world->run();
  const auto& pool = world->devices();
  out.downloads_mb = pool.download_mb;
  out.delay_loss_mb = pool.delay_loss_mb;
  out.switches = pool.switches;
  return out;
}

void expect_identical(const Trajectory& scalar, const Trajectory& batched) {
  ASSERT_EQ(scalar.choices.size(), batched.choices.size());
  for (std::size_t t = 0; t < scalar.choices.size(); ++t) {
    ASSERT_EQ(scalar.choices[t], batched.choices[t]) << "slot " << t;
  }
  ASSERT_EQ(scalar.downloads_mb.size(), batched.downloads_mb.size());
  for (std::size_t i = 0; i < scalar.downloads_mb.size(); ++i) {
    SCOPED_TRACE("device " + std::to_string(i));
    EXPECT_EQ(scalar.downloads_mb[i], batched.downloads_mb[i]);
    EXPECT_EQ(scalar.delay_loss_mb[i], batched.delay_loss_mb[i]);
    EXPECT_EQ(scalar.switches[i], batched.switches[i]);
  }
}

/// 12 devices on 3 fully visible networks; 8..11 join at slot 60, 4..7
/// leave at slot 180 — every join/leave slot rebuilds the policy groups.
exp::ExperimentConfig dynamic_config(const std::string& policy) {
  using namespace smartexp3::netsim;
  exp::ExperimentConfig cfg;
  cfg.name = "batch-vs-scalar-dynamic";
  cfg.world.horizon = 240;
  cfg.base_seed = 771177;
  cfg.networks.push_back(make_cellular(0, 11.0));
  cfg.networks.push_back(make_wifi(1, 22.0));
  cfg.networks.push_back(make_wifi(2, 7.0));
  for (int i = 0; i < 12; ++i) {
    DeviceSpec d;
    d.id = i;
    d.policy_name = policy;
    if (i >= 8) d.join_slot = 60;
    if (i >= 4 && i < 8) d.leave_slot = 180;
    cfg.devices.push_back(d);
  }
  return cfg;
}

std::vector<std::string> all_policies() {
  auto names = core::policy_names();
  for (const auto& n : core::extension_policy_names()) names.push_back(n);
  return names;
}

TEST(BatchVsScalar, MixedGoldenScenarioBitIdentical) {
  // The golden scenario's mixed device set puts several policy groups in one
  // world, including the SoA-batched exp3 and full_information.
  const auto cfg = testing::golden_config();
  const auto scalar = run_trajectory(cfg, /*batching=*/false, /*threads=*/1);
  for (const int threads : {1, 2, 4, 7}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    expect_identical(scalar, run_trajectory(cfg, /*batching=*/true, threads));
  }
}

TEST(BatchVsScalar, PerPolicyGoldenScenarioBitIdentical) {
  for (const auto& policy : all_policies()) {
    if (policy == "centralized") continue;  // restricted visibility unsupported
    SCOPED_TRACE("policy " + policy);
    auto cfg = testing::golden_config();
    cfg.with_policy(policy);
    const auto scalar = run_trajectory(cfg, false, 1);
    for (const int threads : {1, 2, 4, 7}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(scalar, run_trajectory(cfg, true, threads));
    }
  }
}

TEST(BatchVsScalar, NoisyShareWorldBitIdentical) {
  // Non-device-invariant model: the chunked feedback body only runs when
  // rate() is a pure read after prepare_slot; the batched trajectory must
  // still match the scalar one exactly, including for full_information's
  // per-device counterfactual branch.
  for (const std::string policy : {"exp3", "full_information"}) {
    SCOPED_TRACE("policy " + policy);
    auto cfg = dynamic_config(policy);
    cfg.share = exp::ShareKind::kNoisy;
    const auto scalar = run_trajectory(cfg, false, 1);
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(scalar, run_trajectory(cfg, true, threads));
    }
  }
}

TEST(BatchVsScalar, PerPolicyDynamicJoinLeaveBitIdentical) {
  // Full visibility, so the centralized baseline participates: its shared
  // coordinator makes the world decline batching in both modes, and the
  // knob must still change nothing.
  for (const auto& policy : all_policies()) {
    SCOPED_TRACE("policy " + policy);
    const auto cfg = dynamic_config(policy);
    const auto scalar = run_trajectory(cfg, false, 1);
    for (const int threads : {1, 2, 4, 7}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_identical(scalar, run_trajectory(cfg, true, threads));
    }
  }
}

}  // namespace
}  // namespace smartexp3
