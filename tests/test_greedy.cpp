#include "core/greedy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "policy_test_util.hpp"

namespace smartexp3::core {
namespace {

using testing::drive_two_level;
using testing::feedback;

TEST(Greedy, ExploresEachNetworkExactlyOnce) {
  GreedyPolicy policy(1);
  policy.set_networks({0, 1, 2, 3});
  std::set<NetworkId> seen;
  for (int t = 0; t < 4; ++t) {
    const NetworkId c = policy.choose(t);
    EXPECT_TRUE(seen.insert(c).second) << "revisited during exploration";
    policy.observe(t, feedback(0.5));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Greedy, ExplorationOrderDiffersAcrossSeeds) {
  std::set<NetworkId> firsts;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    GreedyPolicy policy(seed);
    policy.set_networks({0, 1, 2, 3});
    firsts.insert(policy.choose(0));
  }
  EXPECT_GT(firsts.size(), 1u);
}

TEST(Greedy, SticksWithHighestAverage) {
  GreedyPolicy policy(2);
  policy.set_networks({0, 1, 2});
  const auto counts = drive_two_level(policy, 300, 1, 0.9, 0.1);
  // After the 3 exploration slots it should select network 1 every time.
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[1], 298);
}

TEST(Greedy, LockInDespiteDecline) {
  // The paper's criticism: greedy can get stuck — once an arm's average
  // dominates, a (moderate) decline does not dislodge it quickly.
  GreedyPolicy policy(3);
  policy.set_networks({0, 1});
  int t = 0;
  for (; t < 100; ++t) {
    const NetworkId c = policy.choose(t);
    policy.observe(t, feedback(c == 0 ? 0.9 : 0.5));
  }
  // Arm 0's quality drops to 0.4 (< arm 1's 0.5). Its long history keeps its
  // average above 0.5 for a long time.
  int stuck = 0;
  for (; t < 200; ++t) {
    const NetworkId c = policy.choose(t);
    if (c == 0) ++stuck;
    policy.observe(t, feedback(c == 0 ? 0.4 : 0.5));
  }
  EXPECT_GT(stuck, 90);
}

TEST(Greedy, AverageGainBookkeeping) {
  GreedyPolicy policy(4);
  policy.set_networks({0, 1});
  drive_two_level(policy, 50, 0, 0.8, 0.3);
  EXPECT_NEAR(policy.average_gain(0), 0.8, 1e-9);
  EXPECT_NEAR(policy.average_gain(1), 0.3, 1e-9);
}

TEST(Greedy, TieBreaksNotAlwaysFirst) {
  // With identical arms, the tie-break must not systematically pick arm 0.
  std::set<NetworkId> picks;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    GreedyPolicy policy(seed);
    policy.set_networks({0, 1, 2});
    drive_two_level(policy, 3, 0, 0.5, 0.5);  // equal gains everywhere
    picks.insert(policy.choose(3));
  }
  EXPECT_GT(picks.size(), 1u);
}

TEST(Greedy, NewNetworkGetsExplored) {
  GreedyPolicy policy(5);
  policy.set_networks({0, 1});
  drive_two_level(policy, 50, 0, 0.9, 0.1);
  policy.set_networks({0, 1, 2});
  bool visited = false;
  for (int t = 50; t < 55 && !visited; ++t) {
    const NetworkId c = policy.choose(t);
    visited = c == 2;
    policy.observe(t, feedback(0.95));
  }
  EXPECT_TRUE(visited);
}

TEST(Greedy, RemovedNetworkStatsDropped) {
  GreedyPolicy policy(6);
  policy.set_networks({0, 1, 2});
  drive_two_level(policy, 60, 2, 0.9, 0.1);
  policy.set_networks({0, 1});
  const auto counts = drive_two_level(policy, 60, 0, 0.7, 0.2);
  // Network 2 is gone; it must settle on 0 now.
  EXPECT_GT(counts[0], 50);
}

TEST(Greedy, ProbabilitiesOneHotAfterExploration) {
  GreedyPolicy policy(7);
  policy.set_networks({0, 1});
  drive_two_level(policy, 20, 1, 0.9, 0.1);
  const auto p = policy.probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

TEST(Greedy, RejectsEmptyNetworkSet) {
  GreedyPolicy policy(8);
  EXPECT_THROW(policy.set_networks({}), std::invalid_argument);
}

}  // namespace
}  // namespace smartexp3::core
