#include "core/exp3.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "policy_test_util.hpp"

namespace smartexp3::core {
namespace {

using testing::drive_two_level;
using testing::feedback;

TEST(Exp3, InitialDistributionIsUniform) {
  Exp3 policy(1);
  policy.set_networks({0, 1, 2});
  const auto p = policy.probabilities();
  ASSERT_EQ(p.size(), 3u);
  for (const double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Exp3, ProbabilitiesFormSimplex) {
  Exp3 policy(2);
  policy.set_networks({0, 1, 2, 3});
  drive_two_level(policy, 500, 2, 0.9, 0.1);
  const auto p = policy.probabilities();
  double sum = 0.0;
  for (const double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Exp3, LearnsTheBestArm) {
  Exp3 policy(3);
  policy.set_networks({0, 1, 2});
  const auto counts = drive_two_level(policy, 3000, 1, 0.9, 0.05);
  // The good arm must dominate the tail of the run.
  EXPECT_GT(counts[1], counts[0]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], 1500);
}

TEST(Exp3, GammaScheduleDecays) {
  Exp3 policy(4);
  policy.set_networks({0, 1});
  EXPECT_DOUBLE_EQ(policy.current_gamma(), 1.0);  // t = 1
  drive_two_level(policy, 7, 0, 0.5, 0.5);
  // t = 8 -> 8^{-1/3} = 0.5.
  EXPECT_NEAR(policy.current_gamma(), 0.5, 1e-12);
  drive_two_level(policy, 992, 0, 0.5, 0.5);
  EXPECT_NEAR(policy.current_gamma(), std::pow(1000.0, -1.0 / 3.0), 1e-9);
}

TEST(Exp3, FixedGammaRespected) {
  Exp3::Options o;
  o.fixed_gamma = 0.2;
  Exp3 policy(5, o);
  policy.set_networks({0, 1});
  drive_two_level(policy, 100, 0, 0.9, 0.1);
  EXPECT_DOUBLE_EQ(policy.current_gamma(), 0.2);
  // Exploration floor gamma/k stays in force.
  const auto p = policy.probabilities();
  for (const double v : p) EXPECT_GE(v, 0.1 - 1e-12);
}

TEST(Exp3, ExplorationFloorNeverVanishesEarly) {
  Exp3 policy(6);
  policy.set_networks({0, 1, 2});
  drive_two_level(policy, 64, 0, 1.0, 0.0);
  // gamma at t=65 is 65^{-1/3} ~ 0.248 -> floor ~ 0.0827.
  const auto p = policy.probabilities();
  for (const double v : p) EXPECT_GE(v, 0.08);
}

TEST(Exp3, ZeroGainLeavesWeightsUnchanged) {
  Exp3 policy(7);
  policy.set_networks({0, 1});
  const auto before = policy.probabilities();
  policy.choose(0);
  policy.observe(0, feedback(0.0));
  const auto after = policy.probabilities();
  // Same gamma step would differ, so compare softly: distribution still
  // symmetric because no information arrived.
  EXPECT_NEAR(after[0], after[1], 1e-12);
  EXPECT_NEAR(before[0], before[1], 1e-12);
}

TEST(Exp3, NetworkSetGrowthKeepsLearnedWeights) {
  Exp3 policy(8);
  policy.set_networks({0, 1});
  drive_two_level(policy, 2000, 1, 0.9, 0.05);
  const auto before = policy.probabilities();
  ASSERT_GT(before[1], 0.6);
  policy.set_networks({0, 1, 2});
  const auto after = policy.probabilities();
  ASSERT_EQ(after.size(), 3u);
  // Arm 1 should still be the favourite.
  EXPECT_GT(after[1], after[0]);
  EXPECT_GT(after[1], after[2]);
}

TEST(Exp3, NetworkRemovalDropsWeight) {
  Exp3 policy(9);
  policy.set_networks({0, 1, 2});
  drive_two_level(policy, 500, 2, 0.9, 0.1);
  policy.set_networks({0, 1});
  EXPECT_EQ(policy.networks(), (std::vector<NetworkId>{0, 1}));
  const auto p = policy.probabilities();
  EXPECT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
}

TEST(Exp3, ObservationAfterSetChangeIsIgnored) {
  Exp3 policy(10);
  policy.set_networks({0, 1});
  policy.choose(0);
  policy.set_networks({0, 1, 2});  // invalidates the pending choice
  const auto before = policy.probabilities();
  policy.observe(0, feedback(1.0));  // must not corrupt weights
  const auto after = policy.probabilities();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-12);
  }
}

TEST(Exp3, RejectsEmptyNetworkSet) {
  Exp3 policy(11);
  EXPECT_THROW(policy.set_networks({}), std::invalid_argument);
}

TEST(Exp3, DeterministicGivenSeed) {
  Exp3 a(77);
  Exp3 b(77);
  a.set_networks({0, 1, 2});
  b.set_networks({0, 1, 2});
  for (int t = 0; t < 200; ++t) {
    const auto ca = a.choose(t);
    const auto cb = b.choose(t);
    ASSERT_EQ(ca, cb);
    a.observe(t, feedback(0.3));
    b.observe(t, feedback(0.3));
  }
}

TEST(Exp3, NoOverflowUnderLongMaxGainRuns) {
  // 100k max-gain observations would overflow raw weights; log-space must
  // survive and keep a valid distribution.
  Exp3::Options o;
  o.fixed_gamma = 0.1;
  Exp3 policy(12, o);
  policy.set_networks({0, 1});
  for (int t = 0; t < 100000; ++t) {
    const auto c = policy.choose(t);
    policy.observe(t, feedback(c == 0 ? 1.0 : 0.0));
  }
  const auto p = policy.probabilities();
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_TRUE(std::isfinite(p[1]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GT(p[0], p[1]);
}

}  // namespace
}  // namespace smartexp3::core
