#include "netsim/world.hpp"

#include <gtest/gtest.h>

#include "core/fixed_random.hpp"
#include "core/greedy.hpp"

namespace smartexp3::netsim {
namespace {

PolicyFactory fixed_factory() {
  return [](const DeviceSpec&, std::uint64_t seed) {
    return std::make_unique<core::FixedRandomPolicy>(seed);
  };
}

PolicyFactory greedy_factory() {
  return [](const DeviceSpec&, std::uint64_t seed) {
    return std::make_unique<core::GreedyPolicy>(seed);
  };
}

std::vector<DeviceSpec> n_devices(int n) {
  std::vector<DeviceSpec> out;
  for (int i = 0; i < n; ++i) {
    DeviceSpec d;
    d.id = i;
    out.push_back(d);
  }
  return out;
}

TEST(World, EqualShareCongestion) {
  WorldConfig cfg;
  cfg.horizon = 5;
  // Single network: every device must share it equally.
  World world(cfg, {make_wifi(0, 12.0)}, n_devices(4), {}, fixed_factory(), 1);
  world.set_delay_model(std::make_unique<ZeroDelayModel>());
  world.run();
  const auto& pool = world.devices();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_DOUBLE_EQ(pool.last_rate_mbps[i], 3.0);
    // 5 slots * 3 Mbps * 15 s / 8 = 28.125 MB.
    EXPECT_NEAR(pool.download_mb[i], 28.125, 1e-9);
    EXPECT_EQ(pool.switches[i], 0);
  }
}

TEST(World, GainScaleDefaultsToMaxCapacity) {
  WorldConfig cfg;
  cfg.horizon = 1;
  World world(cfg, {make_wifi(0, 4.0), make_wifi(1, 22.0)}, n_devices(1), {},
              fixed_factory(), 1);
  EXPECT_DOUBLE_EQ(world.gain_scale(), 22.0);
}

TEST(World, ExplicitGainScaleHonoured) {
  WorldConfig cfg;
  cfg.horizon = 1;
  cfg.gain_scale_mbps = 50.0;
  World world(cfg, {make_wifi(0, 4.0)}, n_devices(1), {}, fixed_factory(), 1);
  EXPECT_DOUBLE_EQ(world.gain_scale(), 50.0);
}

TEST(World, RejectsBadNetworkIds) {
  WorldConfig cfg;
  auto net = make_wifi(5, 1.0);  // id mismatch with table position
  EXPECT_THROW(World(cfg, {net}, n_devices(1), {}, fixed_factory(), 1),
               std::invalid_argument);
}

TEST(World, RejectsEmptyNetworkTable) {
  WorldConfig cfg;
  EXPECT_THROW(World(cfg, {}, n_devices(1), {}, fixed_factory(), 1),
               std::invalid_argument);
}

TEST(World, JoinAndLeaveSchedules) {
  WorldConfig cfg;
  cfg.horizon = 10;
  auto devices = n_devices(2);
  devices[1].join_slot = 3;
  devices[1].leave_slot = 7;
  World world(cfg, {make_wifi(0, 8.0)}, devices, {}, fixed_factory(), 1);
  world.set_delay_model(std::make_unique<ZeroDelayModel>());

  std::vector<int> active_counts;
  while (!world.done()) {
    world.step();
    active_counts.push_back(world.active_device_count());
  }
  const std::vector<int> expected = {1, 1, 1, 2, 2, 2, 2, 1, 1, 1};
  EXPECT_EQ(active_counts, expected);
  // Device 1 was active slots 3..6 -> 4 slots at 4 Mbps shared = 4 Mbps each.
  EXPECT_EQ(world.devices().slots_active[1], 4);
  EXPECT_NEAR(world.devices().download_mb[1], 4 * mbps_seconds_to_mb(4.0, 15.0), 1e-9);
}

TEST(World, MoveEventChangesVisibleNetworks) {
  WorldConfig cfg;
  cfg.horizon = 6;
  const std::vector<Network> nets = {
      make_cellular(0, 10.0),      // everywhere
      make_wifi(1, 20.0, {0}),     // area 0 only
      make_wifi(2, 20.0, {1}),     // area 1 only
  };
  auto devices = n_devices(1);
  devices[0].area = 0;
  Scenario scenario;
  scenario.move(3, /*device=*/0, /*new_area=*/1);
  World world(cfg, nets, devices, scenario, greedy_factory(), 2);
  world.set_delay_model(std::make_unique<ZeroDelayModel>());

  std::vector<NetworkId> chosen;
  while (!world.done()) {
    world.step();
    chosen.push_back(world.devices().current[0]);
  }
  // Before the move only networks {0,1} are choosable; after only {0,2}.
  for (int t = 0; t < 3; ++t) EXPECT_NE(chosen[static_cast<std::size_t>(t)], 2);
  for (int t = 3; t < 6; ++t) EXPECT_NE(chosen[static_cast<std::size_t>(t)], 1);
}

TEST(World, CapacityEventApplies) {
  WorldConfig cfg;
  cfg.horizon = 4;
  Scenario scenario;
  scenario.set_capacity(2, /*network=*/0, /*mbps=*/2.0);
  World world(cfg, {make_wifi(0, 8.0)}, n_devices(1), scenario, fixed_factory(), 3);
  world.set_delay_model(std::make_unique<ZeroDelayModel>());
  std::vector<double> rates;
  while (!world.done()) {
    world.step();
    rates.push_back(world.devices().last_rate_mbps[0]);
  }
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
  EXPECT_DOUBLE_EQ(rates[3], 2.0);
}

TEST(World, SwitchAccountingAndDelayLoss) {
  WorldConfig cfg;
  cfg.horizon = 10;
  // A single greedy device over a 6 and a 3 Mbps network: it explores both
  // in a random order and then settles on the 6 Mbps one. Depending on the
  // exploration order that is 1 switch (3 -> 6) or 2 (6 -> 3 -> 6).
  World world(cfg, {make_wifi(0, 6.0), make_wifi(1, 3.0)}, n_devices(1), {},
              greedy_factory(), 4);
  world.set_delay_model(std::make_unique<FixedDelayModel>(3.0, 3.0));
  world.run();
  const auto& pool = world.devices();
  EXPECT_EQ(pool.current[0], 0);  // settled on the better network
  const int switches = pool.switches[0];
  ASSERT_TRUE(switches == 1 || switches == 2);
  const double loss_to_6 = mbps_seconds_to_mb(6.0, 3.0);
  const double loss_to_3 = mbps_seconds_to_mb(3.0, 3.0);
  const double expected_loss = switches == 1 ? loss_to_6 : loss_to_3 + loss_to_6;
  EXPECT_NEAR(pool.delay_loss_mb[0], expected_loss, 1e-9);
  // Slots on each network: either 1 on the 3 (explored first) or 1 on the 3
  // and the rest on the 6 — reconstruct gross download from the path.
  const double slots_on_3 = 1.0;
  const double gross = slots_on_3 * mbps_seconds_to_mb(3.0, 15.0) +
                       (10.0 - slots_on_3) * mbps_seconds_to_mb(6.0, 15.0);
  EXPECT_NEAR(pool.download_mb[0], gross - pool.delay_loss_mb[0], 1e-9);
}

TEST(World, NoDelayChargedOnFirstAssociation) {
  WorldConfig cfg;
  cfg.horizon = 1;
  World world(cfg, {make_wifi(0, 6.0)}, n_devices(1), {}, fixed_factory(), 5);
  world.set_delay_model(std::make_unique<FixedDelayModel>(5.0, 5.0));
  world.run();
  EXPECT_EQ(world.devices().switches[0], 0);
  EXPECT_DOUBLE_EQ(world.devices().delay_loss_mb[0], 0.0);
}

TEST(World, UnusedCapacityTracksEmptyNetworks) {
  WorldConfig cfg;
  cfg.horizon = 3;
  World world(cfg, {make_wifi(0, 6.0), make_wifi(1, 9.0)}, n_devices(1), {},
              fixed_factory(), 6);
  world.set_delay_model(std::make_unique<ZeroDelayModel>());
  world.run();
  // One network is always occupied, the other always empty.
  const double unused = world.unused_capacity_mbps(2);
  EXPECT_TRUE(unused == 6.0 || unused == 9.0);
}

TEST(World, CountsSumToActiveDevices) {
  WorldConfig cfg;
  cfg.horizon = 20;
  World world(cfg, {make_wifi(0, 5.0), make_wifi(1, 5.0)}, n_devices(7), {},
              greedy_factory(), 7);
  world.set_delay_model(std::make_unique<ZeroDelayModel>());
  while (!world.done()) {
    world.step();
    int total = 0;
    for (const int c : world.counts()) total += c;
    ASSERT_EQ(total, world.active_device_count());
  }
}

TEST(World, DeterministicAcrossIdenticalSeeds) {
  auto run = [](std::uint64_t seed) {
    WorldConfig cfg;
    cfg.horizon = 50;
    World world(cfg, {make_wifi(0, 4.0), make_wifi(1, 9.0)}, n_devices(5), {},
                greedy_factory(), seed);
    world.run();
    std::vector<double> downloads;
    for (const double mb : world.devices().download_mb) downloads.push_back(mb);
    return downloads;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

class CountingObserver : public WorldObserver {
 public:
  int slots = 0;
  int run_ends = 0;
  void on_slot_end(Slot, const World&) override { ++slots; }
  void on_run_end(const World&) override { ++run_ends; }
};

TEST(World, ObserverSeesEverySlotAndRunEnd) {
  WorldConfig cfg;
  cfg.horizon = 13;
  World world(cfg, {make_wifi(0, 4.0)}, n_devices(2), {}, fixed_factory(), 8);
  CountingObserver obs;
  world.set_observer(&obs);
  world.run();
  EXPECT_EQ(obs.slots, 13);
  EXPECT_EQ(obs.run_ends, 1);
}

}  // namespace
}  // namespace smartexp3::netsim
