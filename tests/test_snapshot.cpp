// Snapshot/restore correctness: the archive primitives, and the contract
// that restoring a mid-run world (and recorder) into a fresh process
// continues the original trajectory bit-identically.
//
// The restore targets are always built fresh from the config — the test is
// exactly the crash-recovery situation: nothing survives from the first
// world except the snapshot words.
#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "golden_scenario.hpp"
#include "metrics/recorder.hpp"
#include "netsim/world.hpp"

namespace smartexp3 {
namespace {

TEST(StateArchive, RoundTripsEveryPrimitive) {
  std::vector<std::uint64_t> words;
  core::StateWriter w(words);
  w.section(0x54455354);  // "TEST"
  w.u64(0xdeadbeefcafef00dULL);
  w.i64(-12345);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.b(true);
  w.b(false);
  w.f64_vec({1.5, -2.5, 0.0});
  w.i64_vec({-1, 0, 1});
  w.int_vec({7, -7});

  core::StateReader r(words);
  r.section(0x54455354, "test");
  EXPECT_EQ(r.u64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(r.i64(), -12345);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(std::isnan(r.f64()));  // bit-exact even for non-finite
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  std::vector<double> fv;
  r.f64_vec(fv, "fv");
  EXPECT_EQ(fv, (std::vector<double>{1.5, -2.5, 0.0}));
  std::vector<std::int64_t> iv;
  r.i64_vec(iv, "iv");
  EXPECT_EQ(iv, (std::vector<std::int64_t>{-1, 0, 1}));
  std::vector<int> nv;
  r.int_vec(nv, "nv");
  EXPECT_EQ(nv, (std::vector<int>{7, -7}));
  EXPECT_TRUE(r.exhausted());
}

TEST(StateArchive, TruncatedStreamThrows) {
  std::vector<std::uint64_t> words;
  core::StateWriter w(words);
  w.u64(1);
  core::StateReader r(words);
  r.u64();
  EXPECT_THROW(r.u64(), core::SnapshotError);
}

TEST(StateArchive, SectionMismatchThrows) {
  std::vector<std::uint64_t> words;
  core::StateWriter w(words);
  w.section(0x1111);
  core::StateReader r(words);
  EXPECT_THROW(r.section(0x2222, "other"), core::SnapshotError);
}

TEST(StateArchive, AbsurdCountThrowsBeforeAllocating) {
  // A corrupt count field must fail the bound check, not attempt a
  // multi-gigabyte resize.
  std::vector<std::uint64_t> words = {std::uint64_t{1} << 40};
  core::StateReader r(words);
  std::vector<double> v;
  EXPECT_THROW(r.f64_vec(v, "corrupt"), core::SnapshotError);
  EXPECT_TRUE(v.empty());
}

// --- world-level round trips --------------------------------------------

std::vector<std::uint64_t> snapshot_world(const netsim::World& world) {
  std::vector<std::uint64_t> words;
  core::StateWriter w(words);
  world.snapshot_into(w);
  return words;
}

void expect_same_end_state(const netsim::World& a, const netsim::World& b) {
  ASSERT_EQ(a.devices().size(), b.devices().size());
  const auto& da = a.devices();
  const auto& db = b.devices();
  for (std::size_t i = 0; i < da.size(); ++i) {
    SCOPED_TRACE("device " + std::to_string(i));
    EXPECT_EQ(da.active[i], db.active[i]);
    EXPECT_EQ(da.current[i], db.current[i]);
    // Bit-identical doubles, deliberately: resume must continue the exact
    // trajectory, not a nearby one.
    EXPECT_EQ(da.download_mb[i], db.download_mb[i]);
    EXPECT_EQ(da.delay_loss_mb[i], db.delay_loss_mb[i]);
    EXPECT_EQ(da.switches[i], db.switches[i]);
  }
}

/// Run to `cut`, snapshot, restore into a fresh world, finish both, and
/// demand identical end states.
void check_resume_matches(const exp::ExperimentConfig& cfg, Slot cut) {
  auto uninterrupted = exp::build_world(cfg, cfg.base_seed);
  while (!uninterrupted->done()) uninterrupted->step();

  auto first = exp::build_world(cfg, cfg.base_seed);
  while (first->now() < cut) first->step();
  const auto words = snapshot_world(*first);

  auto resumed = exp::build_world(cfg, cfg.base_seed);
  core::StateReader r(words);
  resumed->restore_from(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(resumed->now(), cut);
  while (!resumed->done()) resumed->step();

  expect_same_end_state(*uninterrupted, *resumed);
}

TEST(WorldSnapshot, GoldenScenarioResumesBitIdentically) {
  const auto cfg = testing::golden_config();
  // Cuts straddle the scenario's events: join@40, move@60, capacity@100,
  // leave@100, move@120/150, leave@160.
  for (const Slot cut : {1, 40, 60, 99, 100, 150, 199}) {
    SCOPED_TRACE("cut " + std::to_string(cut));
    check_resume_matches(cfg, cut);
  }
}

TEST(WorldSnapshot, EveryPolicyResumesBitIdentically) {
  auto names = core::policy_names();
  for (const auto& n : core::extension_policy_names()) names.push_back(n);
  for (const auto& policy : names) {
    if (policy == "centralized") continue;  // restricted visibility unsupported
    SCOPED_TRACE("policy " + policy);
    auto cfg = testing::golden_config();
    cfg.with_policy(policy);
    check_resume_matches(cfg, 77);
  }
}

exp::ExperimentConfig small_full_visibility(const std::string& policy) {
  using namespace smartexp3::netsim;
  exp::ExperimentConfig cfg;
  cfg.name = "snapshot-small";
  cfg.world.horizon = 120;
  cfg.base_seed = 4242;
  cfg.networks.push_back(make_cellular(0, 11.0));
  cfg.networks.push_back(make_wifi(1, 22.0));
  cfg.networks.push_back(make_wifi(2, 7.0));
  for (int i = 0; i < 8; ++i) {
    DeviceSpec d;
    d.id = i;
    d.policy_name = policy;
    cfg.devices.push_back(d);
  }
  return cfg;
}

TEST(WorldSnapshot, CentralizedCoordinatorResumesBitIdentically) {
  // The coordinator's shared allocation state lives behind every device's
  // policy handle; the snapshot must capture it exactly once and the restore
  // must rebuild the same assignment plan.
  check_resume_matches(small_full_visibility("centralized"), 55);
}

TEST(WorldSnapshot, NoisyShareModelResumesBitIdentically) {
  // NoisyShareModel carries its own RNG and lazily materialised per-device
  // multipliers — all of it must survive the round trip.
  auto cfg = small_full_visibility("smart_exp3");
  cfg.share = exp::ShareKind::kNoisy;
  for (const Slot cut : {3, 50, 119}) {
    SCOPED_TRACE("cut " + std::to_string(cut));
    check_resume_matches(cfg, cut);
  }
}

TEST(WorldSnapshot, RestoreIntoWrongShapeThrows) {
  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  while (world->now() < 10) world->step();
  const auto words = snapshot_world(*world);

  // A world with a different device count must refuse the words.
  auto other_cfg = small_full_visibility("exp3");
  auto other = exp::build_world(other_cfg, other_cfg.base_seed);
  core::StateReader r(words);
  EXPECT_THROW(other->restore_from(r), core::SnapshotError);
}

TEST(WorldSnapshot, RestoreFromEmptyStreamThrows) {
  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  const std::vector<std::uint64_t> empty;
  core::StateReader r(empty);
  EXPECT_THROW(world->restore_from(r), core::SnapshotError);
}

// --- recorder round trip -------------------------------------------------

TEST(RecorderSnapshot, MidRunRoundTripReproducesResult) {
  auto cfg = testing::golden_config();
  cfg.recorder.track_stability = true;

  // Uninterrupted reference run.
  auto ref_world = exp::build_world(cfg, cfg.base_seed);
  metrics::RunRecorder ref_recorder(cfg.recorder);
  ref_world->set_observer(&ref_recorder);
  ref_world->run();
  const auto expected = ref_recorder.take_result();

  // Run to the cut, snapshot world + recorder.
  constexpr Slot cut = 90;
  auto world = exp::build_world(cfg, cfg.base_seed);
  metrics::RunRecorder recorder(cfg.recorder);
  world->set_observer(&recorder);
  while (world->now() < cut) world->step();
  std::vector<std::uint64_t> world_words;
  core::StateWriter ww(world_words);
  world->snapshot_into(ww);
  std::vector<std::uint64_t> rec_words;
  core::StateWriter rw(rec_words);
  recorder.snapshot_into(rw);

  // Fresh world + recorder; restore; finish.
  auto resumed = exp::build_world(cfg, cfg.base_seed);
  metrics::RunRecorder resumed_recorder(cfg.recorder);
  resumed->set_observer(&resumed_recorder);
  core::StateReader wr(world_words);
  resumed->restore_from(wr);
  ASSERT_TRUE(wr.exhausted());
  core::StateReader rr(rec_words);
  resumed_recorder.restore_from(rr, *resumed);
  ASSERT_TRUE(rr.exhausted());
  while (!resumed->done()) resumed->step();
  resumed_recorder.on_run_end(*resumed);
  const auto actual = resumed_recorder.take_result();

  EXPECT_EQ(expected.downloads_mb, actual.downloads_mb);
  EXPECT_EQ(expected.switches, actual.switches);
  EXPECT_EQ(expected.resets, actual.resets);
  EXPECT_EQ(expected.switching_cost_mb, actual.switching_cost_mb);
  EXPECT_EQ(expected.persistent, actual.persistent);
  EXPECT_EQ(expected.total_download_mb, actual.total_download_mb);
  EXPECT_EQ(expected.unused_mb, actual.unused_mb);
  EXPECT_EQ(expected.at_nash_fraction, actual.at_nash_fraction);
  EXPECT_EQ(expected.eps_fraction, actual.eps_fraction);
  ASSERT_EQ(expected.group_distance.size(), actual.group_distance.size());
  for (std::size_t g = 0; g < expected.group_distance.size(); ++g) {
    EXPECT_EQ(expected.group_distance[g], actual.group_distance[g]) << "group " << g;
  }
  EXPECT_EQ(expected.stability.stable, actual.stability.stable);
  EXPECT_EQ(expected.stability.stable_slot, actual.stability.stable_slot);
}

TEST(RecorderSnapshot, UninitialisedRecorderRoundTripsAsEmpty) {
  // A recorder that never saw a slot (crash before slot 0 completed) must
  // still snapshot and restore cleanly.
  metrics::RunRecorder recorder{metrics::RecorderOptions{}};
  std::vector<std::uint64_t> words;
  core::StateWriter w(words);
  recorder.snapshot_into(w);

  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  metrics::RunRecorder restored{metrics::RecorderOptions{}};
  core::StateReader r(words);
  restored.restore_from(r, *world);
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace smartexp3
