// trace_gen — generate the synthetic WiFi/cellular trace pairs used by the
// §VI-B reproduction (or custom-length/seed variants) and write them as CSV.
//
// Usage:
//   trace_gen [--pair N] [--slots S] [--seed X] [--out PATH] [--summary]
//
//   --pair N    which pair to generate (1..4; default: all four)
//   --slots S   trace length in 15 s slots (default 100 = 25 minutes)
//   --seed X    generator seed (default 7, the reproduction's seed)
//   --out PATH  output file (single pair) or directory prefix (all pairs;
//               files <prefix>trace<N>.csv); default ./ (current directory)
//   --summary   print regime statistics instead of only writing files
#include <iostream>
#include <string>

#include "exp/report.hpp"
#include "trace/synth.hpp"

int main(int argc, char** argv) {
  using namespace smartexp3;

  int pair = 0;  // 0 = all
  trace::SynthOptions options;
  std::string out = "./";
  bool summary = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "trace_gen: " << name << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pair") {
      pair = std::stoi(value("--pair"));
    } else if (arg == "--slots") {
      options.slots = std::stoi(value("--slots"));
    } else if (arg == "--seed") {
      options.seed = std::stoull(value("--seed"));
    } else if (arg == "--out") {
      out = value("--out");
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "trace_gen [--pair 1..4] [--slots S] [--seed X] [--out PATH] "
                   "[--summary]\n";
      return 0;
    } else {
      std::cerr << "trace_gen: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (options.slots <= 0) {
    std::cerr << "trace_gen: --slots must be positive\n";
    return 2;
  }
  if (pair < 0 || pair > 4) {
    std::cerr << "trace_gen: --pair must be 1..4\n";
    return 2;
  }

  const int first = pair == 0 ? 1 : pair;
  const int last = pair == 0 ? 4 : pair;
  for (int idx = first; idx <= last; ++idx) {
    const auto p = trace::synthetic_pair(idx, options);
    std::string path = out;
    if (pair == 0 || path.empty() || path.back() == '/') {
      path += "trace" + std::to_string(idx) + ".csv";
    }
    trace::save_csv(p, path);
    std::cout << "wrote " << path << " (" << p.slots() << " slots)\n";
    if (summary) {
      const auto s = trace::summarise(p);
      std::cout << "  wifi mean " << exp::fmt(s.wifi_mean) << " Mbps, cellular mean "
                << exp::fmt(s.cellular_mean) << " Mbps, cellular leads "
                << exp::fmt(100.0 * s.cellular_dominance, 0) << " % of slots, "
                << s.crossovers << " lead changes\n";
      std::cout << "  wifi [" << exp::sparkline(p.wifi_mbps, 50) << "]\n";
      std::cout << "  cell [" << exp::sparkline(p.cellular_mbps, 50) << "]\n";
    }
  }
  return 0;
}
