#!/usr/bin/env python3
"""Bench-regression gate: diff a fresh BENCH_engine.json against the
committed baseline and fail on a >30% per-policy throughput regression.

Raw slots/sec are not comparable across machines (the committed baseline
comes from one box, CI runners are another, and shared runners drift run to
run), so the check normalises by the median new/baseline ratio across
policies first: a uniformly slower box scales every policy equally and
passes, while one policy falling behind the others — the signature of a real
regression in that policy's hot path — fails the job. The engine-wide
absolute trajectory stays visible through the uploaded JSON artifacts.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.70]
"""

import json
import statistics
import sys


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version", 1) < 2:
        sys.exit(f"{path}: schema_version >= 2 required (regenerate with bench/perf_engine)")
    # Gate on the serial per-policy table only. The single_world_scaling and
    # scalability sections are informational: scaling rows can be flagged
    # "oversubscribed" (threads > cores on the measuring box — scheduler
    # ping-pong, not a property of the code), and rows marked that way must
    # never fail a build, so any flagged row is dropped wherever it appears.
    table = {
        p["policy"]: float(p["slots_per_sec"])
        for p in doc["policies"]
        if not p.get("oversubscribed", False)
    }
    if not table:
        sys.exit(f"{path}: no policies")
    return doc, table


def main(argv):
    if len(argv) < 3:
        sys.exit(__doc__)
    threshold = 0.70
    if "--threshold" in argv:
        pos = argv.index("--threshold")
        if pos + 1 >= len(argv):
            sys.exit("--threshold needs a value\n" + __doc__)
        try:
            threshold = float(argv[pos + 1])
        except ValueError:
            sys.exit(f"--threshold: not a number: {argv[pos + 1]!r}\n" + __doc__)
    baseline_doc, baseline = load_doc(argv[1])
    fresh_doc, fresh = load_doc(argv[2])

    # Ratios are only meaningful for the same workload: per-policy cost
    # scales differently with device count / horizon, so a silent config
    # drift would fabricate or mask regressions. `runs` is excluded — more
    # repetitions of the same workload stay comparable (best-of semantics).
    # Only "config" and the measured entries participate: provenance keys
    # like "meta" (git_sha, generated_utc) never gate the comparison.
    strip = lambda cfg: {k: v for k, v in cfg.items() if k != "runs"}
    if strip(baseline_doc.get("config", {})) != strip(fresh_doc.get("config", {})):
        sys.exit(
            "bench config mismatch between baseline and fresh run:\n"
            f"  baseline: {baseline_doc.get('config')}\n"
            f"  fresh:    {fresh_doc.get('config')}\n"
            "refresh bench/BENCH_engine.baseline.json for the new workload"
        )

    common = sorted(set(baseline) & set(fresh))
    missing = sorted(set(baseline) - set(fresh))
    if missing:
        sys.exit(f"policies missing from fresh run: {', '.join(missing)}")

    ratios = {p: fresh[p] / baseline[p] for p in common}
    scale = statistics.median(ratios.values())
    if scale <= 0.0:
        sys.exit("degenerate throughput ratios")

    failed = []
    print(f"# box-speed scale (median ratio): {scale:.3f}")
    print(f"{'policy':<22} {'baseline':>12} {'fresh':>12} {'normalised':>11}")
    for p in common:
        norm = ratios[p] / scale
        flag = ""
        if norm < threshold:
            failed.append(p)
            flag = f"  << REGRESSION (>{(1 - threshold) * 100:.0f}% vs peers)"
        print(f"{p:<22} {baseline[p]:>12.0f} {fresh[p]:>12.0f} {norm:>10.3f}x{flag}")

    if failed:
        sys.exit(f"throughput regression in: {', '.join(failed)}")
    print("OK: no per-policy regression beyond threshold")


if __name__ == "__main__":
    main(sys.argv)
