// netsel_serve — a long-running network-selection simulation service.
//
// Accepts newline-delimited JSON job requests (ScenarioSpec jobs or registry
// settings with netsel_sim-style overrides) over stdin or a Unix domain
// socket, schedules them across a fixed executor pool with per-job lane
// budgets, and streams one JSON event per line as each job is accepted,
// makes progress, checkpoints, completes or fails. With --state-dir, every
// job's spec and checkpoints are durable: a killed server requeues and
// resumes unfinished jobs on restart, and the resumed summaries are
// bit-identical to uninterrupted runs. SIGINT/SIGTERM trigger a graceful
// drain: intake stops, running jobs flush a final checkpoint at the next
// slot boundary, and a final "drained" event reports every accepted job's
// disposition. Protocol and event grammar: DESIGN.md §7.
//
// Exit codes: 0 after a graceful drain (or clean client close), 1 on a
// transport failure (socket in use, bind/connect error), 2 on a usage error.

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "serve/server.hpp"

namespace {

using namespace smartexp3;

/// SIGINT/SIGTERM set this; the transport loops poll it at ~200 ms cadence
/// and turn it into a graceful drain. Plain lock-free atomic store: the only
/// thing that is async-signal-safe here.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "netsel_serve: " << message << "\n"
            << "run with --help for usage\n";
  std::exit(2);
}

void print_help() {
  std::cout <<
      "netsel_serve — long-running simulation job service\n\n"
      "modes:\n"
      "  --stdin          serve requests from stdin, events on stdout (default)\n"
      "  --socket PATH    serve a Unix domain socket (concurrent clients)\n"
      "  --connect PATH   client: pump stdin requests to a serving socket and\n"
      "                   print its events until the server closes\n\n"
      "service options:\n"
      "  --state-dir DIR  durable job state (specs, checkpoints, results);\n"
      "                   unfinished jobs are requeued and resumed on restart\n"
      "  --jobs N         concurrent jobs (default 2)\n"
      "  --lanes N        total run-level worker lanes, split across jobs\n"
      "                   (default: hardware concurrency)\n"
      "  --checkpoint-every N  slots between durable checkpoints (default 200;\n"
      "                   0 disables; needs --state-dir)\n"
      "  --progress-every N    slots between progress events per run (default 64)\n"
      "  --max-attempts N per-run attempts, retries resume from checkpoints\n"
      "                   (default 2)\n"
      "  --max-job-attempts N  server executions a persisted job may crash\n"
      "                   before recovery quarantines it as poisoned\n"
      "                   (default 3; 0 disables; needs --state-dir)\n"
      "  --queue N        pending-job capacity before admission rejects\n"
      "                   (default 64)\n\n"
      "overload control (DESIGN.md §9):\n"
      "  --quota-queued N       default per-tenant queued-job quota\n"
      "                   (0 = unlimited, the default)\n"
      "  --quota-running N      default per-tenant running-job quota (0 = unlimited)\n"
      "  --quota-device-slots N default per-tenant device-slots (devices x runs)\n"
      "                   in flight (0 = unlimited)\n"
      "  --tenant NAME=Q:R:D    per-tenant override of the three quotas\n"
      "                   (queued:running:device-slots, 0 = unlimited; repeatable)\n"
      "  --no-preempt     disable checkpoint-based preemption: jobs run to\n"
      "                   completion even when higher-priority work waits\n"
      "  -h, --help       show this help\n\n"
      "requests (one JSON object per line):\n"
      "  {\"type\": \"submit\", \"setting\": \"setting1\", \"runs\": 4, \"policy\": \"exp3\"}\n"
      "  {\"type\": \"submit\", \"id\": \"big\", \"setting\": \"scalability_xl\"}\n"
      "  {\"type\": \"submit\", \"spec\": { ... ScenarioSpec object ... }}\n"
      "  {\"type\": \"submit\", \"setting\": \"setting1\", \"tenant\": \"alice\",\n"
      "   \"priority\": 7, \"deadline_s\": 120}\n"
      "  {\"type\": \"stats\"}\n"
      "  {\"type\": \"inject\", \"site\": \"checkpoint.write.enospc\", \"mode\": \"1in3\"}\n"
      "  {\"type\": \"drain\"}\n\n"
      "events (one JSON object per line): serving, accepted, rejected,\n"
      "  requeued, started, progress, checkpointed, degraded, preempted,\n"
      "  completed, failed, interrupted, stats, injected, draining, drained,\n"
      "  error — see DESIGN.md §7/§9. rejected events carry a per-limit\n"
      "  \"reason\" (draining/queue-full/tenant-queued/tenant-device-slots/\n"
      "  invalid/persist) and, for backpressure, a \"retry_after_ms\" hint.\n\n"
      "fault injection: arm failpoints at startup with\n"
      "  NETSEL_FAILPOINTS=site=mode,... (+ NETSEL_FAILPOINT_SEED) or at\n"
      "  runtime with \"inject\" requests (mode \"off\" disarms) — DESIGN.md §8.\n\n"
      "SIGINT/SIGTERM drain gracefully: running jobs flush a final checkpoint\n"
      "and the final \"drained\" event reports every job's disposition.\n"
      "exit codes: 0 graceful drain / clean close, 1 transport failure,\n"
      "  2 usage error\n";
}

int parse_int_arg(const char* name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    usage_error(std::string(name) + " needs an integer, got '" + value + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerConfig config;
  bool mode_set = false;
  std::string connect_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) usage_error(std::string(name) + " needs a value");
      return argv[++i];
    };
    auto set_mode = [&](serve::Transport t) {
      if (mode_set) usage_error("pick one of --stdin / --socket / --connect");
      mode_set = true;
      config.transport = t;
    };
    if (arg == "-h" || arg == "--help") {
      print_help();
      return 0;
    } else if (arg == "--stdin") {
      set_mode(serve::Transport::kStdin);
    } else if (arg == "--socket") {
      set_mode(serve::Transport::kSocket);
      config.socket_path = need_value("--socket");
    } else if (arg == "--connect") {
      set_mode(serve::Transport::kStdin);  // transport unused in client mode
      connect_path = need_value("--connect");
    } else if (arg == "--state-dir") {
      config.service.state_dir = need_value("--state-dir");
    } else if (arg == "--jobs") {
      config.service.executors = parse_int_arg("--jobs", need_value("--jobs"));
      if (config.service.executors < 1) usage_error("--jobs must be >= 1");
    } else if (arg == "--lanes") {
      config.service.lanes = parse_int_arg("--lanes", need_value("--lanes"));
      if (config.service.lanes < 1) usage_error("--lanes must be >= 1");
    } else if (arg == "--checkpoint-every") {
      config.service.checkpoint_every =
          parse_int_arg("--checkpoint-every", need_value("--checkpoint-every"));
      if (config.service.checkpoint_every < 0) {
        usage_error("--checkpoint-every must be >= 0 (0 disables)");
      }
    } else if (arg == "--progress-every") {
      config.service.progress_every =
          parse_int_arg("--progress-every", need_value("--progress-every"));
      if (config.service.progress_every < 1) {
        usage_error("--progress-every must be >= 1");
      }
    } else if (arg == "--max-attempts") {
      config.service.max_attempts =
          parse_int_arg("--max-attempts", need_value("--max-attempts"));
      if (config.service.max_attempts < 1) {
        usage_error("--max-attempts must be >= 1");
      }
    } else if (arg == "--max-job-attempts") {
      config.service.max_job_attempts = parse_int_arg(
          "--max-job-attempts", need_value("--max-job-attempts"));
      if (config.service.max_job_attempts < 0) {
        usage_error("--max-job-attempts must be >= 0 (0 disables quarantine)");
      }
    } else if (arg == "--queue") {
      const int queue = parse_int_arg("--queue", need_value("--queue"));
      if (queue < 1) usage_error("--queue must be >= 1");
      config.service.queue_capacity = static_cast<std::size_t>(queue);
    } else if (arg == "--quota-queued") {
      const int n = parse_int_arg("--quota-queued", need_value("--quota-queued"));
      if (n < 0) usage_error("--quota-queued must be >= 0 (0 = unlimited)");
      config.service.default_quota.max_queued = n;
    } else if (arg == "--quota-running") {
      const int n =
          parse_int_arg("--quota-running", need_value("--quota-running"));
      if (n < 0) usage_error("--quota-running must be >= 0 (0 = unlimited)");
      config.service.default_quota.max_running = n;
    } else if (arg == "--quota-device-slots") {
      const int n = parse_int_arg("--quota-device-slots",
                                  need_value("--quota-device-slots"));
      if (n < 0) {
        usage_error("--quota-device-slots must be >= 0 (0 = unlimited)");
      }
      config.service.default_quota.max_device_slots = n;
    } else if (arg == "--tenant") {
      const std::string spec = need_value("--tenant");
      const auto eq = spec.find('=');
      const auto c1 = spec.find(':', eq == std::string::npos ? 0 : eq + 1);
      const auto c2 = c1 == std::string::npos ? std::string::npos
                                              : spec.find(':', c1 + 1);
      if (eq == std::string::npos || eq == 0 || c1 == std::string::npos ||
          c2 == std::string::npos) {
        usage_error("--tenant needs NAME=QUEUED:RUNNING:DEVICE_SLOTS, got '" +
                    spec + "'");
      }
      serve::TenantQuota q;
      q.max_queued = parse_int_arg("--tenant", spec.substr(eq + 1, c1 - eq - 1));
      q.max_running = parse_int_arg("--tenant", spec.substr(c1 + 1, c2 - c1 - 1));
      q.max_device_slots = parse_int_arg("--tenant", spec.substr(c2 + 1));
      if (q.max_queued < 0 || q.max_running < 0 || q.max_device_slots < 0) {
        usage_error("--tenant quotas must be >= 0 (0 = unlimited)");
      }
      config.service.tenant_quotas[spec.substr(0, eq)] = q;
    } else if (arg == "--no-preempt") {
      config.service.preempt = false;
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // dead clients surface as send() errors

  if (!connect_path.empty()) return serve::run_client(connect_path, g_stop);
  return serve::run_server(config, g_stop);
}
