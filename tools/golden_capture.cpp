// Regenerates the golden-trajectory constants asserted by
// tests/test_golden_trajectory.cpp: runs the golden scenario and prints the
// per-device downloads (exact, 17 significant digits round-trips a double)
// and switch counts as ready-to-paste C++ initialisers.
//
// Only run this when the simulated trajectory is *supposed* to change (e.g.
// a deliberate model fix); for pure refactors the existing constants must
// keep passing untouched.
#include <cinttypes>
#include <cstdio>

#include "../tests/golden_scenario.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace smartexp3;
  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  world->run();

  std::printf("// golden values for seed %" PRIu64 " (paste into test_golden_trajectory.cpp)\n",
              cfg.base_seed);
  std::printf("const double kExpectedDownloadsMb[] = {\n");
  const auto& pool = world->devices();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    std::printf("    %.17g,  // device %d (%s)\n", pool.download_mb[i],
                pool.spec[i].id, pool.spec[i].policy_name.c_str());
  }
  std::printf("};\nconst int kExpectedSwitches[] = {");
  for (const int s : pool.switches) std::printf("%d, ", s);
  std::printf("};\nconst int kExpectedSlotsActive[] = {");
  for (const int s : pool.slots_active) std::printf("%d, ", s);
  std::printf("};\n");
  return 0;
}
