// Regenerates the golden-trajectory constants asserted by
// tests/test_golden_trajectory.cpp: runs the golden scenario and prints the
// per-device downloads (exact, 17 significant digits round-trips a double)
// and switch counts as ready-to-paste C++ initialisers.
//
// Only run this when the simulated trajectory is *supposed* to change (e.g.
// a deliberate model fix); for pure refactors the existing constants must
// keep passing untouched.
#include <cinttypes>
#include <cstdio>

#include "../tests/golden_scenario.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace smartexp3;
  const auto cfg = testing::golden_config();
  auto world = exp::build_world(cfg, cfg.base_seed);
  world->run();

  std::printf("// golden values for seed %" PRIu64 " (paste into test_golden_trajectory.cpp)\n",
              cfg.base_seed);
  std::printf("const double kExpectedDownloadsMb[] = {\n");
  for (const auto& d : world->devices()) {
    std::printf("    %.17g,  // device %d (%s)\n", d.download_mb, d.spec.id,
                d.spec.policy_name.c_str());
  }
  std::printf("};\nconst int kExpectedSwitches[] = {");
  for (const auto& d : world->devices()) std::printf("%d, ", d.switches);
  std::printf("};\nconst int kExpectedSlotsActive[] = {");
  for (const auto& d : world->devices()) std::printf("%d, ", d.slots_active);
  std::printf("};\n");
  return 0;
}
