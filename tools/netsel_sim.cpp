// netsel_sim — command-line driver for the Smart EXP3 network-selection
// simulator. Fully data-driven: canonical settings resolve through the
// setting registry (exp/registry.hpp), and any experiment can be exported
// as a ScenarioSpec file, edited, and re-run without recompiling
// (exp/spec_io.hpp).
//
// Usage:
//   netsel_sim [--setting NAME | --spec FILE] [overrides] [output options]
//   netsel_sim --dump-spec NAME [overrides]      # print the resolved spec
//   netsel_sim --list                            # settings and policies
//
//   --setting NAME   registry setting (default setting1); --list enumerates
//   --spec FILE      run a ScenarioSpec file instead of a registry setting
//   --dump-spec NAME print setting NAME (with overrides applied) as a
//                    ScenarioSpec and exit
//   --list           list registry settings and factory policies, then exit
//
// Overrides (rejected with an explanation when a setting does not take them):
//   --policy NAME    policy for every device (setting default otherwise)
//   --devices N      device count (static / scalability / channel settings)
//   --networks K     network count (scalability setting)
//   --smart N        Smart EXP3 device count (greedy_mix setting)
//   --horizon SLOTS  horizon override in 15 s slots (any setting or spec)
//   --seed S         base seed (default: the setting's or spec's own seed)
//
// Output options:
//   --runs N         independent runs (default 20)
//   --threads N      worker threads (default: hardware concurrency)
//   --shards N       device-pool shards per world (0 = auto; the trajectory
//                    is identical for every value — purely an execution knob)
//   --csv PATH       write the mean distance-to-NE series as CSV
//   --stability      also run the Definition 2 stable-state detector
//   --quiet          summary line only
//
// Examples:
//   netsel_sim --setting setting1 --policy smart_exp3 --runs 100
//   netsel_sim --setting greedy_mix --smart 15 --quiet
//   netsel_sim --dump-spec setting1 > s.json
//   netsel_sim --spec s.json --runs 20
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.hpp"
#include "exp/aggregate.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/spec_io.hpp"
#include "stats/summary.hpp"

namespace {

using namespace smartexp3;

/// SIGINT/SIGTERM set this; the run harness polls it every slot, flushes a
/// final checkpoint (when checkpointing is on) and winds the batch down
/// instead of dying mid-write. Plain lock-free atomic store: the only thing
/// that is async-signal-safe here.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

struct Args {
  std::string setting = "setting1";
  bool setting_set = false;
  std::string spec_file;
  std::string dump_spec;
  bool list = false;
  std::string policy;  // empty = setting/spec default
  int runs = 20;
  int devices = -1;
  int networks = -1;
  int n_smart = -1;
  int horizon = -1;
  bool horizon_set = false;
  std::uint64_t seed = 0;
  bool seed_set = false;
  int threads = 0;
  int shards = -1;  // -1 = config default (0 = auto: one shard per ~16k devices)
  std::string csv;
  bool stability = false;
  bool quiet = false;
  int checkpoint_every = 0;
  std::string checkpoint_dir;
  bool resume = false;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "netsel_sim: " << message << "\n"
            << "run with --help for usage\n";
  std::exit(2);
}

void print_help() {
  std::cout <<
      "netsel_sim — Smart EXP3 network-selection simulator\n\n"
      "modes:\n"
      "  --setting NAME   run a registry setting (default setting1)\n"
      "  --spec FILE      run a ScenarioSpec file\n"
      "  --dump-spec NAME print the resolved spec for a setting and exit\n"
      "  --list           list registry settings and policies, then exit\n\n"
      "overrides:\n"
      "  --policy NAME    ";
  for (const auto& n : core::policy_names()) std::cout << n << ' ';
  std::cout << "\n"
      "  --devices N      device count (static/scalability/channel settings)\n"
      "  --networks K     network count (scalability setting)\n"
      "  --smart N        Smart EXP3 device count (greedy_mix setting)\n"
      "  --horizon SLOTS  horizon override (15 s slots)\n"
      "  --seed S         base seed override\n\n"
      "output:\n"
      "  --runs N         independent runs (default 20)\n"
      "  --threads N      worker threads (default: all cores)\n"
      "  --shards N       device-pool shards per world (0 = auto)\n"
      "  --csv PATH       dump mean distance-to-NE series as CSV\n"
      "  --stability      run the stable-state detector too\n"
      "  --quiet          one summary line only\n\n"
      "crash recovery (see README \"Crash recovery\"):\n"
      "  --checkpoint-every N  durable checkpoint every N slots per run\n"
      "  --checkpoint-dir DIR  where checkpoint files live (required with\n"
      "                        --checkpoint-every / --resume)\n"
      "  --resume              continue each run from its newest valid\n"
      "                        checkpoint; SIGINT/SIGTERM flush a final\n"
      "                        checkpoint before exiting with status 130\n\n"
      "  -h, --help            show this help and exit\n";
}

void print_list() {
  std::cout << "settings (netsel_sim --setting NAME, overrides in parentheses):\n";
  for (const auto& info : exp::setting_catalog()) {
    std::cout << "  " << info.name;
    for (std::size_t i = info.name.size(); i < 20; ++i) std::cout << ' ';
    std::cout << info.summary << '\n';
  }
  std::cout << "\npolicies (--policy NAME):\n ";
  for (const auto& n : core::policy_names()) std::cout << ' ' << n;
  std::cout << "\n  extensions:";
  for (const auto& n : core::extension_policy_names()) std::cout << ' ' << n;
  std::cout << '\n';
}

/// Strict numeric option parsing: stoi/stoull would throw (and terminate the
/// process) on garbage; every malformed or out-of-int-range value must exit
/// 2 with a message instead of truncating or aborting.
int parse_int_arg(const char* name, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    usage_error(std::string(name) + " needs an integer, got '" + value + "'");
  }
  return static_cast<int>(v);
}

std::uint64_t parse_uint_arg(const char* name, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      value.find('-') != std::string::npos) {
    usage_error(std::string(name) + " needs a non-negative integer, got '" + value +
                "'");
  }
  return v;
}

Args parse(int argc, char** argv) {
  Args args;
  std::map<std::string, std::string*> str_opts = {{"--setting", &args.setting},
                                                  {"--spec", &args.spec_file},
                                                  {"--dump-spec", &args.dump_spec},
                                                  {"--policy", &args.policy},
                                                  {"--csv", &args.csv},
                                                  {"--checkpoint-dir", &args.checkpoint_dir}};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      std::exit(0);
    }
    if (arg == "--list") {
      args.list = true;
      continue;
    }
    if (arg == "--stability") {
      args.stability = true;
      continue;
    }
    if (arg == "--quiet") {
      args.quiet = true;
      continue;
    }
    if (arg == "--resume") {
      args.resume = true;
      continue;
    }
    auto need_value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) usage_error(std::string(name) + " needs a value");
      return argv[++i];
    };
    if (auto it = str_opts.find(arg); it != str_opts.end()) {
      *it->second = need_value(arg.c_str());
      if (arg == "--setting") args.setting_set = true;
    } else if (arg == "--runs") {
      args.runs = parse_int_arg("--runs", need_value("--runs"));
    } else if (arg == "--devices") {
      args.devices = parse_int_arg("--devices", need_value("--devices"));
    } else if (arg == "--networks") {
      args.networks = parse_int_arg("--networks", need_value("--networks"));
    } else if (arg == "--smart") {
      args.n_smart = parse_int_arg("--smart", need_value("--smart"));
    } else if (arg == "--horizon") {
      args.horizon = parse_int_arg("--horizon", need_value("--horizon"));
      args.horizon_set = true;
    } else if (arg == "--seed") {
      args.seed = parse_uint_arg("--seed", need_value("--seed"));
      args.seed_set = true;
    } else if (arg == "--threads") {
      args.threads = parse_int_arg("--threads", need_value("--threads"));
    } else if (arg == "--shards") {
      args.shards = parse_int_arg("--shards", need_value("--shards"));
      if (args.shards < 0) {
        usage_error("--shards must be >= 0 (0 = auto), got " +
                    std::to_string(args.shards));
      }
    } else if (arg == "--checkpoint-every") {
      args.checkpoint_every =
          parse_int_arg("--checkpoint-every", need_value("--checkpoint-every"));
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (args.runs <= 0) usage_error("--runs must be positive");
  if (args.checkpoint_every < 0) {
    usage_error("--checkpoint-every must be >= 1 (0 disables checkpointing), got " +
                std::to_string(args.checkpoint_every));
  }
  if (args.checkpoint_every > 0 && args.checkpoint_dir.empty()) {
    usage_error("--checkpoint-every needs --checkpoint-dir DIR");
  }
  if (args.resume && args.checkpoint_dir.empty()) {
    usage_error("--resume needs --checkpoint-dir DIR");
  }
  if (args.horizon_set && args.horizon < 1) {
    usage_error("--horizon must be >= 1, got " + std::to_string(args.horizon));
  }
  if (!args.spec_file.empty() && !args.dump_spec.empty()) {
    usage_error("--spec and --dump-spec are mutually exclusive");
  }
  if (!args.spec_file.empty() && args.setting_set) {
    usage_error("--setting and --spec are mutually exclusive");
  }
  if (!args.policy.empty() && !core::is_valid_policy_name(args.policy)) {
    usage_error("unknown policy '" + args.policy + "'");
  }
  return args;
}

/// Resolve the experiment the arguments describe: a ScenarioSpec file, or a
/// registry setting with the typed overrides.
exp::ExperimentConfig build_config(const Args& args) {
  if (!args.spec_file.empty()) {
    auto cfg = exp::load_spec_file(args.spec_file);
    // Overrides that make sense on an arbitrary spec; structural ones
    // (--devices and friends) belong in the file itself.
    if (args.devices != -1 || args.networks != -1 || args.n_smart != -1) {
      usage_error("--devices/--networks/--smart do not apply to --spec runs; "
                  "edit the spec file instead");
    }
    if (!args.policy.empty()) cfg.with_policy(args.policy);
    if (args.horizon_set) cfg.world.horizon = args.horizon;
    return cfg;
  }
  exp::SettingParams params;
  params.policy = args.policy;
  params.devices = args.devices;
  params.networks = args.networks;
  params.n_smart = args.n_smart;
  params.horizon = args.horizon_set ? args.horizon : -1;
  const std::string& name = args.dump_spec.empty() ? args.setting : args.dump_spec;
  return exp::make_setting(name, params);
}

/// The policy label reported in summaries, derived from the config itself so
/// registry runs and --spec re-runs of the same experiment print identical
/// lines.
std::string policy_label(const exp::ExperimentConfig& cfg) {
  if (cfg.devices.empty()) return "none";
  const std::string& first = cfg.devices.front().policy_name;
  for (const auto& d : cfg.devices) {
    if (d.policy_name != first) return "mixed";
  }
  return first;
}

int run(const Args& args) {
  auto cfg = build_config(args);
  if (args.seed_set) cfg.base_seed = args.seed;
  // Execution knob, not part of the scenario: --shards wins, then the
  // WORLD_SHARDS environment variable, then the config default (auto).
  cfg.world.shards =
      args.shards != -1 ? args.shards : exp::world_shards(cfg.world.shards);
  if (args.stability) cfg.recorder.track_stability = true;
  cfg.validate_or_throw();

  if (!args.dump_spec.empty()) {
    std::cout << exp::to_spec_text(cfg);
    return 0;
  }

  exp::RunOptions options;
  options.checkpoint.every = args.checkpoint_every;
  options.checkpoint.dir = args.checkpoint_dir;
  options.checkpoint.resume = args.resume;
  options.control.stop = &g_stop;
  exp::BatchResult batch = exp::run_many_result(cfg, args.runs, args.threads, options);

  for (const auto& f : batch.failures) {
    std::cerr << "netsel_sim: run " << f.run << " failed after " << f.attempts
              << (f.attempts == 1 ? " attempt: " : " attempts: ") << f.error;
    if (f.last_checkpoint_slot >= 0) {
      std::cerr << " (newest checkpoint: slot " << f.last_checkpoint_slot << ")";
    }
    std::cerr << '\n';
  }
  if (batch.interrupted) {
    std::cerr << "netsel_sim: interrupted";
    if (options.checkpoint.enabled()) {
      std::cerr << " — final checkpoints flushed to " << args.checkpoint_dir
                << "; rerun with --resume to continue";
    }
    std::cerr << '\n';
    return 130;
  }

  std::vector<metrics::RunResult> results;
  results.reserve(batch.results.size());
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.completed[i]) results.push_back(std::move(batch.results[i]));
  }
  if (results.empty()) {
    std::cerr << "netsel_sim: no runs completed\n";
    return 1;
  }
  const int n_ok = static_cast<int>(results.size());

  const auto switches = exp::switch_summary(results);
  const double median_dl = exp::mean_of_run_median_download_mb(results);
  const double eps = 100.0 * exp::mean_eps_fraction(results);
  const std::string policy = policy_label(cfg);

  if (args.quiet) {
    std::cout << cfg.name << ',' << policy << ',' << n_ok << ','
              << exp::fmt(switches.mean, 1) << ',' << exp::fmt(median_dl, 1) << ','
              << exp::fmt(eps, 1) << '\n';
  } else {
    exp::print_heading(cfg.name + " — " + policy + " (" +
                       std::to_string(n_ok) + " runs)");
    std::cout << "devices                : " << cfg.devices.size() << '\n'
              << "horizon                : " << cfg.world.horizon << " slots\n"
              << "switches per device    : " << exp::fmt(switches.mean, 1) << " (sd "
              << exp::fmt(switches.stddev, 1) << ")\n"
              << "median download        : " << exp::fmt(median_dl, 1) << " MB\n"
              << "fairness (sd of DL)    : "
              << exp::fmt(exp::mean_of_run_download_stddev_mb(results), 1) << " MB\n"
              << "% slots at eps-eq      : " << exp::fmt(eps, 1) << " %\n"
              << "resets per device      : "
              << exp::fmt(exp::mean_resets_per_device(results), 2) << '\n';
    if (!results.front().group_distance.empty() &&
        !results.front().group_distance.front().empty()) {
      const auto series = exp::mean_distance_series(results);
      std::cout << "distance to NE         : [" << exp::sparkline(series, 50) << "] "
                << exp::fmt(series.back(), 1) << " % at end\n";
    }
    if (args.stability) {
      const auto s = exp::stability_summary(results);
      std::cout << "stable runs            : " << exp::fmt(100.0 * s.stable_fraction, 1)
                << " % (" << exp::fmt(100.0 * s.stable_at_nash_fraction, 1)
                << " % at NE), median slot "
                << exp::fmt(s.median_stable_slot, 0) << '\n';
    }
  }

  if (!args.csv.empty()) {
    const auto series = exp::mean_distance_series(results);
    std::ofstream out(args.csv);
    if (!out) {
      std::cerr << "netsel_sim: cannot write " << args.csv << '\n';
      return 1;
    }
    out << "slot,distance_pct\n";
    for (std::size_t i = 0; i < series.size(); ++i) out << i << ',' << series[i] << '\n';
    if (!args.quiet) std::cout << "wrote " << args.csv << '\n';
  }
  return batch.failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.list) {
    print_list();
    return 0;
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "netsel_sim: " << e.what() << '\n';
    return 2;
  }
}
