// netsel_sim — command-line driver for the Smart EXP3 network-selection
// simulator.
//
// Usage:
//   netsel_sim [--setting NAME] [--policy NAME] [--runs N] [--devices N]
//              [--horizon SLOTS] [--seed S] [--threads N] [--csv PATH]
//              [--stability] [--quiet]
//
//   --setting   one of: setting1 (default), setting2, join, leave, mobility,
//               controlled, channel, trace1..trace4
//   --policy    any of the nine algorithms (default smart_exp3); ignored
//               device-mix settings keep their own mixes
//   --runs      number of runs (default 20)
//   --devices   override the device count (static settings only)
//   --horizon   override the horizon in 15 s slots
//   --seed      base seed (default 42)
//   --threads   worker threads (default: hardware concurrency)
//   --csv PATH  write the mean distance-to-NE series as CSV
//   --stability also run the Definition 2 stable-state detector
//   --quiet     summary line only
//
// Examples:
//   netsel_sim --setting setting1 --policy smart_exp3 --runs 100
//   netsel_sim --setting leave --policy greedy --csv /tmp/leave.csv
//   netsel_sim --setting trace3 --policy smart_exp3 --runs 200
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/factory.hpp"
#include "exp/aggregate.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/settings.hpp"
#include "stats/summary.hpp"
#include "trace/synth.hpp"

namespace {

using namespace smartexp3;

struct Args {
  std::string setting = "setting1";
  std::string policy = "smart_exp3";
  int runs = 20;
  int devices = -1;
  int horizon = -1;
  std::uint64_t seed = 42;
  int threads = 0;
  std::string csv;
  bool stability = false;
  bool quiet = false;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "netsel_sim: " << message << "\n"
            << "run with --help for usage\n";
  std::exit(2);
}

void print_help() {
  std::cout <<
      "netsel_sim — Smart EXP3 network-selection simulator\n\n"
      "  --setting NAME   setting1|setting2|join|leave|mobility|controlled|\n"
      "                   channel|trace1..trace4 (default setting1)\n"
      "  --policy NAME    ";
  for (const auto& n : core::policy_names()) std::cout << n << ' ';
  std::cout << "\n"
      "  --runs N         independent runs (default 20)\n"
      "  --devices N      device count override (static settings)\n"
      "  --horizon SLOTS  horizon override (15 s slots)\n"
      "  --seed S         base seed (default 42)\n"
      "  --threads N      worker threads (default: all cores)\n"
      "  --csv PATH       dump mean distance-to-NE series as CSV\n"
      "  --stability      run the stable-state detector too\n"
      "  --quiet          one summary line only\n";
}

Args parse(int argc, char** argv) {
  Args args;
  std::map<std::string, std::string*> str_opts = {{"--setting", &args.setting},
                                                  {"--policy", &args.policy},
                                                  {"--csv", &args.csv}};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      std::exit(0);
    }
    if (arg == "--stability") {
      args.stability = true;
      continue;
    }
    if (arg == "--quiet") {
      args.quiet = true;
      continue;
    }
    auto need_value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) usage_error(std::string(name) + " needs a value");
      return argv[++i];
    };
    if (auto it = str_opts.find(arg); it != str_opts.end()) {
      *it->second = need_value(arg.c_str());
    } else if (arg == "--runs") {
      args.runs = std::stoi(need_value("--runs"));
    } else if (arg == "--devices") {
      args.devices = std::stoi(need_value("--devices"));
    } else if (arg == "--horizon") {
      args.horizon = std::stoi(need_value("--horizon"));
    } else if (arg == "--seed") {
      args.seed = std::stoull(need_value("--seed"));
    } else if (arg == "--threads") {
      args.threads = std::stoi(need_value("--threads"));
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (args.runs <= 0) usage_error("--runs must be positive");
  if (!core::is_valid_policy_name(args.policy)) {
    usage_error("unknown policy '" + args.policy + "'");
  }
  return args;
}

exp::ExperimentConfig build_config(const Args& args) {
  const int n = args.devices > 0 ? args.devices : 20;
  if (args.setting == "setting1") return exp::static_setting1(args.policy, n);
  if (args.setting == "setting2") return exp::static_setting2(args.policy, n);
  if (args.setting == "join") return exp::dynamic_join_setting(args.policy);
  if (args.setting == "leave") return exp::dynamic_leave_setting(args.policy);
  if (args.setting == "mobility") return exp::mobility_setting(args.policy);
  if (args.setting == "controlled") return exp::controlled_setting({args.policy});
  if (args.setting == "channel") return exp::channel_selection_setting(args.policy);
  if (args.setting.rfind("trace", 0) == 0 && args.setting.size() == 6) {
    const int idx = args.setting[5] - '0';
    return exp::trace_setting(trace::synthetic_pair(idx), args.policy);
  }
  usage_error("unknown setting '" + args.setting + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  auto cfg = build_config(args);
  if (args.horizon > 0) cfg.world.horizon = args.horizon;
  cfg.base_seed = args.seed;
  if (args.stability) cfg.recorder.track_stability = true;

  const auto results = exp::run_many(cfg, args.runs, args.threads);

  const auto switches = exp::switch_summary(results);
  const double median_dl = exp::mean_of_run_median_download_mb(results);
  const double eps = 100.0 * exp::mean_eps_fraction(results);

  if (args.quiet) {
    std::cout << cfg.name << ',' << args.policy << ',' << args.runs << ','
              << exp::fmt(switches.mean, 1) << ',' << exp::fmt(median_dl, 1) << ','
              << exp::fmt(eps, 1) << '\n';
  } else {
    exp::print_heading(cfg.name + " — " + args.policy + " (" +
                       std::to_string(args.runs) + " runs)");
    std::cout << "devices                : " << cfg.devices.size() << '\n'
              << "horizon                : " << cfg.world.horizon << " slots\n"
              << "switches per device    : " << exp::fmt(switches.mean, 1) << " (sd "
              << exp::fmt(switches.stddev, 1) << ")\n"
              << "median download        : " << exp::fmt(median_dl, 1) << " MB\n"
              << "fairness (sd of DL)    : "
              << exp::fmt(exp::mean_of_run_download_stddev_mb(results), 1) << " MB\n"
              << "% slots at eps-eq      : " << exp::fmt(eps, 1) << " %\n"
              << "resets per device      : "
              << exp::fmt(exp::mean_resets_per_device(results), 2) << '\n';
    if (!results.front().group_distance.empty() &&
        !results.front().group_distance.front().empty()) {
      const auto series = exp::mean_distance_series(results);
      std::cout << "distance to NE         : [" << exp::sparkline(series, 50) << "] "
                << exp::fmt(series.back(), 1) << " % at end\n";
    }
    if (args.stability) {
      const auto s = exp::stability_summary(results);
      std::cout << "stable runs            : " << exp::fmt(100.0 * s.stable_fraction, 1)
                << " % (" << exp::fmt(100.0 * s.stable_at_nash_fraction, 1)
                << " % at NE), median slot "
                << exp::fmt(s.median_stable_slot, 0) << '\n';
    }
  }

  if (!args.csv.empty()) {
    const auto series = exp::mean_distance_series(results);
    std::ofstream out(args.csv);
    if (!out) {
      std::cerr << "netsel_sim: cannot write " << args.csv << '\n';
      return 1;
    }
    out << "slot,distance_pct\n";
    for (std::size_t i = 0; i < series.size(); ++i) out << i << ',' << series[i] << '\n';
    if (!args.quiet) std::cout << "wrote " << args.csv << '\n';
  }
  return 0;
}
