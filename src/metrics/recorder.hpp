// RunRecorder: the WorldObserver that turns a simulation run into the
// metrics the paper reports — distance-to-NE series (Definition 3), time at
// (ε-)equilibrium, Definition 4 distances, stable-state detection inputs
// (Definition 2), per-device downloads and switch counts, unutilized
// resources, and optional per-slot selection timelines (Figure 12).
#pragma once

#include <vector>

#include "metrics/stability.hpp"
#include "netsim/world.hpp"

namespace smartexp3::metrics {

struct RecorderOptions {
  bool track_distance = true;      ///< Definition 3 series, per group
  bool track_stability = false;    ///< Definition 2 inputs (per-slot probabilities)
  bool track_def4 = false;         ///< Definition 4 series (controlled experiments)
  bool track_selections = false;   ///< per-device per-slot network + rate (Fig 12)
  /// Device groups for per-group distance series (paper Fig 9). Empty =
  /// one group containing every device.
  std::vector<std::vector<DeviceId>> groups;
  double epsilon = 7.5;            ///< ε (percent) for the ε-equilibrium shading
};

/// Everything measured in one run.
struct RunResult {
  // Per-slot series.
  std::vector<std::vector<double>> group_distance;  ///< [group][slot]
  std::vector<double> def4;                         ///< [slot]
  /// Definition 4 restricted to each device group (only filled when both
  /// track_def4 and groups are set — paper Fig 15's per-policy curves).
  std::vector<std::vector<double>> group_def4;      ///< [group][slot]
  // Allocation-quality fractions over the horizon.
  double at_nash_fraction = 0.0;
  double eps_fraction = 0.0;
  // Definition 2.
  StabilityResult stability;
  // Per-device accounting, indexed like World::devices().
  std::vector<double> downloads_mb;
  std::vector<double> switching_cost_mb;  ///< download lost to association delay
  std::vector<int> switches;
  std::vector<int> resets;
  std::vector<int> switch_backs;
  std::vector<bool> persistent;  ///< device was present the entire run
  // Aggregates.
  double total_download_mb = 0.0;
  double unused_mb = 0.0;  ///< capacity of empty networks, integrated
  // Optional timelines.
  std::vector<std::vector<int>> selections;   ///< [device][slot] net id / -1
  std::vector<std::vector<double>> rates;     ///< [device][slot] Mbps

  const std::vector<double>& distance() const { return group_distance.front(); }
};

class RunRecorder final : public netsim::WorldObserver {
 public:
  explicit RunRecorder(RecorderOptions options = {});

  void on_slot_end(Slot t, const netsim::World& world) override;
  void on_run_end(const netsim::World& world) override;

  /// Valid after on_run_end (i.e. after World::run()).
  const RunResult& result() const { return result_; }
  RunResult take_result() { return std::move(result_); }

  /// Checkpoint the per-slot accumulators: slot counters, every recorded
  /// series and the unused-capacity integral. The end-of-run aggregates
  /// (downloads, stats) are recomputed from the world by on_run_end, and the
  /// visibility caches rebuild themselves on the next slot, so neither is
  /// serialized.
  void snapshot_into(core::StateWriter& w) const;

  /// Restore into a recorder built with the *same* options, observing a
  /// world restored from the matching snapshot. Sizes the scratch buffers
  /// first (ensure_initialised), then overwrites the accumulators, so the
  /// resumed run records a series bit-identical to an uninterrupted one.
  void restore_from(core::StateReader& r, const netsim::World& world);

 private:
  void ensure_initialised(const netsim::World& world);
  /// Fill the scratch rows (nets/gains/visible) with the active devices among
  /// `indices` (null = all devices). Returns the number of rows written.
  std::size_t collect_active(const netsim::World& world, const std::vector<int>* indices);

  RecorderOptions options_;
  RunResult result_;
  bool initialised_ = false;
  long slots_seen_ = 0;
  long at_nash_slots_ = 0;
  long eps_slots_ = 0;
  std::vector<std::vector<int>> group_index_;           // device indices per group
  std::vector<std::vector<int>> locked_;                // [device][slot]
  std::vector<int> area_cache_;                         // last known device areas
  std::vector<std::vector<int>> visible_cache_;         // per device network indices
  bool restricted_visibility_ = false;
  // Per-slot scratch, sized once in ensure_initialised: on_slot_end runs
  // every slot of every run, so its steady state must stay off the heap
  // (asserted by the recorder allocation test). Series vectors are likewise
  // reserved to the horizon up front.
  std::vector<double> capacities_scratch_;   // per-network capacity this slot
  std::vector<int> nets_scratch_;            // active devices' current networks
  std::vector<double> gains_scratch_;        // active devices' observed rates
  std::vector<std::vector<int>> visible_scratch_;  // active devices' visibility rows
  std::vector<std::vector<int>> empty_visible_;    // unrestricted-visibility stand-in
  std::vector<double> probs_scratch_;        // one policy's mixed strategy
  std::vector<int> ids_scratch_;             // one policy's network ids
};

}  // namespace smartexp3::metrics
