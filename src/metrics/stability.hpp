// Stable-state detection (paper Definition 2).
//
// An algorithm has reached a stable state at slot t0 when every device keeps
// some fixed network at selection probability >= 0.75 from t0 through the
// end of the run. The run is "stable at Nash equilibrium" when the
// allocation implied by those locked networks is a pure Nash equilibrium.
#pragma once

#include <vector>

namespace smartexp3::metrics {

/// Probability threshold of Definition 2.
inline constexpr double kStableProbability = 0.75;

struct StabilityResult {
  bool stable = false;
  int stable_slot = -1;       ///< earliest t0 satisfying Definition 2
  bool at_nash = false;       ///< locked allocation is a pure NE
  bool at_eps_nash = false;   ///< ... or at least an ε-equilibrium (ε = 7.5 %)
};

/// `locked[d][t]` is the network id device d holds with probability >= 0.75
/// at slot t, or -1 when no network meets the threshold. All rows must have
/// equal length (the horizon). `capacities[i]` is the capacity of network id
/// i (used for the NE classification).
StabilityResult detect_stable_state(const std::vector<std::vector<int>>& locked,
                                    const std::vector<double>& capacities);

/// Helper: the locked value for one mixed strategy (argmax probability if it
/// clears the threshold, else -1). `nets[i]` maps strategy index -> network.
int locked_network(const std::vector<double>& probabilities, const std::vector<int>& nets,
                   double threshold = kStableProbability);

}  // namespace smartexp3::metrics
