#include "metrics/nash.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace smartexp3::metrics {

std::vector<int> water_fill_allocation(const std::vector<double>& capacities, int n_devices) {
  if (capacities.empty()) throw std::invalid_argument("water_fill: no networks");
  std::vector<int> counts(capacities.size(), 0);
  for (int d = 0; d < n_devices; ++d) {
    std::size_t best = 0;
    double best_share = -1.0;
    for (std::size_t i = 0; i < capacities.size(); ++i) {
      const double share = capacities[i] / static_cast<double>(counts[i] + 1);
      if (share > best_share + 1e-12) {
        best_share = share;
        best = i;
      }
    }
    ++counts[best];
  }
  return counts;
}

bool is_nash(const std::vector<double>& capacities, const std::vector<int>& counts,
             double tolerance) {
  assert(capacities.size() == counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double own = capacities[i] / static_cast<double>(counts[i]);
    for (std::size_t j = 0; j < counts.size(); ++j) {
      if (j == i) continue;
      const double other = capacities[j] / static_cast<double>(counts[j] + 1);
      if (other > own * (1.0 + tolerance) + tolerance) return false;
    }
  }
  return true;
}

bool is_epsilon_nash(const std::vector<double>& capacities, const std::vector<int>& counts,
                     double eps_percent) {
  assert(capacities.size() == counts.size());
  const double slack = 1.0 + eps_percent / 100.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double own = capacities[i] / static_cast<double>(counts[i]);
    for (std::size_t j = 0; j < counts.size(); ++j) {
      if (j == i) continue;
      const double other = capacities[j] / static_cast<double>(counts[j] + 1);
      if (other > own * slack) return false;
    }
  }
  return true;
}

std::vector<double> allocation_gains(const std::vector<double>& capacities,
                                     const std::vector<int>& counts) {
  assert(capacities.size() == counts.size());
  std::vector<double> gains;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double share = capacities[i] / std::max(counts[i], 1);
    for (int d = 0; d < counts[i]; ++d) gains.push_back(share);
  }
  return gains;
}

double distance_to_nash(const std::vector<double>& capacities,
                        const std::vector<int>& counts,
                        const std::vector<int>& device_network,
                        const std::vector<double>& device_gain,
                        const std::vector<std::vector<int>>& visible,
                        double min_gain) {
  assert(device_network.size() == device_gain.size());
  double worst = 0.0;
  for (std::size_t j = 0; j < device_network.size(); ++j) {
    const int cur = device_network[j];
    if (cur < 0) continue;
    const double g = std::max(device_gain[j], min_gain);
    auto consider = [&](int i) {
      if (i == cur) return;
      const double would = capacities[static_cast<std::size_t>(i)] /
                           static_cast<double>(counts[static_cast<std::size_t>(i)] + 1);
      const double pct = (would - g) / g * 100.0;
      worst = std::max(worst, pct);
    };
    if (!visible.empty()) {
      for (const int i : visible[j]) consider(i);
    } else {
      for (std::size_t i = 0; i < capacities.size(); ++i) consider(static_cast<int>(i));
    }
  }
  return worst;
}

double distance_from_average_rate(double aggregate_capacity_mbps,
                                  const std::vector<double>& device_gain) {
  if (device_gain.empty() || aggregate_capacity_mbps <= 0.0) return 0.0;
  const double g_avg = aggregate_capacity_mbps / static_cast<double>(device_gain.size());
  double total = 0.0;
  for (const double g : device_gain) {
    total += std::max(g_avg - g, 0.0) * 100.0 / g_avg;
  }
  return total / static_cast<double>(device_gain.size());
}

double optimal_distance_from_average_rate(const std::vector<double>& capacities,
                                          int n_devices) {
  if (n_devices <= 0) return 0.0;
  const auto counts = water_fill_allocation(capacities, n_devices);
  double aggregate = 0.0;
  for (const double c : capacities) aggregate += c;
  return distance_from_average_rate(aggregate, allocation_gains(capacities, counts));
}

}  // namespace smartexp3::metrics
