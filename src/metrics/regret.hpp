// Weak-regret accounting and the paper's analytic bounds (Theorems 2 & 3).
//
// Weak regret (paper Definition 1) is the cumulative goodput of always
// playing the best network in hindsight minus the algorithm's, where the
// algorithm additionally pays its switching delays. All quantities here are
// expressed in scaled gain units (per-slot gains in [0, 1], as fed to the
// policies), which is the unit the theorems are stated in.
#pragma once

#include <vector>

namespace smartexp3::metrics {

/// Theorem 2 (no-reset form, tau = T, t_d = 1): upper bound on the expected
/// number of network switches, 3 k log(T + 1) / log(1 + beta).
double theorem2_switch_bound(int k, double beta, long horizon);

/// Theorem 2, general form: (T / tau) * 3 k log(tau / t_d + 1) / log(1+beta).
double theorem2_switch_bound(int k, double beta, long horizon, double tau, double td);

/// Theorem 3 (no-reset form): upper bound on expected weak regret,
///   (1 + gamma l (e-2)) Gmax + k ln k / gamma
///     + mu_d mu_g 3 k log(T + 1) / log(1 + beta)
/// with Gmax the best arm's cumulative gain, l the largest block length,
/// mu_d the mean switching delay in *slots* and mu_g the mean per-slot gain.
double theorem3_regret_bound(double g_max, int k, double gamma, double beta,
                             int longest_block, double mean_delay_slots,
                             double mean_gain, long horizon);

/// Measured weak regret of one single-device run against an exogenous
/// environment (e.g. a trace world).
struct WeakRegret {
  double g_max = 0.0;        ///< best fixed arm's cumulative gain
  double g_alg = 0.0;        ///< algorithm's cumulative gain (ignoring delay)
  double delay_loss = 0.0;   ///< gain-slots lost re-associating
  double regret = 0.0;       ///< g_max - (g_alg - delay_loss)
  int best_arm = -1;
  int switches = 0;
  int longest_block = 0;     ///< longest run of identical selections
};

/// `per_arm_gains[i][t]` is the scaled gain arm i would have produced at
/// slot t; `selections[t]` is the arm the algorithm held (index into
/// per_arm_gains); `delay_loss_gain_slots` converts the run's association
/// delays into gain units (delay_seconds / slot_seconds * gain at that
/// slot, pre-summed by the caller).
WeakRegret measure_weak_regret(const std::vector<std::vector<double>>& per_arm_gains,
                               const std::vector<int>& selections,
                               double delay_loss_gain_slots);

/// Longest run of identical values (used as the empirical largest block
/// length l in the Theorem 3 bound).
int longest_constant_run(const std::vector<int>& xs);

}  // namespace smartexp3::metrics
