#include "metrics/stability.hpp"

#include <algorithm>
#include <cassert>

#include "metrics/nash.hpp"

namespace smartexp3::metrics {

int locked_network(const std::vector<double>& probabilities, const std::vector<int>& nets,
                   double threshold) {
  assert(probabilities.size() == nets.size());
  if (probabilities.empty()) return -1;
  const auto it = std::max_element(probabilities.begin(), probabilities.end());
  if (*it < threshold) return -1;
  return nets[static_cast<std::size_t>(it - probabilities.begin())];
}

StabilityResult detect_stable_state(const std::vector<std::vector<int>>& locked,
                                    const std::vector<double>& capacities) {
  StabilityResult result;
  if (locked.empty() || locked.front().empty()) return result;
  const std::size_t horizon = locked.front().size();

  int stable_slot = 0;
  for (const auto& row : locked) {
    assert(row.size() == horizon);
    const int final_net = row.back();
    if (final_net < 0) return result;  // this device never settled
    // Earliest suffix over which the device holds final_net.
    int device_start = static_cast<int>(horizon) - 1;
    while (device_start > 0 && row[static_cast<std::size_t>(device_start - 1)] == final_net) {
      --device_start;
    }
    stable_slot = std::max(stable_slot, device_start);
  }

  result.stable = true;
  result.stable_slot = stable_slot;

  std::vector<int> counts(capacities.size(), 0);
  for (const auto& row : locked) {
    const int net = row.back();
    if (net >= 0 && static_cast<std::size_t>(net) < counts.size()) {
      ++counts[static_cast<std::size_t>(net)];
    }
  }
  result.at_nash = is_nash(capacities, counts);
  result.at_eps_nash = is_epsilon_nash(capacities, counts);
  return result;
}

}  // namespace smartexp3::metrics
