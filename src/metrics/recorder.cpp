#include "metrics/recorder.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/snapshot.hpp"

#include "metrics/nash.hpp"

namespace smartexp3::metrics {

RunRecorder::RunRecorder(RecorderOptions options) : options_(std::move(options)) {}

void RunRecorder::ensure_initialised(const netsim::World& world) {
  if (initialised_) return;
  initialised_ = true;

  const auto& devices = world.devices();
  const auto& networks = world.networks();

  // Map the configured groups (device ids) onto device indices; default is a
  // single group covering everyone.
  if (options_.groups.empty()) {
    group_index_.emplace_back();
    for (std::size_t i = 0; i < devices.size(); ++i) {
      group_index_.front().push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& group : options_.groups) {
      std::vector<int> idx;
      for (const DeviceId id : group) {
        for (std::size_t i = 0; i < devices.size(); ++i) {
          if (devices.spec[i].id == id) idx.push_back(static_cast<int>(i));
        }
      }
      group_index_.push_back(std::move(idx));
    }
  }
  result_.group_distance.assign(group_index_.size(), {});

  restricted_visibility_ =
      std::any_of(networks.begin(), networks.end(),
                  [](const netsim::Network& n) { return !n.areas.empty(); });
  area_cache_.assign(devices.size(), -1);
  visible_cache_.assign(devices.size(), {});

  if (options_.track_stability) locked_.assign(devices.size(), {});
  if (options_.track_selections) {
    result_.selections.assign(devices.size(), {});
    result_.rates.assign(devices.size(), {});
  }

  // Reserve every per-slot series to the horizon and size the scratch
  // buffers once, so on_slot_end never touches the heap after this point.
  const auto horizon = static_cast<std::size_t>(world.config().horizon);
  for (auto& series : result_.group_distance) series.reserve(horizon);
  if (options_.track_def4) {
    result_.def4.reserve(horizon);
    if (!options_.groups.empty()) {
      result_.group_def4.assign(group_index_.size(), {});
      for (auto& series : result_.group_def4) series.reserve(horizon);
    }
  }
  for (auto& row : locked_) row.reserve(horizon);
  for (auto& row : result_.selections) row.reserve(horizon);
  for (auto& row : result_.rates) row.reserve(horizon);
  capacities_scratch_.resize(networks.size());
  nets_scratch_.reserve(devices.size());
  gains_scratch_.reserve(devices.size());
  visible_scratch_.resize(devices.size());
  probs_scratch_.reserve(networks.size());
  ids_scratch_.reserve(networks.size());
}

std::size_t RunRecorder::collect_active(const netsim::World& world,
                                        const std::vector<int>* indices) {
  const auto& devices = world.devices();
  nets_scratch_.clear();
  gains_scratch_.clear();
  std::size_t rows = 0;
  auto add = [&](std::size_t i) {
    if (!devices.active[i]) return;
    nets_scratch_.push_back(devices.current[i]);
    gains_scratch_.push_back(devices.last_rate_mbps[i]);
    if (restricted_visibility_) {
      auto& row = visible_scratch_[rows];
      row.assign(visible_cache_[i].begin(), visible_cache_[i].end());
    }
    ++rows;
  };
  if (indices != nullptr) {
    for (const int i : *indices) add(static_cast<std::size_t>(i));
  } else {
    for (std::size_t i = 0; i < devices.size(); ++i) add(i);
  }
  return rows;
}

void RunRecorder::on_slot_end(Slot t, const netsim::World& world) {
  ensure_initialised(world);
  const auto& devices = world.devices();
  const auto& networks = world.networks();
  const auto& counts = world.counts();
  ++slots_seen_;

  auto& capacities = capacities_scratch_;
  for (std::size_t i = 0; i < networks.size(); ++i) capacities[i] = networks[i].capacity(t);

  // Refresh per-device visibility (only when areas are in play).
  if (restricted_visibility_) {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (!devices.active[i]) continue;
      if (area_cache_[i] != devices.area[i]) {
        area_cache_[i] = devices.area[i];
        visible_cache_[i].clear();
        for (std::size_t n = 0; n < networks.size(); ++n) {
          if (networks[n].covers(devices.area[i])) {
            visible_cache_[i].push_back(static_cast<int>(n));
          }
        }
      }
    }
  }

  // Distance to NE (Definition 3), per group. Rows beyond the collected
  // count in visible_scratch_ are stale but never read: distance_to_nash
  // only indexes one visibility row per collected device.
  const auto& visible = restricted_visibility_ ? visible_scratch_ : empty_visible_;
  if (options_.track_distance) {
    for (std::size_t g = 0; g < group_index_.size(); ++g) {
      const std::size_t rows = collect_active(world, &group_index_[g]);
      const double dist = rows == 0 ? 0.0
                                    : distance_to_nash(capacities, counts, nets_scratch_,
                                                       gains_scratch_, visible);
      result_.group_distance[g].push_back(dist);
    }
  }

  // Allocation-quality fractions, over all active devices.
  if (collect_active(world, nullptr) > 0) {
    if (is_nash(capacities, counts)) ++at_nash_slots_;
    const double dist =
        distance_to_nash(capacities, counts, nets_scratch_, gains_scratch_, visible);
    if (dist <= options_.epsilon) ++eps_slots_;
  }

  // Definition 4 (controlled experiments): average % shortfall from the
  // per-device fair share of the aggregate capacity. gains_scratch_ still
  // holds every active device's rate from the global collect above.
  if (options_.track_def4) {
    double aggregate = 0.0;
    for (const double c : capacities) aggregate += c;
    result_.def4.push_back(distance_from_average_rate(aggregate, gains_scratch_));

    // Per-group curves (Fig 15): same global fair share g_avg, shortfalls
    // averaged within each group only.
    if (!options_.groups.empty()) {
      const int n_active = world.active_device_count();
      const double g_avg = n_active > 0 ? aggregate / n_active : 0.0;
      for (std::size_t g = 0; g < group_index_.size(); ++g) {
        double total = 0.0;
        int n = 0;
        for (const int gi : group_index_[g]) {
          const auto i = static_cast<std::size_t>(gi);
          if (!devices.active[i]) continue;
          if (g_avg > 0.0) {
            total += std::max(g_avg - devices.last_rate_mbps[i], 0.0) * 100.0 / g_avg;
          }
          ++n;
        }
        result_.group_def4[g].push_back(n > 0 ? total / n : 0.0);
      }
    }
  }

  if (options_.track_stability) {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      int lock = -1;
      if (devices.active[i]) {
        devices.policy[i]->probabilities_into(probs_scratch_);
        const auto& nets = devices.policy[i]->networks();
        ids_scratch_.assign(nets.begin(), nets.end());
        lock = locked_network(probs_scratch_, ids_scratch_);
      }
      locked_[i].push_back(lock);
    }
  }

  if (options_.track_selections) {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      result_.selections[i].push_back(devices.active[i] ? devices.current[i] : -1);
      result_.rates[i].push_back(devices.active[i] ? devices.last_rate_mbps[i] : 0.0);
    }
  }

  result_.unused_mb += mbps_seconds_to_mb(world.unused_capacity_mbps(t),
                                          world.config().slot_seconds);
}

[[gnu::cold]] void RunRecorder::snapshot_into(core::StateWriter& w) const {
  w.section(0x5245434fu);  // "RECO"
  // A recorder that has not seen a slot yet has nothing to carry over — a
  // fresh recorder on the restoring side already matches it.
  w.b(initialised_);
  if (!initialised_) return;
  w.i64(slots_seen_);
  w.i64(at_nash_slots_);
  w.i64(eps_slots_);
  w.f64(result_.unused_mb);
  w.u64(result_.group_distance.size());
  for (const auto& series : result_.group_distance) w.f64_vec(series);
  w.f64_vec(result_.def4);
  w.u64(result_.group_def4.size());
  for (const auto& series : result_.group_def4) w.f64_vec(series);
  w.u64(locked_.size());
  for (const auto& row : locked_) w.int_vec(row);
  w.u64(result_.selections.size());
  for (const auto& row : result_.selections) w.int_vec(row);
  w.u64(result_.rates.size());
  for (const auto& row : result_.rates) w.f64_vec(row);
}

[[gnu::cold]] void RunRecorder::restore_from(core::StateReader& r, const netsim::World& world) {
  r.section(0x5245434fu, "run recorder");
  if (!r.b()) return;
  // Size the group index, series vectors and scratch buffers from the world
  // *before* overwriting the accumulators — restoring into unsized scratch
  // would leave on_slot_end indexing empty rows.
  ensure_initialised(world);
  slots_seen_ = r.i64();
  at_nash_slots_ = r.i64();
  eps_slots_ = r.i64();
  result_.unused_mb = r.f64();
  const auto horizon = static_cast<std::size_t>(world.config().horizon);
  auto read_f64_series = [&](std::vector<std::vector<double>>& series,
                             const char* what) {
    if (r.count(what) != series.size()) {
      throw core::SnapshotError(std::string("recorder snapshot ") + what +
                                " count mismatch");
    }
    for (auto& row : series) {
      r.f64_vec(row, what);
      row.reserve(horizon);  // keep the resumed steady state allocation-free
    }
  };
  auto read_int_series = [&](std::vector<std::vector<int>>& series, const char* what) {
    if (r.count(what) != series.size()) {
      throw core::SnapshotError(std::string("recorder snapshot ") + what +
                                " count mismatch");
    }
    for (auto& row : series) {
      r.int_vec(row, what);
      row.reserve(horizon);
    }
  };
  read_f64_series(result_.group_distance, "recorder distance series");
  r.f64_vec(result_.def4, "recorder def4 series");
  result_.def4.reserve(horizon);
  read_f64_series(result_.group_def4, "recorder group def4 series");
  read_int_series(locked_, "recorder stability rows");
  read_int_series(result_.selections, "recorder selection rows");
  read_f64_series(result_.rates, "recorder rate rows");
}

void RunRecorder::on_run_end(const netsim::World& world) {
  ensure_initialised(world);
  const auto& devices = world.devices();
  const auto horizon = world.config().horizon;

  result_.downloads_mb.clear();
  result_.switching_cost_mb.clear();
  result_.switches.clear();
  result_.resets.clear();
  result_.switch_backs.clear();
  result_.persistent.clear();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    result_.downloads_mb.push_back(devices.download_mb[i]);
    result_.switching_cost_mb.push_back(devices.delay_loss_mb[i]);
    result_.switches.push_back(devices.switches[i]);
    const auto stats = devices.policy[i]->stats();
    result_.resets.push_back(stats.resets);
    result_.switch_backs.push_back(stats.switch_backs);
    const auto& spec = devices.spec[i];
    result_.persistent.push_back(
        spec.join_slot == 0 && (spec.leave_slot < 0 || spec.leave_slot >= horizon));
    result_.total_download_mb += devices.download_mb[i];
  }

  if (slots_seen_ > 0) {
    result_.at_nash_fraction = static_cast<double>(at_nash_slots_) / slots_seen_;
    result_.eps_fraction = static_cast<double>(eps_slots_) / slots_seen_;
  }

  if (options_.track_stability) {
    std::vector<double> capacities(world.networks().size());
    for (std::size_t i = 0; i < capacities.size(); ++i) {
      capacities[i] = world.networks()[i].capacity(horizon - 1);
    }
    result_.stability = detect_stable_state(locked_, capacities);
  }
}

}  // namespace smartexp3::metrics
