#include "metrics/regret.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace smartexp3::metrics {

double theorem2_switch_bound(int k, double beta, long horizon) {
  return theorem2_switch_bound(k, beta, horizon, static_cast<double>(horizon), 1.0);
}

double theorem2_switch_bound(int k, double beta, long horizon, double tau, double td) {
  if (k <= 0 || beta <= 0.0 || horizon <= 0 || tau <= 0.0 || td <= 0.0) {
    throw std::invalid_argument("theorem2_switch_bound: invalid parameters");
  }
  const double periods = static_cast<double>(horizon) / tau;
  return periods * 3.0 * k * std::log(tau / td + 1.0) / std::log(1.0 + beta);
}

double theorem3_regret_bound(double g_max, int k, double gamma, double beta,
                             int longest_block, double mean_delay_slots,
                             double mean_gain, long horizon) {
  if (k <= 0 || gamma <= 0.0 || gamma > 1.0 || beta <= 0.0) {
    throw std::invalid_argument("theorem3_regret_bound: invalid parameters");
  }
  const double e_minus_2 = std::exp(1.0) - 2.0;
  const double exploration_term =
      (1.0 + gamma * longest_block * e_minus_2) * g_max + k * std::log(k) / gamma;
  const double switching_term =
      mean_delay_slots * mean_gain * theorem2_switch_bound(k, beta, horizon);
  return exploration_term + switching_term;
}

int longest_constant_run(const std::vector<int>& xs) {
  int best = 0;
  int run = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    run = (i > 0 && xs[i] == xs[i - 1]) ? run + 1 : 1;
    best = std::max(best, run);
  }
  return best;
}

WeakRegret measure_weak_regret(const std::vector<std::vector<double>>& per_arm_gains,
                               const std::vector<int>& selections,
                               double delay_loss_gain_slots) {
  WeakRegret out;
  if (per_arm_gains.empty()) return out;
  const std::size_t horizon = selections.size();

  for (std::size_t arm = 0; arm < per_arm_gains.size(); ++arm) {
    assert(per_arm_gains[arm].size() >= horizon);
    double total = 0.0;
    for (std::size_t t = 0; t < horizon; ++t) total += per_arm_gains[arm][t];
    if (total > out.g_max) {
      out.g_max = total;
      out.best_arm = static_cast<int>(arm);
    }
  }

  for (std::size_t t = 0; t < horizon; ++t) {
    const int arm = selections[t];
    if (arm < 0) continue;
    out.g_alg += per_arm_gains[static_cast<std::size_t>(arm)][t];
    if (t > 0 && selections[t - 1] >= 0 && selections[t - 1] != arm) ++out.switches;
  }

  out.delay_loss = delay_loss_gain_slots;
  out.regret = out.g_max - (out.g_alg - out.delay_loss);
  out.longest_block = longest_constant_run(selections);
  return out;
}

}  // namespace smartexp3::metrics
