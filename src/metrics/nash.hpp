// Nash-equilibrium machinery for the singleton congestion game with
// equal-share payoffs U_i(n) = b_i / n.
//
// Provides: computing an equilibrium allocation (water-filling best-response
// insertion, which is exact for this game), verifying whether an arbitrary
// allocation is a (pure) Nash equilibrium, and the paper's Definition 3
// "distance to Nash equilibrium" metric together with its ε-equilibrium
// interpretation and the Definition 4 "distance from average bit rate
// available" metric used in the real-world experiments.
#pragma once

#include <vector>

namespace smartexp3::metrics {

/// Compute an equilibrium allocation of `n_devices` over networks with the
/// given capacities (Mbps): repeatedly assign the next device to the network
/// offering the best post-join share b_i / (n_i + 1). Ties break toward the
/// lower index, making the result deterministic. Returns per-network device
/// counts.
std::vector<int> water_fill_allocation(const std::vector<double>& capacities, int n_devices);

/// Whether `counts` is a pure Nash equilibrium: no occupied network's share
/// can be improved by a unilateral move, i.e. for all i with n_i > 0 and all
/// j != i: b_i / n_i >= b_j / (n_j + 1) (up to a relative tolerance).
bool is_nash(const std::vector<double>& capacities, const std::vector<int>& counts,
             double tolerance = 1e-9);

/// Whether `counts` is an epsilon-equilibrium in the paper's sense: no
/// device can improve its share by more than eps_percent (default 7.5, the
/// paper's shading) through a unilateral move.
bool is_epsilon_nash(const std::vector<double>& capacities, const std::vector<int>& counts,
                     double eps_percent = 7.5);

/// Per-device gain vector implied by an allocation under equal sharing;
/// devices on network i observe capacities[i] / counts[i].
std::vector<double> allocation_gains(const std::vector<double>& capacities,
                                     const std::vector<int>& counts);

/// Paper Definition 3 — distance to Nash equilibrium, computed as the
/// maximum percentage gain increase any device could obtain by a unilateral
/// deviation. Zero exactly at a Nash equilibrium, and the state is at
/// ε-equilibrium iff the distance is <= ε (in percent).
///
/// `device_network[j]` is the network index of device j; `device_gain[j]` is
/// the bit rate (Mbps) it observed; `counts` are current per-network device
/// counts. `visible[j]` optionally restricts device j's deviations (empty =
/// all networks). Gains below `min_gain` are clamped to avoid division by
/// zero when a trace yields a dead network.
double distance_to_nash(const std::vector<double>& capacities,
                        const std::vector<int>& counts,
                        const std::vector<int>& device_network,
                        const std::vector<double>& device_gain,
                        const std::vector<std::vector<int>>& visible = {},
                        double min_gain = 1e-6);

/// Paper Definition 4 — distance from average bit rate available: the mean
/// over devices of max(g_avg - g_j, 0) / g_avg * 100, where g_avg is the
/// aggregate capacity divided by the number of devices.
double distance_from_average_rate(double aggregate_capacity_mbps,
                                  const std::vector<double>& device_gain);

/// The floor of Definition 4 at equilibrium ("Optimal" line of Figs 13-15):
/// the distance evaluated on the equal-share gains of the water-filled
/// equilibrium allocation.
double optimal_distance_from_average_rate(const std::vector<double>& capacities,
                                          int n_devices);

}  // namespace smartexp3::metrics
