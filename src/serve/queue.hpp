// Bounded thread-safe FIFO between job intake and the scheduler executors.
// Admission control lives at the push side: a full queue rejects instead of
// blocking the intake thread (the server turns that into a "rejected" event
// with a queue-full reason), and close() is the drain switch — pending jobs
// are handed back for disposition reporting instead of being silently lost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/job.hpp"

namespace smartexp3::serve {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is full or closed — never blocks.
  bool push(std::shared_ptr<Job> job) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(job));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until a job is available; nullptr once closed and empty.
  std::shared_ptr<Job> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return nullptr;
    auto job = std::move(queue_.front());
    queue_.pop_front();
    return job;
  }

  /// Stop accepting and wake every blocked pop(). Returns the jobs that were
  /// still pending so the caller can report their disposition.
  std::vector<std::shared_ptr<Job>> close() {
    std::vector<std::shared_ptr<Job>> pending;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      pending.assign(queue_.begin(), queue_.end());
      queue_.clear();
    }
    ready_.notify_all();
    return pending;
  }

  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool closed_ = false;
};

}  // namespace smartexp3::serve
