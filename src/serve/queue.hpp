// The netsel_serve admission queue: a bounded, tenant-aware priority queue
// between job intake and the scheduler executors.
//
// Admission control lives at the push side and never blocks the intake
// thread: a push either succeeds or returns a machine-readable reason (the
// server turns it into a per-reason "rejected" event with a retry hint) —
// global capacity, per-tenant queued-job quota and per-tenant device-slot
// quota each reject distinctly, and a closed (draining) queue is reported as
// draining instead of masquerading as "full". Dispatch order is (priority
// desc, arrival seq asc) with per-tenant max_running honoured at pop time:
// a tenant at its running cap keeps its jobs queued while lower-priority
// work from other tenants flows around them.
//
// With an empty quota table and all-default priorities this degenerates to
// exactly the old bounded FIFO: push_back / pop_front, no per-tenant
// accounting, no map lookups — the overload machinery costs nothing when it
// is idle.
//
// close() is the drain switch — pending jobs are handed back for disposition
// reporting instead of being silently lost. requeue() re-admits work the
// service already accepted (a preempted job, or recovery after a restart)
// and therefore bypasses capacity and quota checks: admission decisions are
// made once, at submit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace smartexp3::serve {

/// Why a push was not accepted. kAccepted aside, each value maps 1:1 to a
/// "rejected" reason string on the wire (push_result_reason below).
enum class PushResult {
  kAccepted,           ///< enqueued
  kClosed,             ///< queue closed: the server is draining
  kFull,               ///< global queue_capacity reached
  kTenantQueued,       ///< tenant at its max_queued quota
  kTenantDeviceSlots,  ///< tenant at its max_device_slots in-flight quota
};

/// The wire-facing reason slug for a rejection ("draining", "queue-full",
/// "tenant-queued", "tenant-device-slots"); "accepted" for kAccepted.
const char* push_result_reason(PushResult r);

/// Per-tenant admission limits. 0 means unlimited for each knob.
struct TenantQuota {
  int max_queued = 0;   ///< jobs waiting in the queue
  int max_running = 0;  ///< jobs on executors (enforced at dispatch)
  /// Device-slots in flight: sum over the tenant's queued + running jobs of
  /// devices x runs — the cost unit that stops one tenant from parking a
  /// million-device scalability_xl burst in front of everyone else.
  long max_device_slots = 0;
  bool unlimited() const {
    return max_queued <= 0 && max_running <= 0 && max_device_slots <= 0;
  }
};

/// The service's quota configuration: a default applied to every tenant
/// (including the anonymous "" tenant) plus named overrides. empty() — no
/// limits anywhere — selects the accounting-free FIFO fast path.
struct QuotaTable {
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenants;
  bool empty() const;
  const TenantQuota& lookup(const std::string& tenant) const;
};

struct PushOutcome {
  PushResult result = PushResult::kAccepted;
  /// The limit that rejected (capacity for kFull, the quota value for the
  /// tenant reasons); 0 otherwise.
  long limit = 0;
  bool accepted() const { return result == PushResult::kAccepted; }
};

/// One (tenant, priority) bucket of the queue composition snapshot.
struct QueueSlice {
  std::string tenant;
  int priority = 0;
  int depth = 0;
};

struct QueueComposition {
  std::size_t depth = 0;
  double oldest_age_s = 0.0;  ///< age of the oldest queued job; 0 when empty
  std::vector<QueueSlice> slices;  ///< ordered by (priority desc, tenant asc)
};

/// What the scheduler's governor needs to decide a preemption: the job that
/// would dispatch next (ignoring nothing — run caps included) and whether it
/// is blocked by its own tenant's max_running (in which case only a victim
/// from the same tenant frees a usable slot).
struct PreemptCandidate {
  bool any = false;
  int priority = 0;
  std::string tenant;
  bool tenant_at_run_cap = false;
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity, QuotaTable quotas = {});

  /// Admission: quota-checked, never blocks. Evaluates the
  /// `serve.quota.admit` failpoint (throws std::runtime_error) before any
  /// bookkeeping mutation, so an injected bookkeeping fault leaves the
  /// queue untouched — the server reports the rejection and stays up.
  PushOutcome push(std::shared_ptr<Job> job);

  /// Re-admit a job the service already accepted: a preempted job coming off
  /// its executor (`from_running` — its device-slots stay in flight) or a
  /// recovered job from a previous server's state dir. Bypasses capacity and
  /// quota checks; false only when the queue is closed (the job keeps its
  /// state for the next process, exactly like a drain-skipped job).
  bool requeue(std::shared_ptr<Job> job, bool from_running);

  /// Blocks until a dispatchable job is available (highest priority whose
  /// tenant is under its max_running), marks its tenant running, returns it;
  /// nullptr once closed and empty. The caller owes exactly one finish() or
  /// requeue(from_running=true) per popped job.
  std::shared_ptr<Job> pop();

  /// Release a popped job's accounting when it leaves its executor for a
  /// terminal state (or is skipped during a drain).
  void finish(const std::shared_ptr<Job>& job);

  /// Remove and return every queued job whose deadline has passed — the
  /// governor sheds them with a terminal failed/"deadline" event.
  std::vector<std::shared_ptr<Job>> shed_expired(
      ServeClock::time_point now = ServeClock::now());

  /// Stop accepting and wake every blocked pop(). Returns the jobs that were
  /// still pending so the caller can report their disposition.
  std::vector<std::shared_ptr<Job>> close();

  std::size_t depth() const;
  QueueComposition composition() const;
  PreemptCandidate preempt_candidate() const;

 private:
  struct Entry {
    std::shared_ptr<Job> job;
    std::uint64_t seq = 0;
    ServeClock::time_point enqueued;
  };
  struct TenantState {
    int queued = 0;
    int running = 0;
    long device_slots = 0;
    bool idle() const { return queued == 0 && running == 0 && device_slots == 0; }
  };

  /// Insert in dispatch order: before the first entry of strictly lower
  /// priority, after every peer (FIFO within a priority level). All-default
  /// priorities hit the first comparison and push_back.
  void insert_ordered(Entry entry);
  /// The queue index that pop() would dispatch, or npos when nothing is
  /// dispatchable (empty, or every queued tenant is at its running cap).
  std::size_t dispatchable_index() const;
  TenantState* tenant_state(const std::string& tenant);
  void release_tenant(const std::string& tenant);

  const std::size_t capacity_;
  const QuotaTable quotas_;
  const bool track_;  ///< quota accounting on (quota table non-empty)
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Entry> queue_;
  std::map<std::string, TenantState> tenants_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace smartexp3::serve
