#include "serve/protocol.hpp"

#include <limits>

namespace smartexp3::serve {

namespace {

[[noreturn]] void bad(const std::string& message) { throw ProtocolError(message); }

const exp::JsonValue* find(const exp::JsonValue& obj, const std::string& key) {
  for (const auto& [k, v] : obj.object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string require_string(const exp::JsonValue& v, const std::string& key) {
  if (v.type != exp::JsonValue::Type::kString) {
    bad("request key '" + key + "' must be a string");
  }
  return v.str;
}

int require_int(const exp::JsonValue& v, const std::string& key, long min, long max) {
  if (v.type != exp::JsonValue::Type::kNumber || !v.integral) {
    bad("request key '" + key + "' must be an integer");
  }
  const double d = v.number;
  if (d < static_cast<double>(min) || d > static_cast<double>(max)) {
    bad("request key '" + key + "' out of range [" + std::to_string(min) + ", " +
        std::to_string(max) + "]");
  }
  return static_cast<int>(d);
}

std::uint64_t require_uint64(const exp::JsonValue& v, const std::string& key) {
  if (v.type != exp::JsonValue::Type::kNumber || !v.integral || v.negative ||
      !v.magnitude_exact) {
    bad("request key '" + key + "' must be a non-negative integer");
  }
  return v.magnitude;
}

/// Tenant names key quota tables and appear in event fields: same alphabet
/// as job ids, shorter cap (they are buckets, not identifiers).
bool valid_tenant(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 40) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

SubmitRequest parse_submit(const exp::JsonValue& obj) {
  SubmitRequest s;
  for (const auto& [k, v] : obj.object) {
    if (k == "type") {
      continue;
    } else if (k == "id") {
      s.id = require_string(v, k);
    } else if (k == "setting") {
      s.setting = require_string(v, k);
    } else if (k == "spec") {
      if (v.type != exp::JsonValue::Type::kObject) {
        bad("request key 'spec' must be a ScenarioSpec object");
      }
      s.spec_text = json_value_text(v);
    } else if (k == "runs") {
      s.runs = require_int(v, k, 1, 100000);
    } else if (k == "policy") {
      s.policy = require_string(v, k);
    } else if (k == "devices") {
      s.devices = require_int(v, k, 1, 10000000);
    } else if (k == "networks") {
      s.networks = require_int(v, k, 1, 10000);
    } else if (k == "smart") {
      s.n_smart = require_int(v, k, 0, 10000000);
    } else if (k == "horizon") {
      s.horizon = require_int(v, k, 1, std::numeric_limits<int>::max());
    } else if (k == "seed") {
      s.seed = require_uint64(v, k);
      s.seed_set = true;
    } else if (k == "shards") {
      s.shards = require_int(v, k, 0, 1 << 20);
    } else if (k == "tenant") {
      s.tenant = require_string(v, k);
      if (!valid_tenant(s.tenant)) {
        bad("request key 'tenant' must be 1-40 chars of [A-Za-z0-9_.-]");
      }
    } else if (k == "priority") {
      s.priority = require_int(v, k, 0, 9);
    } else if (k == "deadline_s") {
      if (v.type != exp::JsonValue::Type::kNumber || !(v.number > 0.0) ||
          v.number > 1e9) {
        bad("request key 'deadline_s' must be a positive number of seconds "
            "(at most 1e9)");
      }
      s.deadline_s = v.number;
    } else {
      bad("unknown submit key '" + k + "'");
    }
  }
  const bool has_setting = !s.setting.empty();
  const bool has_spec = !s.spec_text.empty();
  if (has_setting == has_spec) {
    bad("submit needs exactly one of 'setting' or 'spec'");
  }
  if (has_spec && (s.devices != -1 || s.networks != -1 || s.n_smart != -1)) {
    bad("'devices'/'networks'/'smart' do not apply to spec jobs; "
        "edit the spec instead");
  }
  return s;
}

}  // namespace

Request parse_request(const std::string& line) {
  exp::JsonValue doc;
  try {
    doc = exp::parse_json(line);
  } catch (const exp::JsonError& e) {
    bad(std::string("malformed request: ") + e.what());
  }
  if (doc.type != exp::JsonValue::Type::kObject) {
    bad("request must be a JSON object");
  }
  const exp::JsonValue* type = find(doc, "type");
  if (type == nullptr) bad("request needs a 'type' key");
  const std::string kind = require_string(*type, "type");

  Request r;
  if (kind == "submit") {
    r.kind = Request::Kind::kSubmit;
    r.submit = parse_submit(doc);
  } else if (kind == "stats") {
    r.kind = Request::Kind::kStats;
    if (doc.object.size() != 1) bad("'stats' takes no other keys");
  } else if (kind == "drain") {
    r.kind = Request::Kind::kDrain;
    if (doc.object.size() != 1) bad("'drain' takes no other keys");
  } else if (kind == "inject") {
    r.kind = Request::Kind::kInject;
    for (const auto& [k, v] : doc.object) {
      if (k == "type") {
        continue;
      } else if (k == "site") {
        r.inject.site = require_string(v, k);
      } else if (k == "mode") {
        r.inject.mode = require_string(v, k);
      } else if (k == "seed") {
        r.inject.seed = require_uint64(v, k);
        r.inject.seed_set = true;
      } else {
        bad("unknown inject key '" + k + "'");
      }
    }
    if (r.inject.site.empty()) bad("inject needs a non-empty 'site' key");
    if (r.inject.mode.empty()) {
      bad("inject needs a 'mode' key (once/once@N/1inN/probability, or "
          "\"off\" to disarm)");
    }
  } else {
    bad("unknown request type '" + kind +
        "' (expected submit/stats/drain/inject)");
  }
  return r;
}

std::string json_value_text(const exp::JsonValue& v) {
  using Type = exp::JsonValue::Type;
  switch (v.type) {
    case Type::kBool:
      return v.boolean ? "true" : "false";
    case Type::kNumber:
      // Integral literals stay integral (spec_io distinguishes them), with
      // the shortest-round-trip double form as the saturation fallback.
      if (v.integral && v.magnitude_exact) {
        return (v.negative ? "-" : "") + std::to_string(v.magnitude);
      }
      return exp::json_number(v.number);
    case Type::kString:
      return exp::json_quote(v.str);
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out += ", ";
        out += json_value_text(v.array[i]);
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        if (i > 0) out += ", ";
        out += exp::json_quote(v.object[i].first);
        out += ": ";
        out += json_value_text(v.object[i].second);
      }
      return out + "}";
    }
  }
  return "null";  // unreachable: every Type is handled above
}

EventLine::EventLine(const std::string& event) {
  out_ = "{\"event\": " + exp::json_quote(event);
}

void EventLine::key(const std::string& k) {
  out_ += out_.empty() ? "{" : ", ";
  out_ += exp::json_quote(k);
  out_ += ": ";
}

EventLine& EventLine::field(const std::string& k, const std::string& value) {
  key(k);
  out_ += exp::json_quote(value);
  return *this;
}
EventLine& EventLine::field(const std::string& k, const char* value) {
  return field(k, std::string(value));
}
EventLine& EventLine::field(const std::string& k, int value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}
EventLine& EventLine::field(const std::string& k, long value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}
EventLine& EventLine::field(const std::string& k, std::uint64_t value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}
EventLine& EventLine::field(const std::string& k, double value) {
  key(k);
  out_ += exp::json_number(value);
  return *this;
}
EventLine& EventLine::field(const std::string& k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}
EventLine& EventLine::raw(const std::string& k, const std::string& json) {
  key(k);
  out_ += json;
  return *this;
}

std::string json_array(const std::vector<std::string>& elements) {
  std::string out = "[";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out += ", ";
    out += elements[i];
  }
  return out + "]";
}

}  // namespace smartexp3::serve
