#include "serve/queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/failpoint.hpp"

namespace smartexp3::serve {

namespace {

/// The in-flight cost unit of the device-slot quota. Immutable after
/// admission (cfg and runs never change), so reading it without the job
/// mutex is safe.
long device_slot_cost(const Job& job) {
  return static_cast<long>(job.cfg.devices.size()) *
         static_cast<long>(std::max(1, job.runs));
}

}  // namespace

const char* push_result_reason(PushResult r) {
  switch (r) {
    case PushResult::kAccepted: return "accepted";
    case PushResult::kClosed: return "draining";
    case PushResult::kFull: return "queue-full";
    case PushResult::kTenantQueued: return "tenant-queued";
    case PushResult::kTenantDeviceSlots: return "tenant-device-slots";
  }
  return "unknown";
}

bool QuotaTable::empty() const {
  if (!default_quota.unlimited()) return false;
  for (const auto& [name, quota] : tenants) {
    (void)name;
    if (!quota.unlimited()) return false;
  }
  return true;
}

const TenantQuota& QuotaTable::lookup(const std::string& tenant) const {
  const auto it = tenants.find(tenant);
  return it != tenants.end() ? it->second : default_quota;
}

JobQueue::JobQueue(std::size_t capacity, QuotaTable quotas)
    : capacity_(capacity), quotas_(std::move(quotas)), track_(!quotas_.empty()) {}

JobQueue::TenantState* JobQueue::tenant_state(const std::string& tenant) {
  return &tenants_[tenant];
}

void JobQueue::release_tenant(const std::string& tenant) {
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.idle()) tenants_.erase(it);
}

void JobQueue::insert_ordered(Entry entry) {
  const int priority = entry.job->priority;
  auto it = queue_.end();
  while (it != queue_.begin() && std::prev(it)->job->priority < priority) --it;
  queue_.insert(it, std::move(entry));
}

PushOutcome JobQueue::push(std::shared_ptr<Job> job) {
  PushOutcome out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      out.result = PushResult::kClosed;
      return out;
    }
    if (queue_.size() >= capacity_) {
      out.result = PushResult::kFull;
      out.limit = static_cast<long>(capacity_);
      return out;
    }
    if (track_) {
      // Fault site: the quota bookkeeping itself fails. Placed before any
      // mutation so the throw is strongly exception-safe — the server turns
      // it into one rejection and the accounting stays consistent.
      if (util::failpoint("serve.quota.admit")) {
        throw std::runtime_error(
            "quota bookkeeping fault [injected serve.quota.admit]");
      }
      const TenantQuota& quota = quotas_.lookup(job->tenant);
      TenantState* state = tenant_state(job->tenant);
      if (quota.max_queued > 0 && state->queued >= quota.max_queued) {
        out.result = PushResult::kTenantQueued;
        out.limit = quota.max_queued;
        release_tenant(job->tenant);
        return out;
      }
      const long cost = device_slot_cost(*job);
      if (quota.max_device_slots > 0 &&
          state->device_slots + cost > quota.max_device_slots) {
        out.result = PushResult::kTenantDeviceSlots;
        out.limit = quota.max_device_slots;
        release_tenant(job->tenant);
        return out;
      }
      ++state->queued;
      state->device_slots += cost;
    }
    Entry entry;
    entry.seq = next_seq_++;
    entry.enqueued = ServeClock::now();
    entry.job = std::move(job);
    insert_ordered(std::move(entry));
  }
  ready_.notify_one();
  return out;
}

bool JobQueue::requeue(std::shared_ptr<Job> job, bool from_running) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    if (track_) {
      TenantState* state = tenant_state(job->tenant);
      ++state->queued;
      if (from_running) {
        state->running = std::max(0, state->running - 1);
      } else {
        state->device_slots += device_slot_cost(*job);
      }
    }
    Entry entry;
    entry.seq = next_seq_++;
    entry.enqueued = ServeClock::now();
    entry.job = std::move(job);
    insert_ordered(std::move(entry));
  }
  // A released running slot can unblock a tenant-capped pop, not just the
  // new entry: wake everyone.
  ready_.notify_all();
  return true;
}

std::size_t JobQueue::dispatchable_index() const {
  if (!track_) return queue_.empty() ? queue_.size() : 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Job& job = *queue_[i].job;
    const TenantQuota& quota = quotas_.lookup(job.tenant);
    if (quota.max_running > 0) {
      const auto it = tenants_.find(job.tenant);
      if (it != tenants_.end() && it->second.running >= quota.max_running) {
        continue;  // tenant at its running cap: skip, keep queued
      }
    }
    return i;
  }
  return queue_.size();
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t i = 0;
  ready_.wait(lock, [&] {
    if (closed_) return true;
    i = dispatchable_index();
    return i < queue_.size();
  });
  if (closed_) {
    if (queue_.empty()) return nullptr;
    i = 0;  // draining: dispatch order no longer matters, hand jobs out FIFO
  }
  auto job = std::move(queue_[i].job);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  if (track_) {
    TenantState* state = tenant_state(job->tenant);
    state->queued = std::max(0, state->queued - 1);
    ++state->running;
  }
  return job;
}

void JobQueue::finish(const std::shared_ptr<Job>& job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!track_ || closed_) return;
    TenantState* state = tenant_state(job->tenant);
    state->running = std::max(0, state->running - 1);
    state->device_slots =
        std::max(0L, state->device_slots - device_slot_cost(*job));
    release_tenant(job->tenant);
  }
  // A freed running slot may make a capped tenant's queued jobs dispatchable.
  ready_.notify_all();
}

std::vector<std::shared_ptr<Job>> JobQueue::shed_expired(
    ServeClock::time_point now) {
  std::vector<std::shared_ptr<Job>> shed;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return shed;
  for (auto it = queue_.begin(); it != queue_.end();) {
    Job& job = *it->job;
    if (job.deadline_s > 0.0 && now >= job.deadline_at) {
      if (track_) {
        TenantState* state = tenant_state(job.tenant);
        state->queued = std::max(0, state->queued - 1);
        state->device_slots =
            std::max(0L, state->device_slots - device_slot_cost(job));
        release_tenant(job.tenant);
      }
      shed.push_back(std::move(it->job));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return shed;
}

std::vector<std::shared_ptr<Job>> JobQueue::close() {
  std::vector<std::shared_ptr<Job>> pending;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    pending.reserve(queue_.size());
    for (auto& e : queue_) pending.push_back(e.job);
    queue_.clear();
    tenants_.clear();
  }
  ready_.notify_all();
  return pending;
}

std::size_t JobQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

QueueComposition JobQueue::composition() const {
  QueueComposition comp;
  const std::lock_guard<std::mutex> lock(mutex_);
  comp.depth = queue_.size();
  if (queue_.empty()) return comp;
  const auto now = ServeClock::now();
  auto oldest = queue_.front().enqueued;
  // (-priority, tenant) keys give the slices the dispatch order for free.
  std::map<std::pair<int, std::string>, int> buckets;
  for (const auto& e : queue_) {
    oldest = std::min(oldest, e.enqueued);
    ++buckets[{-e.job->priority, e.job->tenant}];
  }
  comp.oldest_age_s = std::chrono::duration<double>(now - oldest).count();
  comp.slices.reserve(buckets.size());
  for (const auto& [key, depth] : buckets) {
    comp.slices.push_back({key.second, -key.first, depth});
  }
  return comp;
}

PreemptCandidate JobQueue::preempt_candidate() const {
  PreemptCandidate cand;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ || queue_.empty()) return cand;
  const std::size_t i = dispatchable_index();
  const Entry& entry = i < queue_.size() ? queue_[i] : queue_.front();
  cand.any = true;
  cand.priority = entry.job->priority;
  cand.tenant = entry.job->tenant;
  cand.tenant_at_run_cap = i >= queue_.size();
  return cand;
}

}  // namespace smartexp3::serve
