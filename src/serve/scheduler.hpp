// The netsel_serve scheduler: a fixed pool of job executors over the intake
// queue. Each executor drives one job at a time through the fault-tolerant
// batch runner (exp::run_many_result) with a per-job lane budget — the
// run-level worker lanes are split evenly across executors, so a 10^6-device
// scalability_xl job saturates its own lanes while small jobs keep flowing
// through the other executors instead of starving behind it.
//
// Every job gets its own checkpoint directory (<job dir>/ckpt): the spec
// fingerprint inside each checkpoint file already refuses cross-job resume,
// and separate directories keep two jobs from overwriting each other's
// run<r>_slot<s>.ckpt files (tests/test_run_harness.cpp pins the shared-dir
// hazard at the runner layer). A raised drain flag stops every running job
// at its next slot boundary with a final checkpoint flush; interrupted jobs
// stay on disk and are requeued by the next server process.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "serve/job.hpp"
#include "serve/queue.hpp"

namespace smartexp3::serve {

struct SchedulerConfig {
  int executors = 2;        ///< concurrent jobs (>= 1)
  int lanes = 0;            ///< total run-level lanes; 0 = hardware concurrency
  int checkpoint_every = 200;  ///< slots between durable checkpoints; 0 = off
  int progress_every = 64;  ///< slots between progress events per run
  int max_attempts = 2;     ///< attempts per run (retries resume from checkpoints)
  double watchdog_seconds = 0.0;  ///< per-attempt budget; 0 = none
  /// Checkpoint-based preemption: when every executor is busy and a strictly
  /// higher-priority job waits, the governor asks the lowest-priority running
  /// job to yield (checkpoint + requeue). Off = strict run-to-completion.
  bool preempt = true;
  /// Governor cadence: deadline shedding/enforcement and preemption
  /// decisions are evaluated this often.
  int governor_tick_ms = 10;
  /// Test-only fault injection threaded into every job's RunControl.
  std::function<void(int run, Slot slot)> fault_hook;
  /// Fires just before a job's batch begins (the service persists the
  /// incremented attempt count here, so even a SIGKILL mid-run is counted).
  std::function<void(Job& job)> on_start;
  /// Fires when a drain or a preemption interrupted the job — not terminal;
  /// the service un-counts the attempt (a graceful stop is not a crash, and
  /// a preemption is a graceful stop of one job).
  std::function<void(Job& job)> on_interrupted;
};

class Scheduler {
 public:
  /// `emit` receives finished event lines (thread-safe on the caller's
  /// side); `on_terminal` fires once per job when it reaches a final state
  /// (completed/failed) so the service can persist the result.
  using EmitFn = std::function<void(const Job& job, const std::string& line)>;
  using TerminalFn = std::function<void(Job& job)>;

  Scheduler(SchedulerConfig config, JobQueue& queue, EmitFn emit,
            TerminalFn on_terminal);
  ~Scheduler();

  void start();
  /// Raise the cooperative stop flag: running jobs flush a final checkpoint
  /// at their next slot boundary and report as interrupted.
  void request_stop() { stop_.store(true); }
  bool stopping() const { return stop_.load(); }
  /// Close the queue and join the executors. Idempotent.
  void shutdown();

  int lane_budget() const;  ///< run-level lanes each executor hands its job

  int running() const { return running_.load(); }
  int completed() const { return completed_.load(); }
  int failed() const { return failed_.load(); }
  int interrupted() const { return interrupted_.load(); }
  /// Run-level retry attempts across every batch this scheduler executed.
  int retries_total() const { return retries_total_.load(); }
  /// Jobs that lost checkpointing to disk pressure (degraded, still running
  /// or finished) — each job counted once.
  int degraded_jobs() const { return degraded_jobs_.load(); }
  /// Checkpoint-preemptions completed (yield + requeue), counting each
  /// preemption, not each job.
  int preempted_total() const { return preempted_total_.load(); }
  /// Jobs shed by deadline enforcement: expired while queued, or killed
  /// running by their wall-clock budget. Terminal failed/"deadline"; a
  /// subset of failed().
  int shed_total() const { return shed_total_.load(); }

 private:
  void executor_loop();
  void execute(const std::shared_ptr<Job>& job);
  /// The deadline/preemption policy thread: sheds expired queued jobs,
  /// raises the yield flag on over-budget or preemptable running jobs.
  void governor_loop();
  void governor_tick();
  void shed_queued_job(const std::shared_ptr<Job>& job);

  SchedulerConfig config_;
  JobQueue& queue_;
  EmitFn emit_;
  TerminalFn on_terminal_;
  std::atomic<bool> stop_{false};
  std::atomic<int> running_{0};
  std::atomic<int> completed_{0};
  std::atomic<int> failed_{0};
  std::atomic<int> interrupted_{0};
  std::atomic<int> retries_total_{0};
  std::atomic<int> degraded_jobs_{0};
  std::atomic<int> preempted_total_{0};
  std::atomic<int> shed_total_{0};
  std::vector<std::thread> executors_;
  /// Jobs currently on an executor — the governor's victim pool.
  mutable std::mutex active_mutex_;
  std::vector<std::shared_ptr<Job>> active_;
  std::thread governor_;
  std::mutex governor_mutex_;
  std::condition_variable governor_cv_;
  bool governor_stop_ = false;
  bool started_ = false;
  bool joined_ = false;
};

/// The policy label reported in summaries — same derivation as netsel_sim,
/// so a served job and a CLI run of the same spec print the same label.
std::string policy_label(const exp::ExperimentConfig& cfg);

/// Deterministic one-line JSON summary of a completed batch: run count plus
/// the cross-run aggregates of exp/aggregate.hpp, doubles in shortest
/// round-trip form. Bit-identical results produce byte-identical text —
/// the comparison key of the resume-equivalence tests.
std::string summary_json(const exp::ExperimentConfig& cfg,
                         const std::vector<metrics::RunResult>& results);

}  // namespace smartexp3::serve
