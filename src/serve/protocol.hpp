// netsel_serve wire protocol: newline-delimited jsonish requests in,
// newline-delimited jsonish events out.
//
// The request side reuses the repo's strict JSON-subset parser
// (exp/jsonish.hpp): one request per line, unknown keys and type mismatches
// are hard ProtocolErrors with an actionable message — a malformed request
// must produce one "error" event, never crash the server or desynchronise
// the stream. An inline "spec" object travels the wire as ordinary JSON and
// is re-serialized here into ScenarioSpec text, so the whole spec_io
// validation pipeline (and its error messages) applies to submitted jobs
// exactly as it does to `netsel_sim --spec` files.
//
// The event side is deliberately one-object-per-line (the pretty-printing
// JsonWriter is for files): every builder below returns a single compact
// line, doubles printed in shortest round-trip form (exp::json_number), so a
// resumed job's "completed" summary is byte-identical to an uninterrupted
// one — the property the crash-recovery service tests diff for. Grammar in
// DESIGN.md §7.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/jsonish.hpp"
#include "netsim/types.hpp"

namespace smartexp3::serve {

/// Raised on a malformed request line: bad JSON, unknown type/keys, type or
/// range mismatches. The server turns it into an "error" event.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bumped when the request or event grammar changes incompatibly. Echoed in
/// the "serving" banner so clients can refuse a server they do not speak.
inline constexpr int kProtocolVersion = 1;

/// One job submission. Exactly one of `setting` / `spec_text` is set:
/// registry jobs take the same typed overrides as the netsel_sim CLI; spec
/// jobs carry their full ScenarioSpec text (re-serialized from the inline
/// wire object) and accept only --policy/--horizon-style overrides.
struct SubmitRequest {
  std::string id;         ///< client-chosen job id; "" = server assigns
  std::string setting;    ///< registry setting name
  std::string spec_text;  ///< ScenarioSpec text of an inline "spec" object
  int runs = 1;
  std::string policy;     ///< "" = setting/spec default
  int devices = -1;
  int networks = -1;
  int n_smart = -1;
  Slot horizon = -1;
  bool seed_set = false;
  std::uint64_t seed = 0;
  int shards = -1;        ///< -1 = config default (0 = auto)
  // Overload-control fields (DESIGN.md §9). All optional: the defaults are
  // the anonymous tenant at priority 0 with no deadline — exactly the old
  // FIFO behaviour.
  std::string tenant;     ///< quota bucket; "" = the anonymous default
  int priority = 0;       ///< 0 (default) .. 9; higher dispatches first
  double deadline_s = 0;  ///< wall-clock job budget from admission; 0 = none
};

/// Arm or disarm a failpoint at runtime (util/failpoint.hpp): mode is the
/// registry grammar ("once", "once@N", "1inN", a probability) or "off" to
/// disarm. Answered with one "injected" event. Fault injection over the
/// wire exists for chaos testing a live server — the grammar and the
/// operational caveats live in DESIGN.md §8.
struct InjectRequest {
  std::string site;
  std::string mode;
  bool seed_set = false;
  std::uint64_t seed = 0;  ///< perturbs the site's deterministic RNG
};

struct Request {
  enum class Kind { kSubmit, kStats, kDrain, kInject };
  Kind kind = Kind::kStats;
  SubmitRequest submit;  ///< meaningful when kind == kSubmit
  InjectRequest inject;  ///< meaningful when kind == kInject
};

/// Parse one request line. Throws ProtocolError on anything malformed;
/// never crashes on arbitrary bytes (the jsonish parser is fuzz-hardened).
Request parse_request(const std::string& line);

/// Serialize a parsed JSON value back to compact text — the bridge that
/// turns an inline "spec" wire object into ScenarioSpec text for
/// exp::parse_spec_text. Integral literals are re-emitted as integers and
/// doubles in shortest round-trip form, so the round trip is lossless.
std::string json_value_text(const exp::JsonValue& v);

/// Compact one-line JSON object builder for the event stream. Purely
/// syntactic, like exp::JsonWriter, but single-line and with raw embedding
/// for pre-serialized sub-objects (summaries, job arrays). The one-argument
/// form opens a top-level event ({"event": "..."}); the default form opens a
/// plain object for nested payloads.
class EventLine {
 public:
  EventLine() = default;
  explicit EventLine(const std::string& event);
  EventLine& field(const std::string& key, const std::string& value);
  EventLine& field(const std::string& key, const char* value);
  EventLine& field(const std::string& key, int value);
  EventLine& field(const std::string& key, long value);
  EventLine& field(const std::string& key, std::uint64_t value);
  EventLine& field(const std::string& key, double value);
  EventLine& field(const std::string& key, bool value);
  /// Embed `json` (an already-serialized value) verbatim.
  EventLine& raw(const std::string& key, const std::string& json);
  /// The finished line, without trailing newline.
  std::string str() const { return (out_.empty() ? "{" : out_) + "}"; }

 private:
  void key(const std::string& k);
  std::string out_;
};

/// "[{...}, {...}]" from pre-serialized object strings.
std::string json_array(const std::vector<std::string>& elements);

}  // namespace smartexp3::serve
