// One scheduled simulation job: the unit of intake, scheduling, progress
// accounting and drain disposition in netsel_serve. A Job is shared between
// the intake thread (creation), one scheduler executor (execution) and any
// thread answering a "stats" request — all mutable fields are guarded by the
// per-job mutex; the scheduler takes it only at progress cadence, never per
// slot, so accounting cannot throttle the engine.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "netsim/types.hpp"

namespace smartexp3::serve {

/// The serve layer's wall clock: deadlines, queue ages and drain-rate
/// estimates all measure against it. steady_clock — a ntp step must not
/// shed a job.
using ServeClock = std::chrono::steady_clock;

/// Why the governor asked a running job to yield at its next slot boundary.
enum class YieldReason : int {
  kNone = 0,
  kPreempt = 1,   ///< higher-priority work is waiting: checkpoint + requeue
  kDeadline = 2,  ///< wall-clock job budget exhausted: terminal failed
};

enum class JobState {
  kQueued,       ///< accepted, waiting for an executor
  kRunning,      ///< an executor is driving its batch
  kCompleted,    ///< every run finished; summary_json is filled
  kFailed,       ///< at least one run exhausted its attempts
  kInterrupted,  ///< drain stopped it mid-run; resumable from checkpoints
};

inline const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kInterrupted: return "interrupted";
  }
  return "unknown";
}

/// Bounded reservoir of per-slot latencies (microseconds), fed at progress
/// cadence with window means. A ring overwrite keeps memory constant for
/// week-long jobs while the percentiles keep tracking recent behaviour.
class LatencyReservoir {
 public:
  void record(double us) {
    if (samples_.size() < kCapacity) {
      samples_.push_back(us);
    } else {
      samples_[next_ % kCapacity] = us;
    }
    ++next_;
  }
  bool empty() const { return samples_.empty(); }
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t i = std::min(
        sorted.size() - 1, static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
    return sorted[i];
  }

 private:
  static constexpr std::size_t kCapacity = 4096;
  std::vector<double> samples_;
  std::size_t next_ = 0;
};

struct Job {
  // Immutable after admission.
  std::string id;
  exp::ExperimentConfig cfg;
  int runs = 1;
  std::string dir;          ///< per-job state directory; "" = ephemeral
  std::uint64_t client = 0; ///< submitting connection; 0 = none (stdin/restart)
  std::string tenant;       ///< quota bucket; "" = the anonymous default
  int priority = 0;         ///< 0 (default) .. 9; higher dispatches first
  double deadline_s = 0.0;  ///< wall-clock job budget; 0 = none
  /// Absolute deadline, set at admission (and re-set from deadline_s at
  /// recovery — the budget restarts with the server, see DESIGN.md §9).
  ServeClock::time_point deadline_at{};

  /// Cooperative preemption control, written by the scheduler's governor and
  /// polled by every lane of the job's batch at slot boundaries
  /// (exp::RunControl::yield). Reset by the executor before each execution.
  std::atomic<bool> yield{false};
  std::atomic<int> yield_reason{static_cast<int>(YieldReason::kNone)};

  // Guarded by `mutex` below.
  bool resume = false;      ///< continue from checkpoints (recovery/preempt)
  int preempts = 0;         ///< times this job was checkpoint-preempted
  JobState state = JobState::kQueued;
  std::string error;              ///< first failure message (kFailed)
  std::string failure_reason;     ///< machine-readable cause, e.g. "poisoned"
  std::string summary_json;       ///< deterministic summary (kCompleted)
  /// Executions started that did not end cleanly, persisted in job.json
  /// across server processes: incremented when an executor picks the job up,
  /// decremented again on a graceful drain interruption. A job whose count
  /// reaches ServiceConfig::max_job_attempts crashed that many servers and
  /// is quarantined at recovery instead of requeued.
  int attempts = 0;
  bool degraded = false;          ///< checkpointing disabled by disk pressure
  Slot last_checkpoint_slot = -1; ///< newest durable slot across runs
  long slots_done = 0;            ///< completed slots across all runs
  double device_slots_per_sec = 0.0;  ///< most recent progress window
  LatencyReservoir latency;

  mutable std::mutex mutex;
};

}  // namespace smartexp3::serve
