#include "serve/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "exp/registry.hpp"
#include "exp/spec_io.hpp"
#include "serve/protocol.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::serve {

namespace fs = std::filesystem;

namespace {

bool valid_job_id(const std::string& id) {
  if (id.empty() || id.size() > 80) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Build the post-override config for a submission — the same override
/// semantics as the netsel_sim CLI, so a served job and a CLI run of the
/// same request produce the same trajectory. Throws on unknown settings,
/// unsupported overrides and malformed spec text.
exp::ExperimentConfig build_config(const SubmitRequest& s) {
  exp::ExperimentConfig cfg;
  if (!s.setting.empty()) {
    exp::SettingParams params;
    params.policy = s.policy;
    params.devices = s.devices;
    params.horizon = s.horizon;
    params.networks = s.networks;
    params.n_smart = s.n_smart;
    cfg = exp::make_setting(s.setting, params);
  } else {
    cfg = exp::parse_spec_text(s.spec_text);
    if (!s.policy.empty()) cfg.with_policy(s.policy);
    if (s.horizon > 0) cfg.world.horizon = s.horizon;
  }
  if (s.seed_set) cfg.base_seed = s.seed;
  // Execution knob, not part of the scenario: explicit request value wins,
  // then the NETSEL_SHARDS environment default.
  cfg.world.shards =
      s.shards != -1 ? s.shards : exp::world_shards(cfg.world.shards);
  return cfg;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.close();
  if (!out) throw std::runtime_error("cannot write " + path);
}

/// The persisted job.json payload (version 2 adds the overload-control
/// fields; version-1 files read back with their defaults). `attempts` counts
/// server executions that never ended cleanly (see Job::attempts); rewritten
/// in place by the on_start/on_interrupted hooks, so a plain truncating
/// write is fine — a torn job.json fails recovery for that one job, never
/// the server.
std::string job_meta_json(const Job& job, int attempts) {
  EventLine meta;
  meta.field("version", 2)
      .field("id", job.id)
      .field("runs", job.runs)
      .field("attempts", attempts);
  if (!job.tenant.empty()) meta.field("tenant", job.tenant);
  if (job.priority != 0) meta.field("priority", job.priority);
  if (job.deadline_s > 0.0) meta.field("deadline_s", job.deadline_s);
  return meta.str() + "\n";
}

struct JobMeta {
  int runs = 1;
  int attempts = 0;
  std::string tenant;
  int priority = 0;
  double deadline_s = 0.0;
};

JobMeta parse_job_meta(const std::string& path) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) throw std::runtime_error("cannot read " + path);
  const exp::JsonValue doc = exp::parse_json(text);
  JobMeta meta;
  bool have_runs = false;
  for (const auto& [k, v] : doc.object) {
    if (k == "runs" && v.type == exp::JsonValue::Type::kNumber && v.integral) {
      const int runs = static_cast<int>(v.number);
      if (runs >= 1) {
        meta.runs = runs;
        have_runs = true;
      }
    } else if (k == "attempts" && v.type == exp::JsonValue::Type::kNumber &&
               v.integral) {
      // Absent in pre-quarantine job.json files: treated as 0 crash-attempts.
      meta.attempts = std::max(0, static_cast<int>(v.number));
    } else if (k == "tenant" && v.type == exp::JsonValue::Type::kString) {
      meta.tenant = v.str;
    } else if (k == "priority" && v.type == exp::JsonValue::Type::kNumber &&
               v.integral) {
      meta.priority = std::clamp(static_cast<int>(v.number), 0, 9);
    } else if (k == "deadline_s" &&
               v.type == exp::JsonValue::Type::kNumber && v.number > 0.0) {
      meta.deadline_s = v.number;
    }
  }
  if (!have_runs) throw std::runtime_error(path + " has no valid 'runs' key");
  return meta;
}

/// One "rejected" event: machine-readable `reason` (the per-limit slugs of
/// push_result_reason plus "invalid"/"persist"/"internal"), human-readable
/// `errors`, and — for backpressure reasons only — a `retry_after_ms` drain
/// hint (`retry_after_ms` < 0 omits the field).
std::string rejected_line(const std::string& id, const std::string& reason,
                          const std::vector<std::string>& errors,
                          long retry_after_ms = -1) {
  std::vector<std::string> quoted;
  quoted.reserve(errors.size());
  for (const auto& e : errors) quoted.push_back(exp::json_quote(e));
  EventLine line("rejected");
  line.field("job", id);
  line.field("reason", reason);
  if (retry_after_ms >= 0) line.field("retry_after_ms", retry_after_ms);
  line.raw("errors", json_array(quoted));
  return line.str();
}

}  // namespace

JobService::JobService(ServiceConfig config, Sink broadcast)
    : config_(std::move(config)),
      broadcast_(std::move(broadcast)),
      queue_(std::max<std::size_t>(1, config_.queue_capacity),
             QuotaTable{config_.default_quota, config_.tenant_quotas}) {
  SchedulerConfig sc;
  sc.executors = config_.executors;
  sc.lanes = config_.lanes;
  sc.checkpoint_every = config_.checkpoint_every;
  sc.progress_every = config_.progress_every;
  sc.max_attempts = config_.max_attempts;
  sc.watchdog_seconds = config_.watchdog_seconds;
  sc.preempt = config_.preempt;
  sc.governor_tick_ms = config_.governor_tick_ms;
  sc.fault_hook = config_.fault_hook;
  // Crash-attempt accounting behind the quarantine: persist attempts+1
  // BEFORE the batch touches a single slot, take it back only on a graceful
  // drain. A job that SIGKILLs (or aborts) the server leaves the incremented
  // count on disk for the next process's recovery to judge.
  sc.on_start = [this](Job& job) {
    int attempts = 0;
    {
      const std::lock_guard<std::mutex> lock(job.mutex);
      attempts = ++job.attempts;
    }
    if (job.dir.empty()) return;
    try {
      write_text_file(job.dir + "/job.json", job_meta_json(job, attempts));
    } catch (const std::exception& e) {
      emit(EventLine("error").field("error", e.what()).str(), job.client);
    }
  };
  // Fires for drains AND preemptions: both are graceful single-job stops,
  // so neither charges the crash-attempt the matching on_start persisted.
  sc.on_interrupted = [this](Job& job) {
    int attempts = 0;
    {
      const std::lock_guard<std::mutex> lock(job.mutex);
      attempts = job.attempts = std::max(0, job.attempts - 1);
    }
    if (job.dir.empty()) return;
    try {
      write_text_file(job.dir + "/job.json", job_meta_json(job, attempts));
    } catch (const std::exception& e) {
      emit(EventLine("error").field("error", e.what()).str(), job.client);
    }
  };
  scheduler_ = std::make_unique<Scheduler>(
      sc, queue_,
      [this](const Job& job, const std::string& line) { emit(line, job.client); },
      [this](Job& job) { on_terminal(job); });
}

JobService::~JobService() { scheduler_->shutdown(); }

void JobService::start() {
  EventLine banner("serving");
  banner.field("protocol", kProtocolVersion)
      .field("executors", std::max(1, config_.executors))
      .field("lane_budget", scheduler_->lane_budget())
      .field("queue_capacity",
             static_cast<int>(std::max<std::size_t>(1, config_.queue_capacity)))
      .field("state_dir", config_.state_dir);
  emit(banner.str(), 0);
  if (!config_.state_dir.empty()) recover_persisted_jobs();
  scheduler_->start();
}

std::string JobService::job_dir(const std::string& id) const {
  return (fs::path(config_.state_dir) / "jobs" / id).string();
}

void JobService::handle_line(const std::string& line, std::uint64_t client) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;
  try {
    const Request request = parse_request(line);
    switch (request.kind) {
      case Request::Kind::kSubmit:
        handle_submit(request.submit, client);
        return;
      case Request::Kind::kStats:
        handle_stats(client);
        return;
      case Request::Kind::kDrain:
        drain();
        return;
      case Request::Kind::kInject:
        handle_inject(request.inject, client);
        return;
    }
  } catch (const std::exception& e) {
    // Every malformed line costs exactly one "error" event; the stream and
    // the server survive arbitrary input.
    emit(EventLine("error").field("error", e.what()).str(), client);
  }
}

void JobService::handle_submit(const SubmitRequest& submit,
                               std::uint64_t client) {
  std::string id = submit.id;
  std::vector<std::string> errors;
  if (draining_.load()) errors.push_back("server is draining; job not accepted");

  exp::ExperimentConfig cfg;
  if (errors.empty()) {
    try {
      cfg = build_config(submit);
      // The same admission gate as `netsel_sim`: unsound specs are rejected
      // with the validator's actionable messages, never executed.
      errors = cfg.validate();
    } catch (const std::exception& e) {
      errors.push_back(e.what());
    }
  }
  if (!id.empty() && !valid_job_id(id)) {
    errors.push_back("job id must be 1-80 chars of [A-Za-z0-9_.-]");
  }

  auto job = std::make_shared<Job>();
  bool registered = false;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto taken = [&](const std::string& candidate) {
      return std::any_of(jobs_.begin(), jobs_.end(),
                         [&](const auto& j) { return j->id == candidate; });
    };
    if (id.empty()) {
      do {
        id = "job-" + std::to_string(next_auto_id_++);
      } while (taken(id));
    } else if (taken(id)) {
      errors.push_back("job id '" + id + "' already exists");
    }
    if (errors.empty()) {
      job->id = id;
      job->cfg = std::move(cfg);
      job->runs = submit.runs;
      job->client = client;
      job->tenant = submit.tenant;
      job->priority = submit.priority;
      job->deadline_s = submit.deadline_s;
      if (submit.deadline_s > 0.0) {
        job->deadline_at = ServeClock::now() +
                           std::chrono::duration_cast<ServeClock::duration>(
                               std::chrono::duration<double>(submit.deadline_s));
      }
      jobs_.push_back(job);
      registered = true;
    }
  }
  if (!errors.empty()) {
    const bool drain_reject = draining_.load();
    emit(rejected_line(id, drain_reject ? "draining" : "invalid", errors),
         client);
    return;
  }

  if (!config_.state_dir.empty()) {
    const std::string dir = job_dir(id);
    try {
      fs::create_directories(dir);
      exp::save_spec_file(job->cfg, dir + "/spec.json");
      write_text_file(dir + "/job.json", job_meta_json(*job, 0));
      job->dir = dir;
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
      emit(rejected_line(id, "persist",
                         {std::string("cannot persist job state: ") + e.what()}),
           client);
      return;
    }
  }

  // Enqueue under the emit lock so "accepted" always precedes the
  // executor's "started" for the same job.
  bool enqueued = false;
  {
    const std::lock_guard<std::mutex> lock(emit_mutex_);
    PushOutcome outcome;
    std::string push_error;
    try {
      outcome = queue_.push(job);
    } catch (const std::exception& e) {
      // The serve.quota.admit fault site (or any bookkeeping defect): the
      // push mutated nothing, so this submission is rejected and the queue
      // stays consistent for the next one.
      push_error = e.what();
    }
    enqueued = push_error.empty() && outcome.accepted();
    if (enqueued) {
      write_locked(EventLine("accepted")
                       .field("job", id)
                       .field("name", job->cfg.name)
                       .field("policy", policy_label(job->cfg))
                       .field("devices", static_cast<int>(job->cfg.devices.size()))
                       .field("horizon", static_cast<int>(job->cfg.world.horizon))
                       .field("runs", job->runs)
                       .field("tenant", job->tenant)
                       .field("priority", job->priority)
                       .field("queue_depth", static_cast<int>(queue_.depth()))
                       .str(),
                   client);
    } else if (!push_error.empty()) {
      write_locked(rejected_line(id, "internal", {push_error}), client);
    } else {
      std::string message;
      long retry_after_ms = -1;
      switch (outcome.result) {
        case PushResult::kClosed:
          message = "server is draining; job not accepted";
          break;
        case PushResult::kFull:
          message = "queue full (capacity " + std::to_string(outcome.limit) +
                    "); resubmit after the backlog shrinks";
          retry_after_ms = retry_after_ms_hint();
          break;
        case PushResult::kTenantQueued:
          message = "tenant '" + job->tenant + "' is at its max_queued quota (" +
                    std::to_string(outcome.limit) + " jobs queued)";
          retry_after_ms = retry_after_ms_hint();
          break;
        case PushResult::kTenantDeviceSlots:
          message = "tenant '" + job->tenant +
                    "' is at its max_device_slots quota (" +
                    std::to_string(outcome.limit) + " device-slots in flight)";
          retry_after_ms = retry_after_ms_hint();
          break;
        case PushResult::kAccepted:
          break;  // unreachable: enqueued above
      }
      write_locked(rejected_line(id, push_result_reason(outcome.result),
                                 {message}, retry_after_ms),
                   client);
    }
  }
  if (!enqueued && registered) {
    {
      const std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
    }
    if (!job->dir.empty()) {
      std::error_code ec;
      fs::remove_all(job->dir, ec);
    }
  }
}

void JobService::handle_stats(std::uint64_t client) {
  std::vector<std::string> job_objs;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    job_objs.reserve(jobs_.size());
    for (const auto& job : jobs_) {
      const std::lock_guard<std::mutex> job_lock(job->mutex);
      job_objs.push_back(EventLine()
                             .field("job", job->id)
                             .field("state", job_state_name(job->state))
                             .field("tenant", job->tenant)
                             .field("priority", job->priority)
                             .field("runs", job->runs)
                             .field("attempts", job->attempts)
                             .field("preempts", job->preempts)
                             .field("degraded", job->degraded)
                             .field("slots_done", job->slots_done)
                             .field("device_slots_per_sec",
                                    job->device_slots_per_sec)
                             .field("slot_p50_us", job->latency.percentile(0.50))
                             .field("slot_p99_us", job->latency.percentile(0.99))
                             .field("last_checkpoint_slot",
                                    static_cast<int>(job->last_checkpoint_slot))
                             .str());
    }
  }
  const QueueComposition comp = queue_.composition();
  std::vector<std::string> slice_objs;
  slice_objs.reserve(comp.slices.size());
  for (const auto& slice : comp.slices) {
    slice_objs.push_back(EventLine()
                             .field("tenant", slice.tenant)
                             .field("priority", slice.priority)
                             .field("depth", slice.depth)
                             .str());
  }
  std::vector<std::string> failpoint_objs;
  for (const auto& fp : util::failpoint_list()) {
    failpoint_objs.push_back(EventLine()
                                 .field("site", fp.site)
                                 .field("mode", fp.mode)
                                 .field("evals", fp.evals)
                                 .field("fires", fp.fires)
                                 .str());
  }
  EventLine stats("stats");
  stats.field("queue_depth", static_cast<int>(comp.depth))
      .field("oldest_queued_age_s", comp.oldest_age_s)
      .raw("queue_by", json_array(slice_objs))
      .field("running", scheduler_->running())
      .field("completed", scheduler_->completed())
      .field("failed", scheduler_->failed())
      .field("interrupted", scheduler_->interrupted())
      .field("retries_total", scheduler_->retries_total())
      .field("quarantined_total", quarantined_total_.load())
      .field("degraded_jobs", scheduler_->degraded_jobs())
      .field("preempted_total", scheduler_->preempted_total())
      .field("shed_total", scheduler_->shed_total())
      .raw("failpoints", json_array(failpoint_objs))
      .raw("jobs", json_array(job_objs));
  emit(stats.str(), client);
}

long JobService::retry_after_ms_hint() const {
  const double elapsed =
      std::chrono::duration<double>(ServeClock::now() - started_at_).count();
  const int done = scheduler_->completed() + scheduler_->failed();
  const double backlog = static_cast<double>(queue_.depth()) + 1.0;
  if (done <= 0 || elapsed <= 0.0) return 1000;  // no drain data yet
  const double rate = static_cast<double>(done) / elapsed;  // jobs/sec
  const double ms = backlog / rate * 1000.0;
  return static_cast<long>(std::clamp(ms, 100.0, 600000.0));
}

void JobService::handle_inject(const InjectRequest& inject,
                               std::uint64_t client) {
  if (inject.mode == "off") {
    const bool was_active = util::failpoint_disarm(inject.site);
    emit(EventLine("injected")
             .field("site", inject.site)
             .field("active", false)
             .field("was_active", was_active)
             .str(),
         client);
    return;
  }
  // FailpointError on a bad site/mode propagates to handle_line's catch and
  // becomes one "error" event, like any other malformed request.
  util::failpoint_arm(inject.site, inject.mode,
                      inject.seed_set ? inject.seed : 0);
  emit(EventLine("injected")
           .field("site", inject.site)
           .field("mode", inject.mode)
           .field("active", true)
           .str(),
       client);
}

void JobService::emit(const std::string& line, std::uint64_t client) {
  const std::lock_guard<std::mutex> lock(emit_mutex_);
  write_locked(line, client);
}

void JobService::write_locked(const std::string& line, std::uint64_t client) {
  if (broadcast_) broadcast_(line);
  if (client == 0) return;
  Sink sink;
  {
    const std::lock_guard<std::mutex> lock(clients_mutex_);
    const auto it = clients_.find(client);
    if (it != clients_.end()) sink = it->second;
  }
  if (sink) sink(line);
}

void JobService::on_terminal(Job& job) {
  if (!job.dir.empty()) {
    std::string state, summary, error, reason;
    {
      const std::lock_guard<std::mutex> lock(job.mutex);
      state = job_state_name(job.state);
      summary = job.summary_json;
      error = job.error;
      reason = job.failure_reason;
    }
    EventLine result;
    result.field("state", state);
    if (!summary.empty()) result.raw("summary", summary);
    if (!error.empty()) result.field("error", error);
    if (!reason.empty()) result.field("reason", reason);
    try {
      // result.json marks the job finished: its presence is what stops the
      // next server process from requeueing this directory.
      write_text_file(job.dir + "/result.json", result.str() + "\n");
    } catch (const std::exception& e) {
      emit(EventLine("error").field("error", e.what()).str(), job.client);
    }
  }
  idle_cv_.notify_all();
}

std::uint64_t JobService::register_client(Sink sink) {
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  const std::uint64_t id = next_client_++;
  clients_.emplace(id, std::move(sink));
  return id;
}

void JobService::unregister_client(std::uint64_t client) {
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  clients_.erase(client);
}

void JobService::recover_persisted_jobs() {
  std::error_code ec;
  const fs::path root = fs::path(config_.state_dir) / "jobs";
  if (!fs::is_directory(root, ec)) return;
  std::vector<std::string> ids;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory()) ids.push_back(entry.path().filename().string());
  }
  std::sort(ids.begin(), ids.end());
  for (const auto& id : ids) {
    const fs::path dir = root / id;
    if (!fs::exists(dir / "job.json", ec)) continue;
    if (fs::exists(dir / "result.json", ec)) continue;  // finished last time
    try {
      auto cfg = exp::load_spec_file((dir / "spec.json").string());
      cfg.validate_or_throw();
      cfg.world.shards = exp::world_shards(cfg.world.shards);
      const JobMeta meta = parse_job_meta((dir / "job.json").string());
      auto job = std::make_shared<Job>();
      job->id = id;
      job->cfg = std::move(cfg);
      job->runs = meta.runs;
      job->attempts = meta.attempts;
      job->resume = true;  // checkpoints (if any) continue the old trajectory
      job->dir = dir.string();
      job->tenant = meta.tenant;
      job->priority = meta.priority;
      job->deadline_s = meta.deadline_s;
      if (meta.deadline_s > 0.0) {
        // The wall-clock budget restarts with the server: steady_clock does
        // not survive the process, and punishing a job for the dead server's
        // downtime would shed work no client chose to abandon (DESIGN.md §9).
        job->deadline_at = ServeClock::now() +
                           std::chrono::duration_cast<ServeClock::duration>(
                               std::chrono::duration<double>(meta.deadline_s));
      }
      {
        const std::lock_guard<std::mutex> lock(jobs_mutex_);
        jobs_.push_back(job);
      }
      // Poison quarantine: this job already took down `attempts` server
      // executions without finishing. Requeueing it would crash this one
      // too, so it fails terminally instead — result.json makes the verdict
      // exactly-once; the next restart skips the directory entirely.
      if (config_.max_job_attempts > 0 &&
          meta.attempts >= config_.max_job_attempts) {
        const std::string why =
            "quarantined after " + std::to_string(meta.attempts) +
            " crashed attempts (max_job_attempts " +
            std::to_string(config_.max_job_attempts) + ")";
        {
          const std::lock_guard<std::mutex> lock(job->mutex);
          job->state = JobState::kFailed;
          job->failure_reason = "poisoned";
          job->error = why;
        }
        ++quarantined_total_;
        emit(EventLine("failed")
                 .field("job", id)
                 .field("reason", "poisoned")
                 .field("attempts", meta.attempts)
                 .field("error", why)
                 .str(),
             0);
        on_terminal(*job);
        continue;
      }
      const std::lock_guard<std::mutex> lock(emit_mutex_);
      // requeue, not push: this work was admitted by a previous server, so
      // capacity and quota checks do not apply a second time (and a capacity
      // smaller than the recovered backlog must not strand persisted jobs).
      if (queue_.requeue(job, /*from_running=*/false)) {
        write_locked(EventLine("requeued")
                         .field("job", id)
                         .field("name", job->cfg.name)
                         .field("runs", job->runs)
                         .str(),
                     0);
      } else {
        write_locked(
            rejected_line(id, "draining", {"server drained during recovery"}),
            0);
      }
    } catch (const std::exception& e) {
      emit(EventLine("error")
               .field("error", "cannot recover job '" + id + "': " + e.what())
               .str(),
           0);
    }
  }
}

bool JobService::all_terminal() const {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  for (const auto& job : jobs_) {
    const std::lock_guard<std::mutex> job_lock(job->mutex);
    if (job->state != JobState::kCompleted && job->state != JobState::kFailed) {
      return false;
    }
  }
  return true;
}

bool JobService::client_terminal(std::uint64_t client) const {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  for (const auto& job : jobs_) {
    if (job->client != client) continue;
    const std::lock_guard<std::mutex> job_lock(job->mutex);
    if (job->state != JobState::kCompleted && job->state != JobState::kFailed) {
      return false;
    }
  }
  return true;
}

void JobService::wait_idle(const std::atomic<bool>* stop) {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  for (;;) {
    if (draining_.load() || all_terminal()) return;
    if (stop != nullptr && stop->load()) return;
    idle_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

void JobService::wait_client_idle(std::uint64_t client) {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  for (;;) {
    if (drained_.load() || client_terminal(client)) return;
    idle_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

std::shared_ptr<Job> JobService::find_job(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  for (const auto& job : jobs_) {
    if (job->id == id) return job;
  }
  return nullptr;
}

std::size_t JobService::job_count() const {
  const std::lock_guard<std::mutex> lock(jobs_mutex_);
  return jobs_.size();
}

void JobService::drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    // Someone else is draining; wait for the "drained" event to have gone out.
    while (!drained_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return;
  }
  emit(EventLine("draining").str(), 0);
  scheduler_->request_stop();
  queue_.close();  // pending jobs keep kQueued state and their persisted spec
  scheduler_->shutdown();

  std::vector<std::string> dispositions;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    dispositions.reserve(jobs_.size());
    for (const auto& job : jobs_) {
      const std::lock_guard<std::mutex> job_lock(job->mutex);
      dispositions.push_back(
          EventLine()
              .field("job", job->id)
              .field("state", job_state_name(job->state))
              .field("last_checkpoint_slot",
                     static_cast<int>(job->last_checkpoint_slot))
              .str());
    }
  }
  emit(EventLine("drained")
           .field("jobs_accepted", static_cast<int>(dispositions.size()))
           .raw("jobs", json_array(dispositions))
           .str(),
       0);
  drained_.store(true);
  idle_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

namespace {

/// Splits a byte stream into newline-terminated request lines.
class LineBuffer {
 public:
  template <typename Fn>
  void feed(const char* data, std::size_t n, Fn&& on_line) {
    buf_.append(data, n);
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf_.find('\n', start);
      if (nl == std::string::npos) break;
      on_line(buf_.substr(start, nl - start));
      start = nl + 1;
    }
    buf_.erase(0, start);
  }
  bool pending() const { return !buf_.empty(); }
  std::string take() {
    std::string s;
    s.swap(buf_);
    return s;
  }

 private:
  std::string buf_;
};

JobService::Sink stdout_sink() {
  return [](const std::string& line) {
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);  // events must be observable the moment they happen
  };
}

void send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;  // dead client: drop the rest, the reader thread will notice
    }
    off += static_cast<std::size_t>(w);
  }
}

int run_stdin_server(const ServerConfig& config, std::atomic<bool>& stop) {
  JobService service(config.service, stdout_sink());
  service.start();
  LineBuffer lines;
  bool eof = false;
  while (!eof && !stop.load() && !service.draining()) {
    struct pollfd p;
    p.fd = 0;
    p.events = POLLIN;
    p.revents = 0;
    const int r = ::poll(&p, 1, 200);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    char buf[4096];
    const ssize_t n = ::read(0, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    lines.feed(buf, static_cast<std::size_t>(n),
               [&](const std::string& line) { service.handle_line(line, 0); });
  }
  if (lines.pending()) service.handle_line(lines.take(), 0);
  // EOF means "no more work is coming": finish the accepted jobs, then
  // drain. A signal mid-wait still turns into an immediate drain.
  if (eof) service.wait_idle(&stop);
  service.drain();
  return 0;
}

int run_socket_server(const ServerConfig& config, std::atomic<bool>& stop) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (config.socket_path.empty() ||
      config.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "netsel_serve: invalid socket path '%s'\n",
                 config.socket_path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, config.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  std::error_code ec;
  if (fs::exists(fs::symlink_status(config.socket_path, ec))) {
    // Probe before unlinking: a connectable socket is a live server, a
    // refused one is a stale leftover from a killed process.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool live = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                  sizeof(addr)) == 0;
      ::close(probe);
      if (live) {
        std::fprintf(stderr, "netsel_serve: %s is already being served\n",
                     config.socket_path.c_str());
        return 1;
      }
    }
    ::unlink(config.socket_path.c_str());
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0 ||
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::fprintf(stderr, "netsel_serve: cannot listen on %s: %s\n",
                 config.socket_path.c_str(), std::strerror(errno));
    if (listen_fd >= 0) ::close(listen_fd);
    return 1;
  }

  JobService service(config.service, stdout_sink());
  service.start();

  struct Connection {
    int fd;
    std::thread reader;
  };
  std::vector<Connection> connections;

  while (!stop.load() && !service.draining()) {
    struct pollfd p;
    p.fd = listen_fd;
    p.events = POLLIN;
    p.revents = 0;
    const int r = ::poll(&p, 1, 200);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto write_mutex = std::make_shared<std::mutex>();
    const std::uint64_t client =
        service.register_client([fd, write_mutex](const std::string& line) {
          // Fault site: the client vanishes mid-stream. The reader thread
          // sees the shutdown as EOF and runs the normal disconnect path.
          if (util::failpoint("serve.client.disconnect")) {
            ::shutdown(fd, SHUT_RDWR);
            return;
          }
          std::string out = line;
          out += '\n';
          const std::lock_guard<std::mutex> lock(*write_mutex);
          send_all(fd, out.data(), out.size());
        });
    connections.push_back({fd, std::thread([fd, client, &service] {
                             LineBuffer lines;
                             char buf[4096];
                             for (;;) {
                               // Fault site: genuine 1-byte short reads —
                               // LineBuffer must reassemble request lines
                               // from arbitrary fragmentation.
                               const std::size_t cap =
                                   util::failpoint("serve.sock.short_read")
                                       ? 1
                                       : sizeof(buf);
                               const ssize_t n = ::recv(fd, buf, cap, 0);
                               if (n < 0) {
                                 if (errno == EINTR) continue;
                                 break;
                               }
                               if (n == 0) break;
                               lines.feed(buf, static_cast<std::size_t>(n),
                                          [&](const std::string& line) {
                                            service.handle_line(line, client);
                                          });
                             }
                             if (lines.pending()) {
                               service.handle_line(lines.take(), client);
                             }
                             // Half-close protocol: after the client stops
                             // sending, hold the connection open until its
                             // jobs are terminal (or a drain reported them).
                             service.wait_client_idle(client);
                             service.unregister_client(client);
                             ::shutdown(fd, SHUT_RDWR);
                           })});
  }

  service.drain();  // clients receive their "drained" event before close
  for (auto& c : connections) {
    ::shutdown(c.fd, SHUT_RDWR);
    c.reader.join();
    ::close(c.fd);
  }
  ::close(listen_fd);
  ::unlink(config.socket_path.c_str());
  return 0;
}

}  // namespace

int run_server(const ServerConfig& config, std::atomic<bool>& stop) {
  return config.transport == Transport::kSocket
             ? run_socket_server(config, stop)
             : run_stdin_server(config, stop);
}

int run_client(const std::string& socket_path, std::atomic<bool>& stop) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "netsel_serve: invalid socket path '%s'\n",
                 socket_path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "netsel_serve: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    if (fd >= 0) ::close(fd);
    return 1;
  }

  std::atomic<bool> done{false};
  std::thread pump([fd, &done, &stop] {
    char buf[4096];
    for (;;) {
      struct pollfd p;
      p.fd = 0;
      p.events = POLLIN;
      p.revents = 0;
      const int r = ::poll(&p, 1, 200);
      if (done.load() || stop.load()) break;
      if (r < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (r == 0) continue;
      const ssize_t n = ::read(0, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) break;
      send_all(fd, buf, static_cast<std::size_t>(n));
    }
    ::shutdown(fd, SHUT_WR);  // tells the server "no more requests from me"
  });

  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR && !stop.load()) continue;
      break;
    }
    if (n == 0) break;  // server closed: our jobs are done (or it drained)
    std::fwrite(buf, 1, static_cast<std::size_t>(n), stdout);
    std::fflush(stdout);
  }
  done.store(true);
  pump.join();
  ::close(fd);
  return 0;
}

}  // namespace smartexp3::serve
