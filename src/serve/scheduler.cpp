#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include <cstdlib>

#include "exp/aggregate.hpp"
#include "serve/protocol.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-(run) wall-clock cursors behind the progress hook: the hook fires
/// concurrently from every lane of the batch, so the map is mutex-guarded —
/// at progress cadence (tens of slots), not per slot.
struct ProgressTracker {
  std::mutex mutex;
  std::map<int, std::pair<Clock::time_point, Slot>> last;  // run -> (when, slot)
};

}  // namespace

Scheduler::Scheduler(SchedulerConfig config, JobQueue& queue, EmitFn emit,
                     TerminalFn on_terminal)
    : config_(std::move(config)),
      queue_(queue),
      emit_(std::move(emit)),
      on_terminal_(std::move(on_terminal)) {
  config_.executors = std::max(1, config_.executors);
  if (config_.lanes <= 0) {
    config_.lanes = static_cast<int>(std::thread::hardware_concurrency());
    if (config_.lanes <= 0) config_.lanes = 4;
  }
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::start() {
  if (started_) return;
  started_ = true;
  executors_.reserve(static_cast<std::size_t>(config_.executors));
  for (int i = 0; i < config_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

void Scheduler::shutdown() {
  if (!started_ || joined_) return;
  joined_ = true;
  queue_.close();
  for (auto& t : executors_) t.join();
}

int Scheduler::lane_budget() const {
  return std::max(1, config_.lanes / std::max(1, config_.executors));
}

void Scheduler::executor_loop() {
  for (;;) {
    std::shared_ptr<Job> job = queue_.pop();
    if (job == nullptr) return;  // queue closed and empty
    // A job popped after the drain flag rose never starts: it keeps its
    // queued state (and its persisted spec) for the next server process.
    if (stop_.load()) continue;
    ++running_;
    execute(job);
    --running_;
  }
}

void Scheduler::execute(const std::shared_ptr<Job>& job) {
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->state = JobState::kRunning;
  }
  // The attempt count must be durable BEFORE any work happens: a SIGKILL
  // (or the abort failpoint below) one instruction into the batch still
  // counts as a crash-attempt when the next server reads job.json.
  if (config_.on_start) config_.on_start(*job);
  const int lanes = std::min(lane_budget(), std::max(1, job->runs));
  emit_(*job, EventLine("started")
                  .field("job", job->id)
                  .field("runs", job->runs)
                  .field("lanes", lanes)
                  .str());

  const int devices = static_cast<int>(job->cfg.devices.size());
  const Slot horizon = job->cfg.world.horizon;
  // Short-horizon jobs (scalability_xl lives at horizon ~60) still deserve
  // progress events: clamp the cadence to a quarter horizon.
  const int cadence = std::max(
      1, std::min(config_.progress_every, static_cast<int>(horizon) / 4));

  ProgressTracker tracker;
  exp::RunOptions options;
  if (!job->dir.empty() && config_.checkpoint_every > 0) {
    options.checkpoint.every = config_.checkpoint_every;
    options.checkpoint.dir = job->dir + "/ckpt";
    options.checkpoint.resume = job->resume;
    // A full checkpoint disk must not kill a long job: drop to degraded
    // (no checkpoints, "degraded" event) and keep simulating.
    options.checkpoint.degrade_on_disk_full = true;
  }
  options.control.stop = &stop_;
  options.control.max_attempts = config_.max_attempts;
  options.control.watchdog_seconds = config_.watchdog_seconds;
  options.control.fault_hook = config_.fault_hook;
  options.control.progress_every = cadence;
  options.control.progress = [&](int run, Slot slot) {
    const auto now = Clock::now();
    double window_us = 0.0;
    Slot window_slots = 0;
    {
      const std::lock_guard<std::mutex> lock(tracker.mutex);
      auto it = tracker.last.find(run);
      if (it != tracker.last.end()) {
        window_us = std::chrono::duration<double, std::micro>(now - it->second.first)
                        .count();
        window_slots = slot - it->second.second;
        it->second = {now, slot};
      } else {
        tracker.last.emplace(run, std::make_pair(now, slot));
        window_slots = slot;  // first window measures from dispatch, skip rate
      }
    }
    long slots_total = 0;
    double rate = 0.0;
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->slots_done += window_slots;
      slots_total = job->slots_done;
      if (window_us > 0.0 && window_slots > 0) {
        const double per_slot_us = window_us / static_cast<double>(window_slots);
        job->latency.record(per_slot_us);
        rate = static_cast<double>(devices) * 1e6 / per_slot_us;
        job->device_slots_per_sec = rate;
      }
    }
    emit_(*job, EventLine("progress")
                    .field("job", job->id)
                    .field("run", run)
                    .field("slot", slot)
                    .field("horizon", static_cast<int>(horizon))
                    .field("slots_done", slots_total)
                    .field("device_slots_per_sec", rate)
                    .str());
  };
  options.control.on_checkpoint = [&](int run, Slot slot) {
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->last_checkpoint_slot = std::max(job->last_checkpoint_slot, slot);
    }
    emit_(*job, EventLine("checkpointed")
                    .field("job", job->id)
                    .field("run", run)
                    .field("slot", slot)
                    .str());
  };
  options.control.on_degraded = [&](int run, Slot slot,
                                    const std::string& reason) {
    bool first = false;
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      if (!job->degraded) {
        job->degraded = true;
        first = true;
      }
    }
    // One "degraded" event per job, not one per run attempt that hits the
    // same full disk.
    if (!first) return;
    ++degraded_jobs_;
    emit_(*job, EventLine("degraded")
                    .field("job", job->id)
                    .field("run", run)
                    .field("slot", slot)
                    .field("reason", "disk_pressure")
                    .field("checkpointing", "disabled")
                    .field("error", reason)
                    .str());
  };

  const auto started = Clock::now();
  exp::BatchResult batch;
  try {
    // Executor-level fault sites: a hard process abort (the poison-quarantine
    // scenario — the job "crashes the server") and a structural exception
    // that the catch below must survive.
    if (util::failpoint("serve.executor.abort")) std::abort();
    if (util::failpoint("serve.executor.exception")) {
      throw std::runtime_error(
          "executor exception [injected serve.executor.exception]");
    }
    batch = exp::run_many_result(job->cfg, job->runs, lanes, options);
  } catch (const std::exception& e) {
    // run_many_result reports run failures in-band; reaching here means the
    // config itself was rejected (admission should have caught it) or the
    // harness failed structurally. The job fails; the server stays up.
    const std::string error = e.what();
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->state = JobState::kFailed;
      job->error = error;
    }
    ++failed_;
    emit_(*job, EventLine("failed")
                    .field("job", job->id)
                    .field("error", error)
                    .field("completed_runs", 0)
                    .str());
    on_terminal_(*job);  // re-locks job->mutex — must run unlocked
    return;
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - started).count();
  retries_total_ += batch.retries;

  if (batch.interrupted) {
    Slot last = -1;
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->state = JobState::kInterrupted;
      last = job->last_checkpoint_slot;
    }
    ++interrupted_;
    emit_(*job, EventLine("interrupted")
                    .field("job", job->id)
                    .field("last_checkpoint_slot", static_cast<int>(last))
                    .field("resumable", !job->dir.empty())
                    .str());
    // Not terminal: the persisted spec + checkpoints are the hand-off to
    // the next server process, exactly like netsel_sim --resume.
    if (config_.on_interrupted) config_.on_interrupted(*job);
    return;
  }

  std::vector<metrics::RunResult> results;
  results.reserve(batch.results.size());
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.completed[i]) results.push_back(std::move(batch.results[i]));
  }

  if (!batch.failures.empty()) {
    std::vector<std::string> failure_objs;
    for (const auto& f : batch.failures) {
      failure_objs.push_back(EventLine()
                                 .field("run", f.run)
                                 .field("attempts", f.attempts)
                                 .field("error", f.error)
                                 .field("last_checkpoint_slot",
                                        static_cast<int>(f.last_checkpoint_slot))
                                 .str());
    }
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->state = JobState::kFailed;
      job->error = batch.failures.front().error;
    }
    ++failed_;
    emit_(*job, EventLine("failed")
                    .field("job", job->id)
                    .field("error", batch.failures.front().error)
                    .field("completed_runs", static_cast<int>(results.size()))
                    .raw("failed_runs", json_array(failure_objs))
                    .str());
    on_terminal_(*job);
    return;
  }

  const std::string summary = summary_json(job->cfg, results);
  double p50 = 0.0, p99 = 0.0;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->state = JobState::kCompleted;
    job->summary_json = summary;
    p50 = job->latency.percentile(0.50);
    p99 = job->latency.percentile(0.99);
  }
  ++completed_;
  emit_(*job, EventLine("completed")
                  .field("job", job->id)
                  .raw("summary", summary)
                  .raw("timing", EventLine()
                                     .field("elapsed_s", elapsed_s)
                                     .field("slot_p50_us", p50)
                                     .field("slot_p99_us", p99)
                                     .str())
                  .str());
  on_terminal_(*job);
}

std::string policy_label(const exp::ExperimentConfig& cfg) {
  if (cfg.devices.empty()) return "none";
  const std::string& first = cfg.devices.front().policy_name;
  for (const auto& d : cfg.devices) {
    if (d.policy_name != first) return "mixed";
  }
  return first;
}

std::string summary_json(const exp::ExperimentConfig& cfg,
                         const std::vector<metrics::RunResult>& results) {
  const auto switches = exp::switch_summary(results);
  EventLine s;
  s.field("name", cfg.name)
      .field("policy", policy_label(cfg))
      .field("runs", static_cast<int>(results.size()))
      .field("devices", static_cast<int>(cfg.devices.size()))
      .field("horizon", static_cast<int>(cfg.world.horizon))
      .field("switches_mean", switches.mean)
      .field("switches_sd", switches.stddev)
      .field("median_download_mb", exp::mean_of_run_median_download_mb(results))
      .field("download_stddev_mb", exp::mean_of_run_download_stddev_mb(results))
      .field("eps_pct", 100.0 * exp::mean_eps_fraction(results))
      .field("resets_per_device", exp::mean_resets_per_device(results));
  return s.str();
}

}  // namespace smartexp3::serve
