#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include <cstdlib>

#include "exp/aggregate.hpp"
#include "serve/protocol.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-(run) wall-clock cursors behind the progress hook: the hook fires
/// concurrently from every lane of the batch, so the map is mutex-guarded —
/// at progress cadence (tens of slots), not per slot.
struct ProgressTracker {
  std::mutex mutex;
  std::map<int, std::pair<Clock::time_point, Slot>> last;  // run -> (when, slot)
};

}  // namespace

Scheduler::Scheduler(SchedulerConfig config, JobQueue& queue, EmitFn emit,
                     TerminalFn on_terminal)
    : config_(std::move(config)),
      queue_(queue),
      emit_(std::move(emit)),
      on_terminal_(std::move(on_terminal)) {
  config_.executors = std::max(1, config_.executors);
  if (config_.lanes <= 0) {
    config_.lanes = static_cast<int>(std::thread::hardware_concurrency());
    if (config_.lanes <= 0) config_.lanes = 4;
  }
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::start() {
  if (started_) return;
  started_ = true;
  executors_.reserve(static_cast<std::size_t>(config_.executors));
  for (int i = 0; i < config_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
  governor_ = std::thread([this] { governor_loop(); });
}

void Scheduler::shutdown() {
  if (!started_ || joined_) return;
  joined_ = true;
  // The governor goes first: a shed or preemption decided mid-shutdown would
  // fight the drain's own dispositions.
  {
    const std::lock_guard<std::mutex> lock(governor_mutex_);
    governor_stop_ = true;
  }
  governor_cv_.notify_all();
  governor_.join();
  queue_.close();
  for (auto& t : executors_) t.join();
}

int Scheduler::lane_budget() const {
  return std::max(1, config_.lanes / std::max(1, config_.executors));
}

void Scheduler::executor_loop() {
  for (;;) {
    std::shared_ptr<Job> job = queue_.pop();
    if (job == nullptr) return;  // queue closed and empty
    // A job popped after the drain flag rose never starts: it keeps its
    // queued state (and its persisted spec) for the next server process.
    if (stop_.load()) {
      queue_.finish(job);
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(active_mutex_);
      active_.push_back(job);
    }
    ++running_;
    execute(job);
    --running_;
    {
      const std::lock_guard<std::mutex> lock(active_mutex_);
      active_.erase(std::remove(active_.begin(), active_.end(), job),
                    active_.end());
    }
  }
}

void Scheduler::governor_loop() {
  std::unique_lock<std::mutex> lock(governor_mutex_);
  const auto tick =
      std::chrono::milliseconds(std::max(1, config_.governor_tick_ms));
  for (;;) {
    governor_cv_.wait_for(lock, tick, [&] { return governor_stop_; });
    if (governor_stop_) return;
    // Draining: the drain owns every job's disposition now — no more
    // shedding or preemption decisions.
    if (stop_.load()) continue;
    lock.unlock();
    governor_tick();
    lock.lock();
  }
}

void Scheduler::governor_tick() {
  const auto now = ServeClock::now();
  // 1. Load shedding: queued jobs whose deadline passed never start.
  for (const auto& job : queue_.shed_expired(now)) shed_queued_job(job);

  // 2. Per-job wall-clock budget: a running job past its deadline is asked
  // to stop at its next slot boundary; the executor reports it terminal
  // failed/"deadline" (the attempt limit never resurrects it).
  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    for (const auto& job : active_) {
      if (job->deadline_s > 0.0 && now >= job->deadline_at &&
          !job->yield.load()) {
        job->yield_reason.store(static_cast<int>(YieldReason::kDeadline));
        job->yield.store(true);
      }
    }
  }

  // 3. Preemption: every executor busy + a strictly higher-priority job
  // waiting => the lowest-priority running job yields at its next slot
  // boundary (checkpoint flush + requeue, see execute()). One yield in
  // flight at a time — a slot boundary is never far away, and serializing
  // decisions keeps victim selection simple to reason about.
  if (!config_.preempt) return;
  if (running_.load() < config_.executors) return;
  const PreemptCandidate cand = queue_.preempt_candidate();
  if (!cand.any) return;
  const std::lock_guard<std::mutex> lock(active_mutex_);
  std::shared_ptr<Job> victim;
  for (const auto& job : active_) {
    if (job->yield.load()) return;  // a yield is already in flight
    // A waiter blocked by its own tenant's max_running is only helped by
    // evicting a job of that same tenant.
    if (cand.tenant_at_run_cap && job->tenant != cand.tenant) continue;
    if (job->priority >= cand.priority) continue;  // strictly lower only
    if (victim == nullptr || job->priority < victim->priority) victim = job;
  }
  if (victim != nullptr) {
    victim->yield_reason.store(static_cast<int>(YieldReason::kPreempt));
    victim->yield.store(true);
  }
}

void Scheduler::shed_queued_job(const std::shared_ptr<Job>& job) {
  std::string error;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->state = JobState::kFailed;
    job->failure_reason = "deadline";
    error = job->error = "deadline_s " + exp::json_number(job->deadline_s) +
                         " expired before the job reached an executor";
  }
  ++failed_;
  ++shed_total_;
  emit_(*job, EventLine("failed")
                  .field("job", job->id)
                  .field("reason", "deadline")
                  .field("error", error)
                  .field("completed_runs", 0)
                  .str());
  on_terminal_(*job);
}

void Scheduler::execute(const std::shared_ptr<Job>& job) {
  bool resume = false;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->state = JobState::kRunning;
    resume = job->resume;
  }
  // A fresh execution owes nobody a yield: clear any flag left over from a
  // previous preemption (or one that raced a completed batch).
  job->yield_reason.store(static_cast<int>(YieldReason::kNone));
  job->yield.store(false);
  // The attempt count must be durable BEFORE any work happens: a SIGKILL
  // (or the abort failpoint below) one instruction into the batch still
  // counts as a crash-attempt when the next server reads job.json.
  if (config_.on_start) config_.on_start(*job);
  const int lanes = std::min(lane_budget(), std::max(1, job->runs));
  emit_(*job, EventLine("started")
                  .field("job", job->id)
                  .field("runs", job->runs)
                  .field("lanes", lanes)
                  .str());

  const int devices = static_cast<int>(job->cfg.devices.size());
  const Slot horizon = job->cfg.world.horizon;
  // Short-horizon jobs (scalability_xl lives at horizon ~60) still deserve
  // progress events: clamp the cadence to a quarter horizon.
  const int cadence = std::max(
      1, std::min(config_.progress_every, static_cast<int>(horizon) / 4));

  ProgressTracker tracker;
  exp::RunOptions options;
  if (!job->dir.empty() && config_.checkpoint_every > 0) {
    options.checkpoint.every = config_.checkpoint_every;
    options.checkpoint.dir = job->dir + "/ckpt";
    options.checkpoint.resume = resume;
    // A full checkpoint disk must not kill a long job: drop to degraded
    // (no checkpoints, "degraded" event) and keep simulating.
    options.checkpoint.degrade_on_disk_full = true;
  }
  options.control.stop = &stop_;
  options.control.yield = &job->yield;
  options.control.max_attempts = config_.max_attempts;
  options.control.watchdog_seconds = config_.watchdog_seconds;
  options.control.fault_hook = config_.fault_hook;
  options.control.progress_every = cadence;
  options.control.progress = [&](int run, Slot slot) {
    const auto now = Clock::now();
    double window_us = 0.0;
    Slot window_slots = 0;
    {
      const std::lock_guard<std::mutex> lock(tracker.mutex);
      auto it = tracker.last.find(run);
      if (it != tracker.last.end()) {
        window_us = std::chrono::duration<double, std::micro>(now - it->second.first)
                        .count();
        window_slots = slot - it->second.second;
        it->second = {now, slot};
      } else {
        tracker.last.emplace(run, std::make_pair(now, slot));
        window_slots = slot;  // first window measures from dispatch, skip rate
      }
    }
    long slots_total = 0;
    double rate = 0.0;
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->slots_done += window_slots;
      slots_total = job->slots_done;
      if (window_us > 0.0 && window_slots > 0) {
        const double per_slot_us = window_us / static_cast<double>(window_slots);
        job->latency.record(per_slot_us);
        rate = static_cast<double>(devices) * 1e6 / per_slot_us;
        job->device_slots_per_sec = rate;
      }
    }
    emit_(*job, EventLine("progress")
                    .field("job", job->id)
                    .field("run", run)
                    .field("slot", slot)
                    .field("horizon", static_cast<int>(horizon))
                    .field("slots_done", slots_total)
                    .field("device_slots_per_sec", rate)
                    .str());
  };
  options.control.on_checkpoint = [&](int run, Slot slot) {
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->last_checkpoint_slot = std::max(job->last_checkpoint_slot, slot);
    }
    emit_(*job, EventLine("checkpointed")
                    .field("job", job->id)
                    .field("run", run)
                    .field("slot", slot)
                    .str());
  };
  options.control.on_degraded = [&](int run, Slot slot,
                                    const std::string& reason) {
    bool first = false;
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      if (!job->degraded) {
        job->degraded = true;
        first = true;
      }
    }
    // One "degraded" event per job, not one per run attempt that hits the
    // same full disk.
    if (!first) return;
    ++degraded_jobs_;
    emit_(*job, EventLine("degraded")
                    .field("job", job->id)
                    .field("run", run)
                    .field("slot", slot)
                    .field("reason", "disk_pressure")
                    .field("checkpointing", "disabled")
                    .field("error", reason)
                    .str());
  };

  const auto started = Clock::now();
  exp::BatchResult batch;
  try {
    // Executor-level fault sites: a hard process abort (the poison-quarantine
    // scenario — the job "crashes the server") and a structural exception
    // that the catch below must survive.
    if (util::failpoint("serve.executor.abort")) std::abort();
    if (util::failpoint("serve.executor.exception")) {
      throw std::runtime_error(
          "executor exception [injected serve.executor.exception]");
    }
    batch = exp::run_many_result(job->cfg, job->runs, lanes, options);
  } catch (const std::exception& e) {
    // run_many_result reports run failures in-band; reaching here means the
    // config itself was rejected (admission should have caught it) or the
    // harness failed structurally. The job fails; the server stays up.
    const std::string error = e.what();
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->state = JobState::kFailed;
      job->error = error;
    }
    ++failed_;
    emit_(*job, EventLine("failed")
                    .field("job", job->id)
                    .field("error", error)
                    .field("completed_runs", 0)
                    .str());
    queue_.finish(job);
    on_terminal_(*job);  // re-locks job->mutex — must run unlocked
    return;
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - started).count();
  retries_total_ += batch.retries;

  if (batch.interrupted) {
    // Three distinct interruptions share the batch's `interrupted` bit: a
    // process drain (stop_), a governor preemption, and a governor deadline
    // kill. The drain wins ties — its dispositions cover every job anyway.
    const auto reason = static_cast<YieldReason>(job->yield_reason.load());
    if (!stop_.load() && reason == YieldReason::kPreempt) {
      Slot last = -1;
      int preempts = 0;
      {
        const std::lock_guard<std::mutex> lock(job->mutex);
        job->state = JobState::kQueued;
        // The flushed checkpoint is the hand-off to the next execution; an
        // ephemeral job (no dir) simply reruns from slot 0 — either way the
        // trajectory is bit-identical to an un-preempted run.
        job->resume = true;
        preempts = ++job->preempts;
        last = job->last_checkpoint_slot;
      }
      ++preempted_total_;
      // A preemption is a graceful stop of one job, not a crash: un-charge
      // the attempt on_start persisted, exactly like a drain.
      if (config_.on_interrupted) config_.on_interrupted(*job);
      emit_(*job, EventLine("preempted")
                      .field("job", job->id)
                      .field("last_checkpoint_slot", static_cast<int>(last))
                      .field("preempts", preempts)
                      .field("requeued", true)
                      .str());
      job->yield_reason.store(static_cast<int>(YieldReason::kNone));
      job->yield.store(false);
      // requeue() declines only when the queue closed while the job was
      // yielding: the job then keeps its queued state and its persisted
      // spec for the next server process, like a drain-skipped job.
      queue_.requeue(job, /*from_running=*/true);
      return;
    }
    if (!stop_.load() && reason == YieldReason::kDeadline) {
      std::string error;
      {
        const std::lock_guard<std::mutex> lock(job->mutex);
        job->state = JobState::kFailed;
        job->failure_reason = "deadline";
        error = job->error = "job exceeded its deadline_s " +
                             exp::json_number(job->deadline_s) +
                             " wall-clock budget";
      }
      ++failed_;
      ++shed_total_;
      emit_(*job, EventLine("failed")
                      .field("job", job->id)
                      .field("reason", "deadline")
                      .field("error", error)
                      .field("completed_runs", 0)
                      .str());
      queue_.finish(job);
      on_terminal_(*job);
      return;
    }
    Slot last = -1;
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->state = JobState::kInterrupted;
      last = job->last_checkpoint_slot;
    }
    ++interrupted_;
    emit_(*job, EventLine("interrupted")
                    .field("job", job->id)
                    .field("last_checkpoint_slot", static_cast<int>(last))
                    .field("resumable", !job->dir.empty())
                    .str());
    // Not terminal: the persisted spec + checkpoints are the hand-off to
    // the next server process, exactly like netsel_sim --resume.
    if (config_.on_interrupted) config_.on_interrupted(*job);
    queue_.finish(job);
    return;
  }

  std::vector<metrics::RunResult> results;
  results.reserve(batch.results.size());
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.completed[i]) results.push_back(std::move(batch.results[i]));
  }

  if (!batch.failures.empty()) {
    std::vector<std::string> failure_objs;
    for (const auto& f : batch.failures) {
      failure_objs.push_back(EventLine()
                                 .field("run", f.run)
                                 .field("attempts", f.attempts)
                                 .field("error", f.error)
                                 .field("last_checkpoint_slot",
                                        static_cast<int>(f.last_checkpoint_slot))
                                 .str());
    }
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      job->state = JobState::kFailed;
      job->error = batch.failures.front().error;
    }
    ++failed_;
    emit_(*job, EventLine("failed")
                    .field("job", job->id)
                    .field("error", batch.failures.front().error)
                    .field("completed_runs", static_cast<int>(results.size()))
                    .raw("failed_runs", json_array(failure_objs))
                    .str());
    queue_.finish(job);
    on_terminal_(*job);
    return;
  }

  const std::string summary = summary_json(job->cfg, results);
  double p50 = 0.0, p99 = 0.0;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->state = JobState::kCompleted;
    job->summary_json = summary;
    p50 = job->latency.percentile(0.50);
    p99 = job->latency.percentile(0.99);
  }
  ++completed_;
  emit_(*job, EventLine("completed")
                  .field("job", job->id)
                  .raw("summary", summary)
                  .raw("timing", EventLine()
                                     .field("elapsed_s", elapsed_s)
                                     .field("slot_p50_us", p50)
                                     .field("slot_p99_us", p99)
                                     .str())
                  .str());
  queue_.finish(job);
  on_terminal_(*job);
}

std::string policy_label(const exp::ExperimentConfig& cfg) {
  if (cfg.devices.empty()) return "none";
  const std::string& first = cfg.devices.front().policy_name;
  for (const auto& d : cfg.devices) {
    if (d.policy_name != first) return "mixed";
  }
  return first;
}

std::string summary_json(const exp::ExperimentConfig& cfg,
                         const std::vector<metrics::RunResult>& results) {
  const auto switches = exp::switch_summary(results);
  EventLine s;
  s.field("name", cfg.name)
      .field("policy", policy_label(cfg))
      .field("runs", static_cast<int>(results.size()))
      .field("devices", static_cast<int>(cfg.devices.size()))
      .field("horizon", static_cast<int>(cfg.world.horizon))
      .field("switches_mean", switches.mean)
      .field("switches_sd", switches.stddev)
      .field("median_download_mb", exp::mean_of_run_median_download_mb(results))
      .field("download_stddev_mb", exp::mean_of_run_download_stddev_mb(results))
      .field("eps_pct", 100.0 * exp::mean_eps_fraction(results))
      .field("resets_per_device", exp::mean_resets_per_device(results));
  return s.str();
}

}  // namespace smartexp3::serve
