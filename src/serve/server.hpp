// The netsel_serve service core and its transports.
//
// JobService is transport-free: it consumes request lines (from any thread),
// emits event lines through sinks, and owns the queue + scheduler + the
// on-disk job state. The tests drive it in-process; the `netsel_serve` tool
// wraps it in one of two transports — newline framing on stdin/stdout, or a
// Unix domain socket accepting concurrent clients (run_server below).
//
// Durability contract: with a state dir, every accepted job persists its
// post-override ScenarioSpec (spec.json — canonical text, so the checkpoint
// fingerprint matches across processes), its metadata (job.json) and, on
// completion or failure, its outcome (result.json). A job directory with no
// result.json is unfinished business: the next server process requeues it
// with resume=true and the batch runner picks up from the newest valid
// checkpoint, which is how a SIGKILL'd server finishes its jobs with
// bit-identical summaries (tests/netsel_serve_test.sh proves the bytes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"

namespace smartexp3::serve {

struct ServiceConfig {
  std::string state_dir;  ///< "" = ephemeral (no persistence, no resume)
  int executors = 2;      ///< concurrent jobs
  int lanes = 0;          ///< total run-level worker lanes; 0 = hardware
  int checkpoint_every = 200;  ///< slots between durable checkpoints; 0 = off
  int progress_every = 64;     ///< slots between progress events per run
  int max_attempts = 2;        ///< attempts per run
  /// Poison-job quarantine threshold: a persisted job whose attempt count
  /// (server executions that never ended cleanly — i.e. crashes) reaches
  /// this is quarantined at recovery with a terminal "failed" event, reason
  /// "poisoned", instead of being requeued to crash the next server too.
  /// 0 disables quarantine. Needs a state dir to mean anything.
  int max_job_attempts = 3;
  double watchdog_seconds = 0.0;
  std::size_t queue_capacity = 64;  ///< pending jobs before admission rejects
  /// Per-tenant admission quotas (DESIGN.md §9): `default_quota` applies to
  /// every tenant without a named override in `tenant_quotas`. All-unlimited
  /// (the default) keeps the queue on its accounting-free FIFO fast path.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Checkpoint-based preemption for higher-priority waiters; see
  /// SchedulerConfig::preempt.
  bool preempt = true;
  /// Governor cadence (ms) for deadline shedding and preemption decisions.
  int governor_tick_ms = 10;
  /// Test-only fault injection threaded into every job's RunControl.
  std::function<void(int run, Slot slot)> fault_hook;
};

class JobService {
 public:
  /// An event-line consumer. Lines arrive WITHOUT trailing newline, one
  /// complete JSON object each, serialized by the service's emit lock —
  /// sinks never see interleaved fragments.
  using Sink = std::function<void(const std::string& line)>;

  /// `broadcast` receives every event. Per-client sinks (register_client)
  /// additionally receive events about their own jobs and replies to their
  /// own requests.
  JobService(ServiceConfig config, Sink broadcast);
  ~JobService();

  /// Emit the "serving" banner, requeue unfinished persisted jobs, start the
  /// executors.
  void start();

  /// Handle one request line from `client` (0 = the broadcast submitter,
  /// i.e. stdin mode or tests). Never throws: malformed requests become
  /// "error" events, unsound specs become "rejected" events.
  void handle_line(const std::string& line, std::uint64_t client = 0);

  std::uint64_t register_client(Sink sink);
  void unregister_client(std::uint64_t client);

  /// Graceful drain: stop intake, raise the cooperative stop flag (running
  /// jobs flush a final checkpoint at the next slot boundary), join the
  /// executors, report every accepted job's disposition in one "drained"
  /// event. Idempotent; blocks until complete.
  void drain();
  bool draining() const { return draining_.load(); }
  bool drained() const { return drained_.load(); }

  /// Block until every accepted job reached completed/failed, or a drain
  /// started, or `*stop` went true (checked at ~100 ms cadence).
  void wait_idle(const std::atomic<bool>* stop = nullptr);
  /// Same, but only for jobs submitted by `client`; also returns once a
  /// drain has fully finished (so the client saw its "drained" event).
  void wait_client_idle(std::uint64_t client);

  /// Snapshot accessors for tests.
  std::shared_ptr<Job> find_job(const std::string& id) const;
  std::size_t job_count() const;

 private:
  void handle_submit(const SubmitRequest& submit, std::uint64_t client);
  void handle_stats(std::uint64_t client);
  void handle_inject(const InjectRequest& inject, std::uint64_t client);
  /// Route one finished line to the broadcast sink + `client`'s sink.
  void emit(const std::string& line, std::uint64_t client);
  /// Same, with emit_mutex_ already held by the caller.
  void write_locked(const std::string& line, std::uint64_t client);
  void on_terminal(Job& job);
  void recover_persisted_jobs();
  std::string job_dir(const std::string& id) const;
  bool all_terminal() const;
  bool client_terminal(std::uint64_t client) const;
  /// Backpressure hint for queue-full/quota rejections: expected milliseconds
  /// until the backlog drains, from the service's observed completion rate
  /// (terminal jobs / uptime). A flat 1 s before any job has finished.
  long retry_after_ms_hint() const;

  ServiceConfig config_;
  Sink broadcast_;
  JobQueue queue_;
  std::unique_ptr<Scheduler> scheduler_;

  mutable std::mutex jobs_mutex_;
  std::vector<std::shared_ptr<Job>> jobs_;  // acceptance order
  int next_auto_id_ = 1;

  std::mutex clients_mutex_;
  std::map<std::uint64_t, Sink> clients_;
  std::uint64_t next_client_ = 1;

  std::mutex emit_mutex_;  ///< serializes sink writes and accept-vs-start order

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<int> quarantined_total_{0};  ///< poisoned jobs since start
  const ServeClock::time_point started_at_ = ServeClock::now();
};

/// How `run_server` listens for requests.
enum class Transport {
  kStdin,   ///< newline requests on stdin, events on stdout; EOF = drain
  kSocket,  ///< Unix domain socket; concurrent clients, events broadcast
};

struct ServerConfig {
  Transport transport = Transport::kStdin;
  std::string socket_path;  ///< kSocket only
  ServiceConfig service;
};

/// Run the service until stdin EOF (kStdin) or `stop` goes true (either
/// transport; the tool's SIGINT/SIGTERM handler raises it). Always drains
/// before returning. Returns a process exit code: 0 after a graceful drain,
/// 1 on a transport setup failure (socket in use, bind error).
int run_server(const ServerConfig& config, std::atomic<bool>& stop);

/// Client mode: connect to a serving socket, pump stdin lines to the server
/// and print every event line the server sends until it closes the
/// connection. Returns 0 on a clean close, 1 when the connect fails.
int run_client(const std::string& socket_path, std::atomic<bool>& stop);

}  // namespace smartexp3::serve
