// Synthetic WiFi/cellular trace pairs calibrated to the qualitative regimes
// of the paper's four collected trace pairs (§VI-B):
//
//   pair 1: both fluctuate, cellular usually (but not always) ahead —
//           several lead changes;
//   pair 2: cellular strictly dominant throughout (the regime where Greedy
//           matches Smart EXP3);
//   pair 3: heavy fluctuation with deep cellular fades — the most
//           adversarial pair, frequent lead changes;
//   pair 4: comparable means with regular crossovers.
//
// Rates follow an AR(1) process around regime means, with regimes switching
// via a Markov chain; everything is reproducible from the seed.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace smartexp3::trace {

struct SynthOptions {
  int slots = 100;          ///< 25 minutes of 15 s slots, as in the paper
  std::uint64_t seed = 7;
};

/// Generate synthetic trace pair `index` (1..4). Throws on other indices.
TracePair synthetic_pair(int index, SynthOptions options = {});

/// All four pairs.
std::vector<TracePair> all_synthetic_pairs(SynthOptions options = {});

}  // namespace smartexp3::trace
