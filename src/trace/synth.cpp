#include "trace/synth.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/rng.hpp"

namespace smartexp3::trace {

namespace {

/// One piecewise-constant regime: a target mean that holds until `until`
/// (exclusive, as a fraction of the horizon).
struct Segment {
  double until_fraction;
  double mean_mbps;
};

/// AR(1) noise around a scripted mean schedule. Scripted segments (rather
/// than random regime switching) pin down the qualitative structure of each
/// of the paper's four collected pairs — in particular the greedy-trap shape
/// of trace 3, where the early leader collapses mid-trace.
std::vector<double> generate(const std::vector<Segment>& schedule, int slots,
                             double rho, double sigma, double floor_mbps,
                             double cap_mbps, stats::Rng& rng) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(slots));
  double level = schedule.front().mean_mbps;
  for (int t = 0; t < slots; ++t) {
    const double f = static_cast<double>(t) / static_cast<double>(slots);
    double target = schedule.back().mean_mbps;
    for (const auto& seg : schedule) {
      if (f < seg.until_fraction) {
        target = seg.mean_mbps;
        break;
      }
    }
    level = target + rho * (level - target) + rng.normal(0.0, sigma);
    out.push_back(std::clamp(level, floor_mbps, cap_mbps));
  }
  return out;
}

}  // namespace

TracePair synthetic_pair(int index, SynthOptions options) {
  stats::Rng rng(options.seed ^ (0x517cc1b727220a95ULL * static_cast<std::uint64_t>(index)));
  TracePair pair;
  pair.label = "synthetic-trace-" + std::to_string(index);
  const int n = options.slots;

  switch (index) {
    case 1:
      // Cellular mostly ahead, but it fades well below WiFi mid-trace: the
      // fade is long and deep enough that Greedy's running average finally
      // capitulates to WiFi — right before cellular recovers, which Greedy
      // then misses (its frozen cellular average sits below WiFi's). A
      // policy that keeps probing rides the better network in every phase.
      pair.cellular_mbps =
          generate({{0.3, 4.8}, {0.8, 1.2}, {1.0, 5.5}}, n, 0.6, 0.4, 0.3, 6.5, rng);
      pair.wifi_mbps = generate({{1.0, 3.0}}, n, 0.6, 0.3, 0.3, 6.5, rng);
      break;
    case 2:
      // Cellular strictly dominant throughout (paper: "cellular network is
      // always better than WiFi in trace 2") — Greedy's best case.
      pair.cellular_mbps = generate({{0.5, 5.6}, {1.0, 5.0}}, n, 0.6, 0.25, 4.3, 6.5, rng);
      pair.wifi_mbps = generate({{0.4, 2.2}, {1.0, 2.6}}, n, 0.6, 0.25, 0.3, 3.6, rng);
      break;
    case 3:
      // The greedy trap: cellular opens strong (greedy locks in), then
      // collapses for most of the trace while WiFi improves, recovering only
      // at the very end. Heaviest fluctuation of the four.
      pair.cellular_mbps =
          generate({{0.25, 5.2}, {0.85, 1.1}, {1.0, 3.5}}, n, 0.55, 0.5, 0.2, 6.5, rng);
      pair.wifi_mbps = generate({{0.25, 2.9}, {1.0, 3.9}}, n, 0.55, 0.45, 0.3, 6.5, rng);
      break;
    case 4:
      // Comparable means with a regular alternation of the leader.
      pair.cellular_mbps =
          generate({{0.25, 4.7}, {0.5, 2.9}, {0.75, 4.7}, {1.0, 2.9}}, n, 0.6, 0.35,
                   0.3, 6.5, rng);
      pair.wifi_mbps =
          generate({{0.25, 3.0}, {0.5, 4.4}, {0.75, 3.0}, {1.0, 4.4}}, n, 0.6, 0.35,
                   0.3, 6.5, rng);
      break;
    default:
      throw std::invalid_argument("synthetic_pair: index must be 1..4");
  }
  return pair;
}

std::vector<TracePair> all_synthetic_pairs(SynthOptions options) {
  std::vector<TracePair> pairs;
  for (int i = 1; i <= 4; ++i) pairs.push_back(synthetic_pair(i, options));
  return pairs;
}

}  // namespace smartexp3::trace
