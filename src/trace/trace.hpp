// Network throughput traces: a per-slot bit-rate series for one network,
// plus CSV I/O so collected traces can be replayed. The paper's §VI-B
// evaluates on four simultaneously collected (WiFi, cellular) trace pairs;
// synth.hpp generates calibrated synthetic stand-ins (see DESIGN.md §3).
#pragma once

#include <string>
#include <vector>

namespace smartexp3::trace {

/// A pair of simultaneously collected per-slot bit rates (Mbps).
struct TracePair {
  std::string label;
  std::vector<double> wifi_mbps;
  std::vector<double> cellular_mbps;

  std::size_t slots() const { return wifi_mbps.size(); }
  bool consistent() const { return wifi_mbps.size() == cellular_mbps.size(); }
};

/// Write a trace pair as CSV with header "slot,wifi_mbps,cellular_mbps".
void save_csv(const TracePair& pair, const std::string& path);

/// Load a trace pair from the CSV format written by save_csv. Throws
/// std::runtime_error on malformed input.
TracePair load_csv(const std::string& path);

/// Summary statistics used in reports.
struct TraceSummary {
  double wifi_mean = 0.0;
  double cellular_mean = 0.0;
  /// Fraction of slots where cellular strictly beats WiFi.
  double cellular_dominance = 0.0;
  /// Number of lead changes (which network is better flips).
  int crossovers = 0;
};

TraceSummary summarise(const TracePair& pair);

}  // namespace smartexp3::trace
