#include "trace/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace smartexp3::trace {

void save_csv(const TracePair& pair, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_csv: cannot open " + path);
  out << "slot,wifi_mbps,cellular_mbps\n";
  for (std::size_t i = 0; i < pair.slots(); ++i) {
    out << i << ',' << pair.wifi_mbps[i] << ',' << pair.cellular_mbps[i] << '\n';
  }
}

TracePair load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_csv: cannot open " + path);
  TracePair pair;
  pair.label = path;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("load_csv: empty file " + path);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    double values[3] = {0.0, 0.0, 0.0};
    for (int i = 0; i < 3; ++i) {
      if (!std::getline(row, cell, ',')) {
        throw std::runtime_error("load_csv: malformed row in " + path + ": " + line);
      }
      try {
        values[i] = std::stod(cell);
      } catch (const std::exception&) {
        throw std::runtime_error("load_csv: non-numeric cell in " + path + ": " + cell);
      }
    }
    pair.wifi_mbps.push_back(values[1]);
    pair.cellular_mbps.push_back(values[2]);
  }
  return pair;
}

TraceSummary summarise(const TracePair& pair) {
  TraceSummary s;
  if (pair.slots() == 0 || !pair.consistent()) return s;
  int dominant = 0;
  int last_leader = 0;  // +1 cellular, -1 wifi, 0 tie
  for (std::size_t i = 0; i < pair.slots(); ++i) {
    s.wifi_mean += pair.wifi_mbps[i];
    s.cellular_mean += pair.cellular_mbps[i];
    const int leader = pair.cellular_mbps[i] > pair.wifi_mbps[i]
                           ? 1
                           : (pair.cellular_mbps[i] < pair.wifi_mbps[i] ? -1 : 0);
    if (leader == 1) ++dominant;
    if (leader != 0 && last_leader != 0 && leader != last_leader) ++s.crossovers;
    if (leader != 0) last_leader = leader;
  }
  const auto n = static_cast<double>(pair.slots());
  s.wifi_mean /= n;
  s.cellular_mean /= n;
  s.cellular_dominance = dominant / n;
  return s;
}

}  // namespace smartexp3::trace
