// Scenario events: scripted changes to the world during a run.
//
// Device arrivals and departures are expressed on the DeviceSpec itself
// (join_slot / leave_slot); Scenario carries everything else — device
// movement between service areas (paper §VI-A setting 3) and scripted
// capacity changes.
#pragma once

#include <vector>

#include "netsim/types.hpp"

namespace smartexp3::netsim {

/// Move a device to another service area at the *start* of `slot`.
struct MoveEvent {
  Slot slot = 0;
  DeviceId device = 0;
  int new_area = 0;
};

/// Change a network's base capacity at the start of `slot` (not used by the
/// paper's headline experiments but exercised by tests and the ablations).
struct CapacityEvent {
  Slot slot = 0;
  NetworkId network = 0;
  double new_capacity_mbps = 0.0;
};

struct Scenario {
  std::vector<MoveEvent> moves;
  std::vector<CapacityEvent> capacity_changes;

  Scenario& move(Slot slot, DeviceId device, int new_area) {
    moves.push_back({slot, device, new_area});
    return *this;
  }

  Scenario& set_capacity(Slot slot, NetworkId network, double mbps) {
    capacity_changes.push_back({slot, network, mbps});
    return *this;
  }

  bool empty() const { return moves.empty() && capacity_changes.empty(); }

  /// Sort events chronologically. Called once by the world before a run.
  void normalise();
};

}  // namespace smartexp3::netsim
