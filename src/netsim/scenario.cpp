#include "netsim/scenario.hpp"

#include <algorithm>

namespace smartexp3::netsim {

void Scenario::normalise() {
  std::stable_sort(moves.begin(), moves.end(),
                   [](const MoveEvent& a, const MoveEvent& b) { return a.slot < b.slot; });
  std::stable_sort(capacity_changes.begin(), capacity_changes.end(),
                   [](const CapacityEvent& a, const CapacityEvent& b) { return a.slot < b.slot; });
}

}  // namespace smartexp3::netsim
