// Structure-of-arrays storage for per-device simulation state.
//
// At fig06 scale (hundreds of devices) an array-of-structs DeviceState was
// fine; at the 10^5–10^6 devices the scalability settings run, every phase
// is a sweep over one or two fields of *all* devices, and AoS turns each
// sweep into a strided walk that drags the whole ~200-byte struct through
// the cache per field touched. DevicePool keeps each field in its own
// contiguous array so the choose/counts/feedback sweeps, the recorder's
// accounting scans and the snapshot walk each touch only the bytes they
// read, and memory per device stays a small constant (enforced by
// tests/test_memory_budget.cpp).
//
// Index i is the device's position in construction order everywhere — the
// same index the world's pending_ picks, policy groups and shard ranges
// use. The pool is append-only during World construction and fixed-size
// afterwards; only the field values change during a run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "netsim/network.hpp"
#include "stats/rng.hpp"

namespace smartexp3::netsim {

/// Static description of one device participating in a run.
struct DeviceSpec {
  DeviceId id = 0;
  int area = 0;
  Slot join_slot = 0;
  Slot leave_slot = -1;  ///< -1 = stays until the end
  std::string policy_name;  ///< consumed by the policy factory
};

/// Per-device state, one array per field (read-only to observers).
struct DevicePool {
  // ---- construction state (cold: written once, read rarely) ----
  std::vector<DeviceSpec> spec;
  std::vector<std::unique_ptr<core::Policy>> policy;
  /// Cached result of policy->networks(): the returned vector *object* is
  /// stable for the policy's lifetime (only its contents change), so the
  /// per-device-slot virtual call is paid once at world construction.
  std::vector<const std::vector<NetworkId>*> policy_nets;
  /// Policy's feedback capability, resolved once at construction.
  std::vector<std::uint8_t> wants_full_info;

  // ---- live state (hot: swept every slot) ----
  std::vector<std::uint8_t> active;
  std::vector<int> area;
  std::vector<NetworkId> current;
  // Per-slot outcome of the most recent slot (valid while active).
  std::vector<double> last_rate_mbps;
  std::vector<double> last_gain;
  std::vector<std::uint8_t> last_switched;
  // Cumulative accounting.
  std::vector<double> download_mb;
  std::vector<double> delay_loss_mb;  ///< download foregone re-associating
  std::vector<int> switches;
  std::vector<int> slots_active;
  /// Per-device switching-delay stream, seeded from (world seed, device
  /// id). Keeping delay draws out of the world stream is what makes the
  /// feedback phase device-parallel without changing the trajectory.
  std::vector<stats::Rng> delay_rng;

  std::size_t size() const { return spec.size(); }
  bool empty() const { return spec.empty(); }

  void reserve(std::size_t n) {
    spec.reserve(n);
    policy.reserve(n);
    policy_nets.reserve(n);
    wants_full_info.reserve(n);
    active.reserve(n);
    area.reserve(n);
    current.reserve(n);
    last_rate_mbps.reserve(n);
    last_gain.reserve(n);
    last_switched.reserve(n);
    download_mb.reserve(n);
    delay_loss_mb.reserve(n);
    switches.reserve(n);
    slots_active.reserve(n);
    delay_rng.reserve(n);
  }

  /// Append one device with freshly-initialised live state.
  void push_back(DeviceSpec s, std::unique_ptr<core::Policy> p,
                 stats::Rng delay_stream, bool full_info) {
    policy_nets.push_back(&p->networks());
    policy.push_back(std::move(p));
    wants_full_info.push_back(full_info ? 1 : 0);
    active.push_back(0);
    area.push_back(s.area);
    current.push_back(kNoNetwork);
    last_rate_mbps.push_back(0.0);
    last_gain.push_back(0.0);
    last_switched.push_back(0);
    download_mb.push_back(0.0);
    delay_loss_mb.push_back(0.0);
    switches.push_back(0);
    slots_active.push_back(0);
    delay_rng.push_back(delay_stream);
    spec.push_back(std::move(s));
  }
};

}  // namespace smartexp3::netsim
