// Wireless networks: capacity (possibly trace-driven), technology type
// (which determines the switching-delay distribution) and coverage areas
// (the service-area model of the paper's Figure 1).
#pragma once

#include <string>
#include <vector>

#include "netsim/types.hpp"

namespace smartexp3::netsim {

enum class NetworkType { kWifi, kCellular };

std::string to_string(NetworkType t);

/// A wireless network in the simulated world.
///
/// Capacity is `base_capacity_mbps` unless a per-slot `trace` is attached,
/// in which case the trace value for the slot is used (the last trace value
/// persists past the end of the trace). Coverage is expressed as a list of
/// service-area ids; an empty list means the network covers every area
/// (e.g. a cellular macro cell).
struct Network {
  NetworkId id = 0;
  NetworkType type = NetworkType::kWifi;
  double base_capacity_mbps = 0.0;
  std::vector<int> areas;        ///< covered areas; empty = everywhere
  std::vector<double> trace;     ///< optional per-slot capacity (Mbps)
  std::string label;             ///< human-readable name for reports

  /// Capacity at slot `t` in Mbps.
  double capacity(Slot t) const;

  /// Whether the network is usable from service area `area`.
  bool covers(int area) const;
};

/// Convenience constructors.
Network make_wifi(NetworkId id, double capacity_mbps, std::vector<int> areas = {},
                  std::string label = {});
Network make_cellular(NetworkId id, double capacity_mbps, std::vector<int> areas = {},
                      std::string label = {});

/// Ids of the networks visible from `area`, in table order.
std::vector<NetworkId> visible_networks(const std::vector<Network>& networks, int area);

/// In-place variant: fills `out` (cleared first) without allocating once its
/// capacity has grown to the network count. Used by the world's per-area
/// visibility cache.
void visible_networks_into(const std::vector<Network>& networks, int area,
                           std::vector<NetworkId>& out);

}  // namespace smartexp3::netsim
