// StepExecutor: the device-parallel phase runner behind World::step.
//
// A slot's work decomposes into per-device tasks that are independent within
// a phase (see world.hpp for the phase structure). StepExecutor owns a
// persistent pool of worker threads and fans a phase body out over a static,
// deterministic partition of the device index range: device i is always
// processed inside range floor(n*w/T)..floor(n*(w+1)/T) for worker w of T.
// Which thread runs a device never affects the trajectory — every per-device
// task reads shared slot state and writes only device-local state — so the
// partition only has to be fixed, not clever.
//
// Dispatch is epoch-based: the caller publishes the phase body, bumps the
// epoch (release), runs its own range, then waits for the workers'
// completion counter (acquire). Workers spin briefly and then yield, so an
// oversubscribed machine (threads > cores) degrades gracefully instead of
// burning the timeslice of the thread doing real work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smartexp3::netsim {

class StepExecutor {
 public:
  /// A phase body: process devices in [begin, end).
  using RangeBody = std::function<void(std::size_t begin, std::size_t end)>;

  /// A lane-aware phase body: process work items in [begin, end) on `lane`
  /// (0 = the calling thread). The lane index lets the caller hand each
  /// concurrent body invocation its own scratch arena.
  using LaneBody = std::function<void(int lane, std::size_t begin, std::size_t end)>;

  /// `threads` is the total parallelism including the calling thread;
  /// 0 resolves to std::thread::hardware_concurrency(). One worker thread is
  /// spawned per extra lane, so threads == 1 spawns none.
  explicit StepExecutor(int threads);
  ~StepExecutor();

  StepExecutor(const StepExecutor&) = delete;
  StepExecutor& operator=(const StepExecutor&) = delete;

  int thread_count() const { return threads_; }

  /// Run body over [0, n): worker w handles [n*w/T, n*(w+1)/T). Returns once
  /// every range has completed (a full phase barrier). Not reentrant. If any
  /// range throws, the barrier still completes and the first exception is
  /// rethrown here, on the calling thread — a throwing phase body must never
  /// std::terminate the process from a worker.
  void run(std::size_t n, const RangeBody& body);

  /// Lane-aware variant of run(): same even n*w/T split, but the body also
  /// receives the lane index so each concurrent invocation can use its own
  /// scratch arena (the caller is always lane 0).
  void run(std::size_t n, const LaneBody& body);

  /// Run body over a caller-supplied partition: worker w handles work items
  /// [bounds[w], bounds[w+1]). `bounds` must have thread_count() + 1
  /// monotone entries and stay alive for the duration of the call. This is
  /// how the world's cost-model chunk partition reaches the lanes: the
  /// caller balances the boundaries by per-item cost instead of item count.
  /// Same barrier / exception contract as run().
  void run_partitioned(const std::size_t* bounds, const LaneBody& body);

  /// Resolve a user-facing thread-count knob: 0 = hardware concurrency,
  /// anything below 1 clamps to 1.
  static int resolve(int threads);

 private:
  void worker_loop(int lane);
  /// Shared dispatch: publish the current epoch, run the caller's own range
  /// (lane 0), spin out the barrier and rethrow the first failure.
  template <typename CallerBody>
  void dispatch_and_wait(CallerBody&& caller_body, std::size_t caller_begin,
                         std::size_t caller_end);

  int threads_ = 1;
  // Spin+yield iterations a worker burns before parking on the condition
  // variable. 0 when the pool is oversubscribed (threads > hardware
  // concurrency, detected once at construction): a spinning worker would
  // only steal the timeslice of the lane doing real work — the mechanism
  // behind the 50x single-core collapse the bench once recorded as
  // "scaling" — so oversubscribed workers go straight to the parked path.
  // Purely an execution knob: parking never changes which lane runs which
  // range, so results are bit-identical (tests/test_parallel_determinism).
  int park_budget_ = 0;
  std::vector<std::thread> workers_;
  // Dispatch state. `epoch_` counts run() calls; its release store publishes
  // `n_` and `body_` to the workers, whose release increments of `done_`
  // publish their writes back to the caller.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<bool> stop_{false};
  std::size_t n_ = 0;
  const RangeBody* body_ = nullptr;
  // Partitioned dispatch state (run_partitioned): when bounds_ is set the
  // workers take their range from it instead of the even n*w/T split.
  const std::size_t* bounds_ = nullptr;
  const LaneBody* lane_body_ = nullptr;
  // First exception thrown by any range this run(); rethrown on the caller.
  std::mutex error_mutex_;
  std::exception_ptr error_;
  // Workers that exhaust their spin+yield budget park here until the next
  // dispatch, so an idle or serial-phase-bound world does not burn cores
  // other runs could use.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

}  // namespace smartexp3::netsim
