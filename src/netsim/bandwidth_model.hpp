// Bandwidth-sharing models: how a network's capacity is divided among the
// devices associated with it in a slot.
//
// The paper's simulations assume a network's bandwidth is shared equally
// among its clients (EqualShareModel). The controlled experiments (§VII-A)
// show that real devices do *not* get equal shares and that observed rates
// fluctuate; NoisyShareModel reproduces those effects: a fixed per-device
// share multiplier (distance from AP, antenna quality), AR(1) per-network
// rate noise (interference), and occasional deep throughput dips.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/snapshot.hpp"
#include "netsim/network.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace smartexp3::netsim {

/// Strategy interface for per-device observed bit rates.
class BandwidthModel {
 public:
  virtual ~BandwidthModel() = default;

  /// Called once at the start of every slot, before any rate() calls, so the
  /// model can advance time-correlated noise processes.
  virtual void begin_slot(Slot t, stats::Rng& rng) = 0;

  /// Called by the world after begin_slot(), while execution is still
  /// serial, for models that are not device-invariant — on the first slot
  /// and again whenever the active device set (or the model binding)
  /// changed: `devices` holds the ids of every active device in fixed
  /// device order. A model with lazy per-device or per-network state
  /// materialises it here — in exactly the order the serial rate() calls
  /// would have first touched it — after which rate() must behave as a pure
  /// read if parallel_rate_safe() returns true. Must be idempotent.
  /// Default: no-op.
  virtual void prepare_slot(const std::vector<Network>& /*networks*/,
                            const std::vector<DeviceId>& /*devices*/) {}

  /// True when rate() is safe to call concurrently from the device-parallel
  /// feedback phase: after prepare_slot() it mutates no model state and
  /// draws nothing from the rng argument. Device-invariant models never
  /// reach this (the world reads its per-network caches instead); models
  /// with materialised per-device state (noisy share) opt in by overriding.
  virtual bool parallel_rate_safe() const { return false; }

  /// Observed bit rate (Mbps) for `device` on `net` when `n_devices` devices
  /// (including this one) share it during slot `t`. `n_devices >= 1`.
  virtual double rate(const Network& net, int n_devices, DeviceId device, Slot t,
                      stats::Rng& rng) = 0;

  /// True when rate() depends only on (net, n_devices, t) — neither on the
  /// device nor on the rng stream. The world then evaluates each network's
  /// rate once per slot and shares the value across its devices instead of
  /// paying a virtual call per device-slot. Models with per-device
  /// multipliers or per-call draws must return false.
  virtual bool device_invariant_rate() const { return false; }

  /// Hypothetical fair-share rate used for full-information feedback and for
  /// distance-to-equilibrium accounting (deliberately noise-free).
  double fair_share(const Network& net, int n_devices, Slot t) const {
    return n_devices > 0 ? net.capacity(t) / n_devices : net.capacity(t);
  }

  /// Checkpoint support. Stateless models keep the no-op defaults; a model
  /// with time-correlated or per-device state (noisy share) serializes it so
  /// a resumed run continues the same noise trajectory bit-for-bit.
  virtual void snapshot_into(core::StateWriter& /*w*/) const {}
  virtual void restore_from(core::StateReader& /*r*/) {}
};

/// Ideal equal sharing: rate = capacity / n.
class EqualShareModel final : public BandwidthModel {
 public:
  void begin_slot(Slot, stats::Rng&) override {}
  double rate(const Network& net, int n_devices, DeviceId, Slot t, stats::Rng&) override {
    return net.capacity(t) / n_devices;
  }
  bool device_invariant_rate() const override { return true; }
};

/// Noisy sharing for the controlled-experiment substrate.
///
/// rate = capacity/n * device_multiplier * network_noise(t) * dip(t),
/// where device_multiplier ~ LogNormal (drawn once per device, normalised to
/// mean ~1), network_noise is an AR(1) process around 1 with the given
/// stationary std-dev, and dip(t) multiplies the rate by `dip_depth` during
/// dip episodes. Episodes start with probability `dip_probability` per
/// network per slot and persist with probability `dip_persistence` per slot
/// (geometric duration), modelling interference bursts that last minutes —
/// long enough to punish lock-in policies, exactly what the paper's
/// controlled experiments exhibit (§VII-A: "bit rates observed by some of
/// the devices go down for some reason").
class NoisyShareModel final : public BandwidthModel {
 public:
  struct Params {
    double device_sigma = 0.20;    ///< log-std of per-device multiplier
    double noise_rho = 0.90;       ///< AR(1) coefficient (slow quality drift)
    double noise_sigma = 0.10;     ///< stationary std of network noise
    double dip_probability = 0.01; ///< per network-slot chance a dip starts
    double dip_persistence = 0.85; ///< per-slot chance an ongoing dip continues
    double dip_depth = 0.35;       ///< multiplier during a dip
    std::uint64_t seed = 1;        ///< seed for per-device multipliers
  };

  NoisyShareModel() : NoisyShareModel(Params{}) {}
  explicit NoisyShareModel(Params p) : params_(p), device_rng_(p.seed) {}

  void begin_slot(Slot t, stats::Rng& rng) override;
  /// Materialises the per-device multipliers of any not-yet-seen device (in
  /// the given fixed order, so the draws match the serial first-touch order
  /// bit for bit) and the noise slot of every network, after which rate()
  /// is a pure read for the rest of the slot.
  void prepare_slot(const std::vector<Network>& networks,
                    const std::vector<DeviceId>& devices) override;
  /// rate() only reads materialised state (and never touches the rng), so
  /// the world may fan the feedback phase out for this model too.
  bool parallel_rate_safe() const override { return true; }
  double rate(const Network& net, int n_devices, DeviceId device, Slot t,
              stats::Rng& rng) override;

  /// The fixed multiplier assigned to a device (exposed for tests).
  double device_multiplier(DeviceId device);

  void snapshot_into(core::StateWriter& w) const override;
  void restore_from(core::StateReader& r) override;

 private:
  struct NetNoise {
    double value = 1.0;
    bool dipped = false;
    /// The AR(1) process only advances for networks that have been seen —
    /// a network starts at the stationary mean (1.0) the slot it first
    /// appears, exactly as the previous lazy-map behaviour.
    bool live = false;
  };

  NetNoise& noise_slot(NetworkId id);

  Params params_;
  stats::Rng device_rng_;
  std::unordered_map<DeviceId, double> multipliers_;
  // Indexed by NetworkId (world networks are 0..k-1); grows on demand so
  // standalone model use (unit tests) needs no prepare_slot call.
  std::vector<NetNoise> noise_;
};

std::unique_ptr<BandwidthModel> make_equal_share();
std::unique_ptr<BandwidthModel> make_noisy_share(NoisyShareModel::Params p);

}  // namespace smartexp3::netsim
