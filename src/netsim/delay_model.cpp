#include "netsim/delay_model.hpp"

#include <algorithm>
#include <cmath>

namespace smartexp3::netsim {

DistributionDelayModel::DistributionDelayModel(Params p)
    : params_(p),
      // Built once per parameter set, here and only here: a tail-aware
      // inverse-CDF table over the numerically integrated Student-t density.
      // The coverage bounds sit past the quantiles at the table's tail_eps
      // (Student-t tails decay like x^-nu, so the u-quantile grows like
      // u^(-1/nu)); everything beyond them lands outside [0, max_delay_s]
      // and is removed by clamp_delay anyway, so edge-clamping the table
      // there does not perturb the clamped delay distribution.
      cellular_icdf_([&p] {
        const stats::IcdfTable::BuildOptions opts{};
        const double reach =
            p.cellular.scale *
            std::max(4.0 * std::pow(1.0 / opts.tail_eps, 1.0 / p.cellular.nu), 50.0);
        return stats::IcdfTable::from_pdf(
            [t = p.cellular, ln = p.cellular.log_norm()](double x) {
              return t.pdf(x, ln);
            },
            p.cellular.loc - reach, p.cellular.loc + reach, p.cellular.loc,
            p.cellular.scale, opts);
      }()) {}

double DistributionDelayModel::sample(const Network& to, stats::Rng& rng) const {
  // One uniform -> one delay, for both technologies: Johnson-SU through its
  // closed-form quantile function, Student-t through the prebuilt table.
  const double raw = to.type == NetworkType::kWifi
                         ? params_.wifi.sample(rng)
                         : cellular_icdf_.sample(rng);
  return stats::clamp_delay(raw, params_.max_delay_s);
}

std::unique_ptr<DelayModel> make_default_delay_model() {
  // The default-parameter table is integrated once per process; each world
  // gets a copy (two ~1k-double vectors) instead of redoing the numeric CDF
  // integration per World construction. Magic-static init keeps this safe
  // under run_many's worker threads.
  static const DistributionDelayModel prototype;
  return std::make_unique<DistributionDelayModel>(prototype);
}

}  // namespace smartexp3::netsim
