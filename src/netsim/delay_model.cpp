#include "netsim/delay_model.hpp"

namespace smartexp3::netsim {

double DistributionDelayModel::sample(const Network& to, stats::Rng& rng) const {
  const double raw = to.type == NetworkType::kWifi ? params_.wifi.sample(rng)
                                                   : params_.cellular.sample(rng);
  return stats::clamp_delay(raw, params_.max_delay_s);
}

std::unique_ptr<DelayModel> make_default_delay_model() {
  return std::make_unique<DistributionDelayModel>();
}

}  // namespace smartexp3::netsim
