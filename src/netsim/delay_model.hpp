// Switching-delay models.
//
// The paper (§VI-A) models the delay incurred when associating with a new
// network using a Johnson-SU distribution for WiFi and a Student-t
// distribution for cellular, each fitted to 500 real delay measurements.
// The fitted parameters were not published; the defaults here are calibrated
// so WiFi delays are mostly 0.3–7 s (mean ~1.9 s) and cellular delays mostly
// 1–14 s (mean ~5 s), both strictly below the 15 s slot. See DESIGN.md §3.
#pragma once

#include <memory>

#include "netsim/network.hpp"
#include "stats/distributions.hpp"
#include "stats/icdf_table.hpp"
#include "stats/rng.hpp"

namespace smartexp3::netsim {

/// Strategy interface: delay (seconds) incurred when switching *to* a
/// network. Implementations must return values in [0, max_delay_s].
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual double sample(const Network& to, stats::Rng& rng) const = 0;
};

/// No switching cost (used by tests and by idealised baselines).
class ZeroDelayModel final : public DelayModel {
 public:
  double sample(const Network&, stats::Rng&) const override { return 0.0; }
};

/// Constant delay per technology type (useful for the analytic-bound
/// ablation where the mean delay must be known exactly).
class FixedDelayModel final : public DelayModel {
 public:
  FixedDelayModel(double wifi_s, double cellular_s)
      : wifi_s_(wifi_s), cellular_s_(cellular_s) {}
  double sample(const Network& to, stats::Rng&) const override {
    return to.type == NetworkType::kWifi ? wifi_s_ : cellular_s_;
  }

 private:
  double wifi_s_;
  double cellular_s_;
};

/// The paper's model: Johnson-SU for WiFi, Student-t for cellular, both
/// clamped to [0, max_delay_s).
///
/// Sampling is fixed-cost inverse-CDF (DESIGN.md §3): WiFi uses Johnson-SU's
/// closed-form quantile function, cellular a per-parameter-set IcdfTable
/// built once here at construction (the only place the table allocates).
/// Every delay draw therefore consumes exactly one 64-bit RNG output — the
/// contract the per-(seed, device-id) delay streams rely on — and never
/// enters a rejection loop; pinned by tests/test_sampling_equivalence.cpp.
class DistributionDelayModel final : public DelayModel {
 public:
  struct Params {
    stats::JohnsonSU wifi{/*gamma=*/-2.0, /*delta=*/2.0, /*xi=*/0.5, /*lambda=*/1.0};
    stats::StudentT cellular{/*nu=*/4.0, /*loc=*/5.0, /*scale=*/1.2};
    double max_delay_s = 14.0;  ///< strictly below the 15 s slot
  };

  DistributionDelayModel() : DistributionDelayModel(Params{}) {}
  explicit DistributionDelayModel(Params p);

  double sample(const Network& to, stats::Rng& rng) const override;

  const Params& params() const { return params_; }
  /// The cellular inverse-CDF table (exposed for the equivalence tests).
  const stats::IcdfTable& cellular_icdf() const { return cellular_icdf_; }

 private:
  Params params_;
  stats::IcdfTable cellular_icdf_;
};

std::unique_ptr<DelayModel> make_default_delay_model();

}  // namespace smartexp3::netsim
