#include "netsim/step_executor.hpp"

namespace smartexp3::netsim {

namespace {

/// Spin briefly, then hand the core away. The spin budget covers the common
/// multicore case (phases are microseconds apart); the yield fallback keeps
/// oversubscribed and single-core machines from livelocking on the barrier.
inline void relax(int& spins) {
  constexpr int kSpinBudget = 4096;
  if (spins < kSpinBudget) {
    ++spins;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    ++spins;
    std::this_thread::yield();
  }
}

/// Spin+yield iterations a worker burns before parking on the condition
/// variable. Long enough that the inter-phase gaps of a busy slot never
/// park (microseconds), short enough that a world sitting in serial code
/// (recorder-heavy observers, or simply idle between slots) frees its lanes.
constexpr int kParkBudget = 64 * 1024;

}  // namespace

int StepExecutor::resolve(int threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
  return threads < 1 ? 1 : threads;
}

StepExecutor::StepExecutor(int threads) : threads_(resolve(threads)) {
  const unsigned hw = std::thread::hardware_concurrency();
  const bool oversubscribed = hw > 0 && static_cast<unsigned>(threads_) > hw;
  park_budget_ = oversubscribed ? 0 : kParkBudget;
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int lane = 1; lane < threads_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

StepExecutor::~StepExecutor() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);  // wake spinners
  {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();  // wake parked workers
  for (auto& w : workers_) w.join();
}

void StepExecutor::worker_loop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (spins < park_budget_) {
        relax(spins);
      } else {
        // Park until the next dispatch. The dispatcher bumps epoch_ first
        // and then locks/notifies, so the predicate can never be missed.
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        sleep_cv_.wait(lock, [&] {
          return epoch_.load(std::memory_order_acquire) != seen;
        });
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);

    const auto t = static_cast<std::size_t>(threads_);
    const auto w = static_cast<std::size_t>(lane);
    std::size_t begin;
    std::size_t end;
    if (bounds_ != nullptr) {
      begin = bounds_[w];
      end = bounds_[w + 1];
    } else {
      begin = n_ * w / t;
      end = n_ * (w + 1) / t;
    }
    try {
      if (begin < end) {
        if (lane_body_ != nullptr) {
          (*lane_body_)(lane, begin, end);
        } else {
          (*body_)(begin, end);
        }
      }
    } catch (...) {
      // Never let an exception escape the thread (std::terminate); hand the
      // first one to the caller, who rethrows after the barrier.
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

void StepExecutor::run(std::size_t n, const RangeBody& body) {
  if (threads_ == 1 || n == 0) {
    if (n > 0) body(0, n);
    return;
  }
  n_ = n;
  body_ = &body;
  dispatch_and_wait([&](std::size_t begin, std::size_t end) { body(begin, end); },
                    /*caller_begin=*/0,
                    /*caller_end=*/n / static_cast<std::size_t>(threads_));
}

void StepExecutor::run(std::size_t n, const LaneBody& body) {
  if (threads_ == 1 || n == 0) {
    if (n > 0) body(0, 0, n);
    return;
  }
  n_ = n;
  lane_body_ = &body;
  dispatch_and_wait([&](std::size_t begin, std::size_t end) { body(0, begin, end); },
                    /*caller_begin=*/0,
                    /*caller_end=*/n / static_cast<std::size_t>(threads_));
}

void StepExecutor::run_partitioned(const std::size_t* bounds, const LaneBody& body) {
  if (threads_ == 1) {
    if (bounds[0] < bounds[1]) body(0, bounds[0], bounds[1]);
    return;
  }
  bounds_ = bounds;
  lane_body_ = &body;
  dispatch_and_wait([&](std::size_t begin, std::size_t end) { body(0, begin, end); },
                    bounds[0], bounds[1]);
}

template <typename CallerBody>
void StepExecutor::dispatch_and_wait(CallerBody&& caller_body, std::size_t caller_begin,
                                     std::size_t caller_end) {
  error_ = nullptr;
  const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_release) + 1;
  // Wake any parked workers. The empty critical section orders the epoch
  // bump before the notify relative to a worker between its predicate check
  // and its wait; with nobody parked this costs an uncontended lock.
  {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();

  // The caller is lane 0. If its range throws, the barrier below must still
  // complete before the exception leaves — the workers hold references into
  // this call's state.
  std::exception_ptr caller_error;
  try {
    if (caller_begin < caller_end) caller_body(caller_begin, caller_end);
  } catch (...) {
    caller_error = std::current_exception();
  }

  const std::uint64_t target = epoch * static_cast<std::uint64_t>(threads_ - 1);
  int spins = 0;
  while (done_.load(std::memory_order_acquire) < target) relax(spins);
  // Clear every dispatch field (even on the throwing paths) so a stale
  // pointer can never leak into the next dispatch's mode selection.
  n_ = 0;
  body_ = nullptr;
  bounds_ = nullptr;
  lane_body_ = nullptr;
  if (caller_error) std::rethrow_exception(caller_error);
  if (error_) std::rethrow_exception(error_);
}

}  // namespace smartexp3::netsim
