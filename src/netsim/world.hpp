// The time-slotted congestion-game world: the simulation substrate every
// experiment in the paper runs on.
//
// Each slot runs three explicit phases with a barrier between them:
//
//   choose   — every active device's policy picks a network (clients are
//              time-synchronised in the paper's setup, so all picks are
//              simultaneous). Device-local: policies draw from their own
//              per-device RNG streams.
//   counts   — per-network reduction over the picks: occupancy, and (for
//              device-invariant bandwidth models) the shared per-network
//              rate / gain / full-slot goodput, in fixed network order.
//   feedback — per-device outcomes: switching delay (drawn from the
//              device's own delay RNG stream), goodput accounting, and the
//              policy's observe() with capability-gated counterfactuals.
//
// Before the phases the world applies scenario events (joins, leaves,
// moves, capacity changes) and advances the bandwidth model's noise
// processes; after them it notifies the optional observer (the metrics
// recorder).
//
// Because the choose and feedback phases only read shared slot state and
// write device-local state, a StepExecutor can fan them out across threads
// with a static device partition. The trajectory is bit-identical for every
// thread count: all per-device randomness comes from per-device streams
// seeded by (world seed, device id), and every cross-device reduction runs
// serially in fixed order. See README "Three-phase slot model".
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "netsim/bandwidth_model.hpp"
#include "netsim/delay_model.hpp"
#include "netsim/network.hpp"
#include "netsim/scenario.hpp"
#include "netsim/step_executor.hpp"
#include "stats/rng.hpp"

namespace smartexp3::netsim {

/// Static description of one device participating in a run.
struct DeviceSpec {
  DeviceId id = 0;
  int area = 0;
  Slot join_slot = 0;
  Slot leave_slot = -1;  ///< -1 = stays until the end
  std::string policy_name;  ///< consumed by the policy factory
};

/// Live per-device state during a run (read-only to observers).
struct DeviceState {
  DeviceSpec spec;
  std::unique_ptr<core::Policy> policy;
  bool active = false;
  int area = 0;
  NetworkId current = kNoNetwork;
  // Per-slot outcome of the most recent slot (valid while active).
  double last_rate_mbps = 0.0;
  double last_gain = 0.0;
  bool last_switched = false;
  // Cumulative accounting.
  double download_mb = 0.0;
  double delay_loss_mb = 0.0;  ///< download foregone while re-associating
  int switches = 0;
  int slots_active = 0;
  // Engine scratch: the feedback struct is persistent so its vectors keep
  // their capacity across slots (no per-device-slot allocation), and the
  // policy's feedback capability is resolved once at construction.
  core::SlotFeedback feedback;
  bool wants_full_info = false;
  // Per-device switching-delay stream, seeded from (world seed, device id).
  // Keeping delay draws out of the world stream is what makes the feedback
  // phase device-parallel without changing the trajectory.
  stats::Rng delay_rng;
};

struct WorldConfig {
  double slot_seconds = kDefaultSlotSeconds;
  /// Bit rates are divided by this to obtain gains in [0,1]. Defaults to the
  /// maximum single-network capacity when <= 0.
  double gain_scale_mbps = 0.0;
  Slot horizon = 1200;  ///< 5 simulated hours of 15 s slots, as in §VI-A
  /// Lanes for the device-parallel choose and feedback phases: 1 = serial
  /// (default), 0 = hardware concurrency. Purely an execution knob — the
  /// simulated trajectory is bit-identical for every value.
  int threads = 1;
};

class World;

/// Observer hook for metrics collection. Called after each slot completes.
class WorldObserver {
 public:
  virtual ~WorldObserver() = default;
  virtual void on_slot_end(Slot t, const World& world) = 0;
  /// Called once after the final slot.
  virtual void on_run_end(const World& /*world*/) {}
};

/// Creates the policy for a device. Receives the spec and a per-device seed.
using PolicyFactory =
    std::function<std::unique_ptr<core::Policy>(const DeviceSpec&, std::uint64_t seed)>;

class World {
 public:
  World(WorldConfig config, std::vector<Network> networks, std::vector<DeviceSpec> devices,
        Scenario scenario, PolicyFactory factory, std::uint64_t seed);

  // Not movable: the stored phase bodies capture `this` (and the executor's
  // workers would outlive a moved-from shell). Prvalue returns still work
  // through guaranteed elision.
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  void set_bandwidth_model(std::unique_ptr<BandwidthModel> model);
  void set_delay_model(std::unique_ptr<DelayModel> model);
  void set_observer(WorldObserver* observer) { observer_ = observer; }

  /// Run the full horizon. May only be called once per World.
  void run();

  /// Run a prefix of the horizon (for incremental inspection in tests).
  void step();  ///< advance exactly one slot
  Slot now() const { return now_; }
  bool done() const { return now_ >= config_.horizon; }

  // ---- accessors for observers, metrics and reports ----
  const WorldConfig& config() const { return config_; }
  const std::vector<Network>& networks() const { return networks_; }
  const std::vector<DeviceState>& devices() const { return devices_; }
  /// Devices currently in the service area. O(1): maintained incrementally
  /// on joins and leaves (observers call this every slot).
  int active_device_count() const { return active_count_; }
  /// Number of devices on each network this slot (indexed by NetworkId).
  const std::vector<int>& counts() const { return counts_; }
  /// Capacity (Mbps) unused this slot because no device selected the network.
  double unused_capacity_mbps(Slot t) const;
  double gain_scale() const { return gain_scale_; }
  /// Lanes actually used by the phase executor (1 when running serially,
  /// e.g. because a shared-state policy such as centralized is present).
  int thread_count() const { return executor_ ? executor_->thread_count() : 1; }

 private:
  void apply_events(Slot t);
  void join_device(DeviceState& d, Slot t);
  void leave_device(DeviceState& d, Slot t);
  const std::vector<NetworkId>& visible_for(const DeviceState& d) const;

  // The three slot phases (see the header comment), all operating on the
  // current slot now_. Each *_range body processes the device index range
  // [begin, end) and is safe to run concurrently on disjoint ranges;
  // phase_counts is a serial fixed-order reduction and doubles as the
  // barrier between choose and feedback.
  void phase_choose();
  void phase_counts();
  void phase_feedback();
  void choose_range(Slot t, std::size_t begin, std::size_t end);
  void feedback_range(Slot t, std::size_t begin, std::size_t end);

  WorldConfig config_;
  std::vector<Network> networks_;
  std::vector<DeviceState> devices_;
  Scenario scenario_;
  std::size_t next_move_ = 0;
  std::size_t next_capacity_ = 0;
  std::unique_ptr<BandwidthModel> bandwidth_;
  std::unique_ptr<DelayModel> delay_;
  WorldObserver* observer_ = nullptr;
  stats::Rng rng_;
  double gain_scale_ = 1.0;
  Slot now_ = 0;
  int active_count_ = 0;            // maintained by join_device / leave_device
  std::vector<int> counts_;
  std::vector<NetworkId> pending_;  // per device index: choice this slot
  bool shared_rates_ = false;       // bandwidth model is device-invariant
  // Per-network per-slot caches (shared_rates_ only): every device on a
  // network observes the same rate, gain and full-slot goodput, so each is
  // computed once per slot instead of once per device-slot.
  std::vector<double> rate_cache_;
  std::vector<double> gain_cache_;
  std::vector<double> goodput_cache_;  // goodput of a delay-free slot
  // Full-information counterfactual caches (shared_rates_ worlds containing
  // at least one full-info device): the fair-share rate/gain on network j at
  // its current occupancy (what a device already there observes) and at
  // occupancy + 1 (what a device joining it would observe). The exact
  // divisions/clamps the per-device path would perform, hoisted to once per
  // slot; a full-info device's counterfactual loop then only reads.
  bool any_full_info_ = false;
  std::vector<double> fair_rate_cache_;
  std::vector<double> fair_gain_cache_;
  std::vector<double> fair_join_rate_cache_;
  std::vector<double> fair_join_gain_cache_;
  // Slots on which any device joins or leaves (sorted): the O(devices) scan
  // in apply_events only runs on these.
  std::vector<Slot> join_leave_slots_;
  std::size_t next_join_leave_ = 0;
  // Coverage never changes after construction, so the visible set of each
  // service area is computed once and handed out by reference.
  mutable std::vector<std::pair<int, std::vector<NetworkId>>> visible_cache_;
  // Device-parallel phase runner; null when config_.threads resolves to 1 or
  // a policy shares state across devices (centralized coordinator). The
  // phase bodies are built once so the hot loop constructs no std::function.
  std::unique_ptr<StepExecutor> executor_;
  StepExecutor::RangeBody choose_body_;
  StepExecutor::RangeBody feedback_body_;
};

}  // namespace smartexp3::netsim
