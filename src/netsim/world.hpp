// The time-slotted congestion-game world: the simulation substrate every
// experiment in the paper runs on.
//
// Each slot runs three explicit phases with a barrier between them:
//
//   choose   — every active device's policy picks a network (clients are
//              time-synchronised in the paper's setup, so all picks are
//              simultaneous). Device-local: policies draw from their own
//              per-device RNG streams.
//   counts   — per-network reduction over the picks: each shard reduces its
//              own device range into a shard-local occupancy vector
//              (disjoint writes, parallelizable), then the shard sums are
//              added in fixed shard order — the only state shards ever
//              exchange. For device-invariant bandwidth models the shared
//              per-network rate / gain / full-slot goodput caches are then
//              computed once from the totals, in fixed network order.
//   feedback — per-device outcomes: switching delay (drawn from the
//              device's own delay RNG stream), goodput accounting, and the
//              policy's observe() with capability-gated counterfactuals.
//
// Before the phases the world applies scenario events (joins, leaves,
// moves, capacity changes) and advances the bandwidth model's noise
// processes; after them it notifies the optional observer (the metrics
// recorder).
//
// Per-device state lives in structure-of-arrays pools (device_pool.hpp),
// and devices are split across contiguous shards that step independently
// through the choose and feedback phases. Occupancy is integer, so the
// shard-summed totals are exactly the single-loop totals — together with
// the per-device RNG streams this makes the trajectory bit-identical for
// every (shard count x thread count), pinned by
// tests/test_sharded_determinism.cpp. See DESIGN.md §6.
//
// Because the choose and feedback phases only read shared slot state and
// write device-local state, a StepExecutor can fan them out across threads
// with a static partition. The trajectory is bit-identical for every
// thread count: all per-device randomness comes from per-device streams
// seeded by (world seed, device id), and every cross-device reduction runs
// serially in fixed order. See README "Three-phase slot model".
#pragma once

#include <functional>
#include <memory>
#include <typeindex>
#include <vector>

#include "core/policy.hpp"
#include "netsim/bandwidth_model.hpp"
#include "netsim/delay_model.hpp"
#include "netsim/device_pool.hpp"
#include "netsim/network.hpp"
#include "netsim/scenario.hpp"
#include "netsim/step_executor.hpp"
#include "stats/rng.hpp"

namespace smartexp3::netsim {

struct WorldConfig {
  double slot_seconds = kDefaultSlotSeconds;
  /// Bit rates are divided by this to obtain gains in [0,1]. Defaults to the
  /// maximum single-network capacity when <= 0.
  double gain_scale_mbps = 0.0;
  Slot horizon = 1200;  ///< 5 simulated hours of 15 s slots, as in §VI-A
  /// Lanes for the device-parallel choose and feedback phases: 1 = serial
  /// (default), 0 = hardware concurrency. Purely an execution knob — the
  /// simulated trajectory is bit-identical for every value.
  int threads = 1;
  /// Group devices by concrete policy type and run the choose / feedback
  /// phases through the batch API (Policy::choose_batch / observe_batch)
  /// over a cost-model chunked partition. false selects the per-device
  /// virtual-dispatch reference path. Purely an execution knob — the
  /// trajectory is bit-identical either way (pinned by
  /// tests/test_batch_vs_scalar.cpp) — so it is not part of the ScenarioSpec
  /// format. Worlds with a shared-state policy ignore it (scalar path).
  bool policy_batching = true;
  /// Contiguous device shards stepping independently between counts
  /// barriers: 0 = auto (one shard per ~16k devices, so paper-scale worlds
  /// keep a single shard and 10^5-device worlds split). Purely an execution
  /// knob — occupancy sums are integers, so the trajectory is bit-identical
  /// for every value (tests/test_sharded_determinism.cpp) and snapshots are
  /// interchangeable across shard counts; like policy_batching it is not
  /// part of the ScenarioSpec format.
  int shards = 0;
};

class World;

/// Observer hook for metrics collection. Called after each slot completes.
class WorldObserver {
 public:
  virtual ~WorldObserver() = default;
  virtual void on_slot_end(Slot t, const World& world) = 0;
  /// Called once after the final slot.
  virtual void on_run_end(const World& /*world*/) {}
};

/// Creates the policy for a device. Receives the spec and a per-device seed.
using PolicyFactory =
    std::function<std::unique_ptr<core::Policy>(const DeviceSpec&, std::uint64_t seed)>;

class World {
 public:
  World(WorldConfig config, std::vector<Network> networks, std::vector<DeviceSpec> devices,
        Scenario scenario, PolicyFactory factory, std::uint64_t seed);

  // Not movable: the stored phase bodies capture `this` (and the executor's
  // workers would outlive a moved-from shell). Prvalue returns still work
  // through guaranteed elision.
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  void set_bandwidth_model(std::unique_ptr<BandwidthModel> model);
  void set_delay_model(std::unique_ptr<DelayModel> model);
  void set_observer(WorldObserver* observer) { observer_ = observer; }

  /// Run the full horizon. May only be called once per World.
  void run();

  /// Run a prefix of the horizon (for incremental inspection in tests).
  void step();  ///< advance exactly one slot
  Slot now() const { return now_; }
  bool done() const { return now_ >= config_.horizon; }

  /// Checkpoint the world at a slot boundary (between step() calls):
  /// slot index, world RNG, event cursors, mutated network capacities, the
  /// bandwidth model's noise state and every device's accounting, delay
  /// stream and policy state. Per-slot scratch (pending picks, counts,
  /// rate caches) is dead at a boundary and deliberately not serialized.
  /// Devices are written in global index order, so the stream never depends
  /// on the shard count: a snapshot taken at any (shards, threads) restores
  /// into a world built with any other.
  void snapshot_into(core::StateWriter& w) const;

  /// Restore a snapshot into a world built from the *same* configuration
  /// (networks, devices, scenario, seed, models). Stepping the restored
  /// world continues the original trajectory bit-identically — pinned by
  /// tests/test_snapshot.cpp for every policy, thread count and shard
  /// count. Throws core::SnapshotError when the stream does not match this
  /// world's shape.
  void restore_from(core::StateReader& r);

  // ---- accessors for observers, metrics and reports ----
  const WorldConfig& config() const { return config_; }
  const std::vector<Network>& networks() const { return networks_; }
  /// Per-device state, one array per field indexed by device position
  /// (construction order). See device_pool.hpp.
  const DevicePool& devices() const { return pool_; }
  /// Devices currently in the service area. O(1): maintained incrementally
  /// on joins and leaves (observers call this every slot).
  int active_device_count() const { return active_count_; }
  /// Number of devices on each network this slot (indexed by NetworkId).
  const std::vector<int>& counts() const { return counts_; }
  /// Capacity (Mbps) unused this slot because no device selected the network.
  double unused_capacity_mbps(Slot t) const;
  double gain_scale() const { return gain_scale_; }
  /// Lanes actually used by the phase executor (1 when running serially,
  /// e.g. because a shared-state policy such as centralized is present).
  int thread_count() const { return executor_ ? executor_->thread_count() : 1; }
  /// Device shards actually in use (>= 1).
  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// Whether the feedback phase fans out over the executor lanes: requires
  /// a bandwidth model whose rate() is a pure read during the phase (device
  /// invariant, or materialised via prepare_slot + parallel_rate_safe).
  bool feedback_parallel() const {
    return executor_ != nullptr && (shared_rates_ || bandwidth_->parallel_rate_safe());
  }

  /// Resolve the shard-count knob for a device count: 0 = auto (one shard
  /// per ~16k devices), otherwise clamp to [1, max(devices, 1)].
  static int resolve_shards(int shards, std::size_t device_count);

 private:
  void apply_events(Slot t);
  void join_device(std::size_t i, Slot t);
  void leave_device(std::size_t i, Slot t);
  const std::vector<NetworkId>& visible_for(int area) const;

  // The three slot phases (see the header comment), all operating on the
  // current slot now_. Each *_range body processes the device index range
  // [begin, end) and is safe to run concurrently on disjoint ranges;
  // phase_counts reduces per shard and then sums shard counts in fixed
  // order — the barrier between choose and feedback. The *_range bodies are
  // the scalar reference path (per-device virtual dispatch); the *_chunks
  // bodies are the policy-batched path over the chunk list below. Both
  // produce bit-identical trajectories (tests/test_batch_vs_scalar.cpp).
  void phase_choose();
  void phase_counts();
  void phase_feedback();
  void choose_range(Slot t, std::size_t begin, std::size_t end);
  void feedback_range(Slot t, int lane, std::size_t begin, std::size_t end);
  void choose_chunks(Slot t, int lane, std::size_t begin, std::size_t end);
  void feedback_chunks(Slot t, int lane, std::size_t begin, std::size_t end);
  /// Reduce shards [begin, end)'s pending picks into their shard-local
  /// occupancy vectors (disjoint writes; safe to fan out over lanes).
  void reduce_shard_counts(std::size_t begin, std::size_t end);
  /// The engine half of a device's feedback: switching delay, rates/gains,
  /// goodput and cumulative accounting — everything except the policy's
  /// observe(). Writes the outcome into `fb`, the calling lane's scratch.
  void fill_device_feedback(Slot t, std::size_t i, core::SlotFeedback& fb);
  void rebuild_policy_groups();

  WorldConfig config_;
  std::vector<Network> networks_;
  DevicePool pool_;
  Scenario scenario_;
  std::size_t next_move_ = 0;
  std::size_t next_capacity_ = 0;
  std::unique_ptr<BandwidthModel> bandwidth_;
  std::unique_ptr<DelayModel> delay_;
  WorldObserver* observer_ = nullptr;
  stats::Rng rng_;
  double gain_scale_ = 1.0;
  Slot now_ = 0;
  int active_count_ = 0;            // maintained by join_device / leave_device
  std::vector<int> counts_;
  std::vector<NetworkId> pending_;  // per device index: choice this slot
  bool shared_rates_ = false;       // bandwidth model is device-invariant
  // Per-network per-slot caches (shared_rates_ only): every device on a
  // network observes the same rate, gain and full-slot goodput, so each is
  // computed once per slot instead of once per device-slot.
  std::vector<double> rate_cache_;
  std::vector<double> gain_cache_;
  std::vector<double> goodput_cache_;  // goodput of a delay-free slot
  // Full-information counterfactual caches (shared_rates_ worlds containing
  // at least one full-info device): the fair-share rate/gain on network j at
  // its current occupancy (what a device already there observes) and at
  // occupancy + 1 (what a device joining it would observe). The exact
  // divisions/clamps the per-device path would perform, hoisted to once per
  // slot; a full-info device's counterfactual loop then only reads.
  bool any_full_info_ = false;
  std::vector<double> fair_rate_cache_;
  std::vector<double> fair_gain_cache_;
  std::vector<double> fair_join_rate_cache_;
  std::vector<double> fair_join_gain_cache_;
  // Slots on which any device joins or leaves (sorted): the O(devices) scan
  // in apply_events only runs on these.
  std::vector<Slot> join_leave_slots_;
  std::size_t next_join_leave_ = 0;
  // Coverage never changes after construction, so the visible set of each
  // service area is computed once and handed out by reference.
  mutable std::vector<std::pair<int, std::vector<NetworkId>>> visible_cache_;
  // Device-parallel phase runner; null when config_.threads resolves to 1 or
  // a policy shares state across devices (centralized coordinator). The
  // phase bodies are built once so the hot loop constructs no std::function.
  std::unique_ptr<StepExecutor> executor_;
  StepExecutor::RangeBody choose_body_;
  StepExecutor::LaneBody feedback_body_;
  StepExecutor::RangeBody counts_body_;  // shard-local occupancy reduction

  // ---- policy-batched execution (DESIGN.md §4) ----
  // Active devices grouped by concrete policy type: each group's spans run
  // through the batch API in one virtual dispatch per chunk, with members in
  // ascending device-index order. Rebuilt on join/leave slots only.
  struct PolicyGroup {
    std::type_index type;
    bool batched = false;  // type opts into batch dispatch (SoA kernels)
    std::vector<std::size_t> members;       // device indices, ascending
    std::vector<core::Policy*> policies;    // parallel to members
    std::vector<double> costs;              // per-member step_cost_hint()
  };
  // ---- device shards (DESIGN.md §6) ----
  // A shard owns the contiguous device index range [begin, end), its own
  // policy groups (groups never cross a shard boundary) and a shard-local
  // occupancy vector. Shards only ever exchange those occupancy sums, at
  // the counts barrier; everything else a shard touches is device-local.
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<PolicyGroup> groups;
    std::vector<int> counts;  // per-network occupancy of this shard's picks
  };
  // A chunk is a contiguous member span of one shard's group, cut so its
  // summed cost hint stays near kChunkCostBudget. Chunk boundaries depend
  // only on the shards and groups (never on the thread count); the lane
  // bounds then split the global chunk list into thread_count() contiguous
  // ranges balanced by cumulative cost, so ~4x-cost full-information
  // devices spread across lanes instead of piling onto one.
  struct PolicyChunk {
    std::uint32_t shard = 0;
    std::uint32_t group = 0;
    std::uint32_t begin = 0;  // member sub-range [begin, end)
    std::uint32_t end = 0;
    double cost = 0.0;
  };
  // Per-lane scratch for the phase bodies (lane 0 = calling thread). The
  // feedback structs live here rather than per device: a lane only ever
  // fills one device's feedback at a time (scalar path) or one chunk's
  // worth (batched observe_batch), so scratch scales with lanes x chunk
  // size instead of with the device count — at 10^6 devices the per-device
  // structs were the dominant memory term. Vector capacities persist
  // across slots, so steady-state slots stay allocation-free.
  struct LaneScratch {
    core::BatchScratch batch;
    std::vector<NetworkId> choices;
    std::vector<const core::SlotFeedback*> feedbacks;
    std::vector<core::SlotFeedback> fb_pool;  // batched path, per chunk member
    core::SlotFeedback fb;                    // scalar path, one device at a time
  };
  static constexpr double kChunkCostBudget = 64.0;
  /// Auto shard sizing: one shard per this many devices (see
  /// WorldConfig::shards). Chosen so the shard-local count vectors and
  /// group arrays stay cache-resident while paper-scale worlds (hundreds
  /// of devices) keep a single shard.
  static constexpr std::size_t kDevicesPerShard = 16384;
  bool use_batching_ = false;   // config flag && all policies device-local
  bool any_batched_ = false;    // some group opted into batch dispatch
  bool groups_dirty_ = true;
  /// The chunk engine earns its ~1-2 ns/device bookkeeping only when a
  /// group has SoA batch kernels to feed or there are executor lanes to
  /// cost-balance; a serial world of direct-dispatch policies runs the
  /// plain per-device loops instead. Same trajectory either way.
  bool use_chunked_phases() const {
    return use_batching_ && (any_batched_ || executor_ != nullptr);
  }
  std::vector<Shard> shards_;
  std::vector<PolicyChunk> chunks_;
  std::vector<std::size_t> lane_bounds_;  // thread_count() + 1 chunk indices
  std::vector<LaneScratch> lane_scratch_;
  StepExecutor::LaneBody choose_chunks_body_;
  StepExecutor::LaneBody feedback_chunks_body_;
  // Active device ids (fixed device order) handed to
  // BandwidthModel::prepare_slot when the model is not device-invariant.
  // Materialisation only has new work when the active set changed, so the
  // call is gated on this flag (set by joins and model swaps) instead of
  // paying an O(devices) scan plus per-device map probes every slot.
  std::vector<DeviceId> active_ids_scratch_;
  bool bandwidth_prepare_stale_ = true;
};

}  // namespace smartexp3::netsim
