#include "netsim/network.hpp"

#include <algorithm>

namespace smartexp3::netsim {

std::string to_string(NetworkType t) {
  return t == NetworkType::kWifi ? "wifi" : "cellular";
}

double Network::capacity(Slot t) const {
  if (trace.empty()) return base_capacity_mbps;
  const auto idx = static_cast<std::size_t>(std::clamp<Slot>(t, 0, static_cast<Slot>(trace.size()) - 1));
  return trace[idx];
}

bool Network::covers(int area) const {
  if (areas.empty()) return true;
  return std::find(areas.begin(), areas.end(), area) != areas.end();
}

Network make_wifi(NetworkId id, double capacity_mbps, std::vector<int> areas,
                  std::string label) {
  Network n;
  n.id = id;
  n.type = NetworkType::kWifi;
  n.base_capacity_mbps = capacity_mbps;
  n.areas = std::move(areas);
  n.label = label.empty() ? "wifi-" + std::to_string(id) : std::move(label);
  return n;
}

Network make_cellular(NetworkId id, double capacity_mbps, std::vector<int> areas,
                      std::string label) {
  Network n;
  n.id = id;
  n.type = NetworkType::kCellular;
  n.base_capacity_mbps = capacity_mbps;
  n.areas = std::move(areas);
  n.label = label.empty() ? "cell-" + std::to_string(id) : std::move(label);
  return n;
}

std::vector<NetworkId> visible_networks(const std::vector<Network>& networks, int area) {
  std::vector<NetworkId> out;
  visible_networks_into(networks, area, out);
  return out;
}

void visible_networks_into(const std::vector<Network>& networks, int area,
                           std::vector<NetworkId>& out) {
  out.clear();
  out.reserve(networks.size());
  for (const auto& n : networks) {
    if (n.covers(area)) out.push_back(n.id);
  }
}

}  // namespace smartexp3::netsim
