#include "netsim/bandwidth_model.hpp"

#include <algorithm>
#include <cmath>

namespace smartexp3::netsim {

void NoisyShareModel::begin_slot(Slot, stats::Rng& rng) {
  // Advance every known network's AR(1) noise and roll for dips. Networks
  // appear in the map lazily on first rate() call; their process starts at
  // the stationary mean (1.0), which is the correct prior.
  const double rho = params_.noise_rho;
  const double innovation_sigma =
      params_.noise_sigma * std::sqrt(std::max(1.0 - rho * rho, 0.0));
  for (auto& [id, state] : noise_) {
    state.value = 1.0 + rho * (state.value - 1.0) + rng.normal(0.0, innovation_sigma);
    state.value = std::clamp(state.value, 0.2, 2.0);
    state.dipped = state.dipped ? rng.chance(params_.dip_persistence)
                                : rng.chance(params_.dip_probability);
  }
}

double NoisyShareModel::device_multiplier(DeviceId device) {
  auto it = multipliers_.find(device);
  if (it != multipliers_.end()) return it->second;
  // LogNormal(mu, sigma) normalised so the multiplier's mean is 1.
  stats::LogNormal ln{-0.5 * params_.device_sigma * params_.device_sigma,
                      params_.device_sigma};
  const double m = ln.sample(device_rng_);
  multipliers_.emplace(device, m);
  return m;
}

double NoisyShareModel::rate(const Network& net, int n_devices, DeviceId device, Slot t,
                             stats::Rng&) {
  auto [it, inserted] = noise_.try_emplace(net.id);
  const NetNoise& state = it->second;
  double r = net.capacity(t) / std::max(n_devices, 1);
  r *= device_multiplier(device);
  r *= state.value;
  if (state.dipped) r *= params_.dip_depth;
  return std::max(r, 0.0);
}

std::unique_ptr<BandwidthModel> make_equal_share() {
  return std::make_unique<EqualShareModel>();
}

std::unique_ptr<BandwidthModel> make_noisy_share(NoisyShareModel::Params p) {
  return std::make_unique<NoisyShareModel>(p);
}

}  // namespace smartexp3::netsim
