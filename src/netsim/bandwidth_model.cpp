#include "netsim/bandwidth_model.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "core/snapshot.hpp"

namespace smartexp3::netsim {

void NoisyShareModel::begin_slot(Slot, stats::Rng& rng) {
  // Advance every live network's AR(1) noise and roll for dips, in network
  // id order (deterministic and documented — the previous lazy map walked
  // its own bucket order). A network becomes live the slot it is first seen
  // (prepare_slot in world use, first rate() standalone); its process
  // starts at the stationary mean (1.0), which is the correct prior.
  const double rho = params_.noise_rho;
  const double innovation_sigma =
      params_.noise_sigma * std::sqrt(std::max(1.0 - rho * rho, 0.0));
  for (auto& state : noise_) {
    if (!state.live) continue;
    state.value = 1.0 + rho * (state.value - 1.0) + rng.normal(0.0, innovation_sigma);
    state.value = std::clamp(state.value, 0.2, 2.0);
    state.dipped = state.dipped ? rng.chance(params_.dip_persistence)
                                : rng.chance(params_.dip_probability);
  }
}

NoisyShareModel::NetNoise& NoisyShareModel::noise_slot(NetworkId id) {
  // Network ids are 0..k-1 in world use (validated at construction); a
  // negative id here is a caller bug, mapped to slot 0 rather than a
  // 2^64-element resize.
  assert(id >= 0);
  const auto idx = id >= 0 ? static_cast<std::size_t>(id) : 0;
  if (idx >= noise_.size()) noise_.resize(idx + 1);
  NetNoise& state = noise_[idx];
  state.live = true;
  return state;
}

void NoisyShareModel::prepare_slot(const std::vector<Network>& networks,
                                   const std::vector<DeviceId>& devices) {
  for (const auto& net : networks) noise_slot(net.id);
  // First-touch order matters: the multiplier a device receives is "next
  // draw from the model's device stream", so materialising in the world's
  // fixed device order reproduces the draws the serial feedback loop's
  // lazy first rate() calls would have made, bit for bit.
  for (const DeviceId id : devices) device_multiplier(id);
}

double NoisyShareModel::device_multiplier(DeviceId device) {
  auto it = multipliers_.find(device);
  if (it != multipliers_.end()) return it->second;
  // LogNormal(mu, sigma) normalised so the multiplier's mean is 1.
  stats::LogNormal ln{-0.5 * params_.device_sigma * params_.device_sigma,
                      params_.device_sigma};
  const double m = ln.sample(device_rng_);
  multipliers_.emplace(device, m);
  return m;
}

double NoisyShareModel::rate(const Network& net, int n_devices, DeviceId device, Slot t,
                             stats::Rng&) {
  // Pure read once prepare_slot has materialised this network and device
  // (the world guarantees it before any parallel rate() call); the lazy
  // noise_slot fallback only runs in serial standalone use.
  const auto idx = static_cast<std::size_t>(net.id);
  const NetNoise& state =
      idx < noise_.size() && noise_[idx].live ? noise_[idx] : noise_slot(net.id);
  double r = net.capacity(t) / std::max(n_devices, 1);
  r *= device_multiplier(device);
  r *= state.value;
  if (state.dipped) r *= params_.dip_depth;
  return std::max(r, 0.0);
}

[[gnu::cold]] void NoisyShareModel::snapshot_into(core::StateWriter& w) const {
  w.section(0x4e4f4953u);  // "NOIS"
  for (const std::uint64_t word : device_rng_.state_words()) w.u64(word);
  // unordered_map iteration order is not deterministic across builds;
  // serialize the multipliers sorted by device id.
  std::vector<std::pair<DeviceId, double>> sorted(multipliers_.begin(),
                                                  multipliers_.end());
  std::sort(sorted.begin(), sorted.end());
  w.u64(sorted.size());
  for (const auto& [id, m] : sorted) {
    w.i64(id);
    w.f64(m);
  }
  w.u64(noise_.size());
  for (const NetNoise& state : noise_) {
    w.f64(state.value);
    w.b(state.dipped);
    w.b(state.live);
  }
}

[[gnu::cold]] void NoisyShareModel::restore_from(core::StateReader& r) {
  r.section(0x4e4f4953u, "noisy share model");
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  device_rng_.set_state_words(rng_state);
  multipliers_.clear();
  const std::size_t n_mult = r.count("noisy share multipliers");
  for (std::size_t i = 0; i < n_mult; ++i) {
    const DeviceId id = static_cast<DeviceId>(r.i64());
    const double m = r.f64();
    multipliers_.emplace(id, m);
  }
  noise_.resize(r.count("noisy share networks"));
  for (NetNoise& state : noise_) {
    state.value = r.f64();
    state.dipped = r.b();
    state.live = r.b();
  }
}

std::unique_ptr<BandwidthModel> make_equal_share() {
  return std::make_unique<EqualShareModel>();
}

std::unique_ptr<BandwidthModel> make_noisy_share(NoisyShareModel::Params p) {
  return std::make_unique<NoisyShareModel>(p);
}

}  // namespace smartexp3::netsim
