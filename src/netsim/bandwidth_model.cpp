#include "netsim/bandwidth_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace smartexp3::netsim {

void NoisyShareModel::begin_slot(Slot, stats::Rng& rng) {
  // Advance every live network's AR(1) noise and roll for dips, in network
  // id order (deterministic and documented — the previous lazy map walked
  // its own bucket order). A network becomes live the slot it is first seen
  // (prepare_slot in world use, first rate() standalone); its process
  // starts at the stationary mean (1.0), which is the correct prior.
  const double rho = params_.noise_rho;
  const double innovation_sigma =
      params_.noise_sigma * std::sqrt(std::max(1.0 - rho * rho, 0.0));
  for (auto& state : noise_) {
    if (!state.live) continue;
    state.value = 1.0 + rho * (state.value - 1.0) + rng.normal(0.0, innovation_sigma);
    state.value = std::clamp(state.value, 0.2, 2.0);
    state.dipped = state.dipped ? rng.chance(params_.dip_persistence)
                                : rng.chance(params_.dip_probability);
  }
}

NoisyShareModel::NetNoise& NoisyShareModel::noise_slot(NetworkId id) {
  // Network ids are 0..k-1 in world use (validated at construction); a
  // negative id here is a caller bug, mapped to slot 0 rather than a
  // 2^64-element resize.
  assert(id >= 0);
  const auto idx = id >= 0 ? static_cast<std::size_t>(id) : 0;
  if (idx >= noise_.size()) noise_.resize(idx + 1);
  NetNoise& state = noise_[idx];
  state.live = true;
  return state;
}

void NoisyShareModel::prepare_slot(const std::vector<Network>& networks,
                                   const std::vector<DeviceId>& devices) {
  for (const auto& net : networks) noise_slot(net.id);
  // First-touch order matters: the multiplier a device receives is "next
  // draw from the model's device stream", so materialising in the world's
  // fixed device order reproduces the draws the serial feedback loop's
  // lazy first rate() calls would have made, bit for bit.
  for (const DeviceId id : devices) device_multiplier(id);
}

double NoisyShareModel::device_multiplier(DeviceId device) {
  auto it = multipliers_.find(device);
  if (it != multipliers_.end()) return it->second;
  // LogNormal(mu, sigma) normalised so the multiplier's mean is 1.
  stats::LogNormal ln{-0.5 * params_.device_sigma * params_.device_sigma,
                      params_.device_sigma};
  const double m = ln.sample(device_rng_);
  multipliers_.emplace(device, m);
  return m;
}

double NoisyShareModel::rate(const Network& net, int n_devices, DeviceId device, Slot t,
                             stats::Rng&) {
  // Pure read once prepare_slot has materialised this network and device
  // (the world guarantees it before any parallel rate() call); the lazy
  // noise_slot fallback only runs in serial standalone use.
  const auto idx = static_cast<std::size_t>(net.id);
  const NetNoise& state =
      idx < noise_.size() && noise_[idx].live ? noise_[idx] : noise_slot(net.id);
  double r = net.capacity(t) / std::max(n_devices, 1);
  r *= device_multiplier(device);
  r *= state.value;
  if (state.dipped) r *= params_.dip_depth;
  return std::max(r, 0.0);
}

std::unique_ptr<BandwidthModel> make_equal_share() {
  return std::make_unique<EqualShareModel>();
}

std::unique_ptr<BandwidthModel> make_noisy_share(NoisyShareModel::Params p) {
  return std::make_unique<NoisyShareModel>(p);
}

}  // namespace smartexp3::netsim
