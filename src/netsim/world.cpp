#include "netsim/world.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "core/snapshot.hpp"

namespace smartexp3::netsim {

World::World(WorldConfig config, std::vector<Network> networks,
             std::vector<DeviceSpec> devices, Scenario scenario, PolicyFactory factory,
             std::uint64_t seed)
    : config_(config),
      networks_(std::move(networks)),
      scenario_(std::move(scenario)),
      rng_(seed) {
  if (networks_.empty()) throw std::invalid_argument("World: no networks");
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (networks_[i].id != static_cast<NetworkId>(i)) {
      throw std::invalid_argument("World: network ids must be 0..k-1 in table order");
    }
  }
  scenario_.normalise();

  gain_scale_ = config_.gain_scale_mbps;
  if (gain_scale_ <= 0.0) {
    for (const auto& n : networks_) {
      gain_scale_ = std::max(gain_scale_, n.base_capacity_mbps);
      for (const double c : n.trace) gain_scale_ = std::max(gain_scale_, c);
    }
  }
  if (gain_scale_ <= 0.0) gain_scale_ = 1.0;

  bool device_local_policies = true;
  devices_.reserve(devices.size());
  for (auto& spec : devices) {
    DeviceState d;
    d.spec = spec;
    d.area = spec.area;
    // Per-device seed: decorrelated from the world stream and from other
    // devices, but fully determined by (seed, device id).
    const std::uint64_t device_seed =
        seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(spec.id + 1));
    d.policy = factory(spec, device_seed);
    if (!d.policy) throw std::invalid_argument("World: factory returned null policy");
    d.wants_full_info =
        d.policy->feedback_needs() == core::FeedbackNeeds::kFullInformation;
    any_full_info_ |= d.wants_full_info;
    device_local_policies &= !d.policy->shares_state_across_devices();
    // The delay stream is salted so it never collides with the policy's
    // stream derived from the same device_seed.
    d.delay_rng.reseed(device_seed ^ 0x94d049bb133111ebULL);
    d.policy_nets = &d.policy->networks();
    devices_.push_back(std::move(d));
  }

  // The executor only exists when it can actually fan out: >1 lane and no
  // policy with cross-device shared state (the centralized coordinator's
  // lazy rebalance must stay single-threaded).
  const int threads = StepExecutor::resolve(config_.threads);
  if (threads > 1 && device_local_policies) {
    executor_ = std::make_unique<StepExecutor>(threads);
  }
  choose_body_ = [this](std::size_t begin, std::size_t end) {
    choose_range(now_, begin, end);
  };
  feedback_body_ = [this](std::size_t begin, std::size_t end) {
    feedback_range(now_, begin, end);
  };
  // Policy batching needs per-device policy isolation for the same reason
  // the executor does: the group loops assume a member's calls only touch
  // that member's state. Shared-state worlds keep the scalar reference path
  // in plain device-index order.
  use_batching_ = config_.policy_batching && device_local_policies;
  lane_scratch_.resize(static_cast<std::size_t>(
      executor_ ? executor_->thread_count() : 1));
  choose_chunks_body_ = [this](int lane, std::size_t begin, std::size_t end) {
    choose_chunks(now_, lane, begin, end);
  };
  feedback_chunks_body_ = [this](int lane, std::size_t begin, std::size_t end) {
    feedback_chunks(now_, lane, begin, end);
  };

  set_bandwidth_model(make_equal_share());
  delay_ = make_default_delay_model();
  counts_.assign(networks_.size(), 0);
  pending_.assign(devices_.size(), kNoNetwork);
  rate_cache_.assign(networks_.size(), 0.0);
  gain_cache_.assign(networks_.size(), 0.0);
  goodput_cache_.assign(networks_.size(), 0.0);
  fair_rate_cache_.assign(networks_.size(), 0.0);
  fair_gain_cache_.assign(networks_.size(), 0.0);
  fair_join_rate_cache_.assign(networks_.size(), 0.0);
  fair_join_gain_cache_.assign(networks_.size(), 0.0);

  // Collect the slots on which the per-device join/leave scan can possibly
  // do anything (negative join/leave slots never fire: slots are >= 0).
  for (const auto& d : devices_) {
    if (d.spec.join_slot >= 0) join_leave_slots_.push_back(d.spec.join_slot);
    if (d.spec.leave_slot >= 0) join_leave_slots_.push_back(d.spec.leave_slot);
  }
  std::sort(join_leave_slots_.begin(), join_leave_slots_.end());
  join_leave_slots_.erase(
      std::unique(join_leave_slots_.begin(), join_leave_slots_.end()),
      join_leave_slots_.end());
}

void World::set_bandwidth_model(std::unique_ptr<BandwidthModel> model) {
  assert(model);
  bandwidth_ = std::move(model);
  shared_rates_ = bandwidth_->device_invariant_rate();
  bandwidth_prepare_stale_ = true;
}

void World::set_delay_model(std::unique_ptr<DelayModel> model) {
  assert(model);
  delay_ = std::move(model);
}

double World::unused_capacity_mbps(Slot t) const {
  double unused = 0.0;
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (counts_[i] == 0) unused += networks_[i].capacity(t);
  }
  return unused;
}

const std::vector<NetworkId>& World::visible_for(const DeviceState& d) const {
  // Linear scan: worlds have a handful of service areas, and coverage is
  // immutable after construction, so each area is computed exactly once.
  for (const auto& [area, ids] : visible_cache_) {
    if (area == d.area) return ids;
  }
  auto& entry = visible_cache_.emplace_back(d.area, std::vector<NetworkId>{});
  visible_networks_into(networks_, d.area, entry.second);
  return entry.second;
}

void World::join_device(DeviceState& d, Slot) {
  if (!d.active) ++active_count_;
  d.active = true;
  d.current = kNoNetwork;
  d.policy->set_networks(visible_for(d));
  groups_dirty_ = true;
  bandwidth_prepare_stale_ = true;
}

void World::leave_device(DeviceState& d, Slot t) {
  if (d.active) --active_count_;
  d.active = false;
  d.current = kNoNetwork;
  d.policy->on_leave(t);
  // The batched choose path only visits active devices, so the departed
  // device's stale pick must be cleared here for the counts reduction.
  pending_[static_cast<std::size_t>(&d - devices_.data())] = kNoNetwork;
  groups_dirty_ = true;
}

// Rebuild the policy groups, the cost-bounded chunk list and the per-lane
// chunk bounds. Runs on join/leave slots only; every piece of the result is
// a pure function of (active devices, policy types, cost hints, lane
// count), so the trajectory never depends on when or how often it runs.
void World::rebuild_policy_groups() {
  for (auto& g : groups_) {
    g.members.clear();
    g.policies.clear();
    g.costs.clear();
  }
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    auto& d = devices_[i];
    if (!d.active) continue;
    core::Policy& p = *d.policy;
    const std::type_index type(typeid(p));
    PolicyGroup* group = nullptr;
    // Linear scan: worlds hold a handful of distinct policy types. Groups
    // are created in first-seen device order and never erased, so group
    // order is stable across rebuilds.
    for (auto& cand : groups_) {
      if (cand.type == type) {
        group = &cand;
        break;
      }
    }
    if (group == nullptr) {
      groups_.push_back(PolicyGroup{type, p.uses_batch_dispatch(), {}, {}, {}});
      group = &groups_.back();
    }
    group->members.push_back(i);
    group->policies.push_back(d.policy.get());
    group->costs.push_back(p.step_cost_hint());
  }

  any_batched_ = false;
  for (const auto& g : groups_) any_batched_ |= g.batched && !g.members.empty();

  // Chunks: contiguous member spans with summed cost near the budget.
  // Boundaries are independent of the thread count by construction.
  chunks_.clear();
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    const auto& g = groups_[gi];
    std::size_t begin = 0;
    while (begin < g.members.size()) {
      double cost = g.costs[begin];
      std::size_t end = begin + 1;
      while (end < g.members.size() && cost + g.costs[end] <= kChunkCostBudget) {
        cost += g.costs[end];
        ++end;
      }
      chunks_.push_back({static_cast<std::uint32_t>(gi),
                         static_cast<std::uint32_t>(begin),
                         static_cast<std::uint32_t>(end), cost});
      begin = end;
    }
  }

  // Lane bounds: split the chunk list into contiguous ranges whose summed
  // costs are as even as the chunk granularity allows (each chunk goes to
  // the lane whose cost quantile its midpoint falls into).
  const auto lanes = static_cast<std::size_t>(executor_ ? executor_->thread_count() : 1);
  lane_bounds_.assign(lanes + 1, chunks_.size());
  lane_bounds_[0] = 0;
  double total = 0.0;
  for (const auto& c : chunks_) total += c.cost;
  double cum = 0.0;
  std::size_t ci = 0;
  for (std::size_t w = 1; w < lanes; ++w) {
    const double target = total * static_cast<double>(w) / static_cast<double>(lanes);
    while (ci < chunks_.size() && cum + chunks_[ci].cost * 0.5 <= target) {
      cum += chunks_[ci].cost;
      ++ci;
    }
    lane_bounds_[w] = ci;
  }
  groups_dirty_ = false;
}

void World::apply_events(Slot t) {
  // Scripted capacity changes.
  while (next_capacity_ < scenario_.capacity_changes.size() &&
         scenario_.capacity_changes[next_capacity_].slot <= t) {
    const auto& ev = scenario_.capacity_changes[next_capacity_++];
    if (ev.slot == t) {
      auto& net = networks_.at(static_cast<std::size_t>(ev.network));
      net.base_capacity_mbps = ev.new_capacity_mbps;
      if (!net.trace.empty()) net.trace.clear();  // scripted change overrides trace
    }
  }

  // Joins / leaves from the device specs. The per-device scan only runs on
  // slots where one is actually scheduled (observability unchanged: on any
  // other slot the scan would be a no-op).
  bool join_leave_scheduled = false;
  while (next_join_leave_ < join_leave_slots_.size() &&
         join_leave_slots_[next_join_leave_] <= t) {
    join_leave_scheduled |= join_leave_slots_[next_join_leave_] == t;
    ++next_join_leave_;
  }
  if (join_leave_scheduled) {
    for (auto& d : devices_) {
      if (!d.active && d.spec.join_slot == t) join_device(d, t);
      if (d.active && d.spec.leave_slot >= 0 && d.spec.leave_slot == t) leave_device(d, t);
    }
  }

  // Moves between service areas: the policy learns about it through a
  // change in its visible-network set.
  while (next_move_ < scenario_.moves.size() && scenario_.moves[next_move_].slot <= t) {
    const auto& ev = scenario_.moves[next_move_++];
    if (ev.slot != t) continue;
    for (auto& d : devices_) {
      if (d.spec.id != ev.device) continue;
      if (d.area == ev.new_area) break;
      d.area = ev.new_area;
      if (d.active) {
        const auto& visible = visible_for(d);
        // If the device's current network no longer covers it, it is
        // disconnected before the policy re-plans.
        if (d.current != kNoNetwork &&
            std::find(visible.begin(), visible.end(), d.current) == visible.end()) {
          d.current = kNoNetwork;
        }
        d.policy->set_networks(visible);
      }
      break;
    }
  }
}

// Choose phase body: all devices pick simultaneously (clients are
// time-synchronised in the paper's simulation setup). Device-local by
// construction — each policy owns its RNG and state — so disjoint ranges can
// run on different threads.
void World::choose_range(Slot t, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    auto& d = devices_[i];
    pending_[i] = kNoNetwork;
    if (!d.active) continue;
    const NetworkId want = d.policy->choose(t);
#ifndef NDEBUG
    const auto& nets = d.policy->networks();
    assert(std::find(nets.begin(), nets.end(), want) != nets.end());
#endif
    pending_[i] = want;
  }
}

// Batched choose body: one virtual dispatch per chunk, then a tight
// monomorphic loop inside the policy's choose_batch override. The scatter
// back into pending_ keeps the counts phase oblivious to batching.
void World::choose_chunks(Slot t, int lane, std::size_t begin, std::size_t end) {
  LaneScratch& ls = lane_scratch_[static_cast<std::size_t>(lane)];
  for (std::size_t c = begin; c < end; ++c) {
    const PolicyChunk& ch = chunks_[c];
    PolicyGroup& g = groups_[ch.group];
    const std::size_t n = ch.end - ch.begin;
    if (g.batched) {
      ls.choices.resize(n);
      g.policies[ch.begin]->choose_batch(t, g.policies.data() + ch.begin, n,
                                         ls.choices.data(), ls.batch);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = g.members[ch.begin + j];
        const NetworkId want = ls.choices[j];
#ifndef NDEBUG
        // Debug-only: the virtual networks() call must not run in release
        // builds (it alone is measurable on the per-device hot path).
        const auto& nets = devices_[i].policy->networks();
        assert(std::find(nets.begin(), nets.end(), want) != nets.end());
#endif
        pending_[i] = want;
      }
    } else {
      // Direct dispatch: for policies without SoA kernels the gather/scatter
      // of the batch call costs more than the virtual calls it saves.
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = g.members[ch.begin + j];
        const NetworkId want = g.policies[ch.begin + j]->choose(t);
#ifndef NDEBUG
        const auto& nets = devices_[i].policy->networks();
        assert(std::find(nets.begin(), nets.end(), want) != nets.end());
#endif
        pending_[i] = want;
      }
    }
  }
}

void World::phase_choose() {
  if (use_chunked_phases()) {
    if (executor_) {
      executor_->run_partitioned(lane_bounds_.data(), choose_chunks_body_);
    } else {
      choose_chunks(now_, 0, 0, chunks_.size());
    }
    return;
  }
  if (executor_) {
    executor_->run(devices_.size(), choose_body_);
  } else {
    choose_range(now_, 0, devices_.size());
  }
}

// Counts phase: the only cross-device reduction of a slot, run serially in
// fixed device order (occupancy) and fixed network order (shared caches), so
// its results never depend on thread count or scheduling. It is also the
// barrier between the choose and feedback phases.
void World::phase_counts() {
  const Slot t = now_;
  std::fill(counts_.begin(), counts_.end(), 0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (pending_[i] != kNoNetwork) ++counts_[static_cast<std::size_t>(pending_[i])];
  }

  // For device-invariant bandwidth models (equal share) every device on a
  // network observes the same rate — and hence the same gain and, when it
  // did not switch, the same full-slot goodput — so each occupied network's
  // values are computed once per slot instead of once per device-slot.
  // Bit-identical: the exact divisions and multiplications the per-device
  // path would perform.
  if (shared_rates_) {
    for (std::size_t j = 0; j < networks_.size(); ++j) {
      if (counts_[j] > 0) {
        rate_cache_[j] = bandwidth_->rate(networks_[j], counts_[j], 0, t, rng_);
        gain_cache_[j] = std::clamp(rate_cache_[j] / gain_scale_, 0.0, 1.0);
        goodput_cache_[j] = mbps_seconds_to_mb(rate_cache_[j], config_.slot_seconds);
      }
    }
    // Fair-share counterfactuals for full-information feedback: network j's
    // fair share at its occupancy (read by the device occupying it) and at
    // occupancy + 1 (read by devices contemplating a join). Bit-identical
    // to the per-device calls these replace — same arguments, same
    // division, same clamp — just evaluated once per slot.
    if (any_full_info_) {
      for (std::size_t j = 0; j < networks_.size(); ++j) {
        fair_rate_cache_[j] = bandwidth_->fair_share(networks_[j], counts_[j], t);
        fair_gain_cache_[j] = std::clamp(fair_rate_cache_[j] / gain_scale_, 0.0, 1.0);
        fair_join_rate_cache_[j] =
            bandwidth_->fair_share(networks_[j], counts_[j] + 1, t);
        fair_join_gain_cache_[j] =
            std::clamp(fair_join_rate_cache_[j] / gain_scale_, 0.0, 1.0);
      }
    }
  }
}

// Feedback phase body: per-device outcomes and policy observation. Reads
// shared slot state (counts, caches, networks) and writes only device-local
// state; switching delay comes from the device's own RNG stream, so disjoint
// ranges can run on different threads without perturbing the trajectory.
// The delay models sample by inverse CDF — exactly one 64-bit RNG output
// per draw, no rejection loops — so a device's delay stream position is a
// pure function of how many switches it has made, independent of the
// sampled values themselves (DESIGN.md §3).
// Force-inlined into both feedback bodies: this is the engine's per-device
// hot loop, and an out-of-line call here costs several percent of engine
// throughput for the cheap policies.
__attribute__((always_inline)) inline void World::fill_device_feedback(
    Slot t, std::size_t i) {
  auto& d = devices_[i];
  const NetworkId chosen = pending_[i];
  const auto c = static_cast<std::size_t>(chosen);
  const bool switched = d.current != kNoNetwork && d.current != chosen;

  // The feedback struct is per-device scratch: reusing it keeps the
  // counterfactual vectors' capacity, so steady-state slots are
  // allocation-free.
  core::SlotFeedback& fb = d.feedback;
  fb.switched = switched;
  fb.delay_s =
      switched
          ? std::min(delay_->sample(networks_[c], d.delay_rng), config_.slot_seconds)
          : 0.0;
  if (shared_rates_) {
    fb.bit_rate_mbps = rate_cache_[c];
    fb.gain = gain_cache_[c];
    // A delay-free slot's goodput is the cached full-slot value
    // (slot_seconds - 0.0 is exactly slot_seconds).
    fb.goodput_mb = switched ? mbps_seconds_to_mb(fb.bit_rate_mbps,
                                                  config_.slot_seconds - fb.delay_s)
                             : goodput_cache_[c];
  } else {
    fb.bit_rate_mbps = bandwidth_->rate(networks_[c], counts_[c], d.spec.id, t, rng_);
    fb.gain = std::clamp(fb.bit_rate_mbps / gain_scale_, 0.0, 1.0);
    fb.goodput_mb =
        mbps_seconds_to_mb(fb.bit_rate_mbps, config_.slot_seconds - fb.delay_s);
  }

  if (d.wants_full_info) {
    // Full-information feedback: what the device would have observed on
    // each visible network this slot (fair-share counterfactual: joining a
    // network it is not on adds itself to that network's load). Only
    // computed for policies that consume it — an O(devices x networks)
    // pass the bandit policies skip entirely.
    const auto& nets = *d.policy_nets;
    fb.all_rates_mbps.resize(nets.size());
    fb.all_gains.resize(nets.size());
    if (shared_rates_) {
      // Read the per-slot fair-share caches computed in phase_counts.
      for (std::size_t j = 0; j < nets.size(); ++j) {
        const auto n = static_cast<std::size_t>(nets[j]);
        const bool occupying = nets[j] == chosen;
        fb.all_rates_mbps[j] =
            occupying ? fair_rate_cache_[n] : fair_join_rate_cache_[n];
        fb.all_gains[j] = occupying ? fair_gain_cache_[n] : fair_join_gain_cache_[n];
      }
    } else {
      for (std::size_t j = 0; j < nets.size(); ++j) {
        const auto& other = networks_[static_cast<std::size_t>(nets[j])];
        const int load =
            counts_[static_cast<std::size_t>(nets[j])] + (nets[j] == chosen ? 0 : 1);
        fb.all_rates_mbps[j] = bandwidth_->fair_share(other, load, t);
        fb.all_gains[j] = std::clamp(fb.all_rates_mbps[j] / gain_scale_, 0.0, 1.0);
      }
    }
  } else {
    fb.all_rates_mbps.clear();
    fb.all_gains.clear();
  }

  d.last_rate_mbps = fb.bit_rate_mbps;
  d.last_gain = fb.gain;
  d.last_switched = switched;
  d.download_mb += fb.goodput_mb;
  // delay_s is exactly 0 without a switch, so the loss term would add 0.0.
  if (switched) d.delay_loss_mb += mbps_seconds_to_mb(fb.bit_rate_mbps, fb.delay_s);
  d.switches += switched ? 1 : 0;
  d.slots_active += 1;
  d.current = chosen;
}

void World::feedback_range(Slot t, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    auto& d = devices_[i];
    if (!d.active) continue;
    fill_device_feedback(t, i);
    d.policy->observe(t, d.feedback);
  }
}

// Batched feedback body: the engine half runs per device as before, then
// the whole chunk's observations go through one observe_batch dispatch —
// which is where the EXP3-family policies pack their weight-update deltas
// for a single vexp sweep.
void World::feedback_chunks(Slot t, int lane, std::size_t begin, std::size_t end) {
  LaneScratch& ls = lane_scratch_[static_cast<std::size_t>(lane)];
  for (std::size_t c = begin; c < end; ++c) {
    const PolicyChunk& ch = chunks_[c];
    PolicyGroup& g = groups_[ch.group];
    const std::size_t n = ch.end - ch.begin;
    if (g.batched) {
      ls.feedbacks.resize(n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = g.members[ch.begin + j];
        fill_device_feedback(t, i);
        ls.feedbacks[j] = &devices_[i].feedback;
      }
      g.policies[ch.begin]->observe_batch(t, g.policies.data() + ch.begin,
                                          ls.feedbacks.data(), n, ls.batch);
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = g.members[ch.begin + j];
        fill_device_feedback(t, i);
        g.policies[ch.begin + j]->observe(t, devices_[i].feedback);
      }
    }
  }
}

void World::phase_feedback() {
  // Bandwidth models whose rate() is not a pure read must keep the feedback
  // phase serial. Device-invariant models qualify through the per-network
  // caches; others (noisy share) qualify once prepare_slot() has
  // materialised their lazy per-device / per-network state, which they
  // advertise via parallel_rate_safe(). The trajectory is identical either
  // way — rate() reads the same materialised state in the same per-device
  // places the serial path would.
  // The chunked body visits devices in group order, not index order, which
  // is only trajectory-neutral when rate() never consumes the shared world
  // rng during the phase: device-invariant models never call it per device
  // (cached in phase_counts) and prepare_slot-materialised models promise a
  // pure read via parallel_rate_safe(). Any other model keeps the scalar
  // body, whose rng consumption order is the fixed device order.
  const bool parallel_ok = feedback_parallel();
  const bool rate_order_free = shared_rates_ || bandwidth_->parallel_rate_safe();
  if (use_chunked_phases() && rate_order_free) {
    if (parallel_ok) {
      executor_->run_partitioned(lane_bounds_.data(), feedback_chunks_body_);
    } else {
      feedback_chunks(now_, 0, 0, chunks_.size());
    }
    return;
  }
  if (parallel_ok) {
    executor_->run(devices_.size(), feedback_body_);
  } else {
    feedback_range(now_, 0, devices_.size());
  }
}

void World::step() {
  if (done()) return;
  const Slot t = now_;
  apply_events(t);
  if (use_batching_ && groups_dirty_) rebuild_policy_groups();
  bandwidth_->begin_slot(t, rng_);
  if (!shared_rates_ && bandwidth_prepare_stale_) {
    // Give non-device-invariant models the chance to materialise their lazy
    // per-device / per-network state while still serial (the ids arrive in
    // fixed device order, reproducing the serial path's first-touch order),
    // so the feedback phase can fan out for them too. Materialisation is
    // idempotent, so it only needs to run again when the active set (or the
    // model) changed.
    active_ids_scratch_.clear();
    for (const auto& d : devices_) {
      if (d.active) active_ids_scratch_.push_back(d.spec.id);
    }
    bandwidth_->prepare_slot(networks_, active_ids_scratch_);
    bandwidth_prepare_stale_ = false;
  }
  phase_choose();
  phase_counts();
  phase_feedback();
  if (observer_ != nullptr) observer_->on_slot_end(t, *this);
  ++now_;
}

void World::run() {
  while (!done()) step();
  if (observer_ != nullptr) observer_->on_run_end(*this);
}

[[gnu::cold]] void World::snapshot_into(core::StateWriter& w) const {
  w.section(0x57524c44u);  // "WRLD"
  w.i64(now_);
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  // Event cursors: where the next apply_events() resumes in the (normalised,
  // hence deterministically ordered) scenario event lists.
  w.u64(next_capacity_);
  w.u64(next_join_leave_);
  w.u64(next_move_);
  // Networks can be mutated mid-run by scripted capacity changes (new base
  // capacity, trace cleared); everything else about them is construction
  // state the restored world already has.
  w.u64(networks_.size());
  for (const auto& net : networks_) {
    w.f64(net.base_capacity_mbps);
    w.b(net.trace.empty());
  }
  bandwidth_->snapshot_into(w);
  w.u64(devices_.size());
  for (const auto& d : devices_) {
    w.b(d.active);
    w.i64(d.area);
    w.i64(d.current);
    w.f64(d.last_rate_mbps);
    w.f64(d.last_gain);
    w.b(d.last_switched);
    w.f64(d.download_mb);
    w.f64(d.delay_loss_mb);
    w.i64(d.switches);
    w.i64(d.slots_active);
    for (const std::uint64_t word : d.delay_rng.state_words()) w.u64(word);
    d.policy->snapshot_into(w);
  }
}

[[gnu::cold]] void World::restore_from(core::StateReader& r) {
  r.section(0x57524c44u, "world");
  const auto slot = static_cast<Slot>(r.i64());
  if (slot < 0 || slot > config_.horizon) {
    throw core::SnapshotError("world snapshot slot outside this world's horizon");
  }
  now_ = slot;
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  rng_.set_state_words(rng_state);
  next_capacity_ = r.u64();
  next_join_leave_ = r.u64();
  next_move_ = r.u64();
  if (next_capacity_ > scenario_.capacity_changes.size() ||
      next_join_leave_ > join_leave_slots_.size() || next_move_ > scenario_.moves.size()) {
    throw core::SnapshotError("world snapshot event cursor out of range");
  }
  if (r.count("world networks") != networks_.size()) {
    throw core::SnapshotError("world snapshot network count mismatch");
  }
  for (auto& net : networks_) {
    net.base_capacity_mbps = r.f64();
    if (r.b()) net.trace.clear();
  }
  bandwidth_->restore_from(r);
  if (r.count("world devices") != devices_.size()) {
    throw core::SnapshotError("world snapshot device count mismatch");
  }
  active_count_ = 0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    auto& d = devices_[i];
    d.active = r.b();
    if (d.active) ++active_count_;
    d.area = static_cast<int>(r.i64());
    d.current = static_cast<NetworkId>(r.i64());
    d.last_rate_mbps = r.f64();
    d.last_gain = r.f64();
    d.last_switched = r.b();
    d.download_mb = r.f64();
    d.delay_loss_mb = r.f64();
    d.switches = static_cast<int>(r.i64());
    d.slots_active = static_cast<int>(r.i64());
    std::array<std::uint64_t, 4> delay_state;
    for (auto& word : delay_state) word = r.u64();
    d.delay_rng.set_state_words(delay_state);
    // The policy's restore re-establishes its own network set; calling
    // set_networks() here would run adaptation rules (weight resets, reseeds)
    // on the checkpointed state and fork the trajectory.
    d.policy->restore_from(r);
    pending_[i] = kNoNetwork;
  }
  // Derived execution state is rebuilt lazily from the restored inputs: the
  // policy groups on the next step, the bandwidth model's materialised
  // per-device state on the next prepare (idempotent after restore_from),
  // and the per-slot caches in the next counts phase.
  groups_dirty_ = true;
  bandwidth_prepare_stale_ = true;
}

}  // namespace smartexp3::netsim
