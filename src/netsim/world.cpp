#include "netsim/world.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace smartexp3::netsim {

World::World(WorldConfig config, std::vector<Network> networks,
             std::vector<DeviceSpec> devices, Scenario scenario, PolicyFactory factory,
             std::uint64_t seed)
    : config_(config),
      networks_(std::move(networks)),
      scenario_(std::move(scenario)),
      rng_(seed) {
  if (networks_.empty()) throw std::invalid_argument("World: no networks");
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (networks_[i].id != static_cast<NetworkId>(i)) {
      throw std::invalid_argument("World: network ids must be 0..k-1 in table order");
    }
  }
  scenario_.normalise();

  gain_scale_ = config_.gain_scale_mbps;
  if (gain_scale_ <= 0.0) {
    for (const auto& n : networks_) {
      gain_scale_ = std::max(gain_scale_, n.base_capacity_mbps);
      for (const double c : n.trace) gain_scale_ = std::max(gain_scale_, c);
    }
  }
  if (gain_scale_ <= 0.0) gain_scale_ = 1.0;

  bool device_local_policies = true;
  devices_.reserve(devices.size());
  for (auto& spec : devices) {
    DeviceState d;
    d.spec = spec;
    d.area = spec.area;
    // Per-device seed: decorrelated from the world stream and from other
    // devices, but fully determined by (seed, device id).
    const std::uint64_t device_seed =
        seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(spec.id + 1));
    d.policy = factory(spec, device_seed);
    if (!d.policy) throw std::invalid_argument("World: factory returned null policy");
    d.wants_full_info =
        d.policy->feedback_needs() == core::FeedbackNeeds::kFullInformation;
    any_full_info_ |= d.wants_full_info;
    device_local_policies &= !d.policy->shares_state_across_devices();
    // The delay stream is salted so it never collides with the policy's
    // stream derived from the same device_seed.
    d.delay_rng.reseed(device_seed ^ 0x94d049bb133111ebULL);
    devices_.push_back(std::move(d));
  }

  // The executor only exists when it can actually fan out: >1 lane and no
  // policy with cross-device shared state (the centralized coordinator's
  // lazy rebalance must stay single-threaded).
  const int threads = StepExecutor::resolve(config_.threads);
  if (threads > 1 && device_local_policies) {
    executor_ = std::make_unique<StepExecutor>(threads);
  }
  choose_body_ = [this](std::size_t begin, std::size_t end) {
    choose_range(now_, begin, end);
  };
  feedback_body_ = [this](std::size_t begin, std::size_t end) {
    feedback_range(now_, begin, end);
  };

  set_bandwidth_model(make_equal_share());
  delay_ = make_default_delay_model();
  counts_.assign(networks_.size(), 0);
  pending_.assign(devices_.size(), kNoNetwork);
  rate_cache_.assign(networks_.size(), 0.0);
  gain_cache_.assign(networks_.size(), 0.0);
  goodput_cache_.assign(networks_.size(), 0.0);
  fair_rate_cache_.assign(networks_.size(), 0.0);
  fair_gain_cache_.assign(networks_.size(), 0.0);
  fair_join_rate_cache_.assign(networks_.size(), 0.0);
  fair_join_gain_cache_.assign(networks_.size(), 0.0);

  // Collect the slots on which the per-device join/leave scan can possibly
  // do anything (negative join/leave slots never fire: slots are >= 0).
  for (const auto& d : devices_) {
    if (d.spec.join_slot >= 0) join_leave_slots_.push_back(d.spec.join_slot);
    if (d.spec.leave_slot >= 0) join_leave_slots_.push_back(d.spec.leave_slot);
  }
  std::sort(join_leave_slots_.begin(), join_leave_slots_.end());
  join_leave_slots_.erase(
      std::unique(join_leave_slots_.begin(), join_leave_slots_.end()),
      join_leave_slots_.end());
}

void World::set_bandwidth_model(std::unique_ptr<BandwidthModel> model) {
  assert(model);
  bandwidth_ = std::move(model);
  shared_rates_ = bandwidth_->device_invariant_rate();
}

void World::set_delay_model(std::unique_ptr<DelayModel> model) {
  assert(model);
  delay_ = std::move(model);
}

double World::unused_capacity_mbps(Slot t) const {
  double unused = 0.0;
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (counts_[i] == 0) unused += networks_[i].capacity(t);
  }
  return unused;
}

const std::vector<NetworkId>& World::visible_for(const DeviceState& d) const {
  // Linear scan: worlds have a handful of service areas, and coverage is
  // immutable after construction, so each area is computed exactly once.
  for (const auto& [area, ids] : visible_cache_) {
    if (area == d.area) return ids;
  }
  auto& entry = visible_cache_.emplace_back(d.area, std::vector<NetworkId>{});
  visible_networks_into(networks_, d.area, entry.second);
  return entry.second;
}

void World::join_device(DeviceState& d, Slot) {
  if (!d.active) ++active_count_;
  d.active = true;
  d.current = kNoNetwork;
  d.policy->set_networks(visible_for(d));
}

void World::leave_device(DeviceState& d, Slot t) {
  if (d.active) --active_count_;
  d.active = false;
  d.current = kNoNetwork;
  d.policy->on_leave(t);
}

void World::apply_events(Slot t) {
  // Scripted capacity changes.
  while (next_capacity_ < scenario_.capacity_changes.size() &&
         scenario_.capacity_changes[next_capacity_].slot <= t) {
    const auto& ev = scenario_.capacity_changes[next_capacity_++];
    if (ev.slot == t) {
      auto& net = networks_.at(static_cast<std::size_t>(ev.network));
      net.base_capacity_mbps = ev.new_capacity_mbps;
      if (!net.trace.empty()) net.trace.clear();  // scripted change overrides trace
    }
  }

  // Joins / leaves from the device specs. The per-device scan only runs on
  // slots where one is actually scheduled (observability unchanged: on any
  // other slot the scan would be a no-op).
  bool join_leave_scheduled = false;
  while (next_join_leave_ < join_leave_slots_.size() &&
         join_leave_slots_[next_join_leave_] <= t) {
    join_leave_scheduled |= join_leave_slots_[next_join_leave_] == t;
    ++next_join_leave_;
  }
  if (join_leave_scheduled) {
    for (auto& d : devices_) {
      if (!d.active && d.spec.join_slot == t) join_device(d, t);
      if (d.active && d.spec.leave_slot >= 0 && d.spec.leave_slot == t) leave_device(d, t);
    }
  }

  // Moves between service areas: the policy learns about it through a
  // change in its visible-network set.
  while (next_move_ < scenario_.moves.size() && scenario_.moves[next_move_].slot <= t) {
    const auto& ev = scenario_.moves[next_move_++];
    if (ev.slot != t) continue;
    for (auto& d : devices_) {
      if (d.spec.id != ev.device) continue;
      if (d.area == ev.new_area) break;
      d.area = ev.new_area;
      if (d.active) {
        const auto& visible = visible_for(d);
        // If the device's current network no longer covers it, it is
        // disconnected before the policy re-plans.
        if (d.current != kNoNetwork &&
            std::find(visible.begin(), visible.end(), d.current) == visible.end()) {
          d.current = kNoNetwork;
        }
        d.policy->set_networks(visible);
      }
      break;
    }
  }
}

// Choose phase body: all devices pick simultaneously (clients are
// time-synchronised in the paper's simulation setup). Device-local by
// construction — each policy owns its RNG and state — so disjoint ranges can
// run on different threads.
void World::choose_range(Slot t, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    auto& d = devices_[i];
    pending_[i] = kNoNetwork;
    if (!d.active) continue;
    const NetworkId want = d.policy->choose(t);
    const auto& nets = d.policy->networks();
    assert(std::find(nets.begin(), nets.end(), want) != nets.end());
    (void)nets;
    pending_[i] = want;
  }
}

void World::phase_choose() {
  if (executor_) {
    executor_->run(devices_.size(), choose_body_);
  } else {
    choose_range(now_, 0, devices_.size());
  }
}

// Counts phase: the only cross-device reduction of a slot, run serially in
// fixed device order (occupancy) and fixed network order (shared caches), so
// its results never depend on thread count or scheduling. It is also the
// barrier between the choose and feedback phases.
void World::phase_counts() {
  const Slot t = now_;
  std::fill(counts_.begin(), counts_.end(), 0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (pending_[i] != kNoNetwork) ++counts_[static_cast<std::size_t>(pending_[i])];
  }

  // For device-invariant bandwidth models (equal share) every device on a
  // network observes the same rate — and hence the same gain and, when it
  // did not switch, the same full-slot goodput — so each occupied network's
  // values are computed once per slot instead of once per device-slot.
  // Bit-identical: the exact divisions and multiplications the per-device
  // path would perform.
  if (shared_rates_) {
    for (std::size_t j = 0; j < networks_.size(); ++j) {
      if (counts_[j] > 0) {
        rate_cache_[j] = bandwidth_->rate(networks_[j], counts_[j], 0, t, rng_);
        gain_cache_[j] = std::clamp(rate_cache_[j] / gain_scale_, 0.0, 1.0);
        goodput_cache_[j] = mbps_seconds_to_mb(rate_cache_[j], config_.slot_seconds);
      }
    }
    // Fair-share counterfactuals for full-information feedback: network j's
    // fair share at its occupancy (read by the device occupying it) and at
    // occupancy + 1 (read by devices contemplating a join). Bit-identical
    // to the per-device calls these replace — same arguments, same
    // division, same clamp — just evaluated once per slot.
    if (any_full_info_) {
      for (std::size_t j = 0; j < networks_.size(); ++j) {
        fair_rate_cache_[j] = bandwidth_->fair_share(networks_[j], counts_[j], t);
        fair_gain_cache_[j] = std::clamp(fair_rate_cache_[j] / gain_scale_, 0.0, 1.0);
        fair_join_rate_cache_[j] =
            bandwidth_->fair_share(networks_[j], counts_[j] + 1, t);
        fair_join_gain_cache_[j] =
            std::clamp(fair_join_rate_cache_[j] / gain_scale_, 0.0, 1.0);
      }
    }
  }
}

// Feedback phase body: per-device outcomes and policy observation. Reads
// shared slot state (counts, caches, networks) and writes only device-local
// state; switching delay comes from the device's own RNG stream, so disjoint
// ranges can run on different threads without perturbing the trajectory.
// The delay models sample by inverse CDF — exactly one 64-bit RNG output
// per draw, no rejection loops — so a device's delay stream position is a
// pure function of how many switches it has made, independent of the
// sampled values themselves (DESIGN.md §3).
void World::feedback_range(Slot t, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    auto& d = devices_[i];
    if (!d.active) continue;
    const NetworkId chosen = pending_[i];
    const auto c = static_cast<std::size_t>(chosen);
    const bool switched = d.current != kNoNetwork && d.current != chosen;

    // The feedback struct is per-device scratch: reusing it keeps the
    // counterfactual vectors' capacity, so steady-state slots are
    // allocation-free.
    core::SlotFeedback& fb = d.feedback;
    fb.switched = switched;
    fb.delay_s =
        switched
            ? std::min(delay_->sample(networks_[c], d.delay_rng), config_.slot_seconds)
            : 0.0;
    if (shared_rates_) {
      fb.bit_rate_mbps = rate_cache_[c];
      fb.gain = gain_cache_[c];
      // A delay-free slot's goodput is the cached full-slot value
      // (slot_seconds - 0.0 is exactly slot_seconds).
      fb.goodput_mb = switched ? mbps_seconds_to_mb(fb.bit_rate_mbps,
                                                    config_.slot_seconds - fb.delay_s)
                               : goodput_cache_[c];
    } else {
      fb.bit_rate_mbps = bandwidth_->rate(networks_[c], counts_[c], d.spec.id, t, rng_);
      fb.gain = std::clamp(fb.bit_rate_mbps / gain_scale_, 0.0, 1.0);
      fb.goodput_mb =
          mbps_seconds_to_mb(fb.bit_rate_mbps, config_.slot_seconds - fb.delay_s);
    }

    if (d.wants_full_info) {
      // Full-information feedback: what the device would have observed on
      // each visible network this slot (fair-share counterfactual: joining a
      // network it is not on adds itself to that network's load). Only
      // computed for policies that consume it — an O(devices x networks)
      // pass the bandit policies skip entirely.
      const auto& nets = d.policy->networks();
      fb.all_rates_mbps.resize(nets.size());
      fb.all_gains.resize(nets.size());
      if (shared_rates_) {
        // Read the per-slot fair-share caches computed in phase_counts.
        for (std::size_t j = 0; j < nets.size(); ++j) {
          const auto n = static_cast<std::size_t>(nets[j]);
          const bool occupying = nets[j] == chosen;
          fb.all_rates_mbps[j] =
              occupying ? fair_rate_cache_[n] : fair_join_rate_cache_[n];
          fb.all_gains[j] = occupying ? fair_gain_cache_[n] : fair_join_gain_cache_[n];
        }
      } else {
        for (std::size_t j = 0; j < nets.size(); ++j) {
          const auto& other = networks_[static_cast<std::size_t>(nets[j])];
          const int load =
              counts_[static_cast<std::size_t>(nets[j])] + (nets[j] == chosen ? 0 : 1);
          fb.all_rates_mbps[j] = bandwidth_->fair_share(other, load, t);
          fb.all_gains[j] = std::clamp(fb.all_rates_mbps[j] / gain_scale_, 0.0, 1.0);
        }
      }
    } else {
      fb.all_rates_mbps.clear();
      fb.all_gains.clear();
    }

    d.policy->observe(t, fb);

    d.last_rate_mbps = fb.bit_rate_mbps;
    d.last_gain = fb.gain;
    d.last_switched = switched;
    d.download_mb += fb.goodput_mb;
    // delay_s is exactly 0 without a switch, so the loss term would add 0.0.
    if (switched) d.delay_loss_mb += mbps_seconds_to_mb(fb.bit_rate_mbps, fb.delay_s);
    d.switches += switched ? 1 : 0;
    d.slots_active += 1;
    d.current = chosen;
  }
}

void World::phase_feedback() {
  // Non-invariant bandwidth models (noisy share) mutate lazy per-device /
  // per-network state inside rate() and may draw from the world stream, so
  // their feedback phase stays serial; the trajectory is identical either
  // way because parallel feedback is only ever used when it reads the same
  // per-network caches the serial path would.
  if (executor_ && shared_rates_) {
    executor_->run(devices_.size(), feedback_body_);
  } else {
    feedback_range(now_, 0, devices_.size());
  }
}

void World::step() {
  if (done()) return;
  const Slot t = now_;
  apply_events(t);
  bandwidth_->begin_slot(t, rng_);
  phase_choose();
  phase_counts();
  phase_feedback();
  if (observer_ != nullptr) observer_->on_slot_end(t, *this);
  ++now_;
}

void World::run() {
  while (!done()) step();
  if (observer_ != nullptr) observer_->on_run_end(*this);
}

}  // namespace smartexp3::netsim
