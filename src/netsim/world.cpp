#include "netsim/world.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace smartexp3::netsim {

World::World(WorldConfig config, std::vector<Network> networks,
             std::vector<DeviceSpec> devices, Scenario scenario, PolicyFactory factory,
             std::uint64_t seed)
    : config_(config),
      networks_(std::move(networks)),
      scenario_(std::move(scenario)),
      rng_(seed) {
  if (networks_.empty()) throw std::invalid_argument("World: no networks");
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (networks_[i].id != static_cast<NetworkId>(i)) {
      throw std::invalid_argument("World: network ids must be 0..k-1 in table order");
    }
  }
  scenario_.normalise();

  gain_scale_ = config_.gain_scale_mbps;
  if (gain_scale_ <= 0.0) {
    for (const auto& n : networks_) {
      gain_scale_ = std::max(gain_scale_, n.base_capacity_mbps);
      for (const double c : n.trace) gain_scale_ = std::max(gain_scale_, c);
    }
  }
  if (gain_scale_ <= 0.0) gain_scale_ = 1.0;

  devices_.reserve(devices.size());
  for (auto& spec : devices) {
    DeviceState d;
    d.spec = spec;
    d.area = spec.area;
    // Per-device seed: decorrelated from the world stream and from other
    // devices, but fully determined by (seed, device id).
    const std::uint64_t device_seed =
        seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(spec.id + 1));
    d.policy = factory(spec, device_seed);
    if (!d.policy) throw std::invalid_argument("World: factory returned null policy");
    devices_.push_back(std::move(d));
  }

  bandwidth_ = make_equal_share();
  delay_ = make_default_delay_model();
  counts_.assign(networks_.size(), 0);
  pending_.assign(devices_.size(), kNoNetwork);
}

void World::set_bandwidth_model(std::unique_ptr<BandwidthModel> model) {
  assert(model);
  bandwidth_ = std::move(model);
}

void World::set_delay_model(std::unique_ptr<DelayModel> model) {
  assert(model);
  delay_ = std::move(model);
}

int World::active_device_count() const {
  int n = 0;
  for (const auto& d : devices_) n += d.active ? 1 : 0;
  return n;
}

double World::unused_capacity_mbps(Slot t) const {
  double unused = 0.0;
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (counts_[i] == 0) unused += networks_[i].capacity(t);
  }
  return unused;
}

std::vector<NetworkId> World::visible_for(const DeviceState& d) const {
  return visible_networks(networks_, d.area);
}

void World::join_device(DeviceState& d, Slot) {
  d.active = true;
  d.current = kNoNetwork;
  d.policy->set_networks(visible_for(d));
}

void World::leave_device(DeviceState& d, Slot t) {
  d.active = false;
  d.current = kNoNetwork;
  d.policy->on_leave(t);
}

void World::apply_events(Slot t) {
  // Scripted capacity changes.
  while (next_capacity_ < scenario_.capacity_changes.size() &&
         scenario_.capacity_changes[next_capacity_].slot <= t) {
    const auto& ev = scenario_.capacity_changes[next_capacity_++];
    if (ev.slot == t) {
      auto& net = networks_.at(static_cast<std::size_t>(ev.network));
      net.base_capacity_mbps = ev.new_capacity_mbps;
      if (!net.trace.empty()) net.trace.clear();  // scripted change overrides trace
    }
  }

  // Joins / leaves from the device specs.
  for (auto& d : devices_) {
    if (!d.active && d.spec.join_slot == t) join_device(d, t);
    if (d.active && d.spec.leave_slot >= 0 && d.spec.leave_slot == t) leave_device(d, t);
  }

  // Moves between service areas: the policy learns about it through a
  // change in its visible-network set.
  while (next_move_ < scenario_.moves.size() && scenario_.moves[next_move_].slot <= t) {
    const auto& ev = scenario_.moves[next_move_++];
    if (ev.slot != t) continue;
    for (auto& d : devices_) {
      if (d.spec.id != ev.device) continue;
      if (d.area == ev.new_area) break;
      d.area = ev.new_area;
      if (d.active) {
        const auto visible = visible_for(d);
        // If the device's current network no longer covers it, it is
        // disconnected before the policy re-plans.
        if (d.current != kNoNetwork &&
            std::find(visible.begin(), visible.end(), d.current) == visible.end()) {
          d.current = kNoNetwork;
        }
        d.policy->set_networks(visible);
      }
      break;
    }
  }
}

void World::step() {
  if (done()) return;
  const Slot t = now_;
  apply_events(t);
  bandwidth_->begin_slot(t, rng_);

  // Phase 1: all devices pick simultaneously (clients are time-synchronised
  // in the paper's simulation setup).
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    auto& d = devices_[i];
    pending_[i] = kNoNetwork;
    if (!d.active) continue;
    const NetworkId want = d.policy->choose(t);
    const auto& nets = d.policy->networks();
    assert(std::find(nets.begin(), nets.end(), want) != nets.end());
    (void)nets;
    pending_[i] = want;
  }

  // Phase 2: congestion.
  std::fill(counts_.begin(), counts_.end(), 0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (pending_[i] != kNoNetwork) ++counts_[static_cast<std::size_t>(pending_[i])];
  }

  // Phase 3: outcomes and feedback.
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    auto& d = devices_[i];
    if (!d.active) continue;
    const NetworkId chosen = pending_[i];
    const auto& net = networks_[static_cast<std::size_t>(chosen)];
    const int n_on_net = counts_[static_cast<std::size_t>(chosen)];
    const bool switched = d.current != kNoNetwork && d.current != chosen;

    core::SlotFeedback fb;
    fb.switched = switched;
    fb.delay_s = switched ? std::min(delay_->sample(net, rng_), config_.slot_seconds)
                          : 0.0;
    fb.bit_rate_mbps = bandwidth_->rate(net, n_on_net, d.spec.id, t, rng_);
    fb.gain = std::clamp(fb.bit_rate_mbps / gain_scale_, 0.0, 1.0);
    fb.goodput_mb =
        mbps_seconds_to_mb(fb.bit_rate_mbps, config_.slot_seconds - fb.delay_s);

    // Full-information feedback: what the device would have observed on each
    // visible network this slot (fair-share counterfactual: joining a
    // network it is not on adds itself to that network's load).
    const auto& nets = d.policy->networks();
    fb.all_rates_mbps.resize(nets.size());
    fb.all_gains.resize(nets.size());
    for (std::size_t j = 0; j < nets.size(); ++j) {
      const auto& other = networks_[static_cast<std::size_t>(nets[j])];
      const int load = counts_[static_cast<std::size_t>(nets[j])] + (nets[j] == chosen ? 0 : 1);
      fb.all_rates_mbps[j] = bandwidth_->fair_share(other, load, t);
      fb.all_gains[j] = std::clamp(fb.all_rates_mbps[j] / gain_scale_, 0.0, 1.0);
    }

    d.policy->observe(t, fb);

    d.last_rate_mbps = fb.bit_rate_mbps;
    d.last_gain = fb.gain;
    d.last_switched = switched;
    d.download_mb += fb.goodput_mb;
    d.delay_loss_mb += mbps_seconds_to_mb(fb.bit_rate_mbps, fb.delay_s);
    d.switches += switched ? 1 : 0;
    d.slots_active += 1;
    d.current = chosen;
  }

  if (observer_ != nullptr) observer_->on_slot_end(t, *this);
  ++now_;
}

void World::run() {
  while (!done()) step();
  if (observer_ != nullptr) observer_->on_run_end(*this);
}

}  // namespace smartexp3::netsim
