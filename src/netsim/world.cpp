#include "netsim/world.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "core/snapshot.hpp"

namespace smartexp3::netsim {

int World::resolve_shards(int shards, std::size_t device_count) {
  const std::size_t n = device_count > 0 ? device_count : 1;
  if (shards <= 0) {
    // Auto: paper-scale worlds (hundreds of devices) keep one shard; the
    // scalability settings split every ~16k devices, capped so shard
    // bookkeeping stays negligible even at 10^6+ devices.
    const std::size_t auto_shards = (n + kDevicesPerShard - 1) / kDevicesPerShard;
    return static_cast<int>(std::min<std::size_t>(auto_shards, 64));
  }
  return static_cast<int>(std::min(static_cast<std::size_t>(shards), n));
}

World::World(WorldConfig config, std::vector<Network> networks,
             std::vector<DeviceSpec> devices, Scenario scenario, PolicyFactory factory,
             std::uint64_t seed)
    : config_(config),
      networks_(std::move(networks)),
      scenario_(std::move(scenario)),
      rng_(seed) {
  if (networks_.empty()) throw std::invalid_argument("World: no networks");
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (networks_[i].id != static_cast<NetworkId>(i)) {
      throw std::invalid_argument("World: network ids must be 0..k-1 in table order");
    }
  }
  scenario_.normalise();

  gain_scale_ = config_.gain_scale_mbps;
  if (gain_scale_ <= 0.0) {
    for (const auto& n : networks_) {
      gain_scale_ = std::max(gain_scale_, n.base_capacity_mbps);
      for (const double c : n.trace) gain_scale_ = std::max(gain_scale_, c);
    }
  }
  if (gain_scale_ <= 0.0) gain_scale_ = 1.0;

  bool device_local_policies = true;
  pool_.reserve(devices.size());
  for (auto& spec : devices) {
    // Per-device seed: decorrelated from the world stream and from other
    // devices, but fully determined by (seed, device id).
    const std::uint64_t device_seed =
        seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(spec.id + 1));
    auto policy = factory(spec, device_seed);
    if (!policy) throw std::invalid_argument("World: factory returned null policy");
    const bool full_info =
        policy->feedback_needs() == core::FeedbackNeeds::kFullInformation;
    any_full_info_ |= full_info;
    device_local_policies &= !policy->shares_state_across_devices();
    // The delay stream is salted so it never collides with the policy's
    // stream derived from the same device_seed.
    stats::Rng delay_rng;
    delay_rng.reseed(device_seed ^ 0x94d049bb133111ebULL);
    pool_.push_back(std::move(spec), std::move(policy), delay_rng, full_info);
  }

  // Contiguous even device split into shards. The split is a pure function
  // of (device count, shard count) — never of the thread count — and only
  // affects which shard-local counter a pick is reduced into.
  const auto shard_count =
      static_cast<std::size_t>(resolve_shards(config_.shards, pool_.size()));
  shards_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s].begin = pool_.size() * s / shard_count;
    shards_[s].end = pool_.size() * (s + 1) / shard_count;
    shards_[s].counts.assign(networks_.size(), 0);
  }

  // The executor only exists when it can actually fan out: >1 lane and no
  // policy with cross-device shared state (the centralized coordinator's
  // lazy rebalance must stay single-threaded).
  const int threads = StepExecutor::resolve(config_.threads);
  if (threads > 1 && device_local_policies) {
    executor_ = std::make_unique<StepExecutor>(threads);
  }
  choose_body_ = [this](std::size_t begin, std::size_t end) {
    choose_range(now_, begin, end);
  };
  feedback_body_ = [this](int lane, std::size_t begin, std::size_t end) {
    feedback_range(now_, lane, begin, end);
  };
  counts_body_ = [this](std::size_t begin, std::size_t end) {
    reduce_shard_counts(begin, end);
  };
  // Policy batching needs per-device policy isolation for the same reason
  // the executor does: the group loops assume a member's calls only touch
  // that member's state. Shared-state worlds keep the scalar reference path
  // in plain device-index order.
  use_batching_ = config_.policy_batching && device_local_policies;
  lane_scratch_.resize(static_cast<std::size_t>(
      executor_ ? executor_->thread_count() : 1));
  choose_chunks_body_ = [this](int lane, std::size_t begin, std::size_t end) {
    choose_chunks(now_, lane, begin, end);
  };
  feedback_chunks_body_ = [this](int lane, std::size_t begin, std::size_t end) {
    feedback_chunks(now_, lane, begin, end);
  };

  set_bandwidth_model(make_equal_share());
  delay_ = make_default_delay_model();
  counts_.assign(networks_.size(), 0);
  pending_.assign(pool_.size(), kNoNetwork);
  rate_cache_.assign(networks_.size(), 0.0);
  gain_cache_.assign(networks_.size(), 0.0);
  goodput_cache_.assign(networks_.size(), 0.0);
  fair_rate_cache_.assign(networks_.size(), 0.0);
  fair_gain_cache_.assign(networks_.size(), 0.0);
  fair_join_rate_cache_.assign(networks_.size(), 0.0);
  fair_join_gain_cache_.assign(networks_.size(), 0.0);

  // Collect the slots on which the per-device join/leave scan can possibly
  // do anything (negative join/leave slots never fire: slots are >= 0).
  for (const auto& s : pool_.spec) {
    if (s.join_slot >= 0) join_leave_slots_.push_back(s.join_slot);
    if (s.leave_slot >= 0) join_leave_slots_.push_back(s.leave_slot);
  }
  std::sort(join_leave_slots_.begin(), join_leave_slots_.end());
  join_leave_slots_.erase(
      std::unique(join_leave_slots_.begin(), join_leave_slots_.end()),
      join_leave_slots_.end());
}

void World::set_bandwidth_model(std::unique_ptr<BandwidthModel> model) {
  assert(model);
  bandwidth_ = std::move(model);
  shared_rates_ = bandwidth_->device_invariant_rate();
  bandwidth_prepare_stale_ = true;
}

void World::set_delay_model(std::unique_ptr<DelayModel> model) {
  assert(model);
  delay_ = std::move(model);
}

double World::unused_capacity_mbps(Slot t) const {
  double unused = 0.0;
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (counts_[i] == 0) unused += networks_[i].capacity(t);
  }
  return unused;
}

const std::vector<NetworkId>& World::visible_for(int area) const {
  // Linear scan: worlds have a handful of service areas, and coverage is
  // immutable after construction, so each area is computed exactly once.
  for (const auto& [cached_area, ids] : visible_cache_) {
    if (cached_area == area) return ids;
  }
  auto& entry = visible_cache_.emplace_back(area, std::vector<NetworkId>{});
  visible_networks_into(networks_, area, entry.second);
  return entry.second;
}

void World::join_device(std::size_t i, Slot) {
  if (!pool_.active[i]) ++active_count_;
  pool_.active[i] = 1;
  pool_.current[i] = kNoNetwork;
  pool_.policy[i]->set_networks(visible_for(pool_.area[i]));
  groups_dirty_ = true;
  bandwidth_prepare_stale_ = true;
}

void World::leave_device(std::size_t i, Slot t) {
  if (pool_.active[i]) --active_count_;
  pool_.active[i] = 0;
  pool_.current[i] = kNoNetwork;
  pool_.policy[i]->on_leave(t);
  // The batched choose path only visits active devices, so the departed
  // device's stale pick must be cleared here for the counts reduction.
  pending_[i] = kNoNetwork;
  groups_dirty_ = true;
}

// Rebuild every shard's policy groups, the cost-bounded chunk list and the
// per-lane chunk bounds. Runs on join/leave slots only; every piece of the
// result is a pure function of (active devices, shard split, policy types,
// cost hints, lane count), so the trajectory never depends on when or how
// often it runs.
void World::rebuild_policy_groups() {
  for (auto& sh : shards_) {
    for (auto& g : sh.groups) {
      g.members.clear();
      g.policies.clear();
      g.costs.clear();
    }
    for (std::size_t i = sh.begin; i < sh.end; ++i) {
      if (!pool_.active[i]) continue;
      core::Policy& p = *pool_.policy[i];
      const std::type_index type(typeid(p));
      PolicyGroup* group = nullptr;
      // Linear scan: worlds hold a handful of distinct policy types. Groups
      // are created in first-seen device order and never erased, so group
      // order is stable across rebuilds.
      for (auto& cand : sh.groups) {
        if (cand.type == type) {
          group = &cand;
          break;
        }
      }
      if (group == nullptr) {
        sh.groups.push_back(PolicyGroup{type, p.uses_batch_dispatch(), {}, {}, {}});
        group = &sh.groups.back();
      }
      group->members.push_back(i);
      group->policies.push_back(pool_.policy[i].get());
      group->costs.push_back(p.step_cost_hint());
    }
  }

  any_batched_ = false;
  for (const auto& sh : shards_) {
    for (const auto& g : sh.groups) any_batched_ |= g.batched && !g.members.empty();
  }

  // Chunks: contiguous member spans with summed cost near the budget, in
  // (shard, group, member) order. Boundaries are independent of the thread
  // count by construction — and chunk/shard boundaries never influence the
  // per-device math, only which lane executes it.
  chunks_.clear();
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const auto& sh = shards_[si];
    for (std::size_t gi = 0; gi < sh.groups.size(); ++gi) {
      const auto& g = sh.groups[gi];
      std::size_t begin = 0;
      while (begin < g.members.size()) {
        double cost = g.costs[begin];
        std::size_t end = begin + 1;
        while (end < g.members.size() && cost + g.costs[end] <= kChunkCostBudget) {
          cost += g.costs[end];
          ++end;
        }
        chunks_.push_back({static_cast<std::uint32_t>(si),
                           static_cast<std::uint32_t>(gi),
                           static_cast<std::uint32_t>(begin),
                           static_cast<std::uint32_t>(end), cost});
        begin = end;
      }
    }
  }

  // Lane bounds: split the chunk list into contiguous ranges whose summed
  // costs are as even as the chunk granularity allows (each chunk goes to
  // the lane whose cost quantile its midpoint falls into).
  const auto lanes = static_cast<std::size_t>(executor_ ? executor_->thread_count() : 1);
  lane_bounds_.assign(lanes + 1, chunks_.size());
  lane_bounds_[0] = 0;
  double total = 0.0;
  for (const auto& c : chunks_) total += c.cost;
  double cum = 0.0;
  std::size_t ci = 0;
  for (std::size_t w = 1; w < lanes; ++w) {
    const double target = total * static_cast<double>(w) / static_cast<double>(lanes);
    while (ci < chunks_.size() && cum + chunks_[ci].cost * 0.5 <= target) {
      cum += chunks_[ci].cost;
      ++ci;
    }
    lane_bounds_[w] = ci;
  }
  groups_dirty_ = false;
}

void World::apply_events(Slot t) {
  // Scripted capacity changes.
  while (next_capacity_ < scenario_.capacity_changes.size() &&
         scenario_.capacity_changes[next_capacity_].slot <= t) {
    const auto& ev = scenario_.capacity_changes[next_capacity_++];
    if (ev.slot == t) {
      auto& net = networks_.at(static_cast<std::size_t>(ev.network));
      net.base_capacity_mbps = ev.new_capacity_mbps;
      if (!net.trace.empty()) net.trace.clear();  // scripted change overrides trace
    }
  }

  // Joins / leaves from the device specs. The per-device scan only runs on
  // slots where one is actually scheduled (observability unchanged: on any
  // other slot the scan would be a no-op).
  bool join_leave_scheduled = false;
  while (next_join_leave_ < join_leave_slots_.size() &&
         join_leave_slots_[next_join_leave_] <= t) {
    join_leave_scheduled |= join_leave_slots_[next_join_leave_] == t;
    ++next_join_leave_;
  }
  if (join_leave_scheduled) {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (!pool_.active[i] && pool_.spec[i].join_slot == t) join_device(i, t);
      if (pool_.active[i] && pool_.spec[i].leave_slot >= 0 &&
          pool_.spec[i].leave_slot == t) {
        leave_device(i, t);
      }
    }
  }

  // Moves between service areas: the policy learns about it through a
  // change in its visible-network set.
  while (next_move_ < scenario_.moves.size() && scenario_.moves[next_move_].slot <= t) {
    const auto& ev = scenario_.moves[next_move_++];
    if (ev.slot != t) continue;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_.spec[i].id != ev.device) continue;
      if (pool_.area[i] == ev.new_area) break;
      pool_.area[i] = ev.new_area;
      if (pool_.active[i]) {
        const auto& visible = visible_for(pool_.area[i]);
        // If the device's current network no longer covers it, it is
        // disconnected before the policy re-plans.
        if (pool_.current[i] != kNoNetwork &&
            std::find(visible.begin(), visible.end(), pool_.current[i]) ==
                visible.end()) {
          pool_.current[i] = kNoNetwork;
        }
        pool_.policy[i]->set_networks(visible);
      }
      break;
    }
  }
}

// Choose phase body: all devices pick simultaneously (clients are
// time-synchronised in the paper's simulation setup). Device-local by
// construction — each policy owns its RNG and state — so disjoint ranges can
// run on different threads.
// The per-slot bodies below carry [[gnu::hot]] (and the snapshot paths
// [[gnu::cold]]) to pin text layout under LTO: without the partition, adding
// unrelated cold code (e.g. new snapshot overrides) reshuffles function
// placement and moves the per-policy bench numbers by double-digit percents.
[[gnu::hot]] void World::choose_range(Slot t, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    pending_[i] = kNoNetwork;
    if (!pool_.active[i]) continue;
    const NetworkId want = pool_.policy[i]->choose(t);
#ifndef NDEBUG
    const auto& nets = pool_.policy[i]->networks();
    assert(std::find(nets.begin(), nets.end(), want) != nets.end());
#endif
    pending_[i] = want;
  }
}

// Batched choose body: one virtual dispatch per chunk, then a tight
// monomorphic loop inside the policy's choose_batch override. The scatter
// back into pending_ keeps the counts phase oblivious to batching.
[[gnu::hot]] void World::choose_chunks(Slot t, int lane, std::size_t begin,
                                       std::size_t end) {
  LaneScratch& ls = lane_scratch_[static_cast<std::size_t>(lane)];
  for (std::size_t c = begin; c < end; ++c) {
    const PolicyChunk& ch = chunks_[c];
    PolicyGroup& g = shards_[ch.shard].groups[ch.group];
    const std::size_t n = ch.end - ch.begin;
    if (g.batched) {
      ls.choices.resize(n);
      g.policies[ch.begin]->choose_batch(t, g.policies.data() + ch.begin, n,
                                         ls.choices.data(), ls.batch);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = g.members[ch.begin + j];
        const NetworkId want = ls.choices[j];
#ifndef NDEBUG
        // Debug-only: the virtual networks() call must not run in release
        // builds (it alone is measurable on the per-device hot path).
        const auto& nets = pool_.policy[i]->networks();
        assert(std::find(nets.begin(), nets.end(), want) != nets.end());
#endif
        pending_[i] = want;
      }
    } else {
      // Direct dispatch: for policies without SoA kernels the gather/scatter
      // of the batch call costs more than the virtual calls it saves.
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = g.members[ch.begin + j];
        const NetworkId want = g.policies[ch.begin + j]->choose(t);
#ifndef NDEBUG
        const auto& nets = pool_.policy[i]->networks();
        assert(std::find(nets.begin(), nets.end(), want) != nets.end());
#endif
        pending_[i] = want;
      }
    }
  }
}

void World::phase_choose() {
  if (use_chunked_phases()) {
    if (executor_) {
      executor_->run_partitioned(lane_bounds_.data(), choose_chunks_body_);
    } else {
      choose_chunks(now_, 0, 0, chunks_.size());
    }
    return;
  }
  if (executor_) {
    executor_->run(pool_.size(), choose_body_);
  } else {
    choose_range(now_, 0, pool_.size());
  }
}

// Shard-local half of the counts barrier: reduce each shard's pending picks
// into its own occupancy vector. Writes are disjoint per shard, so the
// reduction can fan out over the executor lanes.
[[gnu::hot]] void World::reduce_shard_counts(std::size_t begin, std::size_t end) {
  for (std::size_t s = begin; s < end; ++s) {
    auto& sh = shards_[s];
    std::fill(sh.counts.begin(), sh.counts.end(), 0);
    for (std::size_t i = sh.begin; i < sh.end; ++i) {
      if (pending_[i] != kNoNetwork) {
        ++sh.counts[static_cast<std::size_t>(pending_[i])];
      }
    }
  }
}

// Counts phase: the only cross-device coupling of a slot. Each shard
// reduces its own range (parallelizable, disjoint writes), then the
// shard-local sums are added in fixed shard order — the occupancy-sum
// exchange, and the barrier between the choose and feedback phases.
// Occupancy is integer, so the shard-summed totals equal the single-loop
// totals exactly: the trajectory is bit-identical for every shard count.
// The shared caches are then computed from the totals in fixed network
// order, so their results never depend on thread count or scheduling.
void World::phase_counts() {
  const Slot t = now_;
  if (executor_ != nullptr && shards_.size() > 1) {
    executor_->run(shards_.size(), counts_body_);
  } else {
    reduce_shard_counts(0, shards_.size());
  }
  std::fill(counts_.begin(), counts_.end(), 0);
  for (const auto& sh : shards_) {
    for (std::size_t j = 0; j < counts_.size(); ++j) counts_[j] += sh.counts[j];
  }

  // For device-invariant bandwidth models (equal share) every device on a
  // network observes the same rate — and hence the same gain and, when it
  // did not switch, the same full-slot goodput — so each occupied network's
  // values are computed once per slot instead of once per device-slot.
  // Bit-identical: the exact divisions and multiplications the per-device
  // path would perform.
  if (shared_rates_) {
    for (std::size_t j = 0; j < networks_.size(); ++j) {
      if (counts_[j] > 0) {
        rate_cache_[j] = bandwidth_->rate(networks_[j], counts_[j], 0, t, rng_);
        gain_cache_[j] = std::clamp(rate_cache_[j] / gain_scale_, 0.0, 1.0);
        goodput_cache_[j] = mbps_seconds_to_mb(rate_cache_[j], config_.slot_seconds);
      }
    }
    // Fair-share counterfactuals for full-information feedback: network j's
    // fair share at its occupancy (read by the device occupying it) and at
    // occupancy + 1 (read by devices contemplating a join). Bit-identical
    // to the per-device calls these replace — same arguments, same
    // division, same clamp — just evaluated once per slot.
    if (any_full_info_) {
      for (std::size_t j = 0; j < networks_.size(); ++j) {
        fair_rate_cache_[j] = bandwidth_->fair_share(networks_[j], counts_[j], t);
        fair_gain_cache_[j] = std::clamp(fair_rate_cache_[j] / gain_scale_, 0.0, 1.0);
        fair_join_rate_cache_[j] =
            bandwidth_->fair_share(networks_[j], counts_[j] + 1, t);
        fair_join_gain_cache_[j] =
            std::clamp(fair_join_rate_cache_[j] / gain_scale_, 0.0, 1.0);
      }
    }
  }
}

// Feedback phase body: per-device outcomes and policy observation. Reads
// shared slot state (counts, caches, networks) and writes only device-local
// state; switching delay comes from the device's own RNG stream, so disjoint
// ranges can run on different threads without perturbing the trajectory.
// The delay models sample by inverse CDF — exactly one 64-bit RNG output
// per draw, no rejection loops — so a device's delay stream position is a
// pure function of how many switches it has made, independent of the
// sampled values themselves (DESIGN.md §3).
// Force-inlined into both feedback bodies: this is the engine's per-device
// hot loop, and an out-of-line call here costs several percent of engine
// throughput for the cheap policies.
__attribute__((always_inline)) inline void World::fill_device_feedback(
    Slot t, std::size_t i, core::SlotFeedback& fb) {
  const NetworkId chosen = pending_[i];
  const auto c = static_cast<std::size_t>(chosen);
  const NetworkId prev = pool_.current[i];
  const bool switched = prev != kNoNetwork && prev != chosen;

  fb.switched = switched;
  fb.delay_s =
      switched ? std::min(delay_->sample(networks_[c], pool_.delay_rng[i]),
                          config_.slot_seconds)
               : 0.0;
  if (shared_rates_) {
    fb.bit_rate_mbps = rate_cache_[c];
    fb.gain = gain_cache_[c];
    // A delay-free slot's goodput is the cached full-slot value
    // (slot_seconds - 0.0 is exactly slot_seconds).
    fb.goodput_mb = switched ? mbps_seconds_to_mb(fb.bit_rate_mbps,
                                                  config_.slot_seconds - fb.delay_s)
                             : goodput_cache_[c];
  } else {
    fb.bit_rate_mbps =
        bandwidth_->rate(networks_[c], counts_[c], pool_.spec[i].id, t, rng_);
    fb.gain = std::clamp(fb.bit_rate_mbps / gain_scale_, 0.0, 1.0);
    fb.goodput_mb =
        mbps_seconds_to_mb(fb.bit_rate_mbps, config_.slot_seconds - fb.delay_s);
  }

  if (pool_.wants_full_info[i]) {
    // Full-information feedback: what the device would have observed on
    // each visible network this slot (fair-share counterfactual: joining a
    // network it is not on adds itself to that network's load). Only
    // computed for policies that consume it — an O(devices x networks)
    // pass the bandit policies skip entirely.
    const auto& nets = *pool_.policy_nets[i];
    fb.all_rates_mbps.resize(nets.size());
    fb.all_gains.resize(nets.size());
    if (shared_rates_) {
      // Read the per-slot fair-share caches computed in phase_counts.
      for (std::size_t j = 0; j < nets.size(); ++j) {
        const auto n = static_cast<std::size_t>(nets[j]);
        const bool occupying = nets[j] == chosen;
        fb.all_rates_mbps[j] =
            occupying ? fair_rate_cache_[n] : fair_join_rate_cache_[n];
        fb.all_gains[j] = occupying ? fair_gain_cache_[n] : fair_join_gain_cache_[n];
      }
    } else {
      for (std::size_t j = 0; j < nets.size(); ++j) {
        const auto& other = networks_[static_cast<std::size_t>(nets[j])];
        const int load =
            counts_[static_cast<std::size_t>(nets[j])] + (nets[j] == chosen ? 0 : 1);
        fb.all_rates_mbps[j] = bandwidth_->fair_share(other, load, t);
        fb.all_gains[j] = std::clamp(fb.all_rates_mbps[j] / gain_scale_, 0.0, 1.0);
      }
    }
  } else {
    fb.all_rates_mbps.clear();
    fb.all_gains.clear();
  }

  pool_.last_rate_mbps[i] = fb.bit_rate_mbps;
  pool_.last_gain[i] = fb.gain;
  pool_.last_switched[i] = switched ? 1 : 0;
  pool_.download_mb[i] += fb.goodput_mb;
  // delay_s is exactly 0 without a switch, so the loss term would add 0.0.
  if (switched) {
    pool_.delay_loss_mb[i] += mbps_seconds_to_mb(fb.bit_rate_mbps, fb.delay_s);
  }
  pool_.switches[i] += switched ? 1 : 0;
  pool_.slots_active[i] += 1;
  pool_.current[i] = chosen;
}

[[gnu::hot]] void World::feedback_range(Slot t, int lane, std::size_t begin,
                                        std::size_t end) {
  // One feedback struct per lane, reused device after device: scratch
  // scales with the lane count, not the device count, and its vectors keep
  // their capacity across slots (no per-device-slot allocation).
  core::SlotFeedback& fb = lane_scratch_[static_cast<std::size_t>(lane)].fb;
  for (std::size_t i = begin; i < end; ++i) {
    if (!pool_.active[i]) continue;
    fill_device_feedback(t, i, fb);
    pool_.policy[i]->observe(t, fb);
  }
}

// Batched feedback body: the engine half runs per device as before, then
// the whole chunk's observations go through one observe_batch dispatch —
// which is where the EXP3-family policies pack their weight-update deltas
// for a single vexp sweep.
[[gnu::hot]] void World::feedback_chunks(Slot t, int lane, std::size_t begin,
                                         std::size_t end) {
  LaneScratch& ls = lane_scratch_[static_cast<std::size_t>(lane)];
  for (std::size_t c = begin; c < end; ++c) {
    const PolicyChunk& ch = chunks_[c];
    PolicyGroup& g = shards_[ch.shard].groups[ch.group];
    const std::size_t n = ch.end - ch.begin;
    if (g.batched) {
      // observe_batch consumes the whole chunk at once, so the lane keeps a
      // feedback struct per chunk member (grown monotonically: shrinking
      // would drop the inner vectors' capacities).
      ls.feedbacks.resize(n);
      if (ls.fb_pool.size() < n) ls.fb_pool.resize(n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = g.members[ch.begin + j];
        fill_device_feedback(t, i, ls.fb_pool[j]);
        ls.feedbacks[j] = &ls.fb_pool[j];
      }
      g.policies[ch.begin]->observe_batch(t, g.policies.data() + ch.begin,
                                          ls.feedbacks.data(), n, ls.batch);
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = g.members[ch.begin + j];
        fill_device_feedback(t, i, ls.fb);
        g.policies[ch.begin + j]->observe(t, ls.fb);
      }
    }
  }
}

void World::phase_feedback() {
  // Bandwidth models whose rate() is not a pure read must keep the feedback
  // phase serial. Device-invariant models qualify through the per-network
  // caches; others (noisy share) qualify once prepare_slot() has
  // materialised their lazy per-device / per-network state, which they
  // advertise via parallel_rate_safe(). The trajectory is identical either
  // way — rate() reads the same materialised state in the same per-device
  // places the serial path would.
  // The chunked body visits devices in group order, not index order, which
  // is only trajectory-neutral when rate() never consumes the shared world
  // rng during the phase: device-invariant models never call it per device
  // (cached in phase_counts) and prepare_slot-materialised models promise a
  // pure read via parallel_rate_safe(). Any other model keeps the scalar
  // body, whose rng consumption order is the fixed device order.
  const bool parallel_ok = feedback_parallel();
  const bool rate_order_free = shared_rates_ || bandwidth_->parallel_rate_safe();
  if (use_chunked_phases() && rate_order_free) {
    if (parallel_ok) {
      executor_->run_partitioned(lane_bounds_.data(), feedback_chunks_body_);
    } else {
      feedback_chunks(now_, 0, 0, chunks_.size());
    }
    return;
  }
  if (parallel_ok) {
    executor_->run(pool_.size(), feedback_body_);
  } else {
    feedback_range(now_, 0, 0, pool_.size());
  }
}

[[gnu::hot]] void World::step() {
  if (done()) return;
  const Slot t = now_;
  apply_events(t);
  if (use_batching_ && groups_dirty_) rebuild_policy_groups();
  bandwidth_->begin_slot(t, rng_);
  if (!shared_rates_ && bandwidth_prepare_stale_) {
    // Give non-device-invariant models the chance to materialise their lazy
    // per-device / per-network state while still serial (the ids arrive in
    // fixed device order, reproducing the serial path's first-touch order),
    // so the feedback phase can fan out for them too. Materialisation is
    // idempotent, so it only needs to run again when the active set (or the
    // model) changed.
    active_ids_scratch_.clear();
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_.active[i]) active_ids_scratch_.push_back(pool_.spec[i].id);
    }
    bandwidth_->prepare_slot(networks_, active_ids_scratch_);
    bandwidth_prepare_stale_ = false;
  }
  phase_choose();
  phase_counts();
  phase_feedback();
  if (observer_ != nullptr) observer_->on_slot_end(t, *this);
  ++now_;
}

void World::run() {
  while (!done()) step();
  if (observer_ != nullptr) observer_->on_run_end(*this);
}

[[gnu::cold]] void World::snapshot_into(core::StateWriter& w) const {
  w.section(0x57524c44u);  // "WRLD"
  w.i64(now_);
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  // Event cursors: where the next apply_events() resumes in the (normalised,
  // hence deterministically ordered) scenario event lists.
  w.u64(next_capacity_);
  w.u64(next_join_leave_);
  w.u64(next_move_);
  // Networks can be mutated mid-run by scripted capacity changes (new base
  // capacity, trace cleared); everything else about them is construction
  // state the restored world already has.
  w.u64(networks_.size());
  for (const auto& net : networks_) {
    w.f64(net.base_capacity_mbps);
    w.b(net.trace.empty());
  }
  bandwidth_->snapshot_into(w);
  // Devices in global index order: the stream layout never depends on the
  // shard count (or any other execution knob), so snapshots round-trip
  // across (shards, threads) combinations — and across the AoS layout this
  // pool replaced.
  w.u64(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    w.b(pool_.active[i] != 0);
    w.i64(pool_.area[i]);
    w.i64(pool_.current[i]);
    w.f64(pool_.last_rate_mbps[i]);
    w.f64(pool_.last_gain[i]);
    w.b(pool_.last_switched[i] != 0);
    w.f64(pool_.download_mb[i]);
    w.f64(pool_.delay_loss_mb[i]);
    w.i64(pool_.switches[i]);
    w.i64(pool_.slots_active[i]);
    for (const std::uint64_t word : pool_.delay_rng[i].state_words()) w.u64(word);
    pool_.policy[i]->snapshot_into(w);
  }
}

[[gnu::cold]] void World::restore_from(core::StateReader& r) {
  r.section(0x57524c44u, "world");
  const auto slot = static_cast<Slot>(r.i64());
  if (slot < 0 || slot > config_.horizon) {
    throw core::SnapshotError("world snapshot slot outside this world's horizon");
  }
  now_ = slot;
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  rng_.set_state_words(rng_state);
  next_capacity_ = r.u64();
  next_join_leave_ = r.u64();
  next_move_ = r.u64();
  if (next_capacity_ > scenario_.capacity_changes.size() ||
      next_join_leave_ > join_leave_slots_.size() || next_move_ > scenario_.moves.size()) {
    throw core::SnapshotError("world snapshot event cursor out of range");
  }
  if (r.count("world networks") != networks_.size()) {
    throw core::SnapshotError("world snapshot network count mismatch");
  }
  for (auto& net : networks_) {
    net.base_capacity_mbps = r.f64();
    if (r.b()) net.trace.clear();
  }
  bandwidth_->restore_from(r);
  if (r.count("world devices") != pool_.size()) {
    throw core::SnapshotError("world snapshot device count mismatch");
  }
  active_count_ = 0;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_.active[i] = r.b() ? 1 : 0;
    if (pool_.active[i]) ++active_count_;
    pool_.area[i] = static_cast<int>(r.i64());
    pool_.current[i] = static_cast<NetworkId>(r.i64());
    pool_.last_rate_mbps[i] = r.f64();
    pool_.last_gain[i] = r.f64();
    pool_.last_switched[i] = r.b() ? 1 : 0;
    pool_.download_mb[i] = r.f64();
    pool_.delay_loss_mb[i] = r.f64();
    pool_.switches[i] = static_cast<int>(r.i64());
    pool_.slots_active[i] = static_cast<int>(r.i64());
    std::array<std::uint64_t, 4> delay_state;
    for (auto& word : delay_state) word = r.u64();
    pool_.delay_rng[i].set_state_words(delay_state);
    // The policy's restore re-establishes its own network set; calling
    // set_networks() here would run adaptation rules (weight resets, reseeds)
    // on the checkpointed state and fork the trajectory.
    pool_.policy[i]->restore_from(r);
    pending_[i] = kNoNetwork;
  }
  // Derived execution state is rebuilt lazily from the restored inputs: the
  // policy groups on the next step, the bandwidth model's materialised
  // per-device state on the next prepare (idempotent after restore_from),
  // and the per-slot caches in the next counts phase.
  groups_dirty_ = true;
  bandwidth_prepare_stale_ = true;
}

}  // namespace smartexp3::netsim
