// Fundamental identifiers and constants shared across the simulator.
#pragma once

#include <cstdint>

namespace smartexp3 {

/// Identifier of a wireless network (index into the world's network table).
using NetworkId = int;
/// Identifier of a mobile device.
using DeviceId = int;
/// Time-slot index (slots are kSlotSeconds long; the paper uses 15 s).
using Slot = int;

/// Sentinel: device not (yet) associated with any network.
inline constexpr NetworkId kNoNetwork = -1;

/// Default slot duration, seconds (paper §V: longer than the maximum
/// switching delay observed in their real-world experiments).
inline constexpr double kDefaultSlotSeconds = 15.0;

/// Megabits-per-second times seconds, converted to megabytes.
inline constexpr double mbps_seconds_to_mb(double mbps, double seconds) {
  return mbps * seconds / 8.0;
}

}  // namespace smartexp3
