// Centralized baseline (paper Table II): an omniscient coordinator that
// keeps all participating devices at a Nash-equilibrium allocation. It is
// not implementable without infrastructure support; the paper includes it as
// the optimal reference. Devices sharing a CentralizedCoordinator register
// on arrival and are (re)assigned with a minimum number of moves whenever
// membership changes, so in a static setting the baseline performs zero
// switches after the first slot.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/policy.hpp"

namespace smartexp3::core {

class CentralizedCoordinator {
 public:
  /// `capacities[i]` is the capacity (Mbps) of network id i. The coordinator
  /// assumes all registered devices can reach all networks (true for the
  /// static settings the paper evaluates it on).
  explicit CentralizedCoordinator(std::vector<double> capacities);

  void register_device(DeviceId id);
  void deregister_device(DeviceId id);

  /// Current network assignment for a registered device. Recomputes the
  /// allocation lazily after membership changes.
  NetworkId assignment(DeviceId id);

  int device_count() const { return static_cast<int>(assignment_.size()); }

  /// Checkpoint the registration table and the laziness flag. Every sharing
  /// device serializes the full coordinator state (it is tiny), and restore
  /// is idempotent — the world restores devices in id order and each
  /// overwrite writes the same content.
  void snapshot_into(StateWriter& w) const;
  void restore_from(StateReader& r);

 private:
  void rebalance();

  std::vector<double> capacities_;
  std::map<DeviceId, NetworkId> assignment_;  // ordered => deterministic
  bool dirty_ = false;
};

class CentralizedPolicy final : public Policy {
 public:
  CentralizedPolicy(DeviceId id, std::shared_ptr<CentralizedCoordinator> coordinator);
  ~CentralizedPolicy() override;

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot, const SlotFeedback&) override {}
  /// Every centralized device of a world shares one coordinator, whose lazy
  /// rebalance mutates on choose(): the world must not fan these out.
  bool shares_state_across_devices() const override { return true; }
  void snapshot_into(StateWriter& w) const override;
  void restore_from(StateReader& r) override;
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override { return nets_; }
  void on_leave(Slot t) override;
  std::string name() const override { return "centralized"; }

 private:
  DeviceId id_;
  std::shared_ptr<CentralizedCoordinator> coordinator_;
  std::vector<NetworkId> nets_;
  bool registered_ = false;
};

}  // namespace smartexp3::core
