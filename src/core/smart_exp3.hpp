// Smart EXP3 — the paper's contribution (Algorithm 1 + §V implementation
// details): adaptive blocking, initial exploration, coin-flip greedy
// selections while the distribution is near-uniform, switch-back after bad
// first slots, and a minimal reset mechanism (periodic and on sustained gain
// drops) that retains learned weights while re-enabling exploration.
#pragma once

#include "core/block_policy.hpp"

namespace smartexp3::core {

/// Tunables of Smart EXP3 beyond the defaults. All paper §V values are the
/// defaults of BlockPolicyOptions; this struct exists so ablation benches
/// and downstream users can deviate deliberately.
struct SmartExp3Tunables {
  double beta = 0.1;
  bool enable_reset = true;        ///< false = "Smart EXP3 w/o Reset"
  bool enable_switch_back = true;
  bool enable_greedy = true;
  bool enable_explore_first = true;
  double reset_prob_threshold = 0.75;
  int reset_block_len = 40;
  double drop_fraction = 0.15;
  int drop_slots = 4;
  int switch_back_window = 8;
};

class SmartExp3 final : public BlockPolicy {
 public:
  explicit SmartExp3(std::uint64_t seed, SmartExp3Tunables tunables = {});
};

/// Convenience: the "Smart EXP3 w/o Reset" variant used throughout §VI.
SmartExp3Tunables smart_exp3_no_reset();

}  // namespace smartexp3::core
