#include "core/hybrid_block_exp3.hpp"

namespace smartexp3::core {

namespace {
BlockPolicyOptions hybrid_options(double beta) {
  BlockPolicyOptions o;
  o.beta = beta;
  o.explore_first = true;
  o.greedy = true;
  return o;
}
}  // namespace

HybridBlockExp3::HybridBlockExp3(std::uint64_t seed, double beta)
    : BlockPolicy(seed, hybrid_options(beta), "hybrid_block_exp3") {}

}  // namespace smartexp3::core
