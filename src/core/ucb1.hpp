// UCB1 (Auer, Cesa-Bianchi, Fischer 2002) — a *stochastic* bandit baseline.
//
// Not part of the paper's Table II, but the paper contrasts its adversarial
// formulation with stochastic-bandit approaches to network selection (§VIII,
// [36]); this implementation makes that contrast measurable: UCB1's
// optimism-under-stationarity assumption is violated by congestion (other
// devices are adversaries) and by drifting network quality, so it serves as
// the canonical "wrong model" baseline in the extension benches.
#pragma once

#include "core/policy.hpp"
#include "stats/rng.hpp"

namespace smartexp3::core {

class Ucb1Policy final : public Policy {
 public:
  struct Options {
    /// Exploration strength in the confidence radius sqrt(c * ln t / n_i).
    /// The classic constant is 2.
    double c = 2.0;
  };

  explicit Ucb1Policy(std::uint64_t seed);
  Ucb1Policy(std::uint64_t seed, Options options);

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot t, const SlotFeedback& fb) override;
  /// Per-slot argmax over per-arm log/sqrt confidence radii.
  double step_cost_hint() const override { return 1.4; }
  void snapshot_into(StateWriter& w) const override;
  void restore_from(StateReader& r) override;
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override { return nets_; }
  std::string name() const override { return "ucb1"; }

  /// Current upper confidence bound of arm i (exposed for tests).
  double ucb(std::size_t i) const;

 private:
  std::size_t best_ucb_index();

  Options options_;
  stats::Rng rng_;
  std::vector<NetworkId> nets_;
  std::vector<double> gain_sum_;
  std::vector<long> pulls_;
  long total_pulls_ = 0;
  int chosen_ = -1;
  std::vector<std::size_t> ties_scratch_;  // reused by choose(); no per-slot alloc
};

}  // namespace smartexp3::core
