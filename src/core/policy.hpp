// The network-selection policy interface.
//
// A Policy is the per-device decision maker: every slot the world asks it
// which network to use (`choose`) and afterwards reports what happened
// (`observe`). Policies never see other devices or the world directly — the
// only coupling between devices is through the congestion they create, which
// is exactly the bandit feedback model of the paper (§II-B).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netsim/types.hpp"

namespace smartexp3::core {

// Checkpoint archive cursors (core/snapshot.hpp); the interface only passes
// them through by reference, so a forward declaration keeps the archive
// machinery out of every policy user's translation unit.
class StateWriter;
class StateReader;

/// Everything a device learns about the slot that just finished.
struct SlotFeedback {
  /// Bit rate observed on the chosen network (Mbps).
  double bit_rate_mbps = 0.0;
  /// The same rate scaled into [0, 1] by the world's gain scale — the gain
  /// `g_i(t)` of the paper's formulation. Deliberately ignores switching
  /// delay (§II-B item 4).
  double gain = 0.0;
  /// True if this slot began with a network switch.
  bool switched = false;
  /// Association delay paid at the start of the slot (seconds; 0 if no
  /// switch).
  double delay_s = 0.0;
  /// Data actually downloaded this slot (megabytes), i.e. goodput after the
  /// switching delay.
  double goodput_mb = 0.0;
  /// Full-information feedback: for every *visible* network (in the order of
  /// Policy::networks()) the rate the device would have observed there this
  /// slot. The world only computes and fills this for policies whose
  /// feedback_needs() is kFullInformation; bandit policies receive it empty.
  std::vector<double> all_rates_mbps;
  /// Scaled version of all_rates_mbps (same indexing), in [0, 1].
  std::vector<double> all_gains;
};

/// What slot feedback a policy consumes. The world uses this to skip the
/// O(visible networks) full-information counterfactual (a fair-share pass
/// per device-slot) for the bandit policies, which never read it.
enum class FeedbackNeeds {
  /// Only the fields about the chosen network (gain, bit rate, delay,
  /// goodput). `all_rates_mbps` / `all_gains` arrive empty.
  kBandit,
  /// Additionally the per-network counterfactual vectors.
  kFullInformation,
};

/// Counters a policy maintains about its own mechanisms, used by the
/// experiment reports (e.g. reset and switch-back counts of Smart EXP3).
struct PolicyStats {
  int blocks_started = 0;
  int greedy_selections = 0;
  int switch_backs = 0;
  int resets = 0;
};

/// Reusable scratch handed to the batch entry points below. Owned by the
/// engine (one per execution lane), never shared between concurrent batch
/// calls; a policy's batch override may use the buffers freely for SoA
/// packing (e.g. gathering every device's weight-update deltas for one
/// stats::vexp sweep). Capacity persists across slots, so steady-state batch
/// calls are allocation-free once the buffers have grown to the largest
/// chunk handled by the lane.
struct BatchScratch {
  std::vector<double> a;
  std::vector<double> b;
};

class Policy {
 public:
  virtual ~Policy() = default;

  /// Install / update the set of visible networks (sorted by the world in
  /// network-table order). The first call initialises the policy; later
  /// calls signal a change in the environment (device moved, networks
  /// (dis)appeared) and trigger each policy's adaptation rules.
  virtual void set_networks(const std::vector<NetworkId>& available) = 0;

  /// The network to use during slot `t`. Must be one of networks().
  virtual NetworkId choose(Slot t) = 0;

  /// Feedback for slot `t` (the slot chosen by the immediately preceding
  /// choose() call).
  virtual void observe(Slot t, const SlotFeedback& fb) = 0;

  // ---- batched execution (policy-group hot path) ----
  //
  // The world groups devices by concrete policy type and drives each group
  // through these two entry points, called on one member of the group with
  // the whole group's policy pointers. Every pointer in `policies` refers to
  // an object of the receiver's dynamic type, so a final class may
  // static_cast and run a tight monomorphic loop (one virtual dispatch per
  // chunk instead of one per device) and may pack per-device state into
  // `scratch` for SIMD kernels. Overrides MUST be observably equivalent to
  // the scalar defaults below — the engine's batch and scalar paths are
  // pinned bit-identical against each other (tests/test_batch_vs_scalar.cpp).

  /// out[j] = policies[j]->choose(t) for j in [0, n).
  virtual void choose_batch(Slot t, Policy* const* policies, std::size_t n,
                            NetworkId* out, BatchScratch& /*scratch*/) {
    for (std::size_t j = 0; j < n; ++j) out[j] = policies[j]->choose(t);
  }

  /// policies[j]->observe(t, *feedbacks[j]) for j in [0, n).
  virtual void observe_batch(Slot t, Policy* const* policies,
                             const SlotFeedback* const* feedbacks, std::size_t n,
                             BatchScratch& /*scratch*/) {
    for (std::size_t j = 0; j < n; ++j) policies[j]->observe(t, *feedbacks[j]);
  }

  /// True when this type's batch overrides beat per-device dispatch (they
  /// pack cross-device state for SIMD kernels, as the EXP3-family weight
  /// updates do). The engine only pays the batch call's gather/scatter
  /// around groups that opt in; everyone else runs direct per-device calls
  /// inside the same chunked partition, which profiling shows is faster for
  /// policies whose per-slot work is a few nanoseconds. Must be constant
  /// over the policy's lifetime.
  virtual bool uses_batch_dispatch() const { return false; }

  /// Static relative cost of stepping one device of this policy for one slot
  /// (choose + observe), in arbitrary units where a simple bookkeeping
  /// policy is ~1. Consumed by the world's cost-model chunked partition so
  /// expensive devices (full information is ~4x a greedy device) spread
  /// across executor lanes instead of piling onto one. Purely an execution
  /// hint: it must be constant over the policy's lifetime and never affects
  /// the trajectory.
  virtual double step_cost_hint() const { return 1.0; }

  /// Which feedback fields observe() consumes. The world only fills the
  /// counterfactual vectors for kFullInformation policies; everyone else
  /// receives them empty. Must be constant over the policy's lifetime.
  virtual FeedbackNeeds feedback_needs() const { return FeedbackNeeds::kBandit; }

  /// True when choose()/observe() touch state shared with other devices'
  /// policies (the centralized coordinator). The world runs its
  /// device-parallel phases serially whenever any device's policy reports
  /// this — shared state has no per-device isolation to exploit. Must be
  /// constant over the policy's lifetime.
  virtual bool shares_state_across_devices() const { return false; }

  /// Write the current mixed strategy over networks() into `out`, resized
  /// and aligned index-for-index. Deterministic policies produce a one-hot
  /// vector. Used by the stability detector (paper Definition 2), which
  /// calls it every device-slot: implementations must not allocate once
  /// out's capacity has reached networks().size().
  virtual void probabilities_into(std::vector<double>& out) const = 0;

  /// Allocating convenience wrapper around probabilities_into().
  std::vector<double> probabilities() const {
    std::vector<double> p;
    probabilities_into(p);
    return p;
  }

  /// Currently visible networks, aligned with probabilities(). The returned
  /// reference must denote a vector *object* that is stable for the
  /// policy's lifetime — only its contents may change across
  /// set_networks() — because the engine caches the address per device to
  /// avoid a virtual call per device-slot.
  virtual const std::vector<NetworkId>& networks() const = 0;

  /// Called when the device leaves the service area (used by the
  /// centralized baseline to release its allocation slot).
  virtual void on_leave(Slot /*t*/) {}

  virtual PolicyStats stats() const { return {}; }

  virtual std::string name() const = 0;

  /// Append every piece of state a resumed run needs to `w` — learning
  /// state, RNG positions, phase counters. The default is an intentional
  /// no-op (a stateless policy has nothing to save), so minimal test stubs
  /// keep working; every factory policy overrides both methods, and the
  /// snapshot round-trip tests pin that a restore mid-run continues the
  /// trajectory bit-identically. restore_from must consume exactly the
  /// words snapshot_into wrote, on a policy constructed from the same
  /// config (same options and device seed); it throws SnapshotError when
  /// the stream does not match. Declared last so the checkpoint additions
  /// sit at the tail of the vtable, after the slots the engine loop hits.
  virtual void snapshot_into(StateWriter& /*w*/) const {}
  virtual void restore_from(StateReader& /*r*/) {}
};

}  // namespace smartexp3::core
