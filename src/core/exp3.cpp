#include "core/exp3.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "core/snapshot.hpp"

#include "stats/vexp.hpp"

namespace smartexp3::core {

Exp3::Exp3(std::uint64_t seed) : Exp3(seed, Options{}) {}

Exp3::Exp3(std::uint64_t seed, Options options) : options_(options), rng_(seed) {}

double Exp3::current_gamma() const {
  if (options_.fixed_gamma > 0.0) return std::min(options_.fixed_gamma, 1.0);
  return gamma_schedule(selections_ + 1);
}

void Exp3::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("Exp3: empty network set");
  if (nets_.empty()) {
    nets_ = available;
    weights_.reset(nets_.size());
    return;
  }
  // Environment change: keep the learned weight of every retained network,
  // start newly discovered networks at absolute weight 1 — tiny relative to
  // long-trained favourites, exactly as in unnormalised textbook EXP3.
  WeightTable next;
  next.set_offset(weights_.offset());
  std::vector<NetworkId> next_nets;
  next_nets.reserve(available.size());
  for (const NetworkId id : available) {
    const auto it = std::find(nets_.begin(), nets_.end(), id);
    next_nets.push_back(id);
    if (it != nets_.end()) {
      next.push_back(weights_.log_weight(static_cast<std::size_t>(it - nets_.begin())));
    } else {
      next.push_back(weights_.relative_of_unit_weight());
    }
  }
  nets_ = std::move(next_nets);
  weights_ = std::move(next);
  weights_.normalise();
  chosen_ = -1;  // a pending observation no longer maps to a valid index
}

[[gnu::hot]] NetworkId Exp3::choose(Slot) {
  assert(!nets_.empty());
  gamma_used_ = current_gamma();
  // Fused probabilities + draw: same per-arm probability arithmetic and the
  // same single uniform as probabilities_into + sample_discrete, without
  // materialising the distribution.
  const std::size_t idx = weights_.sample(gamma_used_, rng_, p_chosen_);
  chosen_ = static_cast<int>(idx);
  ++selections_;
  return nets_[idx];
}

[[gnu::hot]] void Exp3::observe(Slot, const SlotFeedback& fb) {
  if (chosen_ < 0) return;  // network set changed between choose and observe
  // Importance-weighted gain estimate and multiplicative update (paper
  // Algorithm 1 lines 11-12 with block length 1). The multiplicative factor
  // goes through the vexp kernel so the scalar and batched paths produce the
  // same bits (observe_batch runs the identical per-element kernel over the
  // group's packed deltas).
  const double delta = update_delta(fb);
  weights_.bump_with_factor(static_cast<std::size_t>(chosen_), delta,
                            stats::vexp_one(delta));
  weights_.maybe_normalise();
  chosen_ = -1;
}

void Exp3::choose_batch(Slot t, Policy* const* policies, std::size_t n,
                        NetworkId* out, BatchScratch&) {
  // Exp3 is final: the casted call devirtualizes into a tight group loop.
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = static_cast<Exp3*>(policies[j])->choose(t);
  }
}

void Exp3::observe_batch(Slot, Policy* const* policies,
                         const SlotFeedback* const* feedbacks, std::size_t n,
                         BatchScratch& scratch) {
  // SoA pass 1: every device's update delta (pure arithmetic, no exp).
  // Devices whose network set changed mid-slot (chosen_ < 0) contribute a
  // dummy 0 so the packed buffer stays index-aligned with the group.
  scratch.a.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto& p = *static_cast<Exp3*>(policies[j]);
    scratch.a[j] = p.chosen_ < 0 ? 0.0 : p.update_delta(*feedbacks[j]);
  }
  // One vectorized exp sweep across the whole group...
  scratch.b.resize(n);
  stats::vexp(scratch.a.data(), scratch.b.data(), n);
  // ...and pass 2 applies the precomputed factors.
  for (std::size_t j = 0; j < n; ++j) {
    auto& p = *static_cast<Exp3*>(policies[j]);
    if (p.chosen_ < 0) continue;
    p.weights_.bump_with_factor(static_cast<std::size_t>(p.chosen_), scratch.a[j],
                                scratch.b[j]);
    p.weights_.maybe_normalise();
    p.chosen_ = -1;
  }
}

[[gnu::cold]] void Exp3::snapshot_into(StateWriter& w) const {
  w.section(0x45585033u);  // "EXP3"
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(nets_.size());
  for (const NetworkId n : nets_) w.i64(n);
  weights_.snapshot_into(w);
  w.i64(selections_);
  w.i64(chosen_);
  w.f64(p_chosen_);
  w.f64(gamma_used_);
}

[[gnu::cold]] void Exp3::restore_from(StateReader& r) {
  r.section(0x45585033u, "exp3");
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  rng_.set_state_words(rng_state);
  nets_.resize(r.count("exp3 networks"));
  for (NetworkId& n : nets_) n = static_cast<NetworkId>(r.i64());
  weights_.restore_from(r);
  if (weights_.size() != nets_.size()) {
    throw SnapshotError("exp3 weight table size mismatch");
  }
  selections_ = static_cast<long>(r.i64());
  chosen_ = static_cast<int>(r.i64());
  p_chosen_ = r.f64();
  gamma_used_ = r.f64();
}

void Exp3::probabilities_into(std::vector<double>& out) const {
  if (nets_.empty()) {
    out.clear();
    return;
  }
  weights_.probabilities_into(current_gamma(), out);
}

}  // namespace smartexp3::core
