#include "core/exp3.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace smartexp3::core {

Exp3::Exp3(std::uint64_t seed) : Exp3(seed, Options{}) {}

Exp3::Exp3(std::uint64_t seed, Options options) : options_(options), rng_(seed) {}

double Exp3::current_gamma() const {
  if (options_.fixed_gamma > 0.0) return std::min(options_.fixed_gamma, 1.0);
  return gamma_schedule(selections_ + 1);
}

void Exp3::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("Exp3: empty network set");
  if (nets_.empty()) {
    nets_ = available;
    weights_.reset(nets_.size());
    return;
  }
  // Environment change: keep the learned weight of every retained network,
  // start newly discovered networks at absolute weight 1 — tiny relative to
  // long-trained favourites, exactly as in unnormalised textbook EXP3.
  WeightTable next;
  next.set_offset(weights_.offset());
  std::vector<NetworkId> next_nets;
  next_nets.reserve(available.size());
  for (const NetworkId id : available) {
    const auto it = std::find(nets_.begin(), nets_.end(), id);
    next_nets.push_back(id);
    if (it != nets_.end()) {
      next.push_back(weights_.log_weight(static_cast<std::size_t>(it - nets_.begin())));
    } else {
      next.push_back(weights_.relative_of_unit_weight());
    }
  }
  nets_ = std::move(next_nets);
  weights_ = std::move(next);
  weights_.normalise();
  chosen_ = -1;  // a pending observation no longer maps to a valid index
}

NetworkId Exp3::choose(Slot) {
  assert(!nets_.empty());
  gamma_used_ = current_gamma();
  // Fused probabilities + draw: same per-arm probability arithmetic and the
  // same single uniform as probabilities_into + sample_discrete, without
  // materialising the distribution.
  const std::size_t idx = weights_.sample(gamma_used_, rng_, p_chosen_);
  chosen_ = static_cast<int>(idx);
  ++selections_;
  return nets_[idx];
}

void Exp3::observe(Slot, const SlotFeedback& fb) {
  if (chosen_ < 0) return;  // network set changed between choose and observe
  // Importance-weighted gain estimate and multiplicative update (paper
  // Algorithm 1 lines 11-12 with block length 1).
  const double ghat = fb.gain / std::max(p_chosen_, 1e-12);
  weights_.bump(static_cast<std::size_t>(chosen_),
                gamma_used_ * ghat / static_cast<double>(nets_.size()));
  weights_.maybe_normalise();
  chosen_ = -1;
}

void Exp3::probabilities_into(std::vector<double>& out) const {
  if (nets_.empty()) {
    out.clear();
    return;
  }
  weights_.probabilities_into(current_gamma(), out);
}

}  // namespace smartexp3::core
