#include "core/ucb1.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/snapshot.hpp"

namespace smartexp3::core {

Ucb1Policy::Ucb1Policy(std::uint64_t seed) : Ucb1Policy(seed, Options{}) {}

Ucb1Policy::Ucb1Policy(std::uint64_t seed, Options options)
    : options_(options), rng_(seed) {
  if (options_.c <= 0.0) throw std::invalid_argument("Ucb1: c must be positive");
}

void Ucb1Policy::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("Ucb1: empty network set");
  if (nets_.empty()) {
    nets_ = available;
    gain_sum_.assign(nets_.size(), 0.0);
    pulls_.assign(nets_.size(), 0);
    return;
  }
  if (available == nets_) return;
  // Keep statistics of retained arms; new arms start unpulled (UCB1's
  // infinite optimism explores them immediately).
  std::vector<double> next_sum;
  std::vector<long> next_pulls;
  for (const NetworkId id : available) {
    const auto it = std::find(nets_.begin(), nets_.end(), id);
    if (it != nets_.end()) {
      const auto i = static_cast<std::size_t>(it - nets_.begin());
      next_sum.push_back(gain_sum_[i]);
      next_pulls.push_back(pulls_[i]);
    } else {
      next_sum.push_back(0.0);
      next_pulls.push_back(0);
    }
  }
  nets_ = available;
  gain_sum_ = std::move(next_sum);
  pulls_ = std::move(next_pulls);
  chosen_ = -1;
}

double Ucb1Policy::ucb(std::size_t i) const {
  if (pulls_[i] == 0) return std::numeric_limits<double>::infinity();
  const double mean = gain_sum_[i] / static_cast<double>(pulls_[i]);
  const double radius = std::sqrt(options_.c * std::log(std::max<long>(total_pulls_, 2)) /
                                  static_cast<double>(pulls_[i]));
  return mean + radius;
}

std::size_t Ucb1Policy::best_ucb_index() {
  double best = -std::numeric_limits<double>::infinity();
  auto& ties = ties_scratch_;
  ties.clear();
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const double v = ucb(i);
    if (v > best) {
      best = v;
      ties.assign(1, i);
    } else if (v == best) {
      ties.push_back(i);
    }
  }
  return ties[static_cast<std::size_t>(rng_.below(ties.size()))];
}

[[gnu::hot]] NetworkId Ucb1Policy::choose(Slot) {
  const std::size_t idx = best_ucb_index();
  chosen_ = static_cast<int>(idx);
  return nets_[idx];
}

[[gnu::hot]] void Ucb1Policy::observe(Slot, const SlotFeedback& fb) {
  if (chosen_ < 0) return;
  const auto i = static_cast<std::size_t>(chosen_);
  gain_sum_[i] += std::clamp(fb.gain, 0.0, 1.0);
  pulls_[i] += 1;
  total_pulls_ += 1;
  chosen_ = -1;
}

[[gnu::cold]] void Ucb1Policy::snapshot_into(StateWriter& w) const {
  w.section(0x55434231u);  // "UCB1"
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(nets_.size());
  for (const NetworkId n : nets_) w.i64(n);
  w.f64_vec(gain_sum_);
  w.u64(pulls_.size());
  for (const long v : pulls_) w.i64(v);
  w.i64(total_pulls_);
  w.i64(chosen_);
}

[[gnu::cold]] void Ucb1Policy::restore_from(StateReader& r) {
  r.section(0x55434231u, "ucb1");
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  rng_.set_state_words(rng_state);
  nets_.resize(r.count("ucb1 networks"));
  for (NetworkId& n : nets_) n = static_cast<NetworkId>(r.i64());
  r.f64_vec(gain_sum_, "ucb1 gain sums");
  pulls_.resize(r.count("ucb1 pull counts"));
  for (long& v : pulls_) v = static_cast<long>(r.i64());
  if (gain_sum_.size() != nets_.size() || pulls_.size() != nets_.size()) {
    throw SnapshotError("ucb1 per-arm state size mismatch");
  }
  total_pulls_ = static_cast<long>(r.i64());
  chosen_ = static_cast<int>(r.i64());
}

void Ucb1Policy::probabilities_into(std::vector<double>& out) const {
  // UCB1 is deterministic up to tie-breaks: one-hot on the argmax UCB.
  out.assign(nets_.size(), 0.0);
  if (nets_.empty()) return;
  std::size_t best = 0;
  double best_v = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const double v = ucb(i);
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  out[best] = 1.0;
}

}  // namespace smartexp3::core
