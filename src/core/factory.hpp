// Policy factory: create any of the nine selection algorithms by name.
//
// Names (as used in DeviceSpec::policy_name and the CLI):
//   "exp3", "block_exp3", "hybrid_block_exp3", "smart_exp3",
//   "smart_exp3_noreset", "greedy", "fixed_random", "full_information",
//   "centralized"
//
// "centralized" requires a shared CentralizedCoordinator; use
// make_policy_factory, which owns one per call (i.e. one per world).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/centralized.hpp"
#include "core/policy.hpp"
#include "core/smart_exp3.hpp"

namespace smartexp3::core {

/// The paper's nine algorithms, in its presentation order.
const std::vector<std::string>& policy_names();

/// Extension algorithms implemented beyond the paper (currently "ucb1", the
/// stochastic-bandit contrast baseline).
const std::vector<std::string>& extension_policy_names();

/// Accepts both paper and extension names.
bool is_valid_policy_name(const std::string& name);

/// Whether a factory policy with this name shares state across the devices
/// of a world (Policy::shares_state_across_devices): such a world declines
/// device-parallel stepping, which run_many consults when it balances
/// run-level fan-out against per-world lanes. Lives here, next to the
/// name -> policy mapping, so the two stay in sync.
bool policy_shares_state_across_devices(const std::string& name);

/// Create a non-centralized policy by name. Throws std::invalid_argument on
/// unknown names and on "centralized" (which needs a coordinator).
std::unique_ptr<Policy> make_policy(const std::string& name, std::uint64_t seed,
                                    const SmartExp3Tunables& smart = {});

/// A factory functor suitable for netsim::World: handles every policy name
/// including "centralized" (one shared coordinator per factory instance).
/// `capacities[i]` must be the capacity of network id i (used only by the
/// centralized coordinator).
std::function<std::unique_ptr<Policy>(DeviceId id, const std::string& name,
                                      std::uint64_t seed)>
make_named_policy_factory(std::vector<double> capacities, SmartExp3Tunables smart = {});

}  // namespace smartexp3::core
