// Full Information baseline (paper Table II): an exponentially weighted
// forecaster in the *full-feedback* model. At the end of every slot the
// device learns the gain it could have obtained from every network and
// applies a multiplicative loss update (György & Ottucsák-style). It is not
// implementable without external feedback; the paper includes it as an
// idealised reference point.
#pragma once

#include "core/policy.hpp"
#include "core/weight_table.hpp"
#include "stats/rng.hpp"

namespace smartexp3::core {

class FullInformationPolicy final : public Policy {
 public:
  struct Options {
    /// Fixed learning rate; <= 0 selects the decaying schedule
    /// eta_t = t^{-1/3}, matching the exploration schedule of the bandit
    /// policies.
    double fixed_eta = -1.0;
  };

  explicit FullInformationPolicy(std::uint64_t seed);
  FullInformationPolicy(std::uint64_t seed, Options options);

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot t, const SlotFeedback& fb) override;
  /// Monomorphic group loops; observe_batch packs the whole group's per-arm
  /// loss deltas (n devices x k arms) into one stats::vexp sweep — the
  /// per-arm exp loop is the policy's hot spot, and batching it across
  /// devices is what makes it vectorize. Bit-identical to the scalar
  /// observe(), which runs the same kernel over its own k arms.
  void choose_batch(Slot t, Policy* const* policies, std::size_t n, NetworkId* out,
                    BatchScratch& scratch) override;
  void observe_batch(Slot t, Policy* const* policies,
                     const SlotFeedback* const* feedbacks, std::size_t n,
                     BatchScratch& scratch) override;
  /// The heaviest per-slot policy: a weight-table draw plus one exp'd bump
  /// per *arm* (and the world computes its counterfactual feedback on top).
  double step_cost_hint() const override { return 3.9; }
  bool uses_batch_dispatch() const override { return true; }
  /// The whole point of this baseline: it consumes the counterfactual
  /// vectors, so the world must compute them for its devices.
  FeedbackNeeds feedback_needs() const override {
    return FeedbackNeeds::kFullInformation;
  }
  void snapshot_into(StateWriter& w) const override;
  void restore_from(StateReader& r) override;
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override { return nets_; }
  std::string name() const override { return "full_information"; }

 private:
  double current_eta() const;
  /// Whether this slot's feedback can feed the weight update. The single
  /// source of truth for the batch path's skip decision: pack_deltas and
  /// observe_batch's apply pass both consult it, so they cannot drift
  /// apart about which devices contributed a packed slice.
  bool can_pack(const SlotFeedback& fb) const {
    return fb.all_gains.size() == nets_.size();
  }
  /// Write the slot's per-arm log-weight deltas -eta * loss_i into
  /// deltas[0..k): the packing step shared by the scalar and batched
  /// observe paths. Returns false when the feedback does not match the
  /// current network set (the slot is skipped).
  bool pack_deltas(const SlotFeedback& fb, double* deltas);
  /// Apply a precomputed exp sweep: w_i *= factors[i] with delta deltas[i].
  void apply_factors(const double* deltas, const double* factors);

  Options options_;
  stats::Rng rng_;
  std::vector<NetworkId> nets_;
  WeightTable weights_;
  long selections_ = 0;
  // Scalar-path scratch for the vexp sweep (batch calls pack into the
  // engine-owned lane scratch instead). Sized once per network set.
  std::vector<double> delta_scratch_;
  std::vector<double> factor_scratch_;
};

}  // namespace smartexp3::core
