// Full Information baseline (paper Table II): an exponentially weighted
// forecaster in the *full-feedback* model. At the end of every slot the
// device learns the gain it could have obtained from every network and
// applies a multiplicative loss update (György & Ottucsák-style). It is not
// implementable without external feedback; the paper includes it as an
// idealised reference point.
#pragma once

#include "core/policy.hpp"
#include "core/weight_table.hpp"
#include "stats/rng.hpp"

namespace smartexp3::core {

class FullInformationPolicy final : public Policy {
 public:
  struct Options {
    /// Fixed learning rate; <= 0 selects the decaying schedule
    /// eta_t = t^{-1/3}, matching the exploration schedule of the bandit
    /// policies.
    double fixed_eta = -1.0;
  };

  explicit FullInformationPolicy(std::uint64_t seed);
  FullInformationPolicy(std::uint64_t seed, Options options);

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot t, const SlotFeedback& fb) override;
  /// The whole point of this baseline: it consumes the counterfactual
  /// vectors, so the world must compute them for its devices.
  FeedbackNeeds feedback_needs() const override {
    return FeedbackNeeds::kFullInformation;
  }
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override { return nets_; }
  std::string name() const override { return "full_information"; }

 private:
  double current_eta() const;

  Options options_;
  stats::Rng rng_;
  std::vector<NetworkId> nets_;
  WeightTable weights_;
  long selections_ = 0;
};

}  // namespace smartexp3::core
