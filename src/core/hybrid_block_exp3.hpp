// Hybrid Block EXP3 (paper Table III): Block EXP3 extended with Smart
// EXP3's initial-exploration phase and coin-flip greedy policy. No
// switch-back, no reset.
#pragma once

#include "core/block_policy.hpp"

namespace smartexp3::core {

class HybridBlockExp3 final : public BlockPolicy {
 public:
  explicit HybridBlockExp3(std::uint64_t seed, double beta = 0.1);
};

}  // namespace smartexp3::core
