#include "core/greedy.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "core/snapshot.hpp"

namespace smartexp3::core {

GreedyPolicy::GreedyPolicy(std::uint64_t seed) : rng_(seed) {}

void GreedyPolicy::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("Greedy: empty network set");
  if (nets_.empty()) {
    nets_ = available;
    gain_sum_.assign(nets_.size(), 0.0);
    gain_count_.assign(nets_.size(), 0);
    explore_queue_.clear();
    for (std::size_t i = 0; i < nets_.size(); ++i) explore_queue_.push_back(static_cast<int>(i));
    rng_.shuffle(explore_queue_);
    return;
  }
  if (available == nets_) return;

  // Keep statistics of retained networks; enqueue newly discovered ones for
  // a single exploration visit.
  std::vector<double> next_sum;
  std::vector<long> next_count;
  std::vector<int> next_explore;
  for (std::size_t j = 0; j < available.size(); ++j) {
    const auto it = std::find(nets_.begin(), nets_.end(), available[j]);
    if (it != nets_.end()) {
      const auto i = static_cast<std::size_t>(it - nets_.begin());
      next_sum.push_back(gain_sum_[i]);
      next_count.push_back(gain_count_[i]);
      if (std::find(explore_queue_.begin(), explore_queue_.end(), static_cast<int>(i)) !=
          explore_queue_.end()) {
        next_explore.push_back(static_cast<int>(j));
      }
    } else {
      next_sum.push_back(0.0);
      next_count.push_back(0);
      next_explore.push_back(static_cast<int>(j));
    }
  }
  nets_ = available;
  gain_sum_ = std::move(next_sum);
  gain_count_ = std::move(next_count);
  explore_queue_ = std::move(next_explore);
  rng_.shuffle(explore_queue_);
  chosen_ = -1;
}

double GreedyPolicy::average_gain(std::size_t i) const {
  return gain_count_[i] > 0 ? gain_sum_[i] / static_cast<double>(gain_count_[i]) : 0.0;
}

std::size_t GreedyPolicy::best_index() const {
  // Deterministic argmax (first of any ties); choose() breaks ties randomly.
  std::size_t best = 0;
  for (std::size_t i = 1; i < nets_.size(); ++i) {
    if (average_gain(i) > average_gain(best)) best = i;
  }
  return best;
}

[[gnu::hot]] NetworkId GreedyPolicy::choose(Slot) {
  assert(!nets_.empty());
  if (!explore_queue_.empty()) {
    chosen_ = explore_queue_.back();
    explore_queue_.pop_back();
    return nets_[static_cast<std::size_t>(chosen_)];
  }
  // Argmax with random tie-breaking.
  double best = -1.0;
  auto& ties = ties_scratch_;
  ties.clear();
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const double avg = average_gain(i);
    if (avg > best + 1e-12) {
      best = avg;
      ties.clear();
      ties.push_back(i);
    } else if (avg > best - 1e-12) {
      ties.push_back(i);
    }
  }
  const std::size_t pick = ties[static_cast<std::size_t>(rng_.below(ties.size()))];
  chosen_ = static_cast<int>(pick);
  return nets_[pick];
}

[[gnu::hot]] void GreedyPolicy::observe(Slot, const SlotFeedback& fb) {
  if (chosen_ < 0) return;
  gain_sum_[static_cast<std::size_t>(chosen_)] += fb.gain;
  gain_count_[static_cast<std::size_t>(chosen_)] += 1;
  chosen_ = -1;
}

[[gnu::cold]] void GreedyPolicy::snapshot_into(StateWriter& w) const {
  w.section(0x47524459u);  // "GRDY"
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(nets_.size());
  for (const NetworkId n : nets_) w.i64(n);
  w.f64_vec(gain_sum_);
  w.u64(gain_count_.size());
  for (const long v : gain_count_) w.i64(v);
  w.int_vec(explore_queue_);
  w.i64(chosen_);
}

[[gnu::cold]] void GreedyPolicy::restore_from(StateReader& r) {
  r.section(0x47524459u, "greedy");
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  rng_.set_state_words(rng_state);
  nets_.resize(r.count("greedy networks"));
  for (NetworkId& n : nets_) n = static_cast<NetworkId>(r.i64());
  r.f64_vec(gain_sum_, "greedy gain sums");
  gain_count_.resize(r.count("greedy gain counts"));
  for (long& v : gain_count_) v = static_cast<long>(r.i64());
  if (gain_sum_.size() != nets_.size() || gain_count_.size() != nets_.size()) {
    throw SnapshotError("greedy per-network state size mismatch");
  }
  r.int_vec(explore_queue_, "greedy explore queue");
  chosen_ = static_cast<int>(r.i64());
}

void GreedyPolicy::probabilities_into(std::vector<double>& out) const {
  out.assign(nets_.size(), 0.0);
  if (nets_.empty()) return;
  if (!explore_queue_.empty()) {
    // Still exploring: effectively uniform over the unexplored set.
    for (const int i : explore_queue_) out[static_cast<std::size_t>(i)] =
        1.0 / static_cast<double>(explore_queue_.size());
    return;
  }
  out[best_index()] = 1.0;
}

}  // namespace smartexp3::core
