// Log-space multiplicative weights shared by all EXP3-family policies.
//
// EXP3's weight update w_i <- w_i * exp(gamma * ghat / k) overflows double
// precision quickly once block-level gains appear (ghat can be hundreds), so
// weights are kept in log space and probabilities are computed with the
// usual max-subtraction softmax. All update rules in the paper are exactly
// preserved: multiplying weights is adding log-weights, and the probability
// p_i = (1-gamma) * w_i / sum_j w_j + gamma / k is invariant under the
// normalisation (subtracting the max log-weight) applied after each update.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace smartexp3::core {

class WeightTable {
 public:
  void reset(std::size_t k) {
    lw_.assign(k, 0.0);
    offset_ = 0.0;
  }

  std::size_t size() const { return lw_.size(); }
  bool empty() const { return lw_.empty(); }

  double log_weight(std::size_t i) const { return lw_[i]; }
  void set_log_weight(std::size_t i, double v) { lw_[i] = v; }
  void push_back(double lw) { lw_.push_back(lw); }

  double max_log_weight() const {
    assert(!lw_.empty());
    return *std::max_element(lw_.begin(), lw_.end());
  }

  /// Multiplicative update: w_i *= exp(delta).
  void bump(std::size_t i, double delta) { lw_[i] += delta; }

  /// Rescale so the largest log-weight is 0. Probabilities are invariant;
  /// this only guards against drift over long horizons. The cumulative
  /// shift is remembered so the *absolute* scale (weight 1 == absolute
  /// log-weight 0) can still be referenced when new arms appear.
  void normalise() {
    if (lw_.empty()) return;
    const double m = max_log_weight();
    offset_ += m;
    for (auto& v : lw_) v -= m;
  }

  /// The table-relative log-weight corresponding to an absolute weight of 1
  /// (i.e. a brand-new EXP3 arm). After heavy learning this is very
  /// negative: a fresh arm is tiny next to the accumulated favourites,
  /// exactly as in textbook EXP3 with unnormalised weights.
  double relative_of_unit_weight() const { return -offset_; }

  double offset() const { return offset_; }
  /// Carry the absolute frame over when rebuilding a table after a network
  /// set change (relative log-weights copied verbatim keep their meaning).
  void set_offset(double offset) { offset_ = offset; }

  /// EXP3 probabilities: p_i = (1 - gamma) * softmax_i + gamma / k, written
  /// into `p` (resized to size()). The hot-path form: callers that keep `p`
  /// as reusable scratch allocate nothing once its capacity has grown to the
  /// table size.
  void probabilities_into(double gamma, std::vector<double>& p) const {
    assert(!lw_.empty());
    const double k = static_cast<double>(lw_.size());
    const double m = max_log_weight();
    double z = 0.0;
    p.resize(lw_.size());
    for (std::size_t i = 0; i < lw_.size(); ++i) {
      p[i] = std::exp(lw_[i] - m);
      z += p[i];
    }
    for (auto& v : p) v = (1.0 - gamma) * (v / z) + gamma / k;
  }

  /// Allocating convenience wrapper around probabilities_into().
  std::vector<double> probabilities(double gamma) const {
    std::vector<double> p;
    probabilities_into(gamma, p);
    return p;
  }

 private:
  std::vector<double> lw_;
  double offset_ = 0.0;  // total normalisation shift applied so far
};

/// The paper's exploration-rate schedule gamma = b^{-1/3} (per §V, after
/// Maghsudi & Stanczak), clamped into (0, 1]. EXP3 evaluates this once per
/// slot and every device walks the same schedule, so the first values are
/// memoized (std::pow is ~1/8th of EXP3's per-slot budget). The table holds
/// the exact std::pow results — identical bits to the uncached path.
inline double gamma_schedule(long step) {
  assert(step >= 1);
  constexpr long kTableSize = 16384;  // covers the paper's longest horizon (8640)
  static const std::vector<double> table = [] {
    std::vector<double> t(kTableSize);
    for (long i = 0; i < kTableSize; ++i) {
      t[static_cast<std::size_t>(i)] =
          std::min(1.0, std::pow(static_cast<double>(i + 1), -1.0 / 3.0));
    }
    return t;
  }();
  if (step <= kTableSize) return table[static_cast<std::size_t>(step - 1)];
  return std::min(1.0, std::pow(static_cast<double>(step), -1.0 / 3.0));
}

}  // namespace smartexp3::core
