// Log-space multiplicative weights shared by all EXP3-family policies.
//
// EXP3's weight update w_i <- w_i * exp(gamma * ghat / k) overflows double
// precision quickly once block-level gains appear (ghat can be hundreds), so
// the source of truth is kept in log space. All update rules in the paper
// are exactly preserved: multiplying weights is adding log-weights, and the
// probability p_i = (1-gamma) * w_i / sum_j w_j + gamma / k is invariant
// under the normalisation (subtracting the max log-weight) applied after
// each update.
//
// Hot-path layout: alongside the log-weights the table maintains the linear
// weights w_i ~= exp(lw_i) incrementally — bump() multiplies the one touched
// weight by exp(delta) (this is literally the textbook EXP3 update) and
// normalise() rescales so the leader is exactly 1.0, with no exp at all. A
// slot of EXP3 therefore costs one exp (in the bump) instead of one per arm
// (in the softmax), and sampling reads the linear weights directly. If the
// incremental cache ever degenerates (an update so large that even the
// cached weight over/underflows), every read and normalise() falls back to
// the exact log-space softmax and the cache is rebuilt from the
// log-weights, so extreme updates behave exactly as before.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/snapshot.hpp"
#include "stats/rng.hpp"
#include "stats/vexp.hpp"

namespace smartexp3::core {

class WeightTable {
 public:
  void reset(std::size_t k) {
    lw_.assign(k, 0.0);
    w_.assign(k, 1.0);
    offset_ = 0.0;
    drifted_ = false;
  }

  std::size_t size() const { return lw_.size(); }
  bool empty() const { return lw_.empty(); }

  double log_weight(std::size_t i) const { return lw_[i]; }
  void set_log_weight(std::size_t i, double v) {
    lw_[i] = v;
    w_[i] = std::exp(v);
  }
  void push_back(double lw) {
    lw_.push_back(lw);
    w_.push_back(std::exp(lw));
  }

  double max_log_weight() const {
    assert(!lw_.empty());
    return *std::max_element(lw_.begin(), lw_.end());
  }

  /// Multiplicative update: w_i *= exp(delta).
  void bump(std::size_t i, double delta) { bump_with_factor(i, delta, std::exp(delta)); }

  /// The batched-update form of bump(): the caller supplies factor =
  /// exp-kernel(delta), typically one element of a stats::vexp sweep packed
  /// across a whole policy group. The log-weight bookkeeping is unchanged —
  /// lw_ accumulates the exact delta — only the linear cache multiplies by
  /// the caller's factor, so scalar and batched callers agree bit-for-bit as
  /// long as they use the same exp kernel for the factor. The degenerate
  /// re-anchor below deliberately stays on std::exp (the scalar-exact path):
  /// it must reproduce the same bits from lw_ no matter which kernel
  /// produced the incremental factors that drifted out of range.
  void bump_with_factor(std::size_t i, double delta, double factor) {
    lw_[i] += delta;
    const double next = w_[i] * factor;
    // Re-anchor on the log-weight when the incremental product leaves the
    // representable range (underflowed-to-zero weights must be able to come
    // back, and infinities must not linger).
    w_[i] = next > 0.0 && std::isfinite(next) ? flush_subnormal(next)
                                              : flush_subnormal(std::exp(lw_[i]));
    drifted_ |= lw_[i] > kDriftLimit || lw_[i] < -kDriftLimit;
  }

  /// Hot-path normalisation: a no-op until some log-weight has drifted far
  /// enough (|lw| > 600) that another slot of updates could push the linear
  /// cache out of double range; then a full normalise(). Probabilities are
  /// invariant either way — p_i = (1-gamma) w_i / z + gamma/k does not care
  /// about a common scale — so per-slot policies get normalisation safety
  /// at the cost of one flag test. Rebuild paths (set_networks) keep using
  /// the unconditional normalise(), whose max-log-weight == 0 postcondition
  /// the absolute-offset bookkeeping relies on.
  void maybe_normalise() {
    if (drifted_) normalise();
  }

  /// Rescale so the largest log-weight is 0. Probabilities are invariant;
  /// this only guards against drift over long horizons. The cumulative
  /// shift is remembered so the *absolute* scale (weight 1 == absolute
  /// log-weight 0) can still be referenced when new arms appear.
  void normalise() {
    if (lw_.empty()) return;
    std::size_t leader = 0;
    for (std::size_t i = 1; i < lw_.size(); ++i) {
      if (lw_[i] > lw_[leader]) leader = i;
    }
    const double m = lw_[leader];
    offset_ += m;
    for (auto& v : lw_) v -= m;
    const double s = 1.0 / w_[leader];
    if (s > 0.0 && std::isfinite(s)) {
      for (auto& v : w_) v = flush_subnormal(v * s);
      w_[leader] = 1.0;
    } else {
      rebuild_cache();
    }
    drifted_ = false;
  }

  /// The table-relative log-weight corresponding to an absolute weight of 1
  /// (i.e. a brand-new EXP3 arm). After heavy learning this is very
  /// negative: a fresh arm is tiny next to the accumulated favourites,
  /// exactly as in textbook EXP3 with unnormalised weights.
  double relative_of_unit_weight() const { return -offset_; }

  double offset() const { return offset_; }
  /// Carry the absolute frame over when rebuilding a table after a network
  /// set change (relative log-weights copied verbatim keep their meaning).
  void set_offset(double offset) { offset_ = offset; }

  /// EXP3 probabilities: p_i = (1 - gamma) * softmax_i + gamma / k, written
  /// into `p` (resized to size()). The hot-path form: callers that keep `p`
  /// as reusable scratch allocate nothing once its capacity has grown to the
  /// table size.
  void probabilities_into(double gamma, std::vector<double>& p) const {
    assert(!lw_.empty());
    const double k = static_cast<double>(lw_.size());
    p.resize(lw_.size());
    double z = 0.0;
    for (const double w : w_) z += w;
    if (z > 0.0 && std::isfinite(z)) {
      const double inv_z = 1.0 / z;
      for (std::size_t i = 0; i < w_.size(); ++i) {
        p[i] = (1.0 - gamma) * (w_[i] * inv_z) + gamma / k;
      }
      return;
    }
    // Degenerate cache: log-space softmax with max-subtraction, batched
    // through the kernel API's scalar-exact path (p doubles as the argument
    // buffer; in-place is allowed). This output *can* feed a choice — the
    // block policies sample from probabilities_into()'s vector — so per the
    // vexp exactness contract the bits must stay std::exp's; the path is a
    // cold fallback, so there is nothing for the fast kernel to win here
    // anyway.
    const double m = max_log_weight();
    for (std::size_t i = 0; i < lw_.size(); ++i) p[i] = lw_[i] - m;
    stats::vexp_exact(p.data(), p.data(), p.size());
    z = 0.0;
    for (const double v : p) z += v;
    for (auto& v : p) v = (1.0 - gamma) * (v / z) + gamma / k;
  }

  /// Draw an index from the EXP3 distribution without materialising the
  /// probability vector: one uniform, a sum and a scan over the linear
  /// weights. Same per-arm probabilities and residual-mass-to-last-arm
  /// convention as probabilities_into() + Rng::sample_discrete, but NOT
  /// bit-for-bit the same index stream: the branchless cumulative compare
  /// below rounds its partial sums differently from sample_discrete's
  /// sequential subtraction, so rare draws near a cell edge can land one
  /// arm over. Swapping one form for the other is a golden-trajectory
  /// change. The chosen arm's probability is returned through `p_chosen`.
  std::size_t sample(double gamma, stats::Rng& rng, double& p_chosen) const {
    assert(!lw_.empty());
    const double k = static_cast<double>(lw_.size());
    double z = 0.0;
    for (const double w : w_) z += w;
    if (!(z > 0.0 && std::isfinite(z))) {
      // Degenerate cache (cold): exact log-space pass, two exps per arm.
      const double m = max_log_weight();
      z = 0.0;
      for (const double lw : lw_) z += std::exp(lw - m);
      double u = rng.uniform();
      for (std::size_t i = 0; i + 1 < lw_.size(); ++i) {
        const double p = (1.0 - gamma) * (std::exp(lw_[i] - m) / z) + gamma / k;
        u -= p;
        if (u < 0.0) {
          p_chosen = p;
          return i;
        }
      }
      p_chosen = (1.0 - gamma) * (std::exp(lw_.back() - m) / z) + gamma / k;
      return lw_.size() - 1;
    }
    // Branchless inversion: the exit point of a cumulative scan is uniform
    // over the arms, so its branch mispredicts almost every draw; counting
    // threshold crossings instead keeps the pipeline full. Equivalent to
    // the sequential-subtraction scan up to fp rounding of the partial
    // sums; residual mass beyond the final cumulative goes to the last arm.
    const double inv_z = 1.0 / z;
    const double u = rng.uniform();
    double cum = 0.0;
    std::size_t idx = 0;
    if (gamma == 0.0) {
      // Pure weight-proportional draw (the full-information forecaster's
      // every slot): c == 1.0 and floor == 0.0, and multiplying by 1.0 /
      // adding +0.0 are exact identities on the non-negative terms here, so
      // this branch is bit-identical to the general form below — minus two
      // FLOPs per arm on a hot path.
      for (std::size_t i = 0; i + 1 < w_.size(); ++i) {
        cum += w_[i] * inv_z;
        idx += u >= cum ? 1u : 0u;
      }
      p_chosen = w_[idx] * inv_z;
      return idx;
    }
    const double c = 1.0 - gamma;
    const double floor = gamma / k;
    for (std::size_t i = 0; i + 1 < w_.size(); ++i) {
      cum += c * (w_[i] * inv_z) + floor;
      idx += u >= cum ? 1u : 0u;
    }
    p_chosen = c * (w_[idx] * inv_z) + floor;
    return idx;
  }

  /// Allocating convenience wrapper around probabilities_into().
  std::vector<double> probabilities(double gamma) const {
    std::vector<double> p;
    probabilities_into(gamma, p);
    return p;
  }

  /// Checkpoint the table bit-exactly. The linear cache w_ is serialized
  /// alongside lw_ on purpose: w_ is built from *incremental* products, so
  /// rebuilding it as exp(lw_) on restore would produce subtly different
  /// bits and fork the trajectory.
  void snapshot_into(StateWriter& w) const {
    w.f64_vec(lw_);
    w.f64_vec(w_);
    w.f64(offset_);
    w.b(drifted_);
  }

  void restore_from(StateReader& r) {
    r.f64_vec(lw_, "weight table log-weights");
    r.f64_vec(w_, "weight table cache");
    if (w_.size() != lw_.size()) {
      throw SnapshotError("weight table cache size mismatch");
    }
    offset_ = r.f64();
    drifted_ = r.b();
  }

 private:
  /// Arms whose linear weight has decayed into the subnormal range are
  /// flushed to exactly 0 in the cache: their softmax share is < 1e-307 of
  /// the leader's (invisible at double precision in any probability), and
  /// subnormal multiplies/adds stall the hot loop with microcode assists.
  /// The log-weight keeps the exact value, so a later upward bump restores
  /// the arm through the exp(lw) re-anchor in bump().
  static double flush_subnormal(double w) {
    return w < 2.2250738585072014e-308 ? 0.0 : w;  // DBL_MIN
  }

  void rebuild_cache() {
    w_.resize(lw_.size());
    for (std::size_t i = 0; i < lw_.size(); ++i) {
      w_[i] = flush_subnormal(std::exp(lw_[i]));
    }
  }

  // A bump can add a few hundred log-units at most (block-level ghat), so
  // re-anchoring once any |lw| passes 600 keeps exp(lw) and the incremental
  // products representable with a whole slot of headroom below DBL_MAX.
  static constexpr double kDriftLimit = 600.0;

  std::vector<double> lw_;
  std::vector<double> w_;  // linear cache, w_[i] ~= exp(lw_[i])
  double offset_ = 0.0;    // total normalisation shift applied so far
  bool drifted_ = false;   // some |lw| exceeds kDriftLimit since last normalise
};

/// The paper's exploration-rate schedule gamma = b^{-1/3} (per §V, after
/// Maghsudi & Stanczak), clamped into (0, 1]. EXP3 evaluates this once per
/// slot and every device walks the same schedule, so the first values are
/// memoized (std::pow is ~1/8th of EXP3's per-slot budget). The table holds
/// the exact std::pow results — identical bits to the uncached path.
inline double gamma_schedule(long step) {
  assert(step >= 1);
  constexpr long kTableSize = 16384;  // covers the paper's longest horizon (8640)
  static const std::vector<double> table = [] {
    std::vector<double> t(kTableSize);
    for (long i = 0; i < kTableSize; ++i) {
      t[static_cast<std::size_t>(i)] =
          std::min(1.0, std::pow(static_cast<double>(i + 1), -1.0 / 3.0));
    }
    return t;
  }();
  if (step <= kTableSize) return table[static_cast<std::size_t>(step - 1)];
  return std::min(1.0, std::pow(static_cast<double>(step), -1.0 / 3.0));
}

}  // namespace smartexp3::core
