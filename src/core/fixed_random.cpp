#include "core/fixed_random.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/snapshot.hpp"

namespace smartexp3::core {

FixedRandomPolicy::FixedRandomPolicy(std::uint64_t seed) : rng_(seed) {}

void FixedRandomPolicy::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("FixedRandom: empty network set");
  nets_ = available;
  if (picked_ != kNoNetwork &&
      std::find(nets_.begin(), nets_.end(), picked_) == nets_.end()) {
    picked_ = kNoNetwork;  // forced to re-draw
  }
}

NetworkId FixedRandomPolicy::choose(Slot) {
  if (picked_ == kNoNetwork) {
    picked_ = nets_[static_cast<std::size_t>(rng_.below(nets_.size()))];
  }
  return picked_;
}

[[gnu::cold]] void FixedRandomPolicy::snapshot_into(StateWriter& w) const {
  w.section(0x46495852u);  // "FIXR"
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(nets_.size());
  for (const NetworkId n : nets_) w.i64(n);
  w.i64(picked_);
}

[[gnu::cold]] void FixedRandomPolicy::restore_from(StateReader& r) {
  r.section(0x46495852u, "fixed random");
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  rng_.set_state_words(rng_state);
  nets_.resize(r.count("fixed random networks"));
  for (NetworkId& n : nets_) n = static_cast<NetworkId>(r.i64());
  picked_ = static_cast<NetworkId>(r.i64());
}

void FixedRandomPolicy::probabilities_into(std::vector<double>& out) const {
  out.assign(nets_.size(), 0.0);
  if (picked_ == kNoNetwork) {
    std::fill(out.begin(), out.end(),
              nets_.empty() ? 0.0 : 1.0 / static_cast<double>(nets_.size()));
    return;
  }
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i] == picked_) out[i] = 1.0;
  }
}

}  // namespace smartexp3::core
