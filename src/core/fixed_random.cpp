#include "core/fixed_random.hpp"

#include <algorithm>
#include <stdexcept>

namespace smartexp3::core {

FixedRandomPolicy::FixedRandomPolicy(std::uint64_t seed) : rng_(seed) {}

void FixedRandomPolicy::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("FixedRandom: empty network set");
  nets_ = available;
  if (picked_ != kNoNetwork &&
      std::find(nets_.begin(), nets_.end(), picked_) == nets_.end()) {
    picked_ = kNoNetwork;  // forced to re-draw
  }
}

NetworkId FixedRandomPolicy::choose(Slot) {
  if (picked_ == kNoNetwork) {
    picked_ = nets_[static_cast<std::size_t>(rng_.below(nets_.size()))];
  }
  return picked_;
}

void FixedRandomPolicy::probabilities_into(std::vector<double>& out) const {
  out.assign(nets_.size(), 0.0);
  if (picked_ == kNoNetwork) {
    std::fill(out.begin(), out.end(),
              nets_.empty() ? 0.0 : 1.0 / static_cast<double>(nets_.size()));
    return;
  }
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i] == picked_) out[i] = 1.0;
  }
}

}  // namespace smartexp3::core
