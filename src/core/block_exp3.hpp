// Block EXP3 (paper Table III): EXP3 that selects a network for an
// adaptively growing block of time slots instead of re-sampling every slot.
// This is the pure "blocking" ablation — no initial exploration, no greedy
// choices, no switch-back, no reset.
#pragma once

#include "core/block_policy.hpp"

namespace smartexp3::core {

class BlockExp3 final : public BlockPolicy {
 public:
  explicit BlockExp3(std::uint64_t seed, double beta = 0.1);
};

}  // namespace smartexp3::core
