// Flat binary state archive for world checkpoints.
//
// A snapshot is a sequence of 64-bit words: integers verbatim, doubles as
// their IEEE-754 bit patterns (std::bit_cast, so restore is bit-exact even
// for subnormals and non-finite values — a decimal round-trip would not be).
// StateWriter appends, StateReader consumes in the same order; every
// compound object brackets its words with a section tag so a reader that
// drifts out of sync fails immediately with a SnapshotError naming the
// section instead of silently mis-assigning state.
//
// The word stream deliberately carries no type metadata beyond the tags:
// writer and reader are always the same build of the same code (the
// checkpoint header pins kSnapshotVersion), so self-describing encodings
// would buy nothing but size. Durability concerns — checksums, atomic
// renames, versioning — live one layer up in exp/checkpoint.hpp.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace smartexp3::core {

/// Raised when a snapshot word stream does not match what the restoring
/// object expects: wrong section tag, truncated stream, or a count field
/// inconsistent with the object being restored.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bumped whenever the word layout of any snapshotted object changes.
/// Checked by the checkpoint layer before any words reach a reader.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Appends state words to a growing buffer. All write methods are trivial
/// appends; callers reserve() when the size is known.
class StateWriter {
 public:
  explicit StateWriter(std::vector<std::uint64_t>& out) : out_(out) {}

  void u64(std::uint64_t v) { out_.push_back(v); }
  void i64(std::int64_t v) { out_.push_back(static_cast<std::uint64_t>(v)); }
  void f64(double v) { out_.push_back(std::bit_cast<std::uint64_t>(v)); }
  void b(bool v) { out_.push_back(v ? 1u : 0u); }

  /// Open a named section. Tags are small integers unique per object kind;
  /// the matching StateReader::section call re-checks them.
  void section(std::uint64_t tag) { out_.push_back(tag); }

  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }
  void i64_vec(const std::vector<std::int64_t>& v) {
    u64(v.size());
    for (const std::int64_t x : v) i64(x);
  }
  void int_vec(const std::vector<int>& v) {
    u64(v.size());
    for (const int x : v) i64(x);
  }

  std::vector<std::uint64_t>& words() { return out_; }

 private:
  std::vector<std::uint64_t>& out_;
};

/// Consumes state words in writer order. Every read checks bounds; a
/// mismatch throws SnapshotError rather than reading garbage.
class StateReader {
 public:
  explicit StateReader(const std::vector<std::uint64_t>& in) : in_(in) {}

  std::uint64_t u64() {
    if (pos_ >= in_.size()) {
      throw SnapshotError("snapshot truncated at word " + std::to_string(pos_));
    }
    return in_[pos_++];
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool b() { return u64() != 0; }

  /// Consume and verify a section tag written by StateWriter::section.
  void section(std::uint64_t tag, const char* what) {
    const std::uint64_t got = u64();
    if (got != tag) {
      throw SnapshotError(std::string("snapshot section mismatch for ") + what +
                          ": expected tag " + std::to_string(tag) + ", found " +
                          std::to_string(got));
    }
  }

  /// Consume a count field, bounding it so corrupt streams cannot drive
  /// multi-gigabyte allocations before the truncation check fires.
  std::size_t count(const char* what, std::size_t max = 1u << 28) {
    const std::uint64_t n = u64();
    if (n > max) {
      throw SnapshotError(std::string("snapshot count for ") + what +
                          " out of range: " + std::to_string(n));
    }
    return static_cast<std::size_t>(n);
  }

  void f64_vec(std::vector<double>& v, const char* what) {
    v.resize(count(what));
    for (double& x : v) x = f64();
  }
  void i64_vec(std::vector<std::int64_t>& v, const char* what) {
    v.resize(count(what));
    for (std::int64_t& x : v) x = i64();
  }
  void int_vec(std::vector<int>& v, const char* what) {
    v.resize(count(what));
    for (int& x : v) {
      const std::int64_t raw = i64();
      x = static_cast<int>(raw);
    }
  }

  /// True when every word has been consumed; restore entry points assert
  /// this so a layout drift is an error, not a silent partial restore.
  bool exhausted() const { return pos_ == in_.size(); }
  std::size_t position() const { return pos_; }

 private:
  const std::vector<std::uint64_t>& in_;
  std::size_t pos_ = 0;
};

}  // namespace smartexp3::core
