// Greedy baseline (paper Table II): explore each network once in random
// order, then always select the network with the highest average observed
// gain. Simple, low-switching, but prone to "tragedy of the commons"
// lock-in (paper §VI-A, unutilized resources).
#pragma once

#include "core/policy.hpp"
#include "stats/rng.hpp"

namespace smartexp3::core {

class GreedyPolicy final : public Policy {
 public:
  explicit GreedyPolicy(std::uint64_t seed);

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot t, const SlotFeedback& fb) override;
  void snapshot_into(StateWriter& w) const override;
  void restore_from(StateReader& r) override;
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override { return nets_; }
  std::string name() const override { return "greedy"; }

  double average_gain(std::size_t i) const;

 private:
  std::size_t best_index() const;

  stats::Rng rng_;
  std::vector<NetworkId> nets_;
  std::vector<double> gain_sum_;
  std::vector<long> gain_count_;
  std::vector<int> explore_queue_;  // indices not yet visited (random order)
  int chosen_ = -1;
  std::vector<std::size_t> ties_scratch_;  // reused by choose(); no per-slot alloc
};

}  // namespace smartexp3::core
