// Fixed Random baseline (paper Table II): pick one network uniformly at
// random and never leave it (unless it disappears).
#pragma once

#include "core/policy.hpp"
#include "stats/rng.hpp"

namespace smartexp3::core {

class FixedRandomPolicy final : public Policy {
 public:
  explicit FixedRandomPolicy(std::uint64_t seed);

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot /*t*/, const SlotFeedback& /*fb*/) override {}
  /// Sticks to one network: no learning state at all.
  double step_cost_hint() const override { return 0.5; }
  void snapshot_into(StateWriter& w) const override;
  void restore_from(StateReader& r) override;
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override { return nets_; }
  std::string name() const override { return "fixed_random"; }

 private:
  stats::Rng rng_;
  std::vector<NetworkId> nets_;
  NetworkId picked_ = kNoNetwork;
};

}  // namespace smartexp3::core
