#include "core/factory.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "core/block_exp3.hpp"
#include "core/exp3.hpp"
#include "core/fixed_random.hpp"
#include "core/full_information.hpp"
#include "core/greedy.hpp"
#include "core/hybrid_block_exp3.hpp"
#include "core/ucb1.hpp"

namespace smartexp3::core {

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> names = {
      "exp3",   "block_exp3",   "hybrid_block_exp3", "smart_exp3_noreset",
      "smart_exp3", "greedy",   "full_information",  "centralized",
      "fixed_random"};
  return names;
}

const std::vector<std::string>& extension_policy_names() {
  static const std::vector<std::string> names = {"ucb1"};
  return names;
}

bool is_valid_policy_name(const std::string& name) {
  const auto& names = policy_names();
  if (std::find(names.begin(), names.end(), name) != names.end()) return true;
  const auto& ext = extension_policy_names();
  return std::find(ext.begin(), ext.end(), name) != ext.end();
}

bool policy_shares_state_across_devices(const std::string& name) {
  // Only the centralized baseline couples devices (one shared coordinator
  // per world); every other factory policy is fully device-local.
  return name == "centralized";
}

std::unique_ptr<Policy> make_policy(const std::string& name, std::uint64_t seed,
                                    const SmartExp3Tunables& smart) {
  if (name == "exp3") return std::make_unique<Exp3>(seed);
  if (name == "block_exp3") return std::make_unique<BlockExp3>(seed, smart.beta);
  if (name == "hybrid_block_exp3") return std::make_unique<HybridBlockExp3>(seed, smart.beta);
  if (name == "smart_exp3") {
    SmartExp3Tunables t = smart;
    t.enable_reset = true;
    return std::make_unique<SmartExp3>(seed, t);
  }
  if (name == "smart_exp3_noreset") {
    SmartExp3Tunables t = smart;
    t.enable_reset = false;
    return std::make_unique<SmartExp3>(seed, t);
  }
  if (name == "greedy") return std::make_unique<GreedyPolicy>(seed);
  if (name == "fixed_random") return std::make_unique<FixedRandomPolicy>(seed);
  if (name == "full_information") return std::make_unique<FullInformationPolicy>(seed);
  if (name == "ucb1") return std::make_unique<Ucb1Policy>(seed);
  throw std::invalid_argument("make_policy: unknown or unsupported policy '" + name + "'");
}

std::function<std::unique_ptr<Policy>(DeviceId, const std::string&, std::uint64_t)>
make_named_policy_factory(std::vector<double> capacities, SmartExp3Tunables smart) {
  // One coordinator shared by every centralized device of the same world.
  auto coordinator = std::make_shared<CentralizedCoordinator>(std::move(capacities));
  return [coordinator, smart](DeviceId id, const std::string& name, std::uint64_t seed)
             -> std::unique_ptr<Policy> {
    if (name == "centralized") {
      return std::make_unique<CentralizedPolicy>(id, coordinator);
    }
    return make_policy(name, seed, smart);
  };
}

}  // namespace smartexp3::core
