#include "core/full_information.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace smartexp3::core {

FullInformationPolicy::FullInformationPolicy(std::uint64_t seed)
    : FullInformationPolicy(seed, Options{}) {}

FullInformationPolicy::FullInformationPolicy(std::uint64_t seed, Options options)
    : options_(options), rng_(seed) {}

double FullInformationPolicy::current_eta() const {
  if (options_.fixed_eta > 0.0) return std::min(options_.fixed_eta, 1.0);
  return gamma_schedule(selections_ + 1);
}

void FullInformationPolicy::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("FullInformation: empty network set");
  if (nets_.empty()) {
    nets_ = available;
    weights_.reset(nets_.size());
    return;
  }
  WeightTable next;
  std::vector<NetworkId> next_nets;
  for (const NetworkId id : available) {
    const auto it = std::find(nets_.begin(), nets_.end(), id);
    next_nets.push_back(id);
    next.push_back(it != nets_.end()
                       ? weights_.log_weight(static_cast<std::size_t>(it - nets_.begin()))
                       : 0.0);
  }
  nets_ = std::move(next_nets);
  weights_ = std::move(next);
  weights_.normalise();
}

NetworkId FullInformationPolicy::choose(Slot) {
  assert(!nets_.empty());
  // Pure weight-proportional sampling: full feedback needs no forced
  // exploration (gamma = 0 in the mixing formula). Fused draw, one uniform.
  double p_chosen = 0.0;
  ++selections_;
  return nets_[weights_.sample(0.0, rng_, p_chosen)];
}

void FullInformationPolicy::observe(Slot, const SlotFeedback& fb) {
  if (fb.all_gains.size() != nets_.size()) return;  // feedback unavailable
  // Multiplicative update on losses: w_i *= exp(-eta * (1 - gain_i)).
  const double eta = current_eta();
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const double loss = 1.0 - std::clamp(fb.all_gains[i], 0.0, 1.0);
    weights_.bump(i, -eta * loss);
  }
  weights_.maybe_normalise();
}

void FullInformationPolicy::probabilities_into(std::vector<double>& out) const {
  if (nets_.empty()) {
    out.clear();
    return;
  }
  weights_.probabilities_into(0.0, out);
}

}  // namespace smartexp3::core
