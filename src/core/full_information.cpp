#include "core/full_information.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "core/snapshot.hpp"

#include "stats/vexp.hpp"

namespace smartexp3::core {

FullInformationPolicy::FullInformationPolicy(std::uint64_t seed)
    : FullInformationPolicy(seed, Options{}) {}

FullInformationPolicy::FullInformationPolicy(std::uint64_t seed, Options options)
    : options_(options), rng_(seed) {}

double FullInformationPolicy::current_eta() const {
  if (options_.fixed_eta > 0.0) return std::min(options_.fixed_eta, 1.0);
  return gamma_schedule(selections_ + 1);
}

void FullInformationPolicy::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("FullInformation: empty network set");
  if (nets_.empty()) {
    nets_ = available;
    weights_.reset(nets_.size());
    delta_scratch_.resize(nets_.size());
    factor_scratch_.resize(nets_.size());
    return;
  }
  WeightTable next;
  std::vector<NetworkId> next_nets;
  for (const NetworkId id : available) {
    const auto it = std::find(nets_.begin(), nets_.end(), id);
    next_nets.push_back(id);
    next.push_back(it != nets_.end()
                       ? weights_.log_weight(static_cast<std::size_t>(it - nets_.begin()))
                       : 0.0);
  }
  nets_ = std::move(next_nets);
  weights_ = std::move(next);
  weights_.normalise();
  delta_scratch_.resize(nets_.size());
  factor_scratch_.resize(nets_.size());
}

[[gnu::hot]] NetworkId FullInformationPolicy::choose(Slot) {
  assert(!nets_.empty());
  // Pure weight-proportional sampling: full feedback needs no forced
  // exploration (gamma = 0 in the mixing formula). Fused draw, one uniform.
  double p_chosen = 0.0;
  ++selections_;
  return nets_[weights_.sample(0.0, rng_, p_chosen)];
}

bool FullInformationPolicy::pack_deltas(const SlotFeedback& fb, double* deltas) {
  if (!can_pack(fb)) return false;  // feedback unavailable
  // Multiplicative update on losses: w_i *= exp(-eta * (1 - gain_i)).
  const double eta = current_eta();
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const double loss = 1.0 - std::clamp(fb.all_gains[i], 0.0, 1.0);
    deltas[i] = -eta * loss;
  }
  return true;
}

void FullInformationPolicy::apply_factors(const double* deltas,
                                          const double* factors) {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    weights_.bump_with_factor(i, deltas[i], factors[i]);
  }
  weights_.maybe_normalise();
}

[[gnu::hot]] void FullInformationPolicy::observe(Slot, const SlotFeedback& fb) {
  // Same pack -> vexp -> apply pipeline as observe_batch, over this device's
  // k arms only, so both paths produce identical bits (vexp is elementwise).
  if (!pack_deltas(fb, delta_scratch_.data())) return;
  stats::vexp(delta_scratch_.data(), factor_scratch_.data(), nets_.size());
  apply_factors(delta_scratch_.data(), factor_scratch_.data());
}

void FullInformationPolicy::choose_batch(Slot t, Policy* const* policies,
                                         std::size_t n, NetworkId* out,
                                         BatchScratch&) {
  // FullInformationPolicy is final: the casted call devirtualizes.
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = static_cast<FullInformationPolicy*>(policies[j])->choose(t);
  }
}

void FullInformationPolicy::observe_batch(Slot, Policy* const* policies,
                                          const SlotFeedback* const* feedbacks,
                                          std::size_t n, BatchScratch& scratch) {
  // SoA pass 1: pack every device's per-arm deltas into one buffer (devices
  // with stale feedback contribute no elements and are skipped in pass 2).
  std::size_t capacity = 0;
  for (std::size_t j = 0; j < n; ++j) {
    capacity += static_cast<FullInformationPolicy*>(policies[j])->nets_.size();
  }
  scratch.a.resize(capacity);
  std::size_t total = 0;
  for (std::size_t j = 0; j < n; ++j) {
    auto& p = *static_cast<FullInformationPolicy*>(policies[j]);
    if (p.pack_deltas(*feedbacks[j], scratch.a.data() + total)) {
      total += p.nets_.size();
    }
  }
  // One vectorized exp sweep over all n x k packed deltas. (A bitwise
  // row-memoisation variant — devices on the same network share a delta
  // row — measured ~20% slower than the straight sweep under LTO: the
  // short per-row kernel calls and compare branches cost more than the
  // redundant exps they avoid at k ~ 3.)
  scratch.b.resize(total);
  stats::vexp(scratch.a.data(), scratch.b.data(), total);
  std::size_t pos = 0;
  // Pass 2 applies each device's slice of factors. The skip test is the
  // same can_pack() predicate pass 1's pack_deltas used, so the two passes
  // can never disagree about which devices contributed a slice.
  for (std::size_t j = 0; j < n; ++j) {
    auto& p = *static_cast<FullInformationPolicy*>(policies[j]);
    if (!p.can_pack(*feedbacks[j])) continue;
    p.apply_factors(scratch.a.data() + pos, scratch.b.data() + pos);
    pos += p.nets_.size();
  }
}

[[gnu::cold]] void FullInformationPolicy::snapshot_into(StateWriter& w) const {
  w.section(0x46554c4cu);  // "FULL"
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(nets_.size());
  for (const NetworkId n : nets_) w.i64(n);
  weights_.snapshot_into(w);
  w.i64(selections_);
}

[[gnu::cold]] void FullInformationPolicy::restore_from(StateReader& r) {
  r.section(0x46554c4cu, "full information");
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  rng_.set_state_words(rng_state);
  nets_.resize(r.count("full information networks"));
  for (NetworkId& n : nets_) n = static_cast<NetworkId>(r.i64());
  weights_.restore_from(r);
  if (weights_.size() != nets_.size()) {
    throw SnapshotError("full information weight table size mismatch");
  }
  selections_ = static_cast<long>(r.i64());
  // Scalar-path scratch is derived state: size it for the restored set.
  delta_scratch_.resize(nets_.size());
  factor_scratch_.resize(nets_.size());
}

void FullInformationPolicy::probabilities_into(std::vector<double>& out) const {
  if (nets_.empty()) {
    out.clear();
    return;
  }
  weights_.probabilities_into(0.0, out);
}

}  // namespace smartexp3::core
