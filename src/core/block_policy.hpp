// The block-based EXP3 engine underlying Block EXP3, Hybrid Block EXP3 and
// Smart EXP3 (paper Algorithm 1 plus the §V implementation details).
//
// The three published variants differ only in which mechanisms are enabled:
//
//   Block EXP3          = adaptive blocking only
//   Hybrid Block EXP3   = + initial exploration + greedy policy
//   Smart EXP3 w/o Reset= + switch-back
//   Smart EXP3          = + minimal reset (periodic and on gain drops)
//
// so all four share this engine, configured through BlockPolicyOptions; the
// named classes in block_exp3.hpp / hybrid_block_exp3.hpp / smart_exp3.hpp
// are thin configuration wrappers. The option granularity doubles as the
// feature-ablation surface used by bench/ablation_features.
#pragma once

#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/weight_table.hpp"
#include "stats/rng.hpp"

namespace smartexp3::core {

struct BlockPolicyOptions {
  // --- mechanism toggles ---
  bool explore_first = false;  ///< visit every network once before learning
  bool greedy = false;         ///< coin-flip greedy selections while gated on
  bool switch_back = false;    ///< abort blocks that start worse than before
  bool reset = false;          ///< minimal reset (periodic + gain-drop)

  // --- parameters (paper §V values) ---
  double beta = 0.1;                  ///< block growth: len = ceil((1+beta)^x)
  double reset_prob_threshold = 0.75; ///< periodic reset: p_{i+} >= this ...
  int reset_block_len = 40;           ///< ... and l_{i+} >= this
  double drop_fraction = 0.15;        ///< gain-drop reset: >=15 % below average
  int drop_slots = 4;                 ///< ... for more than this many slots
  int switch_back_window = 8;         ///< slots of the previous block considered
  /// Fixed exploration rate; <= 0 selects gamma_b = b^{-1/3} (block index).
  double fixed_gamma = -1.0;
};

/// Fixed-capacity sliding window over the most recent slot gains of a block.
/// A ring buffer: push() in steady state neither allocates nor shifts
/// elements (the previous std::vector form paid an O(window) erase-front
/// every slot). Iteration order (sum, count_greater) is oldest-to-newest,
/// matching the accumulate order of the vector it replaced bit-for-bit.
class GainWindow {
 public:
  void reset(std::size_t capacity) {
    buf_.assign(capacity, 0.0);
    head_ = 0;
    count_ = 0;
  }
  void clear() {
    head_ = 0;
    count_ = 0;
  }
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push(double g) {
    if (count_ < buf_.size()) {
      buf_[wrap(head_ + count_)] = g;
      ++count_;
    } else {
      buf_[head_] = g;
      head_ = wrap(head_ + 1);
    }
  }

  /// Most recently pushed gain. Precondition: !empty().
  double back() const { return buf_[wrap(head_ + count_ - 1)]; }

  /// Sum in insertion (oldest-first) order.
  double sum() const {
    double s = 0.0;
    for (std::size_t i = 0; i < count_; ++i) s += buf_[wrap(head_ + i)];
    return s;
  }

  std::size_t count_greater(double g) const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < count_; ++i) n += buf_[wrap(head_ + i)] > g ? 1 : 0;
    return n;
  }

  /// Checkpoint: capacity plus the live values oldest-to-newest. Restore
  /// re-pushes them into a freshly reset buffer — every observable (back,
  /// sum, count_greater and all subsequent pushes) depends only on the
  /// logical sequence, not on where head_ happens to sit.
  void snapshot_into(StateWriter& w) const {
    w.u64(buf_.size());
    w.u64(count_);
    for (std::size_t i = 0; i < count_; ++i) w.f64(buf_[wrap(head_ + i)]);
  }

  void restore_from(StateReader& r) {
    const std::size_t capacity = r.count("gain window capacity");
    const std::size_t n = r.count("gain window size");
    if (n > capacity) throw SnapshotError("gain window overflow");
    reset(capacity);
    for (std::size_t i = 0; i < n; ++i) push(r.f64());
  }

 private:
  // Conditional wrap instead of %: indices never exceed 2 * capacity, and a
  // runtime modulo is a hardware divide on the per-slot path.
  std::size_t wrap(std::size_t i) const { return i >= buf_.size() ? i - buf_.size() : i; }

  std::vector<double> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

class BlockPolicy : public Policy {
 public:
  BlockPolicy(std::uint64_t seed, BlockPolicyOptions options, std::string name);

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot t, const SlotFeedback& fb) override;
  /// Block policies amortise their EXP3 work over whole blocks; the reset
  /// variant pays extra per-slot drop tracking. No batch override: a few ns
  /// of per-slot work gains nothing from SoA packing (see Policy::
  /// uses_batch_dispatch).
  double step_cost_hint() const override { return options_.reset ? 1.8 : 1.0; }
  void snapshot_into(StateWriter& w) const override;
  void restore_from(StateReader& r) override;
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override { return nets_; }
  PolicyStats stats() const override { return stats_; }
  std::string name() const override { return name_; }

  // --- introspection for tests and the stability detector ---
  const BlockPolicyOptions& options() const { return options_; }
  long blocks_started() const { return block_index_; }
  /// Length a new block on network index i would have right now.
  int block_length_of(std::size_t i) const;
  /// Whether the greedy gate (paper §V conditions (a)/(b)) is currently open.
  bool greedy_gate_open() const;
  /// Average per-slot gain observed on network index i (0 if never visited).
  double average_gain(std::size_t i) const;
  /// Force a minimal reset (exposed for tests; normal operation triggers
  /// resets internally).
  void force_reset();

 protected:
  std::size_t k() const { return nets_.size(); }

 private:
  void initialise(const std::vector<NetworkId>& available);
  void apply_network_change(const std::vector<NetworkId>& available);
  void start_block();
  void finalise_block();
  void minimal_reset();
  bool should_switch_back(double first_slot_gain) const;
  void refresh_probabilities();
  std::size_t argmax_probability() const;
  std::size_t argmax_average_gain() const;

  BlockPolicyOptions options_;
  std::string name_;
  stats::Rng rng_;

  std::vector<NetworkId> nets_;
  WeightTable weights_;
  std::vector<int> x_;                 // times each network was selected
  std::vector<double> gain_sum_;       // greedy statistics: sum of slot gains
  std::vector<long> gain_count_;       // ... and slot counts
  std::vector<long> slots_on_;         // total slots per network (for i_max)
  std::size_t slots_on_imax_ = 0;      // first argmax of slots_on_, incremental
  // Memo of ceil((1+beta)^x) by x, capped so it never reallocates; larger x
  // (reachable only with a tiny beta) is computed directly.
  static constexpr std::size_t kBlockLenCacheCap = 512;
  mutable std::vector<int> block_len_cache_;

  long block_index_ = 0;               // b in Algorithm 1 (monotone)
  double gamma_ = 1.0;                 // gamma of the current block
  std::vector<double> probs_;          // distribution computed at block start

  // Current block.
  int cur_ = -1;                       // network index; -1 = between blocks
  int cur_len_ = 0;
  int cur_pos_ = 0;
  double cur_gain_sum_ = 0.0;
  double cur_p_ = 1.0;                 // probability of the selection (p(b))
  bool cur_is_switch_back_ = false;
  GainWindow cur_window_;              // last <= switch_back_window slot gains

  // Previous block (for switch-back decisions).
  int prev_ = -1;
  bool prev_was_switch_back_ = false;
  GainWindow prev_window_;

  int pending_switch_back_to_ = -1;    // set when a block is aborted

  // Initial / forced exploration.
  std::vector<int> explore_queue_;     // network indices not yet explored

  // Greedy gate state (paper §V): y = l_{i+} when condition (a) first fails.
  bool gate_a_failed_once_ = false;
  int gate_y_ = 0;

  // Gain-drop reset detection.
  int consecutive_drop_slots_ = 0;

  PolicyStats stats_;
};

}  // namespace smartexp3::core
