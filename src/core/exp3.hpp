// EXP3 (Auer, Cesa-Bianchi, Freund, Schapire 2002): the classic adversarial
// multi-armed bandit algorithm, selecting per time slot. This is the
// baseline the paper improves upon.
#pragma once

#include <algorithm>

#include "core/policy.hpp"
#include "core/weight_table.hpp"
#include "stats/rng.hpp"

namespace smartexp3::core {

class Exp3 final : public Policy {
 public:
  struct Options {
    /// Fixed exploration rate; <= 0 selects the decaying schedule
    /// gamma_t = t^{-1/3} used in the paper's implementation.
    double fixed_gamma = -1.0;
  };

  explicit Exp3(std::uint64_t seed);
  Exp3(std::uint64_t seed, Options options);

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot t, const SlotFeedback& fb) override;
  /// Monomorphic group loops; observe_batch packs every device's single
  /// weight-update delta into one stats::vexp sweep (bit-identical to the
  /// scalar observe(), which routes the same delta through vexp_one).
  void choose_batch(Slot t, Policy* const* policies, std::size_t n, NetworkId* out,
                    BatchScratch& scratch) override;
  void observe_batch(Slot t, Policy* const* policies,
                     const SlotFeedback* const* feedbacks, std::size_t n,
                     BatchScratch& scratch) override;
  /// ~2.5x a greedy device per slot (one weight-table draw + one exp'd bump).
  double step_cost_hint() const override { return 2.6; }
  bool uses_batch_dispatch() const override { return true; }
  void snapshot_into(StateWriter& w) const override;
  void restore_from(StateReader& r) override;
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override { return nets_; }
  std::string name() const override { return "exp3"; }

  /// Exposed for tests: the gamma that will be used by the next selection.
  double current_gamma() const;

 private:
  /// The importance-weighted log-weight delta for the slot that chosen_ /
  /// p_chosen_ / gamma_used_ describe. Shared by the scalar and batched
  /// update paths so they stay bit-identical by construction.
  double update_delta(const SlotFeedback& fb) const {
    const double ghat = fb.gain / std::max(p_chosen_, 1e-12);
    return gamma_used_ * ghat / static_cast<double>(nets_.size());
  }

  Options options_;
  stats::Rng rng_;
  std::vector<NetworkId> nets_;
  WeightTable weights_;
  long selections_ = 0;   // number of choose() calls so far
  int chosen_ = -1;       // index of the arm picked this slot
  double p_chosen_ = 1.0; // probability with which it was picked
  double gamma_used_ = 1.0;
};

}  // namespace smartexp3::core
