#include "core/block_policy.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/snapshot.hpp"

namespace smartexp3::core {

namespace {

/// Block length rule from Algorithm 1 line 9: l = ceil((1+beta)^x).
int block_length(double beta, int x) {
  const double raw = std::pow(1.0 + beta, static_cast<double>(x));
  // Guard against pathological growth in very long runs.
  if (raw > 1e9) return 1'000'000'000;
  return static_cast<int>(std::ceil(raw - 1e-12));
}

}  // namespace

BlockPolicy::BlockPolicy(std::uint64_t seed, BlockPolicyOptions options, std::string name)
    : options_(options), name_(std::move(name)), rng_(seed) {
  if (options_.beta <= 0.0 || options_.beta > 1.0) {
    throw std::invalid_argument("BlockPolicy: beta must be in (0, 1]");
  }
  if (options_.switch_back_window < 1) {
    throw std::invalid_argument("BlockPolicy: switch_back_window must be >= 1");
  }
  // At the paper's beta = 0.1 a block of index 256 already spans ~4e10
  // slots, so real runs stay far below the cap; block_length_of() falls back
  // to direct computation beyond it rather than growing the memo.
  block_len_cache_.reserve(kBlockLenCacheCap);
}

int BlockPolicy::block_length_of(std::size_t i) const {
  // Memoized: lengths depend only on (beta, x) and beta is fixed per policy.
  // The memo is capped at its reserved capacity so it never reallocates; a
  // tiny beta can push x past the cap (lengths stay small for a long time),
  // in which case we just recompute — same value, no cache growth.
  const int x = x_[i];
  if (x >= static_cast<int>(kBlockLenCacheCap)) return block_length(options_.beta, x);
  while (static_cast<int>(block_len_cache_.size()) <= x) {
    block_len_cache_.push_back(
        block_length(options_.beta, static_cast<int>(block_len_cache_.size())));
  }
  return block_len_cache_[static_cast<std::size_t>(x)];
}

double BlockPolicy::average_gain(std::size_t i) const {
  return gain_count_[i] > 0 ? gain_sum_[i] / static_cast<double>(gain_count_[i]) : 0.0;
}

void BlockPolicy::initialise(const std::vector<NetworkId>& available) {
  nets_ = available;
  weights_.reset(nets_.size());
  x_.assign(nets_.size(), 0);
  gain_sum_.assign(nets_.size(), 0.0);
  gain_count_.assign(nets_.size(), 0);
  slots_on_.assign(nets_.size(), 0);
  slots_on_imax_ = 0;
  cur_window_.reset(static_cast<std::size_t>(options_.switch_back_window));
  prev_window_.reset(static_cast<std::size_t>(options_.switch_back_window));
  probs_.assign(nets_.size(), 1.0 / static_cast<double>(nets_.size()));
  explore_queue_.clear();
  if (options_.explore_first) {
    for (std::size_t i = 0; i < nets_.size(); ++i) explore_queue_.push_back(static_cast<int>(i));
  }
  cur_ = prev_ = -1;
  pending_switch_back_to_ = -1;
  gate_a_failed_once_ = false;
  gate_y_ = 0;
  consecutive_drop_slots_ = 0;
}

void BlockPolicy::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("BlockPolicy: empty network set");
  if (nets_.empty()) {
    initialise(available);
    return;
  }
  if (available == nets_) return;
  apply_network_change(available);
}

void BlockPolicy::apply_network_change(const std::vector<NetworkId>& available) {
  // Paper §III "Change in set of networks": a newly discovered network gets
  // the maximum weight of the existing networks so it is likely to be
  // explored; losing a network with significantly high selection
  // probability, or the one we are connected to, must not leave stale block
  // state behind. Whether a *full* minimal reset follows depends on the
  // reset toggle (Smart EXP3 resets; the w/o-Reset ablation and the plain
  // block variants only patch their state).
  const std::vector<double> old_probs = probs_;

  double max_lw = 0.0;
  bool have_retained = false;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (std::find(available.begin(), available.end(), nets_[i]) != available.end()) {
      max_lw = have_retained ? std::max(max_lw, weights_.log_weight(i)) : weights_.log_weight(i);
      have_retained = true;
    }
  }

  bool lost_connected = false;
  bool lost_high_probability = false;
  const int old_cur_net = cur_ >= 0 ? nets_[static_cast<std::size_t>(cur_)] : kNoNetwork;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (std::find(available.begin(), available.end(), nets_[i]) == available.end()) {
      if (static_cast<int>(i) == cur_) lost_connected = true;
      if (old_probs[i] >= options_.reset_prob_threshold) lost_high_probability = true;
    }
  }

  bool any_new = false;
  WeightTable next_weights;
  std::vector<int> next_x;
  std::vector<double> next_gain_sum;
  std::vector<long> next_gain_count;
  std::vector<long> next_slots_on;
  std::vector<int> next_explore;
  for (std::size_t j = 0; j < available.size(); ++j) {
    const auto it = std::find(nets_.begin(), nets_.end(), available[j]);
    if (it != nets_.end()) {
      const auto i = static_cast<std::size_t>(it - nets_.begin());
      next_weights.push_back(weights_.log_weight(i));
      next_x.push_back(x_[i]);
      next_gain_sum.push_back(gain_sum_[i]);
      next_gain_count.push_back(gain_count_[i]);
      next_slots_on.push_back(slots_on_[i]);
      if (std::find(explore_queue_.begin(), explore_queue_.end(), static_cast<int>(i)) !=
          explore_queue_.end()) {
        next_explore.push_back(static_cast<int>(j));
      }
    } else {
      any_new = true;
      next_weights.push_back(have_retained ? max_lw : 0.0);
      next_x.push_back(0);
      next_gain_sum.push_back(0.0);
      next_gain_count.push_back(0);
      next_slots_on.push_back(0);
      next_explore.push_back(static_cast<int>(j));
    }
  }

  nets_ = available;
  weights_ = std::move(next_weights);
  weights_.normalise();
  x_ = std::move(next_x);
  gain_sum_ = std::move(next_gain_sum);
  gain_count_ = std::move(next_gain_count);
  slots_on_ = std::move(next_slots_on);
  slots_on_imax_ = static_cast<std::size_t>(
      std::max_element(slots_on_.begin(), slots_on_.end()) - slots_on_.begin());
  explore_queue_ = std::move(next_explore);
  // Recompute the mixed strategy immediately: an in-flight block may keep
  // running, and observers (the stability detector) read probabilities
  // between block boundaries.
  weights_.probabilities_into(gamma_, probs_);

  // Any in-flight block refers to old indices; drop it without a weight
  // update (the paper "resets the block" when the connected network is gone;
  // for simple additions the block is re-keyed below if possible).
  if (cur_ >= 0 && !lost_connected && old_cur_net != kNoNetwork) {
    const auto it = std::find(nets_.begin(), nets_.end(), old_cur_net);
    cur_ = it != nets_.end() ? static_cast<int>(it - nets_.begin()) : -1;
  } else {
    cur_ = -1;
  }
  prev_ = -1;  // stale index space; switch-back target would be meaningless
  prev_window_.clear();
  pending_switch_back_to_ = -1;

  if (options_.reset && (any_new || lost_high_probability)) {
    cur_ = -1;
    minimal_reset();
  }
}

void BlockPolicy::refresh_probabilities() {
  gamma_ = options_.fixed_gamma > 0.0 ? std::min(options_.fixed_gamma, 1.0)
                                      : gamma_schedule(block_index_);
  weights_.probabilities_into(gamma_, probs_);
}

std::size_t BlockPolicy::argmax_probability() const {
  return static_cast<std::size_t>(
      std::max_element(probs_.begin(), probs_.end()) - probs_.begin());
}

std::size_t BlockPolicy::argmax_average_gain() const {
  std::size_t best = 0;
  double best_avg = -1.0;
  for (std::size_t i = 0; i < k(); ++i) {
    const double avg = average_gain(i);
    if (avg > best_avg) {
      best_avg = avg;
      best = i;
    }
  }
  return best;
}

bool BlockPolicy::greedy_gate_open() const {
  if (!options_.greedy || k() < 2) return false;
  // Condition (a): the distribution is still near-uniform.
  const auto [mn, mx] = std::minmax_element(probs_.begin(), probs_.end());
  if (*mx - *mn <= 1.0 / static_cast<double>(k() - 1)) return true;
  // Condition (b): shortly after a reset — the favourite's block length has
  // not yet regrown to y, its value when (a) first failed.
  if (gate_a_failed_once_) {
    return block_length_of(argmax_probability()) < gate_y_;
  }
  return false;
}

void BlockPolicy::start_block() {
  ++block_index_;
  ++stats_.blocks_started;
  refresh_probabilities();

  // Track the greedy gate's y parameter: l_{i+} when (a) first fails.
  if (options_.greedy && !gate_a_failed_once_ && k() >= 2) {
    const auto [mn, mx] = std::minmax_element(probs_.begin(), probs_.end());
    if (*mx - *mn > 1.0 / static_cast<double>(k() - 1)) {
      gate_a_failed_once_ = true;
      gate_y_ = block_length_of(argmax_probability());
    }
  }

  // Periodic minimal reset (paper §V): the favourite network is both very
  // likely and held for very long blocks — time to re-explore.
  if (options_.reset) {
    const std::size_t fav = argmax_probability();
    if (probs_[fav] >= options_.reset_prob_threshold &&
        block_length_of(fav) >= options_.reset_block_len) {
      minimal_reset();
    }
  }

  cur_is_switch_back_ = false;
  if (pending_switch_back_to_ >= 0) {
    // Special switch-back block: return to the previous network, p(b) = 1.
    cur_ = pending_switch_back_to_;
    pending_switch_back_to_ = -1;
    cur_p_ = 1.0;
    cur_is_switch_back_ = true;
    ++stats_.switch_backs;
  } else if (!explore_queue_.empty()) {
    // Initial (or post-reset) exploration in random order.
    const std::size_t pick = static_cast<std::size_t>(rng_.below(explore_queue_.size()));
    cur_ = explore_queue_[pick];
    cur_p_ = 1.0 / static_cast<double>(explore_queue_.size());
    explore_queue_.erase(explore_queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  } else if (const bool gate_open = greedy_gate_open(); gate_open && rng_.coin()) {
    // Greedy selection: the network with the highest average observed gain.
    cur_ = static_cast<int>(argmax_average_gain());
    cur_p_ = 0.5;
    ++stats_.greedy_selections;
  } else if (gate_open) {
    // The coin said "random": sample the EXP3 distribution, but the overall
    // selection probability is halved by the coin flip.
    const std::size_t idx = rng_.sample_discrete(probs_);
    cur_ = static_cast<int>(idx);
    cur_p_ = probs_[idx] / 2.0;
  } else {
    const std::size_t idx = rng_.sample_discrete(probs_);
    cur_ = static_cast<int>(idx);
    cur_p_ = probs_[idx];
  }

  cur_len_ = block_length_of(static_cast<std::size_t>(cur_));
  ++x_[static_cast<std::size_t>(cur_)];
  cur_pos_ = 0;
  cur_gain_sum_ = 0.0;
  cur_window_.clear();
}

[[gnu::hot]] NetworkId BlockPolicy::choose(Slot) {
  assert(!nets_.empty());
  if (cur_ < 0 || cur_pos_ >= cur_len_) start_block();
  return nets_[static_cast<std::size_t>(cur_)];
}

bool BlockPolicy::should_switch_back(double first_slot_gain) const {
  if (!options_.switch_back) return false;
  if (cur_is_switch_back_ || prev_was_switch_back_) return false;  // no ping-pong
  if (prev_ < 0 || prev_ == cur_) return false;   // no previous network to return to
  if (prev_window_.empty()) return false;
  // Stale previous network index after an environment change is cleared in
  // apply_network_change, so prev_ is trustworthy here.
  const double avg = prev_window_.sum() / static_cast<double>(prev_window_.size());
  if (first_slot_gain < avg) return true;
  if (first_slot_gain < prev_window_.back()) return true;
  return 2 * prev_window_.count_greater(first_slot_gain) > prev_window_.size();
}

void BlockPolicy::finalise_block() {
  // Algorithm 1 lines 10-12 at block granularity: the block gain
  // g_ib(b) in [0, l_ib] is the sum of per-slot gains, the estimate divides
  // by the selection probability, and the weight update multiplies by
  // exp(gamma * ghat / k).
  const double ghat = cur_gain_sum_ / std::max(cur_p_, 1e-12);
  weights_.bump(static_cast<std::size_t>(cur_), gamma_ * ghat / static_cast<double>(k()));
  weights_.maybe_normalise();

  prev_ = cur_;
  prev_was_switch_back_ = cur_is_switch_back_;
  prev_window_ = cur_window_;
  cur_ = -1;
}

void BlockPolicy::minimal_reset() {
  // Paper §III/§V: block lengths and greedy statistics are cleared and
  // exploration is forced, but the weights (everything EXP3 has learned)
  // are retained — that is what makes the reset "minimal".
  std::fill(x_.begin(), x_.end(), 0);
  std::fill(gain_sum_.begin(), gain_sum_.end(), 0.0);
  std::fill(gain_count_.begin(), gain_count_.end(), 0);
  std::fill(slots_on_.begin(), slots_on_.end(), 0);
  slots_on_imax_ = 0;
  explore_queue_.clear();
  for (std::size_t i = 0; i < k(); ++i) explore_queue_.push_back(static_cast<int>(i));
  consecutive_drop_slots_ = 0;
  pending_switch_back_to_ = -1;
  prev_ = -1;
  prev_window_.clear();
  prev_was_switch_back_ = false;
  ++stats_.resets;
}

void BlockPolicy::force_reset() {
  if (cur_ >= 0) finalise_block();
  minimal_reset();
}

[[gnu::hot]] void BlockPolicy::observe(Slot, const SlotFeedback& fb) {
  if (cur_ < 0) return;  // block was dropped by an environment change
  const double g = fb.gain;
  const auto cur = static_cast<std::size_t>(cur_);

  cur_gain_sum_ += g;
  cur_window_.push(g);
  ++cur_pos_;

  // Greedy statistics (exclude nothing; the paper estimates each network's
  // quality by the average gain observed on it).
  gain_sum_[cur] += g;
  gain_count_[cur] += 1;
  slots_on_[cur] += 1;
  // Maintain the first argmax of slots_on_ incrementally: only slots_on_[cur]
  // grew, so the argmax can only move to cur — either it strictly exceeds the
  // old maximum or it ties it from a lower index (max_element's first-match
  // rule). Saves the O(networks) scan the seed paid every slot.
  if (slots_on_[cur] > slots_on_[slots_on_imax_] ||
      (slots_on_[cur] == slots_on_[slots_on_imax_] && cur < slots_on_imax_)) {
    slots_on_imax_ = cur;
  }

  // Gain-drop reset (paper §V): a >= 15 % drop on the most-used network,
  // sustained for more than drop_slots consecutive slots, signals a real
  // change in the environment rather than noise.
  if (options_.reset) {
    const std::size_t imax = slots_on_imax_;
    if (cur == imax && gain_count_[cur] > 1) {
      const double avg = average_gain(cur);
      if (avg > 0.0 && g < (1.0 - options_.drop_fraction) * avg) {
        ++consecutive_drop_slots_;
      } else {
        consecutive_drop_slots_ = 0;
      }
      if (consecutive_drop_slots_ > options_.drop_slots) {
        finalise_block();
        minimal_reset();
        return;
      }
    } else {
      consecutive_drop_slots_ = 0;
    }
  }

  // Switch-back evaluation after the first slot of a block (paper §III/§V):
  // if the new network is worse than the previous one was, abort this block
  // (it becomes a single-slot block, weights updated as usual) and return.
  if (cur_pos_ == 1 && should_switch_back(g)) {
    const int target = prev_;
    finalise_block();
    pending_switch_back_to_ = target;
    return;
  }

  if (cur_pos_ >= cur_len_) finalise_block();
}

[[gnu::cold]] void BlockPolicy::snapshot_into(StateWriter& w) const {
  w.section(0x424c4f43u);  // "BLOC"
  for (const std::uint64_t word : rng_.state_words()) w.u64(word);
  w.u64(nets_.size());
  for (const NetworkId n : nets_) w.i64(n);
  weights_.snapshot_into(w);
  w.int_vec(x_);
  w.f64_vec(gain_sum_);
  w.u64(gain_count_.size());
  for (const long v : gain_count_) w.i64(v);
  w.u64(slots_on_.size());
  for (const long v : slots_on_) w.i64(v);
  w.u64(slots_on_imax_);
  w.i64(block_index_);
  w.f64(gamma_);
  w.f64_vec(probs_);
  w.i64(cur_);
  w.i64(cur_len_);
  w.i64(cur_pos_);
  w.f64(cur_gain_sum_);
  w.f64(cur_p_);
  w.b(cur_is_switch_back_);
  cur_window_.snapshot_into(w);
  w.i64(prev_);
  w.b(prev_was_switch_back_);
  prev_window_.snapshot_into(w);
  w.i64(pending_switch_back_to_);
  w.int_vec(explore_queue_);
  w.b(gate_a_failed_once_);
  w.i64(gate_y_);
  w.i64(consecutive_drop_slots_);
  w.i64(stats_.blocks_started);
  w.i64(stats_.greedy_selections);
  w.i64(stats_.switch_backs);
  w.i64(stats_.resets);
}

[[gnu::cold]] void BlockPolicy::restore_from(StateReader& r) {
  r.section(0x424c4f43u, "block policy");
  std::array<std::uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = r.u64();
  rng_.set_state_words(rng_state);
  nets_.resize(r.count("block policy networks"));
  for (NetworkId& n : nets_) n = static_cast<NetworkId>(r.i64());
  weights_.restore_from(r);
  r.int_vec(x_, "block policy x");
  r.f64_vec(gain_sum_, "block policy gain sums");
  gain_count_.resize(r.count("block policy gain counts"));
  for (long& v : gain_count_) v = static_cast<long>(r.i64());
  slots_on_.resize(r.count("block policy slot counts"));
  for (long& v : slots_on_) v = static_cast<long>(r.i64());
  slots_on_imax_ = r.count("block policy slots argmax", nets_.size());
  block_index_ = static_cast<long>(r.i64());
  gamma_ = r.f64();
  r.f64_vec(probs_, "block policy probabilities");
  cur_ = static_cast<int>(r.i64());
  cur_len_ = static_cast<int>(r.i64());
  cur_pos_ = static_cast<int>(r.i64());
  cur_gain_sum_ = r.f64();
  cur_p_ = r.f64();
  cur_is_switch_back_ = r.b();
  cur_window_.restore_from(r);
  prev_ = static_cast<int>(r.i64());
  prev_was_switch_back_ = r.b();
  prev_window_.restore_from(r);
  pending_switch_back_to_ = static_cast<int>(r.i64());
  r.int_vec(explore_queue_, "block policy explore queue");
  gate_a_failed_once_ = r.b();
  gate_y_ = static_cast<int>(r.i64());
  consecutive_drop_slots_ = static_cast<int>(r.i64());
  stats_.blocks_started = static_cast<int>(r.i64());
  stats_.greedy_selections = static_cast<int>(r.i64());
  stats_.switch_backs = static_cast<int>(r.i64());
  stats_.resets = static_cast<int>(r.i64());
  if (weights_.size() != nets_.size() || x_.size() != nets_.size() ||
      gain_sum_.size() != nets_.size() || gain_count_.size() != nets_.size() ||
      slots_on_.size() != nets_.size() || probs_.size() != nets_.size()) {
    throw SnapshotError("block policy per-network state size mismatch");
  }
}

void BlockPolicy::probabilities_into(std::vector<double>& out) const {
  if (nets_.empty()) {
    out.clear();
    return;
  }
  out.assign(probs_.begin(), probs_.end());
}

}  // namespace smartexp3::core
