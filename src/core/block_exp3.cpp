#include "core/block_exp3.hpp"

namespace smartexp3::core {

namespace {
BlockPolicyOptions block_options(double beta) {
  BlockPolicyOptions o;
  o.beta = beta;
  return o;
}
}  // namespace

BlockExp3::BlockExp3(std::uint64_t seed, double beta)
    : BlockPolicy(seed, block_options(beta), "block_exp3") {}

}  // namespace smartexp3::core
