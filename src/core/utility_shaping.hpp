// Utility shaping — the paper's §IX future work: "consider other selection
// criteria, such as application requirements, energy constraints and
// monetary cost".
//
// UtilityShapedPolicy wraps any selection policy and rewrites the gain it
// observes: instead of learning on raw throughput, the wrapped policy learns
// on a utility that discounts each network's monetary cost (e.g. metered
// cellular data) and energy draw (e.g. a power-hungry radio). The game
// structure is unchanged — it is still a congestion game, just with shaped
// payoffs — so every property of the underlying algorithm carries over.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/policy.hpp"

namespace smartexp3::core {

/// Per-network shaping terms. Utilities are computed as
///   utility = gain * rate_weight
///           - cost_weight   * cost_per_mb   * (rate implied by the gain)
///           - energy_weight * energy_per_slot
/// and clamped back into [0, 1] so the EXP3 machinery's assumptions hold.
struct NetworkCosts {
  double cost_per_mb = 0.0;      ///< monetary cost, arbitrary currency / MB
  double energy_per_slot = 0.0;  ///< battery drain per 15 s slot, in [0, 1]
};

struct UtilityWeights {
  double rate = 1.0;    ///< weight of raw throughput
  double cost = 0.0;    ///< weight of monetary cost
  double energy = 0.0;  ///< weight of energy drain
};

class UtilityShapedPolicy final : public Policy {
 public:
  /// `gain_scale_mbps` must match the world's gain scale so the monetary
  /// term (which is per-MB) can be derived from the scaled gain.
  UtilityShapedPolicy(std::unique_ptr<Policy> inner, UtilityWeights weights,
                      std::unordered_map<NetworkId, NetworkCosts> costs,
                      double gain_scale_mbps, double slot_seconds = 15.0);

  void set_networks(const std::vector<NetworkId>& available) override;
  NetworkId choose(Slot t) override;
  void observe(Slot t, const SlotFeedback& fb) override;
  /// Shaping is transparent to the feedback model: the wrapper needs exactly
  /// what the wrapped policy needs.
  FeedbackNeeds feedback_needs() const override;
  bool shares_state_across_devices() const override;
  /// Shaping adds O(1) per slot on top of whatever the inner policy costs.
  double step_cost_hint() const override;
  /// Delegates to the wrapped policy plus the one slot-local field the
  /// wrapper keeps (the network whose gain the next observe() shapes).
  void snapshot_into(StateWriter& w) const override;
  void restore_from(StateReader& r) override;
  void probabilities_into(std::vector<double>& out) const override;
  const std::vector<NetworkId>& networks() const override;
  void on_leave(Slot t) override;
  PolicyStats stats() const override;
  std::string name() const override;

  /// The shaped utility for a raw scaled gain on a given network (exposed
  /// for tests and reports).
  double shape(NetworkId net, double gain) const;

 private:
  std::unique_ptr<Policy> inner_;
  UtilityWeights weights_;
  std::unordered_map<NetworkId, NetworkCosts> costs_;
  double gain_scale_mbps_;
  double slot_seconds_;
  NetworkId last_chosen_ = kNoNetwork;
};

/// Convenience: wrap a policy so cellular-type costs apply to one set of
/// networks (id -> costs map built by the caller).
std::unique_ptr<Policy> make_utility_shaped(
    std::unique_ptr<Policy> inner, UtilityWeights weights,
    std::unordered_map<NetworkId, NetworkCosts> costs, double gain_scale_mbps);

}  // namespace smartexp3::core
