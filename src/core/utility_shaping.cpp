#include "core/utility_shaping.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/snapshot.hpp"

#include "netsim/types.hpp"

namespace smartexp3::core {

UtilityShapedPolicy::UtilityShapedPolicy(std::unique_ptr<Policy> inner,
                                         UtilityWeights weights,
                                         std::unordered_map<NetworkId, NetworkCosts> costs,
                                         double gain_scale_mbps, double slot_seconds)
    : inner_(std::move(inner)),
      weights_(weights),
      costs_(std::move(costs)),
      gain_scale_mbps_(gain_scale_mbps),
      slot_seconds_(slot_seconds) {
  if (!inner_) throw std::invalid_argument("UtilityShapedPolicy: null inner policy");
  if (gain_scale_mbps_ <= 0.0) {
    throw std::invalid_argument("UtilityShapedPolicy: gain scale must be positive");
  }
}

double UtilityShapedPolicy::shape(NetworkId net, double gain) const {
  double utility = weights_.rate * gain;
  const auto it = costs_.find(net);
  if (it != costs_.end()) {
    // The scaled gain corresponds to gain * scale Mbps, i.e. this many MB
    // per slot — the basis for the monetary term.
    const double mb_this_slot = mbps_seconds_to_mb(gain * gain_scale_mbps_, slot_seconds_);
    utility -= weights_.cost * it->second.cost_per_mb * mb_this_slot;
    utility -= weights_.energy * it->second.energy_per_slot;
  }
  return std::clamp(utility, 0.0, 1.0);
}

void UtilityShapedPolicy::set_networks(const std::vector<NetworkId>& available) {
  inner_->set_networks(available);
}

NetworkId UtilityShapedPolicy::choose(Slot t) {
  last_chosen_ = inner_->choose(t);
  return last_chosen_;
}

void UtilityShapedPolicy::observe(Slot t, const SlotFeedback& fb) {
  // The world guarantees observe() follows the matching choose(), so the
  // gain belongs to last_chosen_.
  SlotFeedback shaped = fb;
  shaped.gain = shape(last_chosen_, fb.gain);
  for (std::size_t i = 0; i < shaped.all_gains.size(); ++i) {
    shaped.all_gains[i] = shape(inner_->networks()[i], fb.all_gains[i]);
  }
  inner_->observe(t, shaped);
}

FeedbackNeeds UtilityShapedPolicy::feedback_needs() const {
  return inner_->feedback_needs();
}

bool UtilityShapedPolicy::shares_state_across_devices() const {
  return inner_->shares_state_across_devices();
}

double UtilityShapedPolicy::step_cost_hint() const {
  return inner_->step_cost_hint();
}

[[gnu::cold]] void UtilityShapedPolicy::snapshot_into(StateWriter& w) const {
  w.section(0x5554494cu);  // "UTIL"
  w.i64(last_chosen_);
  inner_->snapshot_into(w);
}

[[gnu::cold]] void UtilityShapedPolicy::restore_from(StateReader& r) {
  r.section(0x5554494cu, "utility shaping");
  last_chosen_ = static_cast<NetworkId>(r.i64());
  inner_->restore_from(r);
}

void UtilityShapedPolicy::probabilities_into(std::vector<double>& out) const {
  inner_->probabilities_into(out);
}

const std::vector<NetworkId>& UtilityShapedPolicy::networks() const {
  return inner_->networks();
}

void UtilityShapedPolicy::on_leave(Slot t) { inner_->on_leave(t); }

PolicyStats UtilityShapedPolicy::stats() const { return inner_->stats(); }

std::string UtilityShapedPolicy::name() const {
  return "utility_shaped(" + inner_->name() + ")";
}

std::unique_ptr<Policy> make_utility_shaped(
    std::unique_ptr<Policy> inner, UtilityWeights weights,
    std::unordered_map<NetworkId, NetworkCosts> costs, double gain_scale_mbps) {
  return std::make_unique<UtilityShapedPolicy>(std::move(inner), weights,
                                               std::move(costs), gain_scale_mbps);
}

}  // namespace smartexp3::core
