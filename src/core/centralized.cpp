#include "core/centralized.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/snapshot.hpp"

#include "metrics/nash.hpp"

namespace smartexp3::core {

CentralizedCoordinator::CentralizedCoordinator(std::vector<double> capacities)
    : capacities_(std::move(capacities)) {
  if (capacities_.empty()) {
    throw std::invalid_argument("CentralizedCoordinator: no networks");
  }
}

void CentralizedCoordinator::register_device(DeviceId id) {
  if (assignment_.emplace(id, kNoNetwork).second) dirty_ = true;
}

void CentralizedCoordinator::deregister_device(DeviceId id) {
  if (assignment_.erase(id) > 0) dirty_ = true;
}

NetworkId CentralizedCoordinator::assignment(DeviceId id) {
  if (dirty_) rebalance();
  const auto it = assignment_.find(id);
  if (it == assignment_.end() || it->second == kNoNetwork) {
    throw std::logic_error("CentralizedCoordinator: device not registered/assigned");
  }
  return it->second;
}

void CentralizedCoordinator::rebalance() {
  // Target equilibrium counts, then a minimum-move reassignment: devices
  // keep their current network while quota remains, and only the surplus is
  // moved into networks with free quota.
  const auto target =
      metrics::water_fill_allocation(capacities_, static_cast<int>(assignment_.size()));
  std::vector<int> remaining = target;
  std::vector<DeviceId> to_place;
  for (auto& [id, net] : assignment_) {
    if (net != kNoNetwork && remaining[static_cast<std::size_t>(net)] > 0) {
      --remaining[static_cast<std::size_t>(net)];
    } else {
      to_place.push_back(id);
    }
  }
  std::size_t next_net = 0;
  for (const DeviceId id : to_place) {
    while (next_net < remaining.size() && remaining[next_net] == 0) ++next_net;
    if (next_net >= remaining.size()) {
      throw std::logic_error("CentralizedCoordinator: quota accounting mismatch");
    }
    assignment_[id] = static_cast<NetworkId>(next_net);
    --remaining[next_net];
  }
  dirty_ = false;
}

[[gnu::cold]] void CentralizedCoordinator::snapshot_into(StateWriter& w) const {
  w.section(0x434f4f52u);  // "COOR"
  w.u64(assignment_.size());
  for (const auto& [id, net] : assignment_) {
    w.i64(id);
    w.i64(net);
  }
  w.b(dirty_);
}

[[gnu::cold]] void CentralizedCoordinator::restore_from(StateReader& r) {
  r.section(0x434f4f52u, "centralized coordinator");
  const std::size_t n = r.count("coordinator assignments");
  assignment_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const DeviceId id = static_cast<DeviceId>(r.i64());
    const NetworkId net = static_cast<NetworkId>(r.i64());
    assignment_[id] = net;
  }
  dirty_ = r.b();
}

CentralizedPolicy::CentralizedPolicy(DeviceId id,
                                     std::shared_ptr<CentralizedCoordinator> coordinator)
    : id_(id), coordinator_(std::move(coordinator)) {
  if (!coordinator_) throw std::invalid_argument("CentralizedPolicy: null coordinator");
}

CentralizedPolicy::~CentralizedPolicy() {
  if (registered_) coordinator_->deregister_device(id_);
}

void CentralizedPolicy::set_networks(const std::vector<NetworkId>& available) {
  if (available.empty()) throw std::invalid_argument("Centralized: empty network set");
  nets_ = available;
  if (!registered_) {
    coordinator_->register_device(id_);
    registered_ = true;
  }
}

NetworkId CentralizedPolicy::choose(Slot) { return coordinator_->assignment(id_); }

void CentralizedPolicy::on_leave(Slot) {
  if (registered_) {
    coordinator_->deregister_device(id_);
    registered_ = false;
  }
}

[[gnu::cold]] void CentralizedPolicy::snapshot_into(StateWriter& w) const {
  w.section(0x43454e54u);  // "CENT"
  w.b(registered_);
  w.u64(nets_.size());
  for (const NetworkId n : nets_) w.i64(n);
  // The shared coordinator travels with every member: cheap, and the restore
  // path needs no "first device" special case.
  coordinator_->snapshot_into(w);
}

[[gnu::cold]] void CentralizedPolicy::restore_from(StateReader& r) {
  r.section(0x43454e54u, "centralized policy");
  registered_ = r.b();
  nets_.resize(r.count("centralized networks"));
  for (NetworkId& n : nets_) n = static_cast<NetworkId>(r.i64());
  coordinator_->restore_from(r);
}

void CentralizedPolicy::probabilities_into(std::vector<double>& out) const {
  out.assign(nets_.size(), 0.0);
  if (!registered_) return;
  // The coordinator's assignment is deterministic: one-hot.
  const NetworkId net = coordinator_->assignment(id_);
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i] == net) out[i] = 1.0;
  }
}

}  // namespace smartexp3::core
