#include "core/smart_exp3.hpp"

namespace smartexp3::core {

namespace {
BlockPolicyOptions to_options(const SmartExp3Tunables& t) {
  BlockPolicyOptions o;
  o.beta = t.beta;
  o.explore_first = t.enable_explore_first;
  o.greedy = t.enable_greedy;
  o.switch_back = t.enable_switch_back;
  o.reset = t.enable_reset;
  o.reset_prob_threshold = t.reset_prob_threshold;
  o.reset_block_len = t.reset_block_len;
  o.drop_fraction = t.drop_fraction;
  o.drop_slots = t.drop_slots;
  o.switch_back_window = t.switch_back_window;
  return o;
}

std::string variant_name(const SmartExp3Tunables& t) {
  return t.enable_reset ? "smart_exp3" : "smart_exp3_noreset";
}
}  // namespace

SmartExp3::SmartExp3(std::uint64_t seed, SmartExp3Tunables tunables)
    : BlockPolicy(seed, to_options(tunables), variant_name(tunables)) {}

SmartExp3Tunables smart_exp3_no_reset() {
  SmartExp3Tunables t;
  t.enable_reset = false;
  return t;
}

}  // namespace smartexp3::core
