// ScenarioSpec I/O: a serializable text form of ExperimentConfig.
//
// The format is a strict JSON subset (objects, arrays, strings, numbers,
// booleans; UTF-8 passthrough in strings; no comments), written and parsed
// entirely in-repo — no third-party dependency. A spec covers everything an
// ExperimentConfig holds: world parameters, networks (including coverage
// areas and capacity traces), device groups (count + policy + area +
// join/leave), scenario events (moves, capacity changes), the share/delay
// model kinds and parameters, Smart EXP3 tunables, recorder options and the
// base seed. Round-trip is lossless: parse(write(cfg)) simulates the exact
// same trajectory as cfg for any seed (doubles are printed in shortest
// round-trip form), which tests/test_spec_io.cpp pins for the canonical
// settings.
//
// The parser is strict and actionable: unknown keys, type mismatches,
// out-of-range numbers and truncated input all raise SpecError naming the
// offending key path and the line number. Missing optional keys fall back
// to the ExperimentConfig defaults, so hand-written specs can stay terse
// even though the writer always emits every section.
//
// Typical workflow (see README "ScenarioSpec files"):
//   netsel_sim --dump-spec setting1 > s.json   # export a canonical setting
//   $EDITOR s.json                             # tweak devices, traces, ...
//   netsel_sim --spec s.json                   # run the edited scenario
#pragma once

#include <stdexcept>
#include <string>

#include "exp/config.hpp"

namespace smartexp3::exp {

/// Raised on malformed spec text: syntax errors, unknown keys, type or
/// range mismatches. The message carries the key path and line number.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Current format version; written as "spec_version" and checked on parse.
inline constexpr int kSpecVersion = 1;

/// Serialize a config as ScenarioSpec text (pretty-printed, deterministic:
/// equal configs produce byte-identical text).
std::string to_spec_text(const ExperimentConfig& config);

/// Parse ScenarioSpec text. Throws SpecError on malformed input. The result
/// is parsed, not validated — callers run it through build_world (which
/// calls ExperimentConfig::validate) or validate_or_throw themselves.
ExperimentConfig parse_spec_text(const std::string& text);

/// File convenience wrappers. load_spec_file throws SpecError when the file
/// cannot be read; save_spec_file throws std::runtime_error when it cannot
/// be written.
ExperimentConfig load_spec_file(const std::string& path);
void save_spec_file(const ExperimentConfig& config, const std::string& path);

}  // namespace smartexp3::exp
