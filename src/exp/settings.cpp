#include "exp/settings.hpp"

#include <stdexcept>

namespace smartexp3::exp {

namespace {

std::vector<netsim::DeviceSpec> make_devices(int n, const std::string& policy) {
  std::vector<netsim::DeviceSpec> devices;
  devices.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    netsim::DeviceSpec d;
    d.id = i + 1;  // paper numbers devices from 1
    d.policy_name = policy;
    devices.push_back(d);
  }
  return devices;
}

/// The paper's 33 Mbps aggregate split 4 / 7 / 22 (setting 1). Network 2
/// (22 Mbps) plays the cellular role; the others are WiFi APs.
std::vector<netsim::Network> setting1_networks() {
  return {netsim::make_wifi(0, 4.0), netsim::make_wifi(1, 7.0),
          netsim::make_cellular(2, 22.0)};
}

std::vector<netsim::Network> setting2_networks() {
  return {netsim::make_wifi(0, 11.0), netsim::make_wifi(1, 11.0),
          netsim::make_cellular(2, 11.0)};
}

}  // namespace

ExperimentConfig static_setting1(const std::string& policy, int n_devices, Slot horizon) {
  ExperimentConfig cfg;
  cfg.name = "static-setting-1";
  cfg.world.horizon = horizon;
  cfg.networks = setting1_networks();
  cfg.devices = make_devices(n_devices, policy);
  return cfg;
}

ExperimentConfig static_setting2(const std::string& policy, int n_devices, Slot horizon) {
  ExperimentConfig cfg;
  cfg.name = "static-setting-2";
  cfg.world.horizon = horizon;
  cfg.networks = setting2_networks();
  cfg.devices = make_devices(n_devices, policy);
  return cfg;
}

ExperimentConfig scalability_setting(const std::string& policy, int k, int n, Slot horizon) {
  if (k < 1) throw std::invalid_argument("scalability_setting: k must be >= 1");
  ExperimentConfig cfg;
  cfg.name = "scalability-k" + std::to_string(k) + "-n" + std::to_string(n);
  cfg.world.horizon = horizon;
  // The paper does not list the sweep's capacities, but its k=3 / n=20 data
  // point (~250 slots) matches Table IV's *setting 2* value (244.5), so the
  // sweep evidently used uniform-rate networks; we use 11 Mbps each, the
  // setting-2 rate. (With setting-1-style skewed rates the sweep would
  // additionally measure the small-network stranding effect the paper
  // studies separately.)
  if (k > 7) throw std::invalid_argument("scalability_setting: k must be <= 7");
  for (int i = 0; i < k; ++i) {
    cfg.networks.push_back(i == 2 ? netsim::make_cellular(i, 11.0)
                                  : netsim::make_wifi(i, 11.0));
  }
  cfg.devices = make_devices(n, policy);
  return cfg;
}

ExperimentConfig scalability_xl_setting(const std::string& policy, int k, int n,
                                        Slot horizon) {
  if (k < 1) throw std::invalid_argument("scalability_xl_setting: k must be >= 1");
  if (n < 1) throw std::invalid_argument("scalability_xl_setting: n must be >= 1");
  ExperimentConfig cfg;
  cfg.name = "scalability-xl-k" + std::to_string(k) + "-n" + std::to_string(n);
  cfg.world.horizon = horizon;
  // Same uniform 11 Mbps network family as scalability_setting, but without
  // its paper-faithful k <= 7 cap: this setting exists to exercise the
  // sharded engine at 10^5..10^6 devices, beyond the paper's sweep.
  for (int i = 0; i < k; ++i) {
    cfg.networks.push_back(i == 2 ? netsim::make_cellular(i, 11.0)
                                  : netsim::make_wifi(i, 11.0));
  }
  cfg.devices = make_devices(n, policy);
  // The per-slot distance-to-NE metric sorts every active device's rate;
  // at this scale that would dominate the run, and throughput is the point.
  cfg.recorder.track_distance = false;
  return cfg;
}

ExperimentConfig dynamic_join_setting(const std::string& policy) {
  ExperimentConfig cfg = static_setting1(policy);
  cfg.name = "dynamic-join";
  // Devices 12..20 join at the start of slot 400 (paper t=401, 1-based) and
  // leave after slot 799.
  for (auto& d : cfg.devices) {
    if (d.id >= 12) {
      d.join_slot = 400;
      d.leave_slot = 800;
    }
  }
  return cfg;
}

ExperimentConfig dynamic_leave_setting(const std::string& policy) {
  ExperimentConfig cfg = static_setting1(policy);
  cfg.name = "dynamic-leave";
  // Devices 5..20 leave after slot 599 (paper: 16 devices at end of t=600).
  for (auto& d : cfg.devices) {
    if (d.id >= 5) d.leave_slot = 600;
  }
  return cfg;
}

std::vector<std::vector<DeviceId>> mobility_groups() {
  std::vector<std::vector<DeviceId>> groups(4);
  for (DeviceId id = 1; id <= 8; ++id) groups[0].push_back(id);    // movers
  for (DeviceId id = 9; id <= 10; ++id) groups[1].push_back(id);   // food court
  for (DeviceId id = 11; id <= 15; ++id) groups[2].push_back(id);  // study area
  for (DeviceId id = 16; id <= 20; ++id) groups[3].push_back(id);  // bus stop
  return groups;
}

ExperimentConfig mobility_setting(const std::string& policy) {
  ExperimentConfig cfg;
  cfg.name = "mobility-setting-3";
  cfg.world.horizon = 1200;
  // Areas: 0 = food court, 1 = study area, 2 = bus stop (paper Fig 1).
  // Network 0 is the cellular macro cell covering everything; the paper's
  // coverage map is reconstructed in DESIGN.md.
  cfg.networks = {
      netsim::make_cellular(0, 16.0, {}, "cellular"),
      netsim::make_wifi(1, 14.0, {0}, "wlan-2"),
      netsim::make_wifi(2, 22.0, {0, 1}, "wlan-3"),
      netsim::make_wifi(3, 7.0, {1}, "wlan-4"),
      netsim::make_wifi(4, 4.0, {2}, "wlan-5"),
  };
  cfg.devices = make_devices(20, policy);
  for (auto& d : cfg.devices) {
    if (d.id <= 10) {
      d.area = 0;
    } else if (d.id <= 15) {
      d.area = 1;
    } else {
      d.area = 2;
    }
  }
  // Devices 1..8 move food court -> study area at slot 400 and on to the
  // bus stop at slot 800.
  for (DeviceId id = 1; id <= 8; ++id) {
    cfg.scenario.move(400, id, 1);
    cfg.scenario.move(800, id, 2);
  }
  cfg.recorder.groups = mobility_groups();
  return cfg;
}

ExperimentConfig greedy_mix_setting(int n_smart) {
  if (n_smart < 0 || n_smart > 20) {
    throw std::invalid_argument("greedy_mix_setting: n_smart must be in [0, 20]");
  }
  ExperimentConfig cfg = static_setting1("greedy");
  cfg.name = "greedy-mix-" + std::to_string(n_smart);
  for (auto& d : cfg.devices) {
    if (d.id <= n_smart) d.policy_name = "smart_exp3";
  }
  return cfg;
}

ExperimentConfig trace_setting(const trace::TracePair& pair, const std::string& policy) {
  if (!pair.consistent() || pair.slots() == 0) {
    throw std::invalid_argument("trace_setting: inconsistent trace pair");
  }
  ExperimentConfig cfg;
  cfg.name = "trace-" + pair.label;
  cfg.world.horizon = static_cast<Slot>(pair.slots());
  auto wifi = netsim::make_wifi(0, 0.0, {}, "wifi-trace");
  wifi.trace = pair.wifi_mbps;
  auto cell = netsim::make_cellular(1, 0.0, {}, "cellular-trace");
  cell.trace = pair.cellular_mbps;
  cfg.networks = {std::move(wifi), std::move(cell)};
  cfg.devices = make_devices(1, policy);
  cfg.recorder.track_selections = true;
  cfg.recorder.track_distance = false;  // single device: congestion metrics moot
  return cfg;
}

ExperimentConfig controlled_setting(const std::vector<std::string>& policies, Slot horizon) {
  if (policies.empty()) throw std::invalid_argument("controlled_setting: no policies");
  ExperimentConfig cfg;
  cfg.name = "controlled";
  cfg.world.horizon = horizon;
  cfg.networks = setting1_networks();
  cfg.devices = make_devices(14, policies.front());
  if (policies.size() > 1) {
    if (policies.size() != cfg.devices.size()) {
      throw std::invalid_argument("controlled_setting: need 1 or 14 policy names");
    }
    for (std::size_t i = 0; i < cfg.devices.size(); ++i) {
      cfg.devices[i].policy_name = policies[i];
    }
  }
  cfg.share = ShareKind::kNoisy;
  cfg.recorder.track_def4 = true;
  cfg.recorder.track_distance = false;  // Definition 3 assumes clean equal shares
  return cfg;
}

ExperimentConfig controlled_dynamic_setting(const std::string& policy) {
  ExperimentConfig cfg = controlled_setting({policy});
  cfg.name = "controlled-dynamic";
  // 9 devices leave after slot 239 (paper: end of t=240, i.e. 1 hour in).
  for (auto& d : cfg.devices) {
    if (d.id >= 6) d.leave_slot = 240;
  }
  return cfg;
}

ExperimentConfig channel_selection_setting(const std::string& policy, int n_aps,
                                           Slot horizon) {
  if (n_aps < 1) throw std::invalid_argument("channel_selection_setting: n_aps >= 1");
  ExperimentConfig cfg;
  cfg.name = "channel-selection";
  cfg.world.horizon = horizon;
  // Three non-overlapping channels with equal usable airtime (54 Mbps PHY).
  cfg.networks = {netsim::make_wifi(0, 54.0, {}, "channel-1"),
                  netsim::make_wifi(1, 54.0, {}, "channel-6"),
                  netsim::make_wifi(2, 54.0, {}, "channel-11")};
  cfg.devices = make_devices(n_aps, policy);
  // Re-tuning a radio is quick compared to a network re-association, but
  // not free: a fixed fraction of a second of lost airtime.
  cfg.delay = DelayKind::kFixed;
  cfg.fixed_delay_wifi_s = 0.25;
  cfg.fixed_delay_cellular_s = 0.25;
  return cfg;
}

}  // namespace smartexp3::exp
