#include "exp/aggregate.hpp"

#include "stats/summary.hpp"

namespace smartexp3::exp {

namespace {

std::vector<double> pooled_switches(const std::vector<metrics::RunResult>& runs,
                                    bool persistent_only) {
  std::vector<double> xs;
  for (const auto& run : runs) {
    for (std::size_t i = 0; i < run.switches.size(); ++i) {
      if (persistent_only && !run.persistent[i]) continue;
      xs.push_back(static_cast<double>(run.switches[i]));
    }
  }
  return xs;
}

}  // namespace

SwitchSummary switch_summary(const std::vector<metrics::RunResult>& runs,
                             bool persistent_only) {
  const auto xs = pooled_switches(runs, persistent_only);
  return {stats::mean(xs), stats::stddev(xs)};
}

double mean_of_run_median_download_mb(const std::vector<metrics::RunResult>& runs) {
  std::vector<double> medians;
  for (const auto& run : runs) medians.push_back(stats::median(run.downloads_mb));
  return stats::mean(medians);
}

double mean_of_run_download_stddev_mb(const std::vector<metrics::RunResult>& runs) {
  std::vector<double> sds;
  for (const auto& run : runs) sds.push_back(stats::stddev(run.downloads_mb));
  return stats::mean(sds);
}

double mean_unused_mb(const std::vector<metrics::RunResult>& runs) {
  std::vector<double> xs;
  for (const auto& run : runs) xs.push_back(run.unused_mb);
  return stats::mean(xs);
}

StabilitySummary stability_summary(const std::vector<metrics::RunResult>& runs) {
  StabilitySummary s;
  if (runs.empty()) return s;
  std::vector<double> stable_slots;
  int stable = 0;
  int at_nash = 0;
  int at_eps = 0;
  for (const auto& run : runs) {
    if (run.stability.stable) {
      ++stable;
      stable_slots.push_back(static_cast<double>(run.stability.stable_slot));
      if (run.stability.at_nash) ++at_nash;
      if (run.stability.at_eps_nash) ++at_eps;
    }
  }
  const auto n = static_cast<double>(runs.size());
  s.stable_fraction = stable / n;
  s.stable_at_nash_fraction = at_nash / n;
  s.stable_at_eps_fraction = at_eps / n;
  s.median_stable_slot = stable_slots.empty() ? -1.0 : stats::median(stable_slots);
  return s;
}

std::vector<double> mean_distance_series(const std::vector<metrics::RunResult>& runs,
                                         std::size_t group) {
  stats::SeriesAccumulator acc;
  for (const auto& run : runs) {
    if (group < run.group_distance.size()) acc.add(run.group_distance[group]);
  }
  return acc.mean();
}

std::vector<double> mean_def4_series(const std::vector<metrics::RunResult>& runs) {
  stats::SeriesAccumulator acc;
  for (const auto& run : runs) {
    if (!run.def4.empty()) acc.add(run.def4);
  }
  return acc.mean();
}

double mean_at_nash_fraction(const std::vector<metrics::RunResult>& runs) {
  std::vector<double> xs;
  for (const auto& run : runs) xs.push_back(run.at_nash_fraction);
  return stats::mean(xs);
}

double mean_eps_fraction(const std::vector<metrics::RunResult>& runs) {
  std::vector<double> xs;
  for (const auto& run : runs) xs.push_back(run.eps_fraction);
  return stats::mean(xs);
}

double mean_resets_per_device(const std::vector<metrics::RunResult>& runs) {
  std::vector<double> xs;
  for (const auto& run : runs) {
    for (const int r : run.resets) xs.push_back(static_cast<double>(r));
  }
  return stats::mean(xs);
}

double median_total_download_mb(const std::vector<metrics::RunResult>& runs) {
  std::vector<double> xs;
  for (const auto& run : runs) xs.push_back(run.total_download_mb);
  return stats::median(xs);
}

double median_total_switching_cost_mb(const std::vector<metrics::RunResult>& runs) {
  std::vector<double> xs;
  for (const auto& run : runs) {
    double total = 0.0;
    for (const double c : run.switching_cost_mb) total += c;
    xs.push_back(total);
  }
  return stats::median(xs);
}

std::vector<double> downsample(const std::vector<double>& series, int stride) {
  std::vector<double> out;
  if (stride <= 0) stride = 1;
  for (std::size_t i = 0; i < series.size(); i += static_cast<std::size_t>(stride)) {
    out.push_back(series[i]);
  }
  return out;
}

}  // namespace smartexp3::exp
