// The multi-run executor: builds a World from an ExperimentConfig, runs it
// under a RunRecorder, and repeats across seeds — in parallel, since runs
// are fully independent (each gets its own world, policies and RNG streams).
//
// The checkpointing entry points layer crash safety on top: periodic
// durable checkpoints (exp/checkpoint.hpp), resume-from-newest-valid,
// per-run watchdogs, bounded retry-with-backoff, cooperative interruption
// that flushes a final checkpoint, and a batch API that reports failures
// alongside the completed results instead of discarding them.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "metrics/recorder.hpp"

namespace smartexp3::exp {

/// Periodic durable checkpoints for a run. Disabled unless both `every` and
/// `dir` are set; a resumed run continues the original trajectory
/// bit-identically (tests/test_run_harness.cpp).
struct CheckpointOptions {
  int every = 0;     ///< slots between checkpoints; 0 disables checkpointing
  std::string dir;   ///< directory for checkpoint files (created on demand)
  bool resume = false;  ///< start from the newest valid checkpoint, if any
  int keep = 2;      ///< newest checkpoints retained per run (disk bound)
  /// Disk-pressure policy: when a checkpoint write throws CheckpointDiskFull
  /// (real ENOSPC/EDQUOT or the checkpoint.write.enospc failpoint), disable
  /// checkpointing for the rest of the attempt and keep the run alive
  /// (RunControl::on_degraded fires) instead of failing the attempt into a
  /// retry against the same full disk. Off by default: batch tools prefer
  /// the failure to be loud; the serve layer turns it on.
  bool degrade_on_disk_full = false;
  bool enabled() const { return every > 0 && !dir.empty(); }
};

/// Fault-tolerance knobs for a run or batch.
struct RunControl {
  /// Per-attempt wall-clock budget in seconds; 0 = no watchdog. A run that
  /// exceeds it throws RunTimeout (and is retried like any other failure
  /// when attempts remain).
  double watchdog_seconds = 0.0;
  /// Total attempts per run (first try + retries). Retries resume from the
  /// run's newest valid checkpoint when checkpointing is enabled.
  int max_attempts = 1;
  /// Sleep before retry k is backoff_seconds * 2^(k-1) — bounded backoff so
  /// a transiently sick machine gets breathing room.
  double backoff_seconds = 0.0;
  /// Cooperative stop (e.g. a SIGINT flag): polled every slot; when it goes
  /// true the run flushes a final checkpoint (if enabled) and throws
  /// RunInterrupted. Never retried.
  const std::atomic<bool>* stop = nullptr;
  /// Cooperative per-job yield (preemption): polled at every slot boundary
  /// exactly like `stop`, but the run flushes a final checkpoint and throws
  /// RunPreempted instead. Distinct from `stop` so one job can be asked off
  /// its executor (requeue + resume later) without draining the process —
  /// the serve scheduler points every lane of a job at the same flag, so the
  /// whole batch yields at the next slot boundary.
  const std::atomic<bool>* yield = nullptr;
  /// Test-only fault injection: called before every slot with (run, slot);
  /// whatever it throws is a simulated crash at exactly that point.
  std::function<void(int run, Slot slot)> fault_hook;
  /// Incremental progress stream for long-running callers (netsel_serve):
  /// when `progress_every` > 0, `progress(run, slot)` fires on the run's
  /// worker thread every `progress_every` completed slots. Callbacks must be
  /// thread-safe — a batch invokes them concurrently from every lane.
  int progress_every = 0;
  std::function<void(int run, Slot slot)> progress;
  /// Fires after every durable checkpoint write (periodic cadence and the
  /// final stop-flag flush alike) with the checkpointed slot. Same
  /// thread-safety contract as `progress`.
  std::function<void(int run, Slot slot)> on_checkpoint;
  /// Fires when CheckpointOptions::degrade_on_disk_full swallows a disk-full
  /// checkpoint failure: the run continues with checkpointing disabled and
  /// `reason` carries the underlying error. Same thread-safety contract as
  /// `progress`.
  std::function<void(int run, Slot slot, const std::string& reason)> on_degraded;
};

struct RunOptions {
  CheckpointOptions checkpoint;
  RunControl control;
};

/// A run stopped by RunControl::stop. Carries no result — the final
/// checkpoint (when enabled) is the hand-off to the next process.
class RunInterrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A run stopped by RunControl::yield: a cooperative preemption, not a
/// crash. Derives from RunInterrupted so every interruption-aware layer
/// (the batch executor stops handing out work, nothing counts a failure)
/// treats it identically; callers that care about the difference — the
/// serve scheduler requeues a preempted job instead of reporting a drain —
/// catch or inspect the derived type.
class RunPreempted : public RunInterrupted {
 public:
  using RunInterrupted::RunInterrupted;
};

/// A run exceeded RunControl::watchdog_seconds.
class RunTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Why one run of a batch did not produce a result.
struct RunFailure {
  int run = 0;
  int attempts = 0;            ///< attempts actually made
  std::string error;           ///< what() of the final attempt's exception
  std::exception_ptr exception;  ///< the final attempt's exception, rethrowable
  Slot last_checkpoint_slot = -1;  ///< newest durable slot, -1 if none
};

/// Everything a batch produced: results for completed runs, a failure report
/// for the rest. `results[i]` is only meaningful when `completed[i]`.
struct BatchResult {
  std::vector<metrics::RunResult> results;
  std::vector<bool> completed;
  std::vector<RunFailure> failures;  ///< ordered by run index
  bool interrupted = false;          ///< RunControl::stop fired mid-batch
  int retries = 0;  ///< failed attempts that were retried across all runs
  bool all_completed() const { return failures.empty() && !interrupted; }
};

/// Construct a ready-to-run world for this config and seed (exposed so tests
/// and examples can drive worlds slot by slot). Runs
/// ExperimentConfig::validate first and throws std::invalid_argument with
/// every problem found.
std::unique_ptr<netsim::World> build_world(const ExperimentConfig& config,
                                           std::uint64_t seed);

/// One run with the config's recorder options; seed defaults to base_seed.
metrics::RunResult run_once(const ExperimentConfig& config, std::uint64_t seed);

/// One run under the crash-safety options: periodic checkpoints, optional
/// resume, watchdog, cooperative stop and fault hook. `run_index` names the
/// run's checkpoint files. Throws RunInterrupted / RunTimeout (or whatever
/// the world throws); this entry point does NOT retry — retries belong to
/// the batch layer, which knows the backoff policy.
metrics::RunResult run_once(const ExperimentConfig& config, std::uint64_t seed,
                            const RunOptions& options, int run_index = 0);

/// `runs` independent runs seeded base_seed + 0..runs-1, executed on
/// `threads` worker threads (0 = hardware concurrency). Results are ordered
/// by run index regardless of scheduling. If any run ultimately fails, the
/// first failure's exception is rethrown from this call on the joining
/// thread — but unlike the pre-checkpoint behaviour the other workers finish
/// their runs first (use run_many_result to also get the completed results
/// and the full failure report instead of the exception).
std::vector<metrics::RunResult> run_many(const ExperimentConfig& config, int runs,
                                         int threads = 0);

/// The fault-tolerant batch executor underneath run_many: every run gets up
/// to `options.control.max_attempts` attempts (with exponential backoff,
/// resuming from its newest valid checkpoint when checkpointing is on), a
/// failed run never cancels the others, and the returned BatchResult carries
/// the completed results alongside an end-of-batch failure report. Only
/// RunControl::stop aborts the batch early (remaining runs are neither
/// started nor counted as failures; `interrupted` is set instead).
BatchResult run_many_result(const ExperimentConfig& config, int runs, int threads = 0,
                            const RunOptions& options = {});

/// Number of runs per experiment data point: the REPRO_RUNS environment
/// variable if set, otherwise `fallback` (benches default to 60 to keep the
/// full suite fast; the paper used 500). Malformed or out-of-range values
/// warn once on stderr and are clamped into [1, 1e6] (unparsable text keeps
/// the fallback).
int repro_runs(int fallback = 60);

/// Lanes for the device-parallel phases inside each world (WorldConfig
/// threads): the WORLD_THREADS environment variable if set, otherwise
/// `fallback`. 0 means hardware concurrency; the simulated trajectory is
/// identical for every value. Benches apply this to their configs so a
/// single big world can use the whole machine. Malformed or negative values
/// warn once on stderr and keep the fallback.
int world_threads(int fallback = 1);

/// Shard count for the world's device pool (WorldConfig shards): the
/// WORLD_SHARDS environment variable if set, otherwise `fallback`. 0 means
/// auto (one shard per ~16k devices); the simulated trajectory is identical
/// for every value. Malformed or negative values warn once on stderr and
/// keep the fallback.
int world_shards(int fallback = 0);

}  // namespace smartexp3::exp
