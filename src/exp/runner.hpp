// The multi-run executor: builds a World from an ExperimentConfig, runs it
// under a RunRecorder, and repeats across seeds — in parallel, since runs
// are fully independent (each gets its own world, policies and RNG streams).
#pragma once

#include <memory>
#include <vector>

#include "exp/config.hpp"
#include "metrics/recorder.hpp"

namespace smartexp3::exp {

/// Construct a ready-to-run world for this config and seed (exposed so tests
/// and examples can drive worlds slot by slot). Runs
/// ExperimentConfig::validate first and throws std::invalid_argument with
/// every problem found.
std::unique_ptr<netsim::World> build_world(const ExperimentConfig& config,
                                           std::uint64_t seed);

/// One run with the config's recorder options; seed defaults to base_seed.
metrics::RunResult run_once(const ExperimentConfig& config, std::uint64_t seed);

/// `runs` independent runs seeded base_seed + 0..runs-1, executed on
/// `threads` worker threads (0 = hardware concurrency). Results are ordered
/// by run index regardless of scheduling. If a run throws (a config bug, not
/// a data point), the remaining work is cancelled and the first exception is
/// rethrown from this call on the joining thread.
std::vector<metrics::RunResult> run_many(const ExperimentConfig& config, int runs,
                                         int threads = 0);

/// Number of runs per experiment data point: the REPRO_RUNS environment
/// variable if set, otherwise `fallback` (benches default to 60 to keep the
/// full suite fast; the paper used 500). Malformed or out-of-range values
/// warn once on stderr and are clamped into [1, 1e6] (unparsable text keeps
/// the fallback).
int repro_runs(int fallback = 60);

/// Lanes for the device-parallel phases inside each world (WorldConfig
/// threads): the WORLD_THREADS environment variable if set, otherwise
/// `fallback`. 0 means hardware concurrency; the simulated trajectory is
/// identical for every value. Benches apply this to their configs so a
/// single big world can use the whole machine. Malformed or negative values
/// warn once on stderr and keep the fallback.
int world_threads(int fallback = 1);

}  // namespace smartexp3::exp
