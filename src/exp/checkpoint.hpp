// Durable run checkpoints: the crash-safety layer between the in-memory
// snapshot archive (core/snapshot.hpp) and the run harness (exp/runner.hpp).
//
// A checkpoint file is a JSON document — versioned header, run/seed/slot
// identity, a fingerprint of the spec it belongs to, and the world's (plus
// optionally the recorder's) snapshot words hex-encoded — followed by one
// trailer line:
//
//   checksum fnv1a64 <16 hex digits>
//
// over every byte of the JSON body. Writes are atomic and durable: the file
// is written to "<path>.tmp", fsynced, renamed into place, and the parent
// directory is fsynced — so a crash mid-write leaves either the old
// checkpoint or a stray .tmp, never a torn file under the real name, and a
// published checkpoint survives power loss. Loads validate the checksum and both version fields before a
// single snapshot word reaches a reader, and the resume path
// (newest_valid_checkpoint) degrades gracefully: a corrupt, truncated or
// mismatched file is skipped in favour of the newest one that verifies —
// bad input is never a crash (tests/test_checkpoint_io.cpp fuzzes this
// with truncations and byte flips).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "netsim/types.hpp"

namespace smartexp3::exp {

/// Raised when a checkpoint file cannot be written, or cannot be read back
/// as a valid checkpoint (bad checksum, wrong version, malformed JSON).
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The write failed because the checkpoint directory is out of space
/// (ENOSPC/EDQUOT, or the checkpoint.write.enospc failpoint). Distinguished
/// from other write errors so callers can degrade gracefully — disable
/// checkpointing and keep the run alive — instead of retrying into the same
/// full disk (exp::CheckpointOptions::degrade_on_disk_full).
class CheckpointDiskFull : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// Bumped when the checkpoint file layout itself changes. The snapshot word
/// layout is versioned separately (core::kSnapshotVersion) and also pinned
/// in the file.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// FNV-1a over bytes: tiny, dependency-free and byte-order-independent —
/// plenty to catch the truncation and bit-rot this layer defends against
/// (it is an integrity check, not an authentication code).
std::uint64_t fnv1a64(const char* data, std::size_t size);
inline std::uint64_t fnv1a64(const std::string& s) { return fnv1a64(s.data(), s.size()); }

/// One checkpoint: where a run was, and every word needed to continue it.
struct Checkpoint {
  std::uint32_t snapshot_version = core::kSnapshotVersion;
  int run = 0;                         ///< run index within the batch
  std::uint64_t seed = 0;              ///< the run's world seed
  Slot slot = 0;                       ///< slots completed when taken
  std::uint64_t spec_fingerprint = 0;  ///< fnv1a64 of the canonical spec text
  std::vector<std::uint64_t> world_words;
  bool has_recorder = false;
  std::vector<std::uint64_t> recorder_words;
};

/// Serialize to the JSON-plus-trailer file format (deterministic text).
std::string to_checkpoint_text(const Checkpoint& c);

/// Parse and fully validate checkpoint text. Throws CheckpointError on any
/// defect: missing/corrupt trailer, checksum mismatch, unsupported version,
/// malformed JSON or hex. Never crashes on arbitrary bytes.
Checkpoint parse_checkpoint_text(const std::string& text);

/// Atomic durable write: text goes to "<path>.tmp", is fsynced, renamed over
/// `path`, and the parent directory is fsynced so the rename itself survives
/// power loss. Creates the parent directory if needed. Throws
/// CheckpointDiskFull on ENOSPC/EDQUOT and CheckpointError otherwise.
/// Failpoint sites (util/failpoint.hpp): checkpoint.write.fail,
/// checkpoint.write.short, checkpoint.write.enospc, checkpoint.fsync.fail,
/// checkpoint.rename.torn, checkpoint.dirsync.fail.
void save_checkpoint_file(const Checkpoint& c, const std::string& path);

/// Load + validate one file. Throws CheckpointError (including for an
/// unreadable path).
Checkpoint load_checkpoint_file(const std::string& path);

/// Canonical file name for (run, slot) under `dir`:
/// "<dir>/run<run>_slot<slot>.ckpt".
std::string checkpoint_path(const std::string& dir, int run, Slot slot);

/// The newest (highest-slot) checkpoint for `run` in `dir` that loads
/// cleanly AND matches the expected spec fingerprint and seed. Corrupt or
/// foreign files are skipped (that is the crash-recovery contract: fall back
/// to the newest valid one); nullopt when none qualify or the directory does
/// not exist.
std::optional<Checkpoint> newest_valid_checkpoint(const std::string& dir, int run,
                                                  std::uint64_t spec_fingerprint,
                                                  std::uint64_t seed);

/// Delete all but the `keep` newest-slot checkpoint files for `run`,
/// bounding disk use during long runs. Quietly ignores filesystem errors —
/// retention is best-effort, never worth failing a run over.
void prune_checkpoints(const std::string& dir, int run, int keep);

}  // namespace smartexp3::exp
