#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/snapshot.hpp"

#include "core/factory.hpp"
#include "exp/checkpoint.hpp"
#include "exp/spec_io.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::exp {

namespace {

/// World construction shared by the validated public entry points. Takes the
/// per-network capacities precomputed by the caller so run_many builds the
/// vector once per call instead of once per run (the centralized
/// coordinator still copies it — it owns its snapshot).
std::unique_ptr<netsim::World> build_world_impl(const ExperimentConfig& config,
                                                std::uint64_t seed,
                                                const std::vector<double>& capacities) {
  auto named_factory = core::make_named_policy_factory(capacities, config.smart);
  netsim::PolicyFactory factory =
      [named_factory](const netsim::DeviceSpec& spec,
                      std::uint64_t device_seed) -> std::unique_ptr<core::Policy> {
    if (!core::is_valid_policy_name(spec.policy_name)) {
      throw std::invalid_argument("unknown policy name '" + spec.policy_name + "'");
    }
    return named_factory(spec.id, spec.policy_name, device_seed);
  };

  auto world = std::make_unique<netsim::World>(config.world, config.networks,
                                               config.devices, config.scenario,
                                               std::move(factory), seed);

  switch (config.share) {
    case ShareKind::kEqual:
      world->set_bandwidth_model(netsim::make_equal_share());
      break;
    case ShareKind::kNoisy: {
      auto params = config.noisy;
      params.seed = seed ^ 0xa0761d6478bd642fULL;  // per-run device multipliers
      world->set_bandwidth_model(netsim::make_noisy_share(params));
      break;
    }
  }

  switch (config.delay) {
    case DelayKind::kDistribution:
      world->set_delay_model(netsim::make_default_delay_model());
      break;
    case DelayKind::kZero:
      world->set_delay_model(std::make_unique<netsim::ZeroDelayModel>());
      break;
    case DelayKind::kFixed:
      world->set_delay_model(std::make_unique<netsim::FixedDelayModel>(
          config.fixed_delay_wifi_s, config.fixed_delay_cellular_s));
      break;
  }

  return world;
}

metrics::RunResult run_once_impl(const ExperimentConfig& config, std::uint64_t seed,
                                 const std::vector<double>& capacities) {
  auto world = build_world_impl(config, seed, capacities);
  metrics::RunRecorder recorder(config.recorder);
  world->set_observer(&recorder);
  world->run();
  return recorder.take_result();
}

/// True when no crash-safety feature is active, i.e. the per-slot guard loop
/// below would be pure overhead and the plain World::run() path applies.
/// Armed failpoints force the guarded loop too: the runner.* sites live in
/// it, and a fault schedule must reach every run it covers.
bool options_inert(const RunOptions& o) {
  return !o.checkpoint.enabled() && !o.checkpoint.resume &&
         o.control.watchdog_seconds <= 0.0 && o.control.stop == nullptr &&
         o.control.yield == nullptr && !o.control.fault_hook &&
         !(o.control.progress_every > 0 && o.control.progress) &&
         !o.control.on_checkpoint && !util::failpoints_armed();
}

/// Snapshot world + recorder into a durable checkpoint file for (run, slot),
/// then prune old ones. Returns the checkpointed slot.
Slot write_checkpoint(const netsim::World& world, const metrics::RunRecorder& recorder,
                      int run, std::uint64_t seed, std::uint64_t fingerprint,
                      const CheckpointOptions& ck) {
  Checkpoint c;
  c.run = run;
  c.seed = seed;
  c.slot = world.now();
  c.spec_fingerprint = fingerprint;
  core::StateWriter w(c.world_words);
  world.snapshot_into(w);
  c.has_recorder = true;
  core::StateWriter rw(c.recorder_words);
  recorder.snapshot_into(rw);
  save_checkpoint_file(c, checkpoint_path(ck.dir, run, c.slot));
  prune_checkpoints(ck.dir, run, ck.keep);
  return c.slot;
}

void restore_from_checkpoint(const Checkpoint& c, netsim::World& world,
                             metrics::RunRecorder& recorder) {
  core::StateReader wr(c.world_words);
  world.restore_from(wr);
  if (!wr.exhausted()) {
    throw core::SnapshotError("world snapshot has trailing words (layout drift?)");
  }
  if (c.has_recorder) {
    core::StateReader rr(c.recorder_words);
    recorder.restore_from(rr, world);
    if (!rr.exhausted()) {
      throw core::SnapshotError("recorder snapshot has trailing words (layout drift?)");
    }
  }
}

/// One attempt of one run under the crash-safety options: optional resume,
/// then a slot loop with stop / watchdog / fault-hook guards and periodic
/// checkpoints. The loop replaces World::run(), so the recorder's
/// end-of-run pass must be invoked explicitly.
metrics::RunResult run_guarded_impl(const ExperimentConfig& config, std::uint64_t seed,
                                    const std::vector<double>& capacities,
                                    const RunOptions& options, int run_index,
                                    std::uint64_t fingerprint) {
  if (options_inert(options)) return run_once_impl(config, seed, capacities);

  auto world = build_world_impl(config, seed, capacities);
  metrics::RunRecorder recorder(config.recorder);
  world->set_observer(&recorder);
  const CheckpointOptions& ck = options.checkpoint;
  const RunControl& ctl = options.control;

  if (ck.resume && !ck.dir.empty()) {
    if (const auto c = newest_valid_checkpoint(ck.dir, run_index, fingerprint, seed)) {
      restore_from_checkpoint(*c, *world, recorder);
    }
    // No valid checkpoint is not an error: the run simply starts from slot 0
    // (crash-before-first-checkpoint must be resumable too).
  }

  // Disk-pressure degradation: a CheckpointDiskFull from any write site
  // (periodic cadence or the final stop-flag flush) turns checkpointing off
  // for the rest of the attempt instead of failing it — when the caller
  // opted in. The run's trajectory is unaffected either way; checkpoints
  // are recovery state, not simulation state.
  bool checkpointing_off = false;
  const auto checkpoint_now = [&] {
    try {
      const Slot s =
          write_checkpoint(*world, recorder, run_index, seed, fingerprint, ck);
      if (ctl.on_checkpoint) ctl.on_checkpoint(run_index, s);
    } catch (const CheckpointDiskFull& e) {
      if (!ck.degrade_on_disk_full) throw;
      checkpointing_off = true;
      if (ctl.on_degraded) ctl.on_degraded(run_index, world->now(), e.what());
    }
  };

  const bool watchdog = ctl.watchdog_seconds > 0.0;
  const auto start = std::chrono::steady_clock::now();
  while (!world->done()) {
    if (ctl.stop != nullptr && ctl.stop->load(std::memory_order_relaxed)) {
      if (ck.enabled() && !checkpointing_off) checkpoint_now();
      throw RunInterrupted("run " + std::to_string(run_index) +
                           " interrupted at slot " + std::to_string(world->now()));
    }
    if (ctl.yield != nullptr && ctl.yield->load(std::memory_order_relaxed)) {
      // Fault site: the process dies (or the disk lies) exactly while the
      // preemption checkpoint is being flushed. The throw is an ordinary
      // attempt failure — retried with resume on, so the run continues from
      // the newest PERIODIC checkpoint and still finishes bit-identically.
      if (util::failpoint("runner.preempt.flush")) {
        throw std::runtime_error("run " + std::to_string(run_index) +
                                 " crashed flushing the preemption checkpoint "
                                 "at slot " +
                                 std::to_string(world->now()) +
                                 " [injected runner.preempt.flush]");
      }
      if (ck.enabled() && !checkpointing_off) checkpoint_now();
      throw RunPreempted("run " + std::to_string(run_index) +
                         " preempted at slot " + std::to_string(world->now()));
    }
    if (watchdog) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed > ctl.watchdog_seconds) {
        throw RunTimeout("run " + std::to_string(run_index) + " exceeded its " +
                         std::to_string(ctl.watchdog_seconds) +
                         " s watchdog at slot " + std::to_string(world->now()));
      }
    }
    if (util::failpoint("runner.attempt.crash")) {
      throw std::runtime_error("run " + std::to_string(run_index) +
                               " crashed at slot " + std::to_string(world->now()) +
                               " [injected runner.attempt.crash]");
    }
    if (util::failpoint("runner.watchdog.overrun")) {
      throw RunTimeout("run " + std::to_string(run_index) +
                       " watchdog overrun at slot " +
                       std::to_string(world->now()) +
                       " [injected runner.watchdog.overrun]");
    }
    if (ctl.fault_hook) ctl.fault_hook(run_index, world->now());
    world->step();
    // Checkpoints land on slot boundaries (now() already advanced past the
    // completed slot). The final slot is skipped: the run is about to finish
    // and return a result, so a checkpoint there would only cost disk.
    if (ck.enabled() && !checkpointing_off && !world->done() &&
        world->now() % ck.every == 0) {
      checkpoint_now();
    }
    if (ctl.progress && ctl.progress_every > 0 &&
        world->now() % ctl.progress_every == 0) {
      ctl.progress(run_index, world->now());
    }
  }
  // World::run() notifies on_run_end itself; the guarded slot loop must do
  // it here or the result would miss the end-of-run aggregates.
  recorder.on_run_end(*world);
  return recorder.take_result();
}

/// The spec fingerprint binding a checkpoint to its experiment: the FNV-1a
/// of the canonical spec text (lossless round-trip, deterministic key order,
/// shortest-form doubles — so semantically identical configs fingerprint
/// identically across processes).
std::uint64_t config_fingerprint(const ExperimentConfig& config) {
  return fnv1a64(to_spec_text(config));
}

/// Strict env-var integer parsing shared by repro_runs / world_threads:
/// garbage and out-of-range values used to flow through atoi/silent
/// fallbacks; now they warn once per variable per process and recover.
/// Values above `max` clamp to it; values below `min` clamp to it when
/// `clamp_low` (a too-small run count still means "as few as possible") and
/// fall back otherwise (a negative thread count has no nearest meaning —
/// clamping it to 0 would silently request every core); unparsable text
/// always falls back.
int env_int_clamped(const char* name, int fallback, long min, long max,
                    bool clamp_low, bool* warned_once) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  const bool parsed = end != env && *end == '\0' && errno != ERANGE;
  long result;
  if (!parsed) {
    result = fallback;
  } else if (v < min) {
    result = clamp_low ? min : fallback;
  } else if (v > max) {
    result = max;
  } else {
    result = v;
  }
  if ((!parsed || result != v) && !*warned_once) {
    *warned_once = true;
    std::cerr << "warning: " << name << "='" << env << "' is "
              << (parsed ? "out of range" : "not an integer") << "; using "
              << result << '\n';
  }
  return static_cast<int>(result);
}

}  // namespace

std::unique_ptr<netsim::World> build_world(const ExperimentConfig& config,
                                           std::uint64_t seed) {
  config.validate_or_throw();
  return build_world_impl(config, seed, config.capacities());
}

metrics::RunResult run_once(const ExperimentConfig& config, std::uint64_t seed) {
  config.validate_or_throw();
  return run_once_impl(config, seed, config.capacities());
}

metrics::RunResult run_once(const ExperimentConfig& config, std::uint64_t seed,
                            const RunOptions& options, int run_index) {
  config.validate_or_throw();
  const bool durable = options.checkpoint.enabled() || options.checkpoint.resume;
  const std::uint64_t fingerprint = durable ? config_fingerprint(config) : 0;
  return run_guarded_impl(config, seed, config.capacities(), options, run_index,
                          fingerprint);
}

BatchResult run_many_result(const ExperimentConfig& config, int runs, int threads,
                            const RunOptions& options) {
  BatchResult batch;
  if (runs <= 0) return batch;
  // Validate and derive the shared per-run inputs once, up front: the
  // workers below stamp out worlds from the same (now known-sound) config.
  config.validate_or_throw();
  const std::vector<double> capacities = config.capacities();
  const bool durable = options.checkpoint.enabled() || options.checkpoint.resume;
  const std::uint64_t fingerprint = durable ? config_fingerprint(config) : 0;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
    // Each run may itself fan its slot phases out over config.world.threads
    // lanes; divide the default run-level parallelism so the two knobs
    // compose without oversubscribing the machine. Worlds containing a
    // shared-state policy decline to fan out, so their runs stay full-width.
    bool world_fans_out = true;
    for (const auto& d : config.devices) {
      if (core::policy_shares_state_across_devices(d.policy_name)) {
        world_fans_out = false;
        break;
      }
    }
    if (world_fans_out) {
      const int lanes = netsim::StepExecutor::resolve(config.world.threads);
      threads = std::max(1, threads / lanes);
    }
  }
  threads = std::min(threads, runs);

  batch.results.resize(static_cast<std::size_t>(runs));
  // vector<bool> packs bits, so concurrent per-run writes would race; the
  // workers mark completion in a byte vector copied out after the join.
  std::vector<unsigned char> completed(static_cast<std::size_t>(runs), 0);
  std::vector<RunFailure> failures;
  std::mutex failures_mutex;
  std::atomic<int> next{0};
  std::atomic<bool> interrupted{false};
  std::atomic<int> retries{0};
  const int max_attempts = std::max(1, options.control.max_attempts);

  // Exponential backoff that wakes on the cooperative stop flag: a SIGTERM
  // drain must not stall behind a worker sleeping out a long retry delay.
  // 10 ms polling, not a condition variable — the stop flag is a plain
  // atomic owned by the caller (often a signal handler's), with no paired cv.
  const auto backoff_sleep = [&options](int attempt) {
    if (options.control.backoff_seconds <= 0.0) return;
    const double delay =
        options.control.backoff_seconds * static_cast<double>(1 << (attempt - 1));
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(delay);
    while (std::chrono::steady_clock::now() < deadline) {
      if (options.control.stop != nullptr &&
          options.control.stop->load(std::memory_order_relaxed)) {
        return;  // next attempt sees the flag and raises RunInterrupted
      }
      const std::chrono::duration<double> remaining =
          deadline - std::chrono::steady_clock::now();
      std::this_thread::sleep_for(
          std::min(std::chrono::duration<double>(0.010), remaining));
    }
  };

  auto worker_loop = [&] {
    for (;;) {
      const int r = next.fetch_add(1);
      if (r >= runs || interrupted.load()) return;
      const std::uint64_t seed = config.base_seed + static_cast<std::uint64_t>(r);
      // Per-run copy: retries flip `resume` on so the attempt continues from
      // the run's newest valid checkpoint instead of replaying from slot 0.
      RunOptions attempt_options = options;
      for (int attempt = 1;; ++attempt) {
        try {
          batch.results[static_cast<std::size_t>(r)] = run_guarded_impl(
              config, seed, capacities, attempt_options, r, fingerprint);
          completed[static_cast<std::size_t>(r)] = 1;
          break;
        } catch (const RunInterrupted&) {
          // Cooperative stop: the run flushed its final checkpoint already;
          // stop handing out work and let the other workers notice.
          interrupted.store(true);
          return;
        } catch (...) {
          if (attempt >= max_attempts) {
            RunFailure f;
            f.run = r;
            f.attempts = attempt;
            f.exception = std::current_exception();
            try {
              std::rethrow_exception(f.exception);
            } catch (const std::exception& e) {
              f.error = e.what();
            } catch (...) {
              f.error = "unknown exception";
            }
            if (durable) {
              if (const auto c = newest_valid_checkpoint(options.checkpoint.dir, r,
                                                         fingerprint, seed)) {
                f.last_checkpoint_slot = c->slot;
              }
            }
            const std::lock_guard<std::mutex> lock(failures_mutex);
            failures.push_back(std::move(f));
            break;
          }
          retries.fetch_add(1, std::memory_order_relaxed);
          backoff_sleep(attempt);
          attempt_options.checkpoint.resume = options.checkpoint.enabled();
        }
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) workers.emplace_back(worker_loop);
  for (auto& t : workers) t.join();

  batch.completed.assign(completed.begin(), completed.end());
  std::sort(failures.begin(), failures.end(),
            [](const RunFailure& a, const RunFailure& b) { return a.run < b.run; });
  batch.failures = std::move(failures);
  batch.interrupted = interrupted.load();
  batch.retries = retries.load();
  return batch;
}

std::vector<metrics::RunResult> run_many(const ExperimentConfig& config, int runs,
                                         int threads) {
  BatchResult batch = run_many_result(config, runs, threads);
  if (!batch.failures.empty()) {
    // Legacy contract: surface the failure as an exception (lowest-index
    // run, original exception object). The other runs did complete — callers
    // that want them plus the failure report use run_many_result.
    std::rethrow_exception(batch.failures.front().exception);
  }
  return std::move(batch.results);
}

int repro_runs(int fallback) {
  static bool warned = false;
  return env_int_clamped("REPRO_RUNS", fallback, 1, 1'000'000, /*clamp_low=*/true,
                         &warned);
}

int world_threads(int fallback) {
  // 0 is meaningful ("all cores"); negatives and garbage are not. Lane
  // counts beyond the machine's cores only oversubscribe the barrier (the
  // trajectory is thread-count-invariant anyway), so they clamp to
  // hardware_concurrency with the one-time warning instead of silently
  // running slower than serial.
  static bool warned = false;
  const unsigned hw = std::thread::hardware_concurrency();
  const long max_lanes = hw > 0 ? static_cast<long>(hw) : 1L;
  return env_int_clamped("WORLD_THREADS", fallback, 0, max_lanes,
                         /*clamp_low=*/false, &warned);
}

int world_shards(int fallback) {
  // 0 is meaningful ("auto: one shard per ~16k devices"); negatives and
  // garbage are not. The world itself clamps explicit counts to the device
  // count, so the only cap needed here is a sanity bound.
  static bool warned = false;
  return env_int_clamped("WORLD_SHARDS", fallback, 0, 1 << 20,
                         /*clamp_low=*/false, &warned);
}

}  // namespace smartexp3::exp
