#include "exp/runner.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/factory.hpp"

namespace smartexp3::exp {

namespace {

/// World construction shared by the validated public entry points. Takes the
/// per-network capacities precomputed by the caller so run_many builds the
/// vector once per call instead of once per run (the centralized
/// coordinator still copies it — it owns its snapshot).
std::unique_ptr<netsim::World> build_world_impl(const ExperimentConfig& config,
                                                std::uint64_t seed,
                                                const std::vector<double>& capacities) {
  auto named_factory = core::make_named_policy_factory(capacities, config.smart);
  netsim::PolicyFactory factory =
      [named_factory](const netsim::DeviceSpec& spec,
                      std::uint64_t device_seed) -> std::unique_ptr<core::Policy> {
    if (!core::is_valid_policy_name(spec.policy_name)) {
      throw std::invalid_argument("unknown policy name '" + spec.policy_name + "'");
    }
    return named_factory(spec.id, spec.policy_name, device_seed);
  };

  auto world = std::make_unique<netsim::World>(config.world, config.networks,
                                               config.devices, config.scenario,
                                               std::move(factory), seed);

  switch (config.share) {
    case ShareKind::kEqual:
      world->set_bandwidth_model(netsim::make_equal_share());
      break;
    case ShareKind::kNoisy: {
      auto params = config.noisy;
      params.seed = seed ^ 0xa0761d6478bd642fULL;  // per-run device multipliers
      world->set_bandwidth_model(netsim::make_noisy_share(params));
      break;
    }
  }

  switch (config.delay) {
    case DelayKind::kDistribution:
      world->set_delay_model(netsim::make_default_delay_model());
      break;
    case DelayKind::kZero:
      world->set_delay_model(std::make_unique<netsim::ZeroDelayModel>());
      break;
    case DelayKind::kFixed:
      world->set_delay_model(std::make_unique<netsim::FixedDelayModel>(
          config.fixed_delay_wifi_s, config.fixed_delay_cellular_s));
      break;
  }

  return world;
}

metrics::RunResult run_once_impl(const ExperimentConfig& config, std::uint64_t seed,
                                 const std::vector<double>& capacities) {
  auto world = build_world_impl(config, seed, capacities);
  metrics::RunRecorder recorder(config.recorder);
  world->set_observer(&recorder);
  world->run();
  return recorder.take_result();
}

/// Strict env-var integer parsing shared by repro_runs / world_threads:
/// garbage and out-of-range values used to flow through atoi/silent
/// fallbacks; now they warn once per variable per process and recover.
/// Values above `max` clamp to it; values below `min` clamp to it when
/// `clamp_low` (a too-small run count still means "as few as possible") and
/// fall back otherwise (a negative thread count has no nearest meaning —
/// clamping it to 0 would silently request every core); unparsable text
/// always falls back.
int env_int_clamped(const char* name, int fallback, long min, long max,
                    bool clamp_low, bool* warned_once) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  const bool parsed = end != env && *end == '\0' && errno != ERANGE;
  long result;
  if (!parsed) {
    result = fallback;
  } else if (v < min) {
    result = clamp_low ? min : fallback;
  } else if (v > max) {
    result = max;
  } else {
    result = v;
  }
  if ((!parsed || result != v) && !*warned_once) {
    *warned_once = true;
    std::cerr << "warning: " << name << "='" << env << "' is "
              << (parsed ? "out of range" : "not an integer") << "; using "
              << result << '\n';
  }
  return static_cast<int>(result);
}

}  // namespace

std::unique_ptr<netsim::World> build_world(const ExperimentConfig& config,
                                           std::uint64_t seed) {
  config.validate_or_throw();
  return build_world_impl(config, seed, config.capacities());
}

metrics::RunResult run_once(const ExperimentConfig& config, std::uint64_t seed) {
  config.validate_or_throw();
  return run_once_impl(config, seed, config.capacities());
}

std::vector<metrics::RunResult> run_many(const ExperimentConfig& config, int runs,
                                         int threads) {
  if (runs <= 0) return {};
  // Validate and derive the shared per-run inputs once, up front: the
  // workers below stamp out worlds from the same (now known-sound) config.
  config.validate_or_throw();
  const std::vector<double> capacities = config.capacities();
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
    // Each run may itself fan its slot phases out over config.world.threads
    // lanes; divide the default run-level parallelism so the two knobs
    // compose without oversubscribing the machine. Worlds containing a
    // shared-state policy decline to fan out, so their runs stay full-width.
    bool world_fans_out = true;
    for (const auto& d : config.devices) {
      if (core::policy_shares_state_across_devices(d.policy_name)) {
        world_fans_out = false;
        break;
      }
    }
    if (world_fans_out) {
      const int lanes = netsim::StepExecutor::resolve(config.world.threads);
      threads = std::max(1, threads / lanes);
    }
  }
  threads = std::min(threads, runs);

  std::vector<metrics::RunResult> results(static_cast<std::size_t>(runs));
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const int r = next.fetch_add(1);
        if (r >= runs || failed.load()) return;
        try {
          results[static_cast<std::size_t>(r)] = run_once_impl(
              config, config.base_seed + static_cast<std::uint64_t>(r), capacities);
        } catch (...) {
          // Capture the first failure and stop handing out work; the
          // exception is rethrown on the joining thread instead of
          // terminating the process from a worker.
          {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

int repro_runs(int fallback) {
  static bool warned = false;
  return env_int_clamped("REPRO_RUNS", fallback, 1, 1'000'000, /*clamp_low=*/true,
                         &warned);
}

int world_threads(int fallback) {
  // 0 is meaningful ("all cores"); negatives and garbage are not. Lane
  // counts beyond the machine's cores only oversubscribe the barrier (the
  // trajectory is thread-count-invariant anyway), so they clamp to
  // hardware_concurrency with the one-time warning instead of silently
  // running slower than serial.
  static bool warned = false;
  const unsigned hw = std::thread::hardware_concurrency();
  const long max_lanes = hw > 0 ? static_cast<long>(hw) : 1L;
  return env_int_clamped("WORLD_THREADS", fallback, 0, max_lanes,
                         /*clamp_low=*/false, &warned);
}

}  // namespace smartexp3::exp
