#include "exp/runner.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/factory.hpp"

namespace smartexp3::exp {

std::unique_ptr<netsim::World> build_world(const ExperimentConfig& config,
                                           std::uint64_t seed) {
  auto named_factory = core::make_named_policy_factory(config.capacities(), config.smart);
  netsim::PolicyFactory factory =
      [named_factory](const netsim::DeviceSpec& spec,
                      std::uint64_t device_seed) -> std::unique_ptr<core::Policy> {
    if (!core::is_valid_policy_name(spec.policy_name)) {
      throw std::invalid_argument("unknown policy name '" + spec.policy_name + "'");
    }
    return named_factory(spec.id, spec.policy_name, device_seed);
  };

  auto world = std::make_unique<netsim::World>(config.world, config.networks,
                                               config.devices, config.scenario,
                                               std::move(factory), seed);

  switch (config.share) {
    case ShareKind::kEqual:
      world->set_bandwidth_model(netsim::make_equal_share());
      break;
    case ShareKind::kNoisy: {
      auto params = config.noisy;
      params.seed = seed ^ 0xa0761d6478bd642fULL;  // per-run device multipliers
      world->set_bandwidth_model(netsim::make_noisy_share(params));
      break;
    }
  }

  switch (config.delay) {
    case DelayKind::kDistribution:
      world->set_delay_model(netsim::make_default_delay_model());
      break;
    case DelayKind::kZero:
      world->set_delay_model(std::make_unique<netsim::ZeroDelayModel>());
      break;
    case DelayKind::kFixed:
      world->set_delay_model(std::make_unique<netsim::FixedDelayModel>(
          config.fixed_delay_wifi_s, config.fixed_delay_cellular_s));
      break;
  }

  return world;
}

metrics::RunResult run_once(const ExperimentConfig& config, std::uint64_t seed) {
  auto world = build_world(config, seed);
  metrics::RunRecorder recorder(config.recorder);
  world->set_observer(&recorder);
  world->run();
  return recorder.take_result();
}

std::vector<metrics::RunResult> run_many(const ExperimentConfig& config, int runs,
                                         int threads) {
  if (runs <= 0) return {};
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
    // Each run may itself fan its slot phases out over config.world.threads
    // lanes; divide the default run-level parallelism so the two knobs
    // compose without oversubscribing the machine. Worlds containing a
    // shared-state policy decline to fan out, so their runs stay full-width.
    bool world_fans_out = true;
    for (const auto& d : config.devices) {
      if (core::policy_shares_state_across_devices(d.policy_name)) {
        world_fans_out = false;
        break;
      }
    }
    if (world_fans_out) {
      const int lanes = netsim::StepExecutor::resolve(config.world.threads);
      threads = std::max(1, threads / lanes);
    }
  }
  threads = std::min(threads, runs);

  std::vector<metrics::RunResult> results(static_cast<std::size_t>(runs));
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const int r = next.fetch_add(1);
        if (r >= runs || failed.load()) return;
        try {
          results[static_cast<std::size_t>(r)] =
              run_once(config, config.base_seed + static_cast<std::uint64_t>(r));
        } catch (...) {
          // Capture the first failure and stop handing out work; the
          // exception is rethrown on the joining thread instead of
          // terminating the process from a worker.
          {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

int repro_runs(int fallback) {
  if (const char* env = std::getenv("REPRO_RUNS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

int world_threads(int fallback) {
  if (const char* env = std::getenv("WORLD_THREADS")) {
    // Strict parse: a malformed value must fall back to serial, not resolve
    // to atoi's 0 ("all cores"). An explicit "0" does mean all cores.
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0 && v <= 1 << 16) {
      return static_cast<int>(v);
    }
  }
  return fallback;
}

}  // namespace smartexp3::exp
