#include "exp/registry.hpp"

#include <stdexcept>

#include "core/factory.hpp"
#include "exp/settings.hpp"
#include "trace/synth.hpp"

namespace smartexp3::exp {

namespace {

[[noreturn]] void unknown_setting(const std::string& name) {
  std::string message = "unknown setting '" + name + "'; known settings:";
  for (const auto& info : setting_catalog()) message += " " + info.name;
  throw std::invalid_argument(message);
}

[[noreturn]] void reject_override(const std::string& setting, const std::string& param,
                                  const std::string& why) {
  throw std::invalid_argument("setting '" + setting + "' does not accept the " +
                              param + " override: " + why);
}

/// Guard rail: every override the caller set must be consumed by the
/// setting's builder, otherwise the run would silently differ from what the
/// caller asked for.
struct OverrideGuard {
  const std::string& name;
  const SettingParams& params;

  void no_policy() const {
    if (!params.policy.empty()) {
      reject_override(name, "policy", "its device-policy mix is the scenario");
    }
  }
  void no_devices() const {
    if (params.devices != -1) {
      reject_override(name, "devices", "its device schedule is the scenario");
    }
  }
  void no_networks() const {
    if (params.networks != -1) {
      reject_override(name, "networks", "its network set is fixed by the paper");
    }
  }
  void no_n_smart() const {
    if (params.n_smart != -1) {
      reject_override(name, "n_smart", "only greedy_mix takes a smart-device count");
    }
  }
  void no_policy_mix() const {
    if (!params.policy_mix.empty()) {
      reject_override(name, "policy_mix", "only controlled takes per-device policies");
    }
  }
  void no_trace_slots() const {
    if (params.trace_slots != -1) {
      reject_override(name, "trace_slots", "only trace1..trace4 are trace-driven");
    }
  }
};

std::string policy_or(const SettingParams& params, const std::string& fallback) {
  return params.policy.empty() ? fallback : params.policy;
}

int devices_or(const SettingParams& params, int fallback) {
  if (params.devices != -1 && params.devices < 1) {
    throw std::invalid_argument("devices override must be >= 1, got " +
                                std::to_string(params.devices));
  }
  return params.devices == -1 ? fallback : params.devices;
}

int trace_index(const std::string& name) {
  // "trace1".."trace4"; callers have already matched the prefix and length.
  return name[5] - '0';
}

}  // namespace

const std::vector<SettingInfo>& setting_catalog() {
  static const std::vector<SettingInfo> catalog = {
      {"setting1",
       "§VI-A static setting 1: 4/7/22 Mbps, unique NE (policy, devices, horizon)",
       "smart_exp3"},
      {"setting2",
       "§VI-A static setting 2: 11/11/11 Mbps, three NEs (policy, devices, horizon)",
       "smart_exp3"},
      {"scalability",
       "§VI-A Fig 6 sweep point: k uniform networks, n devices, 36 h "
       "(policy, devices, networks, horizon)",
       "smart_exp3_noreset"},
      {"scalability_xl",
       "beyond-paper scale-out: k uniform networks, 10^5..10^6 sharded devices "
       "(policy, devices, networks, horizon)",
       "smart_exp3_noreset"},
      {"join",
       "§VI-A Fig 7: 9 devices join at slot 400, leave after 799 (policy, horizon)",
       "smart_exp3"},
      {"leave",
       "§VI-A Fig 8: 16 of 20 devices leave after slot 599 (policy, horizon)",
       "smart_exp3"},
      {"mobility",
       "§VI-A Fig 9 setting 3: 3 areas, 5 networks, 8 movers (policy, horizon)",
       "smart_exp3"},
      {"greedy_mix",
       "§VI-A Fig 11: n_smart Smart EXP3 devices vs 20-n_smart Greedy "
       "(n_smart, horizon)",
       "smart_exp3+greedy mix"},
      {"controlled",
       "§VII-A: 14 devices, noisy heterogeneous sharing, 2 h "
       "(policy or policy_mix, horizon)",
       "smart_exp3"},
      {"controlled_dynamic",
       "§VII-A Fig 14: 9 of the 14 controlled devices leave after slot 239 "
       "(policy, horizon)",
       "smart_exp3"},
      {"channel",
       "§IX extension: 12 APs picking among 3 WiFi channels (policy, devices, horizon)",
       "smart_exp3"},
      {"trace1",
       "§VI-B trace pair 1: fluctuating, cellular usually ahead (policy, trace_slots, horizon)",
       "smart_exp3"},
      {"trace2",
       "§VI-B trace pair 2: cellular strictly dominant (policy, trace_slots, horizon)",
       "smart_exp3"},
      {"trace3",
       "§VI-B trace pair 3: deep cellular fades, most adversarial (policy, trace_slots, horizon)",
       "smart_exp3"},
      {"trace4",
       "§VI-B trace pair 4: comparable means, regular crossovers (policy, trace_slots, horizon)",
       "smart_exp3"},
  };
  return catalog;
}

std::vector<std::string> setting_names() {
  std::vector<std::string> names;
  names.reserve(setting_catalog().size());
  for (const auto& info : setting_catalog()) names.push_back(info.name);
  return names;
}

bool is_valid_setting_name(const std::string& name) {
  for (const auto& info : setting_catalog()) {
    if (info.name == name) return true;
  }
  return false;
}

ExperimentConfig make_setting(const std::string& name, const SettingParams& params) {
  if (!is_valid_setting_name(name)) unknown_setting(name);
  if (!params.policy.empty() && !core::is_valid_policy_name(params.policy)) {
    throw std::invalid_argument("unknown policy '" + params.policy + "'");
  }
  for (const auto& p : params.policy_mix) {
    if (!core::is_valid_policy_name(p)) {
      throw std::invalid_argument("unknown policy '" + p + "' in policy_mix");
    }
  }
  if (params.horizon != -1 && params.horizon < 1) {
    throw std::invalid_argument("horizon override must be >= 1, got " +
                                std::to_string(params.horizon));
  }
  const OverrideGuard guard{name, params};
  if (name.rfind("trace", 0) != 0) guard.no_trace_slots();

  ExperimentConfig cfg;
  if (name == "setting1" || name == "setting2") {
    guard.no_networks();
    guard.no_n_smart();
    guard.no_policy_mix();
    const std::string policy = policy_or(params, "smart_exp3");
    const int n = devices_or(params, 20);
    cfg = name == "setting1" ? static_setting1(policy, n) : static_setting2(policy, n);
  } else if (name == "scalability") {
    guard.no_n_smart();
    guard.no_policy_mix();
    cfg = scalability_setting(policy_or(params, "smart_exp3_noreset"),
                              params.networks == -1 ? 3 : params.networks,
                              devices_or(params, 20));
  } else if (name == "scalability_xl") {
    guard.no_n_smart();
    guard.no_policy_mix();
    cfg = scalability_xl_setting(policy_or(params, "smart_exp3_noreset"),
                                 params.networks == -1 ? 5 : params.networks,
                                 devices_or(params, 100000));
  } else if (name == "join" || name == "leave") {
    guard.no_devices();
    guard.no_networks();
    guard.no_n_smart();
    guard.no_policy_mix();
    const std::string policy = policy_or(params, "smart_exp3");
    cfg = name == "join" ? dynamic_join_setting(policy) : dynamic_leave_setting(policy);
  } else if (name == "mobility") {
    guard.no_devices();
    guard.no_networks();
    guard.no_n_smart();
    guard.no_policy_mix();
    cfg = mobility_setting(policy_or(params, "smart_exp3"));
  } else if (name == "greedy_mix") {
    guard.no_policy();
    guard.no_devices();
    guard.no_networks();
    guard.no_policy_mix();
    cfg = greedy_mix_setting(params.n_smart == -1 ? 10 : params.n_smart);
  } else if (name == "controlled") {
    guard.no_devices();
    guard.no_networks();
    guard.no_n_smart();
    if (!params.policy_mix.empty()) {
      if (!params.policy.empty()) {
        reject_override(name, "policy", "policy and policy_mix are mutually exclusive");
      }
      cfg = controlled_setting(params.policy_mix);
    } else {
      cfg = controlled_setting({policy_or(params, "smart_exp3")});
    }
  } else if (name == "controlled_dynamic") {
    guard.no_devices();
    guard.no_networks();
    guard.no_n_smart();
    guard.no_policy_mix();
    cfg = controlled_dynamic_setting(policy_or(params, "smart_exp3"));
  } else if (name == "channel") {
    guard.no_networks();
    guard.no_n_smart();
    guard.no_policy_mix();
    cfg = channel_selection_setting(policy_or(params, "smart_exp3"),
                                    devices_or(params, 12));
  } else {  // trace1..trace4
    guard.no_devices();
    guard.no_networks();
    guard.no_n_smart();
    guard.no_policy_mix();
    trace::SynthOptions opts;
    if (params.trace_slots != -1) {
      if (params.trace_slots < 1) {
        throw std::invalid_argument("trace_slots override must be >= 1, got " +
                                    std::to_string(params.trace_slots));
      }
      opts.slots = params.trace_slots;
    }
    cfg = trace_setting(trace::synthetic_pair(trace_index(name), opts),
                        policy_or(params, "smart_exp3"));
  }

  if (params.horizon != -1) cfg.world.horizon = params.horizon;
  return cfg;
}

}  // namespace smartexp3::exp
