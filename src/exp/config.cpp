#include "exp/config.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "core/factory.hpp"

namespace smartexp3::exp {

namespace {

std::string device_label(std::size_t index, const netsim::DeviceSpec& d) {
  return "devices[" + std::to_string(index) + "] (id " + std::to_string(d.id) + ")";
}

bool fraction_in_unit(double v) { return v >= 0.0 && v <= 1.0; }

}  // namespace

std::vector<double> ExperimentConfig::capacities() const {
  std::vector<double> caps;
  capacities_into(caps);
  return caps;
}

void ExperimentConfig::capacities_into(std::vector<double>& out) const {
  out.clear();
  out.reserve(networks.size());
  for (const auto& n : networks) out.push_back(n.base_capacity_mbps);
}

std::vector<std::string> ExperimentConfig::validate() const {
  std::vector<std::string> errors;
  auto fail = [&errors](std::string message) { errors.push_back(std::move(message)); };

  // ---- world ----
  if (world.horizon <= 0) {
    fail("world.horizon must be positive, got " + std::to_string(world.horizon));
  }
  if (world.slot_seconds <= 0.0) {
    fail("world.slot_seconds must be positive, got " +
         std::to_string(world.slot_seconds));
  }
  if (world.threads < 0) {
    fail("world.threads must be >= 0 (0 = hardware concurrency), got " +
         std::to_string(world.threads));
  }

  // ---- networks ----
  if (networks.empty()) {
    fail("no networks: a world needs at least one network to select from");
  }
  bool ids_contiguous = true;
  for (std::size_t i = 0; i < networks.size(); ++i) {
    const auto& n = networks[i];
    if (n.id != static_cast<NetworkId>(i)) {
      ids_contiguous = false;
      fail("networks[" + std::to_string(i) + "] has id " + std::to_string(n.id) +
           "; network ids must be 0..k-1 in table order");
    }
    if (n.base_capacity_mbps < 0.0) {
      fail("networks[" + std::to_string(i) + "] has negative capacity " +
           std::to_string(n.base_capacity_mbps) + " Mbps");
    }
    for (std::size_t t = 0; t < n.trace.size(); ++t) {
      if (n.trace[t] < 0.0) {
        fail("networks[" + std::to_string(i) + "].trace[" + std::to_string(t) +
             "] is negative (" + std::to_string(n.trace[t]) + " Mbps)");
        break;  // one message per trace is enough to act on
      }
    }
  }
  // An area is reachable when at least one network covers it (a network with
  // an empty area list covers everywhere). A device placed or moved into an
  // uncovered area would have no networks to choose from.
  auto area_covered = [this](int area) {
    return std::any_of(networks.begin(), networks.end(),
                       [area](const netsim::Network& n) { return n.covers(area); });
  };

  // ---- devices ----
  std::unordered_set<DeviceId> seen_ids;
  std::unordered_set<DeviceId> duplicate_ids;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const auto& d = devices[i];
    if (!seen_ids.insert(d.id).second && duplicate_ids.insert(d.id).second) {
      fail("duplicate device id " + std::to_string(d.id) +
           ": device ids must be unique");
    }
    if (!core::is_valid_policy_name(d.policy_name)) {
      fail(device_label(i, d) + " has unknown policy '" + d.policy_name + "'");
    }
    if (d.join_slot < 0) {
      fail(device_label(i, d) + " has negative join_slot " +
           std::to_string(d.join_slot));
    }
    if (d.leave_slot != -1 && d.leave_slot < d.join_slot) {
      fail(device_label(i, d) + " leaves at slot " + std::to_string(d.leave_slot) +
           " before joining at slot " + std::to_string(d.join_slot) +
           " (use -1 for 'stays until the end')");
    }
    if (!networks.empty() && !area_covered(d.area)) {
      fail(device_label(i, d) + " starts in area " + std::to_string(d.area) +
           ", which no network covers");
    }
  }

  // ---- scenario events ----
  for (std::size_t i = 0; i < scenario.moves.size(); ++i) {
    const auto& ev = scenario.moves[i];
    if (seen_ids.find(ev.device) == seen_ids.end()) {
      fail("scenario.moves[" + std::to_string(i) + "] moves unknown device id " +
           std::to_string(ev.device));
    }
    if (!networks.empty() && !area_covered(ev.new_area)) {
      fail("scenario.moves[" + std::to_string(i) + "] moves device " +
           std::to_string(ev.device) + " to area " + std::to_string(ev.new_area) +
           ", which no network covers");
    }
  }
  for (std::size_t i = 0; i < scenario.capacity_changes.size(); ++i) {
    const auto& ev = scenario.capacity_changes[i];
    if (ids_contiguous && (ev.network < 0 ||
                           ev.network >= static_cast<NetworkId>(networks.size()))) {
      fail("scenario.capacity_changes[" + std::to_string(i) +
           "] targets unknown network id " + std::to_string(ev.network));
    }
    if (ev.new_capacity_mbps < 0.0) {
      fail("scenario.capacity_changes[" + std::to_string(i) +
           "] sets a negative capacity (" + std::to_string(ev.new_capacity_mbps) +
           " Mbps)");
    }
  }

  // ---- models ----
  if (noisy.device_sigma < 0.0 || noisy.noise_sigma < 0.0) {
    fail("noisy share sigmas must be >= 0");
  }
  if (!fraction_in_unit(noisy.noise_rho) || !fraction_in_unit(noisy.dip_probability) ||
      !fraction_in_unit(noisy.dip_persistence) || !fraction_in_unit(noisy.dip_depth)) {
    fail("noisy share rho/dip parameters must lie in [0, 1]");
  }
  if (delay == DelayKind::kFixed &&
      (fixed_delay_wifi_s < 0.0 || fixed_delay_cellular_s < 0.0)) {
    fail("fixed switching delays must be >= 0 seconds");
  }

  // ---- recorder ----
  if (recorder.epsilon < 0.0) {
    fail("recorder.epsilon must be >= 0 percent, got " +
         std::to_string(recorder.epsilon));
  }
  for (std::size_t g = 0; g < recorder.groups.size(); ++g) {
    for (const DeviceId id : recorder.groups[g]) {
      if (seen_ids.find(id) == seen_ids.end()) {
        fail("recorder.groups[" + std::to_string(g) +
             "] references unknown device id " + std::to_string(id));
      }
    }
  }

  return errors;
}

void ExperimentConfig::validate_or_throw() const {
  const auto errors = validate();
  if (errors.empty()) return;
  std::string message = "invalid experiment config '" + name + "':";
  for (const auto& e : errors) message += "\n  - " + e;
  throw std::invalid_argument(message);
}

}  // namespace smartexp3::exp
