// Canonical experiment settings from the paper's evaluation (§VI, §VII),
// expressed as ExperimentConfig builders.
//
// These builders are the implementation behind the setting registry
// (exp/registry.hpp) — benches, examples and the netsel_sim CLI obtain
// configs through `exp::make_setting(name, params)`, never by calling these
// directly. The white-box tests in tests/test_settings.cpp keep pinning the
// builder shapes here.
#pragma once

#include "exp/config.hpp"
#include "trace/trace.hpp"

namespace smartexp3::exp {

/// §VI-A setting 1: 20 devices, 3 networks with non-uniform rates
/// 4 / 7 / 22 Mbps (unique Nash equilibrium), 1200 slots of 15 s.
ExperimentConfig static_setting1(const std::string& policy, int n_devices = 20,
                                 Slot horizon = 1200);

/// §VI-A setting 2: 20 devices, 3 uniform 11 Mbps networks (three equivalent
/// Nash equilibria), 1200 slots.
ExperimentConfig static_setting2(const std::string& policy, int n_devices = 20,
                                 Slot horizon = 1200);

/// §VI-A scalability sweep (Fig 6): `k` networks and `n` devices, 8640
/// slots (36 simulated hours). Networks are uniform 11 Mbps (the setting-2
/// rate); see DESIGN.md §2 for the k=5 / k=7 reconstruction rationale.
ExperimentConfig scalability_setting(const std::string& policy, int k, int n,
                                     Slot horizon = 8640);

/// Beyond-the-paper scalability: `k` uniform 11 Mbps networks (no k <= 7
/// cap) and `n` devices at the 10^5..10^6 scale the sharded engine targets.
/// The short default horizon keeps an end-to-end run affordable; the
/// per-slot distance-to-NE series is disabled (it sorts all n rates every
/// slot and would dominate the measurement).
ExperimentConfig scalability_xl_setting(const std::string& policy, int k = 5,
                                        int n = 100000, Slot horizon = 60);

/// §VI-A dynamic setting 1 (Fig 7): 11 persistent devices; 9 devices join at
/// the start of slot 400 (paper's t=401) and leave after slot 799.
ExperimentConfig dynamic_join_setting(const std::string& policy);

/// §VI-A dynamic setting 2 (Fig 8): 20 devices; 16 leave after slot 599,
/// freeing most of the capacity.
ExperimentConfig dynamic_leave_setting(const std::string& policy);

/// Device-id groups for the mobility setting (Fig 9): {1..8} movers,
/// {9,10} food court, {11..15} study area, {16..20} bus stop.
std::vector<std::vector<DeviceId>> mobility_groups();

/// §VI-A setting 3 (Fig 9): three service areas, five networks (16, 14, 22,
/// 7, 4 Mbps; network 0 is cellular covering all areas), 8 devices migrating
/// across all three areas at slots 400 and 800.
ExperimentConfig mobility_setting(const std::string& policy);

/// §VI-A robustness scenarios (Fig 11): `n_smart` devices run Smart EXP3 and
/// the remaining `20 - n_smart` run Greedy, on setting-1 networks.
ExperimentConfig greedy_mix_setting(int n_smart);

/// §VI-B trace-driven: a single device choosing between a traced WiFi and a
/// traced cellular network.
ExperimentConfig trace_setting(const trace::TracePair& pair, const std::string& policy);

/// §VII-A controlled experiments: 14 devices on 4 / 7 / 22 Mbps networks
/// with noisy heterogeneous sharing, 480 slots (2 hours). `policies` is
/// either one name for all devices or one name per device.
ExperimentConfig controlled_setting(const std::vector<std::string>& policies,
                                    Slot horizon = 480);

/// §VII-A dynamic variant (Fig 14): 9 of the 14 devices leave after slot 239.
ExperimentConfig controlled_dynamic_setting(const std::string& policy);

/// Paper §IX future work: WiFi *channel* selection as the same congestion
/// game — `n_aps` co-located access points pick among the three
/// non-overlapping 2.4 GHz channels (1 / 6 / 11). Per-channel airtime is
/// shared equally among the APs on it; re-tuning a radio costs a small but
/// non-negligible delay (the paper's motivation for applying Smart EXP3
/// here).
ExperimentConfig channel_selection_setting(const std::string& policy, int n_aps = 12,
                                           Slot horizon = 600);

}  // namespace smartexp3::exp
