// CSV export of experiment results, so figures can be re-plotted with any
// external tool (gnuplot, matplotlib, ...). Everything the bench binaries
// print can also be written to disk through these helpers.
#pragma once

#include <string>
#include <vector>

#include "metrics/recorder.hpp"

namespace smartexp3::exp {

/// Write one or more equally long per-slot series as columns:
/// slot,<name1>,<name2>,... Throws std::runtime_error on I/O failure and
/// std::invalid_argument on ragged input.
void write_series_csv(const std::string& path, const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& series);

/// Write per-run per-device scalar results: run,device,download_mb,
/// switching_cost_mb,switches,resets,switch_backs,persistent.
void write_runs_csv(const std::string& path,
                    const std::vector<metrics::RunResult>& runs);

/// Write one run's per-device selection timeline: device,slot,network,
/// rate_mbps (requires RecorderOptions::track_selections).
void write_selections_csv(const std::string& path, const metrics::RunResult& run);

}  // namespace smartexp3::exp
