// Plain-text rendering of the paper's tables and figures: aligned tables,
// downsampled series, ASCII sparklines, and "paper vs measured" rows so the
// reproduction can be eyeballed directly from bench output.
#pragma once

#include <string>
#include <vector>

namespace smartexp3::exp {

/// Fixed-precision number formatting ("3.54", "65", ...).
std::string fmt(double value, int precision = 2);

/// Print a prominent section heading.
void print_heading(const std::string& title);

/// Print an aligned table. `rows[i].size()` must equal `columns.size()`.
void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows);

/// Print a per-slot series as "slot,value" CSV lines prefixed with its name,
/// downsampled by `stride`.
void print_series_csv(const std::string& name, const std::vector<double>& series,
                      int stride = 1, int first_slot = 0);

/// One-line ASCII sparkline of a series (useful for eyeballing figure
/// shapes in terminal output). `width` output characters.
std::string sparkline(const std::vector<double>& series, int width = 60);

/// Print a "paper reported X, we measured Y" comparison row.
void print_paper_vs_measured(const std::string& what, const std::string& paper,
                             const std::string& measured);

}  // namespace smartexp3::exp
