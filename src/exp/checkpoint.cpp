#include "exp/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "exp/jsonish.hpp"
#include "util/failpoint.hpp"

namespace smartexp3::exp {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

constexpr const char* kTrailerTag = "checksum fnv1a64 ";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

std::uint64_t parse_hex16(const char* p, const char* what) {
  std::uint64_t v = 0;
  const auto result = std::from_chars(p, p + 16, v, 16);
  if (result.ec != std::errc() || result.ptr != p + 16) {
    throw CheckpointError(std::string("checkpoint ") + what + " is not 16 hex digits");
  }
  return v;
}

/// Snapshot words as one long hex string (16 lowercase digits per word):
/// compact, line-oriented diff-stable, and trivially validated on the way
/// back in.
std::string encode_words(const std::vector<std::uint64_t>& words) {
  std::string out;
  out.reserve(words.size() * 16);
  for (const std::uint64_t w : words) out += hex16(w);
  return out;
}

std::vector<std::uint64_t> decode_words(const std::string& hex, const char* what) {
  if (hex.size() % 16 != 0) {
    throw CheckpointError(std::string("checkpoint ") + what +
                          " hex payload length is not a multiple of 16");
  }
  std::vector<std::uint64_t> words(hex.size() / 16);
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = parse_hex16(hex.data() + i * 16, what);
  }
  return words;
}

// Minimal strict field access over the parsed JSON object — the checkpoint
// schema is flat and fixed, so this does not need spec_io's ObjectReader.
const JsonValue& require_member(const JsonValue& obj, const char* key) {
  for (const auto& [k, v] : obj.object) {
    if (k == key) return v;
  }
  throw CheckpointError(std::string("checkpoint is missing key '") + key + "'");
}

const JsonValue* find_member(const JsonValue& obj, const char* key) {
  for (const auto& [k, v] : obj.object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t member_int(const JsonValue& obj, const char* key) {
  const JsonValue& v = require_member(obj, key);
  if (v.type != JsonValue::Type::kNumber || !v.integral || !v.magnitude_exact) {
    throw CheckpointError(std::string("checkpoint key '") + key +
                          "' must be an integer");
  }
  const auto m = static_cast<std::int64_t>(v.magnitude);
  return v.negative ? -m : m;
}

const std::string& member_string(const JsonValue& obj, const char* key) {
  const JsonValue& v = require_member(obj, key);
  if (v.type != JsonValue::Type::kString) {
    throw CheckpointError(std::string("checkpoint key '") + key +
                          "' must be a string");
  }
  return v.str;
}

std::uint64_t member_hex64(const JsonValue& obj, const char* key) {
  const std::string& s = member_string(obj, key);
  if (s.size() != 16) {
    throw CheckpointError(std::string("checkpoint key '") + key +
                          "' is not 16 hex digits");
  }
  return parse_hex16(s.data(), key);
}

/// File-name pattern "run<run>_slot<slot>.ckpt" -> slot, or nullopt when the
/// name belongs to another run or is not a checkpoint at all.
std::optional<Slot> slot_from_filename(const std::string& name, int run) {
  const std::string prefix = "run" + std::to_string(run) + "_slot";
  const std::string suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const char* first = name.data() + prefix.size();
  const char* last = name.data() + name.size() - suffix.size();
  Slot slot = 0;
  const auto result = std::from_chars(first, last, slot);
  if (result.ec != std::errc() || result.ptr != last || slot < 0) return std::nullopt;
  return slot;
}

/// All of `run`'s checkpoint files in `dir`, newest slot first. Filesystem
/// errors yield an empty list (the resume path treats that as "nothing to
/// resume from", the prune path as "nothing to prune").
std::vector<std::pair<Slot, fs::path>> list_checkpoints(const std::string& dir, int run) {
  std::vector<std::pair<Slot, fs::path>> found;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return found;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    if (const auto slot = slot_from_filename(entry.path().filename().string(), run)) {
      found.emplace_back(*slot, entry.path());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

}  // namespace

std::string to_checkpoint_text(const Checkpoint& c) {
  JsonWriter w;
  w.open_object();
  w.field("checkpoint_version", static_cast<int>(kCheckpointVersion));
  w.field("snapshot_version", static_cast<int>(c.snapshot_version));
  w.field("run", c.run);
  w.field("slot", c.slot);
  // 64-bit identities go as fixed-width hex strings: JSON numbers above
  // 2^53 are a portability trap, and hex matches the word payload anyway.
  w.field("seed", hex16(c.seed));
  w.field("spec_fingerprint", hex16(c.spec_fingerprint));
  w.field("world", encode_words(c.world_words));
  if (c.has_recorder) w.field("recorder", encode_words(c.recorder_words));
  w.close_object();
  std::string text = w.take();
  text += '\n';
  const std::uint64_t sum = fnv1a64(text);
  text += kTrailerTag;
  text += hex16(sum);
  text += '\n';
  return text;
}

std::string checkpoint_path(const std::string& dir, int run, Slot slot) {
  return (fs::path(dir) / ("run" + std::to_string(run) + "_slot" +
                           std::to_string(slot) + ".ckpt"))
      .string();
}

Checkpoint parse_checkpoint_text(const std::string& text) {
  const std::size_t pos = text.rfind(kTrailerTag);
  if (pos == std::string::npos || pos == 0 || text[pos - 1] != '\n') {
    throw CheckpointError("checkpoint is missing its checksum trailer "
                          "(file truncated mid-write?)");
  }
  const std::string body = text.substr(0, pos);
  const std::string tail = text.substr(pos + std::string(kTrailerTag).size());
  if (tail.size() < 16 || (tail.size() > 16 && tail.substr(16) != "\n")) {
    throw CheckpointError("checkpoint checksum trailer is malformed");
  }
  const std::uint64_t recorded = parse_hex16(tail.data(), "checksum");
  const std::uint64_t computed = fnv1a64(body);
  if (recorded != computed) {
    throw CheckpointError("checkpoint checksum mismatch (expected " + hex16(recorded) +
                          ", computed " + hex16(computed) +
                          "): file is corrupt or truncated");
  }

  JsonValue root;
  try {
    root = parse_json(body);
  } catch (const JsonError& e) {
    throw CheckpointError(std::string("checkpoint body is not valid JSON: ") + e.what());
  }
  if (root.type != JsonValue::Type::kObject) {
    throw CheckpointError("checkpoint body is not a JSON object");
  }

  const auto file_version = member_int(root, "checkpoint_version");
  if (file_version != kCheckpointVersion) {
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(file_version) + " (this build reads " +
                          std::to_string(kCheckpointVersion) + ")");
  }
  Checkpoint c;
  const auto snap_version = member_int(root, "snapshot_version");
  if (snap_version != core::kSnapshotVersion) {
    throw CheckpointError("unsupported snapshot version " +
                          std::to_string(snap_version) + " (this build reads " +
                          std::to_string(core::kSnapshotVersion) + ")");
  }
  c.snapshot_version = static_cast<std::uint32_t>(snap_version);
  c.run = static_cast<int>(member_int(root, "run"));
  c.slot = static_cast<Slot>(member_int(root, "slot"));
  if (c.run < 0 || c.slot < 0) {
    throw CheckpointError("checkpoint run/slot must be non-negative");
  }
  c.seed = member_hex64(root, "seed");
  c.spec_fingerprint = member_hex64(root, "spec_fingerprint");
  c.world_words = decode_words(member_string(root, "world"), "world");
  if (const JsonValue* rec = find_member(root, "recorder")) {
    if (rec->type != JsonValue::Type::kString) {
      throw CheckpointError("checkpoint key 'recorder' must be a string");
    }
    c.has_recorder = true;
    c.recorder_words = decode_words(rec->str, "recorder");
  }
  return c;
}

namespace {

bool errno_is_disk_full(int err) { return err == ENOSPC || err == EDQUOT; }

[[noreturn]] void throw_write_error(const std::string& message, bool disk_full) {
  if (disk_full) throw CheckpointDiskFull(message);
  throw CheckpointError(message);
}

/// Close + unlink the temp file on an abandoned write. The injected
/// short-write site deliberately skips this: a crash mid-write leaves its
/// torn ".tmp" behind, and the resume path must keep ignoring it.
void abandon_tmp(int fd, const fs::path& tmp) {
  if (fd >= 0) ::close(fd);
  std::error_code ec;
  fs::remove(tmp, ec);
}

}  // namespace

void save_checkpoint_file(const Checkpoint& c, const std::string& path) {
  const std::string text = to_checkpoint_text(c);
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);  // best-effort; open reports
  }
  const fs::path tmp = target.string() + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw_write_error("cannot write checkpoint file '" + tmp.string() +
                          "': " + std::strerror(errno),
                      errno_is_disk_full(errno));
  }

  // Injected faults strike where the real ones would: before the payload
  // lands (enospc / generic failure), mid-payload (short write), at fsync,
  // at publish (torn rename), and at the directory sync after publish.
  if (util::failpoint("checkpoint.write.enospc")) {
    abandon_tmp(fd, tmp);
    throw CheckpointDiskFull("checkpoint directory out of space writing '" +
                             tmp.string() + "' [injected checkpoint.write.enospc]");
  }
  if (util::failpoint("checkpoint.write.fail")) {
    abandon_tmp(fd, tmp);
    throw CheckpointError("failed writing checkpoint file '" + tmp.string() +
                          "' [injected checkpoint.write.fail]");
  }
  if (util::failpoint("checkpoint.write.short")) {
    // Half the bytes land, then the "process dies": the torn .tmp stays on
    // disk exactly as a real crash would leave it.
    (void)!::write(fd, text.data(), text.size() / 2);
    ::close(fd);
    throw CheckpointError("short write on checkpoint file '" + tmp.string() +
                          "' [injected checkpoint.write.short]");
  }

  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t w = ::write(fd, text.data() + off, text.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      abandon_tmp(fd, tmp);
      throw_write_error("failed writing checkpoint file '" + tmp.string() +
                            "': " + std::strerror(err),
                        errno_is_disk_full(err));
    }
    off += static_cast<std::size_t>(w);
  }

  // Durability step 1: the payload must be on stable storage before the
  // rename publishes it, or a power cut could publish an empty/torn file.
  const bool fsync_injected = util::failpoint("checkpoint.fsync.fail");
  if (fsync_injected || ::fsync(fd) != 0) {
    const int err = fsync_injected ? EIO : errno;
    abandon_tmp(fd, tmp);
    throw_write_error(
        "cannot fsync checkpoint file '" + tmp.string() + "': " +
            (fsync_injected ? "injected checkpoint.fsync.fail"
                            : std::strerror(err)),
        errno_is_disk_full(err));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    abandon_tmp(-1, tmp);
    throw_write_error("cannot close checkpoint file '" + tmp.string() +
                          "': " + std::strerror(err),
                      errno_is_disk_full(err));
  }

  if (util::failpoint("checkpoint.rename.torn")) {
    // The adversarial case atomic rename is supposed to preclude: torn bytes
    // under the REAL name (a filesystem that reneged on atomicity mid-crash).
    // Loaders must reject it on checksum and fall back to an older file.
    std::ofstream torn(target, std::ios::binary | std::ios::trunc);
    torn << text.substr(0, text.size() / 2);
    torn.close();
    abandon_tmp(-1, tmp);
    throw CheckpointError("rename torn publishing checkpoint '" + path +
                          "' [injected checkpoint.rename.torn]");
  }

  // Atomic publish: readers see the old checkpoint or the new one, never a
  // torn file under the real name.
  if (::rename(tmp.c_str(), target.c_str()) != 0) {
    const int err = errno;
    abandon_tmp(-1, tmp);
    throw_write_error("cannot rename checkpoint into place at '" + path +
                          "': " + std::strerror(err),
                      errno_is_disk_full(err));
  }

  // Durability step 2: fsync the parent directory so the rename itself (the
  // new directory entry) survives power loss — without this the data was
  // durable but the name pointing at it was not.
  const fs::path parent =
      target.has_parent_path() ? target.parent_path() : fs::path(".");
  if (util::failpoint("checkpoint.dirsync.fail")) {
    throw CheckpointError("cannot fsync checkpoint directory '" +
                          parent.string() +
                          "' [injected checkpoint.dirsync.fail]");
  }
  const int dfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    const int rc = ::fsync(dfd);
    const int err = errno;
    ::close(dfd);
    // EINVAL = this filesystem cannot fsync directories (some network FSes);
    // that is the pre-existing durability level, not a new failure.
    if (rc != 0 && err != EINVAL) {
      throw_write_error("cannot fsync checkpoint directory '" +
                            parent.string() + "': " + std::strerror(err),
                        errno_is_disk_full(err));
    }
  }
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot read checkpoint file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_checkpoint_text(buffer.str());
  } catch (const CheckpointError& e) {
    throw CheckpointError(std::string(e.what()) + " [" + path + "]");
  }
}

std::optional<Checkpoint> newest_valid_checkpoint(const std::string& dir, int run,
                                                  std::uint64_t spec_fingerprint,
                                                  std::uint64_t seed) {
  for (const auto& [slot, path] : list_checkpoints(dir, run)) {
    try {
      Checkpoint c = load_checkpoint_file(path.string());
      if (c.run != run || c.seed != seed || c.spec_fingerprint != spec_fingerprint) {
        continue;  // someone else's checkpoint — not a fallback candidate
      }
      return c;
    } catch (const CheckpointError&) {
      continue;  // corrupt/truncated: fall back to the next-newest file
    }
  }
  return std::nullopt;
}

void prune_checkpoints(const std::string& dir, int run, int keep) {
  if (keep < 0) keep = 0;
  const auto found = list_checkpoints(dir, run);
  std::error_code ec;
  for (std::size_t i = static_cast<std::size_t>(keep); i < found.size(); ++i) {
    fs::remove(found[i].second, ec);
  }
}

}  // namespace smartexp3::exp
