// Cross-run aggregation: turns a vector of RunResults into the statistics
// the paper's tables and figures report.
#pragma once

#include <vector>

#include "metrics/recorder.hpp"

namespace smartexp3::exp {

/// Mean and standard deviation of per-device switch counts, pooled over all
/// runs (paper Fig 2 reports per-device averages with std-dev error bars).
/// `persistent_only` restricts to devices present for the entire run
/// (paper Fig 10).
struct SwitchSummary {
  double mean = 0.0;
  double stddev = 0.0;
};
SwitchSummary switch_summary(const std::vector<metrics::RunResult>& runs,
                             bool persistent_only = false);

/// Mean over runs of the per-run *median* per-device cumulative download
/// (paper Table V, in MB).
double mean_of_run_median_download_mb(const std::vector<metrics::RunResult>& runs);

/// Mean over runs of the per-run std-dev of per-device downloads (paper
/// Fig 5 fairness metric, MB).
double mean_of_run_download_stddev_mb(const std::vector<metrics::RunResult>& runs);

/// Mean unused capacity per run, MB (paper §VI-A "unutilized resources").
double mean_unused_mb(const std::vector<metrics::RunResult>& runs);

/// Stability aggregation (paper Fig 3 + Table IV).
struct StabilitySummary {
  double stable_fraction = 0.0;      ///< share of runs reaching a stable state
  double stable_at_nash_fraction = 0.0;
  double stable_at_eps_fraction = 0.0;  ///< stable at an ε-equilibrium (ε = 7.5 %)
  double median_stable_slot = 0.0;   ///< over stable runs only; -1 if none
};
StabilitySummary stability_summary(const std::vector<metrics::RunResult>& runs);

/// Element-wise mean of a per-slot series across runs. `group` selects a
/// distance group (Fig 9); the default group 0 is "all devices".
std::vector<double> mean_distance_series(const std::vector<metrics::RunResult>& runs,
                                         std::size_t group = 0);
std::vector<double> mean_def4_series(const std::vector<metrics::RunResult>& runs);

/// Mean per-run totals.
double mean_at_nash_fraction(const std::vector<metrics::RunResult>& runs);
double mean_eps_fraction(const std::vector<metrics::RunResult>& runs);
double mean_resets_per_device(const std::vector<metrics::RunResult>& runs);

/// Median over runs of per-run total download / switching cost (paper
/// Table VI, single-device trace runs).
double median_total_download_mb(const std::vector<metrics::RunResult>& runs);
double median_total_switching_cost_mb(const std::vector<metrics::RunResult>& runs);

/// Downsample a series by keeping every `stride`-th point (for printing).
std::vector<double> downsample(const std::vector<double>& series, int stride);

}  // namespace smartexp3::exp
