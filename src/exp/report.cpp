#include "exp/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

namespace smartexp3::exp {

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void print_heading(const std::string& title) {
  std::cout << '\n' << "== " << title << " ==\n";
}

void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    std::cout << '\n';
  };
  print_row(columns);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  std::cout << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows) print_row(row);
}

void print_series_csv(const std::string& name, const std::vector<double>& series,
                      int stride, int first_slot) {
  if (stride <= 0) stride = 1;
  std::cout << "# series: " << name << " (every " << stride << " slots)\n";
  for (std::size_t i = 0; i < series.size(); i += static_cast<std::size_t>(stride)) {
    std::cout << name << ',' << (first_slot + static_cast<int>(i)) << ','
              << fmt(series[i], 3) << '\n';
  }
}

std::string sparkline(const std::vector<double>& series, int width) {
  static const char* kLevels[] = {" ", "_", ".", "-", "=", "+", "*", "#"};
  if (series.empty() || width <= 0) return {};
  // Clip at the 95th percentile so a single early spike (e.g. the first
  // exploration slots of a distance series) does not flatten the rest.
  std::vector<double> sorted = series;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted.front();
  const double hi = sorted[static_cast<std::size_t>(0.95 * (sorted.size() - 1))];
  const double span = hi - lo;
  std::string out;
  for (int c = 0; c < width; ++c) {
    // Average the bucket of samples this column represents.
    const std::size_t from = static_cast<std::size_t>(
        static_cast<double>(c) / width * static_cast<double>(series.size()));
    const std::size_t to = std::max<std::size_t>(
        from + 1, static_cast<std::size_t>(static_cast<double>(c + 1) / width *
                                           static_cast<double>(series.size())));
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = from; i < to && i < series.size(); ++i, ++n) sum += series[i];
    const double v = n > 0 ? sum / static_cast<double>(n) : lo;
    const int level =
        span <= 0.0 ? 0
                    : std::clamp(static_cast<int>((v - lo) / span * 7.999), 0, 7);
    out += kLevels[level];
  }
  return out;
}

void print_paper_vs_measured(const std::string& what, const std::string& paper,
                             const std::string& measured) {
  std::cout << "  [paper-vs-measured] " << what << ": paper=" << paper
            << " measured=" << measured << '\n';
}

}  // namespace smartexp3::exp
