// A strict JSON-subset reader/writer shared by the spec format (spec_io)
// and the checkpoint format (checkpoint).
//
// The parser is deliberately strict: duplicate object keys, non-finite
// number literals (nan/inf), raw control characters in strings, trailing
// content and pathological nesting depth are all hard errors with 1-based
// line numbers — a malformed file must fail loudly at load time, never
// crash or silently mis-parse (tests/test_spec_io.cpp pins the messages).
// The writer emits two-space-indented objects with deterministic key order
// and shortest-round-trip doubles, so emitted text is diff- and
// checksum-stable across runs and platforms.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace smartexp3::exp {

/// Raised on malformed JSON text (parse) or unrepresentable values (write).
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Maximum container nesting the parser accepts. Real specs nest ~4 deep;
/// the cap turns a "[[[[[..." bomb into a clean error instead of a stack
/// overflow.
inline constexpr int kMaxJsonDepth = 256;

struct JsonValue {
  enum class Type { kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kBool;
  int line = 1;  // 1-based line where the value starts, for error messages

  bool boolean = false;
  double number = 0.0;
  bool integral = false;   // the literal had no fraction/exponent part
  bool negative = false;   // literal began with '-'
  std::uint64_t magnitude = 0;  // |value| when integral (saturated on overflow)
  bool magnitude_exact = false;

  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;
};

/// Parse a complete document: exactly one value plus optional trailing
/// whitespace. Throws JsonError (with "parse error at line N") on anything
/// else.
JsonValue parse_json(const std::string& text);

/// `s` as a JSON string literal (quotes, escapes, \uXXXX for control chars).
std::string json_quote(const std::string& s);

/// Shortest decimal form that parses back to exactly the same double — the
/// property the round-trip determinism tests rely on. Throws JsonError for
/// non-finite values (JSON cannot represent them).
std::string json_number(double v);

/// Emits a document with two-space indentation and deterministic key order.
/// Purely syntactic: callers sequence open/close/field calls; the writer
/// handles commas, newlines and indentation.
class JsonWriter {
 public:
  std::string take() { return std::move(out_); }

  void open_object() { punctuate(); out_ += '{'; ++depth_; fresh_ = true; }
  void close_object() { --depth_; newline(); out_ += '}'; fresh_ = false; }
  void open_array(const std::string& key) { open_key(key); out_ += '['; ++depth_; fresh_ = true; }
  void close_array() { --depth_; newline(); out_ += ']'; fresh_ = false; }

  void open_key(const std::string& key) {
    punctuate();
    out_ += json_quote(key);
    out_ += ": ";
  }
  void open_object_for(const std::string& key) { open_key(key); out_ += '{'; ++depth_; fresh_ = true; }

  void field(const std::string& key, const std::string& value) { open_key(key); out_ += json_quote(value); }
  // Without this overload string literals would convert to bool, not string.
  void field(const std::string& key, const char* value) { field(key, std::string(value)); }
  void field(const std::string& key, double value) { open_key(key); out_ += json_number(value); }
  void field(const std::string& key, int value) { open_key(key); out_ += std::to_string(value); }
  void field(const std::string& key, long value) { open_key(key); out_ += std::to_string(value); }
  void field(const std::string& key, std::uint64_t value) { open_key(key); out_ += std::to_string(value); }
  void field(const std::string& key, bool value) { open_key(key); out_ += value ? "true" : "false"; }

  /// Scalar arrays are emitted on one line ("[4, 7, 22]") — they are the
  /// bulk of a spec with traces and this keeps the files skimmable.
  void inline_array(const std::string& key, const std::vector<int>& values) {
    open_key(key);
    append_inline(values, [](int v) { return std::to_string(v); });
  }
  void inline_array(const std::string& key, const std::vector<double>& values) {
    open_key(key);
    append_inline(values, json_number);
  }
  void inline_array_element(const std::vector<int>& values) {
    punctuate();
    append_inline(values, [](int v) { return std::to_string(v); });
  }

 private:
  template <typename T, typename Format>
  void append_inline(const std::vector<T>& values, Format format) {
    out_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out_ += ", ";
      out_ += format(values[i]);
    }
    out_ += ']';
  }

  void newline() {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
  }
  void punctuate() {
    if (depth_ == 0) return;  // the root value itself
    if (!fresh_) out_ += ',';
    fresh_ = false;
    newline();
  }

  std::string out_;
  int depth_ = 0;
  bool fresh_ = true;  // no element written yet at this depth
};

}  // namespace smartexp3::exp
