#include "exp/jsonish.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace smartexp3::exp {

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    throw JsonError("cannot represent non-finite number in JSON");
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the spec object");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("parse error at line " + std::to_string(line_) + ": " + what);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input (truncated spec?)");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    if (c == '\n') ++line_;
    return c;
  }
  void expect(char c) {
    const char got = take();
    if (got != c) {
      fail(std::string("expected '") + c + "', found '" + got + "'");
    }
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
      if (c == '\n') ++line_;
    }
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    v.line = line_;
    const char c = peek();
    if (c == '{') { parse_object(v); return v; }
    if (c == '[') { parse_array(v); return v; }
    if (c == '"') { v.type = JsonValue::Type::kString; v.str = parse_string(); return v; }
    if (c == 't' || c == 'f') { parse_bool(v); return v; }
    if (c == '-' || (c >= '0' && c <= '9')) { parse_number(v); return v; }
    if (c == 'n') {
      if (text_.compare(pos_, 3, "nan") == 0) {
        fail("non-finite number 'nan' is not a valid literal");
      }
      fail("null is not used by this format");
    }
    if (c == 'i' || c == 'I' || c == 'N') {
      fail("non-finite number literals (inf, nan) are not valid");
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  /// Container nesting is bounded so a "[[[[[..." bomb fails cleanly
  /// instead of overflowing the recursive-descent stack.
  void enter() {
    if (++depth_ > kMaxJsonDepth) fail("nesting too deep");
  }

  void parse_object(JsonValue& v) {
    v.type = JsonValue::Type::kObject;
    enter();
    expect('{');
    skip_ws();
    if (peek() == '}') { take(); --depth_; return; }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, unused] : v.object) {
        if (existing == key) fail("duplicate key '" + key + "' in object");
      }
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') { --depth_; return; }
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  void parse_array(JsonValue& v) {
    v.type = JsonValue::Type::kArray;
    enter();
    expect('[');
    skip_ws();
    if (peek() == ']') { take(); --depth_; return; }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') { --depth_; return; }
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') { out += c; continue; }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdfff) fail("surrogate escapes are not supported");
          // Encode the code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  void parse_bool(JsonValue& v) {
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected 'true' or 'false'");
    }
  }

  void parse_number(JsonValue& v) {
    v.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    if (peek() == '-') {
      v.negative = true;
      take();
      const char after = pos_ < text_.size() ? text_[pos_] : '\0';
      if (after == 'i' || after == 'I' || after == 'n' || after == 'N') {
        fail("non-finite number literals (-inf, -nan) are not valid");
      }
    }
    if (!(peek() >= '0' && peek() <= '9')) fail("malformed number");
    if (peek() == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      fail("malformed number: leading zeros are not allowed");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    const std::size_t int_end = pos_;
    v.integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      v.integral = false;
      ++pos_;
      if (!(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("malformed number: digits must follow '.'");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      v.integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("malformed number: digits must follow the exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), v.number);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      fail("malformed number '" + token + "'");
    }
    // A huge exponent parses to +/-inf via from_chars; the document must not
    // smuggle a non-finite value in through overflow either.
    if (!std::isfinite(v.number)) {
      fail("number '" + token + "' overflows to a non-finite value");
    }
    if (v.integral) {
      const std::size_t mag_start = start + (v.negative ? 1 : 0);
      const auto mag = std::from_chars(text_.data() + mag_start,
                                       text_.data() + int_end, v.magnitude);
      v.magnitude_exact = mag.ec == std::errc();
      if (!v.magnitude_exact) v.magnitude = std::numeric_limits<std::uint64_t>::max();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse(); }

}  // namespace smartexp3::exp
