#include "exp/csv_export.hpp"

#include <fstream>
#include <stdexcept>

namespace smartexp3::exp {

namespace {
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv_export: cannot open " + path);
  return out;
}
}  // namespace

void write_series_csv(const std::string& path, const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& series) {
  if (names.size() != series.size()) {
    throw std::invalid_argument("write_series_csv: names/series size mismatch");
  }
  std::size_t slots = 0;
  for (const auto& s : series) {
    if (slots == 0) slots = s.size();
    if (s.size() != slots) {
      throw std::invalid_argument("write_series_csv: ragged series");
    }
  }
  auto out = open_or_throw(path);
  out << "slot";
  for (const auto& name : names) out << ',' << name;
  out << '\n';
  for (std::size_t t = 0; t < slots; ++t) {
    out << t;
    for (const auto& s : series) out << ',' << s[t];
    out << '\n';
  }
}

void write_runs_csv(const std::string& path,
                    const std::vector<metrics::RunResult>& runs) {
  auto out = open_or_throw(path);
  out << "run,device,download_mb,switching_cost_mb,switches,resets,switch_backs,"
         "persistent\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const auto& run = runs[r];
    for (std::size_t d = 0; d < run.downloads_mb.size(); ++d) {
      out << r << ',' << d << ',' << run.downloads_mb[d] << ','
          << run.switching_cost_mb[d] << ',' << run.switches[d] << ','
          << run.resets[d] << ',' << run.switch_backs[d] << ','
          << (run.persistent[d] ? 1 : 0) << '\n';
    }
  }
}

void write_selections_csv(const std::string& path, const metrics::RunResult& run) {
  if (run.selections.empty()) {
    throw std::invalid_argument(
        "write_selections_csv: run has no selection timeline (enable "
        "RecorderOptions::track_selections)");
  }
  auto out = open_or_throw(path);
  out << "device,slot,network,rate_mbps\n";
  for (std::size_t d = 0; d < run.selections.size(); ++d) {
    for (std::size_t t = 0; t < run.selections[d].size(); ++t) {
      out << d << ',' << t << ',' << run.selections[d][t] << ',' << run.rates[d][t]
          << '\n';
    }
  }
}

}  // namespace smartexp3::exp
